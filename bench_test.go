// Package benchmarks regenerates every table and figure of the paper's
// evaluation as a Go benchmark (one bench per table/figure, as indexed in
// DESIGN.md), plus ablation benches for the design choices: the in-place
// reassembly queue vs an mbuf-chain queue, the zero-copy vs copying send
// buffer, and each Table 1 TCP feature toggled off.
//
// Throughput numbers are reported as custom metrics (kb/s etc.); ns/op
// measures simulation wall cost, not protocol performance.
package benchmarks

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"tcplp/internal/app"
	"tcplp/internal/experiments"
	"tcplp/internal/ip6"
	"tcplp/internal/mesh"
	"tcplp/internal/phy"
	"tcplp/internal/sim"
	"tcplp/internal/stack"
	"tcplp/internal/tcplp"
	"tcplp/internal/tcplp/cc"
)

// benchScale keeps per-iteration simulated time modest; the cmd runs the
// full-scale versions.
var benchScale = experiments.Opts{Scale: 0.1}

// cellF extracts a numeric cell from a table for metric reporting.
func cellF(tab *experiments.Table, row, col int) float64 {
	if row >= len(tab.Rows) || col >= len(tab.Rows[row]) {
		return 0
	}
	s := strings.TrimSuffix(tab.Rows[row][col], "%")
	v, _ := strconv.ParseFloat(s, 64)
	return v
}

// ---- one bench per table/figure ----

func BenchmarkTable1Features(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.Table1(); len(tab.Rows) != 8 {
			b.Fatal("feature matrix incomplete")
		}
	}
}

func BenchmarkTable34Memory(b *testing.B) {
	var tab *experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.Table34()
	}
	b.ReportMetric(cellF(tab, 0, 1), "connstate_bytes")
}

func BenchmarkTable6HeaderOverhead(b *testing.B) {
	var tab *experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.Table6()
	}
	b.ReportMetric(cellF(tab, 4, 1), "first_frame_hdr_bytes")
}

func BenchmarkFig4MSS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.Fig4(benchScale)
		b.ReportMetric(cellF(tab, 3, 2), "kbps_5frames_up")
		b.ReportMetric(cellF(tab, 0, 2), "kbps_2frames_up")
	}
}

func BenchmarkFig5Window(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.Fig5(benchScale)
		b.ReportMetric(cellF(tab, 3, 2), "kbps_w4")
		b.ReportMetric(cellF(tab, 0, 2), "kbps_w1")
	}
}

func BenchmarkTable7Baselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.Table7(benchScale)
		b.ReportMetric(cellF(tab, 0, 3), "kbps_uip_1hop")
		b.ReportMetric(cellF(tab, len(tab.Rows)-1, 3), "kbps_tcplp_1hop")
	}
}

func BenchmarkFig6RetryDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tabs := experiments.Fig6(benchScale)
		t6b := tabs[1]
		b.ReportMetric(cellF(t6b, 0, 1), "segloss_pct_d0_3hop")
		b.ReportMetric(cellF(t6b, 5, 1), "segloss_pct_d40_3hop")
		b.ReportMetric(cellF(t6b, 5, 2), "kbps_d40_3hop")
	}
}

func BenchmarkFig7Recovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		trace, _ := experiments.CwndTrace(benchScale)
		b.ReportMetric(float64(len(trace)), "cwnd_events")
	}
}

func BenchmarkHopSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.HopSweep(benchScale)
		b.ReportMetric(cellF(tab, 0, 1), "kbps_1hop")
		b.ReportMetric(cellF(tab, 2, 1), "kbps_3hop")
	}
}

func BenchmarkTable9Fairness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.Table9(experiments.Opts{Scale: 0.05})
		b.ReportMetric(cellF(tab, 0, 3), "jain_1hop_w4")
		b.ReportMetric(cellF(tab, 3, 3), "jain_3hop_w7_red")
	}
}

func BenchmarkFig8Batching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.Fig8(experiments.Opts{Scale: 0.08})
		b.ReportMetric(cellF(tab, 4, 3), "radio_dc_pct_tcp_nobatch")
		b.ReportMetric(cellF(tab, 5, 3), "radio_dc_pct_tcp_batch")
	}
}

func BenchmarkFig9Loss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tabs := experiments.Fig9(experiments.Opts{Scale: 0.05})
		rel := tabs[0]
		last := len(rel.Rows) - 1
		b.ReportMetric(cellF(rel, last, 1), "rel_pct_tcp_21loss")
		b.ReportMetric(cellF(rel, last, 2), "rel_pct_cocoa_21loss")
	}
}

func BenchmarkFig10Diurnal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.Fig10(experiments.Opts{Scale: 0.05})
		if len(tab.Rows) == 0 {
			b.Fatal("no hourly rows")
		}
		b.ReportMetric(cellF(tab, 0, 1), "radio_dc_pct_tcp_h0")
	}
}

func BenchmarkTable8FullDay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.Table8(experiments.Opts{Scale: 0.02})
		b.ReportMetric(cellF(tab, 0, 1), "rel_pct_tcplp")
		b.ReportMetric(cellF(tab, 0, 2), "radio_dc_pct_tcplp")
	}
}

func BenchmarkFig12Sleep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.Fig12(experiments.Opts{Scale: 0.1})
		b.ReportMetric(cellF(tab, 0, 1), "kbps_up_20ms")
		b.ReportMetric(cellF(tab, len(tab.Rows)-1, 1), "kbps_up_2s")
	}
}

func BenchmarkFig13RTTDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.Fig13(experiments.Opts{Scale: 0.1})
		b.ReportMetric(cellF(tab, 0, 2), "rtt_ms_up_median")
	}
}

func BenchmarkCCVariants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.CCVariants(experiments.Opts{Scale: 0.05})
		// Rows: 4 loss rates × cc.Variants(); report the clean channel
		// and the 6% frame-loss point per variant.
		last := len(tab.Rows) - len(cc.Variants())
		b.ReportMetric(cellF(tab, 0, 2), "kbps_newreno_clean")
		b.ReportMetric(cellF(tab, last, 2), "kbps_newreno_6loss")
		b.ReportMetric(cellF(tab, last+1, 2), "kbps_cubic_6loss")
		b.ReportMetric(cellF(tab, last+2, 2), "kbps_westwood_6loss")
		b.ReportMetric(cellF(tab, last+3, 2), "kbps_bbr_6loss")
	}
}

func BenchmarkPacing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.Pacing(experiments.Opts{Scale: 0.1})
		// Rows: {hidden-terminal, duty-cycled} × {newreno, bbr}.
		b.ReportMetric(cellF(tab, 0, 2), "kbps_newreno_hidden")
		b.ReportMetric(cellF(tab, 1, 2), "kbps_bbr_hidden")
		b.ReportMetric(cellF(tab, 2, 2), "kbps_newreno_dutycycle")
		b.ReportMetric(cellF(tab, 3, 2), "kbps_bbr_dutycycle")
	}
}

func BenchmarkGatewayCapacity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.GatewayCapacity(experiments.Opts{Scale: 0.05})
		// Rows: devices {2, 4, 8, 16}; report end-to-end delivery and
		// credit fairness inside capacity and far past it (NewReno).
		b.ReportMetric(cellF(tab, 0, 1), "e2e_pct_2dev")
		b.ReportMetric(cellF(tab, 3, 1), "e2e_pct_16dev")
		b.ReportMetric(cellF(tab, 3, 2), "jain_16dev")
	}
}

// BenchmarkCity tracks the metro-scale trajectory: one city_10k-shaped
// run per node count, reporting engine throughput and allocation rate.
// The size axis makes scale regressions visible across BENCH_N.json
// snapshots — a 10k-node cell must stay a few wall seconds, not minutes.
func BenchmarkCity(b *testing.B) {
	for _, n := range []int{1000, 5000, 10000} {
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				events, wall, allocsPerEv := experiments.CityRun(n, benchScale)
				if events == 0 {
					b.Fatal("no simulator events")
				}
				b.ReportMetric(float64(events)/wall.Seconds()/1000, "kev_per_s")
				b.ReportMetric(allocsPerEv, "allocs_per_ev")
			}
		})
	}
}

func BenchmarkFig14Adaptive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.Fig14(experiments.Opts{Scale: 0.2})
		b.ReportMetric(cellF(tab, 0, 1), "kbps_up_adaptive")
		b.ReportMetric(cellF(tab, 0, 3), "idle_dc_pct")
	}
}

// ---- ablations (DESIGN.md §4) ----

// lossyOneHopGoodput measures one-hop goodput under moderate frame loss
// with a custom TCP config — the feature-ablation harness.
func lossyOneHopGoodput(b *testing.B, mutate func(*tcplp.Config)) float64 {
	opt := stack.DefaultOptions()
	opt.PER = 0.05
	base := stack.DerivedTCPConfig(opt, opt.TCP)
	mutate(&base)
	opt.ExplicitTCP = true
	opt.TCP = base
	net := stack.New(123, mesh.Chain(2, 10), opt)
	sink := app.ListenSink(net.Nodes[0], 80)
	src := app.StartBulk(net.Nodes[1], net.Nodes[0].Addr, 80)
	net.Eng.RunFor(5 * sim.Second)
	sink.Mark()
	net.Eng.RunFor(30 * sim.Second)
	src.Stop()
	return sink.GoodputKbps()
}

func BenchmarkAblationFeatures(b *testing.B) {
	cases := []struct {
		name   string
		mutate func(*tcplp.Config)
	}{
		{"full", func(c *tcplp.Config) {}},
		{"no-sack", func(c *tcplp.Config) { c.UseSACK = false }},
		{"no-timestamps", func(c *tcplp.Config) { c.UseTimestamps = false }},
		{"no-delack", func(c *tcplp.Config) { c.UseDelayedAcks = false }},
		{"window-1seg", func(c *tcplp.Config) {
			c.SendBufSize = c.MSS
			c.RecvBufSize = c.MSS
		}},
		{"cc-cubic", func(c *tcplp.Config) { c.Variant = cc.Cubic }},
		{"cc-westwood", func(c *tcplp.Config) { c.Variant = cc.Westwood }},
		{"cc-bbr-paced", func(c *tcplp.Config) { c.Variant = cc.Bbr }},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var kbps float64
			for i := 0; i < b.N; i++ {
				kbps = lossyOneHopGoodput(b, tc.mutate)
			}
			b.ReportMetric(kbps, "kbps")
		})
	}
}

func BenchmarkAblationReassembly(b *testing.B) {
	run := func(b *testing.B, q tcplp.ReceiveQueue) {
		rng := rand.New(rand.NewSource(1))
		data := make([]byte, 4096)
		rng.Read(data)
		buf := make([]byte, 512)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Deliver two segments out of order, then the gap filler.
			q.Write(440, data[440:880])
			q.Write(880, data[880:1320])
			q.Write(0, data[:440])
			for q.Readable() > 0 {
				q.Read(buf)
			}
		}
	}
	b.Run("in-place", func(b *testing.B) { run(b, tcplp.NewRecvBuffer(2048)) })
	b.Run("mbuf-chain", func(b *testing.B) { run(b, tcplp.NewChainRecvBuffer(2048)) })
}

func BenchmarkAblationSendBuffer(b *testing.B) {
	run := func(b *testing.B, sb tcplp.SendBuffer) {
		payload := make([]byte, 440)
		out := make([]byte, 440)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sb.Write(payload)
			sb.ReadAt(out, 0)
			sb.Discard(440)
		}
	}
	b.Run("copy", func(b *testing.B) { run(b, tcplp.NewCopySendBuffer(4096)) })
	b.Run("zero-copy", func(b *testing.B) { run(b, tcplp.NewZeroCopySendBuffer(4096)) })
}

func BenchmarkAblationForwardingMode(b *testing.B) {
	run := func(b *testing.B, mode stack.ForwardingMode) {
		var kbps float64
		for i := 0; i < b.N; i++ {
			opt := stack.DefaultOptions()
			opt.Mode = mode
			net := stack.New(5, mesh.Chain(4, 10), opt)
			sink := app.ListenSink(net.Nodes[0], 80)
			src := app.StartBulk(net.Nodes[3], net.Nodes[0].Addr, 80)
			net.Eng.RunFor(5 * sim.Second)
			sink.Mark()
			net.Eng.RunFor(20 * sim.Second)
			kbps = sink.GoodputKbps()
			src.Stop()
		}
		b.ReportMetric(kbps, "kbps_3hop")
	}
	b.Run("fragment-forwarding", func(b *testing.B) { run(b, stack.FragmentForwarding) })
	b.Run("hop-by-hop", func(b *testing.B) { run(b, stack.HopByHopReassembly) })
}

// ---- substrate micro-benchmarks ----

func BenchmarkEngineEvents(b *testing.B) {
	eng := sim.NewEngine(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < b.N {
			eng.Schedule(10, tick)
		}
	}
	b.ResetTimer()
	eng.Schedule(1, tick)
	eng.Run()
}

func BenchmarkSegmentCodec(b *testing.B) {
	src, dst := ip6.AddrFromID(1), ip6.AddrFromID(2)
	seg := &tcplp.Segment{
		SeqNum: 1000, AckNum: 2000, Flags: tcplp.FlagACK | tcplp.FlagPSH,
		Window: 1848, HasTS: true, TSVal: 1, TSEcr: 2,
		Payload: make([]byte, 440),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire := seg.Encode(src, dst)
		if _, err := tcplp.DecodeSegment(src, dst, wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrameCodec(b *testing.B) {
	f := &phy.Frame{
		Type: phy.FrameData, Seq: 7,
		Dst: phy.AddrFromID(1), Src: phy.AddrFromID(2),
		AckRequest: true, Payload: make([]byte, 100),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire := f.Encode()
		if _, err := phy.DecodeFrame(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOneHopSimThroughput(b *testing.B) {
	// How much simulated transfer the engine does per wall second.
	net := stack.New(9, mesh.Chain(2, 10), stack.DefaultOptions())
	sink := app.ListenSink(net.Nodes[0], 80)
	app.StartBulk(net.Nodes[1], net.Nodes[0].Addr, 80)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Eng.RunFor(sim.Second)
	}
	b.ReportMetric(float64(sink.Received)/float64(b.N), "bytes_per_simsec")
}
