# Convenience targets around the go toolchain and the plotting recipe.

GO ?= go

.PHONY: build test race bench-smoke plot

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Render a sweep spec into a paper-style figure:
#   make plot SPEC=examples/scenarios/fig6_sweep.json OUT=fig6
# Produces $(OUT).csv and $(OUT).png (needs gnuplot).
SPEC ?= examples/scenarios/fig6_sweep.json
OUT  ?= sweep

plot:
	$(GO) run ./cmd/tcplp-bench -scenario $(SPEC) -format csv > $(OUT).csv
	gnuplot -e "csv='$(OUT).csv'; out='$(OUT).png'" tools/plot.gp
	@echo "wrote $(OUT).csv and $(OUT).png"
