# Convenience targets around the go toolchain and the plotting recipe.

GO ?= go

.PHONY: build test race bench-smoke bench-json plot

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Machine-readable benchmark snapshot (the ROADMAP's benchmark
# trajectory): one JSON document per PR, BENCH_<n>.json.
BENCH_JSON ?= BENCH_6.json

bench-json:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./... | $(GO) run ./tools/benchjson > $(BENCH_JSON)
	@echo "wrote $(BENCH_JSON)"

# Render a sweep spec into a paper-style figure:
#   make plot SPEC=examples/scenarios/fig6_sweep.json OUT=fig6
# Produces $(OUT).csv and $(OUT).png (needs gnuplot).
SPEC ?= examples/scenarios/fig6_sweep.json
OUT  ?= sweep

plot:
	$(GO) run ./cmd/tcplp-bench -scenario $(SPEC) -format csv > $(OUT).csv
	gnuplot -e "csv='$(OUT).csv'; out='$(OUT).png'" tools/plot.gp
	@echo "wrote $(OUT).csv and $(OUT).png"
