# Convenience targets around the go toolchain and the plotting recipe.

GO ?= go

.PHONY: build test race bench-smoke bench-json bench-diff plot

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Machine-readable benchmark snapshot (the ROADMAP's benchmark
# trajectory): one JSON document per PR, BENCH_<n>.json, with -benchmem
# so allocation trajectories (allocs/op, B/op) accumulate alongside
# wall-clock.
BENCH_JSON ?= BENCH_10.json

bench-json:
	$(GO) test -run=NONE -bench=. -benchmem -benchtime=1x ./... | $(GO) run ./tools/benchjson > $(BENCH_JSON)
	@echo "wrote $(BENCH_JSON)"

# Compare the fresh snapshot against the previous checked-in one,
# warning (never failing) on >20% wall-clock or allocation regressions.
BENCH_PREV ?= $(lastword $(filter-out $(BENCH_JSON),$(sort $(wildcard BENCH_*.json))))

bench-diff:
	@test -n "$(BENCH_PREV)" || { echo "no previous BENCH_*.json"; exit 0; }
	$(GO) run ./tools/benchjson -diff $(BENCH_PREV) $(BENCH_JSON)

# Render a sweep spec into a paper-style figure:
#   make plot SPEC=examples/scenarios/fig6_sweep.json OUT=fig6
# Produces $(OUT).csv and $(OUT).png (needs gnuplot).
SPEC ?= examples/scenarios/fig6_sweep.json
OUT  ?= sweep

plot:
	$(GO) run ./cmd/tcplp-bench -scenario $(SPEC) -format csv > $(OUT).csv
	gnuplot -e "csv='$(OUT).csv'; out='$(OUT).png'" tools/plot.gp
	@echo "wrote $(OUT).csv and $(OUT).png"
