// Command tcplp-bench reproduces the paper's tables and figures and
// runs declarative multi-flow scenarios. Each experiment id corresponds
// to one table or figure of the evaluation; "all" runs the complete
// set. A scenario file describes topology, link conditions, node roles,
// and per-flow transport configuration; the runner fans its (spec,
// seed) pairs out across a worker pool and reports per-flow goodput,
// retransmissions, RTT, energy duty cycle, and Jain's fairness index.
//
// Usage:
//
//	tcplp-bench -list
//	tcplp-bench -exp fig4 [-scale 0.25] [-markdown]
//	tcplp-bench -exp all -scale 0.1
//	tcplp-bench -exp ccvariants -window 8
//	tcplp-bench -scenario examples/scenarios/twinleaf_mixed.json
//	tcplp-bench -scenario sweep.json -workers 8 -format csv > out.csv
//
// Scale 1.0 runs the full published durations (the fig10/table8 day-long
// runs take a while); smaller scales shrink the measurement windows
// proportionally and are fine for checking shapes.
package main

import (
	"flag"
	"fmt"
	"os"

	"tcplp/internal/experiments"
	"tcplp/internal/scenario"
	"tcplp/internal/stack"
	"tcplp/internal/tcplp/cc"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (see -list), or 'all'")
		scale    = flag.Float64("scale", 1.0, "duration scale factor (1.0 = full runs)")
		markdown = flag.Bool("markdown", false, "emit GitHub-flavored markdown")
		list     = flag.Bool("list", false, "list experiment ids")
		variant  = flag.String("variant", "", "congestion-control variant for all experiments (newreno|cubic|westwood|bbr)")
		window   = flag.Int("window", 0, "send/receive window in segments for all experiments (default 4)")
		scenFile = flag.String("scenario", "", "run a JSON scenario spec file instead of an experiment")
		workers  = flag.Int("workers", 0, "scenario worker pool size (0 = all CPUs)")
		format   = flag.String("format", "summary", "scenario output: summary|csv|json")
	)
	flag.Parse()

	if *variant != "" {
		v, err := cc.Parse(*variant)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		stack.DefaultVariant = v
		fmt.Fprintf(os.Stderr, "congestion control: %s\n", v)
	}
	if *window != 0 {
		if *window < 1 {
			fmt.Fprintf(os.Stderr, "-window must be >= 1 segment\n")
			os.Exit(1)
		}
		stack.DefaultWindowSegs = *window
		fmt.Fprintf(os.Stderr, "window: %d segments\n", *window)
	}

	if *scenFile != "" {
		// The experiment flags have no meaning for scenarios — a spec
		// carries its own absolute durations — so reject them rather
		// than silently run something other than what was asked for.
		if *exp != "" || *markdown || *scale != 1.0 {
			fmt.Fprintln(os.Stderr, "-scenario cannot be combined with -exp/-scale/-markdown; set durations and seeds in the spec file")
			os.Exit(1)
		}
		runScenario(*scenFile, *workers, *format)
		return
	}

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range experiments.Registry {
			fmt.Printf("  %-10s %s\n", e.ID, e.Desc)
		}
		if *exp == "" {
			os.Exit(0)
		}
		return
	}

	run := func(e experiments.Experiment) {
		fmt.Fprintf(os.Stderr, "running %s (%s)...\n", e.ID, e.Desc)
		if e.SweepsVariants && *variant != "" {
			fmt.Fprintf(os.Stderr, "note: %s sweeps all variants; -variant is ignored for it\n", e.ID)
		}
		for _, tab := range e.Run(experiments.Scale(*scale)) {
			if *markdown {
				fmt.Println(tab.Markdown())
			} else {
				fmt.Println(tab.String())
			}
		}
	}

	if *exp == "all" {
		for _, e := range experiments.Registry {
			run(e)
		}
		return
	}
	e, ok := experiments.Find(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", *exp)
		os.Exit(1)
	}
	run(e)
}

// runScenario loads a spec file, fans it out across the worker pool,
// and prints the results in the requested format.
func runScenario(path string, workers int, format string) {
	switch format {
	case "summary", "csv", "json":
	default:
		// Fail before the sweep runs, not after: full-scale scenario
		// files can take a long time.
		fmt.Fprintf(os.Stderr, "unknown -format %q (have summary, csv, json)\n", format)
		os.Exit(1)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	specs, err := scenario.ParseSpecs(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	nRuns := 0
	for _, s := range specs {
		n := len(s.Seeds)
		if n == 0 {
			n = 1
		}
		nRuns += n
	}
	fmt.Fprintf(os.Stderr, "running %d scenario(s), %d run(s)...\n", len(specs), nRuns)
	results, err := (&scenario.Runner{Workers: workers}).RunAll(specs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	switch format {
	case "summary":
		for _, sr := range results {
			fmt.Print(sr.Summary())
		}
	case "csv":
		if err := scenario.WriteCSV(os.Stdout, results); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case "json":
		if err := scenario.WriteJSON(os.Stdout, results); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
