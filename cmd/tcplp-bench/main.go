// Command tcplp-bench reproduces the paper's tables and figures. Each
// experiment id corresponds to one table or figure of the evaluation;
// "all" runs the complete set.
//
// Usage:
//
//	tcplp-bench -list
//	tcplp-bench -exp fig4 [-scale 0.25] [-markdown]
//	tcplp-bench -exp all -scale 0.1
//
// Scale 1.0 runs the full published durations (the fig10/table8 day-long
// runs take a while); smaller scales shrink the measurement windows
// proportionally and are fine for checking shapes.
package main

import (
	"flag"
	"fmt"
	"os"

	"tcplp/internal/experiments"
	"tcplp/internal/stack"
	"tcplp/internal/tcplp/cc"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (see -list), or 'all'")
		scale    = flag.Float64("scale", 1.0, "duration scale factor (1.0 = full runs)")
		markdown = flag.Bool("markdown", false, "emit GitHub-flavored markdown")
		list     = flag.Bool("list", false, "list experiment ids")
		variant  = flag.String("variant", "", "congestion-control variant for all experiments (newreno|cubic|westwood|bbr)")
	)
	flag.Parse()

	if *variant != "" {
		v, err := cc.Parse(*variant)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		stack.DefaultVariant = v
		fmt.Fprintf(os.Stderr, "congestion control: %s\n", v)
	}

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range experiments.Registry {
			fmt.Printf("  %-10s %s\n", e.ID, e.Desc)
		}
		if *exp == "" {
			os.Exit(0)
		}
		return
	}

	run := func(e experiments.Experiment) {
		fmt.Fprintf(os.Stderr, "running %s (%s)...\n", e.ID, e.Desc)
		if e.SweepsVariants && *variant != "" {
			fmt.Fprintf(os.Stderr, "note: %s sweeps all variants; -variant is ignored for it\n", e.ID)
		}
		for _, tab := range e.Run(experiments.Scale(*scale)) {
			if *markdown {
				fmt.Println(tab.Markdown())
			} else {
				fmt.Println(tab.String())
			}
		}
	}

	if *exp == "all" {
		for _, e := range experiments.Registry {
			run(e)
		}
		return
	}
	e, ok := experiments.Find(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", *exp)
		os.Exit(1)
	}
	run(e)
}
