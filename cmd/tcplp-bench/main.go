// Command tcplp-bench reproduces the paper's tables and figures and
// runs declarative multi-flow scenarios. Each experiment id corresponds
// to one table or figure of the evaluation; "all" runs the complete
// set. Every simulating experiment executes through the scenario
// runner, so -workers parallelizes its (spec, seed) grid without
// changing a single cell (serial and parallel aggregates are
// bit-identical) and -seeds N runs every measurement point over N
// independent channel realizations, rendered as mean ± σ.
//
// A scenario file describes topology, link conditions, node roles,
// per-flow transport configuration, and optionally a sweep block that
// expands the spec into a cartesian grid of cells.
//
// Usage:
//
//	tcplp-bench -list
//	tcplp-bench -exp fig4 [-scale 0.25] [-markdown]
//	tcplp-bench -exp fig6 -workers 8 -seeds 5     # parallel, with error bars
//	tcplp-bench -exp fig9 -seeds 5 -ci            # Student-t 95% CI cells
//	tcplp-bench -exp all -scale 0.1
//	tcplp-bench -exp ccvariants -window 8
//	tcplp-bench -scenario examples/scenarios/twinleaf_mixed.json
//	tcplp-bench -scenario examples/scenarios/interference.json   # TCP vs CoAP
//	tcplp-bench -scenario sweep.json -workers 8 -format csv > out.csv
//	tcplp-bench -scenario spec.json -duration 5s -warmup 1s  # smoke run
//
// Scale 1.0 runs the full published durations (the fig10/table8 day-long
// runs take a while); smaller scales shrink the measurement windows
// proportionally and are fine for checking shapes.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"tcplp/internal/experiments"
	"tcplp/internal/obs"
	"tcplp/internal/obs/journey"
	"tcplp/internal/scenario"
	"tcplp/internal/stack"
	"tcplp/internal/tcplp/cc"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (see -list), or 'all'")
		scale    = flag.Float64("scale", 1.0, "duration scale factor (1.0 = full runs)")
		markdown = flag.Bool("markdown", false, "emit GitHub-flavored markdown")
		list     = flag.Bool("list", false, "list experiment ids")
		variant  = flag.String("variant", "", "congestion-control variant for all experiments (newreno|cubic|westwood|bbr|vegas)")
		window   = flag.Int("window", 0, "send/receive window in segments for all experiments (default 4)")
		seeds    = flag.Int("seeds", 0, "independent seeds per measurement point (experiments: mean ± σ tables; scenarios: overrides the spec's seed list)")
		ci       = flag.Bool("ci", false, "render multi-seed cells as mean ± Student-t 95% CI instead of mean ± σ")
		workers  = flag.Int("workers", 0, "worker pool size for the scenario runner (0 = all CPUs)")
		scenFile = flag.String("scenario", "", "run a JSON scenario spec file instead of an experiment")
		format   = flag.String("format", "summary", "scenario output: summary|csv|json")
		durFlag  = flag.String("duration", "", "override every scenario spec's measurement window (e.g. 5s)")
		warmFlag = flag.String("warmup", "", "override every scenario spec's warmup (e.g. 1s)")
		traceOut = flag.String("trace-out", "", "capture every 802.15.4 frame to this pcapng file (scenario runs)")
		evOut    = flag.String("events-out", "", "write the structured NDJSON event trace to this file (scenario runs)")
		evLayers = flag.String("events-layers", "", "filter -events-out to these comma-separated layers (phy,mac,sixlowpan,ip,tcp,coap,gateway,wan,journey)")
		evFlows  = flag.String("events-flow", "", "filter -events-out to these comma-separated flow labels' source nodes")
		jrny     = flag.Bool("journey", false, "reconstruct per-reading packet journeys and attach latency attribution to flow results (scenario runs)")
		jrnyOut  = flag.String("journey-out", "", "write per-reading span trees as Chrome trace events to this file (Perfetto-loadable; implies -journey)")
		metrIntv = flag.String("metrics-interval", "", "sample per-layer metrics into -events-out at this period (e.g. 10s)")
		stallWin = flag.String("flight-stall", "4s", "flight-recorder stall window (0 disables the stall checker)")
		delivThr = flag.Float64("flight-threshold", 0.5, "flight-recorder end-of-run delivery-ratio dump threshold (0 disables)")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile of the whole invocation to this file")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile (taken at exit, after GC) to this file")
		phyWork  = flag.Int("phy-workers", -1, "default PHY fan-out worker bound: 0 serial, N>0 parallel, -1 keeps the built-in default; specs with phy_workers set keep their own value")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		path := *memProf
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}
	if *phyWork >= 0 {
		stack.DefaultPhyWorkers = *phyWork
		fmt.Fprintf(os.Stderr, "phy fan-out workers: %d\n", *phyWork)
	}

	if *variant != "" {
		v, err := cc.Parse(*variant)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		stack.DefaultVariant = v
		fmt.Fprintf(os.Stderr, "congestion control: %s\n", v)
	}
	if *window != 0 {
		if *window < 1 {
			fmt.Fprintf(os.Stderr, "-window must be >= 1 segment\n")
			os.Exit(1)
		}
		stack.DefaultWindowSegs = *window
		fmt.Fprintf(os.Stderr, "window: %d segments\n", *window)
	}
	if *seeds < 0 {
		fmt.Fprintln(os.Stderr, "-seeds must be >= 1 (omit or 0 for the single-seed default)")
		os.Exit(1)
	}

	if *scenFile != "" {
		// The experiment flags have no meaning for scenarios — a spec
		// carries its own absolute durations — so reject them rather
		// than silently run something other than what was asked for.
		if *exp != "" || *markdown || *scale != 1.0 {
			fmt.Fprintln(os.Stderr, "-scenario cannot be combined with -exp/-scale/-markdown; set durations and seeds in the spec file")
			os.Exit(1)
		}
		oc, finish := buildObsConfig(*traceOut, *evOut, *evLayers, *evFlows, *metrIntv, *stallWin, *jrny, *jrnyOut, *delivThr)
		runScenario(*scenFile, *workers, *seeds, *format, *durFlag, *warmFlag, oc)
		finish()
		return
	}
	if *durFlag != "" || *warmFlag != "" {
		fmt.Fprintln(os.Stderr, "-duration/-warmup only apply to -scenario; use -scale for experiments")
		os.Exit(1)
	}
	if *traceOut != "" || *evOut != "" || *metrIntv != "" || *jrny || *jrnyOut != "" {
		fmt.Fprintln(os.Stderr, "-trace-out/-events-out/-journey/-journey-out/-metrics-interval only apply to -scenario runs")
		os.Exit(1)
	}

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range experiments.Registry {
			fmt.Printf("  %-10s %s\n", e.ID, e.Desc)
		}
		if *exp == "" {
			os.Exit(0)
		}
		return
	}

	if *ci && *seeds < 2 {
		fmt.Fprintln(os.Stderr, "note: -ci needs -seeds >= 2 to have anything to put an interval on")
	}
	opts := experiments.Opts{
		Scale:   experiments.Scale(*scale),
		Seeds:   *seeds,
		Workers: *workers,
		CI:      *ci,
	}
	run := func(e experiments.Experiment) {
		fmt.Fprintf(os.Stderr, "running %s (%s)...\n", e.ID, e.Desc)
		if e.SweepsVariants && *variant != "" {
			fmt.Fprintf(os.Stderr, "note: %s sweeps all variants; -variant is ignored for it\n", e.ID)
		}
		if *seeds > 1 && !e.MultiSeed {
			fmt.Fprintf(os.Stderr, "note: %s does not run through the scenario runner; -seeds is ignored for it\n", e.ID)
		}
		for _, tab := range e.Run(opts) {
			if *markdown {
				fmt.Println(tab.Markdown())
			} else {
				fmt.Println(tab.String())
			}
		}
	}

	if *exp == "all" {
		for _, e := range experiments.Registry {
			run(e)
		}
		return
	}
	e, ok := experiments.Find(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", *exp)
		os.Exit(1)
	}
	run(e)
}

// parseDur converts a -duration/-warmup override into a scenario
// duration.
func parseDur(flagName, s string) scenario.Duration {
	d, err := time.ParseDuration(s)
	if err != nil || d < 0 {
		fmt.Fprintf(os.Stderr, "bad -%s %q: want a Go duration like 5s\n", flagName, s)
		os.Exit(1)
	}
	return scenario.Duration(d / time.Microsecond)
}

// buildObsConfig assembles the scenario runner's observability config
// from the CLI flags; nil when no capture was requested. The flight
// recorder rides along whenever any capture is on, dumping stalled or
// low-delivery flow timelines to stderr. The returned finish func
// flushes deferred writers (the Chrome trace's closing bracket) and
// must run after the scenario completes.
func buildObsConfig(traceOut, evOut, evLayers, evFlows, metrIntv, stallWin string, jrny bool, jrnyOut string, delivThr float64) (*scenario.ObsConfig, func()) {
	finish := func() {}
	if traceOut == "" && evOut == "" && !jrny && jrnyOut == "" {
		if metrIntv != "" {
			fmt.Fprintln(os.Stderr, "-metrics-interval needs -events-out to write the samples to")
			os.Exit(1)
		}
		if evLayers != "" || evFlows != "" {
			fmt.Fprintln(os.Stderr, "-events-layers/-events-flow need -events-out to filter")
			os.Exit(1)
		}
		return nil, finish
	}
	oc := &scenario.ObsConfig{Journey: jrny}
	if evLayers != "" || evFlows != "" {
		if evOut == "" {
			fmt.Fprintln(os.Stderr, "-events-layers/-events-flow need -events-out to filter")
			os.Exit(1)
		}
		oc.EventLayers = splitList(evLayers)
		oc.EventFlows = splitList(evFlows)
	}
	if jrnyOut != "" {
		f, err := os.Create(jrnyOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cw := journey.NewChromeWriter(f)
		oc.JourneyOut = cw
		finish = func() {
			if err := cw.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			f.Close()
		}
	}
	if evOut != "" {
		f, err := os.Create(evOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		oc.Events = obs.NewNDJSONWriter(f)
		if metrIntv != "" {
			oc.MetricsInterval = parseDur("metrics-interval", metrIntv).D()
		}
	} else if metrIntv != "" {
		fmt.Fprintln(os.Stderr, "-metrics-interval needs -events-out to write the samples to")
		os.Exit(1)
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		pw, err := obs.NewPcapWriter(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		oc.Pcap = pw
	}
	fc := &scenario.FlightConfig{
		DeliveryThreshold: delivThr,
		Out:               obs.NewDumpWriter(os.Stderr),
	}
	if stallWin != "" && stallWin != "0" {
		fc.StallWindow = parseDur("flight-stall", stallWin).D()
	}
	oc.Flight = fc
	return oc, finish
}

// splitList parses a comma-separated flag value, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// runScenario loads a spec file, applies schedule/seed overrides,
// expands sweeps, fans the cells out across the worker pool, and prints
// the results in the requested format.
func runScenario(path string, workers, seeds int, format, durOverride, warmOverride string, oc *scenario.ObsConfig) {
	switch format {
	case "summary", "csv", "json":
	default:
		// Fail before the sweep runs, not after: full-scale scenario
		// files can take a long time.
		fmt.Fprintf(os.Stderr, "unknown -format %q (have summary, csv, json)\n", format)
		os.Exit(1)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	specs, err := scenario.ParseSpecs(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, s := range specs {
		if durOverride != "" {
			s.Duration = parseDur("duration", durOverride)
		}
		if warmOverride != "" {
			s.Warmup = parseDur("warmup", warmOverride)
		}
		if seeds > 0 {
			base := int64(1)
			if len(s.Seeds) > 0 {
				base = s.Seeds[0]
			}
			s.Seeds = make([]int64, seeds)
			for i := range s.Seeds {
				s.Seeds[i] = base + int64(i)
			}
		}
	}
	// Expand sweeps up front so the run count is honest; expansion is
	// idempotent, so handing the cells to RunAll changes nothing.
	var cells []*scenario.Spec
	for _, s := range specs {
		cells = append(cells, s.Expand()...)
	}
	nRuns := 0
	for _, s := range cells {
		n := len(s.Seeds)
		if n == 0 {
			n = 1
		}
		nRuns += n
	}
	fmt.Fprintf(os.Stderr, "running %d scenario cell(s), %d run(s)...\n", len(cells), nRuns)
	results, err := (&scenario.Runner{Workers: workers, Obs: oc}).RunAll(cells)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	switch format {
	case "summary":
		for _, sr := range results {
			fmt.Print(sr.Summary())
		}
	case "csv":
		if err := scenario.WriteCSV(os.Stdout, results); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case "json":
		if err := scenario.WriteJSON(os.Stdout, results); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
