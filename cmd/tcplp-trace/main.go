// Command tcplp-trace emits the Fig. 7a congestion-window trace: a bulk
// TCP flow over three wireless hops with no link-retry delay (d = 0), so
// hidden-terminal losses occur continuously. The default output is TSV
// (time_s, cwnd_bytes, ssthresh_bytes) followed by a summary table; -csv
// emits a strict CSV time-series (summary to stderr) so per-variant
// window dynamics can be collected and plotted across runs.
package main

import (
	"flag"
	"fmt"
	"os"

	"tcplp/internal/experiments"
	"tcplp/internal/stack"
	"tcplp/internal/tcplp/cc"
)

func main() {
	scale := flag.Float64("scale", 1.0, "duration scale factor")
	csv := flag.Bool("csv", false, "emit CSV (header + rows) on stdout, summary on stderr")
	variant := flag.String("variant", "", "congestion-control variant (newreno|cubic|westwood|bbr|vegas)")
	window := flag.Int("window", 0, "send/receive window in segments (default 4)")
	workers := flag.Int("workers", 0, "scenario runner worker pool (0 = all CPUs)")
	flag.Parse()

	v, err := cc.Parse(*variant)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	stack.DefaultVariant = v
	if *window != 0 {
		if *window < 1 {
			fmt.Fprintln(os.Stderr, "-window must be >= 1 segment")
			os.Exit(1)
		}
		stack.DefaultWindowSegs = *window
	}

	trace, summary := experiments.CwndTrace(experiments.Opts{
		Scale:   experiments.Scale(*scale),
		Workers: *workers,
	})
	if *csv {
		fmt.Println("time_s,cwnd_bytes,ssthresh_bytes,variant")
		for _, p := range trace {
			fmt.Printf("%.3f,%d,%d,%s\n", p.T.Seconds(), p.Cwnd, clipSsthresh(p.Ssthresh), v)
		}
		fmt.Fprintln(os.Stderr, summary.String())
		return
	}
	fmt.Println("# time_s\tcwnd_bytes\tssthresh_bytes")
	for _, p := range trace {
		fmt.Printf("%.3f\t%d\t%d\n", p.T.Seconds(), p.Cwnd, clipSsthresh(p.Ssthresh))
	}
	fmt.Println()
	fmt.Println(summary.String())
}

// clipSsthresh maps the initial "infinite" ssthresh to -1 for plotting.
func clipSsthresh(ss int) int {
	if ss > 1<<20 {
		return -1
	}
	return ss
}
