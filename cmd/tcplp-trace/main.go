// Command tcplp-trace emits the Fig. 7a congestion-window trace: a bulk
// TCP flow over three wireless hops with no link-retry delay (d = 0), so
// hidden-terminal losses occur continuously. Output is TSV
// (time_s, cwnd_bytes, ssthresh_bytes), suitable for plotting.
package main

import (
	"flag"
	"fmt"

	"tcplp/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 1.0, "duration scale factor")
	flag.Parse()

	trace, summary := experiments.CwndTrace(experiments.Scale(*scale))
	fmt.Println("# time_s\tcwnd_bytes\tssthresh_bytes")
	for _, p := range trace {
		ss := p.Ssthresh
		if ss > 1<<20 {
			ss = -1 // initial "infinite" ssthresh
		}
		fmt.Printf("%.3f\t%d\t%d\n", p.T.Seconds(), p.Cwnd, ss)
	}
	fmt.Println()
	fmt.Println(summary.String())
}
