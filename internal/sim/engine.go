package sim

import (
	"container/heap"
	"math/rand"
)

// Event is a scheduled callback. The zero value is not useful; Events are
// created by Engine.Schedule and Engine.At. An Event may be cancelled
// before it fires; cancelling a fired or already-cancelled event is a
// harmless no-op, which lets protocol code unconditionally cancel timers.
//
// Event objects are pooled: once an event has fired (or been cancelled and
// collected), the engine may reuse the object for a future Schedule/At
// call, so holders must drop their reference at that point — exactly what
// Timer does by clearing its pointer before invoking the callback.
type Event struct {
	when      Time
	seq       uint64 // tie-break so equal-time events fire in schedule order
	index     int    // overflow-heap index, -1 while wheel-resident or free
	fn        func()
	next      *Event // wheel slot list / free list link
	cancelled bool
}

// When returns the time the event is (or was) scheduled to fire.
func (ev *Event) When() Time { return ev.when }

// Cancelled reports whether Cancel was called before the event fired.
func (ev *Event) Cancelled() bool { return ev.cancelled }

// eventQueue orders the overflow heap by (when, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event scheduler with a deterministic
// random source. It is not safe for concurrent use: the entire simulated
// network runs in one goroutine, which is what makes runs reproducible.
//
// Internally the queue is a hierarchical timer wheel (see wheel.go) plus an
// overflow heap, with fired events recycled through a free list, so the
// steady-state hot path of Schedule → fire performs no allocation. Firing
// order is bit-identical to a single (when, seq) priority queue.
type Engine struct {
	now      Time
	wheel    wheel
	overflow eventQueue
	free     *Event // recycled Event objects
	seq      uint64
	live     int // scheduled, uncancelled, unfired events
	rng      *rand.Rand
	fired    uint64
	halted   bool
}

// NewEngine returns an engine whose clock starts at 0 and whose random
// source is seeded with seed. Two engines with the same seed and the same
// schedule of calls produce identical runs.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Processed returns the number of events fired so far (for diagnostics).
func (e *Engine) Processed() uint64 { return e.fired }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return e.live }

// Schedule arms fn to run after delay d. A negative delay is treated as
// zero. The returned Event can be cancelled.
func (e *Engine) Schedule(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// At arms fn to run at absolute time t. Times in the past run "now" (at
// the current time, after already-queued events for this instant).
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev := e.alloc()
	ev.when, ev.seq, ev.fn = t, e.seq, fn
	if e.wheel.queued == 0 && e.wheel.base < e.now {
		// Empty wheel: pull the base up so short delays stay in level 0.
		e.wheel.base = e.now
	}
	if !e.wheel.insert(ev) {
		heap.Push(&e.overflow, ev)
	}
	e.live++
	return ev
}

func (e *Engine) alloc() *Event {
	if ev := e.free; ev != nil {
		e.free = ev.next
		ev.next = nil
		ev.index = -1
		ev.cancelled = false
		return ev
	}
	return &Event{index: -1}
}

// recycle returns a fired or cancelled-and-collected event to the free
// list. Leaving cancelled set keeps post-fire Cancel calls no-ops until the
// object is reused.
func (e *Engine) recycle(ev *Event) {
	ev.fn = nil
	ev.cancelled = true
	ev.next = e.free
	e.free = ev
}

// Cancel removes ev from the queue if it has not fired. Safe to call with
// nil or with an event that already fired (until the object is reused).
// Cancellation is lazy: the entry stays queued and is discarded when its
// fire time is reached.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancelled {
		return
	}
	ev.cancelled = true
	e.live--
}

// popNext removes and returns the next live event in (when, seq) order,
// discarding cancelled entries as it goes. It returns nil when nothing live
// remains.
func (e *Engine) popNext() *Event {
	for {
		haveWheel := e.wheel.settle()
		var ev *Event
		if len(e.overflow) > 0 && (!haveWheel || e.overflow[0].when <= e.wheel.minWhen()) {
			// On a time tie the overflow entry was scheduled first (the
			// base is monotone), so the heap pops before the wheel.
			ev = heap.Pop(&e.overflow).(*Event)
		} else if haveWheel {
			ev = e.wheel.popMin()
		} else {
			return nil
		}
		if ev.cancelled {
			e.recycle(ev)
			continue
		}
		return ev
	}
}

// nextWhen reports the fire time of the next live event, purging cancelled
// entries from the front of the queue as a side effect.
func (e *Engine) nextWhen() (Time, bool) {
	for {
		haveWheel := e.wheel.settle()
		if len(e.overflow) > 0 && (!haveWheel || e.overflow[0].when <= e.wheel.minWhen()) {
			if e.overflow[0].cancelled {
				e.recycle(heap.Pop(&e.overflow).(*Event))
				continue
			}
			return e.overflow[0].when, true
		}
		if !haveWheel {
			return 0, false
		}
		if ev := e.wheel.peekMin(); ev.cancelled {
			e.recycle(e.wheel.popMin())
		} else {
			return ev.when, true
		}
	}
}

// Halt stops Run/RunUntil after the current event returns.
func (e *Engine) Halt() { e.halted = true }

// Step fires the next event, advancing the clock. It returns false when
// the queue is empty.
func (e *Engine) Step() bool {
	ev := e.popNext()
	if ev == nil {
		return false
	}
	e.now = ev.when
	e.live--
	e.fired++
	fn := ev.fn
	e.recycle(ev)
	fn()
	return true
}

// RunUntil processes events with time ≤ deadline, then sets the clock to
// deadline. Events scheduled during the run are processed if they fall
// within the deadline.
func (e *Engine) RunUntil(deadline Time) {
	e.halted = false
	for !e.halted {
		when, ok := e.nextWhen()
		if !ok || when > deadline {
			break
		}
		e.Step()
	}
	if !e.halted && e.now < deadline {
		e.now = deadline
	}
}

// RunFor advances the simulation by d.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

// Run processes events until the queue is empty or Halt is called.
func (e *Engine) Run() {
	e.halted = false
	for !e.halted && e.Step() {
	}
}
