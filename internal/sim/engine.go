package sim

import (
	"container/heap"
	"math/rand"
)

// Event is a scheduled callback. The zero value is not useful; Events are
// created by Engine.Schedule and Engine.At. An Event may be cancelled
// before it fires; cancelling a fired or already-cancelled event is a
// harmless no-op, which lets protocol code unconditionally cancel timers.
type Event struct {
	when      Time
	seq       uint64 // tie-break so equal-time events fire in schedule order
	index     int    // heap index, -1 once removed
	fn        func()
	cancelled bool
}

// When returns the time the event is (or was) scheduled to fire.
func (ev *Event) When() Time { return ev.when }

// Cancelled reports whether Cancel was called before the event fired.
func (ev *Event) Cancelled() bool { return ev.cancelled }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event scheduler with a deterministic
// random source. It is not safe for concurrent use: the entire simulated
// network runs in one goroutine, which is what makes runs reproducible.
type Engine struct {
	now    Time
	queue  eventQueue
	seq    uint64
	rng    *rand.Rand
	fired  uint64
	halted bool
}

// NewEngine returns an engine whose clock starts at 0 and whose random
// source is seeded with seed. Two engines with the same seed and the same
// schedule of calls produce identical runs.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Processed returns the number of events fired so far (for diagnostics).
func (e *Engine) Processed() uint64 { return e.fired }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule arms fn to run after delay d. A negative delay is treated as
// zero. The returned Event can be cancelled.
func (e *Engine) Schedule(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// At arms fn to run at absolute time t. Times in the past run "now" (at
// the current time, after already-queued events for this instant).
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev := &Event{when: t, seq: e.seq, fn: fn}
	heap.Push(&e.queue, ev)
	return ev
}

// Cancel removes ev from the queue if it has not fired. Safe to call with
// nil or with an event that already fired.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancelled || ev.index < 0 {
		if ev != nil {
			ev.cancelled = true
		}
		return
	}
	ev.cancelled = true
	heap.Remove(&e.queue, ev.index)
}

// Halt stops Run/RunUntil after the current event returns.
func (e *Engine) Halt() { e.halted = true }

// Step fires the next event, advancing the clock. It returns false when
// the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.when
	e.fired++
	ev.fn()
	return true
}

// RunUntil processes events with time ≤ deadline, then sets the clock to
// deadline. Events scheduled during the run are processed if they fall
// within the deadline.
func (e *Engine) RunUntil(deadline Time) {
	e.halted = false
	for !e.halted && len(e.queue) > 0 && e.queue[0].when <= deadline {
		e.Step()
	}
	if !e.halted && e.now < deadline {
		e.now = deadline
	}
}

// RunFor advances the simulation by d.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

// Run processes events until the queue is empty or Halt is called.
func (e *Engine) Run() {
	e.halted = false
	for !e.halted && e.Step() {
	}
}
