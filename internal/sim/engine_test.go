package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(30*Millisecond, func() { got = append(got, 3) })
	e.Schedule(10*Millisecond, func() { got = append(got, 1) })
	e.Schedule(20*Millisecond, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if e.Now() != Time(30*Millisecond) {
		t.Fatalf("clock = %v, want 30ms", e.Now())
	}
}

func TestEqualTimeFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5*Millisecond, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("equal-time events not FIFO at %d: %v", i, got[:i+1])
		}
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.Schedule(Second, func() { fired = true })
	e.Cancel(ev)
	e.Cancel(ev) // double cancel is a no-op
	e.Cancel(nil)
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine(1)
	var got []int
	evs := make([]*Event, 10)
	for i := 0; i < 10; i++ {
		i := i
		evs[i] = e.Schedule(Duration(i+1)*Millisecond, func() { got = append(got, i) })
	}
	e.Cancel(evs[4])
	e.Cancel(evs[7])
	e.Run()
	want := []int{0, 1, 2, 3, 5, 6, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Duration(i)*Second, func() { count++ })
	}
	e.RunUntil(Time(5 * Second))
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if e.Now() != Time(5*Second) {
		t.Fatalf("clock = %v, want 5s", e.Now())
	}
	e.RunFor(5 * Second)
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
}

func TestScheduleDuringRun(t *testing.T) {
	e := NewEngine(1)
	var got []Time
	e.Schedule(Millisecond, func() {
		got = append(got, e.Now())
		e.Schedule(Millisecond, func() { got = append(got, e.Now()) })
	})
	e.Run()
	if len(got) != 2 || got[0] != Time(Millisecond) || got[1] != Time(2*Millisecond) {
		t.Fatalf("nested scheduling broken: %v", got)
	}
}

func TestPastScheduleClamps(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(Second, func() {
		e.At(0, func() {
			if e.Now() != Time(Second) {
				t.Errorf("past event fired at %v, want clamped to 1s", e.Now())
			}
		})
	})
	e.Run()
}

func TestHalt(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Duration(i), func() {
			count++
			if count == 3 {
				e.Halt()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3 after Halt", count)
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		e := NewEngine(seed)
		var out []int64
		var step func()
		step = func() {
			out = append(out, int64(e.Now()))
			if len(out) < 50 {
				e.Schedule(Duration(e.Rand().Intn(1000)+1), step)
			}
		}
		e.Schedule(1, step)
		e.Run()
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func TestTimerResetStop(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	tm := NewTimer(e, func() { fired++ })
	tm.Reset(10 * Millisecond)
	tm.Reset(20 * Millisecond) // replaces first arming
	if !tm.Armed() {
		t.Fatal("timer should be armed")
	}
	e.RunUntil(Time(15 * Millisecond))
	if fired != 0 {
		t.Fatal("timer fired at replaced deadline")
	}
	e.RunUntil(Time(25 * Millisecond))
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if tm.Armed() {
		t.Fatal("timer should auto-disarm after firing")
	}
	tm.Reset(10 * Millisecond)
	tm.Stop()
	tm.Stop()
	e.RunFor(Second)
	if fired != 1 {
		t.Fatalf("stopped timer fired; count=%d", fired)
	}
}

func TestTimerDeadline(t *testing.T) {
	e := NewEngine(1)
	tm := NewTimer(e, func() {})
	if _, ok := tm.Deadline(); ok {
		t.Fatal("stopped timer reported a deadline")
	}
	tm.ResetAt(Time(3 * Second))
	when, ok := tm.Deadline()
	if !ok || when != Time(3*Second) {
		t.Fatalf("deadline = %v,%v", when, ok)
	}
}

// Property: events always fire in non-decreasing time order, whatever the
// set of scheduled delays.
func TestQuickEventOrder(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine(7)
		var fireTimes []Time
		for _, d := range delays {
			e.Schedule(Duration(d), func() { fireTimes = append(fireTimes, e.Now()) })
		}
		e.Run()
		if len(fireTimes) != len(delays) {
			return false
		}
		sorted := sort.SliceIsSorted(fireTimes, func(i, j int) bool { return fireTimes[i] < fireTimes[j] })
		want := make([]Duration, len(delays))
		for i, d := range delays {
			want[i] = Duration(d)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fireTimes[i] != Time(want[i]) {
				return false
			}
		}
		return sorted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset never disturbs the remaining
// events' order or firing.
func TestQuickCancelSubset(t *testing.T) {
	f := func(delays []uint16, seed int64) bool {
		e := NewEngine(7)
		rng := rand.New(rand.NewSource(seed))
		fired := make(map[int]bool)
		evs := make([]*Event, len(delays))
		for i, d := range delays {
			i := i
			evs[i] = e.Schedule(Duration(d), func() { fired[i] = true })
		}
		cancelled := make(map[int]bool)
		for i := range evs {
			if rng.Intn(2) == 0 {
				e.Cancel(evs[i])
				cancelled[i] = true
			}
		}
		e.Run()
		for i := range delays {
			if cancelled[i] == fired[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDurationString(t *testing.T) {
	cases := map[Duration]string{
		5 * Second:                 "5.000s",
		1500 * Microsecond:         "1.500ms",
		42 * Microsecond:           "42µs",
		2*Second + 500*Millisecond: "2.500s",
	}
	for d, want := range cases {
		if got := d.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(d), got, want)
		}
	}
}
