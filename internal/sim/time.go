// Package sim provides a deterministic discrete-event simulation engine.
//
// All simulated components (radios, MACs, protocol stacks) are driven by a
// single Engine: they schedule callbacks at future virtual times instead of
// sleeping. This mirrors the paper's adaptation of the FreeBSD TCP stack to
// tickless embedded timers (§4.1): protocol code never blocks, it only
// reacts to events and arms timers.
package sim

import "fmt"

// Time is an absolute simulation time in microseconds since the start of
// the run. Microsecond resolution is sufficient: the shortest interval in
// the system is the 802.15.4 CCA/backoff unit (320 µs).
type Time int64

// Duration is a span of simulated time in microseconds.
type Duration int64

// Common durations.
const (
	Microsecond Duration = 1
	Millisecond Duration = 1000
	Second      Duration = 1000 * Millisecond
	Minute      Duration = 60 * Second
	Hour        Duration = 60 * Minute
)

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the time as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Seconds returns the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds returns the duration as floating-point milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

func (t Time) String() string {
	return fmt.Sprintf("%.6fs", t.Seconds())
}

func (d Duration) String() string {
	switch {
	case d >= Second || d <= -Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond || d <= -Millisecond:
		return fmt.Sprintf("%.3fms", d.Milliseconds())
	default:
		return fmt.Sprintf("%dµs", int64(d))
	}
}
