package sim

import "math/bits"

// Hierarchical timer wheel backing Engine's event queue.
//
// The wheel has wheelLevels levels of wheelSlots slots each, with a 1 µs
// tick at level 0, so level l covers a 2^(wheelBits*(l+1)) µs window around
// the wheel base. An event lives at the lowest level whose parent window it
// shares with the base (Linux-style placement): level 0 slots therefore hold
// exactly one distinct fire time each, which is what lets pops preserve the
// engine's (when, seq) firing order bit-identically — slot lists are
// appended in schedule order, and the base only ever advances, so an event
// cascading down from a higher level was always scheduled (and therefore
// sequenced) before any event inserted directly into the lower slot.
//
// Events outside the top-level window — and events behind the base, which
// can exist transiently after an overflow pop — go to a (when, seq) min-heap
// instead. On equal fire times the heap entry was always scheduled first
// (the base is monotone, so the far-away insert happened earlier), which is
// why Engine pops the overflow heap on ties.
const (
	wheelBits     = 6
	wheelSlots    = 1 << wheelBits
	wheelMask     = wheelSlots - 1
	wheelLevels   = 5
	wheelSpanBits = wheelBits * wheelLevels // ≈ 17.9 simulated minutes
)

// evList is an intrusive singly-linked FIFO of events threaded through
// Event.next.
type evList struct {
	head, tail *Event
}

func (l *evList) append(ev *Event) {
	ev.next = nil
	if l.tail == nil {
		l.head = ev
	} else {
		l.tail.next = ev
	}
	l.tail = ev
}

type wheel struct {
	base   Time // no wheel-resident event fires before base
	slot   [wheelLevels][wheelSlots]evList
	occ    [wheelLevels]uint64 // per-level slot-occupancy bitmaps
	queued int                 // wheel-resident entries, cancelled included
}

// insert files ev at the lowest level sharing a parent window with base.
// It reports false — leaving ev untouched — when the event belongs in the
// overflow heap instead (fires beyond the top window, or behind the base).
func (w *wheel) insert(ev *Event) bool {
	if ev.when < w.base {
		return false
	}
	d := uint64(ev.when ^ w.base)
	if d>>wheelSpanBits != 0 {
		return false
	}
	level := 0
	if d != 0 {
		level = (bits.Len64(d) - 1) / wheelBits
	}
	s := (uint64(ev.when) >> (level * wheelBits)) & wheelMask
	w.slot[level][s].append(ev)
	w.occ[level] |= 1 << s
	w.queued++
	return true
}

// settle cascades higher-level slots down until level 0 is occupied,
// advancing the base to each drained slot's start along the way. It reports
// false when the wheel holds no events at all.
func (w *wheel) settle() bool {
	for w.occ[0] == 0 {
		level := 1
		for ; level < wheelLevels; level++ {
			if w.occ[level] != 0 {
				break
			}
		}
		if level == wheelLevels {
			return false
		}
		s := bits.TrailingZeros64(w.occ[level])
		shift := uint(level * wheelBits)
		parentMask := Time(1)<<(shift+wheelBits) - 1
		w.base = (w.base &^ parentMask) | Time(s)<<shift
		lst := w.slot[level][s]
		w.slot[level][s] = evList{}
		w.occ[level] &^= 1 << uint(s)
		for ev := lst.head; ev != nil; {
			next := ev.next
			w.queued--
			w.insert(ev) // always lands at a lower level: same window as base now
			ev = next
		}
	}
	return true
}

// minWhen returns the earliest wheel fire time. Only valid after settle
// returned true: the minimum is then always in level 0, where each occupied
// slot holds a single distinct time at or after the base.
func (w *wheel) minWhen() Time {
	s := bits.TrailingZeros64(w.occ[0])
	return w.base&^wheelMask | Time(s)
}

// peekMin returns the earliest event without removing it. Only valid after
// settle returned true.
func (w *wheel) peekMin() *Event {
	s := bits.TrailingZeros64(w.occ[0])
	return w.slot[0][s].head
}

// popMin removes and returns the earliest event (head of the minimum
// level-0 slot = smallest seq at that time) and advances the base to it.
// Only valid after settle returned true.
func (w *wheel) popMin() *Event {
	s := bits.TrailingZeros64(w.occ[0])
	lst := &w.slot[0][s]
	ev := lst.head
	lst.head = ev.next
	if lst.head == nil {
		lst.tail = nil
		w.occ[0] &^= 1 << uint(s)
	}
	w.queued--
	w.base = ev.when
	return ev
}
