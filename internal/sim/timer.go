package sim

// Timer is a restartable one-shot timer, the shape protocol code wants for
// retransmission/delayed-ACK/persist timers: Reset rearms, Stop disarms,
// and the callback is fixed at construction. It wraps Engine events so a
// stale (already-cancelled) event can never fire the callback.
type Timer struct {
	eng  *Engine
	fn   func()
	wrap func() // built once so Reset does not allocate
	ev   *Event
}

// NewTimer returns a stopped timer that will invoke fn when it fires.
func NewTimer(eng *Engine, fn func()) *Timer {
	t := &Timer{eng: eng, fn: fn}
	t.wrap = func() {
		t.ev = nil
		t.fn()
	}
	return t
}

// Reset (re)arms the timer to fire after d, replacing any pending firing.
func (t *Timer) Reset(d Duration) {
	t.Stop()
	t.ev = t.eng.Schedule(d, t.wrap)
}

// ResetAt (re)arms the timer to fire at absolute time when.
func (t *Timer) ResetAt(when Time) {
	t.Stop()
	t.ev = t.eng.At(when, t.wrap)
}

// Stop disarms the timer. Safe to call on a stopped timer.
func (t *Timer) Stop() {
	if t.ev != nil {
		t.eng.Cancel(t.ev)
		t.ev = nil
	}
}

// Armed reports whether the timer is pending.
func (t *Timer) Armed() bool { return t.ev != nil }

// Deadline returns the pending fire time; ok is false if the timer is
// stopped.
func (t *Timer) Deadline() (when Time, ok bool) {
	if t.ev == nil {
		return 0, false
	}
	return t.ev.When(), true
}
