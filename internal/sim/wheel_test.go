package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refEngine reimplements the engine's contract with the plain (when, seq)
// priority queue the engine used before the timer wheel. The property tests
// below drive it and the real Engine through identical workloads and demand
// bit-identical firing sequences.
type refEvent struct {
	when      Time
	seq       uint64
	index     int
	fn        func()
	cancelled bool
}

type refQueue []*refEvent

func (q refQueue) Len() int { return len(q) }
func (q refQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}
func (q refQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *refQueue) Push(x any) {
	ev := x.(*refEvent)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *refQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

type refEngine struct {
	now   Time
	queue refQueue
	seq   uint64
	fired uint64
}

func (e *refEngine) Schedule(d Duration, fn func()) *refEvent {
	if d < 0 {
		d = 0
	}
	t := e.now.Add(d)
	e.seq++
	ev := &refEvent{when: t, seq: e.seq, fn: fn}
	heap.Push(&e.queue, ev)
	return ev
}

func (e *refEngine) Cancel(ev *refEvent) {
	if ev == nil || ev.cancelled || ev.index < 0 {
		return
	}
	ev.cancelled = true
	heap.Remove(&e.queue, ev.index)
}

func (e *refEngine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*refEvent)
	e.now = ev.when
	e.fired++
	ev.fn()
	return true
}

func (e *refEngine) RunUntil(deadline Time) {
	for len(e.queue) > 0 && e.queue[0].when <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// delayFor derives a deterministic pseudo-random delay for event (id, k),
// spread across wheel levels, level boundaries, and the overflow span so
// every placement path gets exercised.
func delayFor(id, k int) Duration {
	h := uint64(id)*0x9e3779b97f4a7c15 + uint64(k)*0xbf58476d1ce4e5b9
	h ^= h >> 29
	h *= 0x94d049bb133111eb
	h ^= h >> 32
	switch h % 8 {
	case 0:
		return Duration(h>>8) % 4 // heavy ties at the same instant
	case 1:
		return Duration(h>>8) % 64 // level 0
	case 2:
		return Duration(h>>8) % 4096 // level 1
	case 3:
		return Duration(h>>8) % (1 << 18) // level 2
	case 4:
		return Duration(h>>8) % (1 << 24) // level 3
	case 5:
		return Duration(h>>8) % (1 << 30) // level 4
	case 6:
		// Hug the top-window boundary from both sides: these flip between
		// wheel and overflow depending on where the base sits.
		return Duration(1<<30) - 32 + Duration(h>>8)%64
	default:
		return Duration(1<<30) + Duration(h>>8)%(1<<31) // overflow heap
	}
}

type fireRec struct {
	id int
	at Time
}

// driveWheelWorkload runs the same branching workload — root events that
// fan out children from their callbacks, with a deterministic subset
// cancelled up front and another subset cancelled mid-run by a sibling —
// against an abstract scheduler, returning the firing log.
func driveWheelWorkload(t *testing.T, seed int64,
	schedule func(d Duration, fn func()) (cancel func()),
	now func() Time,
	runUntil func(Time), run func()) []fireRec {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var log []fireRec
	cancels := map[int]func(){}
	nextID := 0
	var spawn func(id, depth int)
	spawn = func(id, depth int) {
		log = append(log, fireRec{id: id, at: now()})
		delete(cancels, id)
		if depth >= 3 {
			return
		}
		kids := int((uint64(id) * 2654435761) % 3)
		for k := 0; k < kids; k++ {
			cid := nextID
			nextID++
			cid2, depth2 := cid, depth
			cancels[cid] = schedule(delayFor(cid, k), func() { spawn(cid2, depth2+1) })
		}
		// Every 5th event cancels the lowest-id pending sibling it knows of.
		if id%5 == 1 {
			low := -1
			for c := range cancels {
				if low < 0 || c < low {
					low = c
				}
			}
			if low >= 0 {
				cancels[low]()
				delete(cancels, low)
			}
		}
	}
	roots := 60
	for i := 0; i < roots; i++ {
		id := nextID
		nextID++
		id2 := id
		cancels[id] = schedule(delayFor(id, 7), func() { spawn(id2, 0) })
	}
	// Cancel a deterministic subset before anything runs.
	for i := 0; i < roots; i += 7 {
		if c, ok := cancels[i]; ok {
			c()
			delete(cancels, i)
		}
	}
	// Advance in randomized chunks, then drain.
	deadline := Time(0)
	for i := 0; i < 6; i++ {
		deadline = deadline.Add(Duration(rng.Int63n(int64(1) << uint(22+i*2))))
		runUntil(deadline)
	}
	run()
	return log
}

// TestWheelMatchesHeapOrder is the wheel-vs-heap firing-order property
// test: the wheel engine must fire the exact event sequence, at the exact
// times, that the reference priority queue fires.
func TestWheelMatchesHeapOrder(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		eng := NewEngine(seed)
		gotLog := driveWheelWorkloadOn(t, seed, eng)

		ref := &refEngine{}
		refLog := driveWheelWorkload(t, seed,
			func(d Duration, fn func()) func() {
				ev := ref.Schedule(d, fn)
				return func() { ref.Cancel(ev) }
			},
			func() Time { return ref.now },
			func(deadline Time) { ref.RunUntil(deadline) },
			func() {
				for ref.Step() {
				}
			})

		if len(gotLog) != len(refLog) {
			t.Fatalf("seed %d: fired %d events, reference fired %d", seed, len(gotLog), len(refLog))
		}
		for i := range refLog {
			if gotLog[i] != refLog[i] {
				t.Fatalf("seed %d: divergence at firing %d: wheel %+v, heap %+v", seed, i, gotLog[i], refLog[i])
			}
		}
		if eng.Processed() != ref.fired {
			t.Fatalf("seed %d: Processed()=%d, reference fired %d", seed, eng.Processed(), ref.fired)
		}
		if eng.Pending() != 0 {
			t.Fatalf("seed %d: Pending()=%d after drain", seed, eng.Pending())
		}
	}
}

func driveWheelWorkloadOn(t *testing.T, seed int64, eng *Engine) []fireRec {
	t.Helper()
	return driveWheelWorkload(t, seed,
		func(d Duration, fn func()) func() {
			ev := eng.Schedule(d, fn)
			return func() { eng.Cancel(ev) }
		},
		eng.Now,
		func(deadline Time) { eng.RunUntil(deadline) },
		eng.Run)
}

// Equal-time events spanning the wheel/overflow boundary still fire in
// schedule order.
func TestWheelOverflowTieFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	target := Time(1<<30) + 77 // beyond the top window: overflow at t=0
	e.At(target, func() { got = append(got, 0) })
	// March the base close enough that the same instant lands in the wheel.
	e.Schedule(Duration(1<<30)+10, func() {
		e.At(target, func() { got = append(got, 1) }) // wheel resident
		e.At(target, func() { got = append(got, 2) })
	})
	e.Run()
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("overflow/wheel tie broke FIFO: %v", got)
	}
}

// Events scheduled behind an advanced wheel base (possible after an
// overflow pop) must still fire in global order.
func TestWheelBehindBaseSchedule(t *testing.T) {
	e := NewEngine(1)
	var got []int
	boundary := Time(1 << 30)
	e.At(boundary-10, func() {
		// Now the base sits just below the top-window boundary; everything
		// past the boundary overflows.
		e.At(boundary+40, func() {
			got = append(got, 1)
			// The wheel base may sit ahead of now here; these must still
			// interleave correctly.
			e.At(boundary+45, func() { got = append(got, 2) })
			e.At(boundary+200, func() { got = append(got, 4) })
			e.At(boundary+50, func() { got = append(got, 3) })
		})
	})
	e.At(boundary-10+100, func() { got = append(got, 0) }) // wheel, fires first? no: boundary+90 > boundary+40... keep order check below
	e.Run()
	want := []int{1, 2, 3, 0, 4}
	// boundary+40 < boundary+45 < boundary+50 < boundary+90 < boundary+200.
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

// Pending must track live (uncancelled, unfired) events under lazy
// cancellation.
func TestWheelPendingWithLazyCancel(t *testing.T) {
	e := NewEngine(1)
	evs := make([]*Event, 10)
	for i := range evs {
		evs[i] = e.Schedule(Duration(i+1)*Millisecond, func() {})
	}
	if e.Pending() != 10 {
		t.Fatalf("Pending=%d want 10", e.Pending())
	}
	e.Cancel(evs[3])
	e.Cancel(evs[3])
	e.Cancel(evs[8])
	if e.Pending() != 8 {
		t.Fatalf("Pending=%d want 8 after cancels", e.Pending())
	}
	e.RunUntil(Time(5 * Millisecond))
	if e.Pending() != 4 {
		t.Fatalf("Pending=%d want 4 after partial run", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending=%d want 0 after drain", e.Pending())
	}
	if e.Processed() != 8 {
		t.Fatalf("Processed=%d want 8", e.Processed())
	}
}

// Recycled events must not leak state into later schedules.
func TestWheelEventRecycling(t *testing.T) {
	e := NewEngine(1)
	const n = 1000
	fired := 0
	for i := 0; i < n; i++ {
		e.Schedule(Duration(i%97), func() { fired++ })
		if i%3 == 0 {
			ev := e.Schedule(Duration(i%53), func() { t.Error("cancelled event fired") })
			e.Cancel(ev)
		}
	}
	e.Run()
	if fired != n {
		t.Fatalf("fired=%d want %d", fired, n)
	}
	// Reuse the engine: recycled objects must behave like fresh ones.
	again := 0
	for i := 0; i < n; i++ {
		e.Schedule(Duration(i%89), func() { again++ })
	}
	e.Run()
	if again != n {
		t.Fatalf("second round fired=%d want %d", again, n)
	}
}
