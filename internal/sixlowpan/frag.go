package sixlowpan

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Fragment header lengths (RFC 4944 §5.3). The paper's Table 6 lists the
// 6LoWPAN fragmentation overhead as 4-5 bytes per frame (plus mesh
// headers in some stacks, which Thread route-over does not use).
const (
	Frag1HeaderLen = 4
	FragNHeaderLen = 5
)

// Fragmentation errors.
var (
	ErrNotFragment = errors.New("sixlowpan: not a fragment")
	ErrBadOffset   = errors.New("sixlowpan: fragment offset out of range")
)

// FragmentKind classifies a link payload.
type FragmentKind int

// Link payload kinds.
const (
	KindUnfragmented FragmentKind = iota
	KindFrag1
	KindFragN
	KindUnknown
)

// Classify inspects the dispatch byte of a link payload.
func Classify(b []byte) FragmentKind {
	if len(b) == 0 {
		return KindUnknown
	}
	switch {
	case b[0]&0xf8 == dispFRAG1:
		return KindFrag1
	case b[0]&0xf8 == dispFRAGN:
		return KindFragN
	case b[0]&0xe0 == dispIPHC:
		return KindUnfragmented
	}
	return KindUnknown
}

// FragInfo is a parsed FRAG1/FRAGN header.
type FragInfo struct {
	DatagramSize uint16 // uncompressed IPv6 datagram length
	Tag          uint16
	Offset       int // uncompressed-byte offset (0 for FRAG1)
	HeaderLen    int // bytes consumed by the fragment header
}

// ParseFragment decodes the fragmentation header of a FRAG1/FRAGN link
// payload.
func ParseFragment(b []byte) (FragInfo, error) {
	var fi FragInfo
	switch Classify(b) {
	case KindFrag1:
		if len(b) < Frag1HeaderLen {
			return fi, ErrTruncated
		}
		fi.DatagramSize = binary.BigEndian.Uint16(b[0:2]) & 0x07ff
		fi.Tag = binary.BigEndian.Uint16(b[2:4])
		fi.HeaderLen = Frag1HeaderLen
		return fi, nil
	case KindFragN:
		if len(b) < FragNHeaderLen {
			return fi, ErrTruncated
		}
		fi.DatagramSize = binary.BigEndian.Uint16(b[0:2]) & 0x07ff
		fi.Tag = binary.BigEndian.Uint16(b[2:4])
		fi.Offset = int(b[4]) * 8
		fi.HeaderLen = FragNHeaderLen
		return fi, nil
	}
	return fi, ErrNotFragment
}

// RewriteTag replaces the datagram tag of a FRAG1/FRAGN link payload in
// place. Relays forwarding fragments hop-by-hop re-tag them, since tags
// are scoped to the link-layer sender.
func RewriteTag(b []byte, tag uint16) error {
	k := Classify(b)
	if k != KindFrag1 && k != KindFragN {
		return ErrNotFragment
	}
	if len(b) < 4 {
		return ErrTruncated
	}
	binary.BigEndian.PutUint16(b[2:4], tag)
	return nil
}

// Fragmenter splits (compressed-header, payload) pairs into link
// payloads. It owns the datagram tag counter of one interface and a
// free list of fragment buffers: callers return each buffer with
// Release once the link layer is finished with it, so steady-state
// fragmentation allocates nothing.
type Fragmenter struct {
	tag  uint16
	free [][]byte
}

// getBuf returns an empty buffer with at least the requested capacity,
// recycling a released one when possible.
func (f *Fragmenter) getBuf(capacity int) []byte {
	if n := len(f.free); n > 0 {
		b := f.free[n-1]
		f.free[n-1] = nil
		f.free = f.free[:n-1]
		if cap(b) >= capacity {
			return b[:0]
		}
	}
	return make([]byte, 0, capacity)
}

// Clone copies b into a pooled buffer — the relay path uses it so
// forwarded fragments recycle through the same pool as locally
// originated ones.
func (f *Fragmenter) Clone(b []byte) []byte {
	out := f.getBuf(len(b))
	return append(out, b...)
}

// Release returns a fragment buffer produced by Fragment (or Clone) to
// the pool. The caller must not touch the slice afterwards.
func (f *Fragmenter) Release(b []byte) {
	if cap(b) == 0 {
		return
	}
	f.free = append(f.free, b)
}

// NextTag returns a fresh datagram tag.
func (f *Fragmenter) NextTag() uint16 {
	f.tag++
	return f.tag
}

// Fragment builds the link payloads for an IPv6 packet already split
// into its compressed header chdr and upper-layer payload. maxLink is
// the largest link payload a frame can carry (phy.MaxMACPayload).
//
// Offsets are in uncompressed-datagram bytes: the first fragment covers
// the 40-byte uncompressed header plus enough payload to end on an
// 8-octet boundary, as RFC 4944 requires.
func (f *Fragmenter) Fragment(chdr, payload []byte, maxLink int) [][]byte {
	if len(chdr)+len(payload) <= maxLink {
		one := f.getBuf(len(chdr) + len(payload))
		one = append(one, chdr...)
		one = append(one, payload...)
		return [][]byte{one}
	}
	size := 40 + len(payload)
	if size >= 1<<11 {
		panic(fmt.Sprintf("sixlowpan: datagram of %d bytes exceeds the 2047-byte field", size))
	}
	tag := f.NextTag()

	// First fragment: FRAG1 + compressed header + leading payload, with
	// the covered uncompressed prefix (40 + p1) a multiple of 8.
	p1 := maxLink - Frag1HeaderLen - len(chdr)
	if p1 > len(payload) {
		p1 = len(payload)
	}
	p1 -= (40 + p1) % 8
	if p1 < 0 {
		p1 = 0
	}
	frag1 := f.getBuf(Frag1HeaderLen + len(chdr) + p1)
	frag1 = binary.BigEndian.AppendUint16(frag1, uint16(dispFRAG1)<<8|uint16(size))
	frag1 = binary.BigEndian.AppendUint16(frag1, tag)
	frag1 = append(frag1, chdr...)
	frag1 = append(frag1, payload[:p1]...)
	out := [][]byte{frag1}

	// Subsequent fragments: FRAGN + payload chunks on 8-octet boundaries.
	chunk := (maxLink - FragNHeaderLen) &^ 7
	for off := p1; off < len(payload); off += chunk {
		end := off + chunk
		if end > len(payload) {
			end = len(payload)
		}
		fn := f.getBuf(FragNHeaderLen + end - off)
		fn = binary.BigEndian.AppendUint16(fn, uint16(dispFRAGN)<<8|uint16(size))
		fn = binary.BigEndian.AppendUint16(fn, tag)
		fn = append(fn, byte((40+off)/8))
		fn = append(fn, payload[off:end]...)
		out = append(out, fn)
	}
	return out
}

// FrameCount predicts how many fragments Fragment will produce for a
// payload of n bytes under a compressed header of h bytes — the inverse
// of the MSS-in-frames knob of §6.1.
func FrameCount(h, n, maxLink int) int {
	if h+n <= maxLink {
		return 1
	}
	p1 := maxLink - Frag1HeaderLen - h
	if p1 > n {
		p1 = n
	}
	p1 -= (40 + p1) % 8
	if p1 < 0 {
		p1 = 0
	}
	rest := n - p1
	chunk := (maxLink - FragNHeaderLen) &^ 7
	return 1 + (rest+chunk-1)/chunk
}

// MaxPayloadForFrames returns the largest upper-layer payload (e.g. TCP
// segment) that fits in the given number of frames, assuming a
// compressed header of h bytes. It inverts FrameCount.
func MaxPayloadForFrames(h, frames, maxLink int) int {
	if frames <= 0 {
		return 0
	}
	if frames == 1 {
		return maxLink - h
	}
	p1 := maxLink - Frag1HeaderLen - h
	p1 -= (40 + p1) % 8
	if p1 < 0 {
		p1 = 0
	}
	chunk := (maxLink - FragNHeaderLen) &^ 7
	return p1 + (frames-1)*chunk
}
