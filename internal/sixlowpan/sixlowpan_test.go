package sixlowpan

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"tcplp/internal/ip6"
	"tcplp/internal/phy"
	"tcplp/internal/sim"
)

func meshHeader(srcID, dstID int) *ip6.Header {
	return &ip6.Header{
		NextHeader: ip6.ProtoTCP,
		HopLimit:   64,
		Src:        ip6.AddrFromID(srcID),
		Dst:        ip6.AddrFromID(dstID),
	}
}

func TestIPHCRoundTripCompressed(t *testing.T) {
	h := meshHeader(3, 9)
	b := CompressHeader(h)
	if len(b) != 8 {
		t.Fatalf("compressed mesh header = %d bytes, want 8", len(b))
	}
	g, n, err := DecompressHeader(b)
	if err != nil || n != len(b) {
		t.Fatalf("decompress: %v consumed %d of %d", err, n, len(b))
	}
	if *g != *h {
		t.Fatalf("round trip: %+v vs %+v", g, h)
	}
}

func TestIPHCRoundTripUncompressible(t *testing.T) {
	h := &ip6.Header{
		TrafficClass: 0x02, // ECT(0)
		FlowLabel:    0xbeef,
		NextHeader:   ip6.ProtoUDP,
		HopLimit:     255,
		Src:          ip6.Addr{0x20, 0x01, 0x0d, 0xb8, 15: 0x01}, // global
		Dst:          ip6.AddrFromID(4),
	}
	b := CompressHeader(h)
	g, n, err := DecompressHeader(b)
	if err != nil || n != len(b) {
		t.Fatalf("decompress: %v", err)
	}
	if *g != *h {
		t.Fatalf("round trip: %+v vs %+v", g, h)
	}
	if len(b) >= 40 {
		t.Fatalf("compression produced %d bytes for a 40-byte header", len(b))
	}
}

func TestDecrementHopLimit(t *testing.T) {
	h := meshHeader(1, 2)
	b := CompressHeader(h)
	b = append(b, []byte("payload")...)
	hl, ok := DecrementHopLimit(b)
	if !ok || hl != 63 {
		t.Fatalf("hl=%d ok=%v", hl, ok)
	}
	g, _, err := DecompressHeader(b)
	if err != nil || g.HopLimit != 63 {
		t.Fatalf("hop limit after decrement: %v %v", g, err)
	}
	if _, ok := DecrementHopLimit([]byte{0xc0, 0, 0, 0}); ok {
		t.Fatal("DecrementHopLimit accepted a FRAG1 payload")
	}
}

func TestFragmentSingleFrame(t *testing.T) {
	var f Fragmenter
	h := meshHeader(1, 2)
	chdr := CompressHeader(h)
	frags := f.Fragment(chdr, []byte("tiny"), phy.MaxMACPayload)
	if len(frags) != 1 {
		t.Fatalf("fragments = %d, want 1", len(frags))
	}
	if Classify(frags[0]) != KindUnfragmented {
		t.Fatal("single-frame datagram should be IPHC-led")
	}
}

func TestFragmentOffsetsAligned(t *testing.T) {
	var f Fragmenter
	chdr := CompressHeader(meshHeader(1, 2))
	payload := make([]byte, 450)
	frags := f.Fragment(chdr, payload, phy.MaxMACPayload)
	if len(frags) < 2 {
		t.Fatalf("expected fragmentation, got %d", len(frags))
	}
	for i, fr := range frags {
		fi, err := ParseFragment(fr)
		if err != nil {
			t.Fatalf("frag %d: %v", i, err)
		}
		if fi.DatagramSize != uint16(40+len(payload)) {
			t.Fatalf("frag %d size = %d", i, fi.DatagramSize)
		}
		if fi.Offset%8 != 0 {
			t.Fatalf("frag %d offset %d not 8-aligned", i, fi.Offset)
		}
		if len(fr) > phy.MaxMACPayload {
			t.Fatalf("frag %d oversized: %d", i, len(fr))
		}
	}
}

func TestFrameCountPrediction(t *testing.T) {
	chdrLen := len(CompressHeader(meshHeader(1, 2)))
	var f Fragmenter
	for n := 0; n <= 900; n += 13 {
		frags := f.Fragment(CompressHeader(meshHeader(1, 2)), make([]byte, n), phy.MaxMACPayload)
		if got := FrameCount(chdrLen, n, phy.MaxMACPayload); got != len(frags) {
			t.Fatalf("FrameCount(%d) = %d, actual fragments %d", n, got, len(frags))
		}
	}
	// MaxPayloadForFrames inverts FrameCount: a payload of exactly that
	// size fits in k frames, one byte more does not.
	for k := 1; k <= 8; k++ {
		n := MaxPayloadForFrames(chdrLen, k, phy.MaxMACPayload)
		if FrameCount(chdrLen, n, phy.MaxMACPayload) != k {
			t.Fatalf("MaxPayloadForFrames(%d)=%d does not fit in %d frames", k, n, k)
		}
		if FrameCount(chdrLen, n+1, phy.MaxMACPayload) == k {
			t.Fatalf("MaxPayloadForFrames(%d)=%d is not maximal", k, n)
		}
	}
}

func TestMSSFiveFramesMatchesPaper(t *testing.T) {
	// §6.1: five frames carry ≈408-462 B of TCP payload depending on
	// header sizes. With our 8-byte IPHC header and a 32-byte TCP header
	// (timestamps), five frames must carry at least 400 B of TCP data.
	chdrLen := len(CompressHeader(meshHeader(1, 2)))
	seg := MaxPayloadForFrames(chdrLen, 5, phy.MaxMACPayload)
	data := seg - 32
	if data < 400 || data > 520 {
		t.Fatalf("five-frame MSS = %d bytes of TCP data, want ≈400-520", data)
	}
}

func reassemble(t *testing.T, r *Reassembler, src phy.Addr, frags [][]byte) *ip6.Packet {
	t.Helper()
	for i, fr := range frags {
		pkt, err := r.Input(src, fr, 0)
		if err != nil {
			t.Fatalf("fragment %d: %v", i, err)
		}
		if pkt != nil {
			if i != len(frags)-1 {
				t.Fatalf("datagram completed early at fragment %d", i)
			}
			return pkt
		}
	}
	return nil
}

func TestReassemblyInOrder(t *testing.T) {
	eng := sim.NewEngine(1)
	r := NewReassembler(eng)
	var f Fragmenter
	payload := make([]byte, 600)
	rand.New(rand.NewSource(2)).Read(payload)
	h := meshHeader(5, 6)
	frags := f.Fragment(CompressHeader(h), payload, phy.MaxMACPayload)
	pkt := reassemble(t, r, phy.AddrFromID(5), frags)
	if pkt == nil {
		t.Fatal("datagram did not complete")
	}
	if !bytes.Equal(pkt.Payload, payload) || pkt.Src != h.Src || pkt.Dst != h.Dst {
		t.Fatal("reassembled packet mismatch")
	}
	if r.Pending() != 0 {
		t.Fatalf("pending = %d after completion", r.Pending())
	}
}

func TestReassemblyOutOfOrder(t *testing.T) {
	eng := sim.NewEngine(1)
	r := NewReassembler(eng)
	var f Fragmenter
	payload := make([]byte, 500)
	for i := range payload {
		payload[i] = byte(i)
	}
	frags := f.Fragment(CompressHeader(meshHeader(1, 2)), payload, phy.MaxMACPayload)
	if len(frags) < 3 {
		t.Fatalf("test wants ≥3 fragments, got %d", len(frags))
	}
	perm := rand.New(rand.NewSource(9)).Perm(len(frags))
	var pkt *ip6.Packet
	for _, i := range perm {
		p, err := r.Input(phy.AddrFromID(1), frags[i], 0)
		if err != nil {
			t.Fatal(err)
		}
		if p != nil {
			pkt = p
		}
	}
	if pkt == nil || !bytes.Equal(pkt.Payload, payload) {
		t.Fatal("out-of-order reassembly failed")
	}
}

func TestReassemblyDuplicateFragment(t *testing.T) {
	eng := sim.NewEngine(1)
	r := NewReassembler(eng)
	var f Fragmenter
	payload := make([]byte, 400)
	frags := f.Fragment(CompressHeader(meshHeader(1, 2)), payload, phy.MaxMACPayload)
	src := phy.AddrFromID(1)
	if _, err := r.Input(src, frags[0], 0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Input(src, frags[0], 0); err != nil { // duplicate FRAG1
		t.Fatal(err)
	}
	for _, fr := range frags[1:] {
		if pkt, _ := r.Input(src, fr, 0); pkt != nil {
			return
		}
	}
	t.Fatal("datagram did not complete with a duplicated fragment")
}

func TestReassemblyTimeout(t *testing.T) {
	eng := sim.NewEngine(1)
	r := NewReassembler(eng)
	var f Fragmenter
	frags := f.Fragment(CompressHeader(meshHeader(1, 2)), make([]byte, 500), phy.MaxMACPayload)
	if _, err := r.Input(phy.AddrFromID(1), frags[0], 0); err != nil {
		t.Fatal(err)
	}
	if r.Pending() != 1 {
		t.Fatalf("pending = %d", r.Pending())
	}
	eng.RunFor(DefaultReassemblyTimeout + sim.Second)
	if r.Pending() != 0 {
		t.Fatal("partial datagram not expired")
	}
	if r.TimedOut != 1 {
		t.Fatalf("TimedOut = %d", r.TimedOut)
	}
}

func TestInterleavedDatagramsFromTwoSources(t *testing.T) {
	eng := sim.NewEngine(1)
	r := NewReassembler(eng)
	var fa, fb Fragmenter
	pa := bytes.Repeat([]byte{0xaa}, 300)
	pb := bytes.Repeat([]byte{0xbb}, 300)
	fra := fa.Fragment(CompressHeader(meshHeader(1, 9)), pa, phy.MaxMACPayload)
	frb := fb.Fragment(CompressHeader(meshHeader(2, 9)), pb, phy.MaxMACPayload)
	srcA, srcB := phy.AddrFromID(1), phy.AddrFromID(2)
	var gotA, gotB *ip6.Packet
	for i := range fra {
		if p, _ := r.Input(srcA, fra[i], 0); p != nil {
			gotA = p
		}
		if p, _ := r.Input(srcB, frb[i], 0); p != nil {
			gotB = p
		}
	}
	if gotA == nil || gotB == nil {
		t.Fatal("interleaved reassembly failed")
	}
	if !bytes.Equal(gotA.Payload, pa) || !bytes.Equal(gotB.Payload, pb) {
		t.Fatal("interleaved payloads mixed up")
	}
}

func TestRewriteTag(t *testing.T) {
	var f Fragmenter
	frags := f.Fragment(CompressHeader(meshHeader(1, 2)), make([]byte, 400), phy.MaxMACPayload)
	if err := RewriteTag(frags[1], 0x1234); err != nil {
		t.Fatal(err)
	}
	fi, err := ParseFragment(frags[1])
	if err != nil || fi.Tag != 0x1234 {
		t.Fatalf("tag rewrite: %+v %v", fi, err)
	}
	if err := RewriteTag(frags[0][4:], 1); err == nil {
		t.Fatal("RewriteTag accepted a non-fragment")
	}
}

// Property: any payload fragments and reassembles byte-exactly, for any
// size up to the 6LoWPAN datagram limit and any delivery order.
func TestQuickFragmentRoundTrip(t *testing.T) {
	eng := sim.NewEngine(1)
	r := NewReassembler(eng)
	var f Fragmenter
	check := func(n uint16, seed int64, srcID, dstID uint8) bool {
		size := int(n) % 1900
		payload := make([]byte, size)
		rng := rand.New(rand.NewSource(seed))
		rng.Read(payload)
		h := meshHeader(int(srcID), int(dstID))
		frags := f.Fragment(CompressHeader(h), payload, phy.MaxMACPayload)
		order := rng.Perm(len(frags))
		var pkt *ip6.Packet
		for _, i := range order {
			p, err := r.Input(phy.AddrFromID(int(srcID)), frags[i], 0)
			if err != nil {
				return false
			}
			if p != nil {
				pkt = p
			}
		}
		return pkt != nil && bytes.Equal(pkt.Payload, payload) &&
			pkt.Src == h.Src && pkt.Dst == h.Dst && pkt.NextHeader == h.NextHeader
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: IPHC round-trips arbitrary headers.
func TestQuickIPHCRoundTrip(t *testing.T) {
	check := func(tc uint8, fl uint32, nh, hl uint8, src, dst [16]byte) bool {
		h := &ip6.Header{
			TrafficClass: tc,
			FlowLabel:    fl & 0xfffff,
			NextHeader:   nh,
			HopLimit:     hl,
			Src:          ip6.Addr(src),
			Dst:          ip6.Addr(dst),
		}
		g, n, err := DecompressHeader(CompressHeader(h))
		if err != nil {
			return false
		}
		_ = n
		return *g == *h
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
