package sixlowpan

import (
	"tcplp/internal/ip6"
	"tcplp/internal/phy"
	"tcplp/internal/sim"
)

// DefaultReassemblyTimeout bounds how long a partial datagram may wait
// for its missing fragments.
const DefaultReassemblyTimeout = 10 * sim.Second

type partialKey struct {
	src phy.Addr
	tag uint16
}

type partial struct {
	header   *ip6.Header // from FRAG1, nil until it arrives
	size     int         // uncompressed datagram size
	payload  []byte      // size-40 bytes
	have     []bool      // per-byte coverage of payload
	covered  int
	deadline sim.Time
}

// Reassembler rebuilds IPv6 packets from 6LoWPAN link payloads. One
// instance serves one interface; partial datagrams are keyed by
// (link-layer source, datagram tag).
type Reassembler struct {
	eng      *sim.Engine
	timeout  sim.Duration
	inflight map[partialKey]*partial

	// TimedOut counts datagrams dropped for missing fragments.
	TimedOut uint64
}

// NewReassembler returns a reassembler with the default timeout.
func NewReassembler(eng *sim.Engine) *Reassembler {
	r := &Reassembler{
		eng:      eng,
		timeout:  DefaultReassemblyTimeout,
		inflight: map[partialKey]*partial{},
	}
	return r
}

// SetTimeout overrides the reassembly timeout.
func (r *Reassembler) SetTimeout(d sim.Duration) { r.timeout = d }

// Pending returns the number of partially reassembled datagrams.
func (r *Reassembler) Pending() int {
	r.expire()
	return len(r.inflight)
}

func (r *Reassembler) expire() {
	now := r.eng.Now()
	for k, p := range r.inflight {
		if now >= p.deadline {
			delete(r.inflight, k)
			r.TimedOut++
		}
	}
}

// Input processes one link payload from src. When a datagram completes,
// the reassembled packet is returned. A nil packet with nil error means
// "more fragments needed" (or an unrelated dispatch, which is dropped).
func (r *Reassembler) Input(src phy.Addr, b []byte) (*ip6.Packet, error) {
	r.expire()
	switch Classify(b) {
	case KindUnfragmented:
		h, n, err := DecompressHeader(b)
		if err != nil {
			return nil, err
		}
		pkt := &ip6.Packet{Header: *h, Payload: append([]byte(nil), b[n:]...)}
		pkt.PayloadLen = uint16(len(pkt.Payload))
		return pkt, nil

	case KindFrag1:
		fi, err := ParseFragment(b)
		if err != nil {
			return nil, err
		}
		h, n, err := DecompressHeader(b[fi.HeaderLen:])
		if err != nil {
			return nil, err
		}
		p := r.get(src, fi)
		p.header = h
		return r.deposit(src, fi, p, 0, b[fi.HeaderLen+n:])

	case KindFragN:
		fi, err := ParseFragment(b)
		if err != nil {
			return nil, err
		}
		if fi.Offset < 40 || fi.Offset > int(fi.DatagramSize) {
			return nil, ErrBadOffset
		}
		p := r.get(src, fi)
		return r.deposit(src, fi, p, fi.Offset-40, b[fi.HeaderLen:])
	}
	return nil, nil
}

func (r *Reassembler) get(src phy.Addr, fi FragInfo) *partial {
	k := partialKey{src: src, tag: fi.Tag}
	p := r.inflight[k]
	if p == nil || p.size != int(fi.DatagramSize) {
		p = &partial{
			size:    int(fi.DatagramSize),
			payload: make([]byte, int(fi.DatagramSize)-40),
			have:    make([]bool, int(fi.DatagramSize)-40),
		}
		r.inflight[k] = p
	}
	p.deadline = r.eng.Now().Add(r.timeout)
	return p
}

func (r *Reassembler) deposit(src phy.Addr, fi FragInfo, p *partial, off int, data []byte) (*ip6.Packet, error) {
	if off+len(data) > len(p.payload) {
		return nil, ErrBadOffset
	}
	for i, c := range data {
		if !p.have[off+i] {
			p.have[off+i] = true
			p.covered++
		}
		p.payload[off+i] = c
	}
	if p.covered < len(p.payload) || p.header == nil {
		return nil, nil
	}
	delete(r.inflight, partialKey{src: src, tag: fi.Tag})
	pkt := &ip6.Packet{Header: *p.header, Payload: p.payload}
	pkt.PayloadLen = uint16(len(pkt.Payload))
	return pkt, nil
}
