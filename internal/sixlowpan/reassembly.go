package sixlowpan

import (
	"tcplp/internal/ip6"
	"tcplp/internal/obs"
	"tcplp/internal/phy"
	"tcplp/internal/sim"
)

// DefaultReassemblyTimeout bounds how long a partial datagram may wait
// for its missing fragments.
const DefaultReassemblyTimeout = 10 * sim.Second

type partialKey struct {
	src phy.Addr
	tag uint16
}

type partial struct {
	header   *ip6.Header // from FRAG1, nil until it arrives
	size     int         // uncompressed datagram size
	payload  []byte      // size-40 bytes
	have     []bool      // per-byte coverage of payload
	covered  int
	deadline sim.Time
	jid      int64 // journey packet id carried by the fragments (0 = untagged)
}

// Reassembler rebuilds IPv6 packets from 6LoWPAN link payloads. One
// instance serves one interface; partial datagrams are keyed by
// (link-layer source, datagram tag).
type Reassembler struct {
	eng      *sim.Engine
	timeout  sim.Duration
	inflight map[partialKey]*partial

	// Free lists: partial descriptors and have bitmaps recycle on both
	// the completion and expiry paths; payload buffers only on expiry
	// (a completed payload escapes into the returned ip6.Packet).
	freePartial []*partial
	freeHave    [][]bool
	freeBuf     [][]byte

	// TimedOut counts datagrams dropped for missing fragments.
	TimedOut uint64

	// Trace/Node, when Trace is non-nil, emit reassembly events (obs).
	Trace *obs.Trace
	Node  int
}

// NewReassembler returns a reassembler with the default timeout.
func NewReassembler(eng *sim.Engine) *Reassembler {
	r := &Reassembler{
		eng:      eng,
		timeout:  DefaultReassemblyTimeout,
		inflight: map[partialKey]*partial{},
	}
	return r
}

// SetTimeout overrides the reassembly timeout.
func (r *Reassembler) SetTimeout(d sim.Duration) { r.timeout = d }

// Pending returns the number of partially reassembled datagrams.
func (r *Reassembler) Pending() int {
	r.expire()
	return len(r.inflight)
}

func (r *Reassembler) expire() {
	now := r.eng.Now()
	for k, p := range r.inflight {
		if now >= p.deadline {
			delete(r.inflight, k)
			r.TimedOut++
			if tr := r.Trace; tr != nil {
				tr.Emit(obs.Event{T: now, Kind: obs.FragTimeout, Node: r.Node, A: int64(k.tag), J: p.jid, Cause: obs.CauseReassemblyTimeout})
			}
			r.release(p, true)
		}
	}
}

// popPartial recycles a partial descriptor (or allocates one).
func (r *Reassembler) popPartial() *partial {
	if n := len(r.freePartial); n > 0 {
		p := r.freePartial[n-1]
		r.freePartial[n-1] = nil
		r.freePartial = r.freePartial[:n-1]
		return p
	}
	return &partial{}
}

// getBuf returns an n-byte payload buffer (contents undefined; deposit
// overwrites every byte it credits as covered).
func (r *Reassembler) getBuf(n int) []byte {
	if ln := len(r.freeBuf); ln > 0 {
		b := r.freeBuf[ln-1]
		r.freeBuf[ln-1] = nil
		r.freeBuf = r.freeBuf[:ln-1]
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

// getHave returns an n-entry coverage bitmap, zeroed.
func (r *Reassembler) getHave(n int) []bool {
	if ln := len(r.freeHave); ln > 0 {
		h := r.freeHave[ln-1]
		r.freeHave[ln-1] = nil
		r.freeHave = r.freeHave[:ln-1]
		if cap(h) >= n {
			h = h[:n]
			for i := range h {
				h[i] = false
			}
			return h
		}
	}
	return make([]bool, n)
}

// release returns a partial's storage to the free lists. withPayload is
// false on the completion path, where the payload escapes into the
// returned ip6.Packet.
func (r *Reassembler) release(p *partial, withPayload bool) {
	if withPayload && cap(p.payload) > 0 {
		r.freeBuf = append(r.freeBuf, p.payload)
	}
	if cap(p.have) > 0 {
		r.freeHave = append(r.freeHave, p.have)
	}
	*p = partial{}
	r.freePartial = append(r.freePartial, p)
}

// Input processes one link payload from src. When a datagram completes,
// the reassembled packet is returned. A nil packet with nil error means
// "more fragments needed" (or an unrelated dispatch, which is dropped).
// jid is the journey packet id the carrying frame was tagged with
// (0 = untagged); it is threaded onto the reassembled packet.
func (r *Reassembler) Input(src phy.Addr, b []byte, jid int64) (*ip6.Packet, error) {
	r.expire()
	switch Classify(b) {
	case KindUnfragmented:
		h, n, err := DecompressHeader(b)
		if err != nil {
			return nil, err
		}
		pkt := &ip6.Packet{Header: *h, Payload: append([]byte(nil), b[n:]...)}
		pkt.PayloadLen = uint16(len(pkt.Payload))
		pkt.JID = jid
		return pkt, nil

	case KindFrag1:
		fi, err := ParseFragment(b)
		if err != nil {
			return nil, err
		}
		h, n, err := DecompressHeader(b[fi.HeaderLen:])
		if err != nil {
			return nil, err
		}
		p := r.get(src, fi)
		p.header = h
		if jid != 0 {
			p.jid = jid
		}
		return r.deposit(src, fi, p, 0, b[fi.HeaderLen+n:])

	case KindFragN:
		fi, err := ParseFragment(b)
		if err != nil {
			return nil, err
		}
		if fi.Offset < 40 || fi.Offset > int(fi.DatagramSize) {
			return nil, ErrBadOffset
		}
		p := r.get(src, fi)
		if jid != 0 {
			p.jid = jid
		}
		return r.deposit(src, fi, p, fi.Offset-40, b[fi.HeaderLen:])
	}
	return nil, nil
}

func (r *Reassembler) get(src phy.Addr, fi FragInfo) *partial {
	k := partialKey{src: src, tag: fi.Tag}
	p := r.inflight[k]
	if p == nil || p.size != int(fi.DatagramSize) {
		if p != nil {
			r.release(p, true)
		}
		p = r.popPartial()
		p.size = int(fi.DatagramSize)
		p.payload = r.getBuf(int(fi.DatagramSize) - 40)
		p.have = r.getHave(int(fi.DatagramSize) - 40)
		r.inflight[k] = p
	}
	p.deadline = r.eng.Now().Add(r.timeout)
	return p
}

func (r *Reassembler) deposit(src phy.Addr, fi FragInfo, p *partial, off int, data []byte) (*ip6.Packet, error) {
	if off+len(data) > len(p.payload) {
		return nil, ErrBadOffset
	}
	for i, c := range data {
		if !p.have[off+i] {
			p.have[off+i] = true
			p.covered++
		}
		p.payload[off+i] = c
	}
	if p.covered < len(p.payload) || p.header == nil {
		return nil, nil
	}
	delete(r.inflight, partialKey{src: src, tag: fi.Tag})
	pkt := &ip6.Packet{Header: *p.header, Payload: p.payload}
	pkt.PayloadLen = uint16(len(pkt.Payload))
	pkt.JID = p.jid
	if tr := r.Trace; tr != nil {
		tr.Emit(obs.Event{T: r.eng.Now(), Kind: obs.FragReassembled, Node: r.Node, A: int64(fi.Tag), Len: p.size, J: p.jid})
	}
	r.release(p, false)
	return pkt, nil
}
