// Package sixlowpan implements the 6LoWPAN adaptation layer (RFC 4944 /
// RFC 6282 subset) that lets IPv6 packets ride on 127-byte 802.15.4
// frames: IPHC header compression, FRAG1/FRAGN fragmentation with
// 8-octet offset units accounted in uncompressed-datagram bytes, and
// reassembly with timeouts. Loss of any one fragment loses the whole
// packet — the reliability trade-off behind the paper's MSS study (§6.1).
package sixlowpan

import (
	"encoding/binary"
	"errors"

	"tcplp/internal/ip6"
)

// Dispatch prefixes.
const (
	dispIPHC  = 0x60 // 011xxxxx
	dispFRAG1 = 0xc0 // 11000xxx
	dispFRAGN = 0xe0 // 11100xxx
)

// IPHC flag bits within the two-byte IPHC base.
const (
	// byte 0: 011 TF(2) NH(1) HLIM(2)
	iphcTFElided = 0x18 // TF=11: traffic class and flow label elided
	iphcTFInline = 0x00 // TF=00: 4 bytes inline
	// byte 1: CID SAC SAM(2) M DAC DAM(2)
	iphcSAC   = 0x40
	iphcSAM16 = 0x20 // SAM=10: 16 bits inline (with SAC: context-based)
	iphcDAC   = 0x04
	iphcDAM16 = 0x02
)

// Compression errors.
var (
	ErrNotIPHC    = errors.New("sixlowpan: not an IPHC header")
	ErrTruncated  = errors.New("sixlowpan: truncated")
	ErrBadVersion = errors.New("sixlowpan: cannot compress non-IPv6")
)

// CompressHeader encodes h in IPHC form. The hop limit is always carried
// inline so that relays can decrement it in place when forwarding
// fragments without reassembly. Addresses under the mesh context
// (fd00::/64, short IID) compress to 16 bits; others ride inline in full.
// Typical result: 8 bytes in place of 40 (Table 6: "IPv6 2 B to 28 B").
func CompressHeader(h *ip6.Header) []byte {
	b := make([]byte, 2, 12)
	b[0] = dispIPHC
	tfElided := h.TrafficClass == 0 && h.FlowLabel == 0
	if tfElided {
		b[0] |= iphcTFElided
	}
	// TF=00 carries traffic class and flow label inline in 4 bytes;
	// NH=0 carries the next header inline; HLIM=00 the hop limit.
	if !tfElided {
		b = append(b, h.TrafficClass,
			byte(h.FlowLabel>>16)&0x0f, byte(h.FlowLabel>>8), byte(h.FlowLabel))
	}
	b = append(b, h.NextHeader, h.HopLimit)
	if iid, ok := h.Src.IID16(); ok {
		b[1] |= iphcSAC | iphcSAM16
		b = binary.BigEndian.AppendUint16(b, iid)
	} else {
		b = append(b, h.Src[:]...)
	}
	if iid, ok := h.Dst.IID16(); ok {
		b[1] |= iphcDAC | iphcDAM16
		b = binary.BigEndian.AppendUint16(b, iid)
	} else {
		b = append(b, h.Dst[:]...)
	}
	return b
}

// DecompressHeader parses an IPHC-compressed header, returning the header
// (PayloadLen zero; the caller knows it from framing) and the number of
// bytes consumed.
func DecompressHeader(b []byte) (*ip6.Header, int, error) {
	if len(b) < 2 || b[0]&0xe0 != dispIPHC {
		return nil, 0, ErrNotIPHC
	}
	h := &ip6.Header{}
	i := 2
	if b[0]&iphcTFElided == 0 {
		if len(b) < i+4 {
			return nil, 0, ErrTruncated
		}
		h.TrafficClass = b[i]
		h.FlowLabel = uint32(b[i+1]&0x0f)<<16 | uint32(b[i+2])<<8 | uint32(b[i+3])
		i += 4
	}
	if len(b) < i+2 {
		return nil, 0, ErrTruncated
	}
	h.NextHeader = b[i]
	h.HopLimit = b[i+1]
	i += 2
	readAddr := func(compressed bool) (ip6.Addr, error) {
		var a ip6.Addr
		if compressed {
			if len(b) < i+2 {
				return a, ErrTruncated
			}
			copy(a[:8], ip6.ULAPrefix[:])
			a[14] = b[i]
			a[15] = b[i+1]
			i += 2
			return a, nil
		}
		if len(b) < i+16 {
			return a, ErrTruncated
		}
		copy(a[:], b[i:i+16])
		i += 16
		return a, nil
	}
	var err error
	if h.Src, err = readAddr(b[1]&iphcSAM16 != 0); err != nil {
		return nil, 0, err
	}
	if h.Dst, err = readAddr(b[1]&iphcDAM16 != 0); err != nil {
		return nil, 0, err
	}
	return h, i, nil
}

// hopLimitIndex returns the byte offset of the inline hop limit within an
// IPHC header starting at b[0].
func hopLimitIndex(b []byte) (int, bool) {
	if len(b) < 2 || b[0]&0xe0 != dispIPHC {
		return 0, false
	}
	i := 2
	if b[0]&iphcTFElided == 0 {
		i += 4
	}
	i++ // next header
	if len(b) <= i {
		return 0, false
	}
	return i, true
}

// DecrementHopLimit decrements the hop limit inside an IPHC-led link
// payload in place, returning the new value. Used by relays forwarding
// fragments without reassembly. ok is false if b is not IPHC-led.
func DecrementHopLimit(b []byte) (uint8, bool) {
	i, ok := hopLimitIndex(b)
	if !ok || b[i] == 0 {
		return 0, ok && false
	}
	b[i]--
	return b[i], true
}
