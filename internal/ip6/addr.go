// Package ip6 provides the minimal IPv6 layer TCPlp runs over: the
// 40-byte header codec, ECN codepoints in the traffic class, protocol
// demultiplexing, and hop-limited forwarding. Routing decisions live in
// package mesh; compression and fragmentation live in package sixlowpan.
package ip6

import (
	"encoding/binary"
	"fmt"
)

// Addr is a 128-bit IPv6 address.
type Addr [16]byte

// ULAPrefix is the unique-local /64 prefix all simulated nodes share,
// which is also the single 6LoWPAN compression context.
var ULAPrefix = [8]byte{0xfd, 0x00, 0, 0, 0, 0, 0, 0}

// AddrFromID returns fd00::(id+1), the mesh-local address of node id.
func AddrFromID(id int) Addr {
	var a Addr
	copy(a[:8], ULAPrefix[:])
	binary.BigEndian.PutUint64(a[8:], uint64(id)+1)
	return a
}

// ID recovers the node identifier from an AddrFromID address; ok is
// false for addresses outside the mesh prefix or with a wide IID.
func (a Addr) ID() (int, bool) {
	for i := range ULAPrefix {
		if a[i] != ULAPrefix[i] {
			return 0, false
		}
	}
	iid := binary.BigEndian.Uint64(a[8:])
	if iid == 0 || iid > 1<<16 {
		return 0, false
	}
	return int(iid) - 1, true
}

// IID16 returns the low 16 bits of the interface identifier and whether
// the address is compressible to 16-bit IPHC form (mesh prefix, IID fits
// in 16 bits).
func (a Addr) IID16() (uint16, bool) {
	for i := range ULAPrefix {
		if a[i] != ULAPrefix[i] {
			return 0, false
		}
	}
	for i := 8; i < 14; i++ {
		if a[i] != 0 {
			return 0, false
		}
	}
	return binary.BigEndian.Uint16(a[14:]), true
}

func (a Addr) String() string {
	if id, ok := a.ID(); ok {
		return fmt.Sprintf("fd00::%x", id+1)
	}
	return fmt.Sprintf("%x:%x:%x:%x:%x:%x:%x:%x",
		binary.BigEndian.Uint16(a[0:]), binary.BigEndian.Uint16(a[2:]),
		binary.BigEndian.Uint16(a[4:]), binary.BigEndian.Uint16(a[6:]),
		binary.BigEndian.Uint16(a[8:]), binary.BigEndian.Uint16(a[10:]),
		binary.BigEndian.Uint16(a[12:]), binary.BigEndian.Uint16(a[14:]))
}
