package ip6

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestHeaderRoundTrip(t *testing.T) {
	p := &Packet{
		Header: Header{
			TrafficClass: 0xa2,
			FlowLabel:    0xfedcb,
			NextHeader:   ProtoTCP,
			HopLimit:     64,
			Src:          AddrFromID(1),
			Dst:          AddrFromID(2),
		},
		Payload: []byte("segment bytes"),
	}
	b := p.Encode()
	if len(b) != HeaderLen+len(p.Payload) {
		t.Fatalf("encoded %d bytes", len(b))
	}
	g, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if g.Header != p.Header || !bytes.Equal(g.Payload, p.Payload) {
		t.Fatalf("round trip: %+v vs %+v", g, p)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(make([]byte, 10)); err != ErrTruncated {
		t.Fatalf("short: %v", err)
	}
	b := (&Packet{Header: Header{Src: AddrFromID(0), Dst: AddrFromID(1)}}).Encode()
	b[0] = 4 << 4
	if _, err := Decode(b); err != ErrNotIPv6 {
		t.Fatalf("version: %v", err)
	}
	b = (&Packet{Payload: []byte("xy")}).Encode()
	if _, err := Decode(b[:len(b)-1]); err != ErrBadPayload {
		t.Fatalf("length: %v", err)
	}
}

func TestECN(t *testing.T) {
	h := &Header{}
	h.SetECN(ECT0)
	if h.ECN() != ECT0 {
		t.Fatal("ECT0 round trip")
	}
	h.TrafficClass = 0xfc // DSCP bits set
	h.SetECN(CE)
	if h.ECN() != CE || h.TrafficClass&0xfc != 0xfc {
		t.Fatal("SetECN must preserve DSCP bits")
	}
}

func TestAddrIDMapping(t *testing.T) {
	for _, id := range []int{0, 1, 14, 999} {
		a := AddrFromID(id)
		got, ok := a.ID()
		if !ok || got != id {
			t.Fatalf("ID round trip for %d: %d %v", id, got, ok)
		}
		iid, ok := a.IID16()
		if !ok || int(iid) != id+1 {
			t.Fatalf("IID16 for %d: %d %v", id, iid, ok)
		}
	}
	var global Addr
	global[0] = 0x20
	if _, ok := global.ID(); ok {
		t.Fatal("non-mesh address mapped to an ID")
	}
	if got := AddrFromID(4).String(); got != "fd00::5" {
		t.Fatalf("String() = %q", got)
	}
}

// Property: Encode/Decode round-trips arbitrary packets.
func TestQuickPacketRoundTrip(t *testing.T) {
	f := func(tc uint8, fl uint32, nh, hl uint8, src, dst [16]byte, payload []byte) bool {
		p := &Packet{
			Header: Header{
				TrafficClass: tc, FlowLabel: fl & 0xfffff,
				NextHeader: nh, HopLimit: hl,
				Src: Addr(src), Dst: Addr(dst),
			},
			Payload: payload,
		}
		g, err := Decode(p.Encode())
		if err != nil {
			return false
		}
		return g.Header == p.Header && bytes.Equal(g.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
