package ip6

import (
	"encoding/binary"
	"errors"
)

// Protocol numbers.
const (
	ProtoTCP  = 6
	ProtoUDP  = 17
	ProtoNone = 59
)

// ECN codepoints (RFC 3168), the low two bits of the traffic class.
type ECN uint8

// ECN values.
const (
	NotECT ECN = 0
	ECT1   ECN = 1
	ECT0   ECN = 2
	CE     ECN = 3
)

// HeaderLen is the fixed IPv6 header length.
const HeaderLen = 40

// DefaultHopLimit is the hop limit applied to locally originated packets.
const DefaultHopLimit = 64

// Header is a parsed IPv6 fixed header.
type Header struct {
	TrafficClass uint8
	FlowLabel    uint32 // 20 bits
	PayloadLen   uint16
	NextHeader   uint8
	HopLimit     uint8
	Src, Dst     Addr
}

// ECN returns the ECN codepoint from the traffic class.
func (h *Header) ECN() ECN { return ECN(h.TrafficClass & 0x3) }

// SetECN replaces the ECN codepoint in the traffic class.
func (h *Header) SetECN(e ECN) { h.TrafficClass = h.TrafficClass&^0x3 | uint8(e) }

// Packet is an IPv6 packet: header plus upper-layer payload. PayloadLen
// is maintained by Encode.
type Packet struct {
	Header
	Payload []byte

	// JID is the journey packet id for causal tracing (0 = untagged).
	// It rides alongside the packet as simulator metadata — Encode never
	// serializes it and Decode leaves it zero — so tagging a packet can
	// never change wire bytes, air time, or any RNG draw.
	JID int64
}

// AppendEncode serializes the packet onto dst, setting PayloadLen from
// the payload, and returns the extended slice. Callers that encode
// repeatedly can pass a reused buffer (dst[:0]) to avoid a fresh
// allocation per packet.
func (p *Packet) AppendEncode(dst []byte) []byte {
	p.PayloadLen = uint16(len(p.Payload))
	off := len(dst)
	dst = append(dst, make([]byte, HeaderLen)...)
	b := dst[off:]
	b[0] = 6<<4 | p.TrafficClass>>4
	b[1] = p.TrafficClass<<4 | uint8(p.FlowLabel>>16)
	binary.BigEndian.PutUint16(b[2:], uint16(p.FlowLabel))
	binary.BigEndian.PutUint16(b[4:], p.PayloadLen)
	b[6] = p.NextHeader
	b[7] = p.HopLimit
	copy(b[8:24], p.Src[:])
	copy(b[24:40], p.Dst[:])
	return append(dst, p.Payload...)
}

// Encode serializes the packet into a fresh buffer.
func (p *Packet) Encode() []byte {
	return p.AppendEncode(make([]byte, 0, HeaderLen+len(p.Payload)))
}

// Decode errors.
var (
	ErrTruncated  = errors.New("ip6: truncated packet")
	ErrNotIPv6    = errors.New("ip6: version is not 6")
	ErrBadPayload = errors.New("ip6: payload length mismatch")
)

// Decode parses a serialized IPv6 packet. The payload is copied.
func Decode(b []byte) (*Packet, error) {
	if len(b) < HeaderLen {
		return nil, ErrTruncated
	}
	if b[0]>>4 != 6 {
		return nil, ErrNotIPv6
	}
	p := &Packet{}
	p.TrafficClass = b[0]<<4 | b[1]>>4
	p.FlowLabel = uint32(b[1]&0xf)<<16 | uint32(binary.BigEndian.Uint16(b[2:]))
	p.PayloadLen = binary.BigEndian.Uint16(b[4:])
	p.NextHeader = b[6]
	p.HopLimit = b[7]
	copy(p.Src[:], b[8:24])
	copy(p.Dst[:], b[24:40])
	if int(p.PayloadLen) != len(b)-HeaderLen {
		return nil, ErrBadPayload
	}
	p.Payload = append([]byte(nil), b[HeaderLen:]...)
	return p, nil
}
