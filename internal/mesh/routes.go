package mesh

// Routes holds next-hop forwarding state for every (src, dst) pair,
// computed as shortest paths over the connectivity graph. The paper uses
// OpenThread's routing but explicitly studies TCP, not routing (§5);
// static shortest-path routes preserve the data-plane behaviour while
// keeping experiments reproducible (the paper likewise pins routes "for
// experimental consistency", §9.5).
type Routes struct {
	next [][]int // next[src][dst] = next hop node id, -1 unreachable
	dist [][]int // dist[src][dst] = hop count, -1 unreachable
}

// ComputeRoutes runs BFS from every node over adj.
func ComputeRoutes(adj [][]int) *Routes {
	n := len(adj)
	r := &Routes{
		next: make([][]int, n),
		dist: make([][]int, n),
	}
	for src := 0; src < n; src++ {
		r.next[src] = make([]int, n)
		r.dist[src] = make([]int, n)
		for i := range r.next[src] {
			r.next[src][i] = -1
			r.dist[src][i] = -1
		}
	}
	// BFS from each destination, recording predecessor distances, then
	// derive next hops: next[src][dst] is any neighbor of src one step
	// closer to dst.
	for dst := 0; dst < n; dst++ {
		distTo := bfs(adj, dst)
		for src := 0; src < n; src++ {
			if src == dst || distTo[src] < 0 {
				continue
			}
			r.dist[src][dst] = distTo[src]
			for _, nb := range adj[src] {
				if distTo[nb] >= 0 && distTo[nb] == distTo[src]-1 {
					r.next[src][dst] = nb
					break
				}
			}
		}
	}
	return r
}

func bfs(adj [][]int, from int) []int {
	dist := make([]int, len(adj))
	for i := range dist {
		dist[i] = -1
	}
	dist[from] = 0
	queue := []int{from}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, nb := range adj[v] {
			if dist[nb] < 0 {
				dist[nb] = dist[v] + 1
				queue = append(queue, nb)
			}
		}
	}
	return dist
}

// NextHop returns the next node on the path from src to dst.
func (r *Routes) NextHop(src, dst int) (int, bool) {
	if src < 0 || src >= len(r.next) || dst < 0 || dst >= len(r.next) {
		return 0, false
	}
	nh := r.next[src][dst]
	return nh, nh >= 0
}

// Hops returns the path length from src to dst (-1 if unreachable).
func (r *Routes) Hops(src, dst int) int {
	if src == dst {
		return 0
	}
	return r.dist[src][dst]
}

// Parent returns a leaf's next hop toward the border router — its Thread
// parent.
func (r *Routes) Parent(leaf, border int) (int, bool) {
	return r.NextHop(leaf, border)
}
