package mesh

// Routes holds next-hop forwarding state computed as shortest paths over
// the connectivity graph. The paper uses OpenThread's routing but
// explicitly studies TCP, not routing (§5); static shortest-path routes
// preserve the data-plane behaviour while keeping experiments reproducible
// (the paper likewise pins routes "for experimental consistency", §9.5).
//
// Columns are computed lazily, one bounded BFS per *queried destination*,
// instead of materialising the all-pairs matrix: a thousand-node field
// whose flows all terminate at a border router costs one BFS, not n. Like
// the simulation engine it serves, Routes is single-goroutine state.
type Routes struct {
	adj  [][]int
	next map[int][]int // next[dst][src] = next hop toward dst, -1 unreachable
	dist map[int][]int // dist[dst][src] = hop count to dst, -1 unreachable
}

// ComputeRoutes prepares shortest-path routing over adj. Per-destination
// state is built on first use.
func ComputeRoutes(adj [][]int) *Routes {
	return &Routes{
		adj:  adj,
		next: map[int][]int{},
		dist: map[int][]int{},
	}
}

// column returns the next-hop and distance vectors toward dst, running the
// BFS on first use. Next hops match the eager all-pairs construction this
// replaced: the first neighbor (in adjacency order) one step closer to dst.
func (r *Routes) column(dst int) (next, dist []int) {
	if next, ok := r.next[dst]; ok {
		return next, r.dist[dst]
	}
	distTo := bfs(r.adj, dst)
	n := len(r.adj)
	next = make([]int, n)
	for src := 0; src < n; src++ {
		next[src] = -1
		if src == dst || distTo[src] < 0 {
			continue
		}
		for _, nb := range r.adj[src] {
			if distTo[nb] >= 0 && distTo[nb] == distTo[src]-1 {
				next[src] = nb
				break
			}
		}
	}
	dist = distTo
	dist[dst] = 0
	r.next[dst] = next
	r.dist[dst] = dist
	return next, dist
}

func bfs(adj [][]int, from int) []int {
	dist := make([]int, len(adj))
	for i := range dist {
		dist[i] = -1
	}
	dist[from] = 0
	queue := []int{from}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, nb := range adj[v] {
			if dist[nb] < 0 {
				dist[nb] = dist[v] + 1
				queue = append(queue, nb)
			}
		}
	}
	return dist
}

// NextHop returns the next node on the path from src to dst.
func (r *Routes) NextHop(src, dst int) (int, bool) {
	if src < 0 || src >= len(r.adj) || dst < 0 || dst >= len(r.adj) {
		return 0, false
	}
	next, _ := r.column(dst)
	nh := next[src]
	return nh, nh >= 0
}

// Hops returns the path length from src to dst (-1 if unreachable).
func (r *Routes) Hops(src, dst int) int {
	if src == dst {
		return 0
	}
	_, dist := r.column(dst)
	return dist[src]
}

// Parent returns a leaf's next hop toward the border router — its Thread
// parent.
func (r *Routes) Parent(leaf, border int) (int, bool) {
	return r.NextHop(leaf, border)
}
