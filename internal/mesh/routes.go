package mesh

// Routes holds next-hop forwarding state computed as shortest paths over
// the connectivity graph. The paper uses OpenThread's routing but
// explicitly studies TCP, not routing (§5); static shortest-path routes
// preserve the data-plane behaviour while keeping experiments reproducible
// (the paper likewise pins routes "for experimental consistency", §9.5).
//
// Columns are computed lazily, one bounded BFS per *queried destination*,
// instead of materialising the all-pairs matrix: a thousand-node field
// whose flows all terminate at a border router costs one BFS, not n. Like
// the simulation engine it serves, Routes is single-goroutine state.
//
// Columns are stored as int32: a gateway fleet routes replies toward
// every device, so a 10k-node city materialises hundreds of columns and
// the 10k-node-profile showed them (and the BFS building them) as the
// top allocation site. Halving the element size halves both the
// resident column slabs and the BFS's cache footprint without touching
// route choice.
type Routes struct {
	adj  [][]int
	next map[int][]int32 // next[dst][src] = next hop toward dst, -1 unreachable
	dist map[int][]int32 // dist[dst][src] = hop count to dst, -1 unreachable

	queue []int32 // BFS scratch, reused across columns
}

// ComputeRoutes prepares shortest-path routing over adj. Per-destination
// state is built on first use.
func ComputeRoutes(adj [][]int) *Routes {
	return &Routes{
		adj:  adj,
		next: map[int][]int32{},
		dist: map[int][]int32{},
	}
}

// column returns the next-hop and distance vectors toward dst, running the
// BFS on first use. Next hops match the eager all-pairs construction this
// replaced: the first neighbor (in adjacency order) one step closer to dst.
func (r *Routes) column(dst int) (next, dist []int32) {
	if next, ok := r.next[dst]; ok {
		return next, r.dist[dst]
	}
	distTo := r.bfs(dst)
	n := len(r.adj)
	next = make([]int32, n)
	for src := 0; src < n; src++ {
		next[src] = -1
		if src == dst || distTo[src] < 0 {
			continue
		}
		for _, nb := range r.adj[src] {
			if distTo[nb] >= 0 && distTo[nb] == distTo[src]-1 {
				next[src] = int32(nb)
				break
			}
		}
	}
	dist = distTo
	dist[dst] = 0
	r.next[dst] = next
	r.dist[dst] = dist
	return next, dist
}

func (r *Routes) bfs(from int) []int32 {
	dist := make([]int32, len(r.adj))
	for i := range dist {
		dist[i] = -1
	}
	dist[from] = 0
	if cap(r.queue) < len(r.adj) {
		r.queue = make([]int32, 0, len(r.adj))
	}
	queue := append(r.queue[:0], int32(from))
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, nb := range r.adj[v] {
			if dist[nb] < 0 {
				dist[nb] = dist[v] + 1
				queue = append(queue, int32(nb))
			}
		}
	}
	r.queue = queue[:0]
	return dist
}

// NextHop returns the next node on the path from src to dst.
func (r *Routes) NextHop(src, dst int) (int, bool) {
	if src < 0 || src >= len(r.adj) || dst < 0 || dst >= len(r.adj) {
		return 0, false
	}
	next, _ := r.column(dst)
	nh := next[src]
	return int(nh), nh >= 0
}

// Hops returns the path length from src to dst (-1 if unreachable).
func (r *Routes) Hops(src, dst int) int {
	if src == dst {
		return 0
	}
	_, dist := r.column(dst)
	return int(dist[src])
}

// Parent returns a leaf's next hop toward the border router — its Thread
// parent.
func (r *Routes) Parent(leaf, border int) (int, bool) {
	return r.NextHop(leaf, border)
}
