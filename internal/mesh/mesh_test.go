package mesh

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestChainTopology(t *testing.T) {
	topo := Chain(5, 10)
	if topo.N() != 5 {
		t.Fatalf("n = %d", topo.N())
	}
	adj := topo.Adjacency()
	// Each interior node has exactly two neighbors; ends have one.
	if len(adj[0]) != 1 || len(adj[4]) != 1 {
		t.Fatalf("chain ends: %v %v", adj[0], adj[4])
	}
	for i := 1; i < 4; i++ {
		if len(adj[i]) != 2 {
			t.Fatalf("interior node %d neighbors: %v", i, adj[i])
		}
	}
}

func TestStarTopology(t *testing.T) {
	topo := Star(6, 10)
	adj := topo.Adjacency()
	if len(adj[0]) != 5 {
		t.Fatalf("hub neighbors = %d", len(adj[0]))
	}
}

func TestShortestPathRoutes(t *testing.T) {
	topo := Chain(6, 10)
	r := ComputeRoutes(topo.Adjacency())
	if h := r.Hops(5, 0); h != 5 {
		t.Fatalf("hops = %d", h)
	}
	// Follow next hops from 5 to 0 — must be the descending chain.
	at := 5
	for want := 4; want >= 0; want-- {
		nh, ok := r.NextHop(at, 0)
		if !ok || nh != want {
			t.Fatalf("next hop from %d = %d,%v want %d", at, nh, ok, want)
		}
		at = nh
	}
	if h := r.Hops(3, 3); h != 0 {
		t.Fatalf("self hops = %d", h)
	}
	if _, ok := r.NextHop(0, 99); ok {
		t.Fatal("route to nonexistent node")
	}
}

func TestDisconnectedGraph(t *testing.T) {
	adj := [][]int{{1}, {0}, {3}, {2}} // two islands
	r := ComputeRoutes(adj)
	if _, ok := r.NextHop(0, 3); ok {
		t.Fatal("route across disconnected islands")
	}
	if r.Hops(0, 3) != -1 {
		t.Fatalf("hops across islands = %d", r.Hops(0, 3))
	}
}

// Property: following next hops from any node always reaches the
// destination in exactly Hops steps.
func TestQuickRoutesReachability(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%12) + 3
		rng := rand.New(rand.NewSource(seed))
		// Random connected graph: a ring plus extra edges.
		adj := make([][]int, n)
		addEdge := func(a, b int) {
			adj[a] = append(adj[a], b)
			adj[b] = append(adj[b], a)
		}
		for i := 0; i < n; i++ {
			addEdge(i, (i+1)%n)
		}
		for k := 0; k < n/2; k++ {
			addEdge(rng.Intn(n), rng.Intn(n))
		}
		r := ComputeRoutes(adj)
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				if src == dst {
					continue
				}
				at := src
				steps := 0
				for at != dst {
					nh, ok := r.NextHop(at, dst)
					if !ok || steps > n {
						return false
					}
					at = nh
					steps++
				}
				if steps != r.Hops(src, dst) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestREDBehaviour(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := DefaultRED(false)
	// Below MinTh: always pass.
	for i := 0; i < 100; i++ {
		if r.OnArrival(0, false, rng) != REDPass {
			t.Fatal("drop below MinTh")
		}
	}
	// Far above MaxTh: always drop (no ECN).
	r2 := DefaultRED(false)
	drops := 0
	for i := 0; i < 100; i++ {
		if r2.OnArrival(20, false, rng) == REDDrop {
			drops++
		}
	}
	if drops < 90 {
		t.Fatalf("above MaxTh drops = %d/100", drops)
	}
	// Between thresholds: probabilistic.
	r3 := DefaultRED(false)
	mid := 0
	for i := 0; i < 2000; i++ {
		if r3.OnArrival(4, false, rng) == REDDrop {
			mid++
		}
	}
	if mid == 0 || mid == 2000 {
		t.Fatalf("mid-range drops = %d/2000, want probabilistic", mid)
	}
}

func TestREDMarksWithECN(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	r := DefaultRED(true)
	marks, drops := 0, 0
	for i := 0; i < 100; i++ {
		switch r.OnArrival(20, true, rng) {
		case REDMark:
			marks++
		case REDDrop:
			drops++
		}
	}
	if marks == 0 {
		t.Fatal("ECN-capable packets never marked")
	}
	if drops != 0 {
		t.Fatalf("ECN-capable packets dropped %d times", drops)
	}
	// Non-ECT packets still get dropped.
	if r.OnArrival(20, false, rng) == REDMark {
		t.Fatal("non-ECT packet marked")
	}
}

// Property: the RED average tracks into [min(q), max(q)] territory and
// never produces a verdict other than the three defined.
func TestQuickREDAverageBounded(t *testing.T) {
	f := func(seed int64, lens []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := DefaultRED(seed%2 == 0)
		for _, l := range lens {
			q := int(l % 32)
			switch r.OnArrival(q, l%3 == 0, rng) {
			case REDPass, REDMark, REDDrop:
			default:
				return false
			}
			if r.AvgQueue() < 0 || r.AvgQueue() > 32 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestOfficeHopBand(t *testing.T) {
	topo := Office()
	r := ComputeRoutes(topo.Adjacency())
	for _, id := range []int{11, 12, 13, 14} {
		if h := r.Hops(id, 0); h < 3 || h > 5 {
			t.Fatalf("office node %d at %d hops", id, h)
		}
	}
}
