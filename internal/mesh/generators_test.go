package mesh

import (
	"testing"
)

func TestRandomGeometricConnectedAndDeterministic(t *testing.T) {
	topo := RandomGeometric(300, 8, 1)
	if topo.N() != 300 {
		t.Fatalf("N=%d want 300", topo.N())
	}
	r := ComputeRoutes(topo.Adjacency())
	for i := 1; i < topo.N(); i++ {
		if r.Hops(i, 0) < 0 {
			t.Fatalf("node %d unreachable from border", i)
		}
	}
	again := RandomGeometric(300, 8, 1)
	for i := range topo.Positions {
		if topo.Positions[i] != again.Positions[i] {
			t.Fatalf("same seed diverged at node %d", i)
		}
	}
	other := RandomGeometric(300, 8, 2)
	same := true
	for i := range topo.Positions {
		if topo.Positions[i] != other.Positions[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical placements")
	}
}

func TestRandomGeometricDensityScalesArea(t *testing.T) {
	sparse := RandomGeometric(200, 4, 7)
	dense := RandomGeometric(200, 16, 7)
	degree := func(topo Topology) float64 {
		adj := topo.Adjacency()
		total := 0
		for _, nb := range adj {
			total += len(nb)
		}
		return float64(total) / float64(len(adj))
	}
	if degree(dense) <= degree(sparse) {
		t.Fatalf("density knob inert: dense degree %.1f <= sparse %.1f", degree(dense), degree(sparse))
	}
}

func TestTreeShape(t *testing.T) {
	depth, fanout := 3, 3
	topo := Tree(depth, fanout, 20)
	if want := TreeNodes(depth, fanout); topo.N() != want {
		t.Fatalf("N=%d want %d", topo.N(), want)
	}
	r := ComputeRoutes(topo.Adjacency())
	// Leaves occupy the last fanout^depth ids and must sit depth hops out.
	leaves := fanout * fanout * fanout
	for i := topo.N() - leaves; i < topo.N(); i++ {
		if h := r.Hops(i, 0); h != depth {
			t.Fatalf("leaf %d at %d hops, want %d", i, h, depth)
		}
	}
	// Level-1 nodes are direct children of the root.
	for i := 1; i <= fanout; i++ {
		if h := r.Hops(i, 0); h != 1 {
			t.Fatalf("level-1 node %d at %d hops", i, h)
		}
	}
}

// The grid-backed Adjacency must match the all-pairs scan it replaced.
func TestAdjacencyGridMatchesNaive(t *testing.T) {
	naive := func(topo Topology) [][]int {
		n := topo.N()
		adj := make([][]int, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && topo.Positions[i].Dist(topo.Positions[j]) <= topo.TxRange {
					adj[i] = append(adj[i], j)
				}
			}
		}
		return adj
	}
	for name, topo := range map[string]Topology{
		"office":   Office(),
		"twinleaf": TwinLeaf(4, 20),
		"chain":    Chain(8, 20),
		"random":   RandomGeometric(250, 10, 3),
		"tree":     Tree(3, 4, 25),
	} {
		got, want := topo.Adjacency(), naive(topo)
		if len(got) != len(want) {
			t.Fatalf("%s: node count mismatch", name)
		}
		for i := range want {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("%s: node %d degree %d want %d", name, i, len(got[i]), len(want[i]))
			}
			for k := range want[i] {
				if got[i][k] != want[i][k] {
					t.Fatalf("%s: node %d neighbors %v want %v", name, i, got[i], want[i])
				}
			}
		}
	}
}
