// Package mesh provides topologies, shortest-path route computation, and
// the RED active queue management used in the paper's experiments: chains
// for the hop-count studies (§7), a 15-node office layout standing in for
// the Fig. 3 testbed, and Thread-style role assignment (border router,
// always-on routers, sleepy leaves).
package mesh

import (
	"math"

	"tcplp/internal/phy"
)

// Topology is a set of node positions plus the radio ranges that induce
// the connectivity graph.
type Topology struct {
	Positions  []phy.Point
	TxRange    float64
	SenseRange float64
}

// N returns the number of nodes.
func (t Topology) N() int { return len(t.Positions) }

// Chain places n nodes on a line with the given spacing; the decode range
// covers exactly one hop and the sense range likewise, so non-adjacent
// nodes are hidden terminals — the §7.1 configuration.
func Chain(n int, spacing float64) Topology {
	pos := make([]phy.Point, n)
	for i := range pos {
		pos[i] = phy.Point{X: float64(i) * spacing}
	}
	return Topology{
		Positions:  pos,
		TxRange:    spacing * 1.25,
		SenseRange: spacing * 1.25,
	}
}

// Star places n-1 nodes in a circle around node 0.
func Star(n int, radius float64) Topology {
	pos := make([]phy.Point, n)
	for i := 1; i < n; i++ {
		angle := 2 * math.Pi * float64(i-1) / float64(n-1)
		pos[i] = phy.Point{X: radius * math.Cos(angle), Y: radius * math.Sin(angle)}
	}
	return Topology{Positions: pos, TxRange: radius * 1.2, SenseRange: radius * 1.2}
}

// TwinLeaf builds the Table 9 / Appendix A layouts: a relay path of
// pathHops hops from the border router (node 0) to a shared last relay,
// with two leaves (the last two node ids) hanging off it. Both leaves
// reach the border in pathHops hops and contend for the same relay
// path — the paper's two-flow fairness configuration.
func TwinLeaf(pathHops int, spacing float64) Topology {
	var pos []phy.Point
	for i := 0; i <= pathHops-1; i++ {
		pos = append(pos, phy.Point{X: float64(i) * spacing})
	}
	relayX := float64(pathHops-1) * spacing
	pos = append(pos,
		phy.Point{X: relayX + spacing*0.9, Y: +spacing * 0.35},
		phy.Point{X: relayX + spacing*0.9, Y: -spacing * 0.35},
	)
	return Topology{Positions: pos, TxRange: spacing * 1.25, SenseRange: spacing * 1.25}
}

// Office is a 15-node layout standing in for the paper's office testbed
// (Fig. 3): node 0 is the border router at one end; nodes 11-14 (the
// anemometer stand-ins) sit 3-5 hops away at the far end, matching the
// "-8 dBm transmission power" topology of §9.2. Distances are in meters;
// the default ranges give uplink routes of 3-5 hops for the far nodes.
func Office() Topology {
	pos := []phy.Point{
		{X: 0, Y: 3},    // 0: border router
		{X: 5, Y: 1},    // 1
		{X: 5, Y: 6},    // 2
		{X: 10, Y: 3},   // 3
		{X: 14, Y: 7},   // 4
		{X: 15, Y: 1},   // 5
		{X: 19, Y: 4},   // 6
		{X: 23, Y: 8},   // 7
		{X: 24, Y: 2},   // 8
		{X: 28, Y: 5},   // 9
		{X: 32, Y: 1},   // 10
		{X: 33, Y: 8},   // 11: anemometer
		{X: 36, Y: 4},   // 12: anemometer
		{X: 38, Y: 8.5}, // 13: anemometer
		{X: 39, Y: 1},   // 14: anemometer
	}
	return Topology{Positions: pos, TxRange: 10, SenseRange: 13}
}

// Adjacency returns the connectivity graph under the unit-disk decode
// range.
func (t Topology) Adjacency() [][]int {
	n := t.N()
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && t.Positions[i].Dist(t.Positions[j]) <= t.TxRange {
				adj[i] = append(adj[i], j)
			}
		}
	}
	return adj
}
