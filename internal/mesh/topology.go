// Package mesh provides topologies, shortest-path route computation, and
// the RED active queue management used in the paper's experiments: chains
// for the hop-count studies (§7), a 15-node office layout standing in for
// the Fig. 3 testbed, and Thread-style role assignment (border router,
// always-on routers, sleepy leaves).
package mesh

import (
	"math"
	"math/rand"
	"sort"

	"tcplp/internal/phy"
)

// Topology is a set of node positions plus the radio ranges that induce
// the connectivity graph.
type Topology struct {
	Positions  []phy.Point
	TxRange    float64
	SenseRange float64
}

// N returns the number of nodes.
func (t Topology) N() int { return len(t.Positions) }

// Chain places n nodes on a line with the given spacing; the decode range
// covers exactly one hop and the sense range likewise, so non-adjacent
// nodes are hidden terminals — the §7.1 configuration.
func Chain(n int, spacing float64) Topology {
	pos := make([]phy.Point, n)
	for i := range pos {
		pos[i] = phy.Point{X: float64(i) * spacing}
	}
	return Topology{
		Positions:  pos,
		TxRange:    spacing * 1.25,
		SenseRange: spacing * 1.25,
	}
}

// Star places n-1 nodes in a circle around node 0.
func Star(n int, radius float64) Topology {
	pos := make([]phy.Point, n)
	for i := 1; i < n; i++ {
		angle := 2 * math.Pi * float64(i-1) / float64(n-1)
		pos[i] = phy.Point{X: radius * math.Cos(angle), Y: radius * math.Sin(angle)}
	}
	return Topology{Positions: pos, TxRange: radius * 1.2, SenseRange: radius * 1.2}
}

// TwinLeaf builds the Table 9 / Appendix A layouts: a relay path of
// pathHops hops from the border router (node 0) to a shared last relay,
// with two leaves (the last two node ids) hanging off it. Both leaves
// reach the border in pathHops hops and contend for the same relay
// path — the paper's two-flow fairness configuration.
func TwinLeaf(pathHops int, spacing float64) Topology {
	var pos []phy.Point
	for i := 0; i <= pathHops-1; i++ {
		pos = append(pos, phy.Point{X: float64(i) * spacing})
	}
	relayX := float64(pathHops-1) * spacing
	pos = append(pos,
		phy.Point{X: relayX + spacing*0.9, Y: +spacing * 0.35},
		phy.Point{X: relayX + spacing*0.9, Y: -spacing * 0.35},
	)
	return Topology{Positions: pos, TxRange: spacing * 1.25, SenseRange: spacing * 1.25}
}

// Office is a 15-node layout standing in for the paper's office testbed
// (Fig. 3): node 0 is the border router at one end; nodes 11-14 (the
// anemometer stand-ins) sit 3-5 hops away at the far end, matching the
// "-8 dBm transmission power" topology of §9.2. Distances are in meters;
// the default ranges give uplink routes of 3-5 hops for the far nodes.
func Office() Topology {
	pos := []phy.Point{
		{X: 0, Y: 3},    // 0: border router
		{X: 5, Y: 1},    // 1
		{X: 5, Y: 6},    // 2
		{X: 10, Y: 3},   // 3
		{X: 14, Y: 7},   // 4
		{X: 15, Y: 1},   // 5
		{X: 19, Y: 4},   // 6
		{X: 23, Y: 8},   // 7
		{X: 24, Y: 2},   // 8
		{X: 28, Y: 5},   // 9
		{X: 32, Y: 1},   // 10
		{X: 33, Y: 8},   // 11: anemometer
		{X: 36, Y: 4},   // 12: anemometer
		{X: 38, Y: 8.5}, // 13: anemometer
		{X: 39, Y: 1},   // 14: anemometer
	}
	return Topology{Positions: pos, TxRange: 10, SenseRange: 13}
}

// RandomGeometric places n nodes uniformly in a square sized so the
// expected node degree is density, with node 0 (the border router) at the
// center. Placement is deterministic in seed. Each node is guaranteed a
// decode-range neighbor among the nodes placed before it, so the topology
// is always connected: samples with no neighbor are rejected, and after
// repeated rejections the node is dropped next to an already-placed one —
// the physical analogue of an installer moving a sensor into coverage.
func RandomGeometric(n int, density float64, seed int64) Topology {
	const txRange, senseRange = 10.0, 13.0
	if density <= 0 {
		density = 6
	}
	if n < 1 {
		n = 1
	}
	rng := rand.New(rand.NewSource(seed))
	side := math.Sqrt(float64(n) * math.Pi * txRange * txRange / density)
	if side < txRange {
		side = txRange
	}
	pos := make([]phy.Point, 0, n)
	pos = append(pos, phy.Point{X: side / 2, Y: side / 2})
	for len(pos) < n {
		placed := false
		for try := 0; try < 100; try++ {
			p := phy.Point{X: rng.Float64() * side, Y: rng.Float64() * side}
			for _, q := range pos {
				if p.Dist(q) <= txRange {
					pos = append(pos, p)
					placed = true
					break
				}
			}
			if placed {
				break
			}
		}
		if !placed {
			anchor := pos[rng.Intn(len(pos))]
			angle := rng.Float64() * 2 * math.Pi
			d := txRange * (0.3 + 0.6*rng.Float64())
			pos = append(pos, phy.Point{X: anchor.X + d*math.Cos(angle), Y: anchor.Y + d*math.Sin(angle)})
		}
	}
	return Topology{Positions: pos, TxRange: txRange, SenseRange: senseRange}
}

// Tree lays out a fanout-ary tree of the given depth in concentric rings
// spacing apart, node 0 the root/border router, ids assigned level by
// level. Each node sits at the middle of its subtree's angular sector, so
// parent-child pairs are in decode range while ring-skipping shortcuts are
// not: shortest-path hop count equals tree depth. Nodes in adjacent
// sectors of the same ring may still hear each other — they share the
// physical medium, as in a real deployment.
func Tree(depth, fanout int, spacing float64) Topology {
	if depth < 0 {
		depth = 0
	}
	if fanout < 1 {
		fanout = 1
	}
	type sector struct {
		at     phy.Point
		lo, hi float64 // direction cone inherited by the subtree
	}
	level := []sector{{phy.Point{}, 0, 2 * math.Pi}}
	pos := []phy.Point{{}}
	for d := 1; d <= depth; d++ {
		nextLevel := make([]sector, 0, len(level)*fanout)
		for _, s := range level {
			step := (s.hi - s.lo) / float64(fanout)
			for k := 0; k < fanout; k++ {
				lo, hi := s.lo+float64(k)*step, s.lo+float64(k+1)*step
				mid := (lo + hi) / 2
				// Exactly one spacing from the parent, heading into the
				// child's own direction cone: parent-child links always
				// decode, ring-skipping shortcuts never do.
				p := phy.Point{X: s.at.X + spacing*math.Cos(mid), Y: s.at.Y + spacing*math.Sin(mid)}
				pos = append(pos, p)
				nextLevel = append(nextLevel, sector{at: p, lo: lo, hi: hi})
			}
		}
		level = nextLevel
	}
	return Topology{Positions: pos, TxRange: spacing * 1.25, SenseRange: spacing * 1.25}
}

// TreeNodes returns the node count of Tree(depth, fanout, ·).
func TreeNodes(depth, fanout int) int {
	total, level := 1, 1
	for d := 1; d <= depth; d++ {
		level *= fanout
		total += level
	}
	return total
}

// Adjacency returns the connectivity graph under the unit-disk decode
// range, built with a uniform grid so the cost is O(n·degree) rather than
// all-pairs. Neighbor lists are ordered by node id, matching the scan this
// replaced.
func (t Topology) Adjacency() [][]int {
	n := t.N()
	adj := make([][]int, n)
	if n == 0 || t.TxRange <= 0 {
		return adj
	}
	cell := t.TxRange
	cells := make(map[[2]int32][]int, n)
	key := func(p phy.Point) [2]int32 {
		return [2]int32{int32(math.Floor(p.X / cell)), int32(math.Floor(p.Y / cell))}
	}
	for i, p := range t.Positions {
		k := key(p)
		cells[k] = append(cells[k], i)
	}
	for i := 0; i < n; i++ {
		k := key(t.Positions[i])
		for dx := int32(-1); dx <= 1; dx++ {
			for dy := int32(-1); dy <= 1; dy++ {
				for _, j := range cells[[2]int32{k[0] + dx, k[1] + dy}] {
					if i != j && t.Positions[i].Dist(t.Positions[j]) <= t.TxRange {
						adj[i] = append(adj[i], j)
					}
				}
			}
		}
		sort.Ints(adj[i])
	}
	return adj
}
