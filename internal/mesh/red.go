package mesh

import "math/rand"

// REDAction is the verdict for an arriving packet.
type REDAction int

// RED verdicts.
const (
	REDPass REDAction = iota
	REDMark
	REDDrop
)

// RED implements Random Early Detection (Floyd & Jacobson 1993) for relay
// queues. The paper's Appendix A uses RED together with ECN to restore
// fairness between competing TCP flows when buffers exceed four segments.
type RED struct {
	// MinTh / MaxTh are the average-queue thresholds in packets.
	MinTh, MaxTh float64
	// MaxP is the marking probability at MaxTh.
	MaxP float64
	// Wq is the EWMA weight for the average queue length.
	Wq float64
	// UseECN marks instead of dropping when possible.
	UseECN bool

	avg   float64
	count int

	Marks, Drops uint64
}

// DefaultRED returns parameters sized for the paper's tiny relay queues.
func DefaultRED(useECN bool) *RED {
	return &RED{MinTh: 2, MaxTh: 6, MaxP: 0.2, Wq: 0.25, UseECN: useECN}
}

// OnArrival updates the average queue estimate with the instantaneous
// queue length qlen and returns the verdict for the arriving packet.
// canMark reports whether the packet is ECN-capable (ECT set).
func (r *RED) OnArrival(qlen int, canMark bool, rng *rand.Rand) REDAction {
	r.avg = (1-r.Wq)*r.avg + r.Wq*float64(qlen)
	switch {
	case r.avg < r.MinTh:
		r.count = 0
		return REDPass
	case r.avg >= r.MaxTh:
		r.count = 0
		return r.verdict(canMark)
	default:
		pb := r.MaxP * (r.avg - r.MinTh) / (r.MaxTh - r.MinTh)
		pa := pb / (1 - float64(r.count)*pb)
		if pa < 0 || pa > 1 {
			pa = 1
		}
		r.count++
		if rng.Float64() < pa {
			r.count = 0
			return r.verdict(canMark)
		}
		return REDPass
	}
}

func (r *RED) verdict(canMark bool) REDAction {
	if r.UseECN && canMark {
		r.Marks++
		return REDMark
	}
	r.Drops++
	return REDDrop
}

// AvgQueue returns the current average queue estimate.
func (r *RED) AvgQueue() float64 { return r.avg }
