package coap

import (
	"encoding/binary"

	"tcplp/internal/ip6"
	"tcplp/internal/obs"
	"tcplp/internal/sim"
	"tcplp/internal/udp"
)

// ClientStats counts exchange-layer events (Fig. 9b reads
// Retransmissions).
type ClientStats struct {
	Sent            uint64 // first transmissions
	Retransmissions uint64
	Responses       uint64
	GiveUps         uint64
}

type exchange struct {
	msg         *Message
	confirmable bool
	done        func(ok bool)
	retries     int
	firstTx     sim.Time
	rto         sim.Duration
	jid         int64 // journey packet id; shared by every retransmission of the exchange
}

// Client is a CoAP client bound to one server, enforcing NSTART=1 (one
// outstanding confirmable exchange).
type Client struct {
	eng     *sim.Engine
	sock    *udp.Stack
	dst     ip6.Addr
	dstPort uint16
	srcPort uint16

	// Policy supplies RTOs: DefaultPolicy or CoCoA.
	Policy RTOPolicy

	// OnExpectingChange mirrors the TCP stack's duty-cycle hint: true
	// while a confirmable exchange awaits its ACK (§9.2).
	OnExpectingChange func(bool)

	cur     *exchange
	queue   []*exchange
	timer   *sim.Timer
	nextMID uint16
	nextTok uint64

	Stats ClientStats

	// Trace/Node, when Trace is non-nil, emit retransmission and RTO
	// events (obs).
	Trace *obs.Trace
	Node  int
}

// NewClient creates a client on sock targeting dst:dstPort.
func NewClient(eng *sim.Engine, sock *udp.Stack, dst ip6.Addr, dstPort uint16) *Client {
	c := &Client{
		eng:     eng,
		sock:    sock,
		dst:     dst,
		dstPort: dstPort,
		Policy:  DefaultPolicy{},
		nextMID: uint16(eng.Rand().Uint32()),
	}
	c.timer = sim.NewTimer(eng, c.onTimeout)
	c.srcPort = sock.Bind(0, c.onDatagram)
	return c
}

// Pending returns queued plus in-flight exchanges.
func (c *Client) Pending() int {
	n := len(c.queue)
	if c.cur != nil {
		n++
	}
	return n
}

// Post sends a POST to path. Confirmable requests are retransmitted and
// report success/failure via done; nonconfirmable ones are fire-and-
// forget (done, if set, is called optimistically after transmission).
func (c *Client) Post(path string, payload []byte, confirmable bool, block *Block1, done func(ok bool)) {
	c.PostJID(path, payload, confirmable, block, 0, done)
}

// PostJID is Post with a journey packet id for causal tracing. The id is
// deliberately reused across every retransmission of the exchange — the
// analyzer sees one packet identity per CoAP message, a documented
// simplification (per-attempt MAC/PHY events still distinguish attempts
// by time).
func (c *Client) PostJID(path string, payload []byte, confirmable bool, block *Block1, jid int64, done func(ok bool)) {
	typ := NON
	if confirmable {
		typ = CON
	}
	c.nextMID++
	c.nextTok++
	var tok [4]byte
	binary.BigEndian.PutUint32(tok[:], uint32(c.nextTok))
	m := &Message{
		Type:      typ,
		Code:      CodePOST,
		MessageID: c.nextMID,
		Token:     tok[:],
		Payload:   payload,
	}
	if path != "" {
		m.AddOption(OptUriPath, []byte(path))
	}
	if block != nil {
		m.AddOption(OptBlock1, block.Encode())
	}
	c.queue = append(c.queue, &exchange{msg: m, confirmable: confirmable, done: done, jid: jid})
	c.pump()
}

func (c *Client) pump() {
	if c.cur != nil || len(c.queue) == 0 {
		return
	}
	c.cur = c.queue[0]
	c.queue = c.queue[1:]
	ex := c.cur
	ex.firstTx = c.eng.Now()
	ex.rto = c.Policy.InitialRTO(c.eng.Rand())
	c.Stats.Sent++
	c.transmit(ex)
	if ex.confirmable {
		c.setExpecting(true)
		c.timer.Reset(ex.rto)
	} else {
		// Nonconfirmable: complete after the (unreliable) send — via the
		// event queue, because the completion callback may immediately
		// queue the next message (drain loops would otherwise recurse
		// one stack frame per message).
		c.eng.Schedule(0, func() { c.finish(ex, true) })
	}
}

func (c *Client) transmit(ex *exchange) {
	c.sock.SendJID(c.dst, c.dstPort, c.srcPort, ex.msg.Encode(), ex.jid)
}

func (c *Client) onTimeout() {
	ex := c.cur
	if ex == nil {
		return
	}
	ex.retries++
	if ex.retries > MaxRetransmit {
		c.Stats.GiveUps++
		c.Policy.OnGiveUp()
		c.finish(ex, false)
		return
	}
	c.Stats.Retransmissions++
	ex.rto = c.Policy.Backoff(ex.rto)
	if tr := c.Trace; tr != nil {
		tr.Emit(obs.Event{T: c.eng.Now(), Kind: obs.CoAPRtx, Node: c.Node, A: int64(ex.retries), B: int64(ex.rto), J: ex.jid})
	}
	c.transmit(ex)
	c.timer.Reset(ex.rto)
}

func (c *Client) onDatagram(src ip6.Addr, srcPort uint16, payload []byte) {
	m, err := Decode(payload)
	if err != nil {
		return
	}
	ex := c.cur
	if ex == nil || !ex.confirmable {
		return
	}
	if m.Type != ACK && m.Type != RST {
		return
	}
	if m.MessageID != ex.msg.MessageID {
		return
	}
	c.timer.Stop()
	c.Stats.Responses++
	c.Policy.OnResponse(c.eng.Now().Sub(ex.firstTx), ex.retries)
	if tr := c.Trace; tr != nil {
		var overall int64
		if rr, ok := c.Policy.(interface{ OverallRTO() sim.Duration }); ok {
			overall = int64(rr.OverallRTO())
		}
		tr.Emit(obs.Event{T: c.eng.Now(), Kind: obs.CoAPRTO, Node: c.Node,
			A: int64(c.eng.Now().Sub(ex.firstTx)), B: overall})
	}
	c.finish(ex, m.Type == ACK && m.Code != CodeNotFound)
}

func (c *Client) finish(ex *exchange, ok bool) {
	c.timer.Stop()
	c.cur = nil
	c.setExpecting(false)
	if ex.done != nil {
		ex.done(ok)
	}
	c.pump()
}

func (c *Client) setExpecting(on bool) {
	if c.OnExpectingChange != nil {
		c.OnExpectingChange(on)
	}
}
