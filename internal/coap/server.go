package coap

import (
	"tcplp/internal/ip6"
	"tcplp/internal/sim"
	"tcplp/internal/udp"
)

// DefaultPort is the CoAP UDP port.
const DefaultPort = 5683

// exchangeLifetime bounds message-ID deduplication state.
const exchangeLifetime = 250 * sim.Second

// ServerStats counts server-side events.
type ServerStats struct {
	Requests   uint64 // deduplicated POSTs delivered to the handler
	Duplicates uint64 // retransmissions answered from the dedup cache
	NonPosts   uint64 // nonconfirmable requests (no ACK generated)
}

type dedupKey struct {
	src ip6.Addr
	mid uint16
}

type dedupEntry struct {
	ack     []byte
	expires sim.Time
}

// Server is the collector side: it accepts POSTs (whole or blockwise),
// hands payloads to OnPost, and piggybacks the response code on the ACK.
// It stands in for the paper's Californium cloud service, with the
// custom blockwise handling of §9.1 (a failed block never discards the
// rest of the batch — each block is an independent exchange).
type Server struct {
	eng  *sim.Engine
	sock *udp.Stack
	port uint16

	// OnPost handles a (deduplicated) request payload and returns the
	// response code. block is non-nil for blockwise transfers.
	OnPost func(src ip6.Addr, payload []byte, block *Block1) Code

	dedup map[dedupKey]dedupEntry

	Stats ServerStats
}

// NewServer binds a server to port on sock.
func NewServer(eng *sim.Engine, sock *udp.Stack, port uint16) *Server {
	s := &Server{eng: eng, sock: sock, port: port, dedup: map[dedupKey]dedupEntry{}}
	sock.Bind(port, s.onDatagram)
	return s
}

func (s *Server) onDatagram(src ip6.Addr, srcPort uint16, payload []byte) {
	m, err := Decode(payload)
	if err != nil {
		return
	}
	if m.Code != CodePOST {
		return
	}
	s.gc()
	if m.Type == CON {
		key := dedupKey{src, m.MessageID}
		if e, dup := s.dedup[key]; dup {
			// Our ACK was lost; replay it without re-delivering.
			s.Stats.Duplicates++
			s.sock.Send(src, srcPort, s.port, e.ack)
			return
		}
		code := s.handle(src, m)
		ack := &Message{
			Type:      ACK,
			Code:      code,
			MessageID: m.MessageID,
			Token:     m.Token,
		}
		wire := ack.Encode()
		s.dedup[key] = dedupEntry{ack: wire, expires: s.eng.Now().Add(exchangeLifetime)}
		s.sock.Send(src, srcPort, s.port, wire)
		return
	}
	// Nonconfirmable: deliver, no acknowledgment.
	s.Stats.NonPosts++
	s.handle(src, m)
}

func (s *Server) handle(src ip6.Addr, m *Message) Code {
	s.Stats.Requests++
	var blk *Block1
	if v, ok := m.GetOption(OptBlock1); ok {
		if b, err := DecodeBlock1(v); err == nil {
			blk = &b
		}
	}
	if s.OnPost == nil {
		return CodeChanged
	}
	return s.OnPost(src, m.Payload, blk)
}

func (s *Server) gc() {
	now := s.eng.Now()
	if len(s.dedup) < 256 {
		return
	}
	for k, e := range s.dedup {
		if now >= e.expires {
			delete(s.dedup, k)
		}
	}
}
