package coap

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"tcplp/internal/ip6"
	"tcplp/internal/sim"
	"tcplp/internal/udp"
)

func TestMessageRoundTrip(t *testing.T) {
	m := &Message{
		Type:      CON,
		Code:      CodePOST,
		MessageID: 0xbeef,
		Token:     []byte{1, 2, 3, 4},
		Payload:   []byte("sensor readings"),
	}
	m.AddOption(OptUriPath, []byte("telemetry"))
	m.AddOption(OptContentFormat, []byte{42})
	m.AddOption(OptBlock1, Block1{Num: 3, More: true, SZX: 2}.Encode())
	g, err := Decode(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if g.Type != CON || g.Code != CodePOST || g.MessageID != 0xbeef ||
		!bytes.Equal(g.Token, m.Token) || !bytes.Equal(g.Payload, m.Payload) {
		t.Fatalf("round trip: %+v", g)
	}
	if len(g.Options) != 3 {
		t.Fatalf("options: %+v", g.Options)
	}
	if v, ok := g.GetOption(OptUriPath); !ok || string(v) != "telemetry" {
		t.Fatalf("uri-path: %q %v", v, ok)
	}
	bv, _ := g.GetOption(OptBlock1)
	blk, err := DecodeBlock1(bv)
	if err != nil || blk.Num != 3 || !blk.More || blk.SZX != 2 {
		t.Fatalf("block1: %+v %v", blk, err)
	}
}

func TestEmptyAckRoundTrip(t *testing.T) {
	a := &Message{Type: ACK, Code: CodeChanged, MessageID: 7, Token: []byte{9}}
	g, err := Decode(a.Encode())
	if err != nil || g.Type != ACK || g.Code != CodeChanged || g.MessageID != 7 {
		t.Fatalf("%+v %v", g, err)
	}
}

func TestOptionDeltaEncoding(t *testing.T) {
	// Large option numbers exercise the 13/14 extended-delta paths.
	m := &Message{Type: NON, Code: CodeGET, MessageID: 1}
	m.AddOption(1, []byte{0xaa})
	m.AddOption(300, bytes.Repeat([]byte{0xbb}, 20))
	m.AddOption(2000, bytes.Repeat([]byte{0xcc}, 300))
	g, err := Decode(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Options) != 3 || g.Options[1].Number != 300 || g.Options[2].Number != 2000 {
		t.Fatalf("options: %+v", g.Options)
	}
	if len(g.Options[2].Value) != 300 {
		t.Fatalf("long option value: %d", len(g.Options[2].Value))
	}
}

func TestBlock1Sizes(t *testing.T) {
	for szx := uint8(0); szx <= 6; szx++ {
		b := Block1{Num: 100, More: true, SZX: szx}
		g, err := DecodeBlock1(b.Encode())
		if err != nil || g != b {
			t.Fatalf("szx %d: %+v %v", szx, g, err)
		}
		if g.Size() != 16<<szx {
			t.Fatalf("size(%d) = %d", szx, g.Size())
		}
	}
}

// Property: messages round-trip for arbitrary fields.
func TestQuickMessageRoundTrip(t *testing.T) {
	f := func(typ uint8, code uint8, mid uint16, tok []byte, payload []byte, path []byte) bool {
		if len(tok) > 8 {
			tok = tok[:8]
		}
		m := &Message{Type: Type(typ % 4), Code: Code(code), MessageID: mid, Token: tok, Payload: payload}
		if len(path) > 0 && len(path) < 200 {
			m.AddOption(OptUriPath, path)
		}
		g, err := Decode(m.Encode())
		if err != nil {
			return false
		}
		tokEq := bytes.Equal(g.Token, tok) || (len(tok) == 0 && len(g.Token) == 0)
		// Zero-length payloads decode as nil.
		payEq := bytes.Equal(g.Payload, payload) || (len(payload) == 0 && len(g.Payload) == 0)
		return g.Type == m.Type && g.Code == m.Code && g.MessageID == mid && tokEq && payEq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// pipe wires two UDP stacks through a delayed, lossy link.
type pipe struct {
	eng   *sim.Engine
	a, b  *udp.Stack
	delay sim.Duration
	drop  func() bool
}

func newPipe(seed int64, delay sim.Duration) *pipe {
	eng := sim.NewEngine(seed)
	p := &pipe{eng: eng, delay: delay}
	p.a = udp.NewStack(ip6.AddrFromID(0))
	p.b = udp.NewStack(ip6.AddrFromID(1))
	forward := func(to *udp.Stack) func(*ip6.Packet) {
		return func(pkt *ip6.Packet) {
			if p.drop != nil && p.drop() {
				return
			}
			eng.Schedule(p.delay, func() { to.Input(pkt) })
		}
	}
	p.a.Output = forward(p.b)
	p.b.Output = forward(p.a)
	return p
}

func TestConfirmableExchange(t *testing.T) {
	p := newPipe(1, 20*sim.Millisecond)
	srv := NewServer(p.eng, p.b, DefaultPort)
	var got []byte
	srv.OnPost = func(src ip6.Addr, payload []byte, blk *Block1) Code {
		got = payload
		return CodeChanged
	}
	cl := NewClient(p.eng, p.a, ip6.AddrFromID(1), DefaultPort)
	ok := false
	cl.Post("t", []byte("reading"), true, nil, func(s bool) { ok = s })
	p.eng.RunUntil(sim.Time(sim.Second))
	if !ok || string(got) != "reading" {
		t.Fatalf("exchange: ok=%v got=%q", ok, got)
	}
	if cl.Stats.Retransmissions != 0 {
		t.Fatalf("retransmissions on a clean link: %d", cl.Stats.Retransmissions)
	}
}

func TestRetransmissionRecoversLoss(t *testing.T) {
	p := newPipe(2, 20*sim.Millisecond)
	drops := 2
	p.drop = func() bool {
		if drops > 0 {
			drops--
			return true
		}
		return false
	}
	srv := NewServer(p.eng, p.b, DefaultPort)
	delivered := 0
	srv.OnPost = func(ip6.Addr, []byte, *Block1) Code { delivered++; return CodeChanged }
	cl := NewClient(p.eng, p.a, ip6.AddrFromID(1), DefaultPort)
	ok := false
	cl.Post("t", []byte("x"), true, nil, func(s bool) { ok = s })
	p.eng.RunUntil(sim.Time(30 * sim.Second))
	if !ok || delivered != 1 {
		t.Fatalf("ok=%v delivered=%d", ok, delivered)
	}
	if cl.Stats.Retransmissions == 0 {
		t.Fatal("no retransmissions recorded")
	}
}

// TestExponentialBackoffUnderLoss pins the CON retransmission schedule:
// with the channel blacked out, successive retransmissions must be
// spaced by exactly doubling intervals (RFC 7252 binary exponential
// backoff over the dithered initial RTO).
func TestExponentialBackoffUnderLoss(t *testing.T) {
	p := newPipe(7, 20*sim.Millisecond)
	var txTimes []sim.Time
	p.a.Output = func(pkt *ip6.Packet) {
		txTimes = append(txTimes, p.eng.Now())
		// Blackout: nothing reaches the server.
	}
	cl := NewClient(p.eng, p.a, ip6.AddrFromID(1), DefaultPort)
	cl.Post("t", []byte("x"), true, nil, nil)
	p.eng.RunUntil(sim.Time(5 * sim.Minute))
	if len(txTimes) != 1+MaxRetransmit {
		t.Fatalf("transmissions = %d, want %d", len(txTimes), 1+MaxRetransmit)
	}
	first := txTimes[1].Sub(txTimes[0])
	if first < AckTimeout || float64(first) > float64(AckTimeout)*AckRandomFactor {
		t.Fatalf("initial RTO %v outside [ACK_TIMEOUT, ACK_TIMEOUT*1.5]", first)
	}
	for i := 2; i < len(txTimes); i++ {
		gap := txTimes[i].Sub(txTimes[i-1])
		prev := txTimes[i-1].Sub(txTimes[i-2])
		if gap != 2*prev {
			t.Fatalf("retransmission %d gap %v, want exactly double %v", i, gap, prev)
		}
	}
}

// TestDedupUnderSustainedAckLoss drives the §9.1 server contract under
// loss: every retransmitted CON is answered from the message-ID dedup
// cache, the handler runs once, and the exchange still completes.
func TestDedupUnderSustainedAckLoss(t *testing.T) {
	p := newPipe(8, 20*sim.Millisecond)
	ackDrops := 3
	origOut := p.b.Output
	p.b.Output = func(pkt *ip6.Packet) {
		if ackDrops > 0 {
			ackDrops--
			return
		}
		origOut(pkt)
	}
	srv := NewServer(p.eng, p.b, DefaultPort)
	delivered := 0
	srv.OnPost = func(ip6.Addr, []byte, *Block1) Code { delivered++; return CodeChanged }
	cl := NewClient(p.eng, p.a, ip6.AddrFromID(1), DefaultPort)
	ok := false
	cl.Post("t", []byte("x"), true, nil, func(s bool) { ok = s })
	p.eng.RunUntil(sim.Time(5 * sim.Minute))
	if !ok {
		t.Fatal("exchange failed despite retransmission budget")
	}
	if delivered != 1 {
		t.Fatalf("handler ran %d times, want 1 (message-ID dedup)", delivered)
	}
	if srv.Stats.Duplicates != 3 {
		t.Fatalf("duplicates = %d, want 3 (one per lost ACK)", srv.Stats.Duplicates)
	}
	if cl.Stats.Retransmissions != 3 {
		t.Fatalf("retransmissions = %d, want 3", cl.Stats.Retransmissions)
	}
	// A fresh message ID is a fresh exchange, not a duplicate.
	delivered = 0
	cl.Post("t", []byte("y"), true, nil, nil)
	p.eng.RunUntil(sim.Time(10 * sim.Minute))
	if delivered != 1 || srv.Stats.Duplicates != 3 {
		t.Fatalf("second exchange: delivered=%d duplicates=%d", delivered, srv.Stats.Duplicates)
	}
}

func TestGiveUpAfterMaxRetransmit(t *testing.T) {
	p := newPipe(3, 20*sim.Millisecond)
	p.drop = func() bool { return true } // blackout
	NewServer(p.eng, p.b, DefaultPort)
	cl := NewClient(p.eng, p.a, ip6.AddrFromID(1), DefaultPort)
	result := -1
	cl.Post("t", []byte("x"), true, nil, func(s bool) {
		if s {
			result = 1
		} else {
			result = 0
		}
	})
	p.eng.RunUntil(sim.Time(5 * sim.Minute))
	if result != 0 {
		t.Fatalf("result = %d, want give-up", result)
	}
	if cl.Stats.Retransmissions != MaxRetransmit {
		t.Fatalf("retransmissions = %d, want %d", cl.Stats.Retransmissions, MaxRetransmit)
	}
}

func TestServerDeduplicatesRetransmissions(t *testing.T) {
	p := newPipe(4, 20*sim.Millisecond)
	// Drop the server's ACKs (b→a direction) once.
	ackDrops := 1
	origOut := p.b.Output
	p.b.Output = func(pkt *ip6.Packet) {
		if ackDrops > 0 {
			ackDrops--
			return
		}
		origOut(pkt)
	}
	srv := NewServer(p.eng, p.b, DefaultPort)
	delivered := 0
	srv.OnPost = func(ip6.Addr, []byte, *Block1) Code { delivered++; return CodeChanged }
	cl := NewClient(p.eng, p.a, ip6.AddrFromID(1), DefaultPort)
	ok := false
	cl.Post("t", []byte("x"), true, nil, func(s bool) { ok = s })
	p.eng.RunUntil(sim.Time(30 * sim.Second))
	if !ok {
		t.Fatal("exchange failed")
	}
	if delivered != 1 {
		t.Fatalf("handler ran %d times, want 1 (dedup)", delivered)
	}
	if srv.Stats.Duplicates != 1 {
		t.Fatalf("duplicates = %d", srv.Stats.Duplicates)
	}
}

func TestNonconfirmableNoAck(t *testing.T) {
	p := newPipe(5, 20*sim.Millisecond)
	srv := NewServer(p.eng, p.b, DefaultPort)
	delivered := 0
	srv.OnPost = func(ip6.Addr, []byte, *Block1) Code { delivered++; return CodeChanged }
	cl := NewClient(p.eng, p.a, ip6.AddrFromID(1), DefaultPort)
	cl.Post("t", []byte("x"), false, nil, nil)
	cl.Post("t", []byte("y"), false, nil, nil)
	p.eng.RunUntil(sim.Time(sim.Second))
	if delivered != 2 {
		t.Fatalf("delivered = %d", delivered)
	}
	if srv.Stats.NonPosts != 2 || cl.Stats.Responses != 0 {
		t.Fatalf("non stats: %+v %+v", srv.Stats, cl.Stats)
	}
}

func TestNSTARTSerialization(t *testing.T) {
	p := newPipe(6, 50*sim.Millisecond)
	srv := NewServer(p.eng, p.b, DefaultPort)
	var order []string
	srv.OnPost = func(src ip6.Addr, payload []byte, blk *Block1) Code {
		order = append(order, string(payload))
		return CodeChanged
	}
	cl := NewClient(p.eng, p.a, ip6.AddrFromID(1), DefaultPort)
	for _, s := range []string{"one", "two", "three"} {
		cl.Post("t", []byte(s), true, nil, nil)
	}
	if cl.Pending() != 3 {
		t.Fatalf("pending = %d", cl.Pending())
	}
	p.eng.RunUntil(sim.Time(5 * sim.Second))
	if len(order) != 3 || order[0] != "one" || order[1] != "two" || order[2] != "three" {
		t.Fatalf("order: %v", order)
	}
}

func TestCoCoAStrongSamplesTightenRTO(t *testing.T) {
	c := NewCoCoA()
	for i := 0; i < 30; i++ {
		c.OnResponse(100*sim.Millisecond, 0)
	}
	if c.OverallRTO() > 500*sim.Millisecond {
		t.Fatalf("overall RTO = %v after fast strong samples", c.OverallRTO())
	}
}

func TestCoCoAWeakSamplesInflateRTO(t *testing.T) {
	// The §9.4 pathology: retransmitted exchanges feed multi-second
	// "RTTs" (measured from the first transmission) into the weak
	// estimator, blowing up the overall RTO.
	c := NewCoCoA()
	for i := 0; i < 10; i++ {
		c.OnResponse(150*sim.Millisecond, 0)
	}
	tight := c.OverallRTO()
	for i := 0; i < 10; i++ {
		c.OnResponse(5*sim.Second, 1) // RTO-worth of delay counted as RTT
	}
	if c.OverallRTO() < 2*tight {
		t.Fatalf("weak samples did not inflate RTO: %v → %v", tight, c.OverallRTO())
	}
}

func TestCoCoAVariableBackoff(t *testing.T) {
	c := NewCoCoA()
	c.overall = 500 * sim.Millisecond
	if got := c.Backoff(500 * sim.Millisecond); got != 1500*sim.Millisecond {
		t.Fatalf("small-RTO backoff = %v, want ×3", got)
	}
	c.overall = 2 * sim.Second
	if got := c.Backoff(2 * sim.Second); got != 4*sim.Second {
		t.Fatalf("mid-RTO backoff = %v, want ×2", got)
	}
	c.overall = 5 * sim.Second
	if got := c.Backoff(4 * sim.Second); got != 6*sim.Second {
		t.Fatalf("large-RTO backoff = %v, want ×1.5", got)
	}
}

func TestDefaultPolicyRTODither(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var d DefaultPolicy
	for i := 0; i < 100; i++ {
		rto := d.InitialRTO(rng)
		if rto < AckTimeout || rto > 3*sim.Second {
			t.Fatalf("initial RTO %v outside [2s,3s]", rto)
		}
	}
}
