package coap

import (
	"math/rand"

	"tcplp/internal/sim"
)

// RFC 7252 transmission parameters.
const (
	AckTimeout      = 2 * sim.Second
	AckRandomFactor = 1.5
	MaxRetransmit   = 4
)

// RTOPolicy supplies the initial retransmission timeout for a new
// exchange and learns from exchange outcomes. Implementations: the RFC
// 7252 default (no learning) and CoCoA.
type RTOPolicy interface {
	// InitialRTO returns the first-transmission timeout for a new
	// exchange.
	InitialRTO(rng *rand.Rand) sim.Duration
	// Backoff returns the timeout after a retransmission, given the
	// previous timeout.
	Backoff(prev sim.Duration) sim.Duration
	// OnResponse records the outcome of a completed exchange: the time
	// from the FIRST transmission to the response, and how many
	// retransmissions occurred. This first-transmission convention is
	// exactly what misleads CoCoA under loss (§9.4): the sample for a
	// retransmitted exchange conflates queueing and retransmission
	// delays into "RTT".
	OnResponse(sinceFirstTx sim.Duration, retransmissions int)
	// OnGiveUp records an abandoned exchange.
	OnGiveUp()
}

// DefaultPolicy is stock RFC 7252: RTO uniform in
// [ACK_TIMEOUT, ACK_TIMEOUT·ACK_RANDOM_FACTOR), binary exponential
// backoff, and a reset to the base timeout for the next message after
// giving up (the behaviour §9.4 notes lets CoAP keep pace under heavy
// loss).
type DefaultPolicy struct{}

// InitialRTO implements RTOPolicy.
func (DefaultPolicy) InitialRTO(rng *rand.Rand) sim.Duration {
	span := float64(AckTimeout) * (AckRandomFactor - 1)
	return AckTimeout + sim.Duration(rng.Float64()*span)
}

// Backoff implements RTOPolicy.
func (DefaultPolicy) Backoff(prev sim.Duration) sim.Duration { return prev * 2 }

// OnResponse implements RTOPolicy.
func (DefaultPolicy) OnResponse(sim.Duration, int) {}

// OnGiveUp implements RTOPolicy.
func (DefaultPolicy) OnGiveUp() {}

// CoCoA implements draft-ietf-core-cocoa: two RTT estimators (strong for
// exchanges that completed without retransmission, weak for those that
// needed 1-2 retransmissions), blended into an overall RTO, with a
// variable backoff factor.
//
// The weak estimator measures RTT relative to the first transmission —
// it cannot know which (re)transmission the response answers — so under
// loss it absorbs whole retransmission timeouts as "RTT", inflating the
// overall RTO and delaying recovery until the application queue
// overflows. That is the §9.4 pathology; TCP timestamps make TCPlp
// immune.
type CoCoA struct {
	overall sim.Duration

	strongSRTT, strongVar sim.Duration
	strongValid           bool
	weakSRTT, weakVar     sim.Duration
	weakValid             bool
}

// NewCoCoA returns a CoCoA policy with the draft's 2 s initial RTO.
func NewCoCoA() *CoCoA {
	return &CoCoA{overall: 2 * sim.Second}
}

// InitialRTO implements RTOPolicy: the overall estimate, dithered by
// ACK_RANDOM_FACTOR as the draft specifies.
func (c *CoCoA) InitialRTO(rng *rand.Rand) sim.Duration {
	span := float64(c.overall) * (AckRandomFactor - 1)
	return c.overall + sim.Duration(rng.Float64()*span)
}

// Backoff implements RTOPolicy with the variable backoff factor: small
// RTOs back off aggressively (×3), large ones gently (×1.5).
func (c *CoCoA) Backoff(prev sim.Duration) sim.Duration {
	switch {
	case c.overall < sim.Second:
		return prev * 3
	case c.overall > 3*sim.Second:
		return prev + prev/2
	default:
		return prev * 2
	}
}

// OnResponse implements RTOPolicy: strong samples update with weight 0.5,
// weak samples (1-2 retransmissions; the draft ignores noisier ones)
// with weight 0.25 and a wider variance multiplier.
func (c *CoCoA) OnResponse(sinceFirstTx sim.Duration, retransmissions int) {
	switch {
	case retransmissions == 0:
		rto := c.updateEstimator(&c.strongSRTT, &c.strongVar, &c.strongValid, sinceFirstTx, 4)
		c.overall = (rto + c.overall) / 2
	case retransmissions <= 2:
		rto := c.updateEstimator(&c.weakSRTT, &c.weakVar, &c.weakValid, sinceFirstTx, 1)
		c.overall = (rto + 3*c.overall) / 4
	}
	// Clamp to the draft's sane range.
	c.overall = clamp(c.overall, 50*sim.Millisecond, 32*sim.Second)
}

func (c *CoCoA) updateEstimator(srtt, rttvar *sim.Duration, valid *bool, sample sim.Duration, k sim.Duration) sim.Duration {
	if !*valid {
		*srtt = sample
		*rttvar = sample / 2
		*valid = true
	} else {
		diff := *srtt - sample
		if diff < 0 {
			diff = -diff
		}
		*rttvar = (3**rttvar + diff) / 4
		*srtt = (7**srtt + sample) / 8
	}
	return *srtt + k**rttvar
}

// OnGiveUp implements RTOPolicy (no draft-specified action).
func (c *CoCoA) OnGiveUp() {}

// OverallRTO exposes the current blended estimate (for tests and the
// Fig. 9 analysis).
func (c *CoCoA) OverallRTO() sim.Duration { return c.overall }

func clamp(d, lo, hi sim.Duration) sim.Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}
