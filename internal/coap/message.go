// Package coap implements the Constrained Application Protocol (RFC 7252)
// message layer and the pieces the paper's §9 evaluation needs: a
// confirmable-exchange client with the default congestion control, the
// CoCoA RTO algorithm (including the retransmission-ambiguity behaviour
// §9.4 identifies), blockwise batch transfer that does not discard a
// whole batch on one failure (§9.1), and nonconfirmable (unreliable)
// mode (§9.6).
package coap

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Type is the CoAP message type.
type Type uint8

// Message types.
const (
	CON Type = 0
	NON Type = 1
	ACK Type = 2
	RST Type = 3
)

func (t Type) String() string {
	switch t {
	case CON:
		return "CON"
	case NON:
		return "NON"
	case ACK:
		return "ACK"
	case RST:
		return "RST"
	}
	return "?"
}

// Code is a CoAP request method or response code (class.detail).
type Code uint8

// Codes used in this implementation.
const (
	CodeEmpty    Code = 0
	CodeGET      Code = 1
	CodePOST     Code = 2
	CodeCreated  Code = 2<<5 | 1  // 2.01
	CodeChanged  Code = 2<<5 | 4  // 2.04
	CodeContent  Code = 2<<5 | 5  // 2.05
	CodeContinue Code = 2<<5 | 31 // 2.31 (block transfer continue)
	CodeNotFound Code = 4<<5 | 4  // 4.04
)

func (c Code) String() string { return fmt.Sprintf("%d.%02d", c>>5, c&0x1f) }

// Option numbers.
const (
	OptUriPath       = 11
	OptContentFormat = 12
	OptBlock1        = 27
)

// Option is one CoAP option instance.
type Option struct {
	Number uint16
	Value  []byte
}

// Message is a parsed CoAP message.
type Message struct {
	Type      Type
	Code      Code
	MessageID uint16
	Token     []byte
	Options   []Option // must be sorted by Number before encoding
	Payload   []byte
}

// Codec errors.
var (
	ErrTruncated  = errors.New("coap: truncated message")
	ErrBadVersion = errors.New("coap: bad version")
	ErrBadOption  = errors.New("coap: bad option encoding")
)

// AddOption appends an option, keeping the list sorted by number.
func (m *Message) AddOption(num uint16, val []byte) {
	opt := Option{Number: num, Value: val}
	i := len(m.Options)
	for i > 0 && m.Options[i-1].Number > num {
		i--
	}
	m.Options = append(m.Options, Option{})
	copy(m.Options[i+1:], m.Options[i:])
	m.Options[i] = opt
}

// GetOption returns the first option with the given number.
func (m *Message) GetOption(num uint16) ([]byte, bool) {
	for _, o := range m.Options {
		if o.Number == num {
			return o.Value, true
		}
	}
	return nil, false
}

// Encode serializes the message (RFC 7252 §3).
func (m *Message) Encode() []byte {
	if len(m.Token) > 8 {
		panic("coap: token too long")
	}
	b := make([]byte, 0, 16+len(m.Payload))
	b = append(b, 1<<6|uint8(m.Type)<<4|uint8(len(m.Token)))
	b = append(b, uint8(m.Code))
	b = binary.BigEndian.AppendUint16(b, m.MessageID)
	b = append(b, m.Token...)
	prev := uint16(0)
	for _, o := range m.Options {
		delta := int(o.Number - prev)
		prev = o.Number
		b = appendOptionHeader(b, delta, len(o.Value))
		b = append(b, o.Value...)
	}
	if len(m.Payload) > 0 {
		b = append(b, 0xff)
		b = append(b, m.Payload...)
	}
	return b
}

func appendOptionHeader(b []byte, delta, length int) []byte {
	db, dext := optNibble(delta)
	lb, lext := optNibble(length)
	b = append(b, db<<4|lb)
	b = append(b, dext...)
	b = append(b, lext...)
	return b
}

func optNibble(v int) (uint8, []byte) {
	switch {
	case v < 13:
		return uint8(v), nil
	case v < 269:
		return 13, []byte{uint8(v - 13)}
	default:
		var ext [2]byte
		binary.BigEndian.PutUint16(ext[:], uint16(v-269))
		return 14, ext[:]
	}
}

// Decode parses a CoAP message.
func Decode(b []byte) (*Message, error) {
	if len(b) < 4 {
		return nil, ErrTruncated
	}
	if b[0]>>6 != 1 {
		return nil, ErrBadVersion
	}
	m := &Message{
		Type:      Type(b[0] >> 4 & 0x3),
		Code:      Code(b[1]),
		MessageID: binary.BigEndian.Uint16(b[2:4]),
	}
	tkl := int(b[0] & 0xf)
	if tkl > 8 || len(b) < 4+tkl {
		return nil, ErrTruncated
	}
	if tkl > 0 {
		m.Token = append([]byte(nil), b[4:4+tkl]...)
	}
	i := 4 + tkl
	prev := uint16(0)
	for i < len(b) {
		if b[i] == 0xff {
			i++
			if i >= len(b) {
				return nil, ErrTruncated
			}
			m.Payload = append([]byte(nil), b[i:]...)
			return m, nil
		}
		dn := int(b[i] >> 4)
		ln := int(b[i] & 0xf)
		i++
		var delta, length int
		var err error
		if delta, i, err = readOptExt(b, i, dn); err != nil {
			return nil, err
		}
		if length, i, err = readOptExt(b, i, ln); err != nil {
			return nil, err
		}
		if i+length > len(b) {
			return nil, ErrTruncated
		}
		prev += uint16(delta)
		m.Options = append(m.Options, Option{
			Number: prev,
			Value:  append([]byte(nil), b[i:i+length]...),
		})
		i += length
	}
	return m, nil
}

func readOptExt(b []byte, i, nib int) (int, int, error) {
	switch nib {
	case 13:
		if i >= len(b) {
			return 0, i, ErrTruncated
		}
		return int(b[i]) + 13, i + 1, nil
	case 14:
		if i+1 >= len(b) {
			return 0, i, ErrTruncated
		}
		return int(binary.BigEndian.Uint16(b[i:])) + 269, i + 2, nil
	case 15:
		return 0, i, ErrBadOption
	default:
		return nib, i, nil
	}
}

// Block1 is the RFC 7959 Block1 option value: block number, more flag,
// and block size exponent (size = 2^(szx+4)).
type Block1 struct {
	Num  uint32
	More bool
	SZX  uint8
}

// Size returns the block size in bytes.
func (b Block1) Size() int { return 1 << (b.SZX + 4) }

// Encode packs the option value.
func (b Block1) Encode() []byte {
	v := b.Num<<4 | uint32(b.SZX)&0x7
	if b.More {
		v |= 0x8
	}
	switch {
	case v < 1<<8:
		return []byte{uint8(v)}
	case v < 1<<16:
		var out [2]byte
		binary.BigEndian.PutUint16(out[:], uint16(v))
		return out[:]
	default:
		return []byte{uint8(v >> 16), uint8(v >> 8), uint8(v)}
	}
}

// DecodeBlock1 unpacks a Block1 option value.
func DecodeBlock1(b []byte) (Block1, error) {
	var v uint32
	switch len(b) {
	case 1:
		v = uint32(b[0])
	case 2:
		v = uint32(binary.BigEndian.Uint16(b))
	case 3:
		v = uint32(b[0])<<16 | uint32(b[1])<<8 | uint32(b[2])
	default:
		return Block1{}, ErrBadOption
	}
	return Block1{Num: v >> 4, More: v&0x8 != 0, SZX: uint8(v & 0x7)}, nil
}
