package coap

import (
	"math/rand"

	"tcplp/internal/sim"
)

// SamplingPolicy wraps an RTOPolicy with a pure observer: every
// completed exchange's first-transmission RTT sample is reported to
// OnSample before the inner policy learns from it. The wrapper changes
// no timing decision and draws nothing extra from the RNG, so wrapping
// a policy leaves simulation results bit-identical — it exists so CON
// flows can report RTT distributions the way TCP flows do.
type SamplingPolicy struct {
	Inner RTOPolicy
	// OnSample receives each completed exchange's time since first
	// transmission and how many retransmissions it needed. Samples for
	// retransmitted exchanges conflate retransmission delay into "RTT" —
	// the same first-transmission convention the policies themselves see
	// (and the §9.4 CoCoA pathology makes visible).
	OnSample func(sinceFirstTx sim.Duration, retransmissions int)
}

// InitialRTO implements RTOPolicy by delegation.
func (p *SamplingPolicy) InitialRTO(rng *rand.Rand) sim.Duration {
	return p.Inner.InitialRTO(rng)
}

// Backoff implements RTOPolicy by delegation.
func (p *SamplingPolicy) Backoff(prev sim.Duration) sim.Duration {
	return p.Inner.Backoff(prev)
}

// OnResponse implements RTOPolicy: observe, then delegate.
func (p *SamplingPolicy) OnResponse(sinceFirstTx sim.Duration, retransmissions int) {
	if p.OnSample != nil {
		p.OnSample(sinceFirstTx, retransmissions)
	}
	p.Inner.OnResponse(sinceFirstTx, retransmissions)
}

// OnGiveUp implements RTOPolicy by delegation.
func (p *SamplingPolicy) OnGiveUp() { p.Inner.OnGiveUp() }

// OverallRTO exposes the inner policy's blended RTO estimate when it
// has one (CoCoA), so wrapping keeps the estimate observable.
func (p *SamplingPolicy) OverallRTO() sim.Duration {
	if rr, ok := p.Inner.(interface{ OverallRTO() sim.Duration }); ok {
		return rr.OverallRTO()
	}
	return 0
}
