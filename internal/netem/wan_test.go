package netem

import (
	"testing"

	"tcplp/internal/sim"
)

func TestWANSerializationAndDelay(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewWANLink(eng, WANConfig{
		BandwidthKbps: 8, // 1000 bytes take exactly 1 s
		Delay:         50 * sim.Millisecond,
		QueueCap:      4,
	}, 1)
	var times []sim.Time
	record := func() { times = append(times, eng.Now()) }
	// Two back-to-back messages queue behind each other on the single
	// serializing resource.
	if !l.Send(1000, record, nil) || !l.Send(1000, record, nil) {
		t.Fatal("sends rejected below queue cap")
	}
	if l.QueueDepth() != 2 {
		t.Fatalf("queue depth = %d, want 2", l.QueueDepth())
	}
	eng.RunFor(10 * sim.Second)
	want := []sim.Time{
		sim.Time(1050 * sim.Millisecond),
		sim.Time(2050 * sim.Millisecond),
	}
	if len(times) != 2 || times[0] != want[0] || times[1] != want[1] {
		t.Fatalf("delivery times = %v, want %v", times, want)
	}
	if l.Stats.Delivered != 2 || l.Stats.Sent != 2 || l.Stats.BytesSent != 2000 {
		t.Fatalf("stats = %+v", l.Stats)
	}
	if l.QueueDepth() != 0 {
		t.Fatalf("queue depth = %d after drain", l.QueueDepth())
	}
}

func TestWANUnconstrainedBandwidth(t *testing.T) {
	eng := sim.NewEngine(2)
	l := NewWANLink(eng, WANConfig{Delay: 30 * sim.Millisecond}, 2)
	var at sim.Time
	l.Send(1<<20, func() { at = eng.Now() }, nil)
	eng.RunFor(sim.Second)
	if at != sim.Time(30*sim.Millisecond) {
		t.Fatalf("delivered at %v, want the bare propagation delay", at)
	}
	if l.cfg.QueueCap != DefaultWANQueueCap {
		t.Fatalf("queue cap = %d, want default %d", l.cfg.QueueCap, DefaultWANQueueCap)
	}
}

func TestWANQueueCapTailDrop(t *testing.T) {
	eng := sim.NewEngine(3)
	l := NewWANLink(eng, WANConfig{BandwidthKbps: 1, QueueCap: 2}, 3)
	if !l.Send(100, nil, nil) || !l.Send(100, nil, nil) {
		t.Fatal("sends rejected below queue cap")
	}
	lost := 0
	if l.Send(100, nil, func() { lost++ }) {
		t.Fatal("send accepted above queue cap")
	}
	if l.Stats.QueueDrops != 1 {
		t.Fatalf("queue drops = %d, want 1", l.Stats.QueueDrops)
	}
	if lost != 0 {
		t.Fatal("tail drop must not fire the in-flight lost callback")
	}
	if l.Stats.MaxQueue != 2 {
		t.Fatalf("max queue = %d, want 2", l.Stats.MaxQueue)
	}
	eng.RunFor(10 * sim.Second)
	if l.Stats.Delivered != 2 {
		t.Fatalf("delivered = %d, want 2", l.Stats.Delivered)
	}
	// After the window reset the tracker restarts at the live depth.
	l.ResetMaxQueue()
	if l.Stats.MaxQueue != 0 {
		t.Fatalf("max queue after reset = %d", l.Stats.MaxQueue)
	}
}

func TestWANLossDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) (delivered, lost uint64) {
		eng := sim.NewEngine(9)
		l := NewWANLink(eng, WANConfig{Loss: 0.3, QueueCap: 1 << 16}, seed)
		for i := 0; i < 500; i++ {
			l.Send(10, nil, nil)
		}
		eng.RunFor(sim.Second)
		return l.Stats.Delivered, l.Stats.LossDrops
	}
	d1, x1 := run(7)
	d2, x2 := run(7)
	if d1 != d2 || x1 != x2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", d1, x1, d2, x2)
	}
	if x1 == 0 || d1 == 0 {
		t.Fatalf("loss draw degenerate: delivered=%d lost=%d at p=0.3", d1, x1)
	}
	if d1+x1 != 500 {
		t.Fatalf("delivered+lost = %d, want 500", d1+x1)
	}
	d3, _ := run(8)
	if d3 == d1 {
		t.Fatal("different seeds produced identical loss realizations")
	}
}
