// Package netem provides the network-condition manipulations of the
// application study: uniform injected packet loss at the border router
// (§9.4) and a diurnal external-interference profile (§9.5 / Fig. 10).
package netem

import (
	"math/rand"

	"tcplp/internal/ip6"
	"tcplp/internal/phy"
	"tcplp/internal/sim"
	"tcplp/internal/stack"
)

// UniformLoss returns a border-router drop filter removing packets with
// probability p, using a dedicated deterministic source.
func UniformLoss(p float64, seed int64) func(pkt *ip6.Packet) bool {
	rng := rand.New(rand.NewSource(seed))
	return func(pkt *ip6.Packet) bool {
		return rng.Float64() < p
	}
}

// DiurnalProfile returns an activity function for an interferer that
// follows office hours: quiet at night, ramping through the morning,
// peaking over the working day, and fading in the evening — the "regular
// human activity" of §9.5. Peak sets the maximum relative activity.
func DiurnalProfile(peak float64) func(t sim.Time) float64 {
	return func(t sim.Time) float64 {
		hour := float64(t%(sim.Time(24*sim.Hour))) / float64(sim.Hour)
		switch {
		case hour < 7:
			return 0.08 * peak
		case hour < 9:
			return (0.08 + (hour-7)/2*0.92) * peak // ramp up
		case hour < 17:
			return peak
		case hour < 21:
			return (1 - (hour-17)/4*0.85) * peak // ramp down
		default:
			return 0.15 * peak
		}
	}
}

// AddOfficeInterference places interference sources near the middle and
// far end of the network with the given diurnal profile, returning them
// (call Start on each).
func AddOfficeInterference(net *stack.Network, peak float64) []*phy.Interferer {
	bounds := func() (minX, maxX float64) {
		minX, maxX = net.Topo.Positions[0].X, net.Topo.Positions[0].X
		for _, p := range net.Topo.Positions {
			if p.X < minX {
				minX = p.X
			}
			if p.X > maxX {
				maxX = p.X
			}
		}
		return
	}
	minX, maxX := bounds()
	spots := []phy.Point{
		{X: minX + (maxX-minX)*0.35, Y: 5},
		{X: minX + (maxX-minX)*0.75, Y: 2},
	}
	var out []*phy.Interferer
	profile := DiurnalProfile(peak)
	for i, p := range spots {
		in := phy.NewInterferer(net.Channel, 900+i, p)
		in.Activity = profile
		in.BurstMean = 3 * sim.Millisecond
		in.MeanGap = 60 * sim.Millisecond
		out = append(out, in)
	}
	return out
}
