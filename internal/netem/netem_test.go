package netem

import (
	"testing"

	"tcplp/internal/mesh"
	"tcplp/internal/sim"
	"tcplp/internal/stack"
)

func TestUniformLossRate(t *testing.T) {
	for _, p := range []float64{0, 0.1, 0.5, 1} {
		f := UniformLoss(p, 42)
		drops := 0
		const n = 5000
		for i := 0; i < n; i++ {
			if f(nil) {
				drops++
			}
		}
		got := float64(drops) / n
		if got < p-0.03 || got > p+0.03 {
			t.Fatalf("p=%.2f: measured %.3f", p, got)
		}
	}
}

func TestUniformLossDeterministic(t *testing.T) {
	a, b := UniformLoss(0.3, 7), UniformLoss(0.3, 7)
	for i := 0; i < 1000; i++ {
		if a(nil) != b(nil) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestDiurnalProfileBounds(t *testing.T) {
	prof := DiurnalProfile(2.0)
	for h := 0; h < 48; h++ {
		v := prof(sim.Time(h) * sim.Time(sim.Hour))
		if v < 0 || v > 2.0 {
			t.Fatalf("hour %d: activity %v out of [0,2]", h, v)
		}
	}
}

func TestAddOfficeInterferenceDisturbsChannel(t *testing.T) {
	net := stack.New(1, mesh.Office(), stack.DefaultOptions())
	ins := AddOfficeInterference(net, 1.0)
	if len(ins) == 0 {
		t.Fatal("no interferers placed")
	}
	for _, in := range ins {
		in.Activity = nil // constant activity for the test
		in.Start()
	}
	// Run mid-day so the sources are active, then check they transmitted.
	net.Eng.RunFor(30 * sim.Second)
	var noiseFrames uint64
	for _, in := range ins {
		noiseFrames += in.Radio().FramesSent()
	}
	if noiseFrames == 0 {
		t.Fatal("interferers never transmitted")
	}
}
