package netem

import (
	"math/rand"

	"tcplp/internal/obs"
	"tcplp/internal/sim"
)

// DefaultWANQueueCap bounds a WAN link's serialization queue when the
// configuration leaves it zero.
const DefaultWANQueueCap = 64

// WANConfig models the wide-area backhaul behind a border-router
// gateway: a single serializing link with propagation delay and random
// message loss — the netem-style shaping of a cloud uplink.
type WANConfig struct {
	// BandwidthKbps serializes messages at this rate; 0 means an
	// unconstrained link (messages only see the propagation delay).
	BandwidthKbps float64
	// Delay is the one-way propagation latency added after a message
	// finishes serializing.
	Delay sim.Duration
	// Loss drops each message with this probability, decided by the
	// link's own deterministic source.
	Loss float64
	// QueueCap bounds messages queued or serializing; arrivals beyond it
	// are tail-dropped at the gateway (default DefaultWANQueueCap).
	QueueCap int
}

// WANStats counts a WAN link's message-level events.
type WANStats struct {
	Sent       uint64 // messages accepted onto the link
	Delivered  uint64 // messages that reached the far end
	QueueDrops uint64 // tail drops at the serialization queue
	LossDrops  uint64 // random losses in flight
	BytesSent  uint64 // payload bytes accepted
	MaxQueue   int    // peak queue depth since the last reset
}

// Drops totals messages lost on the link, either flavor.
func (s WANStats) Drops() uint64 { return s.QueueDrops + s.LossDrops }

// WANLink is one instantiated WAN. It carries opaque application
// messages — the gateway's forwarded reading batches — rather than
// simulated packets: bandwidth is modeled as serialization time on a
// single busy resource, so concurrent senders queue behind each other
// exactly like a shaped uplink.
type WANLink struct {
	eng *sim.Engine
	cfg WANConfig
	rng *rand.Rand

	busyUntil sim.Time
	queued    int

	Stats WANStats

	// Trace/Node, when Trace is non-nil, emit enqueue/drop events (obs).
	Trace *obs.Trace
	Node  int
}

// NewWANLink builds a link on eng's clock with its own deterministic
// loss source, so runs stay bit-identical whatever else draws from the
// engine's RNG.
func NewWANLink(eng *sim.Engine, cfg WANConfig, seed int64) *WANLink {
	if cfg.QueueCap == 0 {
		cfg.QueueCap = DefaultWANQueueCap
	}
	return &WANLink{eng: eng, cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Config returns the link's effective configuration.
func (l *WANLink) Config() WANConfig { return l.cfg }

// QueueDepth returns messages currently queued or serializing.
func (l *WANLink) QueueDepth() int { return l.queued }

// ResetMaxQueue restarts the peak-depth tracker at the current depth
// (called when a measurement window opens).
func (l *WANLink) ResetMaxQueue() { l.Stats.MaxQueue = l.queued }

// serialization returns how long size bytes occupy the link.
func (l *WANLink) serialization(size int) sim.Duration {
	if l.cfg.BandwidthKbps <= 0 {
		return 0
	}
	return sim.Duration(float64(size*8) / (l.cfg.BandwidthKbps * 1000) * float64(sim.Second))
}

// Send offers one size-byte message to the link. A full queue drops it
// immediately and returns false; otherwise the message serializes at
// the configured bandwidth, crosses the propagation delay, and exactly
// one of deliver or lost fires (lost covers in-flight random loss).
// Either callback may be nil.
func (l *WANLink) Send(size int, deliver, lost func()) bool {
	if l.queued >= l.cfg.QueueCap {
		l.Stats.QueueDrops++
		if tr := l.Trace; tr != nil {
			tr.Emit(obs.Event{T: l.eng.Now(), Kind: obs.WanDrop, Node: l.Node, A: 1, Len: size, Cause: obs.CauseWanQueueDrop})
		}
		return false
	}
	l.queued++
	if l.queued > l.Stats.MaxQueue {
		l.Stats.MaxQueue = l.queued
	}
	l.Stats.Sent++
	l.Stats.BytesSent += uint64(size)
	if tr := l.Trace; tr != nil {
		tr.Emit(obs.Event{T: l.eng.Now(), Kind: obs.WanEnqueue, Node: l.Node, A: int64(l.queued), Len: size})
	}
	now := l.eng.Now()
	start := l.busyUntil
	if start < now {
		start = now
	}
	txDone := start.Add(l.serialization(size))
	l.busyUntil = txDone
	// The loss draw happens at send time, in event order, so the link's
	// source consumes the same sequence however delivery interleaves.
	dropped := l.cfg.Loss > 0 && l.rng.Float64() < l.cfg.Loss
	l.eng.Schedule(txDone.Sub(now), func() {
		l.queued--
		if dropped {
			l.Stats.LossDrops++
			if tr := l.Trace; tr != nil {
				tr.Emit(obs.Event{T: l.eng.Now(), Kind: obs.WanDrop, Node: l.Node, A: 2, Len: size, Cause: obs.CauseWanLoss})
			}
			if lost != nil {
				lost()
			}
			return
		}
		l.eng.Schedule(l.cfg.Delay, func() {
			l.Stats.Delivered++
			if deliver != nil {
				deliver()
			}
		})
	})
	return true
}
