package app

import (
	"encoding/binary"

	"tcplp/internal/ip6"
	"tcplp/internal/obs"
	"tcplp/internal/sim"
	"tcplp/internal/stack"
	"tcplp/internal/tcplp"
)

// ForEachReading invokes f once per complete reading in buf (readings
// travel back-to-back, ReadingSize bytes each, with the sequence number
// in the first four) and returns how many complete readings buf held.
// Trailing partial bytes are ignored — the caller keeps them as stream
// remainder.
func ForEachReading(buf []byte, f func(seq uint32)) int {
	n := len(buf) / ReadingSize
	for i := 0; i < n; i++ {
		f(binary.BigEndian.Uint32(buf[i*ReadingSize:]))
	}
	return n
}

// ReadingStream reassembles readings out of an ordered byte stream that
// may arrive in arbitrary chunks (the TCP collector side): whole
// readings are delivered through the callback, partial ones buffered.
type ReadingStream struct {
	// Deliver is invoked once per complete reading.
	Deliver func(seq uint32)
	rem     []byte
}

// Feed consumes one stream chunk.
func (rs *ReadingStream) Feed(p []byte) {
	if len(rs.rem) > 0 {
		rs.rem = append(rs.rem, p...)
		n := ForEachReading(rs.rem, rs.Deliver)
		rs.rem = rs.rem[n*ReadingSize:]
		return
	}
	n := ForEachReading(p, rs.Deliver)
	if rest := p[n*ReadingSize:]; len(rest) > 0 {
		rs.rem = append([]byte(nil), rest...)
	}
}

// ListenReadingSink installs a reading-parsing TCP collector for one
// flow on node:port: the shared Sink drain loop with each chunk also
// fed through stream reassembly, handing every complete reading to
// deliver. The accepted connection uses cfg, so a flow's window knob
// binds at the collector too.
func ListenReadingSink(node *stack.Node, port uint16, cfg tcplp.Config, deliver func(seq uint32)) *Sink {
	rs := &ReadingStream{Deliver: deliver}
	return listenSinkData(node, port, &cfg, rs.Feed)
}

// ---- UDP transport ----

// UDPTransport ships readings as raw UDP datagrams sized like the CoAP
// batch messages — the unreliable floor of the §9 comparison without
// even CoAP's NON framing. Delivery is counted at the collector; lost
// datagrams are simply never credited.
type UDPTransport struct {
	sock    *stack.Node
	dst     ip6.Addr
	dstPort uint16
	srcPort uint16
	// MessageSize is the payload bytes per datagram.
	MessageSize int

	// Trace/Node, when Trace is non-nil, tag each datagram with a
	// journey packet id for causal tracing (obs).
	Trace *obs.Trace
	Node  int

	sensor *Sensor

	// Sent counts datagrams put on the wire; SentBytes their payload.
	Sent      uint64
	SentBytes uint64
}

// NewUDPTransport builds a UDP transport from node to collector:port.
func NewUDPTransport(node *stack.Node, collector ip6.Addr, port uint16, msgSize int) *UDPTransport {
	t := &UDPTransport{sock: node, dst: collector, dstPort: port, MessageSize: msgSize}
	t.srcPort = node.UDP.Bind(0, func(ip6.Addr, uint16, []byte) {})
	return t
}

// Attach links the sensor that drains through this transport.
func (t *UDPTransport) Attach(s *Sensor) { t.sensor = s }

// CanSend implements Transport: fire-and-forget, always writable.
func (t *UDPTransport) CanSend() int { return t.MessageSize }

// Send implements Transport: up to MessageSize whole readings per
// datagram.
func (t *UDPTransport) Send(p []byte) int {
	n := t.MessageSize / ReadingSize * ReadingSize
	if n > len(p) {
		n = len(p) / ReadingSize * ReadingSize
	}
	if n == 0 {
		return 0
	}
	var jid int64
	if tr := t.Trace; tr != nil {
		jid = tr.NextID()
		tr.Emit(obs.Event{T: t.sock.Eng().Now(), Kind: obs.JourneyData, Node: t.Node, J: jid,
			A: int64(binary.BigEndian.Uint32(p)), B: int64(n / ReadingSize)})
	}
	t.sock.UDP.SendJID(t.dst, t.dstPort, t.srcPort, p[:n], jid)
	t.Sent++
	t.SentBytes += uint64(n)
	return n
}

// ListenReadingUDP installs a reading-parsing UDP collector on
// node:port. Datagrams carry whole readings, so no stream reassembly is
// needed; bytes are counted for goodput and each reading handed to
// deliver.
func ListenReadingUDP(node *stack.Node, port uint16, deliver func(seq uint32)) *CountingSink {
	s := &CountingSink{eng: node.Eng()}
	node.UDP.Bind(port, func(src ip6.Addr, srcPort uint16, payload []byte) {
		s.Received += len(payload)
		ForEachReading(payload, deliver)
	})
	return s
}

// CountingSink tracks datagram-delivered payload bytes with the same
// Mark/GoodputKbps window accounting as the TCP Sink.
type CountingSink struct {
	Received  int
	markBytes int
	markTime  sim.Time
	eng       *sim.Engine
}

// NewCountingSink returns a byte-counting sink on eng's clock.
func NewCountingSink(eng *sim.Engine) *CountingSink { return &CountingSink{eng: eng} }

// Mark begins a measurement window at the current time.
func (s *CountingSink) Mark() {
	s.markBytes = s.Received
	s.markTime = s.eng.Now()
}

// GoodputKbps returns delivered-payload goodput in kb/s since Mark.
func (s *CountingSink) GoodputKbps() float64 {
	elapsed := s.eng.Now().Sub(s.markTime).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(s.Received-s.markBytes) * 8 / elapsed / 1000
}

// BytesSinceMark returns payload bytes received in the window.
func (s *CountingSink) BytesSinceMark() int { return s.Received - s.markBytes }
