package app

import (
	"encoding/binary"

	"tcplp/internal/coap"
	"tcplp/internal/ip6"
	"tcplp/internal/obs"
	"tcplp/internal/sim"
	"tcplp/internal/stack"
	"tcplp/internal/tcplp"
)

// Anemometer workload constants (§3, §9.2).
const (
	// ReadingSize is one ultrasonic anemometer sample: 12 transit-time
	// measurements plus framing = 82 bytes.
	ReadingSize = 82
	// DefaultInterval is the 1 Hz sample rate.
	DefaultInterval = sim.Second
	// TCPQueueCap readings fit the application-layer queue when TCP's
	// send buffer absorbs another 40 (§9.2).
	TCPQueueCap = 64
	// CoAPQueueCap is the larger queue used for CoAP (§9.2).
	CoAPQueueCap = 104
	// DefaultBatch is the §9.3 batching threshold.
	DefaultBatch = 64
)

// SensorStats measures a sensor's delivery performance; reliability is
// delivered/generated (§9.2's definition).
type SensorStats struct {
	Generated uint64
	Queued    uint64
	Dropped   uint64 // application-queue overflow
	Delivered uint64 // confirmed by the transport
}

// Reliability returns delivered readings over generated readings.
func (s SensorStats) Reliability() float64 {
	if s.Generated == 0 {
		return 1
	}
	return float64(s.Delivered) / float64(s.Generated)
}

// Transport abstracts how batches leave the node (TCP stream vs CoAP
// exchanges vs unreliable CoAP).
type Transport interface {
	// Send attempts to hand bytes to the network; it returns how many
	// bytes were accepted. delivered is invoked (possibly later, possibly
	// repeatedly with partial counts) as bytes are confirmed end-to-end.
	Send(p []byte) int
	// CanSend returns how many bytes the transport can accept now.
	CanSend() int
}

// Sensor generates fixed-size readings on a period, queues them in a
// bounded application-layer queue, and drains the queue through a
// Transport, either immediately or in batches.
type Sensor struct {
	eng       *sim.Engine
	transport Transport

	Interval sim.Duration
	QueueCap int // in readings
	// Batch drains only once this many readings are queued (0 = send
	// each reading immediately).
	Batch int

	queue   []byte // queued readings, back-to-back
	seq     uint32
	started bool
	stopped bool
	genTime map[uint32]sim.Time // queued-reading generation times, by seq

	// Trace/Node, when Trace is non-nil, emit per-reading journey
	// events (generation, transport acceptance, app-queue loss). All
	// journey bookkeeping below is gated on Trace so the disabled path
	// allocates nothing.
	Trace *obs.Trace
	Node  int
	// enqSeqs holds queued-but-not-yet-accepted reading seqs in order;
	// acceptedBytes counts transport-accepted bytes (transports may
	// accept partial readings), and enqCount numbers fully accepted
	// readings — the acceptance index journey analysis maps to TCP
	// stream offsets.
	enqSeqs       []uint32
	acceptedBytes int64
	enqCount      int64

	Stats SensorStats
}

// genTimeHorizon bounds how long a generation timestamp is retained
// for latency measurement: readings still undelivered after this long
// (lost datagrams, abandoned exchanges, collectors that never consume
// timestamps) are pruned so day-long runs don't accumulate one map
// entry per lost reading. Far above any real delivery latency — even a
// full CoAP queue behind repeated CON give-ups drains in well under an
// hour.
const genTimeHorizon = sim.Hour

// pruneGenTimes drops timestamps past the horizon; called every 1024
// samples so the sweep cost stays negligible.
func (s *Sensor) pruneGenTimes() {
	cutoff := s.eng.Now().Add(-genTimeHorizon)
	for seq, t := range s.genTime {
		if t < cutoff {
			delete(s.genTime, seq)
		}
	}
}

// NewSensor builds a sensor over a transport.
func NewSensor(eng *sim.Engine, tr Transport, queueCap int) *Sensor {
	return &Sensor{
		eng:       eng,
		transport: tr,
		Interval:  DefaultInterval,
		QueueCap:  queueCap,
		genTime:   map[uint32]sim.Time{},
	}
}

// Start begins sampling.
func (s *Sensor) Start() {
	if s.started {
		return
	}
	s.started = true
	s.eng.Schedule(s.Interval, s.sample)
}

// Stop ceases sampling (queued readings still drain as the transport
// accepts them).
func (s *Sensor) Stop() { s.stopped = true }

// TakeGenTime returns and forgets the generation time of a queued
// reading — the collector side uses it to compute per-reading
// generation→delivery latency.
func (s *Sensor) TakeGenTime(seq uint32) (sim.Time, bool) {
	t, ok := s.genTime[seq]
	if ok {
		delete(s.genTime, seq)
	}
	return t, ok
}

func (s *Sensor) sample() {
	if s.stopped {
		return
	}
	s.Stats.Generated++
	s.seq++
	if tr := s.Trace; tr != nil {
		tr.Emit(obs.Event{T: s.eng.Now(), Kind: obs.JourneyGen, Node: s.Node, A: int64(s.seq)})
	}
	if len(s.queue)/ReadingSize >= s.QueueCap {
		s.Stats.Dropped++
		if tr := s.Trace; tr != nil {
			tr.Emit(obs.Event{T: s.eng.Now(), Kind: obs.JourneyLoss, Node: s.Node, A: int64(s.seq), Cause: obs.CauseAppQueueFull})
		}
	} else {
		s.queue = append(s.queue, s.makeReading()...)
		s.Stats.Queued++
		s.genTime[s.seq] = s.eng.Now()
		if s.Trace != nil {
			s.enqSeqs = append(s.enqSeqs, s.seq)
		}
	}
	if s.seq%1024 == 0 {
		s.pruneGenTimes()
	}
	s.drain()
	s.eng.Schedule(s.Interval, s.sample)
}

// makeReading builds an 82-byte reading tagged with the sequence number.
func (s *Sensor) makeReading() []byte {
	r := make([]byte, ReadingSize)
	binary.BigEndian.PutUint32(r, s.seq)
	for i := 4; i < ReadingSize; i++ {
		r[i] = byte(i + int(s.seq))
	}
	return r
}

// Drain pushes queued readings into the transport subject to the
// batching policy.
func (s *Sensor) drain() {
	if s.Batch > 0 && len(s.queue) < s.Batch*ReadingSize {
		return
	}
	for len(s.queue) > 0 {
		n := s.transport.Send(s.queue)
		if n == 0 {
			return
		}
		// Only whole readings leave the queue; transports accept
		// arbitrary byte counts but we account in readings.
		s.queue = s.queue[n:]
		s.noteAccepted(n)
	}
}

// noteAccepted advances the journey acceptance boundary: once the
// transport has taken a reading's last byte, the reading has left the
// application queue and a JourneyEnq marks it with its acceptance index
// (its 0-based position in the transport byte stream, in readings).
func (s *Sensor) noteAccepted(n int) {
	tr := s.Trace
	if tr == nil {
		return
	}
	s.acceptedBytes += int64(n)
	for len(s.enqSeqs) > 0 && s.acceptedBytes >= (s.enqCount+1)*ReadingSize {
		seq := s.enqSeqs[0]
		s.enqSeqs = s.enqSeqs[1:]
		tr.Emit(obs.Event{T: s.eng.Now(), Kind: obs.JourneyEnq, Node: s.Node, A: int64(seq), B: s.enqCount})
		s.enqCount++
	}
}

// NotifyWritable retries draining (wired to transport progress).
func (s *Sensor) NotifyWritable() { s.drain() }

// QueueDepth returns queued readings.
func (s *Sensor) QueueDepth() int { return len(s.queue) / ReadingSize }

// ---- TCP transport ----

// TCPTransport streams readings over one long-lived TCPlp connection.
type TCPTransport struct {
	Conn   *tcplp.Conn
	sensor *Sensor
}

// NewTCPTransport connects node to collector:port and returns the
// transport plus a hook to attach the sensor.
func NewTCPTransport(node *stack.Node, collector ip6.Addr, port uint16) *TCPTransport {
	return NewTCPTransportConfig(node, node.TCP.Config(), collector, port)
}

// NewTCPTransportConfig is NewTCPTransport with an explicit per-flow
// TCP configuration.
func NewTCPTransportConfig(node *stack.Node, cfg tcplp.Config, collector ip6.Addr, port uint16) *TCPTransport {
	tr := &TCPTransport{}
	c := node.TCP.ConnectConfig(collector, port, cfg)
	tr.Conn = c
	c.OnWritable = func() {
		if tr.sensor != nil {
			tr.sensor.NotifyWritable()
		}
	}
	return tr
}

// Attach links the sensor that drains through this transport (delivery
// itself is counted at the Collector, as the paper measures it).
func (t *TCPTransport) Attach(s *Sensor) { t.sensor = s }

// CanSend implements Transport.
func (t *TCPTransport) CanSend() int { return t.Conn.WriteBufferSpace() }

// Send implements Transport.
func (t *TCPTransport) Send(p []byte) int {
	n, err := t.Conn.Write(p)
	if err != nil {
		return 0
	}
	return n
}

// ---- CoAP transport ----

// CoAPTransport ships readings as CoAP POSTs sized to one LLN packet
// (§9.3 sizes each CoAP batch message like a five-frame TCP segment),
// using blockwise numbering within a batch, confirmable or not.
type CoAPTransport struct {
	Client      *coap.Client
	Confirmable bool
	// MessageSize is the payload bytes per POST.
	MessageSize int

	// Trace/Node, when Trace is non-nil, tag each POST with a journey
	// packet id and emit per-batch journey events (obs).
	Trace *obs.Trace
	Node  int

	eng      *sim.Engine
	sensor   *Sensor
	blockNum uint32
}

// NewCoAPTransport builds a CoAP transport over the node's UDP stack,
// targeting the collector's default CoAP port.
func NewCoAPTransport(node *stack.Node, collector ip6.Addr, confirmable bool, msgSize int) *CoAPTransport {
	return NewCoAPTransportPort(node, collector, coap.DefaultPort, confirmable, msgSize)
}

// NewCoAPTransportPort is NewCoAPTransport with an explicit server port,
// letting several flows of one mesh run separate collectors.
func NewCoAPTransportPort(node *stack.Node, collector ip6.Addr, port uint16, confirmable bool, msgSize int) *CoAPTransport {
	cl := coap.NewClient(node.Eng(), node.UDP, collector, port)
	if node.Sleep != nil {
		sc := node.Sleep
		cl.OnExpectingChange = func(on bool) { sc.SetExpecting(on) }
	}
	return &CoAPTransport{Client: cl, Confirmable: confirmable, MessageSize: msgSize, eng: node.Eng()}
}

// Attach links the sensor that drains through this transport.
func (t *CoAPTransport) Attach(s *Sensor) { t.sensor = s }

// CanSend implements Transport: NSTART=1 plus a short queue.
func (t *CoAPTransport) CanSend() int {
	if t.Client.Pending() >= 4 {
		return 0
	}
	return t.MessageSize
}

// Send implements Transport: it takes up to MessageSize whole readings
// per POST.
func (t *CoAPTransport) Send(p []byte) int {
	if t.Client.Pending() >= 4 {
		return 0
	}
	n := t.MessageSize / ReadingSize * ReadingSize
	if n > len(p) {
		n = len(p) / ReadingSize * ReadingSize
	}
	if n == 0 {
		return 0
	}
	payload := append([]byte(nil), p[:n]...)
	blk := &coap.Block1{Num: t.blockNum, More: false, SZX: 6}
	t.blockNum++
	var jid int64
	if tr := t.Trace; tr != nil {
		jid = tr.NextID()
		reliable := int64(0)
		if t.Confirmable {
			reliable = 1
		}
		tr.Emit(obs.Event{T: t.eng.Now(), Kind: obs.JourneyData, Node: t.Node, J: jid,
			A: int64(binary.BigEndian.Uint32(payload)), B: int64(n / ReadingSize), Len: int(reliable)})
	}
	t.Client.PostJID("telemetry", payload, t.Confirmable, blk, jid, func(ok bool) {
		// Delivery is counted at the collector (server side), as the
		// paper measures reliability; here we only resume draining.
		if !ok && t.Confirmable {
			if tr := t.Trace; tr != nil {
				now := t.eng.Now()
				ForEachReading(payload, func(seq uint32) {
					tr.Emit(obs.Event{T: now, Kind: obs.JourneyLoss, Node: t.Node, A: int64(seq), Cause: obs.CauseCoAPGiveUp})
				})
			}
		}
		if t.sensor != nil {
			t.sensor.NotifyWritable()
		}
	})
	return n
}

// ---- collector-side accounting ----

// Collector counts readings arriving at the cloud host over either
// transport. Reliability is measured here, at the server, exactly as the
// paper does: delivered readings over generated readings, regardless of
// which protocol carried them.
type Collector struct {
	ReadingsByTCP  uint64
	ReadingsByCoAP uint64

	tcpRemainder map[*tcplp.Conn]int
}

// NewCollector installs TCP (port) and CoAP (5683) collectors on the
// host. credit maps each sensor node's address to the SensorStats whose
// Delivered count the collector maintains.
func NewCollector(host *stack.Node, port uint16, credit map[ip6.Addr]*SensorStats) *Collector {
	col := &Collector{tcpRemainder: map[*tcplp.Conn]int{}}
	// One drain buffer shared by every sensor connection (drains run
	// synchronously; the collector only counts, never keeps the bytes).
	buf := make([]byte, 4096)
	host.TCP.Listen(port, func(c *tcplp.Conn) {
		c.OnReadable = func() {
			for {
				n := c.Read(buf)
				if n == 0 {
					break
				}
				col.tcpRemainder[c] += n
				readings := col.tcpRemainder[c] / ReadingSize
				col.tcpRemainder[c] %= ReadingSize
				col.ReadingsByTCP += uint64(readings)
				if credit != nil {
					addr, _ := c.RemoteAddr()
					if st := credit[addr]; st != nil {
						st.Delivered += uint64(readings)
					}
				}
			}
		}
	})
	srv := coap.NewServer(host.Eng(), host.UDP, coap.DefaultPort)
	srv.OnPost = func(src ip6.Addr, payload []byte, blk *coap.Block1) coap.Code {
		readings := uint64(len(payload) / ReadingSize)
		col.ReadingsByCoAP += readings
		if credit != nil {
			if st := credit[src]; st != nil {
				st.Delivered += readings
			}
		}
		return coap.CodeChanged
	}
	return col
}
