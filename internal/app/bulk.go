// Package app provides the workloads of the measurement study: bulk
// transfer sources/sinks for the throughput experiments (§6-§8) and the
// anemometer telemetry application of §3/§9.
package app

import (
	"tcplp/internal/ip6"
	"tcplp/internal/sim"
	"tcplp/internal/stack"
	"tcplp/internal/tcplp"
)

// Sink accepts one TCP connection on a port and consumes everything sent
// to it, counting bytes — the receiving half of every throughput
// experiment.
type Sink struct {
	Received  int
	Conn      *tcplp.Conn
	markBytes int
	markTime  sim.Time
	eng       *sim.Engine
}

// ListenSink installs a byte-counting server on node:port.
func ListenSink(node *stack.Node, port uint16) *Sink {
	s := &Sink{eng: node.Eng()}
	node.TCP.Listen(port, func(c *tcplp.Conn) {
		s.Conn = c
		buf := make([]byte, 4096)
		c.OnReadable = func() {
			for {
				n := c.Read(buf)
				if n == 0 {
					break
				}
				s.Received += n
			}
			if c.EOF() {
				c.Close()
			}
		}
	})
	return s
}

// Mark begins a measurement window at the current time.
func (s *Sink) Mark() {
	s.markBytes = s.Received
	s.markTime = s.eng.Now()
}

// GoodputKbps returns application-layer goodput in kb/s since Mark.
func (s *Sink) GoodputKbps() float64 {
	elapsed := s.eng.Now().Sub(s.markTime).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(s.Received-s.markBytes) * 8 / elapsed / 1000
}

// BytesSinceMark returns bytes received in the measurement window.
func (s *Sink) BytesSinceMark() int { return s.Received - s.markBytes }

// Source keeps a TCP connection's send buffer full with a repeating
// pattern — an unbounded bulk sender.
type Source struct {
	Conn *tcplp.Conn
	Sent int

	pattern []byte
	off     int
	stopped bool
}

// StartBulk opens a connection from node to dst:port and streams data
// indefinitely (until Stop).
func StartBulk(node *stack.Node, dst ip6.Addr, port uint16) *Source {
	s := &Source{pattern: makePattern()}
	c := node.TCP.Connect(dst, port)
	s.Conn = c
	pump := func() {
		if s.stopped {
			return
		}
		for {
			n, err := c.Write(s.pattern[s.off:])
			if err != nil || n == 0 {
				return
			}
			s.Sent += n
			s.off = (s.off + n) % len(s.pattern)
		}
	}
	c.OnEstablished = pump
	c.OnWritable = pump
	return s
}

// Stop ceases writing and closes the connection.
func (s *Source) Stop() {
	s.stopped = true
	s.Conn.Close()
}

// makePattern builds a verifiable repeating byte pattern.
func makePattern() []byte {
	p := make([]byte, 1024)
	for i := range p {
		p[i] = byte(i*31 + 7)
	}
	return p
}

// VerifyPattern checks that data matches the Source pattern starting at
// stream offset off; it returns the first mismatching index or -1.
func VerifyPattern(data []byte, off int) int {
	p := makePattern()
	for i, b := range data {
		if b != p[(off+i)%len(p)] {
			return i
		}
	}
	return -1
}
