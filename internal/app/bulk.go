// Package app provides the workloads of the measurement study: bulk
// transfer sources/sinks for the throughput experiments (§6-§8) and the
// anemometer telemetry application of §3/§9.
package app

import (
	"tcplp/internal/ip6"
	"tcplp/internal/sim"
	"tcplp/internal/stack"
	"tcplp/internal/tcplp"
)

// Sink accepts one TCP connection on a port and consumes everything sent
// to it, counting bytes — the receiving half of every throughput
// experiment.
type Sink struct {
	Received  int
	Conn      *tcplp.Conn
	markBytes int
	markTime  sim.Time
	eng       *sim.Engine
}

// ListenSink installs a byte-counting server on node:port using the
// node's default TCP configuration.
func ListenSink(node *stack.Node, port uint16) *Sink {
	return listenSink(node, port, nil)
}

// ListenSinkConfig installs a byte-counting server whose accepted
// connections use an explicit per-flow TCP configuration (the receive
// buffer bounds the advertised window, so a flow's window knob must be
// applied at the sink too).
func ListenSinkConfig(node *stack.Node, port uint16, cfg tcplp.Config) *Sink {
	return listenSink(node, port, &cfg)
}

func listenSink(node *stack.Node, port uint16, cfg *tcplp.Config) *Sink {
	return listenSinkData(node, port, cfg, nil)
}

// listenSinkData is listenSink with an optional per-chunk hook invoked
// on every drained chunk (the reading-parsing collector rides on it).
func listenSinkData(node *stack.Node, port uint16, cfg *tcplp.Config, onData func([]byte)) *Sink {
	s := &Sink{eng: node.Eng()}
	// One drain buffer per sink, shared across accepted connections:
	// drains run synchronously and no onData hook retains the chunk.
	buf := make([]byte, 4096)
	l := node.TCP.Listen(port, func(c *tcplp.Conn) {
		s.Conn = c
		c.OnReadable = func() {
			for {
				n := c.Read(buf)
				if n == 0 {
					break
				}
				s.Received += n
				if onData != nil {
					onData(buf[:n])
				}
			}
			if c.EOF() {
				c.Close()
			}
		}
	})
	if cfg != nil {
		c := *cfg
		l.ConfigFor = func() tcplp.Config { return c }
	}
	return s
}

// Mark begins a measurement window at the current time.
func (s *Sink) Mark() {
	s.markBytes = s.Received
	s.markTime = s.eng.Now()
}

// GoodputKbps returns application-layer goodput in kb/s since Mark.
func (s *Sink) GoodputKbps() float64 {
	elapsed := s.eng.Now().Sub(s.markTime).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(s.Received-s.markBytes) * 8 / elapsed / 1000
}

// BytesSinceMark returns bytes received in the measurement window.
func (s *Sink) BytesSinceMark() int { return s.Received - s.markBytes }

// Source keeps a TCP connection's send buffer full with a repeating
// pattern — an unbounded bulk sender.
type Source struct {
	Conn *tcplp.Conn
	Sent int

	pattern []byte
	off     int
	active  bool // writing (vs. an on-off source's off-period)
	stopped bool
}

// StartBulk opens a connection from node to dst:port and streams data
// indefinitely (until Stop) using the node's default TCP configuration.
func StartBulk(node *stack.Node, dst ip6.Addr, port uint16) *Source {
	return StartBulkConfig(node, node.TCP.Config(), dst, port)
}

// StartBulkConfig is StartBulk with an explicit per-flow TCP
// configuration (congestion-control variant, window, pacing).
func StartBulkConfig(node *stack.Node, cfg tcplp.Config, dst ip6.Addr, port uint16) *Source {
	s := &Source{pattern: makePattern(), active: true}
	c := node.TCP.ConnectConfig(dst, port, cfg)
	s.Conn = c
	c.OnEstablished = s.pump
	c.OnWritable = s.pump
	return s
}

// StartOnOffConfig opens a connection and alternates on-periods of bulk
// writing with idle off-periods — the bursty on-off application pattern
// (firmware pushes, periodic log uploads). The source starts on; each
// period boundary toggles it.
func StartOnOffConfig(node *stack.Node, cfg tcplp.Config, dst ip6.Addr, port uint16, on, off sim.Duration) *Source {
	s := StartBulkConfig(node, cfg, dst, port)
	eng := node.Eng()
	var toggle func()
	toggle = func() {
		if s.stopped {
			return
		}
		s.active = !s.active
		if s.active {
			eng.Schedule(on, toggle)
			s.pump()
		} else {
			eng.Schedule(off, toggle)
		}
	}
	eng.Schedule(on, toggle)
	return s
}

func (s *Source) pump() {
	if s.stopped || !s.active {
		return
	}
	for {
		n, err := s.Conn.Write(s.pattern[s.off:])
		if err != nil || n == 0 {
			return
		}
		s.Sent += n
		s.off = (s.off + n) % len(s.pattern)
	}
}

// Stop ceases writing and closes the connection.
func (s *Source) Stop() {
	s.stopped = true
	s.Conn.Close()
}

// makePattern builds a verifiable repeating byte pattern.
func makePattern() []byte {
	p := make([]byte, 1024)
	for i := range p {
		p[i] = byte(i*31 + 7)
	}
	return p
}

// VerifyPattern checks that data matches the Source pattern starting at
// stream offset off; it returns the first mismatching index or -1.
func VerifyPattern(data []byte, off int) int {
	p := makePattern()
	for i, b := range data {
		if b != p[(off+i)%len(p)] {
			return i
		}
	}
	return -1
}
