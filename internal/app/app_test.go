package app_test

import (
	"testing"

	"tcplp/internal/app"
	"tcplp/internal/ip6"
	"tcplp/internal/mesh"
	"tcplp/internal/netem"
	"tcplp/internal/sim"
	"tcplp/internal/stack"
)

func TestBulkSourceSinkGoodput(t *testing.T) {
	net := stack.New(1, mesh.Chain(2, 10), stack.DefaultOptions())
	sink := app.ListenSink(net.Nodes[0], 80)
	src := app.StartBulk(net.Nodes[1], net.Nodes[0].Addr, 80)
	net.Eng.RunFor(5 * sim.Second)
	sink.Mark()
	net.Eng.RunFor(20 * sim.Second)
	if g := sink.GoodputKbps(); g < 40 {
		t.Fatalf("goodput = %.1f", g)
	}
	if src.Sent < sink.Received {
		t.Fatal("sink received more than source sent")
	}
	src.Stop()
}

func TestVerifyPattern(t *testing.T) {
	if app.VerifyPattern([]byte{7, 38, 69}, 0) != -1 {
		t.Fatal("pattern prefix rejected")
	}
	if app.VerifyPattern([]byte{7, 0}, 0) != 1 {
		t.Fatal("corruption not detected")
	}
	// Offsets shift the expected pattern.
	if app.VerifyPattern([]byte{38, 69}, 1) != -1 {
		t.Fatal("offset pattern rejected")
	}
}

func TestSensorQueueOverflow(t *testing.T) {
	eng := sim.NewEngine(3)
	// A transport that never accepts anything.
	s := app.NewSensor(eng, blockedTransport{}, 4)
	s.Interval = sim.Second
	s.Start()
	eng.RunUntil(sim.Time(10 * sim.Second))
	if s.Stats.Generated != 10 {
		t.Fatalf("generated = %d", s.Stats.Generated)
	}
	if s.Stats.Dropped != 6 || s.QueueDepth() != 4 {
		t.Fatalf("dropped=%d depth=%d, want 6 dropped with 4 queued", s.Stats.Dropped, s.QueueDepth())
	}
}

type blockedTransport struct{}

func (blockedTransport) Send(p []byte) int { return 0 }
func (blockedTransport) CanSend() int      { return 0 }

func TestSensorBatchingHoldsUntilThreshold(t *testing.T) {
	eng := sim.NewEngine(4)
	rec := &recordingTransport{}
	s := app.NewSensor(eng, rec, 128)
	s.Interval = sim.Second
	s.Batch = 8
	s.Start()
	eng.RunUntil(sim.Time(7 * sim.Second))
	if rec.calls != 0 {
		t.Fatalf("transport invoked before batch threshold: %d", rec.calls)
	}
	eng.RunUntil(sim.Time(9 * sim.Second))
	if rec.calls == 0 {
		t.Fatal("batch never flushed")
	}
	if rec.bytes != 8*app.ReadingSize {
		t.Fatalf("flushed %d bytes, want %d", rec.bytes, 8*app.ReadingSize)
	}
}

type recordingTransport struct {
	calls int
	bytes int
}

func (r *recordingTransport) Send(p []byte) int { r.calls++; r.bytes += len(p); return len(p) }
func (r *recordingTransport) CanSend() int      { return 1 << 20 }

func TestTCPTransportEndToEnd(t *testing.T) {
	net := stack.New(5, mesh.Chain(2, 10), stack.DefaultOptions())
	host := net.AttachHost()
	credit := map[ip6.Addr]*app.SensorStats{}
	col := app.NewCollector(host, 80, credit)

	node := net.Nodes[1]
	tr := app.NewTCPTransport(node, host.Addr, 80)
	s := app.NewSensor(net.Eng, tr, app.TCPQueueCap)
	s.Interval = 200 * sim.Millisecond
	tr.Attach(s)
	credit[node.Addr] = &s.Stats
	s.Start()
	net.Eng.RunFor(30 * sim.Second)
	if col.ReadingsByTCP == 0 {
		t.Fatal("no readings collected over TCP")
	}
	if s.Stats.Reliability() < 0.9 {
		t.Fatalf("reliability = %.2f", s.Stats.Reliability())
	}
}

func TestCoAPTransportEndToEnd(t *testing.T) {
	net := stack.New(6, mesh.Chain(2, 10), stack.DefaultOptions())
	host := net.AttachHost()
	credit := map[ip6.Addr]*app.SensorStats{}
	col := app.NewCollector(host, 80, credit)

	node := net.Nodes[1]
	tr := app.NewCoAPTransport(node, host.Addr, true, 410)
	s := app.NewSensor(net.Eng, tr, app.CoAPQueueCap)
	s.Interval = 200 * sim.Millisecond
	tr.Attach(s)
	credit[node.Addr] = &s.Stats
	s.Start()
	net.Eng.RunFor(30 * sim.Second)
	if col.ReadingsByCoAP == 0 {
		t.Fatal("no readings collected over CoAP")
	}
	if s.Stats.Reliability() < 0.9 {
		t.Fatalf("reliability = %.2f", s.Stats.Reliability())
	}
}

func TestUniformLossFilter(t *testing.T) {
	f := netem.UniformLoss(0.5, 1)
	drops := 0
	for i := 0; i < 1000; i++ {
		if f(nil) {
			drops++
		}
	}
	if drops < 400 || drops > 600 {
		t.Fatalf("drops = %d/1000 at p=0.5", drops)
	}
}

func TestDiurnalProfileShape(t *testing.T) {
	prof := netem.DiurnalProfile(1.0)
	night := prof(sim.Time(3 * sim.Hour))
	noon := prof(sim.Time(12 * sim.Hour))
	evening := prof(sim.Time(19 * sim.Hour))
	if !(noon > evening && evening > night) {
		t.Fatalf("profile not diurnal: night=%.2f noon=%.2f evening=%.2f", night, noon, evening)
	}
	// Periodic across days.
	if prof(sim.Time(12*sim.Hour)) != prof(sim.Time(36*sim.Hour)) {
		t.Fatal("profile not 24h-periodic")
	}
}
