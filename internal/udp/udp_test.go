package udp

import (
	"bytes"
	"testing"
	"testing/quick"

	"tcplp/internal/ip6"
)

func TestDatagramRoundTrip(t *testing.T) {
	d := &Datagram{SrcPort: 40001, DstPort: 5683, Payload: []byte("coap bytes")}
	g, err := Decode(d.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if g.SrcPort != d.SrcPort || g.DstPort != d.DstPort || !bytes.Equal(g.Payload, d.Payload) {
		t.Fatalf("round trip: %+v", g)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); err != ErrTruncated {
		t.Fatalf("short: %v", err)
	}
	d := (&Datagram{Payload: []byte("xy")}).Encode()
	if _, err := Decode(d[:len(d)-1]); err != ErrTruncated {
		t.Fatalf("bad length: %v", err)
	}
}

func TestStackDemux(t *testing.T) {
	s := NewStack(ip6.AddrFromID(1))
	var sent *ip6.Packet
	s.Output = func(pkt *ip6.Packet) { sent = pkt }
	var gotA, gotB []byte
	s.Bind(100, func(src ip6.Addr, sp uint16, p []byte) { gotA = p })
	portB := s.Bind(0, func(src ip6.Addr, sp uint16, p []byte) { gotB = p })
	if portB < 40000 {
		t.Fatalf("ephemeral port = %d", portB)
	}

	s.Send(ip6.AddrFromID(2), 200, 100, []byte("outbound"))
	if sent == nil || sent.NextHeader != ip6.ProtoUDP {
		t.Fatal("send did not produce a UDP packet")
	}

	mk := func(dst uint16, payload string) *ip6.Packet {
		d := &Datagram{SrcPort: 9, DstPort: dst, Payload: []byte(payload)}
		return &ip6.Packet{
			Header: ip6.Header{
				NextHeader: ip6.ProtoUDP, HopLimit: 64,
				Src: ip6.AddrFromID(2), Dst: ip6.AddrFromID(1),
			},
			Payload: d.Encode(),
		}
	}
	s.Input(mk(100, "for A"))
	s.Input(mk(portB, "for B"))
	s.Input(mk(999, "nobody"))
	if string(gotA) != "for A" || string(gotB) != "for B" {
		t.Fatalf("demux: %q %q", gotA, gotB)
	}

	// Wrong destination address or protocol is ignored.
	pkt := mk(100, "misaddressed")
	pkt.Dst = ip6.AddrFromID(5)
	s.Input(pkt)
	if string(gotA) != "for A" {
		t.Fatal("misaddressed packet delivered")
	}

	s.Unbind(100)
	s.Input(mk(100, "after unbind"))
	if string(gotA) != "for A" {
		t.Fatal("unbound port delivered")
	}
}

// Property: datagrams round-trip for arbitrary ports and payloads.
func TestQuickDatagramRoundTrip(t *testing.T) {
	f := func(sp, dp uint16, payload []byte) bool {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		g, err := Decode((&Datagram{SrcPort: sp, DstPort: dp, Payload: payload}).Encode())
		if err != nil {
			return false
		}
		return g.SrcPort == sp && g.DstPort == dp &&
			(bytes.Equal(g.Payload, payload) || (len(payload) == 0 && len(g.Payload) == 0))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
