// Package udp is the minimal UDP layer CoAP rides on: the 8-byte header
// codec and a port-demultiplexing endpoint.
package udp

import (
	"encoding/binary"
	"errors"

	"tcplp/internal/ip6"
)

// HeaderLen is the UDP header length.
const HeaderLen = 8

// Datagram is a parsed UDP datagram.
type Datagram struct {
	SrcPort, DstPort uint16
	Payload          []byte
}

// Encode serializes the datagram (checksum left zero: corruption is
// modelled at the PHY).
func (d *Datagram) Encode() []byte {
	b := make([]byte, HeaderLen+len(d.Payload))
	binary.BigEndian.PutUint16(b[0:], d.SrcPort)
	binary.BigEndian.PutUint16(b[2:], d.DstPort)
	binary.BigEndian.PutUint16(b[4:], uint16(len(b)))
	copy(b[HeaderLen:], d.Payload)
	return b
}

// ErrTruncated reports a datagram shorter than its header or length field.
var ErrTruncated = errors.New("udp: truncated datagram")

// Decode parses a UDP datagram.
func Decode(b []byte) (*Datagram, error) {
	if len(b) < HeaderLen {
		return nil, ErrTruncated
	}
	ln := int(binary.BigEndian.Uint16(b[4:]))
	if ln < HeaderLen || ln > len(b) {
		return nil, ErrTruncated
	}
	d := &Datagram{
		SrcPort: binary.BigEndian.Uint16(b[0:]),
		DstPort: binary.BigEndian.Uint16(b[2:]),
	}
	if ln > HeaderLen {
		d.Payload = append([]byte(nil), b[HeaderLen:ln]...)
	}
	return d, nil
}

// Handler receives datagrams for a bound port.
type Handler func(src ip6.Addr, srcPort uint16, payload []byte)

// Stack is one node's UDP endpoint.
type Stack struct {
	addr ip6.Addr
	// Output transmits an IPv6 packet (wired up by the node).
	Output   func(pkt *ip6.Packet)
	handlers map[uint16]Handler
	nextPort uint16
}

// NewStack returns a UDP endpoint bound to addr. The handler map
// initialises on first Bind so unbound nodes carry no map header.
func NewStack(addr ip6.Addr) *Stack {
	return &Stack{addr: addr, nextPort: 40000}
}

// Bind registers a handler for a port, returning the port (0 picks an
// ephemeral one).
func (s *Stack) Bind(port uint16, h Handler) uint16 {
	if port == 0 {
		for {
			s.nextPort++
			if _, used := s.handlers[s.nextPort]; !used {
				port = s.nextPort
				break
			}
		}
	}
	if s.handlers == nil {
		s.handlers = map[uint16]Handler{}
	}
	s.handlers[port] = h
	return port
}

// Unbind removes a port binding.
func (s *Stack) Unbind(port uint16) { delete(s.handlers, port) }

// Send transmits payload to dst:dstPort from srcPort.
func (s *Stack) Send(dst ip6.Addr, dstPort, srcPort uint16, payload []byte) {
	s.SendJID(dst, dstPort, srcPort, payload, 0)
}

// SendJID is Send with a journey packet id attached to the datagram for
// causal tracing (simulator metadata; never on the wire).
func (s *Stack) SendJID(dst ip6.Addr, dstPort, srcPort uint16, payload []byte, jid int64) {
	d := &Datagram{SrcPort: srcPort, DstPort: dstPort, Payload: payload}
	pkt := &ip6.Packet{
		Header: ip6.Header{
			NextHeader: ip6.ProtoUDP,
			HopLimit:   ip6.DefaultHopLimit,
			Src:        s.addr,
			Dst:        dst,
		},
		Payload: d.Encode(),
	}
	pkt.PayloadLen = uint16(len(pkt.Payload))
	pkt.JID = jid
	if s.Output != nil {
		s.Output(pkt)
	}
}

// Input feeds a received IPv6 packet into the UDP layer.
func (s *Stack) Input(pkt *ip6.Packet) {
	if pkt.NextHeader != ip6.ProtoUDP || pkt.Dst != s.addr {
		return
	}
	d, err := Decode(pkt.Payload)
	if err != nil {
		return
	}
	if h, ok := s.handlers[d.DstPort]; ok {
		h(pkt.Src, d.SrcPort, d.Payload)
	}
}
