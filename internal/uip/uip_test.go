package uip

import (
	"testing"
)

func TestProfilesMatchTable1(t *testing.T) {
	for _, p := range Profiles() {
		cfg := p.Config()
		if cfg.UseSACK || cfg.UseTimestamps || cfg.UseDelayedAcks {
			t.Fatalf("%v: simplified stack has full-scale features enabled", p)
		}
		if cfg.SendBufSize != cfg.MSS || cfg.RecvBufSize != cfg.MSS {
			t.Fatalf("%v: buffers must hold exactly one segment (got %d/%d, MSS %d)",
				p, cfg.SendBufSize, cfg.RecvBufSize, cfg.MSS)
		}
		if cfg.InitialCwndSegs != 1 {
			t.Fatalf("%v: initial window = %d segs", p, cfg.InitialCwndSegs)
		}
	}
}

func TestSegFrames(t *testing.T) {
	cases := map[Profile]int{UIP: 1, BLIP: 1, Hewage: 4, ArchRock: 9}
	for p, frames := range cases {
		if p.SegFrames() != frames {
			t.Fatalf("%v frames = %d, want %d", p, p.SegFrames(), frames)
		}
	}
	// Larger segment profiles must produce larger MSS.
	if UIP.Config().MSS >= Hewage.Config().MSS {
		t.Fatal("MSS ordering broken")
	}
	if Hewage.Config().MSS >= ArchRock.Config().MSS {
		t.Fatal("MSS ordering broken")
	}
}

func TestNames(t *testing.T) {
	for _, p := range Profiles() {
		if p.String() == "?" {
			t.Fatalf("profile %d has no name", p)
		}
	}
}
