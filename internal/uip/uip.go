// Package uip reproduces the simplified embedded TCP stacks the paper
// compares against (Table 1 and Table 7): uIP in Contiki, BLIP in TinyOS,
// and the Arch Rock stack. Each is expressed as a configuration profile
// of the full tcplp implementation with features stripped away — which is
// faithful to what these stacks are: wire-compatible TCPs without sliding
// windows, congestion control, SACK, timestamps, or delayed ACKs.
//
// The defining limitation is a single outstanding segment: with a
// one-segment send buffer and a one-segment advertised window, the
// connection degenerates to stop-and-wait, so goodput collapses to
// roughly MSS/RTT — and interacts catastrophically with a delayed-ACK
// peer, as real uIP deployments observed.
package uip

import (
	"fmt"
	"strings"

	"tcplp/internal/sim"
	"tcplp/internal/stack"
	"tcplp/internal/tcplp"
)

// Profile identifies a simplified-stack configuration from Table 7.
type Profile int

// Profiles.
const (
	// UIP is Contiki's uIP: MSS of one frame, one outstanding segment,
	// no RTT estimation beyond a coarse fixed timer, no options.
	UIP Profile = iota
	// BLIP is TinyOS's BLIP stack: one frame, one segment, no
	// congestion control, no RTT estimation, no MSS option.
	BLIP
	// Hewage is the uIP variant of Hewage et al. [50]: MSS of four
	// frames, still one outstanding segment.
	Hewage
	// ArchRock is the Arch Rock stack [53]: ≈1024-byte segments, one
	// outstanding segment.
	ArchRock
)

func (p Profile) String() string {
	switch p {
	case UIP:
		return "uIP"
	case BLIP:
		return "BLIP"
	case Hewage:
		return "uIP[50]"
	case ArchRock:
		return "ArchRock"
	}
	return "?"
}

// SegFrames returns the profile's segment size in 802.15.4 frames.
func (p Profile) SegFrames() int {
	switch p {
	case Hewage:
		return 4
	case ArchRock:
		return 9 // ≈1024 bytes
	default:
		return 1
	}
}

// Config builds the tcplp configuration for the profile. The stripped
// feature set matches Table 1's rows for each stack.
func (p Profile) Config() tcplp.Config {
	info := stack.SegmentSizing(p.SegFrames(), false)
	cfg := tcplp.DefaultConfig()
	cfg.MSS = info.MSS
	cfg.SendBufSize = info.MSS // one outstanding segment
	cfg.RecvBufSize = info.MSS
	cfg.UseSACK = false
	cfg.UseTimestamps = false
	cfg.UseDelayedAcks = false
	cfg.UseECN = false
	cfg.InitialCwndSegs = 1
	// Coarse embedded retransmission timers: uIP ticks at 0.5 s with an
	// initial RTO of several ticks.
	cfg.RTOMin = 1500 * sim.Millisecond
	cfg.MaxRetransmits = 8
	return cfg
}

// Profiles lists every baseline for the Table 7 sweep.
func Profiles() []Profile { return []Profile{UIP, BLIP, Hewage, ArchRock} }

// Key returns the profile's identifier as used in scenario specs.
func (p Profile) Key() string {
	switch p {
	case UIP:
		return "uip"
	case BLIP:
		return "blip"
	case Hewage:
		return "uip50"
	case ArchRock:
		return "archrock"
	}
	return "?"
}

// ParseProfile resolves a profile name used in scenario specs,
// accepting the Key form and common aliases.
func ParseProfile(s string) (Profile, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "uip":
		return UIP, nil
	case "blip":
		return BLIP, nil
	case "uip50", "uip-50", "uip[50]", "hewage":
		return Hewage, nil
	case "archrock", "arch-rock":
		return ArchRock, nil
	}
	return 0, fmt.Errorf("uip: unknown stack profile %q (have uip, blip, uip50, archrock)", s)
}
