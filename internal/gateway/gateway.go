// Package gateway implements the border-router gateway tier: a node
// type that terminates LLN-side TCP and CoAP telemetry flows at the
// border router and multiplexes them onto a modeled wide-area backhaul
// (netem.WANLink), the split-transport proxy architecture the paper
// stops short of (its evaluation ends at the border router).
//
// The gateway keeps a per-device connection table — bounded, with
// least-recently-active eviction and optional idle timeout — parses
// complete readings out of each device's stream or POSTs, and forwards
// them upstream as framed WAN messages. A shared cloud-side collector
// credits deliveries per source, so upstream fairness is measurable
// end-to-end (device → gateway → cloud), not just over the mesh hop.
package gateway

import (
	"tcplp/internal/app"
	"tcplp/internal/coap"
	"tcplp/internal/ip6"
	"tcplp/internal/netem"
	"tcplp/internal/obs"
	"tcplp/internal/sim"
	"tcplp/internal/stack"
	"tcplp/internal/tcplp"
)

// Default LLN-side terminator ports.
const (
	// DefaultTCPPort is the gateway's TCP listening port.
	DefaultTCPPort = 7000
	// DefaultCoAPPort is the gateway's CoAP server port.
	DefaultCoAPPort = coap.DefaultPort
	// DefaultWANOverhead is the backhaul framing added per forwarded
	// message (TLS record + TCP/IP headers of a cloud uplink).
	DefaultWANOverhead = 48
)

// Config parameterizes a gateway.
type Config struct {
	// TCPPort/CoAPPort are the LLN-side terminator ports (defaults
	// DefaultTCPPort / DefaultCoAPPort).
	TCPPort  uint16
	CoAPPort uint16
	// MaxConns bounds the connection table; 0 is unbounded. A full table
	// evicts its least-recently-active device to admit a new one.
	MaxConns int
	// IdleTimeout evicts table entries idle this long; 0 disables the
	// sweep.
	IdleTimeout sim.Duration
	// SinkCfg is the TCP configuration for accepted LLN-side
	// connections.
	SinkCfg tcplp.Config
	// WAN shapes the backhaul link.
	WAN netem.WANConfig
	// WANOverhead is framing bytes added per forwarded message (default
	// DefaultWANOverhead).
	WANOverhead int
}

// Stats counts gateway-level events. Reading counts are cumulative;
// callers windowing a measurement snapshot and subtract.
type Stats struct {
	Accepted     uint64 // LLN-side TCP connections accepted
	Posts        uint64 // CoAP POSTs served
	Reused       uint64 // arrivals that found a live table entry
	Evicted      uint64 // entries closed by capacity pressure or idleness
	ReadingsIn   uint64 // complete readings parsed off LLN flows
	ReadingsOut  uint64 // readings credited at the cloud collector
	ReadingsLost uint64 // readings dropped crossing the WAN
}

// registration is one flow probe's crediting hooks, keyed by device
// address. Any hook may be nil (unregistered devices still proxy; they
// just go unmeasured).
type registration struct {
	gwDeliver  func(seq uint32) // reading reached the gateway (mesh hop done)
	e2eDeliver func(seq uint32) // reading credited at the cloud collector
	wanLost    func(n int)      // readings lost crossing the WAN
	sink       *app.CountingSink
}

// entry is one connection-table slot: the per-device termination state.
type entry struct {
	addr       ip6.Addr
	conn       *tcplp.Conn // live TCP connection; nil for CoAP devices
	stream     *app.ReadingStream
	lastActive sim.Time
	pending    []uint32 // readings parsed but not yet offered to the WAN
}

// Gateway is one instantiated gateway on the border router.
type Gateway struct {
	node *stack.Node
	eng  *sim.Engine
	cfg  Config
	wan  *netem.WANLink

	// entries is a slice, not a map: eviction scans must be
	// deterministic for the runner's serial-vs-parallel bit-identity.
	// byAddr indexes it for the per-arrival lookup, which at city scale
	// would otherwise scan thousands of entries per segment.
	entries []*entry
	byAddr  map[ip6.Addr]*entry
	regs    map[ip6.Addr]*registration

	// rdBuf is the drain scratch buffer shared by every accepted
	// connection: drains run synchronously on the engine and the stream
	// reassembly copies what it keeps, so one per gateway suffices (a
	// per-connection buffer is 4 KB × the city's device count).
	rdBuf []byte

	Stats Stats

	// Trace, when non-nil, emits connection-table admit/evict events
	// (obs), tagged with the border router's node id.
	Trace *obs.Trace
}

// New installs a gateway on node (the border router): a shared TCP
// listener, a CoAP server, and the WAN link, which gets its own
// deterministic loss source derived from seed.
func New(node *stack.Node, cfg Config, seed int64) *Gateway {
	if cfg.TCPPort == 0 {
		cfg.TCPPort = DefaultTCPPort
	}
	if cfg.CoAPPort == 0 {
		cfg.CoAPPort = DefaultCoAPPort
	}
	if cfg.WANOverhead == 0 {
		cfg.WANOverhead = DefaultWANOverhead
	}
	g := &Gateway{
		node:  node,
		eng:   node.Eng(),
		cfg:   cfg,
		wan:   netem.NewWANLink(node.Eng(), cfg.WAN, seed),
		regs:  map[ip6.Addr]*registration{},
		rdBuf: make([]byte, 4096),
	}
	sinkCfg := cfg.SinkCfg
	l := node.TCP.Listen(cfg.TCPPort, g.accept)
	l.ConfigFor = func() tcplp.Config { return sinkCfg }
	srv := coap.NewServer(node.Eng(), node.UDP, cfg.CoAPPort)
	srv.OnPost = g.onPost
	if cfg.IdleTimeout > 0 {
		g.eng.Schedule(cfg.IdleTimeout, g.idleSweep)
	}
	return g
}

// SetTrace threads the obs trace through the gateway and its WAN link.
func (g *Gateway) SetTrace(tr *obs.Trace) {
	g.Trace = tr
	g.wan.Trace, g.wan.Node = tr, g.node.ID
}

// TCPPort returns the LLN-side TCP terminator port.
func (g *Gateway) TCPPort() uint16 { return g.cfg.TCPPort }

// CoAPPort returns the LLN-side CoAP terminator port.
func (g *Gateway) CoAPPort() uint16 { return g.cfg.CoAPPort }

// WAN returns the backhaul link (stats and queue depth).
func (g *Gateway) WAN() *netem.WANLink { return g.wan }

// Active returns the current connection-table population.
func (g *Gateway) Active() int { return len(g.entries) }

// Register installs the measurement hooks for one device and returns
// the per-source sink counting cloud-credited payload bytes. Call
// before the device's flow starts; every hook may be nil.
func (g *Gateway) Register(addr ip6.Addr, gwDeliver, e2eDeliver func(seq uint32), wanLost func(n int)) *app.CountingSink {
	r := &registration{
		gwDeliver:  gwDeliver,
		e2eDeliver: e2eDeliver,
		wanLost:    wanLost,
		sink:       app.NewCountingSink(g.eng),
	}
	g.regs[addr] = r
	return r.sink
}

// lookup finds a device's table entry.
func (g *Gateway) lookup(addr ip6.Addr) *entry {
	return g.byAddr[addr]
}

// touch returns the device's entry, creating one (evicting the
// least-recently-active entry if the table is full) or refreshing an
// existing one.
func (g *Gateway) touch(addr ip6.Addr) *entry {
	now := g.eng.Now()
	if e := g.lookup(addr); e != nil {
		g.Stats.Reused++
		e.lastActive = now
		return e
	}
	if g.cfg.MaxConns > 0 && len(g.entries) >= g.cfg.MaxConns {
		g.evictLRA()
	}
	e := &entry{addr: addr, lastActive: now}
	e.stream = &app.ReadingStream{Deliver: func(seq uint32) { g.onReading(e, seq) }}
	g.entries = append(g.entries, e)
	if g.byAddr == nil {
		g.byAddr = map[ip6.Addr]*entry{}
	}
	g.byAddr[addr] = e
	if tr := g.Trace; tr != nil {
		tr.Emit(obs.Event{T: now, Kind: obs.GwAdmit, Node: g.node.ID, A: int64(len(g.entries))})
	}
	return e
}

// evictLRA closes the least-recently-active entry (insertion order
// breaks ties, deterministically — the table is a slice).
func (g *Gateway) evictLRA() {
	if len(g.entries) == 0 {
		return
	}
	victim := 0
	for i, e := range g.entries[1:] {
		if e.lastActive < g.entries[victim].lastActive {
			victim = i + 1
		}
	}
	g.evict(victim)
}

// evict closes and removes the entry at index i. Readings parsed but
// not yet flushed to the WAN die with the entry; each is reported as a
// terminal journey loss so the conformance checker can account for it.
func (g *Gateway) evict(i int) {
	e := g.entries[i]
	g.entries = append(g.entries[:i], g.entries[i+1:]...)
	delete(g.byAddr, e.addr)
	g.Stats.Evicted++
	if tr := g.Trace; tr != nil {
		tr.Emit(obs.Event{T: g.eng.Now(), Kind: obs.GwEvict, Node: g.node.ID, A: int64(len(g.entries))})
		g.emitReadingLoss(e, e.pending, obs.CauseGwEvict)
	}
	e.pending = nil
	if e.conn != nil {
		e.conn.Close()
		e.conn = nil
	}
}

// emitReadingLoss records a terminal JourneyLoss for each of a device's
// readings, keyed by the device's node id (the journey analyzer keys
// readings by source node + seq).
func (g *Gateway) emitReadingLoss(e *entry, seqs []uint32, cause obs.Cause) {
	tr := g.Trace
	if tr == nil || len(seqs) == 0 {
		return
	}
	node, ok := e.addr.ID()
	if !ok {
		return
	}
	now := g.eng.Now()
	for _, seq := range seqs {
		tr.Emit(obs.Event{T: now, Kind: obs.JourneyLoss, Node: node, A: int64(seq), Cause: cause})
	}
}

// emitWanEnq records per-reading WAN acceptance (journey boundary
// between the gateway table and the backhaul).
func (g *Gateway) emitWanEnq(e *entry, seqs []uint32) {
	tr := g.Trace
	if tr == nil || len(seqs) == 0 {
		return
	}
	node, ok := e.addr.ID()
	if !ok {
		return
	}
	now := g.eng.Now()
	for _, seq := range seqs {
		tr.Emit(obs.Event{T: now, Kind: obs.JourneyWanEnq, Node: node, A: int64(seq)})
	}
}

// idleSweep evicts entries idle past the timeout, rescheduling itself.
func (g *Gateway) idleSweep() {
	cutoff := g.eng.Now().Add(-g.cfg.IdleTimeout)
	for i := 0; i < len(g.entries); {
		if g.entries[i].lastActive <= cutoff {
			g.evict(i)
			continue
		}
		i++
	}
	g.eng.Schedule(g.cfg.IdleTimeout, g.idleSweep)
}

// accept terminates one LLN-side TCP connection: the device's table
// entry adopts it (closing any stale predecessor and resetting stream
// reassembly — a reconnect is a fresh byte stream) and the drain loop
// feeds arriving chunks through per-device reading reassembly.
func (g *Gateway) accept(c *tcplp.Conn) {
	g.Stats.Accepted++
	addr, _ := c.RemoteAddr()
	e := g.touch(addr)
	if e.conn != nil && e.conn != c {
		e.conn.Close()
	}
	e.conn = c
	e.stream = &app.ReadingStream{Deliver: func(seq uint32) { g.onReading(e, seq) }}
	c.OnReadable = func() {
		for {
			n := c.Read(g.rdBuf)
			if n == 0 {
				break
			}
			e.lastActive = g.eng.Now()
			e.stream.Feed(g.rdBuf[:n])
		}
		g.flush(e)
	}
}

// onPost terminates one CoAP POST: datagram payloads carry whole
// readings, so the entry's stream reassembly passes them straight
// through.
func (g *Gateway) onPost(src ip6.Addr, payload []byte, blk *coap.Block1) coap.Code {
	g.Stats.Posts++
	e := g.touch(src)
	app.ForEachReading(payload, func(seq uint32) { g.onReading(e, seq) })
	g.flush(e)
	return coap.CodeChanged
}

// onReading records one complete reading parsed off a device: the mesh
// hop is done (the per-device gwDeliver hook credits LLN-side
// delivery) and the reading joins the entry's pending WAN batch.
func (g *Gateway) onReading(e *entry, seq uint32) {
	g.Stats.ReadingsIn++
	e.lastActive = g.eng.Now()
	if r := g.regs[e.addr]; r != nil && r.gwDeliver != nil {
		r.gwDeliver(seq)
	}
	e.pending = append(e.pending, seq)
}

// flush forwards the entry's pending readings as one framed WAN
// message. Delivery credits the device's collector-side sink and e2e
// hook; a queue drop or in-flight loss reports through wanLost so
// probes can separate losses from in-flight backlog.
func (g *Gateway) flush(e *entry) {
	if len(e.pending) == 0 {
		return
	}
	seqs := e.pending
	e.pending = nil
	nbytes := len(seqs) * app.ReadingSize
	r := g.regs[e.addr]
	ok := g.wan.Send(nbytes+g.cfg.WANOverhead, func() {
		g.Stats.ReadingsOut += uint64(len(seqs))
		if r != nil {
			r.sink.Received += nbytes
			if r.e2eDeliver != nil {
				for _, seq := range seqs {
					r.e2eDeliver(seq)
				}
			}
		}
	}, func() {
		g.Stats.ReadingsLost += uint64(len(seqs))
		g.emitReadingLoss(e, seqs, obs.CauseWanLoss)
		if r != nil && r.wanLost != nil {
			r.wanLost(len(seqs))
		}
	})
	if ok {
		g.emitWanEnq(e, seqs)
	} else {
		g.Stats.ReadingsLost += uint64(len(seqs))
		g.emitReadingLoss(e, seqs, obs.CauseWanQueueDrop)
		if r != nil && r.wanLost != nil {
			r.wanLost(len(seqs))
		}
	}
}
