package gateway_test

import (
	"testing"

	"tcplp/internal/app"
	"tcplp/internal/gateway"
	"tcplp/internal/mesh"
	"tcplp/internal/netem"
	"tcplp/internal/sim"
	"tcplp/internal/stack"
)

// starNet builds an n-node star (node 0 = border router = gateway host)
// and installs a gateway with the given table/WAN shape.
func starNet(seed int64, n int, cfg gateway.Config) (*stack.Network, *gateway.Gateway) {
	net := stack.New(seed, mesh.Star(n, 10), stack.DefaultOptions())
	cfg.SinkCfg = net.FlowTCPConfig("", 0)
	return net, gateway.New(net.Border(), cfg, seed+2)
}

// startTCPSensor points one device's anemometer stream at the gateway's
// TCP terminator.
func startTCPSensor(net *stack.Network, gw *gateway.Gateway, id int, interval sim.Duration) *app.Sensor {
	node := net.Nodes[id]
	tr := app.NewTCPTransportConfig(node, net.FlowTCPConfig("", 0), net.Border().Addr, gw.TCPPort())
	s := app.NewSensor(net.Eng, tr, app.TCPQueueCap)
	s.Interval = interval
	tr.Attach(s)
	s.Start()
	return s
}

// startCoAPSensor points one device's anemometer stream at the
// gateway's CoAP terminator.
func startCoAPSensor(net *stack.Network, gw *gateway.Gateway, id int, interval sim.Duration) *app.Sensor {
	node := net.Nodes[id]
	tr := app.NewCoAPTransportPort(node, net.Border().Addr, gw.CoAPPort(), true, 410)
	s := app.NewSensor(net.Eng, tr, app.CoAPQueueCap)
	s.Interval = interval
	tr.Attach(s)
	s.Start()
	return s
}

func TestGatewayTCPEndToEnd(t *testing.T) {
	net, gw := starNet(11, 3, gateway.Config{
		WAN: netem.WANConfig{BandwidthKbps: 100, Delay: 20 * sim.Millisecond},
	})
	var gwCount, e2eCount, lostCount int
	sink := gw.Register(net.Nodes[1].Addr,
		func(uint32) { gwCount++ },
		func(uint32) { e2eCount++ },
		func(n int) { lostCount += n })
	startTCPSensor(net, gw, 1, 200*sim.Millisecond)
	startTCPSensor(net, gw, 2, 200*sim.Millisecond) // unregistered: proxies, unmeasured
	net.Eng.RunFor(30 * sim.Second)

	if gw.Stats.Accepted != 2 || gw.Active() != 2 {
		t.Fatalf("accepted=%d active=%d, want 2/2", gw.Stats.Accepted, gw.Active())
	}
	if gw.Stats.ReadingsIn == 0 || gw.Stats.ReadingsOut == 0 {
		t.Fatalf("no readings proxied: %+v", gw.Stats)
	}
	if e2eCount == 0 {
		t.Fatal("registered device never credited at the cloud side")
	}
	if e2eCount+lostCount > gwCount {
		t.Fatalf("credits %d + losses %d exceed gateway deliveries %d",
			e2eCount, lostCount, gwCount)
	}
	// The per-source sink counts exactly the credited payload bytes.
	if sink.Received != e2eCount*app.ReadingSize {
		t.Fatalf("sink bytes = %d, want %d credited readings x %d",
			sink.Received, e2eCount, app.ReadingSize)
	}
	// A lossless WAN loses nothing.
	if lostCount != 0 || gw.Stats.ReadingsLost != 0 {
		t.Fatalf("losses on a lossless WAN: hook=%d stats=%d", lostCount, gw.Stats.ReadingsLost)
	}
}

func TestGatewayConnectionTableEviction(t *testing.T) {
	const devices, cap = 6, 2
	net, gw := starNet(12, devices+1, gateway.Config{
		MaxConns: cap,
		WAN:      netem.WANConfig{BandwidthKbps: 100},
	})
	for id := 1; id <= devices; id++ {
		startTCPSensor(net, gw, id, 500*sim.Millisecond)
	}
	net.Eng.RunFor(20 * sim.Second)

	if gw.Active() > cap {
		t.Fatalf("active = %d exceeds MaxConns %d", gw.Active(), cap)
	}
	if gw.Stats.Accepted < uint64(devices) {
		t.Fatalf("accepted = %d, want at least %d", gw.Stats.Accepted, devices)
	}
	// Admitting 6 devices through a 2-slot table forces evictions.
	if gw.Stats.Evicted < devices-cap {
		t.Fatalf("evicted = %d, want >= %d", gw.Stats.Evicted, devices-cap)
	}
	// Survivors still proxy after the churn.
	if gw.Stats.ReadingsIn == 0 {
		t.Fatal("no readings parsed through the churning table")
	}
}

func TestGatewayCoAPReuse(t *testing.T) {
	net, gw := starNet(13, 2, gateway.Config{
		WAN: netem.WANConfig{BandwidthKbps: 100},
	})
	var e2eCount int
	gw.Register(net.Nodes[1].Addr, nil, func(uint32) { e2eCount++ }, nil)
	startCoAPSensor(net, gw, 1, 200*sim.Millisecond)
	net.Eng.RunFor(30 * sim.Second)

	if gw.Stats.Posts < 2 {
		t.Fatalf("posts = %d, want a steady POST stream", gw.Stats.Posts)
	}
	// One device: the first POST creates its entry, every later arrival
	// finds it live.
	if gw.Active() != 1 {
		t.Fatalf("active = %d, want 1", gw.Active())
	}
	if gw.Stats.Reused != gw.Stats.Posts-1 {
		t.Fatalf("reused = %d with %d posts, want posts-1", gw.Stats.Reused, gw.Stats.Posts)
	}
	if e2eCount == 0 {
		t.Fatal("CoAP readings never credited end to end")
	}
}

func TestGatewayIdleTimeoutEvicts(t *testing.T) {
	net, gw := starNet(14, 2, gateway.Config{
		IdleTimeout: 5 * sim.Second,
		WAN:         netem.WANConfig{BandwidthKbps: 100},
	})
	// A device that connects and then goes silent: the handshake creates
	// its table entry, nothing refreshes it.
	net.Nodes[1].TCP.ConnectConfig(net.Border().Addr, gw.TCPPort(), net.FlowTCPConfig("", 0))
	net.Eng.RunFor(2 * sim.Second)
	if gw.Active() != 1 {
		t.Fatalf("active = %d after connect, want 1", gw.Active())
	}
	net.Eng.RunFor(28 * sim.Second)
	if gw.Active() != 0 || gw.Stats.Evicted != 1 {
		t.Fatalf("active=%d evicted=%d, want the idle sweep to close the entry",
			gw.Active(), gw.Stats.Evicted)
	}
}

func TestGatewayWANLossAccounted(t *testing.T) {
	net, gw := starNet(15, 2, gateway.Config{
		WAN: netem.WANConfig{BandwidthKbps: 100, Loss: 0.5},
	})
	var gwCount, e2eCount, lostCount int
	gw.Register(net.Nodes[1].Addr,
		func(uint32) { gwCount++ },
		func(uint32) { e2eCount++ },
		func(n int) { lostCount += n })
	startTCPSensor(net, gw, 1, 100*sim.Millisecond)
	net.Eng.RunFor(60 * sim.Second)

	if e2eCount == 0 || lostCount == 0 {
		t.Fatalf("p=0.5 WAN: credited=%d lost=%d, want both nonzero", e2eCount, lostCount)
	}
	if e2eCount+lostCount > gwCount {
		t.Fatalf("credits %d + losses %d exceed gateway deliveries %d",
			e2eCount, lostCount, gwCount)
	}
	if gw.Stats.ReadingsLost != uint64(lostCount) {
		t.Fatalf("stats losses %d != hook losses %d", gw.Stats.ReadingsLost, lostCount)
	}
	if gw.WAN().Stats.LossDrops == 0 {
		t.Fatal("WAN link recorded no in-flight losses")
	}
}

// TestGatewayDeterministic pins the whole proxy pipeline: identical
// seeds reproduce identical gateway and WAN counters.
func TestGatewayDeterministic(t *testing.T) {
	run := func() (gateway.Stats, netem.WANStats) {
		net, gw := starNet(16, 4, gateway.Config{
			MaxConns: 2,
			WAN:      netem.WANConfig{BandwidthKbps: 8, Delay: 50 * sim.Millisecond, Loss: 0.1, QueueCap: 4},
		})
		for id := 1; id <= 3; id++ {
			startTCPSensor(net, gw, id, 200*sim.Millisecond)
		}
		net.Eng.RunFor(30 * sim.Second)
		return gw.Stats, gw.WAN().Stats
	}
	g1, w1 := run()
	g2, w2 := run()
	if g1 != g2 {
		t.Fatalf("gateway stats diverged:\n%+v\n%+v", g1, g2)
	}
	if w1 != w2 {
		t.Fatalf("WAN stats diverged:\n%+v\n%+v", w1, w2)
	}
}
