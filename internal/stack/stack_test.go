package stack

import (
	"bytes"
	"testing"

	"tcplp/internal/ip6"
	"tcplp/internal/mesh"
	"tcplp/internal/sim"
	"tcplp/internal/tcplp"
)

// bulkOverMesh pushes a bulk TCP flow from node src to node dst for dur
// and returns goodput in kb/s plus the client connection.
func bulkOverMesh(t *testing.T, net *Network, src, dst int, dur sim.Duration) (float64, *tcplp.Conn) {
	t.Helper()
	received := 0
	net.Nodes[dst].TCP.Listen(80, func(c *tcplp.Conn) {
		buf := make([]byte, 4096)
		c.OnReadable = func() {
			for {
				n := c.Read(buf)
				if n == 0 {
					break
				}
				received += n
			}
		}
	})
	client := net.Nodes[src].TCP.Connect(ip6.AddrFromID(dst), 80)
	data := make([]byte, 1024)
	pump := func() {
		for {
			n, err := client.Write(data)
			if err != nil || n == 0 {
				return
			}
		}
	}
	client.OnEstablished = pump
	client.OnWritable = pump
	net.Eng.RunUntil(sim.Time(dur))
	if received == 0 {
		t.Fatalf("no bytes delivered (client %v, stats %+v)", client.State(), client.Stats)
	}
	return float64(received) * 8 / dur.Seconds() / 1000, client
}

func TestOneHopGoodputMatchesPaper(t *testing.T) {
	// §6.3-§6.4: two motes over one hop achieve 63-75 kb/s with MSS of
	// five frames; the analytical ceiling is ≈82 kb/s. Accept 45-85 to
	// allow for modelling differences while requiring the right regime.
	net := New(1, mesh.Chain(2, 10), DefaultOptions())
	kbps, client := bulkOverMesh(t, net, 1, 0, 60*sim.Second)
	t.Logf("one-hop goodput = %.1f kb/s (retransmits=%d timeouts=%d)",
		kbps, client.Stats.Retransmits, client.Stats.Timeouts)
	if kbps < 45 || kbps > 85 {
		t.Fatalf("one-hop goodput = %.1f kb/s, want 45-85 (paper: 63-75)", kbps)
	}
}

func TestMultihopGoodputDegrades(t *testing.T) {
	// §7.2: goodput over h hops ≈ B/min(h,3): ≈1/2 at two hops, ≈1/3 at
	// three or more.
	goodput := map[int]float64{}
	for _, hops := range []int{1, 2, 3} {
		net := New(2, mesh.Chain(hops+1, 10), DefaultOptions())
		kbps, _ := bulkOverMesh(t, net, hops, 0, 60*sim.Second)
		goodput[hops] = kbps
		t.Logf("%d hops: %.1f kb/s", hops, kbps)
	}
	if !(goodput[1] > goodput[2] && goodput[2] > goodput[3]) {
		t.Fatalf("goodput not monotonic in hops: %v", goodput)
	}
	r2 := goodput[2] / goodput[1]
	r3 := goodput[3] / goodput[1]
	if r2 < 0.33 || r2 > 0.65 {
		t.Fatalf("two-hop ratio = %.2f, want ≈0.5", r2)
	}
	if r3 < 0.2 || r3 > 0.5 {
		t.Fatalf("three-hop ratio = %.2f, want ≈1/3", r3)
	}
}

func TestTransferByteExactOverMesh(t *testing.T) {
	// Byte-exactness across fragmentation, forwarding, and reassembly.
	net := New(3, mesh.Chain(4, 10), DefaultOptions())
	payload := make([]byte, 20_000)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	var got bytes.Buffer
	done := false
	net.Nodes[0].TCP.Listen(80, func(c *tcplp.Conn) {
		buf := make([]byte, 4096)
		c.OnReadable = func() {
			for {
				n := c.Read(buf)
				if n == 0 {
					break
				}
				got.Write(buf[:n])
			}
			if c.EOF() {
				c.Close()
				done = true
			}
		}
	})
	client := net.Nodes[3].TCP.Connect(ip6.AddrFromID(0), 80)
	sent := 0
	pump := func() {
		for sent < len(payload) {
			n, _ := client.Write(payload[sent:])
			if n == 0 {
				return
			}
			sent += n
		}
		client.Close()
	}
	client.OnEstablished = pump
	client.OnWritable = pump
	net.Eng.RunUntil(sim.Time(5 * sim.Minute))
	if !done {
		t.Fatalf("incomplete: sent=%d got=%d state=%v", sent, got.Len(), client.State())
	}
	if !bytes.Equal(got.Bytes(), payload) {
		t.Fatal("payload corrupted across the mesh")
	}
}

func TestHopByHopModeEquivalent(t *testing.T) {
	opt := DefaultOptions()
	opt.Mode = HopByHopReassembly
	net := New(4, mesh.Chain(4, 10), opt)
	kbps, _ := bulkOverMesh(t, net, 3, 0, 60*sim.Second)
	t.Logf("hop-by-hop three-hop goodput = %.1f kb/s", kbps)
	if kbps < 8 {
		t.Fatalf("hop-by-hop mode broken: %.1f kb/s", kbps)
	}
}

func TestUplinkThroughBorderToHost(t *testing.T) {
	// The §9 data path: mesh node → border router → wired host.
	net := New(5, mesh.Chain(3, 10), DefaultOptions())
	host := net.AttachHost()
	received := 0
	host.TCP.Listen(80, func(c *tcplp.Conn) {
		buf := make([]byte, 4096)
		c.OnReadable = func() {
			for {
				n := c.Read(buf)
				if n == 0 {
					break
				}
				received += n
			}
		}
	})
	client := net.Nodes[2].TCP.Connect(host.Addr, 80)
	data := make([]byte, 512)
	pump := func() {
		for {
			n, _ := client.Write(data)
			if n == 0 {
				return
			}
		}
	}
	client.OnEstablished = pump
	client.OnWritable = pump
	net.Eng.RunUntil(sim.Time(30 * sim.Second))
	if received < 10_000 {
		t.Fatalf("host received only %d bytes (client %v)", received, client.State())
	}
}

func TestDownlinkFromHost(t *testing.T) {
	net := New(6, mesh.Chain(3, 10), DefaultOptions())
	host := net.AttachHost()
	received := 0
	net.Nodes[2].TCP.Listen(80, func(c *tcplp.Conn) {
		buf := make([]byte, 4096)
		c.OnReadable = func() {
			for {
				n := c.Read(buf)
				if n == 0 {
					break
				}
				received += n
			}
		}
	})
	client := host.TCP.Connect(ip6.AddrFromID(2), 80)
	data := make([]byte, 512)
	pump := func() {
		for {
			n, _ := client.Write(data)
			if n == 0 {
				return
			}
		}
	}
	client.OnEstablished = pump
	client.OnWritable = pump
	net.Eng.RunUntil(sim.Time(30 * sim.Second))
	if received < 10_000 {
		t.Fatalf("mote received only %d bytes over downlink (client %v)", received, client.State())
	}
}

func TestBorderLossInjection(t *testing.T) {
	net := New(7, mesh.Chain(2, 10), DefaultOptions())
	host := net.AttachHost()
	drops := 0
	net.Border().DropFilter = func(pkt *ip6.Packet) bool {
		drops++
		return drops%4 == 0 // 25% loss
	}
	received := 0
	host.TCP.Listen(80, func(c *tcplp.Conn) {
		buf := make([]byte, 4096)
		c.OnReadable = func() {
			for {
				n := c.Read(buf)
				if n == 0 {
					break
				}
				received += n
			}
		}
	})
	client := net.Nodes[1].TCP.Connect(host.Addr, 80)
	data := make([]byte, 512)
	pump := func() {
		for {
			n, _ := client.Write(data)
			if n == 0 {
				return
			}
		}
	}
	client.OnEstablished = pump
	client.OnWritable = pump
	net.Eng.RunUntil(sim.Time(60 * sim.Second))
	if received == 0 {
		t.Fatal("no delivery under 25% injected loss")
	}
	if client.Stats.Retransmits == 0 {
		t.Fatal("no retransmissions despite injected loss")
	}
	if net.Border().Stats.BorderDrops == 0 {
		t.Fatal("drop filter never fired")
	}
}

func TestSleepyLeafTCPUplink(t *testing.T) {
	// A duty-cycled leaf sends data upstream; the §9.2 fast-poll hook
	// must let TCP ACKs reach it quickly despite its radio being off.
	net := New(8, mesh.Chain(2, 10), DefaultOptions())
	sc := net.MakeSleepyLeaf(1)
	sc.SleepInterval = 4 * sim.Minute
	sc.Start()
	received := 0
	net.Nodes[0].TCP.Listen(80, func(c *tcplp.Conn) {
		buf := make([]byte, 4096)
		c.OnReadable = func() {
			for {
				n := c.Read(buf)
				if n == 0 {
					break
				}
				received += n
			}
		}
	})
	client := net.Nodes[1].TCP.Connect(ip6.AddrFromID(0), 80)
	payload := make([]byte, 2000)
	sent := 0
	pump := func() {
		for sent < len(payload) {
			n, _ := client.Write(payload[sent:])
			if n == 0 {
				return
			}
			sent += n
		}
	}
	client.OnEstablished = pump
	client.OnWritable = pump
	net.Eng.RunUntil(sim.Time(30 * sim.Second))
	if received != 2000 {
		t.Fatalf("leaf uplink delivered %d of 2000 (polls=%d)", received, sc.Polls)
	}
	// The leaf radio must still be duty cycled, not always-on.
	if dc := net.Nodes[1].Radio.DutyCycle(); dc > 0.5 {
		t.Fatalf("leaf duty cycle = %.2f — radio effectively always on", dc)
	}
}

func TestSleepyLeafDownlink(t *testing.T) {
	net := New(9, mesh.Chain(2, 10), DefaultOptions())
	sc := net.MakeSleepyLeaf(1)
	sc.SleepInterval = 2 * sim.Second
	sc.Start()
	received := 0
	net.Nodes[1].TCP.Listen(80, func(c *tcplp.Conn) {
		buf := make([]byte, 4096)
		c.OnReadable = func() {
			for {
				n := c.Read(buf)
				if n == 0 {
					break
				}
				received += n
			}
		}
	})
	client := net.Nodes[0].TCP.Connect(ip6.AddrFromID(1), 80)
	sent := 0
	payload := make([]byte, 3000)
	pump := func() {
		for sent < len(payload) {
			n, _ := client.Write(payload[sent:])
			if n == 0 {
				return
			}
			sent += n
		}
	}
	client.OnEstablished = pump
	client.OnWritable = pump
	net.Eng.RunUntil(sim.Time(2 * sim.Minute))
	if received != 3000 {
		t.Fatalf("downlink to sleepy leaf delivered %d of 3000", received)
	}
}

func TestUDPAcrossMesh(t *testing.T) {
	net := New(10, mesh.Chain(4, 10), DefaultOptions())
	var got []byte
	net.Nodes[0].UDP.Bind(5683, func(src ip6.Addr, srcPort uint16, payload []byte) {
		got = payload
	})
	net.Nodes[3].UDP.Send(ip6.AddrFromID(0), 5683, 40001, []byte("coap-bound datagram"))
	net.Eng.RunUntil(sim.Time(5 * sim.Second))
	if string(got) != "coap-bound datagram" {
		t.Fatalf("udp payload = %q", got)
	}
}

func TestUDPLargeDatagramFragmented(t *testing.T) {
	net := New(11, mesh.Chain(3, 10), DefaultOptions())
	payload := make([]byte, 400)
	for i := range payload {
		payload[i] = byte(i)
	}
	var got []byte
	net.Nodes[0].UDP.Bind(5683, func(src ip6.Addr, srcPort uint16, p []byte) { got = p })
	net.Nodes[2].UDP.Send(ip6.AddrFromID(0), 5683, 40001, payload)
	net.Eng.RunUntil(sim.Time(5 * sim.Second))
	if !bytes.Equal(got, payload) {
		t.Fatalf("fragmented UDP mismatch: %d bytes", len(got))
	}
}

func TestSegmentSizingMatchesPaper(t *testing.T) {
	info := SegmentSizing(5, true)
	// §6.1: five-frame segments carry ≈408-462 B; we land in that band.
	if info.MSS < 400 || info.MSS > 470 {
		t.Fatalf("five-frame MSS = %d, want ≈400-470", info.MSS)
	}
	if SegmentSizing(1, true).MSS >= SegmentSizing(2, true).MSS {
		t.Fatal("MSS not increasing in frames")
	}
}

func TestOfficeTopologyProperties(t *testing.T) {
	topo := mesh.Office()
	routes := mesh.ComputeRoutes(topo.Adjacency())
	// §9.2: a 3-to-5 hop topology for the anemometer nodes (11-14).
	for _, id := range []int{11, 12, 13, 14} {
		h := routes.Hops(id, 0)
		if h < 3 || h > 5 {
			t.Fatalf("node %d is %d hops from the border, want 3-5", id, h)
		}
	}
	// Everything is connected.
	for i := 1; i < topo.N(); i++ {
		if routes.Hops(i, 0) < 0 {
			t.Fatalf("node %d unreachable", i)
		}
	}
}

func TestRoutesChain(t *testing.T) {
	topo := mesh.Chain(5, 10)
	routes := mesh.ComputeRoutes(topo.Adjacency())
	if h := routes.Hops(4, 0); h != 4 {
		t.Fatalf("chain hops = %d", h)
	}
	nh, ok := routes.NextHop(4, 0)
	if !ok || nh != 3 {
		t.Fatalf("next hop = %d %v", nh, ok)
	}
	p, ok := routes.Parent(2, 0)
	if !ok || p != 1 {
		t.Fatalf("parent = %d %v", p, ok)
	}
}
