// Package stack composes the full per-node network stack — radio, MAC,
// 6LoWPAN, IPv6 forwarding, TCP, UDP — and builds whole simulated
// networks: the mesh, its border router, and the wired cloud host behind
// it (the §5 experimental setup of Fig. 2/3).
package stack

import (
	"tcplp/internal/energy"
	"tcplp/internal/ip6"
	"tcplp/internal/mac"
	"tcplp/internal/mesh"
	"tcplp/internal/obs"
	"tcplp/internal/phy"
	"tcplp/internal/sim"
	"tcplp/internal/sixlowpan"
	"tcplp/internal/tcplp"
	"tcplp/internal/udp"
)

// ForwardingMode selects how relays handle 6LoWPAN fragments.
type ForwardingMode int

// Forwarding modes.
const (
	// FragmentForwarding relays individual fragments toward the
	// destination with end-to-end reassembly — OpenThread's behaviour and
	// the paper's default.
	FragmentForwarding ForwardingMode = iota
	// HopByHopReassembly reassembles whole IPv6 packets at every relay —
	// the modification Appendix A needed for RED/ECN.
	HopByHopReassembly
)

// NodeStats counts IP-layer events at one node.
type NodeStats struct {
	PacketsSent      uint64 // locally originated datagrams
	PacketsDelivered uint64 // datagrams delivered to local transports
	FragmentsFwd     uint64 // fragments relayed (fragment forwarding)
	PacketsFwd       uint64 // packets relayed (hop-by-hop mode / border)
	QueueDrops       uint64 // tail drops at the datagram queue
	REDDrops         uint64
	REDMarks         uint64
	LinkFailures     uint64 // datagrams abandoned after link-layer failure
	HopLimitDrops    uint64
	BorderDrops      uint64 // packets removed by the injected-loss filter
}

type fwdKey struct {
	src phy.Addr
	tag uint16
}

type fwdEntry struct {
	next    phy.Addr
	newTag  uint16
	drop    bool
	expires sim.Time
}

type outItem struct {
	frames [][]byte
	next   phy.Addr
	idx    int
	jid    int64 // journey packet id of the datagram (0 = untagged)
}

// Node is one device: a mesh node with a radio, or the wired host (radio
// and MAC nil).
type Node struct {
	ID  int
	Net *Network

	Radio *phy.Radio
	Mac   *mac.Mac
	Sleep *mac.SleepController

	Addr ip6.Addr
	TCP  *tcplp.Stack
	UDP  *udp.Stack
	CPU  *energy.CPUMeter

	reasm *sixlowpan.Reassembler
	frag  sixlowpan.Fragmenter

	outQ    []*outItem
	sending bool

	red      *mesh.RED
	fwdCache map[fwdKey]*fwdEntry

	wire *wireEnd

	// DropFilter, when set on the border router, removes packets
	// crossing between mesh and wire with the caller's probability
	// function — the §9.4 injected-loss mechanism.
	DropFilter func(pkt *ip6.Packet) bool

	Stats NodeStats
}

// LinkAddr returns the node's 802.15.4 address.
func (n *Node) LinkAddr() phy.Addr { return phy.AddrFromID(n.ID) }

// Eng returns the simulation engine.
func (n *Node) Eng() *sim.Engine { return n.Net.Eng }

// ---- transmit path ----

// SendPacket routes and transmits a locally originated IPv6 packet.
func (n *Node) SendPacket(pkt *ip6.Packet) {
	n.Stats.PacketsSent++
	n.route(pkt, false)
}

// route moves pkt one step: local delivery, onto the wire, or onto the
// radio toward the next hop. forwarded marks transit packets (hop-limit
// accounting and RED apply to those).
func (n *Node) route(pkt *ip6.Packet, forwarded bool) {
	if pkt.Dst == n.Addr {
		n.deliver(pkt)
		return
	}
	if forwarded {
		if pkt.HopLimit <= 1 {
			n.Stats.HopLimitDrops++
			n.emitIPDrop(pkt.JID, obs.CauseHopLimit, int64(pkt.HopLimit))
			return
		}
		pkt.HopLimit--
	}
	dstID, ok := pkt.Dst.ID()
	if !ok {
		n.emitIPDrop(pkt.JID, obs.CauseNoRoute, 0)
		return
	}
	// Toward the wired host (or from it): the border router bridges.
	if n.wire != nil && (n.Radio == nil || dstID == n.Net.hostID) {
		if n.Radio != nil { // we are the border router, egress to wire
			if n.dropAtBorder(pkt) {
				return
			}
		}
		n.wire.send(pkt)
		return
	}
	// Host-bound traffic inside the mesh routes toward the border router.
	target := dstID
	if dstID == n.Net.hostID {
		target = n.Net.borderID
	}
	next, ok := n.Net.Routes.NextHop(n.ID, target)
	if !ok {
		n.emitIPDrop(pkt.JID, obs.CauseNoRoute, 0)
		return
	}
	if forwarded && n.red != nil {
		switch n.red.OnArrival(len(n.outQ), pkt.ECN() == ip6.ECT0, n.Eng().Rand()) {
		case mesh.REDDrop:
			n.Stats.REDDrops++
			n.emitIPDrop(pkt.JID, obs.CauseRED, int64(len(n.outQ)))
			return
		case mesh.REDMark:
			n.Stats.REDMarks++
			pkt.SetECN(ip6.CE)
		}
	}
	chdr := sixlowpan.CompressHeader(&pkt.Header)
	frames := n.frag.Fragment(chdr, pkt.Payload, phy.MaxMACPayload)
	if tr := n.Net.Opt.Trace; tr != nil {
		tr.Emit(obs.Event{T: n.Eng().Now(), Kind: obs.FragEmit, Node: n.ID,
			A: int64(len(frames)), Len: len(chdr) + len(pkt.Payload), J: pkt.JID})
	}
	n.enqueue(&outItem{frames: frames, next: phy.AddrFromID(next), jid: pkt.JID})
}

// emitIPDrop records a network-layer drop with its cause.
func (n *Node) emitIPDrop(jid int64, cause obs.Cause, a int64) {
	if tr := n.Net.Opt.Trace; tr != nil {
		tr.Emit(obs.Event{T: n.Eng().Now(), Kind: obs.IPDrop, Node: n.ID, A: a, J: jid, Cause: cause})
	}
}

func (n *Node) dropAtBorder(pkt *ip6.Packet) bool {
	if n.DropFilter != nil && n.DropFilter(pkt) {
		n.Stats.BorderDrops++
		n.emitIPDrop(pkt.JID, obs.CauseBorderFilter, 0)
		return true
	}
	return false
}

func (n *Node) enqueue(it *outItem) {
	if len(n.outQ) >= n.Net.Opt.QueueCap {
		n.Stats.QueueDrops++
		if tr := n.Net.Opt.Trace; tr != nil {
			tr.Emit(obs.Event{T: n.Eng().Now(), Kind: obs.QueueDrop, Node: n.ID, A: int64(len(n.outQ)), J: it.jid, Cause: obs.CauseQueueOverflow})
		}
		n.releaseFrames(it, it.idx)
		return
	}
	n.outQ = append(n.outQ, it)
	n.pump()
}

// releaseFrames recycles an item's fragment buffers from index from
// onward (the link layer copies each frame into its own wire buffer at
// load time, so a frame whose MAC callback has fired is no longer
// referenced).
func (n *Node) releaseFrames(it *outItem, from int) {
	for i := from; i < len(it.frames); i++ {
		n.frag.Release(it.frames[i])
		it.frames[i] = nil
	}
}

// pump drains the datagram queue one frame at a time; a link-layer
// failure abandons the rest of the datagram (the fragments would be
// useless, §6.1).
func (n *Node) pump() {
	if n.sending || len(n.outQ) == 0 {
		return
	}
	n.sending = true
	it := n.outQ[0]
	frame := it.frames[it.idx]
	n.CPU.ChargeFrameTx()
	n.Mac.SendJID(it.next, frame, it.jid, func(status mac.TxStatus) {
		if status != mac.TxOK {
			n.Stats.LinkFailures++
			// Abandoning the datagram: the sent frame and the never-sent
			// tail all go back to the pool.
			n.releaseFrames(it, it.idx)
			n.popAndContinue()
			return
		}
		n.frag.Release(frame)
		it.frames[it.idx] = nil
		it.idx++
		if it.idx >= len(it.frames) {
			n.popAndContinue()
			return
		}
		n.sending = false
		n.pump()
	})
}

func (n *Node) popAndContinue() {
	n.outQ = n.outQ[1:]
	n.sending = false
	n.pump()
}

// QueueLen returns the number of queued datagrams (RED input).
func (n *Node) QueueLen() int { return len(n.outQ) }

// ReassemblyTimeouts returns datagrams abandoned for missing fragments.
func (n *Node) ReassemblyTimeouts() uint64 { return n.reasm.TimedOut }

// LossEvents totals the ways this node loses whole datagrams: link-layer
// failures, queue overflows, RED drops, hop-limit expiry, and
// reassembly timeouts.
func (n *Node) LossEvents() uint64 {
	return n.Stats.LinkFailures + n.Stats.QueueDrops + n.Stats.REDDrops +
		n.Stats.HopLimitDrops + n.reasm.TimedOut
}

// ---- receive path ----

func (n *Node) onFrame(f *phy.Frame) {
	n.CPU.ChargeFrameRx()
	if n.Sleep != nil {
		n.Sleep.FrameDelivered(f.FramePending)
	}
	payload := f.Payload
	if len(payload) == 0 {
		return
	}
	if n.Net.Opt.Mode == FragmentForwarding {
		if n.tryForwardFragment(f.Src, payload, f.J) {
			return
		}
	}
	pkt, err := n.reasm.Input(f.Src, payload, f.J)
	if err != nil || pkt == nil {
		return
	}
	if pkt.Dst == n.Addr || (n.wire != nil && n.isHostBound(pkt)) {
		if pkt.Dst != n.Addr {
			// Border router: reassembled uplink packet headed for the
			// host crosses the wire as a whole IPv6 packet.
			n.Stats.PacketsFwd++
			n.route(pkt, true)
			return
		}
		n.deliver(pkt)
		return
	}
	// Hop-by-hop relay of a complete packet.
	n.Stats.PacketsFwd++
	n.route(pkt, true)
}

func (n *Node) isHostBound(pkt *ip6.Packet) bool {
	id, ok := pkt.Dst.ID()
	return ok && id == n.Net.hostID
}

// tryForwardFragment relays a fragment that is not addressed to us,
// returning true if it consumed the frame. The first fragment (or an
// unfragmented datagram) carries the compressed IPv6 header: the relay
// peeks at it, decrements the hop limit in place, re-tags the datagram,
// and records the mapping so later fragments follow without reassembly.
func (n *Node) tryForwardFragment(src phy.Addr, payload []byte, jid int64) bool {
	n.gcFwdCache()
	kind := sixlowpan.Classify(payload)
	switch kind {
	case sixlowpan.KindUnfragmented, sixlowpan.KindFrag1:
		iphcOff := 0
		if kind == sixlowpan.KindFrag1 {
			iphcOff = sixlowpan.Frag1HeaderLen
		}
		h, _, err := sixlowpan.DecompressHeader(payload[iphcOff:])
		if err != nil {
			return false
		}
		if h.Dst == n.Addr {
			return false // ours: reassemble locally
		}
		if n.wire != nil && n.addrIsHost(h.Dst) {
			return false // border router reassembles host-bound traffic
		}
		dstID, ok := h.Dst.ID()
		if !ok {
			return false
		}
		target := dstID
		if dstID == n.Net.hostID {
			target = n.Net.borderID
		}
		next, ok := n.Net.Routes.NextHop(n.ID, target)
		if !ok {
			n.emitIPDrop(jid, obs.CauseNoRoute, 0)
			return true // unroutable: swallow
		}
		if hl, ok := sixlowpan.DecrementHopLimit(payload[iphcOff:]); !ok || hl == 0 {
			n.Stats.HopLimitDrops++
			n.emitIPDrop(jid, obs.CauseHopLimit, 0)
			return true
		}
		fwd := n.frag.Clone(payload)
		if kind == sixlowpan.KindFrag1 {
			fi, err := sixlowpan.ParseFragment(fwd)
			if err != nil {
				return true
			}
			newTag := n.frag.NextTag()
			if err := sixlowpan.RewriteTag(fwd, newTag); err != nil {
				return true
			}
			if n.fwdCache == nil {
				n.fwdCache = map[fwdKey]*fwdEntry{}
			}
			n.fwdCache[fwdKey{src, fi.Tag}] = &fwdEntry{
				next:    phy.AddrFromID(next),
				newTag:  newTag,
				expires: n.Eng().Now().Add(sixlowpan.DefaultReassemblyTimeout),
			}
		}
		n.Stats.FragmentsFwd++
		n.enqueue(&outItem{frames: [][]byte{fwd}, next: phy.AddrFromID(next), jid: jid})
		return true

	case sixlowpan.KindFragN:
		fi, err := sixlowpan.ParseFragment(payload)
		if err != nil {
			return false
		}
		entry, ok := n.fwdCache[fwdKey{src, fi.Tag}]
		if !ok {
			return false // ours, or the FRAG1 was lost — reassembler sorts it out
		}
		if entry.drop {
			return true
		}
		fwd := n.frag.Clone(payload)
		if err := sixlowpan.RewriteTag(fwd, entry.newTag); err != nil {
			return true
		}
		n.Stats.FragmentsFwd++
		n.enqueue(&outItem{frames: [][]byte{fwd}, next: entry.next, jid: jid})
		return true
	}
	return false
}

func (n *Node) gcFwdCache() {
	now := n.Eng().Now()
	for k, e := range n.fwdCache {
		if now >= e.expires {
			delete(n.fwdCache, k)
		}
	}
}

func (n *Node) addrIsHost(a ip6.Addr) bool {
	id, ok := a.ID()
	return ok && id == n.Net.hostID
}

// deliver hands a packet addressed to this node to its transports.
func (n *Node) deliver(pkt *ip6.Packet) {
	n.Stats.PacketsDelivered++
	n.CPU.ChargeSegment()
	n.CPU.ChargeBytes(len(pkt.Payload))
	switch pkt.NextHeader {
	case ip6.ProtoTCP:
		n.TCP.Input(pkt)
	case ip6.ProtoUDP:
		n.UDP.Input(pkt)
	}
}
