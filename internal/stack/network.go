package stack

import (
	"tcplp/internal/energy"
	"tcplp/internal/ip6"
	"tcplp/internal/mac"
	"tcplp/internal/mesh"
	"tcplp/internal/obs"
	"tcplp/internal/phy"
	"tcplp/internal/sim"
	"tcplp/internal/sixlowpan"
	"tcplp/internal/tcplp"
	"tcplp/internal/tcplp/cc"
	"tcplp/internal/udp"
)

// HostID is the node identifier of the wired cloud host.
const HostID = 999

// DefaultVariant is the congestion-control algorithm DefaultOptions
// seeds into the TCP configuration. cmd/tcplp-bench's -variant flag
// overrides it process-wide, turning every registered experiment into a
// run under the chosen variant.
var DefaultVariant = cc.NewReno

// DefaultWindowSegs is the send/receive window DefaultOptions seeds, in
// segments (the paper's standard is 4). cmd/tcplp-bench's -window flag
// overrides it process-wide so variant head-to-heads can run at larger
// windows (≥ 8 segments) without touching each experiment.
var DefaultWindowSegs = 4

// DefaultPhyWorkers is the PHY fan-out worker bound DefaultOptions
// seeds (0 = serial). cmd/tcplp-bench's -phy-workers flag overrides it
// process-wide; runs are bit-identical at any setting, so this is purely
// a wall-clock knob for very dense topologies.
var DefaultPhyWorkers = 0

// Options configures a simulated network.
type Options struct {
	// MAC holds the CSMA/ARQ parameters, including the §7.1 link-retry
	// delay knob.
	MAC mac.Params
	// TCP is the base connection configuration; MSS and buffer sizes are
	// derived from SegFrames and WindowSegs unless SetExplicitTCP.
	TCP tcplp.Config
	// SegFrames is the TCP MSS expressed in 802.15.4 frames (§6.1;
	// paper default 5).
	SegFrames int
	// WindowSegs is the send/receive buffer size in segments (§6.2;
	// paper default 4).
	WindowSegs int
	// ExplicitTCP uses Options.TCP verbatim instead of deriving MSS and
	// buffers.
	ExplicitTCP bool
	// Mode selects fragment forwarding (default) or hop-by-hop
	// reassembly.
	Mode ForwardingMode
	// QueueCap bounds each node's datagram transmit queue.
	QueueCap int
	// RED enables random early detection at relays; ECN additionally
	// marks instead of dropping (Appendix A).
	RED, ECN bool
	// WireDelay is the one-way border↔host latency (§9.2: ≈6 ms each
	// way for the 12 ms RTT to EC2).
	WireDelay sim.Duration
	// PER applies a uniform per-frame corruption probability on every
	// radio link (beyond collisions).
	PER float64
	// CPUCosts overrides the CPU duty-cycle model.
	CPUCosts *energy.Costs
	// Trace, when non-nil, threads the obs instrumentation through
	// every layer of every node (phy, MAC, 6LoWPAN, IP queue, TCP).
	// Nil — the default — keeps every hook a single nil check.
	Trace *obs.Trace
	// PhyWorkers bounds the channel's deterministic fan-out worker pool
	// (phy.Channel.SetWorkers): 0 keeps the serial reference path, N > 0
	// splits large transmission fan-outs across up to N goroutines with
	// Result bit-identical either way.
	PhyWorkers int
}

// DefaultOptions mirrors the paper's standard setup. QueueCap is sized
// so a full TCP window's worth of fragments (4 segments × 6 frames) can
// sit at a relay without tail drops, like OpenThread's message buffers.
func DefaultOptions() Options {
	tcp := tcplp.DefaultConfig()
	tcp.Variant = DefaultVariant
	return Options{
		MAC:        mac.DefaultParams(),
		TCP:        tcp,
		SegFrames:  5,
		WindowSegs: DefaultWindowSegs,
		QueueCap:   32,
		WireDelay:  6 * sim.Millisecond,
		PhyWorkers: DefaultPhyWorkers,
	}
}

// Network is a simulated LLN plus optional wired host.
type Network struct {
	Eng     *sim.Engine
	Channel *phy.Channel
	Topo    mesh.Topology
	Routes  *mesh.Routes
	Opt     Options

	Nodes []*Node
	Host  *Node

	hostID   int
	borderID int
}

// New builds a network over topo with node 0 as the border router.
func New(seed int64, topo mesh.Topology, opt Options) *Network {
	if opt.QueueCap == 0 {
		opt.QueueCap = 32
	}
	if opt.SegFrames == 0 {
		opt.SegFrames = 5
	}
	if opt.WindowSegs == 0 {
		opt.WindowSegs = 4
	}
	eng := sim.NewEngine(seed)
	ch := phy.NewChannel(eng, phy.NewUnitDisk(topo.TxRange, topo.SenseRange))
	ch.Trace = opt.Trace
	ch.SetWorkers(opt.PhyWorkers)
	if opt.PER > 0 {
		per := opt.PER
		ch.PER = func(src, dst *phy.Radio) float64 { return per }
	}
	net := &Network{
		Eng:      eng,
		Channel:  ch,
		Topo:     topo,
		Routes:   mesh.ComputeRoutes(topo.Adjacency()),
		Opt:      opt,
		hostID:   HostID,
		borderID: 0,
	}
	if !opt.ExplicitTCP {
		net.Opt.TCP = net.deriveTCPConfig(opt.TCP)
	}
	costs := energy.DefaultCosts()
	if opt.CPUCosts != nil {
		costs = *opt.CPUCosts
	}
	for i := 0; i < topo.N(); i++ {
		n := &Node{
			ID:    i,
			Net:   net,
			Addr:  ip6.AddrFromID(i),
			reasm: sixlowpan.NewReassembler(eng),
			CPU:   energy.NewCPUMeter(eng, costs),
		}
		n.Radio = ch.AddRadio(i, topo.Positions[i])
		n.Mac = mac.New(eng, n.Radio, opt.MAC)
		n.Mac.OnReceive = n.onFrame
		n.Mac.Trace = opt.Trace
		n.reasm.Trace, n.reasm.Node = opt.Trace, i
		if net.Opt.RED && i != 0 {
			n.red = mesh.DefaultRED(net.Opt.ECN)
		}
		n.TCP = tcplp.NewStack(eng, n.Addr, net.Opt.TCP)
		n.TCP.Output = n.SendPacket
		n.TCP.PoolEncode = true // SendPacket consumes payloads synchronously
		n.TCP.Trace, n.TCP.TraceNode = opt.Trace, i
		n.UDP = udp.NewStack(n.Addr)
		n.UDP.Output = n.SendPacket
		net.Nodes = append(net.Nodes, n)
	}
	return net
}

// MSSInfo describes the derived segment sizing.
type MSSInfo struct {
	CompressedHeaderLen int
	TCPHeaderLen        int
	SegmentPayload      int // 6LoWPAN payload per segment packet
	MSS                 int // TCP payload bytes
}

// SegmentSizing computes the MSS for a segment spanning the given number
// of frames under the current option set (the §6.1 MSS-in-frames knob).
func SegmentSizing(frames int, useTimestamps bool) MSSInfo {
	sample := &ip6.Header{
		NextHeader: ip6.ProtoTCP,
		HopLimit:   64,
		Src:        ip6.AddrFromID(1),
		Dst:        ip6.AddrFromID(2),
	}
	chdr := len(sixlowpan.CompressHeader(sample))
	tcpHdr := tcplp.BaseHeaderLen
	if useTimestamps {
		tcpHdr += 12
	}
	seg := sixlowpan.MaxPayloadForFrames(chdr, frames, phy.MaxMACPayload)
	return MSSInfo{
		CompressedHeaderLen: chdr,
		TCPHeaderLen:        tcpHdr,
		SegmentPayload:      seg,
		MSS:                 seg - tcpHdr,
	}
}

func (net *Network) deriveTCPConfig(base tcplp.Config) tcplp.Config {
	return DerivedTCPConfig(net.Opt, base)
}

// DerivedTCPConfig computes the TCP configuration New derives from opt:
// MSS from the segment-in-frames knob and buffers from the window knob.
func DerivedTCPConfig(opt Options, base tcplp.Config) tcplp.Config {
	segFrames := opt.SegFrames
	if segFrames == 0 {
		segFrames = 5
	}
	windowSegs := opt.WindowSegs
	if windowSegs == 0 {
		windowSegs = 4
	}
	info := SegmentSizing(segFrames, base.UseTimestamps)
	cfg := base
	cfg.MSS = info.MSS
	cfg.SendBufSize = windowSegs * info.MSS
	cfg.RecvBufSize = windowSegs * info.MSS
	cfg.UseECN = opt.ECN
	return cfg
}

// FlowTCPConfig derives a per-flow TCP configuration: the network's
// option set with the window (in segments) and congestion-control
// variant overridden. A windowSegs of 0 keeps the network's window; an
// empty variant keeps the network default. Use it with
// tcplp.Stack.ConnectConfig / Listener.ConfigFor to mix variants and
// window sizes between flows of one mesh.
func (net *Network) FlowTCPConfig(v cc.Variant, windowSegs int) tcplp.Config {
	opt := net.Opt
	if windowSegs > 0 {
		opt.WindowSegs = windowSegs
	}
	cfg := DerivedTCPConfig(opt, opt.TCP)
	if v != "" {
		cfg.Variant = v
	}
	return cfg
}

// AttachHost creates the wired cloud host behind the border router
// (node 0) and returns it.
func (net *Network) AttachHost() *Node {
	if net.Host != nil {
		return net.Host
	}
	costs := energy.DefaultCosts()
	host := &Node{
		ID:    net.hostID,
		Net:   net,
		Addr:  ip6.AddrFromID(net.hostID),
		reasm: sixlowpan.NewReassembler(net.Eng),
		CPU:   energy.NewCPUMeter(net.Eng, costs),
	}
	// The host is unconstrained: large buffers, same protocol logic
	// ("the TCP implementation in the FreeBSD operating system" on both
	// ends).
	hostCfg := net.Opt.TCP
	hostCfg.SendBufSize = 64 * 1024
	hostCfg.RecvBufSize = 64 * 1024
	host.TCP = tcplp.NewStack(net.Eng, host.Addr, hostCfg)
	host.TCP.Output = host.SendPacket
	host.TCP.PoolEncode = true
	host.TCP.Trace, host.TCP.TraceNode = net.Opt.Trace, net.hostID
	host.reasm.Trace, host.reasm.Node = net.Opt.Trace, net.hostID
	host.UDP = udp.NewStack(host.Addr)
	host.UDP.Output = host.SendPacket
	net.Host = host
	connectWire(net.Nodes[0], host, net.Opt.WireDelay)
	return host
}

// MakeSleepyLeaf converts node id into a duty-cycled leaf: its parent is
// its next hop toward the border router, which queues downstream frames
// for it (indirect delivery). The leaf's TCP stack drives the fast-poll
// hint (§9.2). Configure the returned controller (intervals, adaptive
// mode) and then call its Start method.
func (net *Network) MakeSleepyLeaf(id int) *mac.SleepController {
	n := net.Nodes[id]
	parentID, ok := net.Routes.Parent(id, net.borderID)
	if !ok {
		panic("stack: leaf has no route to border router")
	}
	parent := net.Nodes[parentID]
	parent.Mac.SetChildSleepy(n.LinkAddr(), true)
	sc := mac.NewSleepController(net.Eng, n.Mac, parent.LinkAddr())
	n.Sleep = sc
	n.TCP.OnExpectingChange = func(expecting bool) { sc.SetExpecting(expecting) }
	return sc
}

// Border returns the border router (node 0).
func (net *Network) Border() *Node { return net.Nodes[net.borderID] }

// SetTCPConfig replaces a node's TCP instance with one using cfg. Call
// before opening sockets on the node (used to mix stack profiles, e.g.
// a uIP-class sender against a full TCPlp receiver in Table 7).
func (n *Node) SetTCPConfig(cfg tcplp.Config) {
	n.TCP = tcplp.NewStack(n.Net.Eng, n.Addr, cfg)
	n.TCP.Output = n.SendPacket
	n.TCP.PoolEncode = true
	n.TCP.Trace, n.TCP.TraceNode = n.Net.Opt.Trace, n.ID
}

// TotalFramesSent sums frames put on air by all mesh radios — the
// Fig. 6d metric.
func (net *Network) TotalFramesSent() uint64 {
	var total uint64
	for _, r := range net.Channel.Radios() {
		total += r.FramesSent()
	}
	return total
}

// TotalLossEvents sums datagram losses across all mesh nodes — the
// ground-truth numerator for segment-loss measurements (losses not
// masked by link retries, as Fig. 6 defines them).
func (net *Network) TotalLossEvents() uint64 {
	var total uint64
	for _, n := range net.Nodes {
		total += n.LossEvents()
	}
	return total
}

// ---- wire (border router ↔ cloud host) ----

type wireEnd struct {
	eng   *sim.Engine
	delay sim.Duration
	peer  *Node
}

func connectWire(border, host *Node, delay sim.Duration) {
	if delay == 0 {
		delay = 6 * sim.Millisecond
	}
	border.wire = &wireEnd{eng: border.Eng(), delay: delay, peer: host}
	host.wire = &wireEnd{eng: host.Eng(), delay: delay, peer: border}
}

func (w *wireEnd) send(pkt *ip6.Packet) {
	// The wire holds the packet until the peer takes delivery; copy the
	// payload so the sending stack may recycle its encode buffer the
	// moment the synchronous transmit path returns (tcplp.PoolEncode).
	cp := *pkt
	cp.Payload = append([]byte(nil), pkt.Payload...)
	w.eng.Schedule(w.delay, func() { w.peer.wireReceive(&cp) })
}

func (n *Node) wireReceive(pkt *ip6.Packet) {
	if pkt.Dst == n.Addr {
		n.deliver(pkt)
		return
	}
	// Border router: downlink packet entering the mesh.
	if n.dropAtBorder(pkt) {
		return
	}
	n.Stats.PacketsFwd++
	n.route(pkt, true)
}
