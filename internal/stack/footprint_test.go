package stack_test

import (
	"runtime"
	"testing"

	"tcplp/internal/mesh"
	"tcplp/internal/stack"
)

// TestIdleNodeFootprint pins the heap cost of an idle node at city
// scale. Most of a 10k-node metro deployment is idle at any instant, so
// construction-time allocation per node is what bounds how large a
// topology fits in memory. The budget reflects the lazy-map work: MAC
// dedup/indirect state, TCP/UDP demux maps, and forwarding caches all
// allocate on first use rather than in New, and route tables store
// int32 columns. Regressions that re-introduce eager per-node state
// show up as a burst well above the bound.
func TestIdleNodeFootprint(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-node construction in -short mode")
	}
	const n = 10000
	topo := mesh.RandomGeometric(n, 16, 1)

	heap := func() uint64 {
		runtime.GC()
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return m.HeapAlloc
	}

	before := heap()
	net := stack.New(1, topo, stack.DefaultOptions())
	perNode := float64(heap()-before) / n

	// Keep the network alive past the measurement.
	if len(net.Nodes) != n {
		t.Fatalf("built %d nodes, want %d", len(net.Nodes), n)
	}

	// Measured ~2.3 KiB/node after the lazy-init pass; the bound leaves
	// headroom for platform variance while still catching a return of
	// eager per-node state (which costs several hundred bytes per node).
	const maxBytesPerNode = 3 * 1024
	t.Logf("idle footprint: %.0f B/node (%d nodes)", perNode, n)
	if perNode > maxBytesPerNode {
		t.Fatalf("idle footprint = %.0f B/node, budget %d", perNode, maxBytesPerNode)
	}
}
