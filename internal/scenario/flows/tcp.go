package flows

import (
	"fmt"

	"tcplp/internal/app"
	"tcplp/internal/obs"
	"tcplp/internal/sim"
	"tcplp/internal/stats"
	"tcplp/internal/tcplp"
)

func init() { Register(ProtocolTCP, tcpDriver{}) }

// tcpDriver runs bulk, on-off, and anemometer patterns over one TCPlp
// connection — the wrapped internal/app workloads the throughput and
// telemetry experiments share.
type tcpDriver struct{}

// byteSink is the window accounting both TCP sink flavors share.
type byteSink interface {
	Mark()
	GoodputKbps() float64
	BytesSinceMark() int
}

type tcpProbe struct {
	fs  Spec
	eng *sim.Engine
	cfg tcplp.Config // effective sender config (profile-aware)

	conn   *tcplp.Conn
	bulk   *app.Source // bulk/onoff sources (nil for anemometer)
	sensor *app.Sensor // anemometer only
	sink   byteSink

	rtts               stats.Sample // RTT samples over the connection's life, in ms
	lat                stats.Sample // per-reading latency since Mark, in ms
	base               tcplp.ConnStats
	markGen, markDeliv uint64

	// Gateway crediting (fs.Gateway flows): readings credited at the
	// cloud collector and readings lost crossing the WAN.
	e2eDelivered, wanLost uint64
	markE2E, markWanLost  uint64

	// Journey terminal hooks (nil trace when observability is off).
	obsTr *obs.Trace
	node  int

	trace []CwndSample

	stopped       bool
	frozenGoodput float64
	frozenBytes   int
}

// Start implements Driver.
func (tcpDriver) Start(env *Env, fs Spec) (Probe, error) {
	if fs.Gateway != nil && fs.Pattern != PatternAnemometer {
		return nil, fmt.Errorf("flows: gateway flows carry telemetry; pattern %q needs a direct sink", fs.Pattern)
	}
	p := &tcpProbe{fs: fs, eng: env.Src.Eng(), cfg: fs.SrcCfg}
	switch fs.Pattern {
	case PatternBulk:
		p.sink = app.ListenSinkConfig(env.Dst, fs.Port, fs.SinkCfg)
		p.bulk = app.StartBulkConfig(env.Src, fs.SrcCfg, env.Dst.Addr, fs.Port)
		p.conn = p.bulk.Conn
	case PatternOnOff:
		p.sink = app.ListenSinkConfig(env.Dst, fs.Port, fs.SinkCfg)
		p.bulk = app.StartOnOffConfig(env.Src, fs.SrcCfg, env.Dst.Addr, fs.Port, fs.On, fs.Off)
		p.conn = p.bulk.Conn
	case PatternAnemometer:
		port := fs.Port
		if gw := fs.Gateway; gw != nil {
			// Gateway flow: no private sink — the device connects to the
			// gateway's shared TCP terminator, readings are credited at
			// the gateway (mesh hop, p.deliver) and again at the cloud
			// collector behind the WAN (end-to-end).
			port = gw.TCPPort()
			p.sink = gw.Register(env.Src.Addr, p.deliver, p.e2eDeliver, p.onWANLost)
		} else {
			p.sink = app.ListenReadingSink(env.Dst, fs.Port, fs.SinkCfg, p.deliver)
		}
		tr := app.NewTCPTransportConfig(env.Src, fs.SrcCfg, env.Dst.Addr, port)
		p.sensor = app.NewSensor(env.Src.Eng(), tr, app.TCPQueueCap)
		p.sensor.Interval = fs.Interval
		p.sensor.Batch = fs.Batch
		p.obsTr = env.Net.Opt.Trace
		p.node = env.Src.ID
		p.sensor.Trace = p.obsTr
		p.sensor.Node = p.node
		tr.Attach(p.sensor)
		p.sensor.Start()
		p.conn = tr.Conn
	default:
		return nil, fmt.Errorf("flows: tcp driver has no pattern %q", fs.Pattern)
	}
	// RTT samples are collected over the connection's whole life — the
	// estimator's full history, matching the paper's median-RTT plots —
	// unlike the byte counters, which cover only the post-Mark window.
	p.conn.TraceRTT = func(s sim.Duration) {
		p.rtts.Add(float64(s) / float64(sim.Millisecond))
	}
	return p, nil
}

// deliver credits one reading arriving at the collector, exactly where
// the paper measures reliability (at the server), and records its
// generation→delivery latency. For gateway flows the "server" is the
// gateway — the mesh hop's terminator — and end-to-end crediting
// happens separately in e2eDeliver.
func (p *tcpProbe) deliver(seq uint32) {
	p.sensor.Stats.Delivered++
	if t, ok := p.sensor.TakeGenTime(seq); ok {
		p.lat.Add(p.eng.Now().Sub(t).Milliseconds())
	}
	if tr := p.obsTr; tr != nil {
		// For a gateway flow this is the mesh-egress boundary; for a
		// direct flow it is final delivery.
		k := obs.JourneyDeliver
		if p.fs.Gateway != nil {
			k = obs.JourneyMesh
		}
		tr.Emit(obs.Event{T: p.eng.Now(), Kind: k, Node: p.node, A: int64(seq)})
	}
}

// e2eDeliver credits one reading at the cloud collector behind the WAN.
func (p *tcpProbe) e2eDeliver(seq uint32) {
	p.e2eDelivered++
	if tr := p.obsTr; tr != nil {
		tr.Emit(obs.Event{T: p.eng.Now(), Kind: obs.JourneyDeliver, Node: p.node, A: int64(seq)})
	}
}

// onWANLost records readings dropped crossing the WAN.
func (p *tcpProbe) onWANLost(n int) { p.wanLost += uint64(n) }

// Mark implements Probe.
func (p *tcpProbe) Mark() {
	p.sink.Mark()
	p.base = p.conn.Stats
	p.lat = stats.Sample{}
	if p.sensor != nil {
		p.markGen = p.sensor.Stats.Generated
		p.markDeliv = p.sensor.Stats.Delivered
	}
	p.markE2E = p.e2eDelivered
	p.markWanLost = p.wanLost
	if p.fs.Trace {
		p.conn.TraceCwnd = func(now sim.Time, cwnd, ssthresh int) {
			p.trace = append(p.trace, CwndSample{T: now, Cwnd: cwnd, Ssthresh: ssthresh})
		}
	}
}

// Stop implements Probe: window-rate metrics freeze at the moment of
// the stop (goodput divides by the window, not the idle tail), then the
// workload ceases and the connection closes.
func (p *tcpProbe) Stop() {
	if p.stopped {
		return
	}
	p.stopped = true
	p.frozenGoodput = p.sink.GoodputKbps()
	p.frozenBytes = p.sink.BytesSinceMark()
	if p.bulk != nil {
		p.bulk.Stop()
		return
	}
	p.sensor.Stop()
	p.conn.Close()
}

// Collect implements Probe.
func (p *tcpProbe) Collect() Metrics {
	st := p.conn.Stats
	m := Metrics{
		Variant:     string(p.cfg.Variant),
		WindowSegs:  p.cfg.RecvBufSize / p.cfg.MSS,
		MSS:         p.cfg.MSS,
		GoodputKbps: p.sink.GoodputKbps(),
		Bytes:       p.sink.BytesSinceMark(),
		SentBytes:   int(st.BytesSent - p.base.BytesSent),
		Retransmits: st.Retransmits - p.base.Retransmits,
		Timeouts:    st.Timeouts - p.base.Timeouts,
		FastRtx:     st.FastRetransmits - p.base.FastRetransmits,
		SRTTms:      p.conn.SRTT().Milliseconds(),
		RTOms:       p.conn.RTO().Milliseconds(),
		MeanRTTms:   p.rtts.Mean(),
		MedianRTTms: p.rtts.Median(),
		RTTp10ms:    p.rtts.Quantile(0.1),
		RTTp90ms:    p.rtts.Quantile(0.9),
		RTTMaxms:    p.rtts.Max(),
		Cwnd:        p.trace,
	}
	if p.stopped {
		m.GoodputKbps = p.frozenGoodput
		m.Bytes = p.frozenBytes
	}
	if p.sensor == nil {
		// A TCP stream delivers every byte it accepts.
		m.DeliveryRatio = 1
		return m
	}
	m.Generated = p.sensor.Stats.Generated - p.markGen
	m.Delivered = p.sensor.Stats.Delivered - p.markDeliv
	m.Backlog = uint64(p.sensor.QueueDepth()) +
		uint64(p.conn.BufferedBytes()/app.ReadingSize)
	m.DeliveryRatio = DeliveryRatio(m.Generated, m.Delivered, m.Backlog)
	m.LatencyP50ms = p.lat.Median()
	m.LatencyP99ms = p.lat.Quantile(0.99)
	if p.fs.Gateway != nil {
		fillE2E(&m, p.e2eDelivered-p.markE2E, p.wanLost-p.markWanLost)
	}
	return m
}

// fillE2E computes the end-to-end fields a gateway flow adds: readings
// credited past the WAN, readings lost on it, and the delivery ratio
// with the gateway-to-cloud pipeline (delivered to the gateway but
// neither credited nor lost yet) counted as backlog, not loss.
func fillE2E(m *Metrics, e2eDelivered, wanLost uint64) {
	m.E2EDelivered = e2eDelivered
	m.WANLost = wanLost
	var inFlight uint64
	if m.Delivered > e2eDelivered+wanLost {
		inFlight = m.Delivered - e2eDelivered - wanLost
	}
	m.E2EDeliveryRatio = DeliveryRatio(m.Generated, e2eDelivered, m.Backlog+inFlight)
}

// DeliveryRatio is the §9.2 reliability definition: delivered readings
// over generated readings, excluding the end-of-window backlog (queued
// or in-flight readings are not losses) and capped at 1. It works on
// any consistent window counts — the probes feed it per flow, and the
// §9 renderers feed it sums pooled across a run's sensors.
func DeliveryRatio(gen, deliv, backlog uint64) float64 {
	if deliv >= gen {
		// A pre-window backlog draining during the window can deliver
		// more than was generated; that is full delivery, not >100%.
		if gen == 0 && deliv == 0 {
			return 0
		}
		return 1
	}
	if backlog > gen-deliv {
		backlog = gen - deliv
	}
	gen -= backlog
	if gen == 0 {
		return 0
	}
	return float64(deliv) / float64(gen)
}
