package flows

import (
	"fmt"

	"tcplp/internal/app"
	"tcplp/internal/obs"
	"tcplp/internal/sim"
	"tcplp/internal/stats"
)

func init() { Register(ProtocolUDP, udpDriver{}) }

// udpDriver runs the anemometer pattern over raw UDP datagrams — the
// unreliable floor of the §9 comparison: no acknowledgments, no
// retransmissions, delivery credited only for datagrams that survive
// the mesh.
type udpDriver struct{}

type udpProbe struct {
	fs  Spec
	eng *sim.Engine

	tr     *app.UDPTransport
	sensor *app.Sensor
	sink   *app.CountingSink

	lat                stats.Sample
	markGen, markDeliv uint64
	markSentBytes      uint64

	// Journey terminal hook (nil trace when observability is off).
	obsTr *obs.Trace
	node  int

	stopped       bool
	frozenGoodput float64
	frozenBytes   int
}

// Start implements Driver.
func (udpDriver) Start(env *Env, fs Spec) (Probe, error) {
	if fs.Pattern != PatternAnemometer {
		return nil, fmt.Errorf("flows: udp driver has no pattern %q (only anemometer)", fs.Pattern)
	}
	p := &udpProbe{fs: fs, eng: env.Src.Eng()}
	p.sink = app.ListenReadingUDP(env.Dst, fs.Port, p.deliver)
	msg := messageSize(env.Net, app.ReadingSize)
	p.tr = app.NewUDPTransport(env.Src, env.Dst.Addr, fs.Port, msg)
	p.sensor = app.NewSensor(env.Src.Eng(), p.tr, app.CoAPQueueCap)
	p.sensor.Interval = fs.Interval
	p.sensor.Batch = fs.Batch
	p.obsTr = env.Net.Opt.Trace
	p.node = env.Src.ID
	p.sensor.Trace = p.obsTr
	p.sensor.Node = p.node
	p.tr.Trace = p.obsTr
	p.tr.Node = p.node
	p.tr.Attach(p.sensor)
	p.sensor.Start()
	return p, nil
}

func (p *udpProbe) deliver(seq uint32) {
	p.sensor.Stats.Delivered++
	if t, ok := p.sensor.TakeGenTime(seq); ok {
		p.lat.Add(p.eng.Now().Sub(t).Milliseconds())
	}
	if tr := p.obsTr; tr != nil {
		tr.Emit(obs.Event{T: p.eng.Now(), Kind: obs.JourneyDeliver, Node: p.node, A: int64(seq)})
	}
}

// Mark implements Probe.
func (p *udpProbe) Mark() {
	p.sink.Mark()
	p.lat = stats.Sample{}
	p.markGen = p.sensor.Stats.Generated
	p.markDeliv = p.sensor.Stats.Delivered
	p.markSentBytes = p.tr.SentBytes
}

// Stop implements Probe.
func (p *udpProbe) Stop() {
	if p.stopped {
		return
	}
	p.stopped = true
	p.frozenGoodput = p.sink.GoodputKbps()
	p.frozenBytes = p.sink.BytesSinceMark()
	p.sensor.Stop()
}

// Collect implements Probe. SentBytes counts datagram payload put on
// the wire; there is no reliability machinery to report.
func (p *udpProbe) Collect() Metrics {
	m := Metrics{
		MSS:         p.tr.MessageSize,
		GoodputKbps: p.sink.GoodputKbps(),
		Bytes:       p.sink.BytesSinceMark(),
		SentBytes:   int(p.tr.SentBytes - p.markSentBytes),
		Generated:   p.sensor.Stats.Generated - p.markGen,
		Delivered:   p.sensor.Stats.Delivered - p.markDeliv,
		Backlog:     uint64(p.sensor.QueueDepth()),
	}
	if p.stopped {
		m.GoodputKbps = p.frozenGoodput
		m.Bytes = p.frozenBytes
	}
	m.DeliveryRatio = DeliveryRatio(m.Generated, m.Delivered, m.Backlog)
	m.LatencyP50ms = p.lat.Median()
	m.LatencyP99ms = p.lat.Quantile(0.99)
	return m
}
