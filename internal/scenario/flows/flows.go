// Package flows is the protocol-driver subsystem of the scenario
// runner: each supported transport (TCP, raw UDP, CoAP) registers a
// Driver that knows how to wire one scenario flow onto the simulated
// stack — source workload, collector sink, and measurement hooks — and
// returns a Probe reporting protocol-appropriate metrics: goodput for
// streams, delivery ratio and per-reading latency percentiles for
// telemetry, TCP retransmissions or CoAP CON retries.
//
// The scenario package owns topology construction, per-flow TCP
// configuration, and aggregation; drivers own everything between "here
// are your two endpoints" and "here are your numbers". New protocols
// plug in by calling Register from an init function.
package flows

import (
	"fmt"
	"sort"

	"tcplp/internal/gateway"
	"tcplp/internal/sim"
	"tcplp/internal/stack"
	"tcplp/internal/tcplp"
)

// Registered protocol names.
const (
	ProtocolTCP  = "tcp"
	ProtocolUDP  = "udp"
	ProtocolCoAP = "coap"
)

// Traffic patterns (canonical home; the scenario package aliases them).
const (
	PatternBulk       = "bulk"       // saturating stream (default, TCP only)
	PatternOnOff      = "onoff"      // bulk during on-periods, idle between (TCP only)
	PatternAnemometer = "anemometer" // §3 sensor: periodic readings, optional batching
)

// Spec is the protocol-driver view of one scenario flow: everything a
// driver needs that is not derivable from the endpoints.
type Spec struct {
	Label   string
	Port    uint16
	Pattern string
	// On/Off are the onoff pattern's period lengths.
	On, Off sim.Duration
	// Interval/Batch configure the anemometer pattern.
	Interval sim.Duration
	Batch    int
	// Trace records the TCP congestion-window trajectory.
	Trace bool
	// Confirmable selects CoAP CON (retransmitted) vs NON exchanges.
	Confirmable bool
	// RTO selects the CoAP retransmission-timeout policy: "" for stock
	// RFC 7252, "cocoa" for draft-ietf-core-cocoa.
	RTO string
	// SrcCfg/SinkCfg are the per-flow TCP configurations the scenario
	// layer derived (variant, window, pacing, profile, host buffers).
	SrcCfg, SinkCfg tcplp.Config
	// Gateway, when non-nil, routes the flow onto the scenario's
	// border-router gateway tier: the driver connects to the gateway's
	// shared LLN-side terminator instead of installing its own sink, and
	// goodput/delivery are credited at the cloud collector behind the
	// modeled WAN.
	Gateway *gateway.Gateway
}

// Env binds a flow to its endpoints within one instantiated run.
type Env struct {
	Net      *stack.Network
	Src, Dst *stack.Node
}

// CwndSample is one congestion-window observation of a traced TCP flow.
type CwndSample struct {
	T        sim.Time
	Cwnd     int
	Ssthresh int
}

// Metrics is a probe's report over the measurement window. Fields a
// protocol cannot measure stay zero (a CoAP flow has no SRTT; a bulk
// TCP stream has no per-reading latency and reports DeliveryRatio 1).
type Metrics struct {
	// Transport identity.
	Variant    string
	WindowSegs int
	MSS        int // TCP MSS, or the telemetry message payload size

	// Stream metrics.
	GoodputKbps float64
	Bytes       int // payload bytes delivered in the window
	SentBytes   int // sender payload bytes incl. retransmissions

	// Reliability machinery: TCP retransmits/RTOs/fast-rtx, or CoAP CON
	// retries (Retransmits) and abandoned exchanges (Timeouts).
	Retransmits uint64
	Timeouts    uint64
	FastRtx     uint64

	// RTT estimator state and sample distribution (TCP).
	SRTTms      float64
	MeanRTTms   float64
	MedianRTTms float64
	RTTp10ms    float64
	RTTp90ms    float64
	RTTMaxms    float64

	// Telemetry delivery (anemometer pattern, any protocol): window
	// reading counts, the end-of-window backlog still queued or in
	// flight, the backlog-excluded delivery ratio, and per-reading
	// generation→delivery latency percentiles.
	Generated     uint64
	Delivered     uint64
	Backlog       uint64
	DeliveryRatio float64
	LatencyP50ms  float64
	LatencyP99ms  float64

	// RTOms is the retransmission-timeout estimate at window close:
	// TCP's RTO, or CoCoA's overall estimate (0 for RTO policies that
	// keep no state).
	RTOms float64

	// Gateway tier (flows riding a Spec.Gateway): readings credited at
	// the cloud collector behind the WAN, readings lost crossing it, and
	// the resulting end-to-end delivery ratio (Delivered above then
	// covers only the mesh hop, device → gateway).
	E2EDelivered     uint64
	WANLost          uint64
	E2EDeliveryRatio float64

	// Cwnd holds the traced congestion-window trajectory (TCP flows
	// with Spec.Trace).
	Cwnd []CwndSample
}

// Probe is one started flow's measurement interface. Mark opens the
// measurement window (counters snapshot their baselines); Stop freezes
// window-rate metrics and ceases sending (used by idle-phase specs);
// Collect reports the window.
type Probe interface {
	Mark()
	Stop()
	Collect() Metrics
}

// Driver wires one flow of its protocol onto the stack and returns its
// probe.
type Driver interface {
	Start(env *Env, fs Spec) (Probe, error)
}

var registry = map[string]Driver{}

// Register installs a protocol driver; later registrations replace
// earlier ones (tests substitute instrumented drivers this way).
func Register(protocol string, d Driver) { registry[protocol] = d }

// Lookup resolves a protocol name to its driver; the empty name means
// TCP.
func Lookup(protocol string) (Driver, bool) {
	if protocol == "" {
		protocol = ProtocolTCP
	}
	d, ok := registry[protocol]
	return d, ok
}

// Canonical returns the protocol label results should carry ("" → tcp).
func Canonical(protocol string) string {
	if protocol == "" {
		return ProtocolTCP
	}
	return protocol
}

// Protocols lists the registered protocol names, sorted.
func Protocols() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Start resolves fs against the registry and starts the flow.
func Start(env *Env, protocol string, fs Spec) (Probe, error) {
	d, ok := Lookup(protocol)
	if !ok {
		return nil, fmt.Errorf("flows: unknown protocol %q (have %v)", protocol, Protocols())
	}
	return d.Start(env, fs)
}

// messageSize returns the telemetry payload bytes per UDP/CoAP message:
// whole readings filling one LLN packet, sized like the network's TCP
// segments (§9.3 sizes each CoAP batch message like a five-frame
// segment).
func messageSize(net *stack.Network, readingSize int) int {
	frames := net.Opt.SegFrames
	if frames == 0 {
		frames = 5
	}
	info := stack.SegmentSizing(frames, true)
	return info.SegmentPayload / readingSize * readingSize
}
