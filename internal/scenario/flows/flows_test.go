package flows

import (
	"strings"
	"testing"

	"tcplp/internal/mesh"
	"tcplp/internal/stack"
)

func TestRegistry(t *testing.T) {
	want := []string{ProtocolCoAP, ProtocolTCP, ProtocolUDP}
	got := Protocols()
	if len(got) != len(want) {
		t.Fatalf("protocols = %v, want %v", got, want)
	}
	for i, p := range want {
		if got[i] != p {
			t.Fatalf("protocols = %v, want %v", got, want)
		}
	}
	// The empty name resolves to the TCP driver.
	d, ok := Lookup("")
	if !ok || d == nil {
		t.Fatal("empty protocol did not resolve")
	}
	if Canonical("") != ProtocolTCP || Canonical("coap") != "coap" {
		t.Fatal("Canonical labels wrong")
	}
	if _, ok := Lookup("quic"); ok {
		t.Fatal("unknown protocol resolved")
	}
}

func TestStartUnknownProtocol(t *testing.T) {
	net := stack.New(1, mesh.Chain(2, 10), stack.DefaultOptions())
	_, err := Start(&Env{Net: net, Src: net.Nodes[1], Dst: net.Nodes[0]}, "quic", Spec{})
	if err == nil || !strings.Contains(err.Error(), "unknown protocol") {
		t.Fatalf("err = %v", err)
	}
}

func TestDriverPatternRejection(t *testing.T) {
	net := stack.New(1, mesh.Chain(2, 10), stack.DefaultOptions())
	env := &Env{Net: net, Src: net.Nodes[1], Dst: net.Nodes[0]}
	for _, proto := range []string{ProtocolUDP, ProtocolCoAP} {
		_, err := Start(env, proto, Spec{Pattern: PatternBulk, Port: 90})
		if err == nil || !strings.Contains(err.Error(), "no pattern") {
			t.Fatalf("%s accepted bulk: %v", proto, err)
		}
	}
	_, err := Start(env, ProtocolTCP, Spec{Pattern: "poisson", Port: 91})
	if err == nil || !strings.Contains(err.Error(), "no pattern") {
		t.Fatalf("tcp accepted poisson: %v", err)
	}
	_, err = Start(env, ProtocolCoAP, Spec{Pattern: PatternAnemometer, RTO: "peria", Port: 92})
	if err == nil || !strings.Contains(err.Error(), "rto policy") {
		t.Fatalf("coap accepted bad rto: %v", err)
	}
}

func TestDeliveryRatio(t *testing.T) {
	cases := []struct {
		gen, deliv, backlog uint64
		want                float64
	}{
		{0, 0, 0, 0},
		{100, 100, 0, 1},
		{100, 90, 10, 1},           // backlog excluded entirely
		{100, 80, 10, 80.0 / 90.0}, // partial backlog
		{100, 50, 0, 0.5},
		{100, 120, 0, 1},  // pre-window backlog drained: capped
		{100, 40, 200, 1}, // backlog capped at gen-deliv
	}
	for _, c := range cases {
		if got := DeliveryRatio(c.gen, c.deliv, c.backlog); got != c.want {
			t.Fatalf("DeliveryRatio(%d, %d, %d) = %v, want %v",
				c.gen, c.deliv, c.backlog, got, c.want)
		}
	}
}

func TestMessageSize(t *testing.T) {
	net := stack.New(1, mesh.Chain(2, 10), stack.DefaultOptions())
	msg := messageSize(net, 82)
	if msg <= 0 || msg%82 != 0 {
		t.Fatalf("message size %d not a whole number of readings", msg)
	}
	info := stack.SegmentSizing(5, true)
	if msg > info.SegmentPayload {
		t.Fatalf("message size %d exceeds the segment payload %d", msg, info.SegmentPayload)
	}
}
