package flows

import (
	"fmt"

	"tcplp/internal/app"
	"tcplp/internal/coap"
	"tcplp/internal/ip6"
	"tcplp/internal/obs"
	"tcplp/internal/sim"
	"tcplp/internal/stats"
)

func init() { Register(ProtocolCoAP, coapDriver{}) }

// coapDriver runs the anemometer pattern over CoAP POSTs — confirmable
// (retransmitted with the RFC 7252 or CoCoA RTO policy) or
// nonconfirmable (the §9.6 unreliable baseline) — against a per-flow
// collector server on the sink node.
type coapDriver struct{}

type coapProbe struct {
	fs  Spec
	eng *sim.Engine

	tr     *app.CoAPTransport
	sensor *app.Sensor
	sink   *app.CountingSink

	policy *coap.SamplingPolicy // wraps the flow's RTO policy

	rtts               stats.Sample // exchange RTT samples over the flow's life, ms
	lat                stats.Sample // per-reading latency since Mark, ms
	base               coap.ClientStats
	markGen, markDeliv uint64

	// Gateway crediting (fs.Gateway flows).
	e2eDelivered, wanLost uint64
	markE2E, markWanLost  uint64

	// Journey terminal hooks (nil trace when observability is off).
	obsTr *obs.Trace
	node  int

	stopped       bool
	frozenGoodput float64
	frozenBytes   int
}

// Start implements Driver.
func (coapDriver) Start(env *Env, fs Spec) (Probe, error) {
	if fs.Pattern != PatternAnemometer {
		return nil, fmt.Errorf("flows: coap driver has no pattern %q (only anemometer)", fs.Pattern)
	}
	switch fs.RTO {
	case "", "default", "cocoa":
	default:
		return nil, fmt.Errorf("flows: unknown coap rto policy %q (have default, cocoa)", fs.RTO)
	}
	p := &coapProbe{fs: fs, eng: env.Src.Eng()}

	// Collector side first (like every driver): either the gateway's
	// shared CoAP terminator — readings credited at the gateway and again
	// at the cloud collector behind the WAN — or a per-flow CoAP server
	// on the sink node crediting each delivered reading.
	port := fs.Port
	if gw := fs.Gateway; gw != nil {
		port = gw.CoAPPort()
		p.sink = gw.Register(env.Src.Addr, p.deliver, p.e2eDeliver, p.onWANLost)
	} else {
		p.sink = app.NewCountingSink(env.Dst.Eng())
		srv := coap.NewServer(env.Dst.Eng(), env.Dst.UDP, fs.Port)
		srv.OnPost = func(src ip6.Addr, payload []byte, blk *coap.Block1) coap.Code {
			p.sink.Received += len(payload)
			app.ForEachReading(payload, p.deliver)
			return coap.CodeChanged
		}
	}

	msg := messageSize(env.Net, app.ReadingSize)
	p.tr = app.NewCoAPTransportPort(env.Src, env.Dst.Addr, port, fs.Confirmable, msg)
	var policy coap.RTOPolicy = coap.DefaultPolicy{}
	if fs.RTO == "cocoa" {
		policy = coap.NewCoCoA()
	}
	// The sampling wrapper is a pure observer (no extra RNG draws, no
	// timing change), so CON flows report RTT distributions like TCP
	// flows do without perturbing results.
	p.policy = &coap.SamplingPolicy{Inner: policy, OnSample: func(d sim.Duration, retx int) {
		p.rtts.Add(d.Milliseconds())
	}}
	p.tr.Client.Policy = p.policy
	p.obsTr = env.Net.Opt.Trace
	p.node = env.Src.ID
	p.tr.Client.Trace = p.obsTr
	p.tr.Client.Node = p.node
	p.tr.Trace = p.obsTr
	p.tr.Node = p.node
	p.sensor = app.NewSensor(env.Src.Eng(), p.tr, app.CoAPQueueCap)
	p.sensor.Interval = fs.Interval
	p.sensor.Batch = fs.Batch
	p.sensor.Trace = p.obsTr
	p.sensor.Node = p.node
	p.tr.Attach(p.sensor)
	p.sensor.Start()
	return p, nil
}

func (p *coapProbe) deliver(seq uint32) {
	p.sensor.Stats.Delivered++
	if t, ok := p.sensor.TakeGenTime(seq); ok {
		p.lat.Add(p.eng.Now().Sub(t).Milliseconds())
	}
	if tr := p.obsTr; tr != nil {
		k := obs.JourneyDeliver
		if p.fs.Gateway != nil {
			k = obs.JourneyMesh
		}
		tr.Emit(obs.Event{T: p.eng.Now(), Kind: k, Node: p.node, A: int64(seq)})
	}
}

// e2eDeliver credits one reading at the cloud collector behind the WAN.
func (p *coapProbe) e2eDeliver(seq uint32) {
	p.e2eDelivered++
	if tr := p.obsTr; tr != nil {
		tr.Emit(obs.Event{T: p.eng.Now(), Kind: obs.JourneyDeliver, Node: p.node, A: int64(seq)})
	}
}

// onWANLost records readings dropped crossing the WAN.
func (p *coapProbe) onWANLost(n int) { p.wanLost += uint64(n) }

// Mark implements Probe.
func (p *coapProbe) Mark() {
	p.sink.Mark()
	p.lat = stats.Sample{}
	p.base = p.tr.Client.Stats
	p.markGen = p.sensor.Stats.Generated
	p.markDeliv = p.sensor.Stats.Delivered
	p.markE2E = p.e2eDelivered
	p.markWanLost = p.wanLost
}

// Stop implements Probe.
func (p *coapProbe) Stop() {
	if p.stopped {
		return
	}
	p.stopped = true
	p.frozenGoodput = p.sink.GoodputKbps()
	p.frozenBytes = p.sink.BytesSinceMark()
	p.sensor.Stop()
}

// Collect implements Probe. Retransmits counts CON retries; Timeouts
// counts abandoned exchanges (MAX_RETRANSMIT exceeded).
func (p *coapProbe) Collect() Metrics {
	st := p.tr.Client.Stats
	m := Metrics{
		MSS:         p.tr.MessageSize,
		GoodputKbps: p.sink.GoodputKbps(),
		Bytes:       p.sink.BytesSinceMark(),
		Retransmits: st.Retransmissions - p.base.Retransmissions,
		Timeouts:    st.GiveUps - p.base.GiveUps,
		MeanRTTms:   p.rtts.Mean(),
		MedianRTTms: p.rtts.Median(),
		RTTp10ms:    p.rtts.Quantile(0.1),
		RTTp90ms:    p.rtts.Quantile(0.9),
		RTTMaxms:    p.rtts.Max(),
		RTOms:       p.policy.OverallRTO().Milliseconds(),
		Generated:   p.sensor.Stats.Generated - p.markGen,
		Delivered:   p.sensor.Stats.Delivered - p.markDeliv,
	}
	if p.stopped {
		m.GoodputKbps = p.frozenGoodput
		m.Bytes = p.frozenBytes
	}
	m.Backlog = uint64(p.sensor.QueueDepth()) +
		uint64(p.tr.Client.Pending()*p.tr.MessageSize/app.ReadingSize)
	m.DeliveryRatio = DeliveryRatio(m.Generated, m.Delivered, m.Backlog)
	m.LatencyP50ms = p.lat.Median()
	m.LatencyP99ms = p.lat.Quantile(0.99)
	if p.fs.Gateway != nil {
		fillE2E(&m, p.e2eDelivered-p.markE2E, p.wanLost-p.markWanLost)
	}
	return m
}
