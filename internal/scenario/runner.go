package scenario

import (
	"fmt"
	"runtime"
	"sync"

	"tcplp/internal/obs/journey"
	"tcplp/internal/stats"
)

// CwndPoint is one congestion-window observation of a traced flow.
type CwndPoint struct {
	T        Duration `json:"t"` // absolute simulation time
	Cwnd     int      `json:"cwnd"`
	Ssthresh int      `json:"ssthresh"`
}

// FlowResult is one flow's measurements over one run's window. Fields
// a protocol cannot measure stay zero: a CoAP flow has no SRTT, a bulk
// TCP stream has no per-reading latency (and reports DeliveryRatio 1).
type FlowResult struct {
	Label string `json:"label"`
	// Gateway marks a flow terminating at the border-router gateway
	// tier: Delivered then covers only the mesh hop, and the e2e fields
	// below cover the full device → gateway → cloud path.
	Gateway     bool    `json:"gateway,omitempty"`
	Protocol    string  `json:"protocol"`
	Variant     string  `json:"variant,omitempty"`
	WindowSegs  int     `json:"window_segs,omitempty"`
	MSS         int     `json:"mss"`
	Pattern     string  `json:"pattern"`
	GoodputKbps float64 `json:"goodput_kbps"`
	Bytes       int     `json:"bytes"`
	// SentBytes counts sender payload bytes over the window, including
	// retransmissions — the denominator of the paper's segment-loss
	// metric (losses / SentBytes·MSS⁻¹).
	SentBytes int `json:"sent_bytes"`
	// Retransmits counts TCP retransmissions or CoAP CON retries;
	// Timeouts counts TCP RTOs or abandoned CoAP exchanges.
	Retransmits uint64  `json:"retransmits"`
	Timeouts    uint64  `json:"timeouts"`
	FastRtx     uint64  `json:"fast_rtx"`
	SRTTms      float64 `json:"srtt_ms"`
	MeanRTTms   float64 `json:"mean_rtt_ms"`
	MedianRTTms float64 `json:"median_rtt_ms"`
	RTTp10ms    float64 `json:"rtt_p10_ms"`
	RTTp90ms    float64 `json:"rtt_p90_ms"`
	RTTMaxms    float64 `json:"rtt_max_ms"`
	// Telemetry delivery (anemometer flows): window reading counts, the
	// end-of-window backlog (readings queued or in flight — not
	// losses), the backlog-excluded §9.2 delivery ratio, and
	// per-reading generation→delivery latency percentiles.
	Generated     uint64  `json:"generated,omitempty"`
	Delivered     uint64  `json:"delivered,omitempty"`
	Backlog       uint64  `json:"backlog,omitempty"`
	DeliveryRatio float64 `json:"delivery_ratio"`
	LatencyP50ms  float64 `json:"lat_p50_ms"`
	LatencyP99ms  float64 `json:"lat_p99_ms"`
	// Gateway-flow end-to-end accounting: readings credited at the cloud
	// collector behind the WAN, readings lost crossing it, the resulting
	// delivery ratio (gateway-to-cloud in-flight counts as backlog), and
	// this source's share of the collector's credited readings.
	E2EDelivered     uint64  `json:"e2e_delivered,omitempty"`
	WANLost          uint64  `json:"wan_lost,omitempty"`
	E2EDeliveryRatio float64 `json:"e2e_delivery_ratio,omitempty"`
	CreditShare      float64 `json:"credit_share,omitempty"`
	// RTOms is the flow's retransmission-timeout estimate at window
	// close: TCP's RTO, or CoCoA's overall estimate (0 for policies that
	// keep none) — the Fig. 9 RTO-inflation observable.
	RTOms   float64 `json:"rto_ms,omitempty"`
	RadioDC float64 `json:"radio_dc"`
	CPUDC   float64 `json:"cpu_dc"`
	// IdleRadioDC is the mesh endpoint's duty cycle over the idle phase
	// of an idle_window spec (Fig. 14).
	IdleRadioDC float64 `json:"idle_radio_dc,omitempty"`
	// CwndTrace holds the flow's cwnd/ssthresh trajectory when the
	// flow's Trace knob is set (Fig. 7a).
	CwndTrace []CwndPoint `json:"cwnd_trace,omitempty"`
	// Journey is the flow's per-reading causal latency attribution —
	// populated only when the runner's ObsConfig enables journey
	// tracing, nil (and absent from JSON) otherwise, so results stay
	// bit-identical with tracing off.
	Journey *journey.FlowReport `json:"journey,omitempty"`
}

// GatewayResult is one run's gateway-tier report: windowed connection
// table and WAN counters plus fairness over per-source cloud credits.
type GatewayResult struct {
	Accepted    uint64 `json:"accepted"` // LLN-side TCP connections accepted
	Reused      uint64 `json:"reused"`   // arrivals finding a live table entry
	Evicted     uint64 `json:"evicted"`  // entries closed by capacity or idleness
	ActiveConns int    `json:"active_conns"`
	WANSent     uint64 `json:"wan_sent"`
	// WANDelivered/WANQueueDrops/WANLossDrops split the WAN's fate
	// counts: messages that reached the cloud, tail drops at the uplink
	// queue, and random in-flight losses.
	WANDelivered  uint64 `json:"wan_delivered"`
	WANQueueDrops uint64 `json:"wan_queue_drops"`
	WANLossDrops  uint64 `json:"wan_loss_drops"`
	WANQueueDepth int    `json:"wan_queue_depth"` // at window close
	WANQueueMax   int    `json:"wan_queue_max"`   // peak over the window
	// CreditJain is Jain's index over the gateway flows' cloud-credited
	// reading counts — upstream fairness measured end-to-end.
	CreditJain float64 `json:"credit_jain"`
}

// Result is one (spec, seed) run: per-flow measurements plus the
// cross-flow fairness and network totals.
type Result struct {
	Name          string       `json:"name"`
	Seed          int64        `json:"seed"`
	Flows         []FlowResult `json:"flows"`
	Jain          float64      `json:"jain"`
	AggregateKbps float64      `json:"aggregate_kbps"`
	FramesSent    uint64       `json:"frames_sent"`
	LossEvents    uint64       `json:"loss_events"`
	// Events counts simulator events processed over the whole run
	// (warmup included) — the denominator of the engine-performance
	// metrics (events/sec, allocs/event). Deterministic per (spec, seed).
	Events uint64 `json:"events,omitempty"`
	// Gateway reports the gateway tier of a spec that installs one.
	Gateway *GatewayResult `json:"gateway,omitempty"`
	// DCSamples holds the periodic mean radio duty cycle across flow
	// source nodes of a dc_sample spec (Fig. 10's hourly series).
	DCSamples []float64 `json:"dc_samples,omitempty"`
	// Layers is the per-layer metric registry aggregated across the
	// run's nodes (layer → metric → value). It is computed from plain
	// counters, so it is populated — and identical — whether or not
	// tracing is enabled.
	Layers map[string]map[string]float64 `json:"layers,omitempty"`
}

// layer reads one registry value ("" layers read as 0 — CSV-friendly).
func (r *Result) layer(layer, metric string) float64 {
	if m := r.Layers[layer]; m != nil {
		return m[metric]
	}
	return 0
}

// FlowAggregate summarizes one flow across a spec's seeds.
type FlowAggregate struct {
	Label            string  `json:"label"`
	Gateway          bool    `json:"gateway,omitempty"`
	Protocol         string  `json:"protocol"`
	Variant          string  `json:"variant,omitempty"`
	Pattern          string  `json:"pattern"`
	GoodputMeanKbps  float64 `json:"goodput_mean_kbps"`
	GoodputStdKbps   float64 `json:"goodput_std_kbps"`
	GoodputMinKbps   float64 `json:"goodput_min_kbps"`
	GoodputMaxKbps   float64 `json:"goodput_max_kbps"`
	RetransmitsMean  float64 `json:"retransmits_mean"`
	TimeoutsMean     float64 `json:"timeouts_mean"`
	SRTTMeanMs       float64 `json:"srtt_mean_ms"`
	DeliveryMean     float64 `json:"delivery_mean"`
	LatencyP50MeanMs float64 `json:"lat_p50_mean_ms"`
	LatencyP99MeanMs float64 `json:"lat_p99_mean_ms"`
	// Gateway-flow across-seed means (zero for direct flows).
	E2EDeliveryMean float64 `json:"e2e_delivery_mean,omitempty"`
	CreditShareMean float64 `json:"credit_share_mean,omitempty"`
	RadioDCMean     float64 `json:"radio_dc_mean"`
	CPUDCMean       float64 `json:"cpu_dc_mean"`
}

// Aggregate summarizes a spec across its seeds.
type Aggregate struct {
	Flows             []FlowAggregate `json:"flows"`
	JainMean          float64         `json:"jain_mean"`
	JainMin           float64         `json:"jain_min"`
	AggregateMeanKbps float64         `json:"aggregate_mean_kbps"`
	// Gateway-tier across-seed summaries of a gateway spec: fairness
	// over per-source cloud credits and WAN pressure.
	CreditJainMean  float64 `json:"credit_jain_mean,omitempty"`
	CreditJainMin   float64 `json:"credit_jain_min,omitempty"`
	WANDropsMean    float64 `json:"wan_drops_mean,omitempty"`
	WANQueueMaxMean float64 `json:"wan_queue_max_mean,omitempty"`
}

// SpecResult is one spec's runs (in seed order) plus their aggregate.
type SpecResult struct {
	Spec *Spec     `json:"spec"`
	Runs []Result  `json:"runs"`
	Agg  Aggregate `json:"aggregate"`
}

// Runner executes specs across a worker pool. Each (spec, seed) pair is
// an independent simulation — its own engine, channel, and stacks — so
// the pool only changes wall-clock time, never results: aggregates are
// computed in (spec, seed) order after every run completes, and a
// serial run (Workers=1) is bit-identical to a parallel one.
type Runner struct {
	// Workers bounds concurrent runs; 0 uses all CPUs.
	Workers int
	// Obs switches on cross-layer observability for every run (nil
	// disables it). Shared writers inside are mutex-guarded, so parallel
	// runs interleave whole records; use Workers=1 for a strictly
	// ordered trace.
	Obs *ObsConfig
}

// Run executes one non-sweep spec over its seed list. A spec carrying a
// sweep expands to many cells with one result each; use RunAll for it.
func (r *Runner) Run(spec *Spec) (*SpecResult, error) {
	if spec.Sweep != nil && !spec.Sweep.empty() {
		return nil, fmt.Errorf("scenario %q: spec has a sweep (%d cells); use RunAll",
			spec.Name, len(spec.Expand()))
	}
	out, err := r.RunAll([]*Spec{spec})
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// RunAll expands every sweep, executes every (cell, seed) pair across
// the pool, and returns one SpecResult per expanded cell, in input
// order (a spec without a sweep is its own single cell).
func (r *Runner) RunAll(specs []*Spec) ([]*SpecResult, error) {
	var cells []*Spec
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		cells = append(cells, s.Expand()...)
	}
	type job struct{ si, ri int }
	var jobs []job
	out := make([]*SpecResult, len(cells))
	defaulted := make([]*Spec, len(cells))
	for si, s := range cells {
		defaulted[si] = s.withDefaults()
		out[si] = &SpecResult{Spec: s, Runs: make([]Result, len(defaulted[si].Seeds))}
		for ri := range defaulted[si].Seeds {
			jobs = append(jobs, job{si, ri})
		}
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	errs := make([]error, len(jobs))
	ch := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ji := range ch {
				j := jobs[ji]
				d := defaulted[j.si]
				res, err := runDefaulted(d, d.Seeds[j.ri], r.Obs)
				if err != nil {
					errs[ji] = err
					continue
				}
				out[j.si].Runs[j.ri] = res
			}
		}()
	}
	for ji := range jobs {
		ch <- ji
	}
	close(ch)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, sr := range out {
		sr.Agg = aggregate(sr.Runs)
	}
	return out, nil
}

// aggregate folds a spec's per-seed runs into across-seed summaries,
// always iterating in seed order so the result is independent of run
// completion order.
func aggregate(runs []Result) Aggregate {
	agg := Aggregate{}
	if len(runs) == 0 {
		return agg
	}
	nFlows := len(runs[0].Flows)
	var jain, total stats.Sample
	for fi := 0; fi < nFlows; fi++ {
		var goodput, rtx, rto, srtt, deliv, p50, p99, e2e, share, radio, cpu stats.Sample
		for _, run := range runs {
			f := run.Flows[fi]
			goodput.Add(f.GoodputKbps)
			rtx.Add(float64(f.Retransmits))
			rto.Add(float64(f.Timeouts))
			srtt.Add(f.SRTTms)
			deliv.Add(f.DeliveryRatio)
			p50.Add(f.LatencyP50ms)
			p99.Add(f.LatencyP99ms)
			e2e.Add(f.E2EDeliveryRatio)
			share.Add(f.CreditShare)
			radio.Add(f.RadioDC)
			cpu.Add(f.CPUDC)
		}
		agg.Flows = append(agg.Flows, FlowAggregate{
			Label:            runs[0].Flows[fi].Label,
			Gateway:          runs[0].Flows[fi].Gateway,
			Protocol:         runs[0].Flows[fi].Protocol,
			Variant:          runs[0].Flows[fi].Variant,
			Pattern:          runs[0].Flows[fi].Pattern,
			GoodputMeanKbps:  goodput.Mean(),
			GoodputStdKbps:   goodput.StdDev(),
			GoodputMinKbps:   goodput.Min(),
			GoodputMaxKbps:   goodput.Max(),
			RetransmitsMean:  rtx.Mean(),
			TimeoutsMean:     rto.Mean(),
			SRTTMeanMs:       srtt.Mean(),
			DeliveryMean:     deliv.Mean(),
			LatencyP50MeanMs: p50.Mean(),
			LatencyP99MeanMs: p99.Mean(),
			RadioDCMean:      radio.Mean(),
			CPUDCMean:        cpu.Mean(),
		})
		if runs[0].Flows[fi].Gateway {
			agg.Flows[fi].E2EDeliveryMean = e2e.Mean()
			agg.Flows[fi].CreditShareMean = share.Mean()
		}
	}
	for _, run := range runs {
		jain.Add(run.Jain)
		total.Add(run.AggregateKbps)
	}
	agg.JainMean = jain.Mean()
	agg.JainMin = jain.Min()
	agg.AggregateMeanKbps = total.Mean()
	if runs[0].Gateway != nil {
		var cj, drops, qmax stats.Sample
		for _, run := range runs {
			g := run.Gateway
			cj.Add(g.CreditJain)
			drops.Add(float64(g.WANQueueDrops + g.WANLossDrops))
			qmax.Add(float64(g.WANQueueMax))
		}
		agg.CreditJainMean = cj.Mean()
		agg.CreditJainMin = cj.Min()
		agg.WANDropsMean = drops.Mean()
		agg.WANQueueMaxMean = qmax.Mean()
	}
	return agg
}
