// Package scenario is the declarative multi-flow experiment subsystem:
// a Spec names a topology, link conditions, per-node duty-cycle roles,
// and per-flow transport configuration (congestion-control variant,
// window, pacing, application pattern); a Runner instantiates every
// (spec, seed) pair onto the sim/phy/mac/stack layers, fans the runs
// out across a worker pool — each seed's engine is independent, so
// parallelism is deterministic — and aggregates per-flow goodput,
// retransmissions, RTT, energy duty cycle, and Jain's fairness index.
//
// Specs are JSON-serializable, so a sweep is data, not a bespoke
// driver: cmd/tcplp-bench's -scenario mode runs a spec file, and the
// ccvariants/pacing/table9 experiments are thin spec builders over the
// same machinery.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"tcplp/internal/sim"
	"tcplp/internal/tcplp/cc"
)

// Duration is a sim.Duration that marshals as a Go duration string
// ("90s", "250ms"); bare JSON numbers are read as seconds.
type Duration sim.Duration

// D returns the underlying simulation duration.
func (d Duration) D() sim.Duration { return sim.Duration(d) }

// MarshalJSON renders the duration as a string like "1.5s".
func (d Duration) MarshalJSON() ([]byte, error) {
	td := time.Duration(int64(d) * int64(time.Microsecond))
	return json.Marshal(td.String())
}

// UnmarshalJSON accepts "90s"/"250ms" strings or numbers (seconds).
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		td, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("scenario: bad duration %q: %v", s, err)
		}
		*d = Duration(td / time.Microsecond)
		return nil
	}
	var secs float64
	if err := json.Unmarshal(b, &secs); err != nil {
		return fmt.Errorf("scenario: duration must be a string like \"90s\" or a number of seconds: %s", b)
	}
	*d = Duration(secs * float64(sim.Second))
	return nil
}

// NodeRef names a flow endpoint: a mesh node id, or the wired cloud
// host behind the border router.
type NodeRef struct {
	Host bool
	ID   int
}

// NodeID returns a reference to mesh node id.
func NodeID(id int) NodeRef { return NodeRef{ID: id} }

// Host returns a reference to the wired cloud host.
func Host() NodeRef { return NodeRef{Host: true} }

func (r NodeRef) String() string {
	if r.Host {
		return "host"
	}
	return strconv.Itoa(r.ID)
}

// MarshalJSON renders the reference as a number or "host".
func (r NodeRef) MarshalJSON() ([]byte, error) {
	if r.Host {
		return json.Marshal("host")
	}
	return json.Marshal(r.ID)
}

// UnmarshalJSON accepts a node id or the string "host".
func (r *NodeRef) UnmarshalJSON(b []byte) error {
	var id int
	if err := json.Unmarshal(b, &id); err == nil {
		*r = NodeRef{ID: id}
		return nil
	}
	var s string
	if err := json.Unmarshal(b, &s); err == nil && s == "host" {
		*r = NodeRef{Host: true}
		return nil
	}
	return fmt.Errorf("scenario: node reference must be a node id or \"host\": %s", b)
}

// Topology kinds.
const (
	TopoChain    = "chain"    // n nodes on a line, hidden-terminal ranges (§7.1)
	TopoStar     = "star"     // n-1 nodes around the border router
	TopoOffice   = "office"   // the 15-node Fig. 3 office testbed stand-in
	TopoTwinLeaf = "twinleaf" // Table 9: a relay path ending in two leaves
)

// TopologySpec selects and parameterizes the mesh layout.
type TopologySpec struct {
	// Kind is one of chain, star, office, twinleaf.
	Kind string `json:"kind"`
	// Nodes is the node count for chain/star (ignored otherwise).
	Nodes int `json:"nodes,omitempty"`
	// PathHops is the twinleaf relay-path length in hops.
	PathHops int `json:"path_hops,omitempty"`
	// Spacing is the inter-node distance (default 10).
	Spacing float64 `json:"spacing,omitempty"`
}

// NetSpec sets network-wide knobs: link conditions, segment sizing, the
// default window, queueing, and RED/ECN at relays.
type NetSpec struct {
	// PER is a uniform per-frame corruption probability on every link.
	PER float64 `json:"per,omitempty"`
	// RetryDelay overrides the paper's link-retry delay d (§7.1);
	// unset keeps the 40 ms default, "0s" disables it (hidden-terminal
	// conditions).
	RetryDelay *Duration `json:"retry_delay,omitempty"`
	// SegFrames is the TCP MSS in 802.15.4 frames (default 5).
	SegFrames int `json:"seg_frames,omitempty"`
	// WindowSegs is the default per-flow window in segments (default 4);
	// individual flows may override it.
	WindowSegs int `json:"window_segs,omitempty"`
	// QueueCap bounds each node's datagram transmit queue.
	QueueCap int `json:"queue_cap,omitempty"`
	// RED/ECN enable random early detection (and marking) at relays;
	// HopByHop selects whole-packet reassembly at relays, which RED
	// requires to see packets (Appendix A).
	RED      bool `json:"red,omitempty"`
	ECN      bool `json:"ecn,omitempty"`
	HopByHop bool `json:"hop_by_hop,omitempty"`
	// WireDelay is the one-way border↔host latency (default 6 ms).
	WireDelay Duration `json:"wire_delay,omitempty"`
	// AttachHost forces the wired cloud host even when no flow names it.
	AttachHost bool `json:"attach_host,omitempty"`
}

// NodeSpec assigns a duty-cycle role to one mesh node.
type NodeSpec struct {
	ID int `json:"id"`
	// Sleepy converts the node into a duty-cycled leaf polling its
	// parent (§3.2 / §9.2).
	Sleepy bool `json:"sleepy,omitempty"`
	// SleepInterval is the base data-request period (default 4 min).
	SleepInterval Duration `json:"sleep_interval,omitempty"`
	// FastInterval is the poll period while a transport response is
	// expected; unset keeps the 100 ms default, "0s" disables fast
	// polling (Appendix C conditions).
	FastInterval *Duration `json:"fast_interval,omitempty"`
	// Adaptive enables the Trickle-controlled interval of Appendix C.
	Adaptive bool `json:"adaptive,omitempty"`
	// NoFastPollHint detaches the TCP expecting-data hint from the
	// sleep controller (the §9.2 refinement off).
	NoFastPollHint bool `json:"no_fast_poll_hint,omitempty"`
}

// Traffic patterns.
const (
	PatternBulk       = "bulk"       // saturating stream (default)
	PatternOnOff      = "onoff"      // bulk during on-periods, idle between
	PatternAnemometer = "anemometer" // §3 sensor: periodic readings, optional batching
)

// FlowSpec is one TCP flow: endpoints, transport configuration, and the
// application traffic pattern driving it.
type FlowSpec struct {
	// Label names the flow in results (default "from->to").
	Label string  `json:"label,omitempty"`
	From  NodeRef `json:"from"`
	To    NodeRef `json:"to"`
	// Port is the sink's listening port (default 80+index).
	Port uint16 `json:"port,omitempty"`
	// Variant is the congestion-control algorithm (newreno, cubic,
	// westwood, bbr); empty uses the process default.
	Variant string `json:"variant,omitempty"`
	// WindowSegs overrides the network window for this flow, in
	// segments, applied to both the sender's buffers and the sink's
	// advertised window.
	WindowSegs int `json:"window_segs,omitempty"`
	// Pacing forces pacing off when set to false; unset (null) leaves
	// the variant's own behaviour (BBR paces, loss-based variants are
	// ACK-clocked). True is only meaningful for pacing-capable variants.
	Pacing *bool `json:"pacing,omitempty"`
	// Pattern is bulk (default), onoff, or anemometer.
	Pattern string `json:"pattern,omitempty"`
	// On/Off are the onoff pattern's period lengths. Omitting both
	// selects the 5s/5s default; setting one honors the other as given,
	// so "off": "0s" with an explicit on-period means continuous
	// sending.
	On  Duration `json:"on,omitempty"`
	Off Duration `json:"off,omitempty"`
	// Interval is the anemometer sampling period; 0 selects the 1s
	// default (a zero sampling period is meaningless).
	Interval Duration `json:"interval,omitempty"`
	// Batch is the anemometer batching threshold in readings (0 sends
	// each reading immediately).
	Batch int `json:"batch,omitempty"`
}

// Spec is one declarative scenario: a topology, link conditions, node
// roles, flows, a measurement schedule, and the seeds to run.
type Spec struct {
	Name     string       `json:"name"`
	Topology TopologySpec `json:"topology"`
	Net      NetSpec      `json:"net,omitempty"`
	Nodes    []NodeSpec   `json:"nodes,omitempty"`
	Flows    []FlowSpec   `json:"flows"`
	// Warmup runs before the measurement window opens; 0 (or omitted)
	// measures from t=0.
	Warmup Duration `json:"warmup,omitempty"`
	// Duration is the measurement window; 0 selects the 60s default (a
	// zero-length window is meaningless).
	Duration Duration `json:"duration,omitempty"`
	// Seeds lists the independent channel realizations to run
	// (default [1]).
	Seeds []int64 `json:"seeds,omitempty"`
}

// ParseSpecs decodes a JSON spec file holding either one spec object or
// an array of specs, and validates each. The form is decided by the
// first byte so a decode error inside an array surfaces as itself, not
// as a misleading object-decode failure.
func ParseSpecs(data []byte) ([]*Spec, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	var many []*Spec
	if len(trimmed) > 0 && trimmed[0] == '[' {
		if err := json.Unmarshal(data, &many); err != nil {
			return nil, fmt.Errorf("scenario: bad spec array: %v", err)
		}
	} else {
		var one Spec
		if err := json.Unmarshal(data, &one); err != nil {
			return nil, fmt.Errorf("scenario: bad spec: %v", err)
		}
		many = []*Spec{&one}
	}
	for _, s := range many {
		if err := s.Validate(); err != nil {
			return nil, err
		}
	}
	return many, nil
}

// nodeCount returns the mesh node count the topology will instantiate.
func (t TopologySpec) nodeCount() int {
	switch t.Kind {
	case TopoChain, TopoStar:
		return t.Nodes
	case TopoOffice:
		return 15
	case TopoTwinLeaf:
		return t.PathHops + 2
	}
	return 0
}

// Validate checks the spec for structural errors — unknown kinds,
// out-of-range node ids, bad variants — so a Runner never panics
// mid-simulation on a malformed file.
func (s *Spec) Validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("scenario %q: %s", s.Name, fmt.Sprintf(format, args...))
	}
	switch s.Topology.Kind {
	case TopoChain, TopoStar:
		if s.Topology.Nodes < 2 {
			return bad("topology %s needs nodes >= 2", s.Topology.Kind)
		}
	case TopoOffice:
	case TopoTwinLeaf:
		if s.Topology.PathHops < 1 {
			return bad("topology twinleaf needs path_hops >= 1")
		}
	default:
		return bad("unknown topology kind %q (have chain, star, office, twinleaf)", s.Topology.Kind)
	}
	n := s.Topology.nodeCount()
	if len(s.Flows) == 0 {
		return bad("no flows")
	}
	checkRef := func(r NodeRef) error {
		if r.Host {
			return nil
		}
		if r.ID < 0 || r.ID >= n {
			return bad("node %d out of range (topology has %d nodes)", r.ID, n)
		}
		return nil
	}
	sinks := map[string]int{} // "to:port" → flow index
	for i, f := range s.Flows {
		if err := checkRef(f.From); err != nil {
			return err
		}
		if err := checkRef(f.To); err != nil {
			return err
		}
		if f.From == f.To {
			return bad("flow %d: from == to (%s)", i, f.From)
		}
		if f.From.Host && f.To.Host {
			return bad("flow %d: both endpoints are the host", i)
		}
		if _, err := cc.Parse(f.Variant); err != nil {
			return bad("flow %d: %v", i, err)
		}
		switch f.Pattern {
		case "", PatternBulk, PatternOnOff, PatternAnemometer:
		default:
			return bad("flow %d: unknown pattern %q (have bulk, onoff, anemometer)", i, f.Pattern)
		}
		if f.WindowSegs < 0 {
			return bad("flow %d: negative window_segs", i)
		}
		if f.On < 0 || f.Off < 0 || f.Interval < 0 {
			return bad("flow %d: negative on/off/interval", i)
		}
		// Two flows listening on the same node:port would silently
		// replace each other's sink (tcplp.Stack.Listen keeps the last
		// listener), crediting one flow with both streams.
		port := int(f.Port)
		if port == 0 {
			port = 80 + i // the default withDefaults will assign
		}
		key := fmt.Sprintf("%s:%d", f.To, port)
		if prev, dup := sinks[key]; dup {
			return bad("flows %d and %d share sink %s", prev, i, key)
		}
		sinks[key] = i
	}
	for _, ns := range s.Nodes {
		if ns.ID <= 0 || ns.ID >= n {
			return bad("node spec id %d out of range (1..%d)", ns.ID, n-1)
		}
		if ns.SleepInterval < 0 || (ns.FastInterval != nil && *ns.FastInterval < 0) {
			return bad("node %d: negative sleep/fast interval", ns.ID)
		}
	}
	if s.Net.PER < 0 || s.Net.PER >= 1 {
		return bad("per %v out of range [0,1)", s.Net.PER)
	}
	if s.Net.RetryDelay != nil && *s.Net.RetryDelay < 0 {
		return bad("negative retry_delay")
	}
	if s.Net.WireDelay < 0 {
		return bad("negative wire_delay")
	}
	if s.Duration < 0 || s.Warmup < 0 {
		return bad("negative duration")
	}
	return nil
}

// withDefaults returns a copy of the spec with defaults applied:
// measurement schedule, seeds, flow labels and ports. A zero warmup is
// honored (measure from t=0); zero values are only replaced where zero
// is meaningless (duration, interval, both onoff periods omitted).
func (s *Spec) withDefaults() *Spec {
	out := *s
	if out.Duration == 0 {
		out.Duration = Duration(60 * sim.Second)
	}
	if len(out.Seeds) == 0 {
		out.Seeds = []int64{1}
	}
	out.Flows = append([]FlowSpec(nil), s.Flows...)
	for i := range out.Flows {
		f := &out.Flows[i]
		if f.Port == 0 {
			f.Port = uint16(80 + i)
		}
		if f.Label == "" {
			f.Label = fmt.Sprintf("%s->%s", f.From, f.To)
		}
		if f.Pattern == "" {
			f.Pattern = PatternBulk
		}
		if f.Pattern == PatternOnOff && f.On == 0 && f.Off == 0 {
			f.On = Duration(5 * sim.Second)
			f.Off = Duration(5 * sim.Second)
		}
		if f.Pattern == PatternAnemometer && f.Interval == 0 {
			f.Interval = Duration(sim.Second)
		}
	}
	return &out
}

// needsHost reports whether the wired cloud host must be attached.
func (s *Spec) needsHost() bool {
	if s.Net.AttachHost {
		return true
	}
	for _, f := range s.Flows {
		if f.From.Host || f.To.Host {
			return true
		}
	}
	return false
}
