// Package scenario is the declarative multi-flow experiment subsystem:
// a Spec names a topology, link conditions, per-node duty-cycle roles,
// and per-flow transport configuration (congestion-control variant,
// window, pacing, application pattern); a Runner instantiates every
// (spec, seed) pair onto the sim/phy/mac/stack layers, fans the runs
// out across a worker pool — each seed's engine is independent, so
// parallelism is deterministic — and aggregates per-flow goodput,
// retransmissions, RTT, energy duty cycle, and Jain's fairness index.
//
// Specs are JSON-serializable, so a sweep is data, not a bespoke
// driver: cmd/tcplp-bench's -scenario mode runs a spec file, and the
// ccvariants/pacing/table9 experiments are thin spec builders over the
// same machinery.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"tcplp/internal/gateway"
	"tcplp/internal/mesh"
	"tcplp/internal/scenario/flows"
	"tcplp/internal/sim"
	"tcplp/internal/tcplp/cc"
	"tcplp/internal/uip"
)

// Duration is a sim.Duration that marshals as a Go duration string
// ("90s", "250ms"); bare JSON numbers are read as seconds.
type Duration sim.Duration

// D returns the underlying simulation duration.
func (d Duration) D() sim.Duration { return sim.Duration(d) }

// MarshalJSON renders the duration as a string like "1.5s".
func (d Duration) MarshalJSON() ([]byte, error) {
	td := time.Duration(int64(d) * int64(time.Microsecond))
	return json.Marshal(td.String())
}

// String renders the duration in Go syntax ("40ms", "1.5s").
func (d Duration) String() string {
	return (time.Duration(int64(d)) * time.Microsecond).String()
}

// UnmarshalJSON accepts "90s"/"250ms" strings or numbers (seconds).
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		td, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("scenario: bad duration %q: %v", s, err)
		}
		*d = Duration(td / time.Microsecond)
		return nil
	}
	var secs float64
	if err := json.Unmarshal(b, &secs); err != nil {
		return fmt.Errorf("scenario: duration must be a string like \"90s\" or a number of seconds: %s", b)
	}
	*d = Duration(secs * float64(sim.Second))
	return nil
}

// NodeRef names a flow endpoint: a mesh node id, the wired cloud host
// behind the border router, "end" — the topology's last node, which
// lets one sweep spec keep addressing the far end of a chain while a
// hop-count axis regrows it — or "gateway", the spec's border-router
// gateway tier (flow sinks only).
type NodeRef struct {
	Host    bool
	End     bool
	Gateway bool
	ID      int
}

// NodeID returns a reference to mesh node id.
func NodeID(id int) NodeRef { return NodeRef{ID: id} }

// Host returns a reference to the wired cloud host.
func Host() NodeRef { return NodeRef{Host: true} }

// End returns a reference to the topology's last node (a chain's far
// end; resolved against whatever node count the cell expands to).
func End() NodeRef { return NodeRef{End: true} }

// Gateway returns a reference to the spec's gateway tier: the flow
// terminates at the border router's shared gateway and is credited
// end-to-end at the cloud collector behind the modeled WAN.
func Gateway() NodeRef { return NodeRef{Gateway: true} }

func (r NodeRef) String() string {
	if r.Host {
		return "host"
	}
	if r.End {
		return "end"
	}
	if r.Gateway {
		return "gateway"
	}
	return strconv.Itoa(r.ID)
}

// MarshalJSON renders the reference as a number, "host", "end", or
// "gateway".
func (r NodeRef) MarshalJSON() ([]byte, error) {
	if r.Host || r.End || r.Gateway {
		return json.Marshal(r.String())
	}
	return json.Marshal(r.ID)
}

// UnmarshalJSON accepts a node id or the strings "host" / "end" /
// "gateway".
func (r *NodeRef) UnmarshalJSON(b []byte) error {
	var id int
	if err := json.Unmarshal(b, &id); err == nil {
		*r = NodeRef{ID: id}
		return nil
	}
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		switch s {
		case "host":
			*r = NodeRef{Host: true}
			return nil
		case "end":
			*r = NodeRef{End: true}
			return nil
		case "gateway":
			*r = NodeRef{Gateway: true}
			return nil
		}
	}
	return fmt.Errorf("scenario: node reference must be a node id, \"host\", \"end\", or \"gateway\": %s", b)
}

// Topology kinds.
const (
	TopoChain    = "chain"    // n nodes on a line, hidden-terminal ranges (§7.1)
	TopoStar     = "star"     // n-1 nodes around the border router
	TopoOffice   = "office"   // the 15-node Fig. 3 office testbed stand-in
	TopoTwinLeaf = "twinleaf" // Table 9: a relay path ending in two leaves
	// TopoRandomGeometric scatters nodes uniformly in a square sized for a
	// target mean degree, the border router at the center — the city-scale
	// generator (guaranteed connected, deterministic in its seed).
	TopoRandomGeometric = "random_geometric"
	// TopoTree embeds a fanout-ary tree of the given depth around the
	// border router; shortest-path hop count equals tree depth.
	TopoTree = "tree"
)

// TopologySpec selects and parameterizes the mesh layout.
type TopologySpec struct {
	// Kind is one of chain, star, office, twinleaf, random_geometric, tree.
	Kind string `json:"kind"`
	// Nodes is the node count for chain/star/random_geometric (ignored
	// otherwise).
	Nodes int `json:"nodes,omitempty"`
	// PathHops is the twinleaf relay-path length in hops.
	PathHops int `json:"path_hops,omitempty"`
	// Spacing is the inter-node distance (default 10); random_geometric
	// instead derives its field size from Density.
	Spacing float64 `json:"spacing,omitempty"`
	// Density is the random_geometric target mean node degree (default 6).
	Density float64 `json:"density,omitempty"`
	// Depth and Fanout shape the tree topology.
	Depth  int `json:"depth,omitempty"`
	Fanout int `json:"fanout,omitempty"`
	// Seed fixes the random_geometric placement (default 1). It is
	// deliberately separate from the channel seed list: every seed of a
	// run explores the same city.
	Seed int64 `json:"seed,omitempty"`
}

// NetSpec sets network-wide knobs: link conditions, segment sizing, the
// default window, queueing, and RED/ECN at relays.
type NetSpec struct {
	// PER is a uniform per-frame corruption probability on every link.
	PER float64 `json:"per,omitempty"`
	// RetryDelay overrides the paper's link-retry delay d (§7.1);
	// unset keeps the 40 ms default, "0s" disables it (hidden-terminal
	// conditions).
	RetryDelay *Duration `json:"retry_delay,omitempty"`
	// SegFrames is the TCP MSS in 802.15.4 frames (default 5).
	SegFrames int `json:"seg_frames,omitempty"`
	// WindowSegs is the default per-flow window in segments (default 4);
	// individual flows may override it.
	WindowSegs int `json:"window_segs,omitempty"`
	// QueueCap bounds each node's datagram transmit queue.
	QueueCap int `json:"queue_cap,omitempty"`
	// RED/ECN enable random early detection (and marking) at relays;
	// HopByHop selects whole-packet reassembly at relays, which RED
	// requires to see packets (Appendix A).
	RED      bool `json:"red,omitempty"`
	ECN      bool `json:"ecn,omitempty"`
	HopByHop bool `json:"hop_by_hop,omitempty"`
	// WireDelay is the one-way border↔host latency (default 6 ms).
	WireDelay Duration `json:"wire_delay,omitempty"`
	// AttachHost forces the wired cloud host even when no flow names it.
	AttachHost bool `json:"attach_host,omitempty"`
	// InjectedLoss drops packets crossing the border router with this
	// probability — the §9.4 loss-injection mechanism.
	InjectedLoss float64 `json:"injected_loss,omitempty"`
	// Interference places the §9.5 diurnal interferers with this peak
	// relative activity (0 disables them; the paper uses 1).
	Interference float64 `json:"interference,omitempty"`
	// PhyWorkers bounds the deterministic PHY fan-out worker pool for
	// very dense topologies: 0 (default) is the serial reference path,
	// N > 0 allows up to N goroutines per fan-out. Results are
	// bit-identical at any setting; this only buys wall-clock time.
	PhyWorkers int `json:"phy_workers,omitempty"`
}

// NodeSpec assigns a duty-cycle role to one mesh node.
type NodeSpec struct {
	ID int `json:"id"`
	// Sleepy converts the node into a duty-cycled leaf polling its
	// parent (§3.2 / §9.2).
	Sleepy bool `json:"sleepy,omitempty"`
	// SleepInterval is the base data-request period (default 4 min).
	SleepInterval Duration `json:"sleep_interval,omitempty"`
	// FastInterval is the poll period while a transport response is
	// expected; unset keeps the 100 ms default, "0s" disables fast
	// polling (Appendix C conditions).
	FastInterval *Duration `json:"fast_interval,omitempty"`
	// Adaptive enables the Trickle-controlled interval of Appendix C.
	Adaptive bool `json:"adaptive,omitempty"`
	// MinInterval/MaxInterval bound the adaptive interval; zero keeps
	// the paper's 20 ms / 5 s defaults.
	MinInterval Duration `json:"min_interval,omitempty"`
	MaxInterval Duration `json:"max_interval,omitempty"`
	// NoFastPollHint detaches the TCP expecting-data hint from the
	// sleep controller (the §9.2 refinement off).
	NoFastPollHint bool `json:"no_fast_poll_hint,omitempty"`
}

// WANSpec shapes the gateway's modeled wide-area backhaul: a
// netem-style link with configurable bandwidth, round-trip latency,
// and random message loss.
type WANSpec struct {
	// BandwidthKbps serializes forwarded messages at this rate; 0 is an
	// unconstrained link.
	BandwidthKbps float64 `json:"bandwidth_kbps,omitempty"`
	// RTT is the WAN round-trip time; each forwarded message crosses
	// half of it one-way.
	RTT Duration `json:"rtt,omitempty"`
	// Loss drops each forwarded message with this probability.
	Loss float64 `json:"loss,omitempty"`
	// QueueCap bounds messages queued at the gateway's uplink (default
	// 64); arrivals beyond it are tail-dropped.
	QueueCap int `json:"queue_cap,omitempty"`
}

// GatewaySpec installs the border-router gateway tier: flows addressed
// "to": "gateway" terminate at the border router's shared per-device
// connection table and are proxied onto the WAN, with deliveries
// credited per source at a cloud collector — upstream fairness becomes
// measurable end-to-end (device → gateway → cloud).
type GatewaySpec struct {
	// TCPPort/CoAPPort are the LLN-side terminator ports (defaults 7000
	// and 5683).
	TCPPort  uint16 `json:"tcp_port,omitempty"`
	CoAPPort uint16 `json:"coap_port,omitempty"`
	// MaxConns bounds the per-device connection table; 0 is unbounded. A
	// full table evicts its least-recently-active device.
	MaxConns int `json:"max_conns,omitempty"`
	// IdleTimeout evicts table entries idle this long; 0 disables the
	// sweep.
	IdleTimeout Duration `json:"idle_timeout,omitempty"`
	// WAN shapes the backhaul link.
	WAN WANSpec `json:"wan,omitempty"`
}

// Traffic patterns (canonically defined by the flows driver registry).
const (
	PatternBulk       = flows.PatternBulk       // saturating stream (default)
	PatternOnOff      = flows.PatternOnOff      // bulk during on-periods, idle between
	PatternAnemometer = flows.PatternAnemometer // §3 sensor: periodic readings, optional batching
)

// FlowSpec is one flow: endpoints, the transport protocol, its
// configuration, and the application traffic pattern driving it.
type FlowSpec struct {
	// Label names the flow in results (default "from->to").
	Label string  `json:"label,omitempty"`
	From  NodeRef `json:"from"`
	To    NodeRef `json:"to"`
	// Protocol selects the transport driver: tcp (default), udp, or
	// coap. Non-TCP flows carry the anemometer pattern (telemetry);
	// bulk/onoff streams need TCP's reliability.
	Protocol string `json:"protocol,omitempty"`
	// Confirmable selects CoAP CON (default) vs NON exchanges; only
	// meaningful for protocol "coap".
	Confirmable *bool `json:"confirmable,omitempty"`
	// RTO selects the CoAP retransmission-timeout policy: "default"
	// (RFC 7252) or "cocoa" (draft-ietf-core-cocoa, the §9.4 baseline).
	RTO string `json:"rto,omitempty"`
	// Port is the sink's listening port (default 80+index).
	Port uint16 `json:"port,omitempty"`
	// Variant is the congestion-control algorithm (newreno, cubic,
	// westwood, bbr, vegas); empty uses the process default.
	Variant string `json:"variant,omitempty"`
	// Profile runs the sender under a named simplified-stack profile
	// (uip, blip, uip50, archrock — Table 7's baselines): the source
	// connection uses the profile's stripped configuration while the
	// sink stays full TCPlp, whose delayed ACKs penalize stop-and-wait
	// stacks exactly as the paper's gateway-class receivers did. A
	// profile overrides variant/window_segs/pacing for the flow.
	Profile string `json:"profile,omitempty"`
	// Trace records the sender's congestion-window trajectory over the
	// measurement window into FlowResult.CwndTrace (Fig. 7a).
	Trace bool `json:"trace,omitempty"`
	// WindowSegs overrides the network window for this flow, in
	// segments, applied to both the sender's buffers and the sink's
	// advertised window.
	WindowSegs int `json:"window_segs,omitempty"`
	// Pacing forces pacing off when set to false; unset (null) leaves
	// the variant's own behaviour (BBR paces, loss-based variants are
	// ACK-clocked). True is only meaningful for pacing-capable variants.
	Pacing *bool `json:"pacing,omitempty"`
	// Pattern is bulk (default), onoff, or anemometer.
	Pattern string `json:"pattern,omitempty"`
	// On/Off are the onoff pattern's period lengths. Omitting both
	// selects the 5s/5s default; setting one honors the other as given,
	// so "off": "0s" with an explicit on-period means continuous
	// sending.
	On  Duration `json:"on,omitempty"`
	Off Duration `json:"off,omitempty"`
	// Interval is the anemometer sampling period; 0 selects the 1s
	// default (a zero sampling period is meaningless).
	Interval Duration `json:"interval,omitempty"`
	// Batch is the anemometer batching threshold in readings (0 sends
	// each reading immediately).
	Batch int `json:"batch,omitempty"`
	// PerDevice replicates this flow template across every mesh node
	// 1..N-1 (one flow per device, From set per replica) — the idiom for
	// gateway capacity sweeps, where a devices axis regrows the fleet.
	// Requires "to": "gateway"; From in the template is ignored.
	PerDevice bool `json:"per_device,omitempty"`
	// Stride thins a per_device template to every stride-th device
	// (ids 1, 1+stride, 1+2·stride, …) — the city-scale idiom, where a
	// thousand-node mesh carries a hundred instrumented flows rather than
	// one per node. 0 or 1 keeps every device.
	Stride int `json:"stride,omitempty"`
}

// AxisValue is one coordinate of an expanded sweep cell, e.g.
// {Axis: "d", Value: "40ms"}.
type AxisValue struct {
	Axis  string `json:"axis"`
	Value string `json:"value"`
}

// Sweep expands one spec into a cartesian grid of cells, one run set
// per combination of axis values — the sweep is data, not a bespoke
// driver loop. Axes are applied in field order with the last-listed
// axis varying fastest; each expanded cell records its coordinates in
// Spec.Point and appends them to its name.
type Sweep struct {
	// Hops regrows the topology per cell: a chain gets hops+1 nodes, a
	// twinleaf a hops-long relay path. Use the "end" node reference in
	// flows so endpoints follow the far end of the chain.
	Hops []int `json:"hops,omitempty"`
	// Devices sweeps the mesh device count: a star or chain gets
	// devices+1 nodes per cell (the border router plus that many
	// devices). Pair it with a per_device flow template so the flow set
	// regrows with the fleet.
	Devices []int `json:"devices,omitempty"`
	// Nodes sweeps the random_geometric node count directly — the
	// city-scale axis. Chain and star fleets use hops/devices instead.
	Nodes []int `json:"nodes,omitempty"`
	// PER sweeps the uniform per-frame corruption probability.
	PER []float64 `json:"per,omitempty"`
	// InjectedLoss sweeps the border-router drop probability — the §9.4
	// loss-injection axis.
	InjectedLoss []float64 `json:"injected_loss,omitempty"`
	// Interference sweeps the §9.5 office-interferer peak activity level
	// (0 disables the interferers for that cell).
	Interference []float64 `json:"interference,omitempty"`
	// RetryDelay sweeps the §7.1 link-retry delay d ("0s" gives
	// hidden-terminal conditions).
	RetryDelay []Duration `json:"retry_delay,omitempty"`
	// SegFrames sweeps the TCP MSS in 802.15.4 frames (Fig. 4).
	SegFrames []int `json:"seg_frames,omitempty"`
	// WindowSegs sweeps the network default window in segments (Fig. 5);
	// flows with an explicit per-flow window keep it.
	WindowSegs []int `json:"window_segs,omitempty"`
	// Variants sweeps the congestion-control algorithm, overriding every
	// flow's variant per cell.
	Variants []string `json:"variants,omitempty"`
	// Protocols sweeps the transport preset across every flow: tcp, udp,
	// coap (CON), coap-non (NON), or cocoa (CON with the CoCoA RTO
	// policy). Each cell rewrites every flow's protocol/confirmable/rto
	// and clears knobs foreign to the preset's transport, so one
	// telemetry spec compares transports without per-protocol copies.
	Protocols []string `json:"protocols,omitempty"`
	// SeedStep offsets every seed of cell i by i·SeedStep, reproducing
	// per-condition seeding; 0 (the default) holds the channel
	// realization fixed across cells so rows differ only by the axis.
	SeedStep int64 `json:"seed_step,omitempty"`
	// Overrides patch individual cells after axis expansion: a cell
	// whose coordinates match every "when" entry gets the "set" block
	// applied, folding outliers (the §7.2 4-hop point needs a 6-segment
	// window) into the grid instead of a separate spec.
	Overrides []Override `json:"overrides,omitempty"`
}

// Override is one conditional cell patch of a sweep.
type Override struct {
	// When matches cell coordinates by axis key (hops, per, d, mss, w,
	// cc) against the coordinate value exactly as it appears in the
	// cell's Point/name ("4", "40ms", "7%"); bare JSON numbers are
	// accepted and compared literally.
	When OverrideWhen `json:"when"`
	// Set is applied to matching cells after the axis values.
	Set OverrideSet `json:"set"`
}

// OverrideWhen maps axis keys to required coordinate values.
type OverrideWhen map[string]string

// UnmarshalJSON accepts string or bare-number values ({"hops": 4}).
func (w *OverrideWhen) UnmarshalJSON(b []byte) error {
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(b, &raw); err != nil {
		return fmt.Errorf("scenario: bad override when-block: %v", err)
	}
	out := OverrideWhen{}
	for k, v := range raw {
		var s string
		if err := json.Unmarshal(v, &s); err == nil {
			out[k] = s
			continue
		}
		out[k] = string(bytes.TrimSpace(v))
	}
	*w = out
	return nil
}

// OverrideSet is the patch a matching cell receives.
type OverrideSet struct {
	// WindowSegs/SegFrames/PER/RetryDelay override the network knobs.
	WindowSegs int       `json:"window_segs,omitempty"`
	SegFrames  int       `json:"seg_frames,omitempty"`
	PER        *float64  `json:"per,omitempty"`
	RetryDelay *Duration `json:"retry_delay,omitempty"`
	// Variant overrides every flow's congestion-control algorithm.
	Variant string `json:"variant,omitempty"`
}

// matches reports whether every when-entry equals the cell coordinate.
func (o *Override) matches(point []AxisValue) bool {
	for axis, want := range o.When {
		found := false
		for _, av := range point {
			if av.Axis == axis {
				found = av.Value == want
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// apply patches the cell.
func (o *Override) apply(c *Spec) {
	if o.Set.WindowSegs > 0 {
		c.Net.WindowSegs = o.Set.WindowSegs
	}
	if o.Set.SegFrames > 0 {
		c.Net.SegFrames = o.Set.SegFrames
	}
	if o.Set.PER != nil {
		c.Net.PER = *o.Set.PER
	}
	if o.Set.RetryDelay != nil {
		d := *o.Set.RetryDelay
		c.Net.RetryDelay = &d
	}
	if o.Set.Variant != "" {
		for i := range c.Flows {
			c.Flows[i].Variant = o.Set.Variant
		}
	}
}

// empty reports whether no axis has any values.
func (sw *Sweep) empty() bool {
	return len(sw.Hops) == 0 && len(sw.Devices) == 0 && len(sw.Nodes) == 0 &&
		len(sw.PER) == 0 && len(sw.InjectedLoss) == 0 && len(sw.Interference) == 0 &&
		len(sw.RetryDelay) == 0 && len(sw.SegFrames) == 0 &&
		len(sw.WindowSegs) == 0 && len(sw.Variants) == 0 && len(sw.Protocols) == 0
}

// protoPreset resolves one protocols-axis value to the flow fields it
// rewrites.
func protoPreset(name string) (protocol string, confirmable *bool, rto string, ok bool) {
	t, f := true, false
	switch name {
	case "tcp":
		return flows.ProtocolTCP, nil, "", true
	case "udp":
		return flows.ProtocolUDP, nil, "", true
	case "coap":
		return flows.ProtocolCoAP, &t, "", true
	case "coap-non":
		return flows.ProtocolCoAP, &f, "", true
	case "cocoa":
		return flows.ProtocolCoAP, &t, "cocoa", true
	}
	return "", nil, "", false
}

// Spec is one declarative scenario: a topology, link conditions, node
// roles, flows, a measurement schedule, and the seeds to run. A spec
// with a Sweep block is a whole grid of scenarios in one object.
type Spec struct {
	Name     string       `json:"name"`
	Topology TopologySpec `json:"topology"`
	Net      NetSpec      `json:"net,omitempty"`
	Nodes    []NodeSpec   `json:"nodes,omitempty"`
	// AllNodes is a role template applied to every mesh node 1..N-1
	// without an explicit Nodes entry (its ID field is ignored) — the
	// idiom for specs whose node count is swept, where a fixed Nodes
	// list cannot follow the topology.
	AllNodes *NodeSpec  `json:"all_nodes,omitempty"`
	Flows    []FlowSpec `json:"flows"`
	// Gateway installs the border-router gateway tier; flows addressed
	// "to": "gateway" terminate there and proxy onto its WAN.
	Gateway *GatewaySpec `json:"gateway,omitempty"`
	// Sweep expands this spec into a cartesian grid of cells; the
	// Runner runs every cell (see Expand).
	Sweep *Sweep `json:"sweep,omitempty"`
	// Point is set on expanded cells: the sweep coordinates this cell
	// was instantiated at, in axis order.
	Point []AxisValue `json:"point,omitempty"`
	// Warmup runs before the measurement window opens; 0 (or omitted)
	// measures from t=0.
	Warmup Duration `json:"warmup,omitempty"`
	// Duration is the measurement window; 0 selects the 60s default (a
	// zero-length window is meaningless).
	Duration Duration `json:"duration,omitempty"`
	// DCSample, when set, samples the mean radio duty cycle across the
	// flow source nodes every DCSample of the measurement window
	// (resetting their meters each time) into Result.DCSamples — the
	// Fig. 10 hourly-duty-cycle instrument.
	DCSample Duration `json:"dc_sample,omitempty"`
	// IdleWindow, when set, appends an idle phase after the measurement
	// window: every flow stops, the network settles for IdleSettle,
	// each flow's mesh endpoint resets its radio meter, and after
	// IdleWindow its duty cycle lands in FlowResult.IdleRadioDC — the
	// Fig. 14 idle-cost instrument.
	IdleSettle Duration `json:"idle_settle,omitempty"`
	IdleWindow Duration `json:"idle_window,omitempty"`
	// Seeds lists the independent channel realizations to run
	// (default [1]).
	Seeds []int64 `json:"seeds,omitempty"`
}

// ParseSpecs decodes a JSON spec file holding either one spec object or
// an array of specs, and validates each. The form is decided by the
// first byte so a decode error inside an array surfaces as itself, not
// as a misleading object-decode failure.
func ParseSpecs(data []byte) ([]*Spec, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	var many []*Spec
	if len(trimmed) > 0 && trimmed[0] == '[' {
		if err := json.Unmarshal(data, &many); err != nil {
			return nil, fmt.Errorf("scenario: bad spec array: %v", err)
		}
	} else {
		var one Spec
		if err := json.Unmarshal(data, &one); err != nil {
			return nil, fmt.Errorf("scenario: bad spec: %v", err)
		}
		many = []*Spec{&one}
	}
	for _, s := range many {
		if err := s.Validate(); err != nil {
			return nil, err
		}
	}
	return many, nil
}

// sweepOpt is one axis value prepared for expansion: its printable
// coordinate plus the mutation it applies to a cell.
type sweepOpt struct {
	av    AxisValue
	apply func(*Spec)
}

// axes lists the sweep's populated dimensions in field order.
func (sw *Sweep) axes() [][]sweepOpt {
	var out [][]sweepOpt
	add := func(opts []sweepOpt) {
		if len(opts) > 0 {
			out = append(out, opts)
		}
	}
	var hops []sweepOpt
	for _, h := range sw.Hops {
		h := h
		hops = append(hops, sweepOpt{AxisValue{"hops", strconv.Itoa(h)}, func(c *Spec) {
			if c.Topology.Kind == TopoTwinLeaf {
				c.Topology.PathHops = h
			} else { // chain (validated)
				c.Topology.Nodes = h + 1
			}
		}})
	}
	add(hops)
	var devs []sweepOpt
	for _, d := range sw.Devices {
		d := d
		devs = append(devs, sweepOpt{AxisValue{"dev", strconv.Itoa(d)},
			func(c *Spec) { c.Topology.Nodes = d + 1 }})
	}
	add(devs)
	var sizes []sweepOpt
	for _, n := range sw.Nodes {
		n := n
		sizes = append(sizes, sweepOpt{AxisValue{"n", strconv.Itoa(n)},
			func(c *Spec) { c.Topology.Nodes = n }})
	}
	add(sizes)
	var pers []sweepOpt
	for _, p := range sw.PER {
		p := p
		// 6 significant digits keep labels like 7% from leaking float
		// noise (0.07·100 is not exactly 7 in binary).
		pers = append(pers, sweepOpt{AxisValue{"per", strconv.FormatFloat(p*100, 'g', 6, 64) + "%"},
			func(c *Spec) { c.Net.PER = p }})
	}
	add(pers)
	var losses []sweepOpt
	for _, p := range sw.InjectedLoss {
		p := p
		losses = append(losses, sweepOpt{AxisValue{"loss", strconv.FormatFloat(p*100, 'g', 6, 64) + "%"},
			func(c *Spec) { c.Net.InjectedLoss = p }})
	}
	add(losses)
	var intfs []sweepOpt
	for _, v := range sw.Interference {
		v := v
		intfs = append(intfs, sweepOpt{AxisValue{"intf", strconv.FormatFloat(v*100, 'g', 6, 64) + "%"},
			func(c *Spec) { c.Net.Interference = v }})
	}
	add(intfs)
	var ds []sweepOpt
	for _, d := range sw.RetryDelay {
		d := d
		ds = append(ds, sweepOpt{AxisValue{"d", d.String()},
			func(c *Spec) { c.Net.RetryDelay = &d }})
	}
	add(ds)
	var frames []sweepOpt
	for _, f := range sw.SegFrames {
		f := f
		frames = append(frames, sweepOpt{AxisValue{"mss", strconv.Itoa(f) + "f"},
			func(c *Spec) { c.Net.SegFrames = f }})
	}
	add(frames)
	var wins []sweepOpt
	for _, w := range sw.WindowSegs {
		w := w
		wins = append(wins, sweepOpt{AxisValue{"w", strconv.Itoa(w)},
			func(c *Spec) { c.Net.WindowSegs = w }})
	}
	add(wins)
	var vars []sweepOpt
	for _, v := range sw.Variants {
		v := v
		vars = append(vars, sweepOpt{AxisValue{"cc", v}, func(c *Spec) {
			for i := range c.Flows {
				c.Flows[i].Variant = v
			}
		}})
	}
	add(vars)
	var protos []sweepOpt
	for _, p := range sw.Protocols {
		p := p
		protos = append(protos, sweepOpt{AxisValue{"proto", p}, func(c *Spec) {
			protocol, confirmable, rto, _ := protoPreset(p)
			for i := range c.Flows {
				f := &c.Flows[i]
				f.Protocol = protocol
				f.Confirmable = confirmable
				f.RTO = rto
				if protocol != flows.ProtocolTCP {
					// TCP-only knobs have nothing to bind to.
					f.Variant, f.Profile, f.Trace = "", "", false
					f.WindowSegs, f.Pacing = 0, nil
				}
			}
		}})
	}
	add(protos)
	return out
}

// Expand returns the cartesian grid of cells a sweep spec describes, in
// deterministic order: axes in Sweep field order, the last-listed axis
// varying fastest. A spec without a sweep expands to itself. Each cell
// drops the Sweep block, appends "/axis=value" per coordinate to its
// name, records the coordinates in Point, and — when SeedStep is set —
// offsets every seed by cellIndex·SeedStep.
func (s *Spec) Expand() []*Spec {
	if s.Sweep == nil || s.Sweep.empty() {
		return []*Spec{s}
	}
	axes := s.Sweep.axes()
	var cells []*Spec
	picked := make([]sweepOpt, len(axes))
	var rec func(depth int)
	rec = func(depth int) {
		if depth == len(axes) {
			cells = append(cells, s.cell(len(cells), picked))
			return
		}
		for _, o := range axes[depth] {
			picked[depth] = o
			rec(depth + 1)
		}
	}
	rec(0)
	return cells
}

// cell instantiates one expansion point of a sweep spec.
func (s *Spec) cell(i int, picked []sweepOpt) *Spec {
	c := *s
	c.Sweep = nil
	c.Point = nil
	c.Flows = append([]FlowSpec(nil), s.Flows...)
	c.Nodes = append([]NodeSpec(nil), s.Nodes...)
	c.Seeds = append([]int64(nil), s.Seeds...)
	if step := s.Sweep.SeedStep; step != 0 {
		if len(c.Seeds) == 0 {
			c.Seeds = []int64{1}
		}
		for k := range c.Seeds {
			c.Seeds[k] += int64(i) * step
		}
	}
	parts := make([]string, 0, len(picked))
	for _, o := range picked {
		o.apply(&c)
		c.Point = append(c.Point, o.av)
		parts = append(parts, o.av.Axis+"="+o.av.Value)
	}
	if len(parts) > 0 {
		c.Name = s.Name + "/" + strings.Join(parts, "/")
	}
	for i := range s.Sweep.Overrides {
		if ov := &s.Sweep.Overrides[i]; ov.matches(c.Point) {
			ov.apply(&c)
		}
	}
	return &c
}

// validateSweep checks the axis values themselves; the expanded cells
// are validated individually afterwards.
func (s *Spec) validateSweep() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("scenario %q: sweep: %s", s.Name, fmt.Sprintf(format, args...))
	}
	sw := s.Sweep
	if len(sw.Hops) > 0 && s.Topology.Kind != TopoChain && s.Topology.Kind != TopoTwinLeaf {
		return bad("hops axis needs a chain or twinleaf topology, not %q", s.Topology.Kind)
	}
	for _, h := range sw.Hops {
		if h < 1 {
			return bad("hops value %d < 1", h)
		}
	}
	if len(sw.Devices) > 0 && s.Topology.Kind != TopoStar && s.Topology.Kind != TopoChain {
		return bad("devices axis needs a star or chain topology, not %q", s.Topology.Kind)
	}
	for _, d := range sw.Devices {
		if d < 1 {
			return bad("devices value %d < 1", d)
		}
	}
	if len(sw.Nodes) > 0 && s.Topology.Kind != TopoRandomGeometric {
		return bad("nodes axis needs a random_geometric topology, not %q (chain/star sizes sweep via hops/devices)", s.Topology.Kind)
	}
	for _, n := range sw.Nodes {
		if n < 2 {
			return bad("nodes value %d < 2", n)
		}
	}
	for _, p := range sw.PER {
		if p < 0 || p >= 1 {
			return bad("per value %v out of range [0,1)", p)
		}
	}
	for _, p := range sw.InjectedLoss {
		if p < 0 || p >= 1 {
			return bad("injected_loss value %v out of range [0,1)", p)
		}
	}
	for _, v := range sw.Interference {
		if v < 0 {
			return bad("negative interference value %v", v)
		}
	}
	for _, d := range sw.RetryDelay {
		if d < 0 {
			return bad("negative retry_delay value %v", d)
		}
	}
	for _, f := range sw.SegFrames {
		if f < 1 {
			return bad("seg_frames value %d < 1", f)
		}
	}
	for _, w := range sw.WindowSegs {
		if w < 1 {
			return bad("window_segs value %d < 1", w)
		}
	}
	for _, v := range sw.Variants {
		if _, err := cc.Parse(v); err != nil {
			return bad("%v", err)
		}
	}
	for _, p := range sw.Protocols {
		if _, _, _, ok := protoPreset(p); !ok {
			return bad("unknown protocol preset %q (have tcp, udp, coap, coap-non, cocoa)", p)
		}
	}
	// Collect the exact coordinate strings each populated axis will
	// expand to, so a mistyped override value ("04", "40 ms") is a
	// validation error instead of a silently inert patch.
	axisValues := map[string]map[string]bool{}
	for _, dim := range sw.axes() {
		for _, opt := range dim {
			vs := axisValues[opt.av.Axis]
			if vs == nil {
				vs = map[string]bool{}
				axisValues[opt.av.Axis] = vs
			}
			vs[opt.av.Value] = true
		}
	}
	for i, ov := range sw.Overrides {
		if len(ov.When) == 0 {
			return bad("override %d has an empty when-block", i)
		}
		for axis, want := range ov.When {
			vs := axisValues[axis]
			if vs == nil {
				return bad("override %d conditions on axis %q, which the sweep does not populate (keys: hops, dev, n, per, loss, d, mss, w, cc, proto)", i, axis)
			}
			if !vs[want] {
				have := make([]string, 0, len(vs))
				for v := range vs {
					have = append(have, v)
				}
				sort.Strings(have)
				return bad("override %d: axis %q never takes value %q (cells: %s)",
					i, axis, want, strings.Join(have, ", "))
			}
		}
		if ov.Set.WindowSegs < 0 || ov.Set.SegFrames < 0 {
			return bad("override %d: negative window_segs/seg_frames", i)
		}
		if ov.Set.PER != nil && (*ov.Set.PER < 0 || *ov.Set.PER >= 1) {
			return bad("override %d: per %v out of range [0,1)", i, *ov.Set.PER)
		}
		if ov.Set.RetryDelay != nil && *ov.Set.RetryDelay < 0 {
			return bad("override %d: negative retry_delay", i)
		}
		if ov.Set.Variant != "" {
			if _, err := cc.Parse(ov.Set.Variant); err != nil {
				return bad("override %d: %v", i, err)
			}
		}
	}
	return nil
}

// nodeCount returns the mesh node count the topology will instantiate.
func (t TopologySpec) nodeCount() int {
	switch t.Kind {
	case TopoChain, TopoStar, TopoRandomGeometric:
		return t.Nodes
	case TopoOffice:
		return 15
	case TopoTwinLeaf:
		return t.PathHops + 2
	case TopoTree:
		return mesh.TreeNodes(t.Depth, t.Fanout)
	}
	return 0
}

// Validate checks the spec for structural errors — unknown kinds,
// out-of-range node ids, bad variants — so a Runner never panics
// mid-simulation on a malformed file.
func (s *Spec) Validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("scenario %q: %s", s.Name, fmt.Sprintf(format, args...))
	}
	if s.Sweep != nil && !s.Sweep.empty() {
		// A sweep spec is checked axis-by-axis, then cell-by-cell: the
		// base topology may be incomplete (a hops axis supplies the node
		// count), so only the expanded cells are fully validated.
		if err := s.validateSweep(); err != nil {
			return err
		}
		for _, c := range s.Expand() {
			if err := c.Validate(); err != nil {
				return err
			}
		}
		return nil
	}
	switch s.Topology.Kind {
	case TopoChain, TopoStar:
		if s.Topology.Nodes < 2 {
			return bad("topology %s needs nodes >= 2", s.Topology.Kind)
		}
	case TopoOffice:
	case TopoTwinLeaf:
		if s.Topology.PathHops < 1 {
			return bad("topology twinleaf needs path_hops >= 1")
		}
	case TopoRandomGeometric:
		if s.Topology.Nodes < 2 {
			return bad("topology random_geometric needs nodes >= 2")
		}
		if s.Topology.Density < 0 {
			return bad("topology random_geometric: negative density")
		}
	case TopoTree:
		if s.Topology.Depth < 1 || s.Topology.Fanout < 1 {
			return bad("topology tree needs depth >= 1 and fanout >= 1")
		}
	default:
		return bad("unknown topology kind %q (have chain, star, office, twinleaf, random_geometric, tree)", s.Topology.Kind)
	}
	n := s.Topology.nodeCount()
	if len(s.Flows) == 0 {
		return bad("no flows")
	}
	checkRef := func(r NodeRef) error {
		if r.Host || r.End || r.Gateway {
			return nil
		}
		if r.ID < 0 || r.ID >= n {
			return bad("node %d out of range (topology has %d nodes)", r.ID, n)
		}
		return nil
	}
	// The gateway's terminator ports live on node 0; a direct flow
	// sinking there would silently displace the shared listeners.
	gwPorts := map[int]bool{}
	if s.Gateway != nil {
		tcpPort, coapPort := int(s.Gateway.TCPPort), int(s.Gateway.CoAPPort)
		if tcpPort == 0 {
			tcpPort = gateway.DefaultTCPPort
		}
		if coapPort == 0 {
			coapPort = gateway.DefaultCoAPPort
		}
		gwPorts[tcpPort] = true
		gwPorts[coapPort] = true
	}
	sinks := map[string]int{}  // "to:port" → flow index
	gwSrc := map[string]int{}  // gateway-flow source → flow index
	perDevice, gwFlows := 0, 0 // gateway-flow census
	for i, f := range s.Flows {
		if err := checkRef(f.From); err != nil {
			return err
		}
		if err := checkRef(f.To); err != nil {
			return err
		}
		if f.From == f.To {
			return bad("flow %d: from == to (%s)", i, f.From)
		}
		if f.From.Host && f.To.Host {
			return bad("flow %d: both endpoints are the host", i)
		}
		if f.From.Gateway {
			return bad("flow %d: \"gateway\" is a sink reference (devices send up to the gateway tier)", i)
		}
		if f.To.Gateway {
			if s.Gateway == nil {
				return bad("flow %d: \"to\": \"gateway\" needs a gateway block", i)
			}
			if f.From.Host {
				return bad("flow %d: gateway flows originate at mesh devices, not the host", i)
			}
			switch flows.Canonical(f.Protocol) {
			case flows.ProtocolTCP, flows.ProtocolCoAP:
			default:
				return bad("flow %d: gateway flows need protocol tcp or coap, not %q", i, flows.Canonical(f.Protocol))
			}
			switch f.Pattern {
			case "", PatternAnemometer:
			default:
				return bad("flow %d: gateway flows carry telemetry (anemometer), not pattern %q", i, f.Pattern)
			}
			if f.Port != 0 {
				return bad("flow %d: gateway flows use the gateway's terminator ports; drop \"port\"", i)
			}
			// The gateway credits deliveries per source address; two flows
			// from one device would collide in its registration table.
			gwFlows++
			if f.PerDevice {
				perDevice++
			} else if prev, dup := gwSrc[f.From.String()]; dup {
				return bad("flows %d and %d both terminate device %s at the gateway (one gateway flow per device)", prev, i, f.From)
			} else {
				gwSrc[f.From.String()] = i
			}
		}
		if f.PerDevice && !f.To.Gateway {
			return bad("flow %d: per_device needs \"to\": \"gateway\"", i)
		}
		if f.Stride < 0 {
			return bad("flow %d: negative stride", i)
		}
		if f.Stride > 1 && !f.PerDevice {
			return bad("flow %d: stride only thins a per_device template", i)
		}
		if _, err := cc.Parse(f.Variant); err != nil {
			return bad("flow %d: %v", i, err)
		}
		if f.Profile != "" {
			if _, err := uip.ParseProfile(f.Profile); err != nil {
				return bad("flow %d: %v", i, err)
			}
		}
		switch f.Pattern {
		case "", PatternBulk, PatternOnOff, PatternAnemometer:
		default:
			return bad("flow %d: unknown pattern %q (have bulk, onoff, anemometer)", i, f.Pattern)
		}
		if _, ok := flows.Lookup(f.Protocol); !ok {
			return bad("flow %d: unknown protocol %q (have %s)", i, f.Protocol,
				strings.Join(flows.Protocols(), ", "))
		}
		if flows.Canonical(f.Protocol) != flows.ProtocolTCP {
			// Non-TCP drivers carry telemetry only; the TCP-specific
			// knobs have nothing to bind to.
			if f.Pattern == PatternBulk || f.Pattern == PatternOnOff {
				return bad("flow %d: pattern %q needs protocol tcp (udp/coap flows carry the anemometer pattern)", i, f.Pattern)
			}
			if f.Variant != "" || f.Profile != "" || f.Trace || f.WindowSegs != 0 || f.Pacing != nil {
				return bad("flow %d: variant/profile/trace/window_segs/pacing are TCP knobs; protocol is %q", i, f.Protocol)
			}
		}
		if f.Protocol != "coap" && (f.Confirmable != nil || f.RTO != "") {
			return bad("flow %d: confirmable/rto are coap knobs; protocol is %q", i, flows.Canonical(f.Protocol))
		}
		switch f.RTO {
		case "", "default", "cocoa":
		default:
			return bad("flow %d: unknown rto policy %q (have default, cocoa)", i, f.RTO)
		}
		if f.WindowSegs < 0 {
			return bad("flow %d: negative window_segs", i)
		}
		if f.On < 0 || f.Off < 0 || f.Interval < 0 {
			return bad("flow %d: negative on/off/interval", i)
		}
		// Two flows listening on the same node:port would silently
		// replace each other's sink (tcplp.Stack.Listen keeps the last
		// listener), crediting one flow with both streams. Gateway flows
		// share the gateway's terminators by design and skip the check.
		if f.To.Gateway {
			continue
		}
		port := int(f.Port)
		if port == 0 {
			port = 80 + i // the default withDefaults will assign
		}
		if !f.To.Host && !f.To.End && f.To.ID == 0 && gwPorts[port] {
			return bad("flow %d: port %d on node 0 is a gateway terminator port", i, port)
		}
		key := fmt.Sprintf("%s:%d", f.To, port)
		if prev, dup := sinks[key]; dup {
			return bad("flows %d and %d share sink %s", prev, i, key)
		}
		sinks[key] = i
	}
	if perDevice > 1 || (perDevice > 0 && gwFlows > perDevice) {
		return bad("a per_device gateway template must be the only gateway flow (its replicas cover every device)")
	}
	for _, ns := range s.Nodes {
		if ns.ID <= 0 || ns.ID >= n {
			return bad("node spec id %d out of range (1..%d)", ns.ID, n-1)
		}
		if ns.SleepInterval < 0 || (ns.FastInterval != nil && *ns.FastInterval < 0) {
			return bad("node %d: negative sleep/fast interval", ns.ID)
		}
		if ns.MinInterval < 0 || ns.MaxInterval < 0 {
			return bad("node %d: negative min/max interval", ns.ID)
		}
	}
	if a := s.AllNodes; a != nil {
		if a.SleepInterval < 0 || (a.FastInterval != nil && *a.FastInterval < 0) {
			return bad("all_nodes: negative sleep/fast interval")
		}
		if a.MinInterval < 0 || a.MaxInterval < 0 {
			return bad("all_nodes: negative min/max interval")
		}
	}
	if g := s.Gateway; g != nil {
		if g.MaxConns < 0 {
			return bad("gateway: negative max_conns")
		}
		if g.IdleTimeout < 0 {
			return bad("gateway: negative idle_timeout")
		}
		if g.WAN.BandwidthKbps < 0 {
			return bad("gateway: negative wan bandwidth_kbps")
		}
		if g.WAN.RTT < 0 {
			return bad("gateway: negative wan rtt")
		}
		if g.WAN.Loss < 0 || g.WAN.Loss >= 1 {
			return bad("gateway: wan loss %v out of range [0,1)", g.WAN.Loss)
		}
		if g.WAN.QueueCap < 0 {
			return bad("gateway: negative wan queue_cap")
		}
	}
	if s.Net.PER < 0 || s.Net.PER >= 1 {
		return bad("per %v out of range [0,1)", s.Net.PER)
	}
	if s.Net.InjectedLoss < 0 || s.Net.InjectedLoss >= 1 {
		return bad("injected_loss %v out of range [0,1)", s.Net.InjectedLoss)
	}
	if s.Net.Interference < 0 {
		return bad("negative interference peak")
	}
	if s.Net.PhyWorkers < 0 {
		return bad("negative phy_workers")
	}
	if s.Net.RetryDelay != nil && *s.Net.RetryDelay < 0 {
		return bad("negative retry_delay")
	}
	if s.Net.WireDelay < 0 {
		return bad("negative wire_delay")
	}
	if s.Duration < 0 || s.Warmup < 0 {
		return bad("negative duration")
	}
	if s.DCSample < 0 || s.IdleSettle < 0 || s.IdleWindow < 0 {
		return bad("negative dc_sample/idle_settle/idle_window")
	}
	return nil
}

// withDefaults returns a copy of the spec with defaults applied:
// measurement schedule, seeds, flow labels and ports. A zero warmup is
// honored (measure from t=0); zero values are only replaced where zero
// is meaningless (duration, interval, both onoff periods omitted).
func (s *Spec) withDefaults() *Spec {
	out := *s
	if out.Duration == 0 {
		out.Duration = Duration(60 * sim.Second)
	}
	if len(out.Seeds) == 0 {
		out.Seeds = []int64{1}
	}
	// Materialize the all_nodes role template for every mesh node
	// without an explicit entry (in id order, deterministically).
	out.Nodes = append([]NodeSpec(nil), s.Nodes...)
	if s.AllNodes != nil {
		have := map[int]bool{}
		for _, ns := range out.Nodes {
			have[ns.ID] = true
		}
		for id := 1; id < out.Topology.nodeCount(); id++ {
			if have[id] {
				continue
			}
			ns := *s.AllNodes
			ns.ID = id
			out.Nodes = append(out.Nodes, ns)
		}
		out.AllNodes = nil
	}
	// Replicate per_device flow templates across the device fleet before
	// per-flow defaulting, so each replica gets its own label.
	out.Flows = make([]FlowSpec, 0, len(s.Flows))
	for _, f := range s.Flows {
		if !f.PerDevice {
			out.Flows = append(out.Flows, f)
			continue
		}
		step := f.Stride
		if step < 1 {
			step = 1
		}
		for id := 1; id < out.Topology.nodeCount(); id += step {
			r := f
			r.PerDevice = false
			r.Stride = 0
			r.From = NodeID(id)
			if f.Label != "" {
				r.Label = fmt.Sprintf("%s-%d", f.Label, id)
			}
			out.Flows = append(out.Flows, r)
		}
	}
	for i := range out.Flows {
		f := &out.Flows[i]
		if f.Port == 0 && !f.To.Gateway {
			// Gateway flows keep port 0: they share the gateway's
			// terminator ports instead of a private sink.
			f.Port = uint16(80 + i)
		}
		if f.Label == "" {
			f.Label = fmt.Sprintf("%s->%s", f.From, f.To)
		}
		if f.Pattern == "" {
			// Non-TCP protocols and gateway flows carry telemetry; direct
			// TCP defaults to a saturating stream.
			if f.To.Gateway || flows.Canonical(f.Protocol) != flows.ProtocolTCP {
				f.Pattern = PatternAnemometer
			} else {
				f.Pattern = PatternBulk
			}
		}
		if f.Pattern == PatternOnOff && f.On == 0 && f.Off == 0 {
			f.On = Duration(5 * sim.Second)
			f.Off = Duration(5 * sim.Second)
		}
		if f.Pattern == PatternAnemometer && f.Interval == 0 {
			f.Interval = Duration(sim.Second)
		}
	}
	return &out
}

// needsHost reports whether the wired cloud host must be attached.
func (s *Spec) needsHost() bool {
	if s.Net.AttachHost {
		return true
	}
	for _, f := range s.Flows {
		if f.From.Host || f.To.Host {
			return true
		}
	}
	return false
}
