package scenario

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"tcplp/internal/obs"
	"tcplp/internal/sim"
)

// obsSpec is a short anemometer run over a 2-hop chain: small enough to
// execute in milliseconds, busy enough to exercise every layer hook.
func obsSpec() *Spec {
	return &Spec{
		Name:     "obs-probe",
		Topology: TopologySpec{Kind: TopoChain, Nodes: 3},
		Flows: []FlowSpec{{
			Label: "anem", From: NodeID(2), To: NodeID(0), Port: 80,
			Pattern:  PatternAnemometer,
			Interval: Duration(500 * sim.Millisecond), Batch: 2,
		}},
		Warmup:   Duration(2 * sim.Second),
		Duration: Duration(20 * sim.Second),
	}
}

// TestObsBitIdentity pins the tentpole contract: attaching pure sinks
// (NDJSON events, pcap frames, the flight recorder ring) must not
// change a run's Result in any field — hooks read state, never draw
// RNG or schedule events. The metrics sampler and stall checker are
// deliberately left off here; those schedule engine events and are
// documented to change Result.Events (only).
func TestObsBitIdentity(t *testing.T) {
	base, err := RunOneObs(obsSpec(), 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	var events, frames bytes.Buffer
	pw, err := obs.NewPcapWriter(&frames)
	if err != nil {
		t.Fatal(err)
	}
	oc := &ObsConfig{
		Events: obs.NewNDJSONWriter(&events),
		Pcap:   pw,
		Flight: &FlightConfig{RingCap: 64}, // no stall window, no dump writer
	}
	traced, err := RunOneObs(obsSpec(), 42, oc)
	if err != nil {
		t.Fatal(err)
	}
	bj, _ := json.Marshal(base)
	tj, _ := json.Marshal(traced)
	if !bytes.Equal(bj, tj) {
		t.Errorf("tracing perturbed the run:\ndisabled: %s\nenabled:  %s", bj, tj)
	}
	if events.Len() == 0 {
		t.Error("no NDJSON events captured")
	}
	if frames.Len() <= 60 { // SHB+IDB only
		t.Error("no frames captured to pcapng")
	}
	// Every captured line is valid JSON carrying the run tag.
	for _, line := range strings.Split(strings.TrimSpace(events.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if m["run"] != "obs-probe" || m["seed"] != 42.0 {
			t.Fatalf("line missing run/seed tag: %q", line)
		}
	}
}

// TestObsLayersAlwaysPopulated: Result.Layers is computed from plain
// counters, so it is present and identical with tracing on or off.
func TestObsLayersAlwaysPopulated(t *testing.T) {
	res, err := RunOne(obsSpec(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Layers) == 0 {
		t.Fatal("Result.Layers empty on an untraced run")
	}
	if res.layer("phy", "frames_sent") <= 0 {
		t.Errorf("phy.frames_sent = %v, want > 0", res.layer("phy", "frames_sent"))
	}
	if res.layer("tcp", "segs_in") <= 0 {
		t.Errorf("tcp.segs_in = %v, want > 0", res.layer("tcp", "segs_in"))
	}
}

// TestObsStallDump forces a black-hole flow — every packet the border
// router forwards is dropped — and checks the stall checker dumps the
// flow's ring mid-run with the stall reason.
func TestObsStallDump(t *testing.T) {
	spec := &Spec{
		Name:     "obs-stall",
		Topology: TopologySpec{Kind: TopoStar, Nodes: 3},
		Net:      NetSpec{InjectedLoss: 0.999},
		Flows: []FlowSpec{{
			Label: "doomed", From: NodeID(1), To: Host(),
			Pattern:  PatternAnemometer,
			Interval: Duration(1 * sim.Second), Batch: 2,
		}},
		Warmup:   Duration(1 * sim.Second),
		Duration: Duration(30 * sim.Second),
	}
	var dumps bytes.Buffer
	oc := &ObsConfig{Flight: &FlightConfig{
		RingCap:     64,
		StallWindow: 5 * sim.Second,
		Out:         &dumps,
	}}
	if _, err := RunOneObs(spec, 3, oc); err != nil {
		t.Fatal(err)
	}
	out := dumps.String()
	if !strings.Contains(out, "flight recorder") || !strings.Contains(out, "stalled: no progress") {
		t.Fatalf("stall dump missing, got:\n%s", out)
	}
	if !strings.Contains(out, `flow "doomed"`) {
		t.Errorf("dump not attributed to the flow:\n%s", out)
	}
}

// TestObsLowDeliveryDump: with the stall checker off, a flow ending the
// run under the delivery threshold dumps at collect time instead.
func TestObsLowDeliveryDump(t *testing.T) {
	spec := &Spec{
		Name:     "obs-lowdeliv",
		Topology: TopologySpec{Kind: TopoStar, Nodes: 3},
		Net:      NetSpec{InjectedLoss: 0.999},
		Flows: []FlowSpec{{
			Label: "doomed", From: NodeID(1), To: Host(),
			Pattern:  PatternAnemometer,
			Interval: Duration(1 * sim.Second), Batch: 2,
		}},
		Warmup:   Duration(1 * sim.Second),
		Duration: Duration(15 * sim.Second),
	}
	var dumps bytes.Buffer
	oc := &ObsConfig{Flight: &FlightConfig{
		RingCap:           64,
		DeliveryThreshold: 0.5,
		Out:               &dumps,
	}}
	res, err := RunOneObs(spec, 3, oc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flows[0].DeliveryRatio >= 0.5 {
		t.Fatalf("black-hole flow delivered %.3f; test premise broken", res.Flows[0].DeliveryRatio)
	}
	if !strings.Contains(dumps.String(), "delivery ratio") {
		t.Fatalf("low-delivery dump missing, got:\n%s", dumps.String())
	}
}

// TestObsMetricsSampler: the -metrics-interval path emits one "metrics"
// NDJSON record per period of the measurement window.
func TestObsMetricsSampler(t *testing.T) {
	var events bytes.Buffer
	oc := &ObsConfig{
		Events:          obs.NewNDJSONWriter(&events),
		MetricsInterval: 5 * sim.Second,
	}
	if _, err := RunOneObs(obsSpec(), 42, oc); err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, line := range strings.Split(events.String(), "\n") {
		if strings.Contains(line, `"type":"metrics"`) {
			n++
		}
	}
	if n != 4 { // 20 s window / 5 s period
		t.Errorf("got %d metrics samples, want 4", n)
	}
}
