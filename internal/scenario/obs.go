package scenario

import (
	"fmt"
	"io"

	"tcplp/internal/obs"
	"tcplp/internal/obs/journey"
	"tcplp/internal/sim"
)

// FlightConfig parameterizes the per-flow flight recorder: a bounded
// ring of each flow's most recent trace events, dumped when something
// goes wrong.
type FlightConfig struct {
	// RingCap bounds each flow's event ring (<=0 selects 256).
	RingCap int
	// StallWindow enables the in-run stall checker: a flow that makes no
	// progress (no received segment / completed exchange) for a full
	// window gets its ring dumped once. It approximates the k·RTO stall
	// criterion without per-flow RTO introspection. Zero disables the
	// checker. Note the checker schedules engine events, so it changes
	// Result.Events (never the protocol outcome).
	StallWindow sim.Duration
	// DeliveryThreshold dumps a telemetry flow's ring at collect time
	// when its delivery ratio lands below the threshold (0 disables).
	// This path schedules nothing.
	DeliveryThreshold float64
	// Out receives dumps; wrap a shared writer in obs.NewDumpWriter when
	// runs execute in parallel.
	Out io.Writer
}

// ObsConfig switches on cross-layer observability for every run a
// Runner executes. The zero/nil config is fully disabled: no trace is
// threaded and every layer hook stays a nil check.
type ObsConfig struct {
	// Events receives the structured NDJSON event trace, tagged with
	// each run's name and seed.
	Events *obs.NDJSONWriter
	// Pcap captures every 802.15.4 frame put on air (pcapng,
	// Wireshark-openable).
	Pcap *obs.PcapWriter
	// MetricsInterval samples the per-layer metric registry into Events
	// as NDJSON "metrics" records at this period (0 disables; requires
	// Events). The sampler schedules engine events, so it changes
	// Result.Events — never the protocol outcome.
	MetricsInterval sim.Duration
	// Flight enables the per-flow flight recorder.
	Flight *FlightConfig
	// Journey records every run's events in memory, reconstructs
	// per-reading causal span trees, and attaches each telemetry flow's
	// critical-path latency attribution to its FlowResult.
	Journey bool
	// JourneyOut streams each run's span trees as Chrome trace events
	// (chrome://tracing / Perfetto-loadable). Implies Journey.
	JourneyOut *journey.ChromeWriter
	// OnJourney, when set with Journey, receives each run's analyzed
	// report at collect time — the conformance checker's hook. Called
	// from worker goroutines when runs execute in parallel.
	OnJourney func(name string, seed int64, rep *journey.Report)
	// EventLayers filters the NDJSON event stream to these layers
	// (obs.Kind.Layer() names; empty keeps every layer).
	EventLayers []string
	// EventFlows filters the NDJSON event stream to events from the
	// named flows' source nodes (flow labels; empty keeps every node).
	EventFlows []string
}

// enabled reports whether the config asks for any instrumentation.
func (oc *ObsConfig) enabled() bool {
	return oc != nil && (oc.Events != nil || oc.Pcap != nil || oc.Flight != nil ||
		oc.Journey || oc.JourneyOut != nil)
}

// journeyOn reports whether journey reconstruction is requested.
func (oc *ObsConfig) journeyOn() bool {
	return oc != nil && (oc.Journey || oc.JourneyOut != nil)
}

// buildTrace assembles the per-run trace fan-out. The NDJSON sink tags
// records with (run, seed) so parallel runs sharing one writer stay
// attributable.
func (rc *runContext) buildTrace(oc *ObsConfig) {
	if !oc.enabled() {
		return
	}
	rc.oc = oc
	tr := obs.NewTrace()
	if oc.Events != nil {
		var sink obs.Sink = oc.Events.Sink(rc.spec.Name, rc.seed)
		if len(oc.EventLayers) > 0 || len(oc.EventFlows) > 0 {
			fs := obs.NewFilterSink(sink, oc.EventLayers)
			rc.eventFilter = fs
			sink = fs
		}
		tr.AddSink(sink)
	}
	if oc.journeyOn() {
		rc.recorder = journey.NewRecorder()
		tr.AddSink(rc.recorder)
	}
	if oc.Pcap != nil {
		tr.AddFrameSink(oc.Pcap)
	}
	if fc := oc.Flight; fc != nil {
		rc.flight = obs.NewFlightRecorder(fc.RingCap)
		tr.AddSink(rc.flight)
	}
	rc.trace = tr
}

// layerRegistry aggregates every layer's counters across the run's
// nodes into the named-metric registry. It reads existing statistics —
// no trace required — so Result.Layers is identical whether or not
// tracing is enabled, and deterministic per (spec, seed).
func (rc *runContext) layerRegistry() *obs.Registry {
	reg := obs.NewRegistry()
	for _, n := range rc.net.Nodes {
		if n.Radio != nil {
			reg.AddUint("phy", "frames_sent", n.Radio.FramesSent())
			reg.AddUint("phy", "frames_recv", n.Radio.FramesReceived())
			reg.AddUint("phy", "rx_dropped", n.Radio.ReceptionsDropped())
		}
		if n.Mac != nil {
			st := n.Mac.Stats
			reg.AddUint("mac", "data_sent", st.DataSent)
			reg.AddUint("mac", "data_dropped", st.DataDropped)
			reg.AddUint("mac", "retries", st.Retries)
			reg.AddUint("mac", "csma_failures", st.CSMAFailures)
			reg.AddUint("mac", "duplicates", st.Duplicates)
		}
		reg.AddUint("sixlowpan", "reassembly_timeouts", n.ReassemblyTimeouts())
		reg.AddUint("ip", "packets_sent", n.Stats.PacketsSent)
		reg.AddUint("ip", "packets_delivered", n.Stats.PacketsDelivered)
		reg.AddUint("ip", "fragments_fwd", n.Stats.FragmentsFwd)
		reg.AddUint("ip", "queue_drops", n.Stats.QueueDrops)
		reg.AddUint("ip", "red_drops", n.Stats.REDDrops)
		reg.AddUint("ip", "link_failures", n.Stats.LinkFailures)
		ts := n.TCP.Stats
		reg.AddUint("tcp", "segs_in", ts.SegsIn)
		reg.AddUint("tcp", "no_socket", ts.NoSocket)
		reg.AddUint("tcp", "rsts_sent", ts.RSTsSent)
		reg.AddUint("tcp", "conns_opened", ts.ConnsOpened)
		reg.AddUint("tcp", "conns_accepted", ts.ConnsAccepted)
	}
	if h := rc.net.Host; h != nil {
		reg.AddUint("sixlowpan", "reassembly_timeouts", h.ReassemblyTimeouts())
		reg.AddUint("ip", "packets_sent", h.Stats.PacketsSent)
		reg.AddUint("ip", "packets_delivered", h.Stats.PacketsDelivered)
		ts := h.TCP.Stats
		reg.AddUint("tcp", "segs_in", ts.SegsIn)
		reg.AddUint("tcp", "no_socket", ts.NoSocket)
		reg.AddUint("tcp", "rsts_sent", ts.RSTsSent)
		reg.AddUint("tcp", "conns_opened", ts.ConnsOpened)
		reg.AddUint("tcp", "conns_accepted", ts.ConnsAccepted)
	}
	if rc.gw != nil {
		gs, ws := rc.gw.Stats, rc.gw.WAN().Stats
		reg.AddUint("gateway", "accepted", gs.Accepted)
		reg.AddUint("gateway", "posts", gs.Posts)
		reg.AddUint("gateway", "reused", gs.Reused)
		reg.AddUint("gateway", "evicted", gs.Evicted)
		reg.AddUint("gateway", "readings_in", gs.ReadingsIn)
		reg.AddUint("gateway", "readings_out", gs.ReadingsOut)
		reg.AddUint("gateway", "readings_lost", gs.ReadingsLost)
		reg.AddUint("wan", "sent", ws.Sent)
		reg.AddUint("wan", "delivered", ws.Delivered)
		reg.AddUint("wan", "queue_drops", ws.QueueDrops)
		reg.AddUint("wan", "loss_drops", ws.LossDrops)
		reg.AddUint("wan", "bytes_sent", ws.BytesSent)
	}
	return reg
}

// scheduleMetricsSamples arms the periodic layer-metric sampler: every
// MetricsInterval of the measurement window, snapshot the registry into
// the NDJSON writer as a "metrics" record.
func (rc *runContext) scheduleMetricsSamples() {
	oc := rc.oc
	if oc == nil || oc.Events == nil || oc.MetricsInterval <= 0 {
		return
	}
	period := oc.MetricsInterval
	n := int(rc.spec.Duration.D() / period)
	for i := 1; i <= n; i++ {
		rc.net.Eng.Schedule(sim.Duration(i)*period, func() {
			oc.Events.Metrics(rc.spec.Name, rc.seed, int64(rc.net.Eng.Now()),
				rc.layerRegistry().Layers())
		})
	}
}

// scheduleStallChecks arms the flight recorder's in-run stall checker:
// every StallWindow, a bound flow whose last progress event is at least
// one full window old gets its ring dumped (once per run).
func (rc *runContext) scheduleStallChecks() {
	oc := rc.oc
	if oc == nil || oc.Flight == nil || oc.Flight.StallWindow <= 0 ||
		oc.Flight.Out == nil || rc.flight == nil {
		return
	}
	w := oc.Flight.StallWindow
	start := rc.net.Eng.Now()
	n := int(rc.spec.Duration.D() / w)
	for i := 1; i <= n; i++ {
		rc.net.Eng.Schedule(sim.Duration(i)*w, func() { rc.checkStalls(start, w) })
	}
}

func (rc *runContext) checkStalls(start sim.Time, w sim.Duration) {
	now := rc.net.Eng.Now()
	for _, fr := range rc.flows {
		node := fr.src.ID
		if rc.stallDumped == nil {
			rc.stallDumped = map[int]bool{}
		}
		if rc.stallDumped[node] {
			continue
		}
		last := rc.flight.LastProgress(node)
		if last < start {
			last = start // run start is the baseline before any progress
		}
		if now.Sub(last) >= w {
			rc.stallDumped[node] = true
			rc.flight.Dump(rc.oc.Flight.Out, node, rc.spec.Name, rc.seed,
				fmt.Sprintf("stalled: no progress for %d us (window %d us)",
					int64(now.Sub(last)), int64(w)))
		}
	}
}

// dumpLowDelivery is the collect-time flight check: a telemetry flow
// ending the run below the delivery threshold dumps its ring (unless
// the stall checker already did).
func (rc *runContext) dumpLowDelivery(fr *flowRun, fres *FlowResult) {
	oc := rc.oc
	if oc == nil || oc.Flight == nil || oc.Flight.Out == nil || rc.flight == nil {
		return
	}
	th := oc.Flight.DeliveryThreshold
	if th <= 0 || fres.Generated == 0 || fres.DeliveryRatio >= th {
		return
	}
	node := fr.src.ID
	if rc.stallDumped[node] {
		return
	}
	if rc.stallDumped == nil {
		rc.stallDumped = map[int]bool{}
	}
	rc.stallDumped[node] = true
	rc.flight.Dump(oc.Flight.Out, node, rc.spec.Name, rc.seed,
		fmt.Sprintf("delivery ratio %.3f below threshold %.3f", fres.DeliveryRatio, th))
}
