package scenario

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"tcplp/internal/sim"
	"tcplp/internal/stack"
	"tcplp/internal/tcplp/cc"
)

// twinMixed is the twin-leaf mixed-variant scenario of the ROADMAP's
// fairness question: paced BBR vs NewReno at w=7 over a shared 3-hop
// relay path.
func twinMixed(seeds ...int64) *Spec {
	return &Spec{
		Name:     "twinleaf-mixed-w7",
		Topology: TopologySpec{Kind: TopoTwinLeaf, PathHops: 3},
		Net:      NetSpec{WindowSegs: 7},
		Flows: []FlowSpec{
			{Label: "bbr", From: NodeID(3), To: NodeID(0), Port: 80, Variant: "bbr"},
			{Label: "newreno", From: NodeID(4), To: NodeID(0), Port: 81, Variant: "newreno"},
		},
		Warmup:   Duration(10 * sim.Second),
		Duration: Duration(40 * sim.Second),
		Seeds:    seeds,
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	spec := twinMixed(301, 302)
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseSpecs(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 1 || !reflect.DeepEqual(parsed[0], spec) {
		t.Fatalf("round trip mismatch:\n  in:  %+v\n  out: %+v", spec, parsed[0])
	}
}

func TestDurationJSON(t *testing.T) {
	var d Duration
	for in, want := range map[string]sim.Duration{
		`"90s"`:   90 * sim.Second,
		`"250ms"`: 250 * sim.Millisecond,
		`"0s"`:    0,
		`1.5`:     1500 * sim.Millisecond, // bare numbers are seconds
	} {
		if err := json.Unmarshal([]byte(in), &d); err != nil {
			t.Fatalf("%s: %v", in, err)
		}
		if d.D() != want {
			t.Fatalf("%s = %v, want %v", in, d.D(), want)
		}
	}
	if err := json.Unmarshal([]byte(`"fast"`), &d); err == nil {
		t.Fatal("bad duration accepted")
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"unknown topology", func(s *Spec) { s.Topology.Kind = "ring" }, "unknown topology"},
		{"no flows", func(s *Spec) { s.Flows = nil }, "no flows"},
		{"node out of range", func(s *Spec) { s.Flows[0].From = NodeID(99) }, "out of range"},
		{"self flow", func(s *Spec) { s.Flows[0].To = s.Flows[0].From }, "from == to"},
		{"bad variant", func(s *Spec) { s.Flows[0].Variant = "tahoe" }, "unknown variant"},
		{"bad profile", func(s *Spec) { s.Flows[0].Profile = "lwip" }, "unknown stack profile"},
		{"bad pattern", func(s *Spec) { s.Flows[0].Pattern = "poisson" }, "unknown pattern"},
		{"bad per", func(s *Spec) { s.Net.PER = 1.5 }, "out of range"},
		{"border role", func(s *Spec) { s.Nodes = []NodeSpec{{ID: 0, Sleepy: true}} }, "out of range"},
		{"negative on-period", func(s *Spec) {
			s.Flows[0].Pattern = PatternOnOff
			s.Flows[0].On = Duration(-sim.Second)
		}, "negative on/off"},
		{"negative retry delay", func(s *Spec) {
			d := Duration(-sim.Millisecond)
			s.Net.RetryDelay = &d
		}, "negative retry_delay"},
		{"duplicate sink", func(s *Spec) { s.Flows[1].Port = 80 }, "share sink"},
		{"unknown protocol", func(s *Spec) { s.Flows[0].Protocol = "quic" }, "unknown protocol"},
		{"bulk over coap", func(s *Spec) {
			s.Flows[0].Variant = ""
			s.Flows[0].Protocol = "coap"
			s.Flows[0].Pattern = PatternBulk
		}, "needs protocol tcp"},
		{"tcp knob on udp flow", func(s *Spec) {
			s.Flows[0].Protocol = "udp"
			s.Flows[0].Pattern = PatternAnemometer
		}, "TCP knobs"},
		{"coap knob on tcp flow", func(s *Spec) { s.Flows[0].RTO = "cocoa" }, "coap knobs"},
		{"bad rto", func(s *Spec) {
			s.Flows[0].Variant = ""
			s.Flows[0].Protocol = "coap"
			s.Flows[0].Pattern = PatternAnemometer
			s.Flows[0].RTO = "peria"
		}, "unknown rto"},
		{"bad injected loss", func(s *Spec) { s.Net.InjectedLoss = 1.2 }, "out of range"},
		{"negative interference", func(s *Spec) { s.Net.Interference = -1 }, "negative interference"},
		{"negative dc_sample", func(s *Spec) { s.DCSample = Duration(-sim.Second) }, "negative dc_sample"},
		{"default-port collision", func(s *Spec) {
			s.Flows[0].Port = 81 // collides with flow 1's default 80+1
			s.Flows[1].Port = 0
		}, "share sink"},
	}
	for _, c := range cases {
		spec := twinMixed(1)
		c.mutate(spec)
		err := spec.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: err = %v, want %q", c.name, err, c.want)
		}
	}
	if err := twinMixed(1).Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

// TestSweepExpansion pins the cartesian expansion contract: axis order
// (field order, last fastest), cell naming, Point coordinates, seed
// stepping, and idempotence of expanded cells.
func TestSweepExpansion(t *testing.T) {
	spec := &Spec{
		Name:     "grid",
		Topology: TopologySpec{Kind: TopoChain},
		Flows:    []FlowSpec{{From: End(), To: NodeID(0)}},
		Seeds:    []int64{100, 200},
		Sweep: &Sweep{
			Hops:     []int{1, 3},
			Variants: []string{"newreno", "bbr"},
			SeedStep: 10,
		},
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	cells := spec.Expand()
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 2×2", len(cells))
	}
	wantNames := []string{
		"grid/hops=1/cc=newreno", "grid/hops=1/cc=bbr",
		"grid/hops=3/cc=newreno", "grid/hops=3/cc=bbr",
	}
	wantNodes := []int{2, 2, 4, 4}
	for i, c := range cells {
		if c.Name != wantNames[i] {
			t.Fatalf("cell %d name = %q, want %q", i, c.Name, wantNames[i])
		}
		if c.Topology.Nodes != wantNodes[i] {
			t.Fatalf("cell %d nodes = %d, want %d", i, c.Topology.Nodes, wantNodes[i])
		}
		if c.Sweep != nil {
			t.Fatalf("cell %d kept its sweep block", i)
		}
		if len(c.Point) != 2 || c.Point[0].Axis != "hops" || c.Point[1].Axis != "cc" {
			t.Fatalf("cell %d point = %+v", i, c.Point)
		}
		wantSeeds := []int64{100 + int64(i)*10, 200 + int64(i)*10}
		if !reflect.DeepEqual(c.Seeds, wantSeeds) {
			t.Fatalf("cell %d seeds = %v, want %v", i, c.Seeds, wantSeeds)
		}
		if c.Flows[0].Variant != c.Point[1].Value {
			t.Fatalf("cell %d variant = %q, point %q", i, c.Flows[0].Variant, c.Point[1].Value)
		}
		// Expanded cells are fixed points.
		if again := c.Expand(); len(again) != 1 || again[0] != c {
			t.Fatalf("cell %d re-expanded to %d specs", i, len(again))
		}
	}
	// The base spec is untouched by expansion.
	if spec.Flows[0].Variant != "" || spec.Topology.Nodes != 0 || spec.Seeds[0] != 100 {
		t.Fatalf("expansion mutated the base spec: %+v", spec)
	}
	// A sweep spec round-trips through JSON.
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseSpecs(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parsed[0], spec) {
		t.Fatalf("sweep round trip mismatch:\n  in:  %+v\n  out: %+v", spec, parsed[0])
	}
}

// TestSweepValidate rejects malformed axes before anything runs.
func TestSweepValidate(t *testing.T) {
	base := func() *Spec {
		return &Spec{
			Name:     "sweep-bad",
			Topology: TopologySpec{Kind: TopoChain, Nodes: 2},
			Flows:    []FlowSpec{{From: NodeID(1), To: NodeID(0)}},
		}
	}
	cases := []struct {
		name  string
		sweep Sweep
		topo  string
		want  string
	}{
		{"hops on star", Sweep{Hops: []int{2}}, TopoStar, "needs a chain or twinleaf"},
		{"zero hops", Sweep{Hops: []int{0}}, "", "hops value 0"},
		{"per out of range", Sweep{PER: []float64{1.5}}, "", "out of range"},
		{"negative d", Sweep{RetryDelay: []Duration{Duration(-sim.Second)}}, "", "negative retry_delay"},
		{"zero frames", Sweep{SegFrames: []int{0}}, "", "seg_frames value 0"},
		{"zero window", Sweep{WindowSegs: []int{0}}, "", "window_segs value 0"},
		{"bad variant", Sweep{Variants: []string{"tahoe"}}, "", "unknown variant"},
	}
	for _, c := range cases {
		s := base()
		if c.topo != "" {
			s.Topology.Kind = c.topo
			s.Topology.Nodes = 3
		}
		sw := c.sweep
		s.Sweep = &sw
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: err = %v, want %q", c.name, err, c.want)
		}
	}
	// An invalid expanded cell is caught through the sweep path too: a
	// flow endpoint beyond the smallest hop cell's node count.
	s := base()
	s.Sweep = &Sweep{Hops: []int{1, 3}}
	s.Flows[0].From = NodeID(3) // valid at 3 hops, out of range at 1
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("invalid cell not caught: %v", err)
	}
	// The "end" reference fixes exactly that.
	s.Flows[0].From = End()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestRunAllExpandsSweep runs a real sweep grid: one result per cell,
// serial and parallel execution bit-identical, and the axis actually
// applied (the retry-delay cells see different channels).
func TestRunAllExpandsSweep(t *testing.T) {
	spec := &Spec{
		Name:     "sweep-run",
		Topology: TopologySpec{Kind: TopoChain},
		Flows:    []FlowSpec{{From: End(), To: NodeID(0)}},
		Sweep: &Sweep{
			Hops:       []int{1, 2},
			RetryDelay: []Duration{0, Duration(40 * sim.Millisecond)},
			SeedStep:   1,
		},
		Warmup:   Duration(5 * sim.Second),
		Duration: Duration(20 * sim.Second),
		Seeds:    []int64{9},
	}
	serial, err := (&Runner{Workers: 1}).RunAll([]*Spec{spec})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != 4 {
		t.Fatalf("results = %d, want one per cell", len(serial))
	}
	parallel, err := (&Runner{Workers: 4}).RunAll([]*Spec{spec})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i].Runs, parallel[i].Runs) {
			t.Fatalf("cell %d: serial and parallel differ", i)
		}
		if g := serial[i].Runs[0].Flows[0].GoodputKbps; g <= 0 {
			t.Fatalf("cell %d (%s): goodput %.2f", i, serial[i].Spec.Name, g)
		}
	}
	// Cell seeds stepped: cell i runs seed 9+i.
	for i, sr := range serial {
		if sr.Runs[0].Seed != int64(9+i) {
			t.Fatalf("cell %d seed = %d, want %d", i, sr.Runs[0].Seed, 9+i)
		}
	}
	// The hop axis binds: the 2-hop cells run slower than their 1-hop
	// twins under the same retry delay.
	if !(serial[0].Runs[0].Flows[0].GoodputKbps > serial[2].Runs[0].Flows[0].GoodputKbps) {
		t.Fatalf("hop axis inert: 1-hop %.1f vs 2-hop %.1f",
			serial[0].Runs[0].Flows[0].GoodputKbps, serial[2].Runs[0].Flows[0].GoodputKbps)
	}
	// Run() refuses a sweep spec instead of silently running one cell.
	if _, err := (&Runner{}).Run(spec); err == nil || !strings.Contains(err.Error(), "use RunAll") {
		t.Fatalf("Run accepted a sweep spec: %v", err)
	}
}

// TestProfileFlow pins the Table 7 stack-profile knob: a uIP-profile
// sender degenerates to stop-and-wait (window 1) and is massively
// outrun by a full-TCPlp flow on the same channel realization.
func TestProfileFlow(t *testing.T) {
	mk := func(name, profile string) *Spec {
		return &Spec{
			Name:     name,
			Topology: TopologySpec{Kind: TopoChain, Nodes: 2},
			Flows:    []FlowSpec{{From: NodeID(1), To: NodeID(0), Profile: profile}},
			Warmup:   Duration(5 * sim.Second),
			Duration: Duration(30 * sim.Second),
			Seeds:    []int64{31},
		}
	}
	res, err := (&Runner{}).RunAll([]*Spec{mk("uip", "uip"), mk("full", "")})
	if err != nil {
		t.Fatal(err)
	}
	uipFlow := res[0].Runs[0].Flows[0]
	full := res[1].Runs[0].Flows[0]
	if uipFlow.WindowSegs != 1 {
		t.Fatalf("uip window = %d segs, want 1 (stop-and-wait)", uipFlow.WindowSegs)
	}
	if uipFlow.GoodputKbps <= 0 {
		t.Fatal("uip flow made no progress")
	}
	if full.GoodputKbps < 4*uipFlow.GoodputKbps {
		t.Fatalf("full TCPlp %.1f kb/s not ≥4x uIP %.1f kb/s", full.GoodputKbps, uipFlow.GoodputKbps)
	}
}

// TestTraceFlow pins the cwnd tap: a traced flow returns a post-warmup
// trajectory, an untraced flow returns none, and samples respect the
// warmup boundary.
func TestTraceFlow(t *testing.T) {
	spec := &Spec{
		Name:     "trace",
		Topology: TopologySpec{Kind: TopoChain, Nodes: 2},
		Flows: []FlowSpec{
			{From: NodeID(1), To: NodeID(0), Port: 80, Trace: true},
			{From: NodeID(0), To: NodeID(1), Port: 81},
		},
		Warmup:   Duration(5 * sim.Second),
		Duration: Duration(20 * sim.Second),
		Seeds:    []int64{13},
	}
	sr, err := (&Runner{}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	traced, plain := sr.Runs[0].Flows[0], sr.Runs[0].Flows[1]
	if len(traced.CwndTrace) == 0 {
		t.Fatal("traced flow recorded no cwnd points")
	}
	if len(plain.CwndTrace) != 0 {
		t.Fatalf("untraced flow recorded %d cwnd points", len(plain.CwndTrace))
	}
	for _, p := range traced.CwndTrace {
		if p.T.D() < 5*sim.Second {
			t.Fatalf("trace point at %v predates the warmup boundary", p.T.D())
		}
		if p.Cwnd <= 0 {
			t.Fatalf("trace point cwnd = %d", p.Cwnd)
		}
	}
}

// TestParseSpecsErrors pins error surfacing: a decode error inside an
// array form reports the real cause, not a misleading object-decode
// failure.
func TestParseSpecsErrors(t *testing.T) {
	bad := `{"name":"x","topology":{"kind":"chain","nodes":2},"flows":[{"from":1,"to":0}],"duration":"90x"}`
	for _, in := range []string{bad, "[" + bad + "]", "  \n[" + bad + "]"} {
		_, err := ParseSpecs([]byte(in))
		if err == nil || !strings.Contains(err.Error(), "bad duration") {
			t.Fatalf("%s: err = %v, want the underlying duration error", in, err)
		}
	}
	if _, err := ParseSpecs([]byte("42")); err == nil {
		t.Fatal("non-spec JSON accepted")
	}
}

// TestZeroDurationsHonored pins the zero-vs-unset rules: an explicit
// zero warmup measures from t=0 and a single explicit onoff period is
// honored; defaults only replace meaningless zeros.
func TestZeroDurationsHonored(t *testing.T) {
	s := twinMixed(1)
	s.Warmup = 0
	s.Duration = 0
	d := s.withDefaults()
	if d.Warmup != 0 {
		t.Fatalf("zero warmup replaced with %v", d.Warmup.D())
	}
	if d.Duration == 0 {
		t.Fatal("zero-length measurement window kept")
	}
	s.Flows[0].Pattern = PatternOnOff
	s.Flows[0].On = Duration(2 * sim.Second) // off omitted → continuous
	d = s.withDefaults()
	if got := d.Flows[0]; got.On != Duration(2*sim.Second) || got.Off != 0 {
		t.Fatalf("explicit on-period rewrote off: on=%v off=%v", got.On.D(), got.Off.D())
	}
	s.Flows[0].On = 0 // both omitted → 5s/5s default
	d = s.withDefaults()
	if got := d.Flows[0]; got.On == 0 || got.Off == 0 {
		t.Fatalf("onoff defaults not applied: on=%v off=%v", got.On.D(), got.Off.D())
	}
}

// protoTelemetry builds a mixed-protocol telemetry spec: one TCP, one
// CoAP CON, and one raw-UDP anemometer flow from three chain nodes to
// the wired host.
func protoTelemetry(seeds ...int64) *Spec {
	conf := true
	return &Spec{
		Name:     "proto-telemetry",
		Topology: TopologySpec{Kind: TopoChain, Nodes: 4},
		Flows: []FlowSpec{
			{Label: "tcp", From: NodeID(1), To: Host(), Pattern: PatternAnemometer, Batch: 4},
			{Label: "coap", From: NodeID(2), To: Host(), Protocol: "coap", Confirmable: &conf, Batch: 4},
			{Label: "udp", From: NodeID(3), To: Host(), Protocol: "udp", Batch: 4},
		},
		Warmup:   Duration(5 * sim.Second),
		Duration: Duration(40 * sim.Second),
		Seeds:    seeds,
	}
}

// TestProtocolFlows pins the multi-protocol drivers end to end: every
// flow delivers, carries its protocol label, and reports the telemetry
// metrics (delivery ratio, latency percentiles).
func TestProtocolFlows(t *testing.T) {
	sr, err := (&Runner{}).Run(protoTelemetry(11))
	if err != nil {
		t.Fatal(err)
	}
	run := sr.Runs[0]
	wantProto := []string{"tcp", "coap", "udp"}
	for i, fl := range run.Flows {
		if fl.Protocol != wantProto[i] {
			t.Fatalf("flow %d protocol = %q, want %q", i, fl.Protocol, wantProto[i])
		}
		if fl.Pattern != PatternAnemometer {
			t.Fatalf("flow %d pattern = %q (non-TCP flows default to anemometer)", i, fl.Pattern)
		}
		if fl.Generated == 0 || fl.Delivered == 0 {
			t.Fatalf("flow %s: generated=%d delivered=%d", fl.Label, fl.Generated, fl.Delivered)
		}
		if fl.DeliveryRatio <= 0 || fl.DeliveryRatio > 1 {
			t.Fatalf("flow %s: delivery ratio %v", fl.Label, fl.DeliveryRatio)
		}
		if fl.LatencyP50ms <= 0 || fl.LatencyP99ms < fl.LatencyP50ms {
			t.Fatalf("flow %s: latency p50=%v p99=%v", fl.Label, fl.LatencyP50ms, fl.LatencyP99ms)
		}
		if fl.GoodputKbps <= 0 {
			t.Fatalf("flow %s: goodput %v", fl.Label, fl.GoodputKbps)
		}
	}
	// Reliability machinery maps per protocol: TCP has an RTT estimate,
	// UDP has no retransmissions by construction.
	if run.Flows[0].SRTTms <= 0 {
		t.Fatal("tcp flow has no SRTT")
	}
	if run.Flows[2].Retransmits != 0 || run.Flows[2].Timeouts != 0 {
		t.Fatalf("udp flow reports reliability machinery: %+v", run.Flows[2])
	}
}

// TestProtocolFlowsSerialParallelIdentical mirrors the TCP determinism
// contract for the UDP/CoAP drivers: bit-identical runs and aggregates
// whatever the worker-pool size.
func TestProtocolFlowsSerialParallelIdentical(t *testing.T) {
	spec := protoTelemetry(1, 2, 3)
	serial, err := (&Runner{Workers: 1}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := (&Runner{Workers: 4}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Runs, parallel.Runs) {
		t.Fatalf("serial and parallel runs differ:\nserial:   %+v\nparallel: %+v",
			serial.Runs, parallel.Runs)
	}
	if !reflect.DeepEqual(serial.Agg, parallel.Agg) {
		t.Fatalf("aggregates differ:\nserial:   %+v\nparallel: %+v", serial.Agg, parallel.Agg)
	}
	if reflect.DeepEqual(serial.Runs[0].Flows, serial.Runs[1].Flows) {
		t.Fatal("different seeds produced identical flow results")
	}
}

// TestCoAPConRecoversNonLoses pins the reliability split under §9.4
// injected loss: confirmable CoAP retransmits through it while the
// nonconfirmable baseline silently drops readings.
func TestCoAPConRecoversNonLoses(t *testing.T) {
	mk := func(name string, confirmable bool) *Spec {
		c := confirmable
		return &Spec{
			Name:     name,
			Topology: TopologySpec{Kind: TopoChain, Nodes: 2},
			Net:      NetSpec{InjectedLoss: 0.3},
			Flows: []FlowSpec{{
				From: NodeID(1), To: Host(), Protocol: "coap", Confirmable: &c,
				Interval: Duration(500 * sim.Millisecond),
			}},
			Warmup:   Duration(10 * sim.Second),
			Duration: Duration(2 * sim.Minute),
			Seeds:    []int64{5},
		}
	}
	res, err := (&Runner{}).RunAll([]*Spec{mk("con", true), mk("non", false)})
	if err != nil {
		t.Fatal(err)
	}
	con := res[0].Runs[0].Flows[0]
	non := res[1].Runs[0].Flows[0]
	if con.DeliveryRatio < 0.95 {
		t.Fatalf("CON delivery %v under 30%% injected loss, want ≈1 (retransmissions)", con.DeliveryRatio)
	}
	if con.Retransmits == 0 {
		t.Fatal("CON flow recorded no retransmissions under loss")
	}
	if non.DeliveryRatio > 0.9 {
		t.Fatalf("NON delivery %v, want visible loss", non.DeliveryRatio)
	}
	if non.Retransmits != 0 {
		t.Fatalf("NON flow retransmitted (%d)", non.Retransmits)
	}
}

// TestSweepOverrides pins the per-cell override contract: matching
// cells get the set-block after the axis values, non-matching cells are
// untouched, numeric when-values are accepted, and the whole thing
// round-trips through JSON.
func TestSweepOverrides(t *testing.T) {
	spec := &Spec{
		Name:     "grid",
		Topology: TopologySpec{Kind: TopoChain},
		Flows:    []FlowSpec{{From: End(), To: NodeID(0)}},
		Sweep: &Sweep{
			Hops: []int{1, 3, 4},
			Overrides: []Override{{
				When: OverrideWhen{"hops": "4"},
				Set:  OverrideSet{WindowSegs: 6, Variant: "bbr"},
			}},
		},
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	cells := spec.Expand()
	if len(cells) != 3 {
		t.Fatalf("cells = %d", len(cells))
	}
	for i, c := range cells[:2] {
		if c.Net.WindowSegs != 0 || c.Flows[0].Variant != "" {
			t.Fatalf("cell %d caught the override: %+v", i, c)
		}
	}
	if c := cells[2]; c.Net.WindowSegs != 6 || c.Flows[0].Variant != "bbr" {
		t.Fatalf("4-hop cell missed the override: window=%d variant=%q",
			c.Net.WindowSegs, c.Flows[0].Variant)
	}
	// The base spec's flows stay untouched.
	if spec.Flows[0].Variant != "" {
		t.Fatal("override mutated the base spec")
	}
	// JSON round-trip, including the ISSUE's bare-number when-form.
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseSpecs(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parsed[0], spec) {
		t.Fatalf("override round trip mismatch:\n in:  %+v\n out: %+v", spec.Sweep, parsed[0].Sweep)
	}
	raw := `{"name":"g","topology":{"kind":"chain"},"flows":[{"from":"end","to":0}],
		"sweep":{"hops":[1,4],"overrides":[{"when":{"hops":4},"set":{"window_segs":6}}]}}`
	parsed, err = ParseSpecs([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if c := parsed[0].Expand()[1]; c.Net.WindowSegs != 6 {
		t.Fatalf("numeric when-value not matched: %+v", c)
	}
	// Validation rejects overrides conditioned on unpopulated axes and
	// empty when-blocks.
	bad := *spec
	bad.Sweep = &Sweep{Hops: []int{1}, Overrides: []Override{{
		When: OverrideWhen{"per": "7%"}, Set: OverrideSet{WindowSegs: 2},
	}}}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "does not populate") {
		t.Fatalf("unpopulated-axis override accepted: %v", err)
	}
	bad.Sweep = &Sweep{Hops: []int{1}, Overrides: []Override{{Set: OverrideSet{WindowSegs: 2}}}}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "empty when-block") {
		t.Fatalf("empty when-block accepted: %v", err)
	}
	// A when-value no cell will ever take ("04", "40 ms") is an error,
	// not a silently inert patch.
	bad.Sweep = &Sweep{Hops: []int{1, 4}, Overrides: []Override{{
		When: OverrideWhen{"hops": "04"}, Set: OverrideSet{WindowSegs: 6},
	}}}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "never takes value") {
		t.Fatalf("mistyped when-value accepted: %v", err)
	}
}

// TestDCSampleAndIdleWindow pins the two new instruments: dc_sample
// produces one mean-duty-cycle sample per period, and idle_window
// freezes the window-rate metrics at the stop instant (a run with an
// idle phase reports the same goodput as one without) while filling
// IdleRadioDC.
func TestDCSampleAndIdleWindow(t *testing.T) {
	mk := func(idle bool) *Spec {
		s := &Spec{
			Name:     "instruments",
			Topology: TopologySpec{Kind: TopoChain, Nodes: 2},
			Nodes: []NodeSpec{{
				ID: 1, Sleepy: true, Adaptive: true,
				MinInterval: Duration(20 * sim.Millisecond),
				MaxInterval: Duration(500 * sim.Millisecond),
			}},
			Flows:    []FlowSpec{{From: NodeID(1), To: NodeID(0)}},
			Warmup:   Duration(5 * sim.Second),
			Duration: Duration(30 * sim.Second),
			DCSample: Duration(10 * sim.Second),
			Seeds:    []int64{17},
		}
		if idle {
			s.IdleSettle = Duration(5 * sim.Second)
			s.IdleWindow = Duration(20 * sim.Second)
		}
		return s
	}
	res, err := (&Runner{}).RunAll([]*Spec{mk(false), mk(true)})
	if err != nil {
		t.Fatal(err)
	}
	plain, idle := res[0].Runs[0], res[1].Runs[0]
	if len(plain.DCSamples) != 3 {
		t.Fatalf("dc samples = %d, want 3 (30s / 10s)", len(plain.DCSamples))
	}
	for i, dc := range plain.DCSamples {
		if dc <= 0 || dc > 1 {
			t.Fatalf("dc sample %d = %v", i, dc)
		}
	}
	if plain.Flows[0].GoodputKbps != idle.Flows[0].GoodputKbps {
		t.Fatalf("idle phase leaked into goodput: %v vs %v",
			plain.Flows[0].GoodputKbps, idle.Flows[0].GoodputKbps)
	}
	if plain.Flows[0].Bytes != idle.Flows[0].Bytes {
		t.Fatalf("idle phase leaked into bytes: %d vs %d",
			plain.Flows[0].Bytes, idle.Flows[0].Bytes)
	}
	if plain.Flows[0].IdleRadioDC != 0 {
		t.Fatal("IdleRadioDC set without an idle window")
	}
	// The adaptive sleepy leaf backs off once traffic stops, so its
	// idle duty cycle collapses below the loaded duty cycle (the first
	// dc_sample, taken mid-transfer; RadioDC itself is post-reset here
	// because the sampler resets the meter at each boundary).
	loaded := plain.DCSamples[0]
	if got := idle.Flows[0].IdleRadioDC; got <= 0 || got >= loaded {
		t.Fatalf("idle duty cycle %v, want inside (0, %v)", got, loaded)
	}
}

// TestSerialParallelIdentical is the determinism contract: the same
// spec over the same seeds produces bit-identical per-run results and
// aggregates whether the runner uses one worker or many.
func TestSerialParallelIdentical(t *testing.T) {
	spec := twinMixed(1, 2, 3, 4)
	serial, err := (&Runner{Workers: 1}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := (&Runner{Workers: 4}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Runs, parallel.Runs) {
		t.Fatalf("serial and parallel runs differ:\nserial:   %+v\nparallel: %+v",
			serial.Runs, parallel.Runs)
	}
	if !reflect.DeepEqual(serial.Agg, parallel.Agg) {
		t.Fatalf("aggregates differ:\nserial:   %+v\nparallel: %+v", serial.Agg, parallel.Agg)
	}
	// And a repeat parallel run reproduces itself.
	again, err := (&Runner{Workers: 3}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parallel.Runs, again.Runs) {
		t.Fatal("parallel runs are not reproducible")
	}
	// Seeds must actually matter: two different channel realizations
	// should not be byte-identical.
	if reflect.DeepEqual(serial.Runs[0].Flows, serial.Runs[1].Flows) {
		t.Fatal("different seeds produced identical flow results")
	}
}

// TestMixedVariantFairness regression-pins the twin-leaf w=7 paced-BBR
// vs NewReno fairness question: both flows make progress and the Jain
// index stays inside a tolerance band around the measured baseline.
func TestMixedVariantFairness(t *testing.T) {
	sr, err := (&Runner{}).Run(twinMixed(301, 302, 303))
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range sr.Runs {
		if len(run.Flows) != 2 {
			t.Fatalf("seed %d: flows = %d", run.Seed, len(run.Flows))
		}
		for _, fl := range run.Flows {
			if fl.GoodputKbps <= 0 {
				t.Fatalf("seed %d: flow %s starved (%.2f kb/s)", run.Seed, fl.Label, fl.GoodputKbps)
			}
			if fl.WindowSegs != 7 {
				t.Fatalf("flow %s window = %d segs, want 7", fl.Label, fl.WindowSegs)
			}
		}
	}
	// Tolerance band around the pinned baseline (measured at this
	// schedule: jain_mean 0.972, jain_min 0.923 — pacing keeps the w=7
	// twin-leaf fair, the ROADMAP's inter-variant fairness question).
	// Drift below the band means one variant starves the other; use a
	// generous floor so only real regressions trip it.
	if sr.Agg.JainMean < 0.85 || sr.Agg.JainMean > 1.0001 {
		t.Fatalf("mixed-variant Jain mean %.3f outside [0.85, 1.0] (baseline 0.972)", sr.Agg.JainMean)
	}
	if sr.Agg.JainMin < 0.80 {
		t.Fatalf("mixed-variant Jain min %.3f < 0.80 (baseline 0.923)", sr.Agg.JainMin)
	}
}

// TestExampleSpecRuns keeps the shipped example runnable: the JSON
// parses, validates, and (shortened) produces two flows plus a Jain
// index.
func TestExampleSpecRuns(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "examples", "scenarios", "twinleaf_mixed.json"))
	if err != nil {
		t.Fatal(err)
	}
	specs, err := ParseSpecs(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 {
		t.Fatalf("specs = %d", len(specs))
	}
	spec := specs[0]
	if spec.Net.WindowSegs != 7 || len(spec.Flows) != 2 {
		t.Fatalf("example drifted: %+v", spec)
	}
	spec.Warmup = Duration(5 * sim.Second)
	spec.Duration = Duration(20 * sim.Second)
	spec.Seeds = spec.Seeds[:1]
	sr, err := (&Runner{}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	run := sr.Runs[0]
	if run.Jain <= 0 || run.Jain > 1.0001 {
		t.Fatalf("jain = %v", run.Jain)
	}
	if run.Flows[0].Variant != "bbr" || run.Flows[1].Variant != "newreno" {
		t.Fatalf("variants = %s/%s", run.Flows[0].Variant, run.Flows[1].Variant)
	}
	// The other example file parses too.
	data, err = os.ReadFile(filepath.Join("..", "..", "examples", "scenarios", "chain_retrydelay.json"))
	if err != nil {
		t.Fatal(err)
	}
	if specs, err = ParseSpecs(data); err != nil || len(specs) != 2 {
		t.Fatalf("chain_retrydelay: specs=%d err=%v", len(specs), err)
	}
}

// TestAllExampleSpecsLoad keeps every checked-in spec loadable: each
// file under examples/scenarios parses, validates, and expands (CI
// additionally runs them all at a short duration).
func TestAllExampleSpecsLoad(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "scenarios")
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) < 7 {
		t.Fatalf("example specs missing: %v (err %v)", files, err)
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		specs, err := ParseSpecs(data)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		for _, s := range specs {
			if cells := s.Expand(); len(cells) == 0 {
				t.Fatalf("%s: spec %q expanded to nothing", f, s.Name)
			}
		}
	}
	// And the sweep example actually runs shortened: one grid, one
	// result per cell, every cell alive.
	data, err := os.ReadFile(filepath.Join(dir, "fig6_sweep.json"))
	if err != nil {
		t.Fatal(err)
	}
	specs, err := ParseSpecs(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		s.Warmup = Duration(2 * sim.Second)
		s.Duration = Duration(5 * sim.Second)
		s.Seeds = s.Seeds[:1]
	}
	res, err := (&Runner{Workers: 4}).RunAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 18 { // {1, 3} hops × 9 retry delays
		t.Fatalf("fig6_sweep cells = %d, want 18", len(res))
	}
	for _, sr := range res {
		if g := sr.Runs[0].Flows[0].GoodputKbps; g <= 0 {
			t.Fatalf("cell %s: goodput %.2f", sr.Spec.Name, g)
		}
	}
}

// TestPatterns exercises the onoff and anemometer traffic patterns and
// the host endpoint on one chain.
func TestPatterns(t *testing.T) {
	mk := func(pattern string, f func(*FlowSpec)) *Spec {
		fs := FlowSpec{From: NodeID(1), To: Host(), Variant: "newreno", Pattern: pattern}
		if f != nil {
			f(&fs)
		}
		return &Spec{
			Name:     "pattern-" + pattern,
			Topology: TopologySpec{Kind: TopoChain, Nodes: 2},
			Flows:    []FlowSpec{fs},
			Warmup:   Duration(5 * sim.Second),
			Duration: Duration(30 * sim.Second),
			Seeds:    []int64{7},
		}
	}
	results, err := (&Runner{}).RunAll([]*Spec{
		mk(PatternBulk, nil),
		mk(PatternOnOff, func(f *FlowSpec) {
			f.On = Duration(2 * sim.Second)
			f.Off = Duration(2 * sim.Second)
		}),
		mk(PatternAnemometer, func(f *FlowSpec) { f.Batch = 4 }),
	})
	if err != nil {
		t.Fatal(err)
	}
	bulk := results[0].Runs[0].Flows[0].GoodputKbps
	onoff := results[1].Runs[0].Flows[0].GoodputKbps
	anem := results[2].Runs[0].Flows[0].GoodputKbps
	if bulk <= 0 || onoff <= 0 || anem <= 0 {
		t.Fatalf("goodputs: bulk=%.1f onoff=%.1f anem=%.1f", bulk, onoff, anem)
	}
	// On-off idles half the time; the anemometer generates 82 B/s.
	if onoff >= bulk*0.85 {
		t.Fatalf("onoff %.1f kb/s not throttled vs bulk %.1f kb/s", onoff, bulk)
	}
	if anem > 2 {
		t.Fatalf("anemometer %.1f kb/s, want ≈0.7 (1 Hz × 82 B readings)", anem)
	}
}

// TestPerFlowWindowAndPacing pins the per-flow config threading: a w=8
// flow outruns a w=1 flow on a clean one-hop link, and the pacing=false
// knob reaches the connection config.
func TestPerFlowWindowAndPacing(t *testing.T) {
	mkWin := func(name string, w int) *Spec {
		return &Spec{
			Name:     name,
			Topology: TopologySpec{Kind: TopoChain, Nodes: 2},
			Flows:    []FlowSpec{{From: NodeID(1), To: NodeID(0), WindowSegs: w}},
			Warmup:   Duration(5 * sim.Second),
			Duration: Duration(30 * sim.Second),
			Seeds:    []int64{11},
		}
	}
	results, err := (&Runner{}).RunAll([]*Spec{mkWin("w1", 1), mkWin("w8", 8)})
	if err != nil {
		t.Fatal(err)
	}
	w1 := results[0].Runs[0].Flows[0]
	w8 := results[1].Runs[0].Flows[0]
	if w1.WindowSegs != 1 || w8.WindowSegs != 8 {
		t.Fatalf("windows = %d/%d, want 1/8", w1.WindowSegs, w8.WindowSegs)
	}
	if w8.GoodputKbps < w1.GoodputKbps*1.5 {
		t.Fatalf("w=8 (%.1f kb/s) did not outrun w=1 (%.1f kb/s)", w8.GoodputKbps, w1.GoodputKbps)
	}

	off := false
	spec := twinMixed(5)
	spec.Flows[0].Pacing = &off
	rc, err := buildRun(spec.withDefaults(), 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg0, _, err := rc.tcpConfigs(rc.flows[0].spec)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg0.NoPacing {
		t.Fatal("pacing=false did not set NoPacing on the flow config")
	}
	cfg1, _, err := rc.tcpConfigs(rc.flows[1].spec)
	if err != nil {
		t.Fatal(err)
	}
	if cfg1.NoPacing {
		t.Fatal("NoPacing leaked onto the second flow")
	}
}

// TestEmptyVariantKeepsDefault pins the -variant contract: a flow with
// no variant inherits the process-wide default instead of collapsing to
// NewReno through cc.Parse("").
func TestEmptyVariantKeepsDefault(t *testing.T) {
	old := stack.DefaultVariant
	stack.DefaultVariant = cc.Cubic
	defer func() { stack.DefaultVariant = old }()
	spec := &Spec{
		Name:     "default-variant",
		Topology: TopologySpec{Kind: TopoChain, Nodes: 2},
		Flows: []FlowSpec{
			{From: NodeID(1), To: NodeID(0)},                     // inherits cubic
			{From: NodeID(0), To: NodeID(1), Variant: "newreno"}, // explicit override
		},
		Warmup:   Duration(5 * sim.Second),
		Duration: Duration(5 * sim.Second),
		Seeds:    []int64{3},
	}
	sr, err := (&Runner{Workers: 1}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if v := sr.Runs[0].Flows[0].Variant; v != "cubic" {
		t.Fatalf("defaulted flow variant = %q, want cubic", v)
	}
	if v := sr.Runs[0].Flows[1].Variant; v != "newreno" {
		t.Fatalf("explicit flow variant = %q, want newreno", v)
	}
}

// TestSleepyNodeRole checks the duty-cycle role: the flow runs uplink
// from the leaf, so FlowResult.RadioDC reports the leaf's radio — which
// must collapse once the NodeSpec makes it sleepy, while an always-on
// leaf idles at 100%.
func TestSleepyNodeRole(t *testing.T) {
	mk := func(name string, sleepy bool) *Spec {
		s := &Spec{
			Name:     name,
			Topology: TopologySpec{Kind: TopoChain, Nodes: 2},
			Flows: []FlowSpec{{
				From: NodeID(1), To: NodeID(0),
				Pattern: PatternAnemometer, Interval: Duration(2 * sim.Second),
			}},
			Warmup:   Duration(5 * sim.Second),
			Duration: Duration(60 * sim.Second),
			Seeds:    []int64{21},
		}
		if sleepy {
			s.Nodes = []NodeSpec{{
				ID: 1, Sleepy: true,
				SleepInterval: Duration(500 * sim.Millisecond),
			}}
		}
		return s
	}
	results, err := (&Runner{}).RunAll([]*Spec{mk("awake", false), mk("sleepy", true)})
	if err != nil {
		t.Fatal(err)
	}
	awake := results[0].Runs[0].Flows[0]
	sleepy := results[1].Runs[0].Flows[0]
	if awake.GoodputKbps <= 0 || sleepy.GoodputKbps <= 0 {
		t.Fatalf("goodputs: awake=%.2f sleepy=%.2f", awake.GoodputKbps, sleepy.GoodputKbps)
	}
	if awake.RadioDC < 0.95 {
		t.Fatalf("always-on leaf duty cycle = %.2f%%, want ≈100%%", awake.RadioDC*100)
	}
	if sleepy.RadioDC > awake.RadioDC*0.5 {
		t.Fatalf("sleepy leaf duty cycle %.2f%% did not collapse (always-on %.2f%%)",
			sleepy.RadioDC*100, awake.RadioDC*100)
	}
}

func TestOutputFormats(t *testing.T) {
	sr, err := (&Runner{}).Run(twinMixed(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf bytes.Buffer
	if err := WriteCSV(&csvBuf, []*SpecResult{sr}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	// Header + 2 seeds × 2 flows.
	if len(lines) != 1+4 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), csvBuf.String())
	}
	if !strings.HasPrefix(lines[0], "scenario,seed,flow,variant") {
		t.Fatalf("csv header: %s", lines[0])
	}
	var jsonBuf bytes.Buffer
	if err := WriteJSON(&jsonBuf, []*SpecResult{sr}); err != nil {
		t.Fatal(err)
	}
	var decoded []*SpecResult
	if err := json.Unmarshal(jsonBuf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 1 || len(decoded[0].Runs) != 2 {
		t.Fatalf("json round trip: %+v", decoded)
	}
	if s := sr.Summary(); !strings.Contains(s, "jain") || !strings.Contains(s, "bbr") {
		t.Fatalf("summary missing fields:\n%s", s)
	}
}
