package scenario

import (
	"fmt"

	"tcplp/internal/gateway"
	"tcplp/internal/mesh"
	"tcplp/internal/netem"
	"tcplp/internal/obs"
	"tcplp/internal/obs/journey"
	"tcplp/internal/scenario/flows"
	"tcplp/internal/sim"
	"tcplp/internal/stack"
	"tcplp/internal/stats"
	"tcplp/internal/tcplp"
	"tcplp/internal/tcplp/cc"
	"tcplp/internal/uip"
)

// build translates TopologySpec into a mesh layout.
func (t TopologySpec) build() mesh.Topology {
	spacing := t.Spacing
	if spacing == 0 {
		spacing = 10
	}
	switch t.Kind {
	case TopoChain:
		return mesh.Chain(t.Nodes, spacing)
	case TopoStar:
		return mesh.Star(t.Nodes, spacing)
	case TopoOffice:
		return mesh.Office()
	case TopoTwinLeaf:
		return mesh.TwinLeaf(t.PathHops, spacing)
	case TopoRandomGeometric:
		seed := t.Seed
		if seed == 0 {
			seed = 1
		}
		return mesh.RandomGeometric(t.Nodes, t.Density, seed)
	case TopoTree:
		return mesh.Tree(t.Depth, t.Fanout, spacing)
	}
	panic(fmt.Sprintf("scenario: unvalidated topology kind %q", t.Kind))
}

// options translates NetSpec into stack options.
func (s *Spec) options() stack.Options {
	opt := stack.DefaultOptions()
	n := s.Net
	opt.PER = n.PER
	if n.RetryDelay != nil {
		opt.MAC.RetryDelayMax = n.RetryDelay.D()
	}
	if n.SegFrames > 0 {
		opt.SegFrames = n.SegFrames
	}
	if n.WindowSegs > 0 {
		opt.WindowSegs = n.WindowSegs
	}
	if n.QueueCap > 0 {
		opt.QueueCap = n.QueueCap
	}
	opt.RED = n.RED
	opt.ECN = n.ECN
	if n.HopByHop {
		opt.Mode = stack.HopByHopReassembly
	}
	if n.WireDelay > 0 {
		opt.WireDelay = n.WireDelay.D()
	}
	if n.PhyWorkers > 0 {
		opt.PhyWorkers = n.PhyWorkers
	}
	return opt
}

// flowRun is one instantiated flow: its endpoints plus the protocol
// driver's measurement probe.
type flowRun struct {
	spec  FlowSpec
	src   *stack.Node
	dst   *stack.Node
	probe flows.Probe
}

// meshNode returns the flow's mesh-side endpoint — the source unless it
// is the wired host (which has no radio).
func (fr *flowRun) meshNode() *stack.Node {
	if fr.src.Radio != nil {
		return fr.src
	}
	return fr.dst
}

// runContext is one fully built (spec, seed) instance.
type runContext struct {
	spec  *Spec // defaults applied
	seed  int64
	net   *stack.Network
	flows []*flowRun
	gw    *gateway.Gateway // nil unless spec.Gateway is set

	framesBase uint64
	lossBase   uint64
	gwBase     gateway.Stats
	wanBase    netem.WANStats
	dcSamples  []float64

	// Observability (nil/zero unless the Runner carries an ObsConfig).
	oc          *ObsConfig
	trace       *obs.Trace
	flight      *obs.FlightRecorder
	recorder    *journey.Recorder
	eventFilter *obs.FilterSink
	stallDumped map[int]bool
}

// buildRun instantiates the spec onto the stack layers for one seed.
// The spec must be validated and have defaults applied (withDefaults).
func buildRun(spec *Spec, seed int64, oc *ObsConfig) (*runContext, error) {
	rc := &runContext{spec: spec, seed: seed}
	rc.buildTrace(oc)
	opt := spec.options()
	opt.Trace = rc.trace
	net := stack.New(seed, spec.Topology.build(), opt)
	rc.net = net
	if spec.needsHost() {
		net.AttachHost()
	}
	if spec.Net.InjectedLoss > 0 {
		net.Border().DropFilter = netem.UniformLoss(spec.Net.InjectedLoss, seed+1)
	}
	if spec.Net.Interference > 0 {
		for _, in := range netem.AddOfficeInterference(net, spec.Net.Interference) {
			in.Start()
		}
	}
	for _, ns := range spec.Nodes {
		if !ns.Sleepy {
			continue
		}
		sc := net.MakeSleepyLeaf(ns.ID)
		if ns.SleepInterval > 0 {
			sc.SleepInterval = ns.SleepInterval.D()
		}
		if ns.FastInterval != nil {
			sc.FastInterval = ns.FastInterval.D()
		}
		sc.Adaptive = ns.Adaptive
		if ns.MinInterval > 0 {
			sc.Min = ns.MinInterval.D()
		}
		if ns.MaxInterval > 0 {
			sc.Max = ns.MaxInterval.D()
		}
		if ns.NoFastPollHint {
			net.Nodes[ns.ID].TCP.OnExpectingChange = nil
		}
		sc.Start()
	}
	if g := spec.Gateway; g != nil {
		// seed+2: the WAN's loss source must be independent of both the
		// channel (seed) and the border drop filter (seed+1).
		rc.gw = gateway.New(net.Border(), gateway.Config{
			TCPPort:     g.TCPPort,
			CoAPPort:    g.CoAPPort,
			MaxConns:    g.MaxConns,
			IdleTimeout: g.IdleTimeout.D(),
			SinkCfg:     net.FlowTCPConfig("", 0),
			WAN: netem.WANConfig{
				BandwidthKbps: g.WAN.BandwidthKbps,
				Delay:         g.WAN.RTT.D() / 2,
				Loss:          g.WAN.Loss,
				QueueCap:      g.WAN.QueueCap,
			},
		}, seed+2)
		if rc.trace != nil {
			rc.gw.SetTrace(rc.trace)
		}
	}
	for _, fs := range spec.Flows {
		fr, err := rc.startFlow(fs)
		if err != nil {
			return nil, err
		}
		rc.flows = append(rc.flows, fr)
		if rc.flight != nil {
			rc.flight.Bind(fr.src.ID, fr.spec.Label)
		}
	}
	// The -events-flow filter names flows by label; flows only resolve
	// to source nodes here, after startFlow, so the allow-list is
	// populated last (before the engine runs a single event).
	if rc.eventFilter != nil && oc != nil {
		for _, label := range oc.EventFlows {
			for _, fr := range rc.flows {
				if fr.spec.Label == label {
					rc.eventFilter.AllowNode(fr.src.ID)
				}
			}
		}
	}
	return rc, nil
}

// resolve maps a NodeRef to its node. The gateway tier lives on the
// border router.
func (rc *runContext) resolve(r NodeRef) *stack.Node {
	if r.Host {
		return rc.net.Host
	}
	if r.End {
		return rc.net.Nodes[len(rc.net.Nodes)-1]
	}
	if r.Gateway {
		return rc.net.Border()
	}
	return rc.net.Nodes[r.ID]
}

// tcpConfigs derives the flow's sender and sink TCP configurations:
// per-flow variant/window/pacing over the network defaults, host-sized
// buffers on host endpoints, and the Table 7 stack-profile override.
func (rc *runContext) tcpConfigs(fs FlowSpec) (srcCfg, sinkCfg tcplp.Config, err error) {
	// An empty variant must stay empty so FlowTCPConfig keeps the
	// network default (which carries the process-wide -variant flag);
	// cc.Parse would collapse it to NewReno.
	var variant cc.Variant
	if fs.Variant != "" {
		v, perr := cc.Parse(fs.Variant)
		if perr != nil {
			return srcCfg, sinkCfg, perr // unreachable after Validate
		}
		variant = v
	}
	cfg := rc.net.FlowTCPConfig(variant, fs.WindowSegs)
	if fs.Pacing != nil && !*fs.Pacing {
		cfg.NoPacing = true
	}

	// The host end is unconstrained (§5: a FreeBSD-class machine), so a
	// host endpoint keeps large buffers; the flow's window knob binds at
	// the mote end, which is what bounds the transfer either way.
	sinkCfg = cfg
	if fs.To.Host {
		sinkCfg.SendBufSize = 64 * 1024
		sinkCfg.RecvBufSize = 64 * 1024
	}
	srcCfg = cfg
	if fs.From.Host {
		srcCfg.SendBufSize = 64 * 1024
	}
	if fs.Profile != "" {
		// Table 7 baselines: the sender runs the simplified-stack
		// profile while the sink keeps full TCPlp, whose delayed ACKs
		// penalize stop-and-wait stacks just as real gateway-class
		// receivers did.
		p, perr := uip.ParseProfile(fs.Profile)
		if perr != nil {
			return srcCfg, sinkCfg, perr // unreachable after Validate
		}
		srcCfg = p.Config()
	}
	return srcCfg, sinkCfg, nil
}

// startFlow resolves the flow's endpoints and hands it to its protocol
// driver.
func (rc *runContext) startFlow(fs FlowSpec) (*flowRun, error) {
	srcCfg, sinkCfg, err := rc.tcpConfigs(fs)
	if err != nil {
		return nil, err
	}
	src, dst := rc.resolve(fs.From), rc.resolve(fs.To)
	fr := &flowRun{spec: fs, src: src, dst: dst}
	probe, err := flows.Start(
		&flows.Env{Net: rc.net, Src: src, Dst: dst},
		fs.Protocol,
		flows.Spec{
			Label:       fs.Label,
			Port:        fs.Port,
			Pattern:     fs.Pattern,
			On:          fs.On.D(),
			Off:         fs.Off.D(),
			Interval:    fs.Interval.D(),
			Batch:       fs.Batch,
			Trace:       fs.Trace,
			Confirmable: fs.Confirmable == nil || *fs.Confirmable,
			RTO:         fs.RTO,
			SrcCfg:      srcCfg,
			SinkCfg:     sinkCfg,
			Gateway:     gatewayFor(rc, fs),
		})
	if err != nil {
		return nil, err
	}
	fr.probe = probe
	return fr, nil
}

// gatewayFor hands gateway-addressed flows the run's gateway instance.
func gatewayFor(rc *runContext, fs FlowSpec) *gateway.Gateway {
	if fs.To.Gateway {
		return rc.gw
	}
	return nil
}

// mark opens the measurement window: probes and counters snapshot their
// baselines and the energy meters reset, so every windowed metric
// covers only the post-warmup schedule.
func (rc *runContext) mark() {
	for _, fr := range rc.flows {
		fr.probe.Mark()
	}
	for _, n := range rc.net.Nodes {
		n.Radio.ResetEnergy()
		n.CPU.Reset()
	}
	if rc.net.Host != nil {
		rc.net.Host.CPU.Reset()
	}
	rc.framesBase = rc.net.TotalFramesSent()
	rc.lossBase = rc.net.TotalLossEvents()
	if rc.gw != nil {
		rc.gwBase = rc.gw.Stats
		rc.wanBase = rc.gw.WAN().Stats
		rc.gw.WAN().ResetMaxQueue()
	}
}

// scheduleDCSamples arms the Fig. 10 duty-cycle sampler: at every
// DCSample boundary of the measurement window, record the mean radio
// duty cycle across the flow source nodes and reset their meters.
func (rc *runContext) scheduleDCSamples() {
	period := rc.spec.DCSample.D()
	n := int(rc.spec.Duration.D() / period)
	for i := 1; i <= n; i++ {
		rc.net.Eng.Schedule(sim.Duration(i)*period, func() {
			dc := 0.0
			cnt := 0
			for _, fr := range rc.flows {
				node := fr.meshNode()
				if node.Radio == nil {
					continue
				}
				dc += node.Radio.DutyCycle()
				node.Radio.ResetEnergy()
				cnt++
			}
			if cnt > 0 {
				rc.dcSamples = append(rc.dcSamples, dc/float64(cnt))
			}
		})
	}
}

// runIdlePhase appends the Fig. 14 idle measurement: every flow stops
// (window-rate metrics freeze at this instant), the network settles,
// each flow's mesh endpoint resets its radio meter, and the idle window
// runs out. collect picks the duty cycles up afterwards.
func (rc *runContext) runIdlePhase() {
	for _, fr := range rc.flows {
		fr.probe.Stop()
	}
	rc.net.Eng.RunFor(rc.spec.IdleSettle.D())
	for _, fr := range rc.flows {
		if node := fr.meshNode(); node.Radio != nil {
			node.Radio.ResetEnergy()
		}
	}
	rc.net.Eng.RunFor(rc.spec.IdleWindow.D())
}

// collect closes the measurement window and computes the run's result.
func (rc *runContext) collect() Result {
	res := Result{
		Name:       rc.spec.Name,
		Seed:       rc.seed,
		FramesSent: rc.net.TotalFramesSent() - rc.framesBase,
		LossEvents: rc.net.TotalLossEvents() - rc.lossBase,
		Events:     rc.net.Eng.Processed(),
		DCSamples:  rc.dcSamples,
	}
	idle := rc.spec.IdleWindow > 0
	// Journey reconstruction runs once over the run's recorded events;
	// each telemetry flow picks up its own attribution below.
	var jrep *journey.Report
	if rc.recorder != nil {
		jrep = journey.Analyze(rc.recorder.Events)
		if out := rc.oc.JourneyOut; out != nil {
			out.AddRun(rc.spec.Name, rc.seed, jrep)
		}
		if cb := rc.oc.OnJourney; cb != nil {
			cb(rc.spec.Name, rc.seed, jrep)
		}
	}
	var goodputs []float64
	for _, fr := range rc.flows {
		m := fr.probe.Collect()
		trace := make([]CwndPoint, len(m.Cwnd))
		for i, p := range m.Cwnd {
			trace[i] = CwndPoint{T: Duration(p.T), Cwnd: p.Cwnd, Ssthresh: p.Ssthresh}
		}
		fres := FlowResult{
			Label:         fr.spec.Label,
			Gateway:       fr.spec.To.Gateway,
			Protocol:      flowProtocol(fr.spec.Protocol),
			Variant:       m.Variant,
			WindowSegs:    m.WindowSegs,
			MSS:           m.MSS,
			Pattern:       fr.spec.Pattern,
			GoodputKbps:   m.GoodputKbps,
			Bytes:         m.Bytes,
			SentBytes:     m.SentBytes,
			Retransmits:   m.Retransmits,
			Timeouts:      m.Timeouts,
			FastRtx:       m.FastRtx,
			SRTTms:        m.SRTTms,
			MeanRTTms:     m.MeanRTTms,
			MedianRTTms:   m.MedianRTTms,
			RTTp10ms:      m.RTTp10ms,
			RTTp90ms:      m.RTTp90ms,
			RTTMaxms:      m.RTTMaxms,
			Generated:     m.Generated,
			Delivered:     m.Delivered,
			Backlog:       m.Backlog,
			DeliveryRatio: m.DeliveryRatio,
			LatencyP50ms:  m.LatencyP50ms,
			LatencyP99ms:  m.LatencyP99ms,
			CwndTrace:     trace,
		}
		if fres.Gateway {
			fres.E2EDelivered = m.E2EDelivered
			fres.WANLost = m.WANLost
			fres.E2EDeliveryRatio = m.E2EDeliveryRatio
		}
		if fr.src.Radio != nil {
			fres.RadioDC = fr.src.Radio.DutyCycle()
		}
		fres.CPUDC = fr.src.CPU.DutyCycle()
		if idle {
			if node := fr.meshNode(); node.Radio != nil {
				fres.IdleRadioDC = node.Radio.DutyCycle()
			}
		}
		fres.RTOms = m.RTOms
		if jrep != nil {
			fres.Journey = jrep.Flows[fr.src.ID]
		}
		rc.dumpLowDelivery(fr, &fres)
		goodputs = append(goodputs, fres.GoodputKbps)
		res.AggregateKbps += fres.GoodputKbps
		res.Flows = append(res.Flows, fres)
	}
	res.Jain = stats.JainIndex(goodputs)
	if rc.gw != nil {
		res.Gateway = rc.collectGateway(res.Flows)
	}
	res.Layers = rc.layerRegistry().Layers()
	return res
}

// collectGateway windows the gateway/WAN counters and computes the
// per-source credit shares: each gateway flow's fraction of the cloud
// collector's total credited readings, plus Jain fairness over them.
// The flows slice is indexed in rc.flows order.
func (rc *runContext) collectGateway(frs []FlowResult) *GatewayResult {
	gs, ws := rc.gw.Stats, rc.gw.WAN().Stats
	gr := &GatewayResult{
		Accepted:      gs.Accepted - rc.gwBase.Accepted,
		Reused:        gs.Reused - rc.gwBase.Reused,
		Evicted:       gs.Evicted - rc.gwBase.Evicted,
		ActiveConns:   rc.gw.Active(),
		WANSent:       ws.Sent - rc.wanBase.Sent,
		WANDelivered:  ws.Delivered - rc.wanBase.Delivered,
		WANQueueDrops: ws.QueueDrops - rc.wanBase.QueueDrops,
		WANLossDrops:  ws.LossDrops - rc.wanBase.LossDrops,
		WANQueueDepth: rc.gw.WAN().QueueDepth(),
		WANQueueMax:   ws.MaxQueue,
	}
	var total uint64
	for i := range frs {
		if frs[i].Gateway {
			total += frs[i].E2EDelivered
		}
	}
	var credits []float64
	for i := range frs {
		if !frs[i].Gateway {
			continue
		}
		if total > 0 {
			frs[i].CreditShare = float64(frs[i].E2EDelivered) / float64(total)
		}
		credits = append(credits, float64(frs[i].E2EDelivered))
	}
	gr.CreditJain = stats.JainIndex(credits)
	return gr
}

// flowProtocol returns the canonical protocol label for results.
func flowProtocol(p string) string { return flows.Canonical(p) }

// RunOne executes the spec for a single seed and returns its result.
// The run is entirely self-contained — its own engine, channel, and
// stacks — which is what lets the Runner parallelize seeds safely.
func RunOne(spec *Spec, seed int64) (Result, error) {
	return RunOneObs(spec, seed, nil)
}

// RunOneObs is RunOne with cross-layer observability attached.
func RunOneObs(spec *Spec, seed int64, oc *ObsConfig) (Result, error) {
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	return runDefaulted(spec.withDefaults(), seed, oc)
}

// runDefaulted is RunOne for a spec that is already validated and
// defaulted — the Runner's worker path, which hoists both steps out of
// the per-seed loop.
func runDefaulted(spec *Spec, seed int64, oc *ObsConfig) (Result, error) {
	rc, err := buildRun(spec, seed, oc)
	if err != nil {
		return Result{}, err
	}
	rc.net.Eng.RunFor(rc.spec.Warmup.D())
	rc.mark()
	if spec.DCSample > 0 {
		rc.scheduleDCSamples()
	}
	rc.scheduleMetricsSamples()
	rc.scheduleStallChecks()
	rc.net.Eng.RunFor(rc.spec.Duration.D())
	if spec.IdleWindow > 0 {
		rc.runIdlePhase()
	}
	return rc.collect(), nil
}
