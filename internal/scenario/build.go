package scenario

import (
	"fmt"

	"tcplp/internal/app"
	"tcplp/internal/mesh"
	"tcplp/internal/sim"
	"tcplp/internal/stack"
	"tcplp/internal/stats"
	"tcplp/internal/tcplp"
	"tcplp/internal/tcplp/cc"
	"tcplp/internal/uip"
)

// build translates TopologySpec into a mesh layout.
func (t TopologySpec) build() mesh.Topology {
	spacing := t.Spacing
	if spacing == 0 {
		spacing = 10
	}
	switch t.Kind {
	case TopoChain:
		return mesh.Chain(t.Nodes, spacing)
	case TopoStar:
		return mesh.Star(t.Nodes, spacing)
	case TopoOffice:
		return mesh.Office()
	case TopoTwinLeaf:
		return mesh.TwinLeaf(t.PathHops, spacing)
	}
	panic(fmt.Sprintf("scenario: unvalidated topology kind %q", t.Kind))
}

// options translates NetSpec into stack options.
func (s *Spec) options() stack.Options {
	opt := stack.DefaultOptions()
	n := s.Net
	opt.PER = n.PER
	if n.RetryDelay != nil {
		opt.MAC.RetryDelayMax = n.RetryDelay.D()
	}
	if n.SegFrames > 0 {
		opt.SegFrames = n.SegFrames
	}
	if n.WindowSegs > 0 {
		opt.WindowSegs = n.WindowSegs
	}
	if n.QueueCap > 0 {
		opt.QueueCap = n.QueueCap
	}
	opt.RED = n.RED
	opt.ECN = n.ECN
	if n.HopByHop {
		opt.Mode = stack.HopByHopReassembly
	}
	if n.WireDelay > 0 {
		opt.WireDelay = n.WireDelay.D()
	}
	return opt
}

// flowRun is one instantiated flow plus its measurement hooks.
type flowRun struct {
	spec FlowSpec
	src  *stack.Node
	dst  *stack.Node
	sink *app.Sink
	conn *tcplp.Conn // the sender-side connection
	bulk *app.Source // bulk/onoff sources (nil for anemometer)

	cfg   tcplp.Config
	rtts  stats.Sample
	base  tcplp.ConnStats // sender stats at the measurement mark
	trace []CwndPoint     // cwnd observations (Trace flows, post-warmup)
}

// runContext is one fully built (spec, seed) instance.
type runContext struct {
	spec  *Spec // defaults applied
	seed  int64
	net   *stack.Network
	flows []*flowRun

	framesBase uint64
	lossBase   uint64
}

// buildRun instantiates the spec onto the stack layers for one seed.
// The spec must be validated and have defaults applied (withDefaults).
func buildRun(spec *Spec, seed int64) (*runContext, error) {
	net := stack.New(seed, spec.Topology.build(), spec.options())
	if spec.needsHost() {
		net.AttachHost()
	}
	for _, ns := range spec.Nodes {
		if !ns.Sleepy {
			continue
		}
		sc := net.MakeSleepyLeaf(ns.ID)
		if ns.SleepInterval > 0 {
			sc.SleepInterval = ns.SleepInterval.D()
		}
		if ns.FastInterval != nil {
			sc.FastInterval = ns.FastInterval.D()
		}
		sc.Adaptive = ns.Adaptive
		if ns.NoFastPollHint {
			net.Nodes[ns.ID].TCP.OnExpectingChange = nil
		}
		sc.Start()
	}
	rc := &runContext{spec: spec, seed: seed, net: net}
	for _, fs := range spec.Flows {
		fr, err := rc.startFlow(fs)
		if err != nil {
			return nil, err
		}
		rc.flows = append(rc.flows, fr)
	}
	return rc, nil
}

// resolve maps a NodeRef to its node.
func (rc *runContext) resolve(r NodeRef) *stack.Node {
	if r.Host {
		return rc.net.Host
	}
	if r.End {
		return rc.net.Nodes[len(rc.net.Nodes)-1]
	}
	return rc.net.Nodes[r.ID]
}

// startFlow opens one flow's sink and source with its per-flow TCP
// configuration.
func (rc *runContext) startFlow(fs FlowSpec) (*flowRun, error) {
	// An empty variant must stay empty so FlowTCPConfig keeps the
	// network default (which carries the process-wide -variant flag);
	// cc.Parse would collapse it to NewReno.
	var variant cc.Variant
	if fs.Variant != "" {
		v, err := cc.Parse(fs.Variant)
		if err != nil {
			return nil, err // unreachable after Validate
		}
		variant = v
	}
	cfg := rc.net.FlowTCPConfig(variant, fs.WindowSegs)
	if fs.Pacing != nil && !*fs.Pacing {
		cfg.NoPacing = true
	}
	src, dst := rc.resolve(fs.From), rc.resolve(fs.To)
	fr := &flowRun{spec: fs, src: src, dst: dst, cfg: cfg}

	// The host end is unconstrained (§5: a FreeBSD-class machine), so a
	// host endpoint keeps large buffers; the flow's window knob binds at
	// the mote end, which is what bounds the transfer either way.
	sinkCfg := cfg
	if fs.To.Host {
		sinkCfg.SendBufSize = 64 * 1024
		sinkCfg.RecvBufSize = 64 * 1024
	}
	fr.sink = app.ListenSinkConfig(dst, fs.Port, sinkCfg)

	srcCfg := cfg
	if fs.From.Host {
		srcCfg.SendBufSize = 64 * 1024
	}
	if fs.Profile != "" {
		// Table 7 baselines: the sender runs the simplified-stack
		// profile while the sink above keeps full TCPlp, whose delayed
		// ACKs penalize stop-and-wait stacks just as real gateway-class
		// receivers did.
		p, err := uip.ParseProfile(fs.Profile)
		if err != nil {
			return nil, err // unreachable after Validate
		}
		srcCfg = p.Config()
		fr.cfg = srcCfg
	}
	switch fs.Pattern {
	case PatternBulk:
		fr.bulk = app.StartBulkConfig(src, srcCfg, dst.Addr, fs.Port)
		fr.conn = fr.bulk.Conn
	case PatternOnOff:
		fr.bulk = app.StartOnOffConfig(src, srcCfg, dst.Addr, fs.Port, fs.On.D(), fs.Off.D())
		fr.conn = fr.bulk.Conn
	case PatternAnemometer:
		tr := app.NewTCPTransportConfig(src, srcCfg, dst.Addr, fs.Port)
		sensor := app.NewSensor(rc.net.Eng, tr, app.TCPQueueCap)
		sensor.Interval = fs.Interval.D()
		sensor.Batch = fs.Batch
		tr.Attach(sensor)
		sensor.Start()
		fr.conn = tr.Conn
	default:
		return nil, fmt.Errorf("scenario: unvalidated pattern %q", fs.Pattern)
	}
	// RTT samples are collected over the connection's whole life — the
	// estimator's full history, matching the paper's median-RTT plots —
	// unlike the byte/energy counters, which cover only the post-warmup
	// window.
	fr.conn.TraceRTT = func(s sim.Duration) { fr.rtts.Add(float64(s)) }
	return fr, nil
}

// mark opens the measurement window: sinks and counters snapshot their
// baselines, the energy meters reset, and traced flows start recording
// their congestion window, so every windowed metric covers only the
// post-warmup schedule.
func (rc *runContext) mark() {
	for _, fr := range rc.flows {
		fr := fr // go 1.21: the loop variable is shared; the closure needs its own
		fr.sink.Mark()
		fr.base = fr.conn.Stats
		if fr.spec.Trace {
			fr.conn.TraceCwnd = func(now sim.Time, cwnd, ssthresh int) {
				fr.trace = append(fr.trace, CwndPoint{
					T: Duration(now), Cwnd: cwnd, Ssthresh: ssthresh,
				})
			}
		}
	}
	for _, n := range rc.net.Nodes {
		n.Radio.ResetEnergy()
		n.CPU.Reset()
	}
	if rc.net.Host != nil {
		rc.net.Host.CPU.Reset()
	}
	rc.framesBase = rc.net.TotalFramesSent()
	rc.lossBase = rc.net.TotalLossEvents()
}

// collect closes the measurement window and computes the run's result.
func (rc *runContext) collect() Result {
	res := Result{
		Name:       rc.spec.Name,
		Seed:       rc.seed,
		FramesSent: rc.net.TotalFramesSent() - rc.framesBase,
		LossEvents: rc.net.TotalLossEvents() - rc.lossBase,
	}
	var goodputs []float64
	for _, fr := range rc.flows {
		st := fr.conn.Stats
		fres := FlowResult{
			Label:       fr.spec.Label,
			Variant:     string(fr.cfg.Variant),
			WindowSegs:  fr.cfg.RecvBufSize / fr.cfg.MSS,
			MSS:         fr.cfg.MSS,
			Pattern:     fr.spec.Pattern,
			GoodputKbps: fr.sink.GoodputKbps(),
			Bytes:       fr.sink.BytesSinceMark(),
			SentBytes:   int(st.BytesSent - fr.base.BytesSent),
			Retransmits: st.Retransmits - fr.base.Retransmits,
			Timeouts:    st.Timeouts - fr.base.Timeouts,
			FastRtx:     st.FastRetransmits - fr.base.FastRetransmits,
			SRTTms:      fr.conn.SRTT().Milliseconds(),
			MedianRTTms: sim.Duration(fr.rtts.Median()).Milliseconds(),
			CwndTrace:   fr.trace,
		}
		if fr.src.Radio != nil {
			fres.RadioDC = fr.src.Radio.DutyCycle()
		}
		fres.CPUDC = fr.src.CPU.DutyCycle()
		goodputs = append(goodputs, fres.GoodputKbps)
		res.AggregateKbps += fres.GoodputKbps
		res.Flows = append(res.Flows, fres)
	}
	res.Jain = stats.JainIndex(goodputs)
	return res
}

// RunOne executes the spec for a single seed and returns its result.
// The run is entirely self-contained — its own engine, channel, and
// stacks — which is what lets the Runner parallelize seeds safely.
func RunOne(spec *Spec, seed int64) (Result, error) {
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	return runDefaulted(spec.withDefaults(), seed)
}

// runDefaulted is RunOne for a spec that is already validated and
// defaulted — the Runner's worker path, which hoists both steps out of
// the per-seed loop.
func runDefaulted(spec *Spec, seed int64) (Result, error) {
	rc, err := buildRun(spec, seed)
	if err != nil {
		return Result{}, err
	}
	rc.net.Eng.RunFor(rc.spec.Warmup.D())
	rc.mark()
	rc.net.Eng.RunFor(rc.spec.Duration.D())
	return rc.collect(), nil
}
