package scenario

import (
	"strings"
	"testing"

	"tcplp/internal/mesh"
	"tcplp/internal/sim"
)

// citySpec is a small random-geometric mesh with a gateway and a strided
// per-device telemetry template — the city_1k.json shape at test scale.
func citySpec(nodes int) *Spec {
	return &Spec{
		Name:     "city-test",
		Topology: TopologySpec{Kind: TopoRandomGeometric, Nodes: nodes, Density: 8},
		Gateway:  &GatewaySpec{WAN: WANSpec{BandwidthKbps: 256, RTT: Duration(50 * sim.Millisecond), QueueCap: 64}},
		Flows: []FlowSpec{{
			Label: "dev", To: Gateway(), PerDevice: true, Stride: 3,
			Pattern: PatternAnemometer, Interval: Duration(2 * sim.Second),
		}},
		Warmup:   Duration(2 * sim.Second),
		Duration: Duration(6 * sim.Second),
		Seeds:    []int64{1},
	}
}

func TestGeneratedTopologyValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"too few nodes", func(s *Spec) { s.Topology.Nodes = 1 }, "nodes >= 2"},
		{"negative density", func(s *Spec) { s.Topology.Density = -1 }, "density"},
		{"tree without depth", func(s *Spec) {
			s.Topology = TopologySpec{Kind: TopoTree, Fanout: 2}
		}, "depth"},
		{"tree without fanout", func(s *Spec) {
			s.Topology = TopologySpec{Kind: TopoTree, Depth: 2}
		}, "fanout"},
	}
	for _, c := range cases {
		spec := citySpec(12)
		c.mutate(spec)
		err := spec.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: err = %v, want %q", c.name, err, c.want)
		}
	}
	if err := citySpec(12).Validate(); err != nil {
		t.Fatalf("valid random_geometric spec rejected: %v", err)
	}
	tree := citySpec(0)
	tree.Topology = TopologySpec{Kind: TopoTree, Depth: 2, Fanout: 3}
	if err := tree.Validate(); err != nil {
		t.Fatalf("valid tree spec rejected: %v", err)
	}
}

// TestGeneratedTopologyRuns drives both generator kinds end-to-end: the
// run must deliver telemetry (the mesh is connected by construction) and
// report a deterministic event count.
func TestGeneratedTopologyRuns(t *testing.T) {
	for _, spec := range []*Spec{
		citySpec(12),
		func() *Spec {
			s := citySpec(0)
			s.Name = "tree-test"
			s.Topology = TopologySpec{Kind: TopoTree, Depth: 2, Fanout: 2}
			return s
		}(),
	} {
		res, err := (&Runner{}).Run(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		run := res.Runs[0]
		if run.Events == 0 {
			t.Fatalf("%s: no events recorded", spec.Name)
		}
		delivered := uint64(0)
		for _, f := range run.Flows {
			delivered += f.Delivered
		}
		if delivered == 0 {
			t.Fatalf("%s: no readings delivered", spec.Name)
		}
	}
}

// TestTreeNodeCount pins the tree kind's derived fleet size: flow
// validation and per-device replication both depend on it.
func TestTreeNodeCount(t *testing.T) {
	ts := TopologySpec{Kind: TopoTree, Depth: 3, Fanout: 2}
	if got, want := ts.nodeCount(), mesh.TreeNodes(3, 2); got != want {
		t.Fatalf("nodeCount = %d, want %d", got, want)
	}
}

func TestNodesAndLossAxes(t *testing.T) {
	spec := citySpec(12)
	spec.Sweep = &Sweep{
		Nodes:        []int{6, 12},
		InjectedLoss: []float64{0, 0.12},
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	cells := spec.Expand()
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 2×2", len(cells))
	}
	wantNames := []string{
		"city-test/n=6/loss=0%", "city-test/n=6/loss=12%",
		"city-test/n=12/loss=0%", "city-test/n=12/loss=12%",
	}
	wantNodes := []int{6, 6, 12, 12}
	wantLoss := []float64{0, 0.12, 0, 0.12}
	for i, c := range cells {
		if c.Name != wantNames[i] {
			t.Fatalf("cell %d name = %q, want %q", i, c.Name, wantNames[i])
		}
		if c.Topology.Nodes != wantNodes[i] {
			t.Fatalf("cell %d nodes = %d, want %d", i, c.Topology.Nodes, wantNodes[i])
		}
		if c.Net.InjectedLoss != wantLoss[i] {
			t.Fatalf("cell %d loss = %v, want %v", i, c.Net.InjectedLoss, wantLoss[i])
		}
	}

	// The nodes axis only makes sense for generated meshes.
	chain := citySpec(12)
	chain.Topology = TopologySpec{Kind: TopoChain, Nodes: 4}
	chain.Flows = []FlowSpec{{From: End(), To: NodeID(0)}}
	chain.Gateway = nil
	chain.Sweep = &Sweep{Nodes: []int{4, 8}}
	if err := chain.Validate(); err == nil || !strings.Contains(err.Error(), "random_geometric") {
		t.Fatalf("nodes axis on chain: err = %v", err)
	}

	for _, c := range []struct {
		sweep Sweep
		want  string
	}{
		{Sweep{Nodes: []int{1}}, "nodes value"},
		{Sweep{InjectedLoss: []float64{1.0}}, "out of range"},
		{Sweep{InjectedLoss: []float64{-0.1}}, "out of range"},
	} {
		s := citySpec(12)
		sw := c.sweep
		s.Sweep = &sw
		if err := s.Validate(); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("sweep %+v: err = %v, want %q", c.sweep, err, c.want)
		}
	}
}

func TestPerDeviceStride(t *testing.T) {
	spec := citySpec(12)
	got := spec.withDefaults()
	// Devices 1, 4, 7, 10 under stride 3 across ids 1..11.
	if len(got.Flows) != 4 {
		t.Fatalf("flows = %d, want 4", len(got.Flows))
	}
	wantFrom := []int{1, 4, 7, 10}
	for i, f := range got.Flows {
		if f.From.ID != wantFrom[i] || f.PerDevice || f.Stride != 0 {
			t.Fatalf("flow %d = %+v, want from %d, template flags cleared", i, f, wantFrom[i])
		}
		if f.Label != "dev-"+itoa(wantFrom[i]) {
			t.Fatalf("flow %d label = %q", i, f.Label)
		}
	}

	bad := citySpec(12)
	bad.Flows[0].Stride = -1
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "stride") {
		t.Fatalf("negative stride: err = %v", err)
	}
	bad = citySpec(12)
	bad.Flows[0].PerDevice = false
	bad.Flows[0].From = NodeID(1)
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "stride") {
		t.Fatalf("stride without per_device: err = %v", err)
	}
}

func itoa(v int) string {
	if v < 10 {
		return string(rune('0' + v))
	}
	return string(rune('0'+v/10)) + string(rune('0'+v%10))
}
