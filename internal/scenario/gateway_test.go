package scenario

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"tcplp/internal/sim"
)

// gwStar is the gateway-tier test scenario: a star fleet streaming
// telemetry through the border-router gateway onto a shaped WAN.
func gwStar(devices int, seeds ...int64) *Spec {
	return &Spec{
		Name:     "gw",
		Topology: TopologySpec{Kind: TopoStar, Nodes: devices + 1},
		Gateway: &GatewaySpec{
			MaxConns: 8,
			WAN: WANSpec{
				BandwidthKbps: 16,
				RTT:           Duration(100 * sim.Millisecond),
				Loss:          0.02,
				QueueCap:      8,
			},
		},
		Flows: []FlowSpec{{
			Label:     "dev",
			To:        Gateway(),
			PerDevice: true,
			Pattern:   PatternAnemometer,
			Interval:  Duration(200 * sim.Millisecond),
		}},
		Warmup:   Duration(2 * sim.Second),
		Duration: Duration(20 * sim.Second),
		Seeds:    seeds,
	}
}

func TestGatewaySpecJSONRoundTrip(t *testing.T) {
	spec := gwStar(3, 800, 801)
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseSpecs(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 1 || !reflect.DeepEqual(parsed[0], spec) {
		t.Fatalf("round trip mismatch:\n  in:  %+v\n  out: %+v", spec, parsed[0])
	}
	if parsed[0].Flows[0].To.String() != "gateway" {
		t.Fatalf("gateway sink rendered %q", parsed[0].Flows[0].To.String())
	}
}

func TestGatewayValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"no gateway block", func(s *Spec) { s.Gateway = nil }, "needs a gateway block"},
		{"gateway as source", func(s *Spec) {
			s.Flows[0].PerDevice = false
			s.Flows[0].From = Gateway()
			s.Flows[0].To = NodeID(0)
		}, "sink reference"},
		{"explicit port", func(s *Spec) { s.Flows[0].Port = 80 }, "drop \"port\""},
		{"udp gateway flow", func(s *Spec) { s.Flows[0].Protocol = "udp" }, "protocol tcp or coap"},
		{"bulk gateway flow", func(s *Spec) {
			s.Flows[0].PerDevice = false
			s.Flows[0].From = NodeID(1)
			s.Flows[0].Pattern = PatternBulk
		}, "carry telemetry"},
		{"two flows one device", func(s *Spec) {
			s.Flows[0].PerDevice = false
			s.Flows[0].From = NodeID(1)
			s.Flows = append(s.Flows, s.Flows[0])
		}, "both terminate device"},
		{"per_device without gateway sink", func(s *Spec) {
			s.Flows[0].From = NodeID(1)
			s.Flows[0].To = NodeID(0)
			s.Flows[0].Pattern = PatternAnemometer
		}, "per_device needs"},
		{"per_device plus extra gateway flow", func(s *Spec) {
			extra := s.Flows[0]
			extra.PerDevice = false
			extra.From = NodeID(1)
			s.Flows = append(s.Flows, extra)
		}, "only gateway flow"},
		{"terminator port collision", func(s *Spec) {
			s.Flows = append(s.Flows, FlowSpec{
				From: NodeID(2), To: NodeID(0), Port: 7000,
			})
		}, "gateway terminator port"},
		{"negative max_conns", func(s *Spec) { s.Gateway.MaxConns = -1 }, "negative max_conns"},
		{"wan loss out of range", func(s *Spec) { s.Gateway.WAN.Loss = 1.0 }, "out of range"},
		{"devices axis on twinleaf", func(s *Spec) {
			s.Topology = TopologySpec{Kind: TopoTwinLeaf, PathHops: 2}
			s.Sweep = &Sweep{Devices: []int{2}}
		}, "star or chain"},
		{"zero devices", func(s *Spec) { s.Sweep = &Sweep{Devices: []int{0}} }, "devices value 0"},
		{"bad protocol preset", func(s *Spec) { s.Sweep = &Sweep{Protocols: []string{"quic"}} }, "protocol"},
	}
	for _, c := range cases {
		spec := gwStar(3, 1)
		c.mutate(spec)
		err := spec.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: err = %v, want %q", c.name, err, c.want)
		}
	}
	if err := gwStar(3, 1).Validate(); err != nil {
		t.Fatalf("valid gateway spec rejected: %v", err)
	}
}

// TestGatewaySweepExpansion pins the devices × protocols grid: cell
// naming, fleet regrowth, and the preset rewriting every flow.
func TestGatewaySweepExpansion(t *testing.T) {
	spec := gwStar(2, 800)
	spec.Topology.Nodes = 0
	spec.Sweep = &Sweep{
		Devices:   []int{2, 4},
		Protocols: []string{"tcp", "cocoa"},
		SeedStep:  7,
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	cells := spec.Expand()
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 2×2", len(cells))
	}
	wantNames := []string{
		"gw/dev=2/proto=tcp", "gw/dev=2/proto=cocoa",
		"gw/dev=4/proto=tcp", "gw/dev=4/proto=cocoa",
	}
	wantNodes := []int{3, 3, 5, 5}
	for i, c := range cells {
		if c.Name != wantNames[i] {
			t.Fatalf("cell %d name = %q, want %q", i, c.Name, wantNames[i])
		}
		if c.Topology.Nodes != wantNodes[i] {
			t.Fatalf("cell %d nodes = %d, want %d", i, c.Topology.Nodes, wantNodes[i])
		}
		if c.Seeds[0] != 800+int64(i)*7 {
			t.Fatalf("cell %d seed = %d", i, c.Seeds[0])
		}
		f := c.Flows[0]
		if i%2 == 1 { // cocoa preset: CoAP CON with the CoCoA RTO
			if f.Protocol != "coap" || f.Confirmable == nil || !*f.Confirmable || f.RTO != "cocoa" {
				t.Fatalf("cell %d preset not applied: %+v", i, f)
			}
		} else if f.Protocol != "tcp" || f.RTO != "" {
			t.Fatalf("cell %d preset not applied: %+v", i, f)
		}
	}
	// The per_device template replicates to the cell's fleet size.
	resolved := cells[2].withDefaults()
	if len(resolved.Flows) != 4 {
		t.Fatalf("dev=4 cell resolved to %d flows, want 4", len(resolved.Flows))
	}
	for i, f := range resolved.Flows {
		if f.From != NodeID(i+1) || !f.To.Gateway || f.Label != "dev-"+string(rune('1'+i)) {
			t.Fatalf("replica %d = %+v", i, f)
		}
	}
}

// TestGatewayRunEndToEnd runs a small gateway cell and checks the
// result plumbing: per-flow e2e fields, credit shares summing to one,
// and the run-level gateway block.
func TestGatewayRunEndToEnd(t *testing.T) {
	sr, err := (&Runner{}).Run(gwStar(3, 800))
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Runs) != 1 || len(sr.Runs[0].Flows) != 3 {
		t.Fatalf("runs/flows = %d/%d", len(sr.Runs), len(sr.Runs[0].Flows))
	}
	run := sr.Runs[0]
	if run.Gateway == nil {
		t.Fatal("run carries no gateway block")
	}
	var share float64
	for _, fl := range run.Flows {
		if !fl.Gateway {
			t.Fatalf("flow %s not marked as a gateway flow", fl.Label)
		}
		if fl.Generated == 0 || fl.E2EDelivered == 0 {
			t.Fatalf("flow %s: generated=%d e2e=%d", fl.Label, fl.Generated, fl.E2EDelivered)
		}
		if fl.E2EDeliveryRatio <= 0 || fl.E2EDeliveryRatio > 1 {
			t.Fatalf("flow %s: e2e ratio %v", fl.Label, fl.E2EDeliveryRatio)
		}
		if fl.E2EDelivered > fl.Delivered {
			t.Fatalf("flow %s: e2e %d exceeds gateway deliveries %d",
				fl.Label, fl.E2EDelivered, fl.Delivered)
		}
		share += fl.CreditShare
	}
	if share < 0.999 || share > 1.001 {
		t.Fatalf("credit shares sum to %v, want 1", share)
	}
	if run.Gateway.CreditJain <= 0 || run.Gateway.CreditJain > 1 {
		t.Fatalf("credit jain = %v", run.Gateway.CreditJain)
	}
	if run.Gateway.WANSent == 0 || run.Gateway.WANDelivered == 0 {
		t.Fatalf("WAN idle: %+v", run.Gateway)
	}
	// The fleet connected during warmup, so the measurement window sees
	// no new accepts — just the live table.
	if run.Gateway.ActiveConns != 3 {
		t.Fatalf("active connections = %d, want 3: %+v", run.Gateway.ActiveConns, run.Gateway)
	}
	if sr.Agg.CreditJainMean <= 0 {
		t.Fatalf("aggregate credit jain = %v", sr.Agg.CreditJainMean)
	}
}

// TestGatewaySerialParallelIdentical extends the runner's bit-identity
// guarantee to gateway scenarios: the shared connection table, WAN
// queue, and per-source credits must not introduce schedule dependence.
func TestGatewaySerialParallelIdentical(t *testing.T) {
	spec := gwStar(3, 800, 807, 814)
	serial, err := (&Runner{Workers: 1}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := (&Runner{Workers: 4}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Runs, parallel.Runs) {
		t.Fatalf("serial and parallel gateway runs differ:\nserial:   %+v\nparallel: %+v",
			serial.Runs, parallel.Runs)
	}
	if !reflect.DeepEqual(serial.Agg, parallel.Agg) {
		t.Fatalf("aggregates differ:\nserial:   %+v\nparallel: %+v", serial.Agg, parallel.Agg)
	}
	if reflect.DeepEqual(serial.Runs[0].Flows, serial.Runs[1].Flows) {
		t.Fatal("different seeds produced identical gateway results")
	}
}

// TestGatewayCollapsePoint regression-pins the capacity story: a fleet
// well past the uplink's capacity delivers a smaller fraction end to
// end and shares cloud credits less fairly than a fleet within it.
func TestGatewayCollapsePoint(t *testing.T) {
	spec := gwStar(2, 800)
	spec.Topology.Nodes = 0
	spec.Gateway.WAN = WANSpec{
		BandwidthKbps: 8,
		RTT:           Duration(100 * sim.Millisecond),
		Loss:          0.01,
		QueueCap:      8,
	}
	// At 500 ms per reading, two devices fit comfortably inside 8 kb/s
	// (including WAN framing); twelve oversubscribe it threefold.
	spec.Flows[0].Interval = Duration(500 * sim.Millisecond)
	spec.Duration = Duration(30 * sim.Second)
	spec.Sweep = &Sweep{Devices: []int{2, 12}}
	res, err := (&Runner{}).RunAll([]*Spec{spec})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("cells = %d, want 2", len(res))
	}
	e2e := func(sr *SpecResult) float64 {
		var gen, cred uint64
		for _, fl := range sr.Runs[0].Flows {
			gen += fl.Generated
			cred += fl.E2EDelivered
		}
		return float64(cred) / float64(gen)
	}
	smallE2E, bigE2E := e2e(res[0]), e2e(res[1])
	if smallE2E < 0.9 {
		t.Fatalf("2 devices under-deliver: e2e %.3f", smallE2E)
	}
	if bigE2E > smallE2E-0.2 {
		t.Fatalf("no collapse: e2e %.3f at 12 devices vs %.3f at 2", bigE2E, smallE2E)
	}
	smallJain := res[0].Runs[0].Gateway.CreditJain
	bigJain := res[1].Runs[0].Gateway.CreditJain
	if smallJain < 0.95 {
		t.Fatalf("2 devices already unfair: jain %.3f", smallJain)
	}
	if bigJain >= smallJain {
		t.Fatalf("queue-drop skew missing: jain %.3f at 12 devices vs %.3f at 2", bigJain, smallJain)
	}
	// The overload cell must actually be hitting the WAN queue.
	if res[1].Runs[0].Gateway.WANQueueDrops == 0 {
		t.Fatal("12-device cell never tail-dropped at the WAN queue")
	}
}

// TestCoAPRTTSamples checks the CoAP client-side RTT observability: a
// plain coap flow (no gateway needed) reports its sampled RTT columns.
func TestCoAPRTTSamples(t *testing.T) {
	spec := &Spec{
		Name:     "coap-rtt",
		Topology: TopologySpec{Kind: TopoChain, Nodes: 2},
		Flows: []FlowSpec{{
			Label:    "tele",
			From:     NodeID(1),
			To:       NodeID(0),
			Protocol: "coap",
			Pattern:  PatternAnemometer,
			Interval: Duration(200 * sim.Millisecond),
		}},
		Warmup:   Duration(2 * sim.Second),
		Duration: Duration(20 * sim.Second),
		Seeds:    []int64{41},
	}
	sr, err := (&Runner{}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	fl := sr.Runs[0].Flows[0]
	if fl.MeanRTTms <= 0 || fl.MedianRTTms <= 0 {
		t.Fatalf("CoAP RTT not sampled: mean %.2f median %.2f", fl.MeanRTTms, fl.MedianRTTms)
	}
	if fl.MedianRTTms > 10000 {
		t.Fatalf("CoAP median RTT implausible: %.2f ms", fl.MedianRTTms)
	}
}
