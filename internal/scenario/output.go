package scenario

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// csvHeader lists the per-run flow columns emitted by WriteCSV. New
// columns must append at the end: tools/plot.gp addresses columns by
// index.
var csvHeader = []string{
	"scenario", "seed", "flow", "variant", "protocol", "window_segs", "pattern",
	"goodput_kbps", "bytes", "sent_bytes", "retransmits", "timeouts", "fast_rtx",
	"srtt_ms", "mean_rtt_ms", "median_rtt_ms",
	"delivery_ratio", "lat_p50_ms", "lat_p99_ms",
	"radio_dc", "cpu_dc", "jain", "aggregate_kbps",
	"e2e_delivery_ratio", "credit_share",
	"rto_ms",
	"phy_frames_sent", "mac_csma_failures", "mac_data_dropped",
	"frag_timeouts", "ip_queue_drops", "tcp_segs_in",
}

// WriteCSV emits one row per (spec, seed, flow); the run-level Jain
// index and aggregate goodput repeat on each of the run's rows.
func WriteCSV(w io.Writer, results []*SpecResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	for _, sr := range results {
		for _, run := range sr.Runs {
			for _, fl := range run.Flows {
				rec := []string{
					run.Name, strconv.FormatInt(run.Seed, 10),
					fl.Label, fl.Variant, fl.Protocol, strconv.Itoa(fl.WindowSegs), fl.Pattern,
					f(fl.GoodputKbps), strconv.Itoa(fl.Bytes), strconv.Itoa(fl.SentBytes),
					u(fl.Retransmits), u(fl.Timeouts), u(fl.FastRtx),
					f(fl.SRTTms), f(fl.MeanRTTms), f(fl.MedianRTTms),
					f(fl.DeliveryRatio), f(fl.LatencyP50ms), f(fl.LatencyP99ms),
					f(fl.RadioDC), f(fl.CPUDC),
					f(run.Jain), f(run.AggregateKbps),
					f(fl.E2EDeliveryRatio), f(fl.CreditShare),
					f(fl.RTOms),
					f(run.layer("phy", "frames_sent")), f(run.layer("mac", "csma_failures")),
					f(run.layer("mac", "data_dropped")), f(run.layer("sixlowpan", "reassembly_timeouts")),
					f(run.layer("ip", "queue_drops")), f(run.layer("tcp", "segs_in")),
				}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON emits the full result set — specs, per-seed runs, and
// aggregates — as indented JSON.
func WriteJSON(w io.Writer, results []*SpecResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// Summary renders a spec's aggregate as aligned plain text: one line
// per flow plus the fairness line.
func (sr *SpecResult) Summary() string {
	var b strings.Builder
	name := sr.Spec.Name
	if name == "" {
		name = "(unnamed)"
	}
	fmt.Fprintf(&b, "== scenario %s: %d flow(s) x %d seed(s) ==\n",
		name, len(sr.Agg.Flows), len(sr.Runs))
	for _, fa := range sr.Agg.Flows {
		kind := fa.Variant
		if kind == "" {
			kind = fa.Protocol
		} else if fa.Protocol != "" && fa.Protocol != "tcp" {
			kind = fa.Protocol + "/" + fa.Variant
		}
		fmt.Fprintf(&b, "  %-24s %-9s %7.1f kb/s (±%.1f, min %.1f, max %.1f)  rtx %.1f  rto %.1f  srtt %.0f ms  radio %.2f%%",
			fa.Label, kind, fa.GoodputMeanKbps, fa.GoodputStdKbps,
			fa.GoodputMinKbps, fa.GoodputMaxKbps, fa.RetransmitsMean,
			fa.TimeoutsMean, fa.SRTTMeanMs, fa.RadioDCMean*100)
		if fa.Pattern == PatternAnemometer {
			fmt.Fprintf(&b, "  deliv %.1f%%  lat p50 %.0f ms p99 %.0f ms",
				fa.DeliveryMean*100, fa.LatencyP50MeanMs, fa.LatencyP99MeanMs)
		}
		if fa.Gateway {
			fmt.Fprintf(&b, "  e2e %.1f%%  share %.3f",
				fa.E2EDeliveryMean*100, fa.CreditShareMean)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  jain %.3f (min %.3f)  aggregate %.1f kb/s\n",
		sr.Agg.JainMean, sr.Agg.JainMin, sr.Agg.AggregateMeanKbps)
	if len(sr.Runs) > 0 && sr.Runs[0].Gateway != nil {
		fmt.Fprintf(&b, "  gateway: credit jain %.3f (min %.3f)  wan drops %.1f  queue max %.1f\n",
			sr.Agg.CreditJainMean, sr.Agg.CreditJainMin,
			sr.Agg.WANDropsMean, sr.Agg.WANQueueMaxMean)
	}
	// With -journey on, each flow carries its latency waterfall; render
	// the first run's (one seed keeps the summary bounded — the full
	// per-seed attribution is in the JSON output).
	if len(sr.Runs) > 0 {
		r0 := sr.Runs[0]
		printed := false
		for i := range r0.Flows {
			jf := r0.Flows[i].Journey
			if jf == nil {
				continue
			}
			if !printed {
				fmt.Fprintf(&b, "  packet journeys (seed %d):\n", r0.Seed)
				printed = true
			}
			for _, line := range strings.Split(strings.TrimRight(jf.Waterfall(), "\n"), "\n") {
				fmt.Fprintf(&b, "    %s\n", line)
			}
		}
	}
	return b.String()
}
