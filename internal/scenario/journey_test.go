package scenario

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"tcplp/internal/obs"
	"tcplp/internal/obs/journey"
	"tcplp/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// runJourney executes spec at seed with journey tracing and returns the
// run's result plus the analyzed report.
func runJourney(t *testing.T, spec *Spec, seed int64) (Result, *journey.Report) {
	t.Helper()
	var rep *journey.Report
	oc := &ObsConfig{
		Journey:   true,
		OnJourney: func(name string, s int64, r *journey.Report) { rep = r },
	}
	res, err := RunOneObs(spec, seed, oc)
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatal("journey report never delivered")
	}
	return res, rep
}

// checkConformance asserts the tentpole contract on one report: every
// generated reading terminates delivered, lost with a typed cause, or
// in flight, and delivered attributions telescope exactly.
func checkConformance(t *testing.T, rep *journey.Report) *journey.ConformanceResult {
	t.Helper()
	c := journey.Check(rep)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if c.Generated == 0 {
		t.Fatal("no readings generated; scenario premise broken")
	}
	if c.Delivered+c.Lost+c.InFlight != c.Generated {
		t.Fatalf("readings unaccounted: %d+%d+%d != %d", c.Delivered, c.Lost, c.InFlight, c.Generated)
	}
	return c
}

// TestJourneyBitIdentity pins the observability contract for the new
// subsystem: enabling journey reconstruction must not change any other
// field of the Result — the attribution rides in its own
// omitempty pointer, nil when disabled.
func TestJourneyBitIdentity(t *testing.T) {
	base, err := RunOneObs(obsSpec(), 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	traced, _ := runJourney(t, obsSpec(), 42)
	for i := range traced.Flows {
		if traced.Flows[i].Journey == nil {
			t.Fatal("journey tracing on, but FlowResult.Journey is nil")
		}
		traced.Flows[i].Journey = nil
	}
	bj, _ := json.Marshal(base)
	tj, _ := json.Marshal(traced)
	if !bytes.Equal(bj, tj) {
		t.Errorf("journey tracing perturbed the run:\ndisabled: %s\nenabled:  %s", bj, tj)
	}
	for i := range base.Flows {
		if base.Flows[i].Journey != nil {
			t.Error("untraced run grew a Journey attribution")
		}
	}
}

// TestJourneyConformanceSmoke runs the 2-hop anemometer smoke scenario:
// every reading must reconstruct to a complete span tree, and the
// delivered ones must attribute their full end-to-end latency.
func TestJourneyConformanceSmoke(t *testing.T) {
	res, rep := runJourney(t, obsSpec(), 42)
	c := checkConformance(t, rep)
	if c.Delivered == 0 {
		t.Fatal("smoke run delivered nothing")
	}
	fr := res.Flows[0].Journey
	if fr == nil || fr.Delivered == 0 {
		t.Fatalf("flow journey report missing or empty: %+v", fr)
	}
	if fr.Mean.Total <= 0 {
		t.Errorf("mean total latency %.3f ms, want > 0", fr.Mean.Total)
	}
	// Direct flow: no gateway tier, so those stages must be zero.
	if fr.Mean.Gateway != 0 || fr.Mean.WAN != 0 {
		t.Errorf("direct flow has gateway/wan attribution: %+v", fr.Mean)
	}
	if fr.Mean.Air <= 0 {
		t.Errorf("mean air time %.3f ms, want > 0 (frames were sent)", fr.Mean.Air)
	}
}

// TestJourneyConformanceGatewaySmoke covers the full device → gateway →
// WAN → cloud path, including WAN losses (2% loss, shallow queue).
func TestJourneyConformanceGatewaySmoke(t *testing.T) {
	res, rep := runJourney(t, gwStar(3), 5)
	c := checkConformance(t, rep)
	if c.Delivered == 0 {
		t.Fatal("gateway smoke delivered nothing")
	}
	for cause := range c.LostByCause {
		if cause == "" {
			t.Error("loss recorded with empty cause")
		}
	}
	var sawWan bool
	for _, f := range res.Flows {
		jf := f.Journey
		if jf == nil {
			t.Fatal("gateway flow missing journey attribution")
		}
		if jf.Delivered > 0 && jf.Mean.WAN > 0 {
			sawWan = true
		}
	}
	if !sawWan {
		t.Error("no gateway flow attributed WAN latency")
	}
}

// TestJourneyConformanceCitySlice is the satellite CI check at scale: a
// 200-node random-geometric city slice with a strided telemetry fleet.
func TestJourneyConformanceCitySlice(t *testing.T) {
	if testing.Short() {
		t.Skip("city slice is not a -short test")
	}
	_, rep := runJourney(t, citySpec(200), 1)
	c := checkConformance(t, rep)
	if c.Delivered == 0 {
		t.Fatal("city slice delivered nothing")
	}
	t.Logf("city slice: %d generated, %d delivered, %d lost %v, %d in flight %v",
		c.Generated, c.Delivered, c.Lost, c.LostByCause, c.InFlight, c.InFlightByStage)
}

// TestJourneyFuzzRandomGeometric sweeps seeds over lossy generated
// topologies: whatever the channel does, reconstruction must stay
// complete and exactly attributed.
func TestJourneyFuzzRandomGeometric(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		spec := citySpec(24)
		spec.Net.InjectedLoss = 0.05
		_, rep := runJourney(t, spec, seed)
		c := checkConformance(t, rep)
		if c.Delivered == 0 {
			t.Errorf("seed %d: nothing delivered", seed)
		}
	}
}

// TestJourneyDropEventsCarryCause: every drop-kind event the smoke runs
// emit must carry a typed cause — the taxonomy-completeness check at
// the event level, run over the NDJSON stream.
func TestJourneyDropEventsCarryCause(t *testing.T) {
	dropKinds := map[string]bool{}
	for k := obs.KindUnknown; ; k++ {
		name := k.String()
		if name == "invalid" {
			break
		}
		if k.IsDrop() {
			dropKinds[name] = true
		}
	}
	if len(dropKinds) < 5 {
		t.Fatalf("drop taxonomy suspiciously small: %v", dropKinds)
	}
	for _, spec := range []*Spec{obsSpec(), gwStar(3)} {
		spec.Net.InjectedLoss = 0.1
		var events bytes.Buffer
		oc := &ObsConfig{Events: obs.NewNDJSONWriter(&events)}
		if _, err := RunOneObs(spec, 9, oc); err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(strings.TrimSpace(events.String()), "\n") {
			var m map[string]any
			if err := json.Unmarshal([]byte(line), &m); err != nil {
				t.Fatalf("bad NDJSON line %q: %v", line, err)
			}
			kind, _ := m["kind"].(string)
			if dropKinds[kind] {
				if cause, _ := m["cause"].(string); cause == "" {
					t.Fatalf("drop event without a cause: %s", line)
				}
			}
		}
	}
}

// TestJourneyEventFiltering covers the -events-layers / -events-flow
// NDJSON filters.
func TestJourneyEventFiltering(t *testing.T) {
	var events bytes.Buffer
	oc := &ObsConfig{
		Events:      obs.NewNDJSONWriter(&events),
		EventLayers: []string{"tcp"},
	}
	if _, err := RunOneObs(obsSpec(), 42, oc); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(events.String()), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("layer filter dropped everything")
	}
	for _, line := range lines {
		if strings.Contains(line, `"kind":"phy_`) || strings.Contains(line, `"kind":"mac_`) {
			t.Fatalf("layer filter leaked a non-tcp event: %s", line)
		}
	}

	events.Reset()
	oc = &ObsConfig{
		Events:     obs.NewNDJSONWriter(&events),
		EventFlows: []string{"anem"},
	}
	if _, err := RunOneObs(obsSpec(), 42, oc); err != nil {
		t.Fatal(err)
	}
	lines = strings.Split(strings.TrimSpace(events.String()), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("flow filter dropped everything")
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatal(err)
		}
		// obsSpec's "anem" flow sources from node 2.
		if n, _ := m["node"].(float64); n != 2 {
			t.Fatalf("flow filter leaked node %v: %s", m["node"], line)
		}
	}
	// An unknown label keeps the filter permissive rather than silent.
	events.Reset()
	oc = &ObsConfig{
		Events:     obs.NewNDJSONWriter(&events),
		EventFlows: []string{"no-such-flow"},
	}
	if _, err := RunOneObs(obsSpec(), 42, oc); err != nil {
		t.Fatal(err)
	}
	if events.Len() == 0 {
		t.Error("unmatched flow label silenced the whole stream")
	}
}

// goldenChainSpec is the golden span-tree scenario: a 3-hop chain
// feeding the gateway tier over a lossy mesh and a lossy, shallow WAN —
// deterministic at a fixed seed, and busy enough to exercise
// retransmission stalls, link retries, and WAN drops.
func goldenChainSpec() *Spec {
	return &Spec{
		Name:     "journey-golden",
		Topology: TopologySpec{Kind: TopoChain, Nodes: 4},
		// Interference produces in-mesh losses (link retries, TCP RTOs);
		// the tiny relay queue forces forwarding drops that only TCP
		// retransmission recovers; the shallow lossy WAN produces
		// cloud-side reading drops.
		Net: NetSpec{Interference: 1, QueueCap: 2},
		Gateway: &GatewaySpec{
			WAN: WANSpec{
				BandwidthKbps: 16,
				RTT:           Duration(100 * sim.Millisecond),
				Loss:          0.05,
				QueueCap:      4,
			},
		},
		Flows: []FlowSpec{{
			Label: "dev", From: NodeID(3), To: Gateway(),
			Pattern:  PatternAnemometer,
			Interval: Duration(250 * sim.Millisecond), Batch: 2,
		}},
		Warmup:   Duration(2 * sim.Second),
		Duration: Duration(20 * sim.Second),
	}
}

// dumpJourneys renders a deterministic one-line-per-reading summary of
// a report — the golden format.
func dumpJourneys(rep *journey.Report) string {
	var sb strings.Builder
	for _, r := range rep.Readings {
		switch r.State {
		case journey.StateDelivered:
			b := &r.Buckets
			fmt.Fprintf(&sb, "seq=%d delivered e2e=%dus app=%d send=%d rtx=%d mesh=%d(bo=%d rt=%d air=%d fwd=%d) gw=%d wan=%d\n",
				r.Seq, int64(b.Total()), int64(b.AppQueue), int64(b.SendWait), int64(b.RtxStall),
				int64(b.Mesh), int64(b.Backoff), int64(b.Retry), int64(b.Air), int64(b.Forward),
				int64(b.Gateway), int64(b.WAN))
		case journey.StateLost:
			fmt.Fprintf(&sb, "seq=%d lost cause=%s\n", r.Seq, r.Cause)
		default:
			fmt.Fprintf(&sb, "seq=%d in-flight stage=%s\n", r.Seq, r.Stage)
		}
	}
	return sb.String()
}

// TestJourneyGoldenChain pins the reconstructed span trees of a lossy
// 3-hop gateway chain to a golden file (-update rewrites it). The run
// is deterministic, so any drift means the journey pipeline changed.
func TestJourneyGoldenChain(t *testing.T) {
	_, rep := runJourney(t, goldenChainSpec(), 2)
	c := checkConformance(t, rep)
	// The premise of the golden scenario: losses actually happened.
	var sawRtx bool
	for _, r := range rep.Readings {
		if r.State == journey.StateDelivered && r.Buckets.RtxStall > 0 {
			sawRtx = true
			break
		}
	}
	if !sawRtx {
		t.Error("golden chain saw no retransmission stalls; raise the loss")
	}
	if c.Lost == 0 {
		t.Error("golden chain lost nothing; raise WAN loss")
	}
	got := dumpJourneys(rep)
	golden := filepath.Join("testdata", "journey_golden_chain.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Errorf("journey reconstruction drifted from golden (run with -update to accept):\ngot:\n%s\nwant:\n%s",
			truncate(got, 2000), truncate(string(want), 2000))
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

// TestJourneyWaterfallInReport renders the gateway smoke flow's
// waterfall — the human-readable view the README documents.
func TestJourneyWaterfallInReport(t *testing.T) {
	res, _ := runJourney(t, gwStar(2), 5)
	var nodes []int
	for _, f := range res.Flows {
		if f.Journey != nil {
			nodes = append(nodes, f.Journey.Node)
		}
	}
	sort.Ints(nodes)
	if len(nodes) == 0 {
		t.Fatal("no journey attributions")
	}
	w := res.Flows[0].Journey.Waterfall()
	for _, want := range []string{"generated", "mesh", "wan"} {
		if !strings.Contains(w, want) {
			t.Errorf("waterfall missing %q:\n%s", want, w)
		}
	}
}
