package scenario

import (
	"reflect"
	"testing"

	"tcplp/internal/phy"
	"tcplp/internal/sim"
)

// TestPhyWorkersResultBitIdentity is the scenario-level face of the
// parallel fan-out contract: a full Result — flow goodput, RTTs, duty
// cycles, gateway accounting, event counts — must be bit-identical with
// the PHY worker pool off and on. MinParallelFanout is forced to 1 so
// the parallel path actually executes on these small test topologies.
func TestPhyWorkersResultBitIdentity(t *testing.T) {
	old := phy.MinParallelFanout
	phy.MinParallelFanout = 1
	defer func() { phy.MinParallelFanout = old }()

	office := &Spec{
		Name:     "office-bit",
		Topology: TopologySpec{Kind: TopoOffice},
		Flows: []FlowSpec{
			{Label: "up", From: NodeID(14), To: NodeID(0), Port: 80},
			{Label: "cross", From: NodeID(7), To: NodeID(0), Port: 81},
		},
		Warmup:   Duration(2 * sim.Second),
		Duration: Duration(8 * sim.Second),
		Seeds:    []int64{1},
	}
	for _, base := range []*Spec{office, twinMixed(1), citySpec(40)} {
		serial := *base
		serial.Net.PhyWorkers = 0
		par := *base
		par.Net.PhyWorkers = 4
		rs, err := RunOne(&serial, 1)
		if err != nil {
			t.Fatalf("%s serial: %v", base.Name, err)
		}
		rp, err := RunOne(&par, 1)
		if err != nil {
			t.Fatalf("%s parallel: %v", base.Name, err)
		}
		if !reflect.DeepEqual(rs, rp) {
			t.Fatalf("%s: parallel fan-out changed the result:\nserial:   %+v\nparallel: %+v",
				base.Name, rs, rp)
		}
		if rs.Events == 0 {
			t.Fatalf("%s: empty run proves nothing", base.Name)
		}
	}
}
