// Package mac implements the software MAC the paper builds to avoid the
// AT86RF233's "deaf listening" (§4): unslotted CSMA-CA and link-layer
// retransmissions run in software with the radio kept in listen mode
// between attempts, immediate ACKs carry the frame-pending bit, and a
// random delay of up to d between link retries avoids repeated
// hidden-terminal collisions (§7.1).
//
// It also implements the Thread-style indirect delivery used for
// duty-cycled leaf nodes (§3.2, §9.5, Appendix C): a parent holds frames
// for a sleepy child until the child polls with a DataRequest command.
package mac

import (
	"tcplp/internal/obs"
	"tcplp/internal/phy"
	"tcplp/internal/sim"
)

// TxStatus is the outcome of a link-layer transmission attempt.
type TxStatus int

// Transmission outcomes.
const (
	TxOK TxStatus = iota
	TxNoAck
	TxChannelBusy
)

func (s TxStatus) String() string {
	switch s {
	case TxOK:
		return "ok"
	case TxNoAck:
		return "no-ack"
	case TxChannelBusy:
		return "channel-busy"
	}
	return "unknown"
}

// Params are the CSMA-CA and ARQ parameters. The zero value is not
// useful; use DefaultParams.
type Params struct {
	MinBE           int // macMinBE
	MaxBE           int // macMaxBE
	MaxCSMABackoffs int // macMaxCSMABackoffs
	// MaxFrameRetries is the number of link-layer retransmissions after
	// the initial attempt.
	MaxFrameRetries int
	// RetryDelayMax is the paper's d: before each link retry the node
	// waits uniform[0, d] in addition to CSMA backoff, so two frames
	// that collided are unlikely to collide again (§7.1).
	RetryDelayMax sim.Duration
	// DataWaitTimeout is how long a sleepy child listens for an indirect
	// frame after an ACK with the pending bit set.
	DataWaitTimeout sim.Duration
}

// DefaultParams mirrors IEEE 802.15.4 defaults plus the paper's software
// link-retry scheme with d = 40 ms, the value §7.1 recommends.
func DefaultParams() Params {
	return Params{
		MinBE:           3,
		MaxBE:           5,
		MaxCSMABackoffs: 4,
		MaxFrameRetries: 7,
		RetryDelayMax:   40 * sim.Millisecond,
		DataWaitTimeout: 100 * sim.Millisecond,
	}
}

// Stats counts MAC activity for the Fig. 6d "total frames transmitted"
// measurement and loss analysis.
type Stats struct {
	DataSent     uint64 // successful link transmissions (ACKed or no-ACK-needed)
	DataDropped  uint64 // frames dropped after exhausting retries
	Retries      uint64 // link-layer retransmission attempts
	CSMAFailures uint64 // channel-access failures (CCA busy too many times)
	AcksSent     uint64
	Duplicates   uint64 // MAC-level duplicate frames suppressed
	DataReqSent  uint64
	IndirectSent uint64
}

type txJob struct {
	frame    *phy.Frame
	wire     []byte // encoded once, when loaded into the frame buffer
	done     func(TxStatus)
	attempts int
	nb, be   int
	indirect bool
	jid      int64 // journey packet id of the carried datagram (0 = untagged)

	// Scheduler callbacks, built once per job instead of once per
	// backoff step / retry / load: a job under CSMA pressure schedules
	// many events, and per-event closures dominated the MAC's
	// allocation profile. Each checks m.inflight == job, so a stale
	// event for a finished job is a no-op.
	resumeFn func() // load done or retry delay elapsed: start CSMA
	stepFn   func() // radio freed mid-backoff: take another backoff step
	fireFn   func() // backoff+CCA delay elapsed: assess the channel
	txDoneFn func() // frame left the air
}

// Mac is one node's MAC instance.
type Mac struct {
	eng    *sim.Engine
	radio  *phy.Radio
	params Params

	seq         uint8
	queue       []*txJob
	inflight    *txJob
	ackTimer    *sim.Timer
	sendingAck  bool
	kickPending bool
	// Prebuilt callbacks for per-Mac (not per-job) events, plus the
	// state the ACK-completion callback needs (one ACK transmission can
	// be outstanding at a time).
	kickFn        func()
	ackDoneFn     func()
	ackWasWaiting bool
	// rxFrame is the decode target for inbound frames: one reception is
	// processed at a time, and no handler retains the Frame (payload
	// consumers copy what they keep), so one struct per MAC suffices.
	rxFrame phy.Frame
	// lastAckPending records the frame-pending bit of the most recent
	// ACK that completed one of our transmissions (data-request polls).
	lastAckPending bool

	// IdleListen decides whether the radio should listen when the MAC is
	// idle. Always-on routers return true; a SleepController installs a
	// policy that usually returns false. Nil means always listen.
	IdleListen func() bool

	// Trace, when non-nil, receives MAC-layer events (obs). Hooks only
	// read state after the RNG draws they describe, so enabling it
	// cannot perturb a run.
	Trace *obs.Trace

	// OnReceive is invoked for every accepted data or command frame.
	OnReceive func(f *phy.Frame)

	// OnDataRequest is invoked when a DataRequest command arrives (parent
	// side), after the ACK (with pending bit) has been generated.
	OnDataRequest func(child phy.Addr)

	// indirect delivery state (parent side)
	sleepyChildren map[phy.Addr]bool
	indirectQ      map[phy.Addr][]*txJob

	// duplicate suppression
	lastSeq map[phy.Addr]uint8
	seenSeq map[phy.Addr]bool

	Stats Stats
}

// New wires a MAC onto a radio. The radio's OnReceive/OnTxDone callbacks
// are owned by the MAC from this point on.
func New(eng *sim.Engine, radio *phy.Radio, params Params) *Mac {
	// The indirect-delivery and duplicate-suppression maps initialise
	// lazily at their write sites: a 10k-node city is mostly idle
	// listeners, and four empty maps per node was a visible slice of the
	// fleet's base heap (nil maps read fine).
	m := &Mac{
		eng:    eng,
		radio:  radio,
		params: params,
	}
	m.ackTimer = sim.NewTimer(eng, m.ackTimeout)
	m.kickFn = func() {
		m.kickPending = false
		m.kick()
	}
	m.ackDoneFn = func() {
		m.radio.OnTxDone = nil
		m.sendingAck = false
		m.Stats.AcksSent++
		if m.ackWasWaiting && m.inflight != nil {
			// Our own pending exchange lost its ACK window; retry it.
			m.linkRetry(TxNoAck)
		} else {
			m.applyIdleState()
			m.kick()
		}
	}
	radio.OnReceive = m.radioReceive
	m.applyIdleState()
	return m
}

// newJob builds a transmit job with its scheduler callbacks, which are
// shared by every load, backoff step, and retry of the job's lifetime.
func (m *Mac) newJob(f *phy.Frame, done func(TxStatus)) *txJob {
	job := &txJob{frame: f, done: done}
	job.resumeFn = func() {
		if m.inflight == job {
			m.startCSMA()
		}
	}
	job.stepFn = func() {
		if m.inflight == job {
			m.backoffStep()
		}
	}
	job.fireFn = func() { m.backoffFire(job) }
	job.txDoneFn = func() { m.txDone(job) }
	return job
}

// Radio returns the underlying radio.
func (m *Mac) Radio() *phy.Radio { return m.radio }

// Params returns the MAC parameters.
func (m *Mac) Params() Params { return m.params }

// SetRetryDelayMax changes the link-retry delay knob d at runtime (used
// by the Fig. 6 sweep).
func (m *Mac) SetRetryDelayMax(d sim.Duration) { m.params.RetryDelayMax = d }

// SetChildSleepy registers (or deregisters) a sleepy child: unicast
// frames to it are held in the indirect queue until it polls.
func (m *Mac) SetChildSleepy(child phy.Addr, sleepy bool) {
	if sleepy {
		if m.sleepyChildren == nil {
			m.sleepyChildren = map[phy.Addr]bool{}
		}
		m.sleepyChildren[child] = true
	} else {
		delete(m.sleepyChildren, child)
		for _, j := range m.indirectQ[child] {
			m.enqueue(j)
		}
		delete(m.indirectQ, child)
	}
}

// IndirectQueueLen returns the number of frames held for child.
func (m *Mac) IndirectQueueLen(child phy.Addr) int { return len(m.indirectQ[child]) }

func (m *Mac) applyIdleState() {
	if m.inflight != nil || m.sendingAck || m.radio.Transmitting() {
		return
	}
	listen := true
	if m.IdleListen != nil {
		listen = m.IdleListen()
	}
	m.radio.SetListen(listen)
}

// RefreshIdleState re-applies the idle listen policy; a SleepController
// calls this when its schedule changes the desired radio state.
func (m *Mac) RefreshIdleState() { m.applyIdleState() }

// Send queues a payload for dst. done (may be nil) is invoked with the
// link-layer outcome. Frames to registered sleepy children are placed on
// the indirect queue instead of the air.
func (m *Mac) Send(dst phy.Addr, payload []byte, done func(TxStatus)) {
	m.SendJID(dst, payload, 0, done)
}

// SendJID is Send with a journey packet id attached to the frame for
// causal tracing. The id is simulator metadata: it tags the job, the
// radio's in-flight transmission, and the obs events of every backoff,
// retry, and drop, but never appears in wire bytes.
func (m *Mac) SendJID(dst phy.Addr, payload []byte, jid int64, done func(TxStatus)) {
	m.seq++
	f := &phy.Frame{
		Type:       phy.FrameData,
		Seq:        m.seq,
		Dst:        dst,
		Src:        m.radio.Addr(),
		AckRequest: !dst.IsBroadcast(),
		Payload:    payload,
	}
	job := m.newJob(f, done)
	job.jid = jid
	if m.sleepyChildren[dst] {
		job.indirect = true
		if m.indirectQ == nil {
			m.indirectQ = map[phy.Addr][]*txJob{}
		}
		m.indirectQ[dst] = append(m.indirectQ[dst], job)
		return
	}
	m.enqueue(job)
}

// SendDataRequest transmits a DataRequest poll to the parent (leaf side).
// done receives the link outcome and whether the parent's ACK had the
// frame-pending bit set.
func (m *Mac) SendDataRequest(parent phy.Addr, done func(TxStatus, bool)) {
	m.seq++
	f := &phy.Frame{
		Type:       phy.FrameCommand,
		Seq:        m.seq,
		Dst:        parent,
		Src:        m.radio.Addr(),
		Command:    phy.DataRequest,
		AckRequest: true,
	}
	m.Stats.DataReqSent++
	m.enqueue(m.newJob(f, func(s TxStatus) {
		if done != nil {
			done(s, m.lastAckPending)
		}
	}))
}

// QueueLen returns the number of frames waiting (excluding indirect).
func (m *Mac) QueueLen() int {
	n := len(m.queue)
	if m.inflight != nil {
		n++
	}
	return n
}

func (m *Mac) enqueue(job *txJob) {
	if job.indirect {
		// Indirect frames jump the queue: §9.5 improvement (1),
		// "prioritized indirect messages over the current packet being
		// sent" — here, over queued packets; an in-flight frame finishes.
		m.queue = append([]*txJob{job}, m.queue...)
	} else {
		m.queue = append(m.queue, job)
	}
	m.kick()
}

func (m *Mac) kick() {
	if m.inflight != nil || len(m.queue) == 0 {
		return
	}
	if m.radio.Transmitting() || m.sendingAck {
		// The radio is busy with an ACK or a late transmission. Poll
		// until it frees: relying on every completion path to re-kick
		// proved fragile (a lost wakeup strands the queue forever).
		if !m.kickPending {
			m.kickPending = true
			m.eng.Schedule(phy.UnitBackoff, m.kickFn)
		}
		return
	}
	m.inflight = m.queue[0]
	m.queue = m.queue[1:]
	m.inflight.attempts = 0
	job := m.inflight
	// Pay the SPI cost of moving the frame into the radio's frame buffer
	// once; link retries reuse the buffer. The radio listens during the
	// load, the CSMA backoff, and the CCA — the fix for deaf listening
	// (§4).
	m.radio.SetListen(true)
	job.wire = job.frame.Encode()
	m.eng.Schedule(phy.LoadTime(len(job.wire)), job.resumeFn)
}

func (m *Mac) startCSMA() {
	job := m.inflight
	job.nb = 0
	// Escalate the starting backoff exponent across link retries: two
	// hidden-terminal victims that collided once spread further apart on
	// each attempt even before the random retry delay d is added.
	job.be = min(m.params.MinBE+job.attempts, m.params.MaxBE)
	m.radio.SetListen(true)
	m.backoffStep()
}

func (m *Mac) backoffStep() {
	job := m.inflight
	if job == nil {
		return
	}
	slots := m.eng.Rand().Intn(1 << job.be)
	if tr := m.Trace; tr != nil {
		tr.Emit(obs.Event{T: m.eng.Now(), Kind: obs.MacBackoff, Node: m.radio.ID(), A: int64(job.be), B: int64(slots), J: job.jid})
	}
	delay := sim.Duration(slots)*phy.UnitBackoff + phy.CCATime
	m.eng.Schedule(delay, job.fireFn)
}

// backoffFire assesses the channel after a backoff+CCA delay.
func (m *Mac) backoffFire(job *txJob) {
	if m.inflight != job {
		return
	}
	if m.radio.Transmitting() {
		// An ACK we owed someone is on air; retry shortly.
		m.eng.Schedule(phy.UnitBackoff, job.stepFn)
		return
	}
	if m.radio.ChannelClear() {
		m.transmit()
		return
	}
	job.nb++
	job.be = min(job.be+1, m.params.MaxBE)
	if job.nb > m.params.MaxCSMABackoffs {
		m.Stats.CSMAFailures++
		if tr := m.Trace; tr != nil {
			tr.Emit(obs.Event{T: m.eng.Now(), Kind: obs.MacCSMAFail, Node: m.radio.ID(), A: int64(job.nb), J: job.jid})
		}
		m.linkRetry(TxChannelBusy)
		return
	}
	m.backoffStep()
}

func (m *Mac) transmit() {
	job := m.inflight
	if job.attempts > 0 {
		m.Stats.Retries++
	}
	m.radio.OnTxDone = job.txDoneFn
	m.radio.TxJID = job.jid
	m.radio.TransmitLoaded(job.wire)
}

// txDone runs when job's frame has left the air.
func (m *Mac) txDone(job *txJob) {
	m.radio.OnTxDone = nil
	if m.inflight != job {
		m.applyIdleState()
		return
	}
	if !job.frame.AckRequest {
		m.finish(TxOK)
		return
	}
	m.ackTimer.Reset(phy.AckWait)
}

func (m *Mac) ackTimeout() {
	if m.inflight == nil {
		return
	}
	m.linkRetry(TxNoAck)
}

func (m *Mac) linkRetry(cause TxStatus) {
	job := m.inflight
	job.attempts++
	if job.attempts > m.params.MaxFrameRetries {
		m.finish(cause)
		return
	}
	// The paper's hidden-terminal fix: wait uniform[0, d] before retrying
	// so the two colliding parties retransmit at different times.
	var delay sim.Duration
	if d := m.params.RetryDelayMax; d > 0 {
		delay = sim.Duration(m.eng.Rand().Int63n(int64(d) + 1))
	}
	// The retry event is emitted here — where the delay is drawn — rather
	// than at the retransmission itself, so the analyzer can attribute
	// the wait (B) to the journey, and so a retry whose CSMA never
	// completes is still visible.
	if tr := m.Trace; tr != nil {
		tr.Emit(obs.Event{T: m.eng.Now(), Kind: obs.MacRetry, Node: m.radio.ID(), A: int64(job.attempts), B: int64(delay), J: job.jid})
	}
	m.eng.Schedule(delay, job.resumeFn)
}

func (m *Mac) finish(status TxStatus) {
	job := m.inflight
	m.inflight = nil
	m.ackTimer.Stop()
	if status == TxOK {
		m.Stats.DataSent++
		if job.indirect {
			m.Stats.IndirectSent++
		}
	} else {
		m.Stats.DataDropped++
		if tr := m.Trace; tr != nil {
			cause := obs.CauseRetriesExhausted
			if status == TxChannelBusy {
				cause = obs.CauseCSMAFail
			}
			tr.Emit(obs.Event{T: m.eng.Now(), Kind: obs.MacDrop, Node: m.radio.ID(), A: int64(status), J: job.jid, Cause: cause})
		}
	}
	m.applyIdleState()
	if job.done != nil {
		job.done(status)
	}
	m.kick()
}

func (m *Mac) radioReceive(data []byte) {
	f := &m.rxFrame
	if err := phy.DecodeFrameInto(f, data); err != nil {
		return
	}
	// The journey id rides beside the wire bytes, not in them: decode
	// zeroed f.J, the radio holds the id of the frame being delivered.
	f.J = m.radio.RxJID
	if f.Type == phy.FrameAck {
		m.handleAck(f)
		return
	}
	if f.Dst != m.radio.Addr() && !f.Dst.IsBroadcast() {
		return
	}
	// Generate the immediate ACK first (after turnaround), then deliver.
	if f.AckRequest {
		pending := false
		if f.Type == phy.FrameCommand && f.Command == phy.DataRequest {
			pending = len(m.indirectQ[f.Src]) > 0
		} else if m.sleepyChildren[f.Src] {
			pending = len(m.indirectQ[f.Src]) > 0
		}
		m.sendAck(f.Seq, pending)
	}
	// MAC-level duplicate suppression (a lost ACK causes the peer to
	// retransmit a frame we already accepted).
	if m.seenSeq[f.Src] && m.lastSeq[f.Src] == f.Seq {
		m.Stats.Duplicates++
		return
	}
	if m.lastSeq == nil {
		m.lastSeq = map[phy.Addr]uint8{}
		m.seenSeq = map[phy.Addr]bool{}
	}
	m.lastSeq[f.Src] = f.Seq
	m.seenSeq[f.Src] = true

	if f.Type == phy.FrameCommand && f.Command == phy.DataRequest {
		m.serveDataRequest(f.Src)
		if m.OnDataRequest != nil {
			m.OnDataRequest(f.Src)
		}
		return
	}
	if m.OnReceive != nil {
		m.OnReceive(f)
	}
}

func (m *Mac) handleAck(f *phy.Frame) {
	job := m.inflight
	if job == nil || !m.ackTimer.Armed() || f.Seq != job.frame.Seq {
		return
	}
	m.lastAckPending = f.FramePending
	m.finish(TxOK)
}

func (m *Mac) sendAck(seq uint8, pending bool) {
	if m.radio.Transmitting() {
		return // cannot ACK while our own frame is on air (rare)
	}
	// If we were awaiting a link ACK, turning the radio around to
	// transmit forfeits it (half-duplex); the retry path recovers. A job
	// that is merely loading or in CSMA backoff is NOT "waiting" — its
	// own scheduled steps continue independently.
	m.ackWasWaiting = m.ackTimer.Armed()
	m.ackTimer.Stop()
	m.sendingAck = true
	m.radio.OnTxDone = m.ackDoneFn
	// ACKs are generated from radio-internal state: no SPI load, just the
	// turnaround (inside TransmitLoaded). They carry no journey id.
	m.radio.TxJID = 0
	m.radio.TransmitLoaded(phy.AckFor(seq, pending).Encode())
}

// serveDataRequest moves the next indirect frame for child (if any) to
// the head of the transmit queue. If more frames remain queued, the
// frame-pending bit is set so the child keeps listening (Appendix C's
// burst-delivery improvement, after [37]).
func (m *Mac) serveDataRequest(child phy.Addr) {
	q := m.indirectQ[child]
	if len(q) == 0 {
		return
	}
	job := q[0]
	m.indirectQ[child] = q[1:]
	job.frame.FramePending = len(m.indirectQ[child]) > 0
	m.enqueue(job)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// DebugState summarizes internal MAC progress state (diagnostics only).
func (m *Mac) DebugState() string {
	st := "idle"
	if m.inflight != nil {
		st = "inflight"
		if m.inflight.wire == nil {
			st += "/loading"
		}
	}
	return st + " queue=" + itoa(len(m.queue)) +
		" sendingAck=" + boolStr(m.sendingAck) +
		" ackTimerArmed=" + boolStr(m.ackTimer.Armed()) +
		" radio=" + m.radio.State().String()
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}
