package mac

import (
	"testing"

	"tcplp/internal/phy"
	"tcplp/internal/sim"
)

// pair builds two always-on MACs one hop apart.
func pair(seed int64) (*sim.Engine, *Mac, *Mac) {
	eng := sim.NewEngine(seed)
	ch := phy.NewChannel(eng, phy.NewUnitDisk(1.0, 1.0))
	a := New(eng, ch.AddRadio(0, phy.Point{X: 0}), DefaultParams())
	b := New(eng, ch.AddRadio(1, phy.Point{X: 1}), DefaultParams())
	return eng, a, b
}

func TestUnicastDelivery(t *testing.T) {
	eng, a, b := pair(1)
	var got []byte
	b.OnReceive = func(f *phy.Frame) { got = f.Payload }
	status := TxStatus(-1)
	a.Send(b.Radio().Addr(), []byte("payload"), func(s TxStatus) { status = s })
	eng.Run()
	if string(got) != "payload" {
		t.Fatalf("payload = %q", got)
	}
	if status != TxOK {
		t.Fatalf("status = %v", status)
	}
	if b.Stats.AcksSent != 1 {
		t.Fatalf("acks sent = %d", b.Stats.AcksSent)
	}
}

func TestQueueFIFO(t *testing.T) {
	eng, a, b := pair(2)
	var got []string
	b.OnReceive = func(f *phy.Frame) { got = append(got, string(f.Payload)) }
	for _, s := range []string{"one", "two", "three"} {
		a.Send(b.Radio().Addr(), []byte(s), nil)
	}
	eng.Run()
	if len(got) != 3 || got[0] != "one" || got[1] != "two" || got[2] != "three" {
		t.Fatalf("delivery order: %v", got)
	}
}

func TestRetriesOnLoss(t *testing.T) {
	eng := sim.NewEngine(3)
	ch := phy.NewChannel(eng, phy.NewUnitDisk(1.0, 1.0))
	ra := ch.AddRadio(0, phy.Point{X: 0})
	rb := ch.AddRadio(1, phy.Point{X: 1})
	// Drop the first two data transmissions a→b.
	drops := 2
	ch.PER = func(src, dst *phy.Radio) float64 {
		if src == ra && drops > 0 {
			drops--
			return 1
		}
		return 0
	}
	a := New(eng, ra, DefaultParams())
	b := New(eng, rb, DefaultParams())
	delivered := 0
	b.OnReceive = func(*phy.Frame) { delivered++ }
	var status TxStatus = -1
	a.Send(rb.Addr(), []byte("x"), func(s TxStatus) { status = s })
	eng.Run()
	if status != TxOK || delivered != 1 {
		t.Fatalf("status=%v delivered=%d", status, delivered)
	}
	if a.Stats.Retries != 2 {
		t.Fatalf("retries = %d, want 2", a.Stats.Retries)
	}
}

func TestDropAfterMaxRetries(t *testing.T) {
	eng := sim.NewEngine(4)
	ch := phy.NewChannel(eng, phy.NewUnitDisk(1.0, 1.0))
	ra := ch.AddRadio(0, phy.Point{X: 0})
	rb := ch.AddRadio(1, phy.Point{X: 1})
	ch.PER = func(src, dst *phy.Radio) float64 { return 1 } // total blackout
	p := DefaultParams()
	p.MaxFrameRetries = 3
	a := New(eng, ra, p)
	New(eng, rb, p)
	var status TxStatus = -1
	a.Send(rb.Addr(), []byte("x"), func(s TxStatus) { status = s })
	eng.Run()
	if status != TxNoAck {
		t.Fatalf("status = %v, want no-ack", status)
	}
	if a.Stats.DataDropped != 1 || a.Stats.Retries != 3 {
		t.Fatalf("dropped=%d retries=%d", a.Stats.DataDropped, a.Stats.Retries)
	}
}

func TestDuplicateSuppression(t *testing.T) {
	eng := sim.NewEngine(5)
	ch := phy.NewChannel(eng, phy.NewUnitDisk(1.0, 1.0))
	ra := ch.AddRadio(0, phy.Point{X: 0})
	rb := ch.AddRadio(1, phy.Point{X: 1})
	// Lose b's ACKs (frames from b) once, forcing a retransmission of a
	// frame b already accepted.
	ackDrops := 1
	ch.PER = func(src, dst *phy.Radio) float64 {
		if src == rb && ackDrops > 0 {
			ackDrops--
			return 1
		}
		return 0
	}
	a := New(eng, ra, DefaultParams())
	b := New(eng, rb, DefaultParams())
	delivered := 0
	b.OnReceive = func(*phy.Frame) { delivered++ }
	a.Send(rb.Addr(), []byte("x"), nil)
	eng.Run()
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1 (duplicate must be suppressed)", delivered)
	}
	if b.Stats.Duplicates != 1 {
		t.Fatalf("duplicates = %d, want 1", b.Stats.Duplicates)
	}
}

func TestBroadcastNoAck(t *testing.T) {
	eng, a, b := pair(6)
	got := 0
	b.OnReceive = func(*phy.Frame) { got++ }
	var status TxStatus = -1
	a.Send(phy.BroadcastAddr, []byte("hello all"), func(s TxStatus) { status = s })
	eng.Run()
	if got != 1 || status != TxOK {
		t.Fatalf("broadcast: got=%d status=%v", got, status)
	}
	if b.Stats.AcksSent != 0 {
		t.Fatal("broadcast must not be ACKed")
	}
}

// Two hidden senders (0 and 2 cannot sense each other) both push a stream
// of frames to node 1. With d=0, retries repeatedly collide and drops
// occur; with d=40ms, delivery improves markedly (Fig. 6 mechanism).
func TestRetryDelayBeatsHiddenTerminals(t *testing.T) {
	run := func(d sim.Duration) (delivered, dropped uint64) {
		eng := sim.NewEngine(7)
		ch := phy.NewChannel(eng, phy.NewUnitDisk(1.0, 1.0))
		r0 := ch.AddRadio(0, phy.Point{X: 0})
		r1 := ch.AddRadio(1, phy.Point{X: 1})
		r2 := ch.AddRadio(2, phy.Point{X: 2})
		p := DefaultParams()
		p.RetryDelayMax = d
		p.MaxFrameRetries = 4
		m0 := New(eng, r0, p)
		m1 := New(eng, r1, p)
		m2 := New(eng, r2, p)
		count := uint64(0)
		m1.OnReceive = func(*phy.Frame) { count++ }
		payload := make([]byte, 90)
		var feed func(m *Mac)
		feed = func(m *Mac) {
			m.Send(r1.Addr(), payload, func(TxStatus) {
				if eng.Now() < sim.Time(20*sim.Second) {
					feed(m)
				}
			})
		}
		feed(m0)
		feed(m2)
		eng.RunUntil(sim.Time(25 * sim.Second))
		return count, m0.Stats.DataDropped + m2.Stats.DataDropped
	}
	d0Delivered, d0Dropped := run(0)
	d40Delivered, d40Dropped := run(40 * sim.Millisecond)
	if d0Dropped == 0 {
		t.Fatalf("expected hidden-terminal drops at d=0 (delivered=%d)", d0Delivered)
	}
	if d40Dropped >= d0Dropped {
		t.Fatalf("retry delay did not reduce drops: d0=%d d40=%d", d0Dropped, d40Dropped)
	}
	if d40Delivered == 0 {
		t.Fatal("no delivery at d=40ms")
	}
}

func TestIndirectDelivery(t *testing.T) {
	eng := sim.NewEngine(8)
	ch := phy.NewChannel(eng, phy.NewUnitDisk(1.0, 1.0))
	parentR := ch.AddRadio(0, phy.Point{X: 0})
	childR := ch.AddRadio(1, phy.Point{X: 1})
	parent := New(eng, parentR, DefaultParams())
	child := New(eng, childR, DefaultParams())
	parent.SetChildSleepy(childR.Addr(), true)

	sc := NewSleepController(eng, child, parentR.Addr())
	sc.SleepInterval = 500 * sim.Millisecond
	var got []string
	child.OnReceive = func(f *phy.Frame) {
		got = append(got, string(f.Payload))
		sc.FrameDelivered(f.FramePending)
	}
	sc.Start()

	// Parent queues two frames for the sleeping child; they must wait in
	// the indirect queue, then both be delivered in one wakeup window via
	// the frame-pending bit.
	parent.Send(childR.Addr(), []byte("first"), nil)
	parent.Send(childR.Addr(), []byte("second"), nil)
	if parent.IndirectQueueLen(childR.Addr()) != 2 {
		t.Fatalf("indirect queue = %d, want 2", parent.IndirectQueueLen(childR.Addr()))
	}
	eng.RunUntil(sim.Time(400 * sim.Millisecond))
	if len(got) != 0 {
		t.Fatal("frame delivered before child polled")
	}
	eng.RunUntil(sim.Time(2 * sim.Second))
	if len(got) != 2 || got[0] != "first" || got[1] != "second" {
		t.Fatalf("indirect delivery: %v", got)
	}
	if parent.Stats.IndirectSent != 2 {
		t.Fatalf("indirect sent = %d", parent.Stats.IndirectSent)
	}
	// The child's radio must be mostly asleep.
	if dc := childR.DutyCycle(); dc > 0.25 {
		t.Fatalf("child duty cycle = %.3f, want well under 25%%", dc)
	}
}

func TestSleepyChildUpstreamAnytime(t *testing.T) {
	eng := sim.NewEngine(9)
	ch := phy.NewChannel(eng, phy.NewUnitDisk(1.0, 1.0))
	parentR := ch.AddRadio(0, phy.Point{X: 0})
	childR := ch.AddRadio(1, phy.Point{X: 1})
	parent := New(eng, parentR, DefaultParams())
	child := New(eng, childR, DefaultParams())
	parent.SetChildSleepy(childR.Addr(), true)
	sc := NewSleepController(eng, child, parentR.Addr())
	sc.Start()
	got := ""
	parent.OnReceive = func(f *phy.Frame) { got = string(f.Payload) }
	var status TxStatus = -1
	eng.Schedule(sim.Second, func() {
		child.Send(parentR.Addr(), []byte("up"), func(s TxStatus) { status = s })
	})
	eng.RunUntil(sim.Time(3 * sim.Second))
	if got != "up" || status != TxOK {
		t.Fatalf("upstream from sleepy child failed: %q %v", got, status)
	}
	if !childR.Sleeping() {
		t.Fatal("child radio should return to sleep after sending")
	}
}

func TestAdaptiveSleepInterval(t *testing.T) {
	eng := sim.NewEngine(10)
	ch := phy.NewChannel(eng, phy.NewUnitDisk(1.0, 1.0))
	parentR := ch.AddRadio(0, phy.Point{X: 0})
	childR := ch.AddRadio(1, phy.Point{X: 1})
	parent := New(eng, parentR, DefaultParams())
	child := New(eng, childR, DefaultParams())
	parent.SetChildSleepy(childR.Addr(), true)
	sc := NewSleepController(eng, child, parentR.Addr())
	sc.Adaptive = true
	sc.Min = 20 * sim.Millisecond
	sc.Max = 5 * sim.Second
	received := 0
	child.OnReceive = func(f *phy.Frame) {
		received++
		sc.FrameDelivered(f.FramePending)
	}
	sc.Start()
	// With no traffic the interval must back off to Max.
	eng.RunUntil(sim.Time(60 * sim.Second))
	if sc.current != sc.Max {
		t.Fatalf("idle interval = %v, want %v", sc.current, sc.Max)
	}
	pollsBefore := sc.Polls
	// A burst of downstream frames must collapse the interval to Min and
	// drain quickly.
	for i := 0; i < 10; i++ {
		parent.Send(childR.Addr(), []byte{byte(i)}, nil)
	}
	start := eng.Now()
	eng.RunUntil(start.Add(10 * sim.Second))
	if received != 10 {
		t.Fatalf("received %d of 10 burst frames", received)
	}
	if sc.current != sc.Min && sc.Polls == pollsBefore {
		t.Fatal("adaptive interval did not react to burst")
	}
	// And back off again when idle.
	eng.RunUntil(eng.Now().Add(60 * sim.Second))
	if sc.current != sc.Max {
		t.Fatalf("interval did not back off after burst: %v", sc.current)
	}
}

func TestFastPollWhileExpecting(t *testing.T) {
	eng := sim.NewEngine(11)
	ch := phy.NewChannel(eng, phy.NewUnitDisk(1.0, 1.0))
	parentR := ch.AddRadio(0, phy.Point{X: 0})
	childR := ch.AddRadio(1, phy.Point{X: 1})
	parent := New(eng, parentR, DefaultParams())
	child := New(eng, childR, DefaultParams())
	parent.SetChildSleepy(childR.Addr(), true)
	sc := NewSleepController(eng, child, parentR.Addr())
	sc.SleepInterval = 4 * sim.Minute
	sc.FastInterval = 100 * sim.Millisecond
	sc.Start()
	sc.SetExpecting(true)
	eng.RunUntil(sim.Time(5 * sim.Second))
	if sc.Polls < 30 {
		t.Fatalf("fast polling inactive: %d polls in 5s", sc.Polls)
	}
	sc.SetExpecting(false)
	p := sc.Polls
	eng.RunUntil(sim.Time(30 * sim.Second))
	if sc.Polls > p+2 {
		t.Fatalf("polling still fast after SetExpecting(false): %d extra", sc.Polls-p)
	}
}

func TestCSMADefersToBusyChannel(t *testing.T) {
	// Nodes 0 and 2 both in sense range of each other (sense 2.0) sending
	// to 1: CSMA should avoid almost all collisions.
	eng := sim.NewEngine(12)
	ch := phy.NewChannel(eng, phy.NewUnitDisk(1.0, 2.0))
	r0 := ch.AddRadio(0, phy.Point{X: 0})
	r1 := ch.AddRadio(1, phy.Point{X: 1})
	r2 := ch.AddRadio(2, phy.Point{X: 2})
	m0 := New(eng, r0, DefaultParams())
	m1 := New(eng, r1, DefaultParams())
	m2 := New(eng, r2, DefaultParams())
	count := 0
	m1.OnReceive = func(*phy.Frame) { count++ }
	for i := 0; i < 20; i++ {
		m0.Send(r1.Addr(), make([]byte, 80), nil)
		m2.Send(r1.Addr(), make([]byte, 80), nil)
	}
	eng.Run()
	if count != 40 {
		t.Fatalf("delivered %d of 40 with carrier sensing", count)
	}
	if m0.Stats.DataDropped+m2.Stats.DataDropped > 0 {
		t.Fatal("drops despite carrier sensing")
	}
}
