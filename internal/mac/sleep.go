package mac

import (
	"tcplp/internal/phy"
	"tcplp/internal/sim"
)

// SleepController implements the listen-after-send duty cycling of a
// Thread sleepy end device (§3.2) and the paper's two refinements:
//
//   - Fast polling while a transport-layer response is expected (§9.2):
//     the data-request interval drops to FastInterval when the transport
//     marks itself "expecting", and returns to SleepInterval otherwise.
//
//   - Trickle-style adaptive sleep interval (Appendix C): on receiving a
//     downstream packet the interval collapses to Min; each poll that
//     yields nothing doubles it, clamped at Max.
//
// The controller owns the leaf radio's idle state: the radio sleeps
// except while transmitting, polling, or in the post-poll wakeup window.
type SleepController struct {
	eng    *sim.Engine
	mac    *Mac
	parent phy.Addr

	// SleepInterval is the base data-request period (Thread default: 4
	// minutes).
	SleepInterval sim.Duration
	// FastInterval is the poll period while a response is expected
	// (paper: 100 ms).
	FastInterval sim.Duration

	// Adaptive enables the Trickle-controlled interval of Appendix C.
	Adaptive bool
	// Min/Max bound the adaptive interval (paper: 20 ms / 5 s).
	Min, Max sim.Duration

	current   sim.Duration // adaptive interval state
	expecting int          // >0 while transport expects inbound traffic
	awake     bool         // inside a wakeup (receive) window
	pollTimer *sim.Timer
	waitTimer *sim.Timer
	started   bool

	// Polls counts data requests issued; Wakeups counts pending-bit
	// windows entered.
	Polls, Wakeups uint64
}

// NewSleepController attaches duty cycling to a leaf MAC. The MAC's idle
// listen policy is taken over by the controller.
func NewSleepController(eng *sim.Engine, m *Mac, parent phy.Addr) *SleepController {
	sc := &SleepController{
		eng:           eng,
		mac:           m,
		parent:        parent,
		SleepInterval: 4 * sim.Minute,
		FastInterval:  100 * sim.Millisecond,
		Min:           20 * sim.Millisecond,
		Max:           5 * sim.Second,
	}
	sc.pollTimer = sim.NewTimer(eng, sc.poll)
	sc.waitTimer = sim.NewTimer(eng, sc.wakeupTimeout)
	m.IdleListen = func() bool { return sc.awake }
	return sc
}

// Start begins the poll/sleep cycle.
func (sc *SleepController) Start() {
	if sc.started {
		return
	}
	sc.started = true
	sc.current = sc.interval()
	sc.mac.RefreshIdleState()
	sc.pollTimer.Reset(sc.current)
}

// SetExpecting tells the controller whether the transport layer is
// waiting for a response (unACKed TCP data in flight, outstanding CoAP
// confirmable, ...). While expecting, polls run at FastInterval.
func (sc *SleepController) SetExpecting(on bool) {
	if on {
		sc.expecting++
		if sc.expecting == 1 && sc.started {
			sc.pollTimer.Reset(sc.interval())
		}
		return
	}
	if sc.expecting > 0 {
		sc.expecting--
	}
}

// Expecting reports whether fast polling is active.
func (sc *SleepController) Expecting() bool { return sc.expecting > 0 }

// interval returns the next poll delay under the current policy. A
// FastInterval of zero disables expecting-driven fast polling (Appendix C
// studies fixed intervals without the §9.2 hint).
func (sc *SleepController) interval() sim.Duration {
	if sc.expecting > 0 && sc.FastInterval > 0 {
		return sc.FastInterval
	}
	if sc.Adaptive {
		if sc.current < sc.Min {
			sc.current = sc.Min
		}
		if sc.current > sc.Max {
			sc.current = sc.Max
		}
		return sc.current
	}
	return sc.SleepInterval
}

// NotifyInbound is called by the MAC owner when a downstream packet
// arrives; under the adaptive policy it collapses the interval to Min.
func (sc *SleepController) NotifyInbound() {
	if !sc.Adaptive {
		return
	}
	sc.current = sc.Min
	if sc.started && !sc.awake {
		sc.pollTimer.Reset(sc.interval())
	}
}

func (sc *SleepController) poll() {
	sc.Polls++
	sc.mac.SendDataRequest(sc.parent, func(status TxStatus, pending bool) {
		if status != TxOK {
			// Poll lost; treat as an empty poll.
			sc.afterEmptyPoll()
			return
		}
		if pending {
			sc.enterWakeup()
			return
		}
		sc.afterEmptyPoll()
	})
}

func (sc *SleepController) afterEmptyPoll() {
	if sc.Adaptive && sc.expecting == 0 {
		sc.current = minDur(sc.current*2, sc.Max)
	}
	sc.scheduleNext()
}

func (sc *SleepController) scheduleNext() {
	sc.awake = false
	sc.mac.RefreshIdleState()
	sc.pollTimer.Reset(sc.interval())
}

func (sc *SleepController) enterWakeup() {
	sc.Wakeups++
	sc.awake = true
	sc.mac.RefreshIdleState()
	sc.waitTimer.Reset(sc.mac.Params().DataWaitTimeout)
}

// FrameDelivered is called by the MAC owner for each downstream frame
// received during a wakeup window; pending indicates the parent has more
// queued (frame-pending bit), in which case the window extends.
func (sc *SleepController) FrameDelivered(pending bool) {
	if sc.Adaptive {
		sc.current = sc.Min
	}
	if !sc.awake {
		return
	}
	if pending {
		sc.waitTimer.Reset(sc.mac.Params().DataWaitTimeout)
		return
	}
	sc.waitTimer.Stop()
	sc.scheduleNext()
}

func (sc *SleepController) wakeupTimeout() {
	sc.scheduleNext()
}

func minDur(a, b sim.Duration) sim.Duration {
	if a < b {
		return a
	}
	return b
}
