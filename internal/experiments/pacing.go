package experiments

import (
	"tcplp/internal/scenario"
	"tcplp/internal/sim"
	"tcplp/internal/tcplp/cc"
)

// Pacing is the paced-vs-unpaced head-to-head: the same bulk flow run
// under ACK-clocked NewReno and paced BBR over the two scenarios where
// burst clocking hurts most — the hidden-terminal chain (d = 0, where
// an ACK releasing a back-to-back window train maximizes intra-path
// collisions, §7.1) and a duty-cycled leaf (where a burst arriving
// while the radio sleeps piles up in the parent's indirect queue,
// §9.2). The channel realization is held fixed per scenario so rows
// differ only by the algorithm; both scenarios are declarative specs
// run by the scenario subsystem.
func Pacing(o Opts) *Table {
	t := &Table{
		ID:    "pacing",
		Title: "Send pacing: ACK-clocked NewReno vs paced BBR",
		Columns: []string{"Scenario", "Variant", "Goodput kb/s", "Rtx",
			"Timeouts", "SRTT ms"},
	}
	warm, dur := o.scale().dur(15*sim.Second), o.scale().dur(90*sim.Second)
	variants := []cc.Variant{cc.NewReno, cc.Bbr}
	noRetryDelay := scenario.Duration(0)
	noFastPoll := scenario.Duration(0)

	var specs []*scenario.Spec
	var labels []string
	// Hidden-terminal chain: three hops, no link-retry delay, uplink.
	for _, v := range variants {
		specs = append(specs, &scenario.Spec{
			Name:     "pacing-hidden-" + string(v),
			Topology: scenario.TopologySpec{Kind: scenario.TopoChain, Nodes: 4},
			Net:      scenario.NetSpec{RetryDelay: &noRetryDelay},
			Flows: []scenario.FlowSpec{{
				From: scenario.NodeID(3), To: scenario.NodeID(0), Variant: string(v),
			}},
			Warmup:   scenario.Duration(warm),
			Duration: scenario.Duration(dur),
			Seeds:    o.seeds(960),
		})
		labels = append(labels, "hidden terminal (3 hops, d=0)")
	}
	// Duty-cycled leaf: downlink through the parent's indirect queue,
	// fixed 250 ms sleep interval with the fast-poll hint disabled
	// (Appendix C conditions, where burst timing is everything).
	for _, v := range variants {
		specs = append(specs, &scenario.Spec{
			Name:     "pacing-dutycycled-" + string(v),
			Topology: scenario.TopologySpec{Kind: scenario.TopoChain, Nodes: 2},
			Nodes: []scenario.NodeSpec{{
				ID: 1, Sleepy: true,
				SleepInterval:  scenario.Duration(250 * sim.Millisecond),
				FastInterval:   &noFastPoll,
				NoFastPollHint: true,
			}},
			Flows: []scenario.FlowSpec{{
				From: scenario.NodeID(0), To: scenario.NodeID(1), Variant: string(v),
			}},
			Warmup:   scenario.Duration(warm),
			Duration: scenario.Duration(dur),
			Seeds:    o.seeds(961),
		})
		labels = append(labels, "duty-cycled leaf (250 ms sleep, downlink)")
	}

	results := o.run(specs)
	for i, sr := range results {
		variant := sr.Runs[0].Flows[0].Variant
		t.AddRow(labels[i], variant,
			o.cell(flowSeries(sr, 0, goodputOf), f1),
			o.cell(flowSeries(sr, 0, func(f scenario.FlowResult) float64 { return float64(f.Timeouts + f.FastRtx) }), f0),
			o.cell(flowSeries(sr, 0, func(f scenario.FlowResult) float64 { return float64(f.Timeouts) }), f0),
			o.cell(flowSeries(sr, 0, func(f scenario.FlowResult) float64 { return f.SRTTms }), f1))
	}
	t.Note("paced BBR releases at most 2 segments back-to-back (pinned by the transfer-test gap assertion); ACK-clocked variants emit full window trains")
	return t
}
