package experiments

import (
	"tcplp/internal/mesh"
	"tcplp/internal/sim"
	"tcplp/internal/stack"
	"tcplp/internal/tcplp/cc"
)

// Pacing is the paced-vs-unpaced head-to-head: the same bulk flow run
// under ACK-clocked NewReno and paced BBR over the two scenarios where
// burst clocking hurts most — the hidden-terminal chain (d = 0, where
// an ACK releasing a back-to-back window train maximizes intra-path
// collisions, §7.1) and a duty-cycled leaf (where a burst arriving
// while the radio sleeps piles up in the parent's indirect queue,
// §9.2). The channel realization is held fixed per scenario so rows
// differ only by the algorithm.
func Pacing(scale Scale) *Table {
	t := &Table{
		ID:    "pacing",
		Title: "Send pacing: ACK-clocked NewReno vs paced BBR",
		Columns: []string{"Scenario", "Variant", "Goodput kb/s", "Rtx",
			"Timeouts", "SRTT ms"},
	}
	warm, dur := scale.dur(15*sim.Second), scale.dur(90*sim.Second)
	variants := []cc.Variant{cc.NewReno, cc.Bbr}

	// Hidden-terminal chain: three hops, no link-retry delay, uplink.
	for _, v := range variants {
		opt := stack.DefaultOptions()
		opt.MAC.RetryDelayMax = 0
		opt.TCP.Variant = v
		net := stack.New(960, mesh.Chain(4, 10), opt)
		res := measureFlow(net, net.Nodes[3], net.Nodes[0], warm, dur)
		t.AddRow("hidden terminal (3 hops, d=0)", string(v),
			f1(res.GoodputKbps), du(res.Timeouts+res.FastRtx),
			du(res.Timeouts), f1(res.SRTT.Milliseconds()))
	}

	// Duty-cycled leaf: downlink through the parent's indirect queue,
	// fixed 250 ms sleep interval with the fast-poll hint disabled
	// (Appendix C conditions, where burst timing is everything).
	for _, v := range variants {
		opt := stack.DefaultOptions()
		opt.TCP.Variant = v
		net := stack.New(961, mesh.Chain(2, 10), opt)
		sc := net.MakeSleepyLeaf(1)
		sc.SleepInterval = 250 * sim.Millisecond
		sc.FastInterval = 0
		net.Nodes[1].TCP.OnExpectingChange = nil
		sc.Start()
		res := measureFlow(net, net.Nodes[0], net.Nodes[1], warm, dur)
		t.AddRow("duty-cycled leaf (250 ms sleep, downlink)", string(v),
			f1(res.GoodputKbps), du(res.Timeouts+res.FastRtx),
			du(res.Timeouts), f1(res.SRTT.Milliseconds()))
	}

	t.Note("paced BBR releases at most 2 segments back-to-back (pinned by the transfer-test gap assertion); ACK-clocked variants emit full window trains")
	return t
}
