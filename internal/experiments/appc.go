package experiments

import (
	"tcplp/internal/scenario"
	"tcplp/internal/sim"
)

// The Appendix C duty-cycled-link study runs through the scenario
// subsystem too: each measurement is a two-node chain whose leaf is a
// sleepy node with the fast-poll hint disabled (Appendix C studies the
// raw protocol), driving one bulk flow to or from the wired host. The
// renderers reproduce the bespoke loop bit-for-bit
// (testdata/equiv_fig12..fig14).

// dutyCycledSpec builds one such run: uplink (leaf → host) or downlink,
// a fixed or adaptive sleep interval, and the window in segments.
func dutyCycledSpec(name string, uplink bool, sleep sim.Duration, adaptive bool,
	windowSegs int, warm, dur sim.Duration, seeds []int64) *scenario.Spec {

	noFastPoll := scenario.Duration(0)
	ns := scenario.NodeSpec{
		ID: 1, Sleepy: true,
		FastInterval:   &noFastPoll,
		NoFastPollHint: true,
	}
	if adaptive {
		ns.Adaptive = true
		ns.MinInterval = scenario.Duration(20 * sim.Millisecond)
		ns.MaxInterval = scenario.Duration(5 * sim.Second)
		ns.SleepInterval = scenario.Duration(5 * sim.Second)
	} else {
		ns.SleepInterval = scenario.Duration(sleep)
	}
	flow := scenario.FlowSpec{From: scenario.NodeID(1), To: scenario.Host()}
	if !uplink {
		flow = scenario.FlowSpec{From: scenario.Host(), To: scenario.NodeID(1)}
	}
	return &scenario.Spec{
		Name:     name,
		Topology: scenario.TopologySpec{Kind: scenario.TopoChain, Nodes: 2},
		Net:      scenario.NetSpec{WindowSegs: windowSegs},
		Nodes:    []scenario.NodeSpec{ns},
		Flows:    []scenario.FlowSpec{flow},
		Warmup:   scenario.Duration(warm),
		Duration: scenario.Duration(dur),
		Seeds:    seeds,
	}
}

// Fig12 sweeps a fixed sleep interval and reports TCP RTT and goodput in
// both directions over the duty-cycled link.
func Fig12(o Opts) *Table {
	scale := o.scale()
	t := &Table{
		ID:      "fig12",
		Title:   "TCP over a duty-cycled link: fixed sleep interval sweep",
		Columns: []string{"Sleep interval", "Up kb/s", "Up RTT ms", "Down kb/s", "Down RTT ms"},
	}
	warm, dur := scale.dur(20*sim.Second), scale.dur(2*sim.Minute)
	intervals := []sim.Duration{
		20 * sim.Millisecond, 50 * sim.Millisecond, 100 * sim.Millisecond,
		250 * sim.Millisecond, 500 * sim.Millisecond, sim.Second, 2 * sim.Second,
	}
	var specs []*scenario.Spec
	for i, iv := range intervals {
		specs = append(specs,
			dutyCycledSpec("fig12-up-"+iv.String(), true, iv, false, 4, warm, dur, o.seeds(int64(800+i))),
			dutyCycledSpec("fig12-down-"+iv.String(), false, iv, false, 4, warm, dur, o.seeds(int64(850+i))))
	}
	res := o.run(specs)
	meanRTT := func(f scenario.FlowResult) float64 { return f.MeanRTTms }
	for i, iv := range intervals {
		up, down := res[2*i], res[2*i+1]
		t.AddRow(iv.String(),
			o.cell(flowSeries(up, 0, goodputOf), f1),
			o.cell(flowSeries(up, 0, meanRTT), f1),
			o.cell(flowSeries(down, 0, goodputOf), f1),
			o.cell(flowSeries(down, 0, meanRTT), f1))
	}
	t.Note("paper Fig. 12: ≈full goodput at 20 ms; throughput collapses as the interval exceeds what the 4-segment window can cover (uplink RTT ≈ sleep interval from self-clocking)")
	return t
}

// Fig13 reports the RTT distribution at a fixed two-second sleep
// interval, uplink and downlink.
func Fig13(o Opts) *Table {
	scale := o.scale()
	t := &Table{
		ID:      "fig13",
		Title:   "RTT distribution, duty-cycled link, 2 s sleep interval",
		Columns: []string{"Direction", "p10 ms", "Median ms", "p90 ms", "Max ms"},
	}
	warm, dur := scale.dur(30*sim.Second), scale.dur(4*sim.Minute)
	res := o.run([]*scenario.Spec{
		dutyCycledSpec("fig13-up", true, 2*sim.Second, false, 4, warm, dur, o.seeds(900)),
		dutyCycledSpec("fig13-down", false, 2*sim.Second, false, 4, warm, dur, o.seeds(901)),
	})
	add := func(label string, sr *scenario.SpecResult) {
		t.AddRow(label,
			o.cell(flowSeries(sr, 0, func(f scenario.FlowResult) float64 { return f.RTTp10ms }), f1),
			o.cell(flowSeries(sr, 0, func(f scenario.FlowResult) float64 { return f.MedianRTTms }), f1),
			o.cell(flowSeries(sr, 0, func(f scenario.FlowResult) float64 { return f.RTTp90ms }), f1),
			o.cell(flowSeries(sr, 0, func(f scenario.FlowResult) float64 { return f.RTTMaxms }), f1))
	}
	add("uplink", res[0])
	add("downlink", res[1])
	t.Note("paper Fig. 13: uplink RTT ≈ the sleep interval (self-clocking); downlink clusters at multiples of it")
	return t
}

// Fig14 evaluates the Trickle-based adaptive sleep interval of Appendix
// C.2: goodput with 6-segment buffers, and — via the spec's idle phase —
// the duty cycle after traffic stops.
func Fig14(o Opts) *Table {
	scale := o.scale()
	t := &Table{
		ID:      "fig14",
		Title:   "Adaptive (Trickle) sleep interval: smin=20ms smax=5s, 6-segment buffers",
		Columns: []string{"Direction", "Goodput kb/s", "Median RTT ms", "Idle duty cycle"},
	}
	warm, dur := scale.dur(20*sim.Second), scale.dur(2*sim.Minute)
	mk := func(name string, uplink bool, seed int64) *scenario.Spec {
		s := dutyCycledSpec(name, uplink, 0, true, 6, warm, dur, o.seeds(seed))
		// The idle probe is unscaled, like the bespoke loop: back off to
		// smax for 30 s, then measure two idle minutes.
		s.IdleSettle = scenario.Duration(30 * sim.Second)
		s.IdleWindow = scenario.Duration(2 * sim.Minute)
		return s
	}
	res := o.run([]*scenario.Spec{
		mk("fig14-up", true, 910),
		mk("fig14-down", false, 911),
	})
	add := func(label string, sr *scenario.SpecResult) {
		t.AddRow(label,
			o.cell(flowSeries(sr, 0, goodputOf), f1),
			o.cell(flowSeries(sr, 0, func(f scenario.FlowResult) float64 { return f.MedianRTTms }), f1),
			o.cell(flowSeries(sr, 0, func(f scenario.FlowResult) float64 { return f.IdleRadioDC }), pct))
	}
	add("uplink", res[0])
	add("downlink", res[1])
	t.Note("paper §C.2: 68.6 kb/s up / 55.6 kb/s down with a ≈0.1%% idle duty cycle")
	return t
}
