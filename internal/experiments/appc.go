package experiments

import (
	"tcplp/internal/app"
	"tcplp/internal/mesh"
	"tcplp/internal/sim"
	"tcplp/internal/stack"
	"tcplp/internal/stats"
)

// dutyCycledFlow runs one bulk flow between a duty-cycled leaf (node 1)
// and the wired host, with a fixed or adaptive sleep interval and the
// §9.2 fast-poll hint disabled (Appendix C studies the raw protocol).
func dutyCycledFlow(seed int64, uplink bool, sleep sim.Duration, adaptive bool,
	windowSegs int, warm, dur sim.Duration) (float64, *stats.Sample, float64) {

	opt := stack.DefaultOptions()
	opt.WindowSegs = windowSegs
	net := stack.New(seed, mesh.Chain(2, 10), opt)
	host := net.AttachHost()
	sc := net.MakeSleepyLeaf(1)
	sc.FastInterval = 0 // no expecting-driven fast polls
	if adaptive {
		sc.Adaptive = true
		sc.Min = 20 * sim.Millisecond
		sc.Max = 5 * sim.Second
		sc.SleepInterval = 5 * sim.Second
	} else {
		sc.SleepInterval = sleep
	}
	// The TCP-expecting hook is also disabled: poll cadence is under
	// test.
	net.Nodes[1].TCP.OnExpectingChange = nil
	sc.Start()

	from, to := net.Nodes[1], host
	if !uplink {
		from, to = host, net.Nodes[1]
	}
	sink := app.ListenSink(to, 80)
	src := app.StartBulk(from, to.Addr, 80)
	rtts := &stats.Sample{}
	src.Conn.TraceRTT = func(s sim.Duration) { rtts.Add(float64(s) / float64(sim.Millisecond)) }

	net.Eng.RunFor(warm)
	sink.Mark()
	net.Eng.RunFor(dur)
	goodput := sink.GoodputKbps()
	src.Stop()

	// Idle duty cycle: stop traffic, let the controller settle back, and
	// measure.
	idleDC := 0.0
	if adaptive {
		net.Eng.RunFor(30 * sim.Second) // back off to Max
		net.Nodes[1].Radio.ResetEnergy()
		net.Eng.RunFor(2 * sim.Minute)
		idleDC = net.Nodes[1].Radio.DutyCycle()
	}
	return goodput, rtts, idleDC
}

// Fig12 sweeps a fixed sleep interval and reports TCP RTT and goodput in
// both directions over the duty-cycled link.
func Fig12(o Opts) *Table {
	scale := o.scale()
	t := &Table{
		ID:      "fig12",
		Title:   "TCP over a duty-cycled link: fixed sleep interval sweep",
		Columns: []string{"Sleep interval", "Up kb/s", "Up RTT ms", "Down kb/s", "Down RTT ms"},
	}
	warm, dur := scale.dur(20*sim.Second), scale.dur(2*sim.Minute)
	intervals := []sim.Duration{
		20 * sim.Millisecond, 50 * sim.Millisecond, 100 * sim.Millisecond,
		250 * sim.Millisecond, 500 * sim.Millisecond, sim.Second, 2 * sim.Second,
	}
	for i, iv := range intervals {
		upG, upR, _ := dutyCycledFlow(int64(800+i), true, iv, false, 4, warm, dur)
		dnG, dnR, _ := dutyCycledFlow(int64(850+i), false, iv, false, 4, warm, dur)
		t.AddRow(iv.String(), f1(upG), f1(upR.Mean()), f1(dnG), f1(dnR.Mean()))
	}
	t.Note("paper Fig. 12: ≈full goodput at 20 ms; throughput collapses as the interval exceeds what the 4-segment window can cover (uplink RTT ≈ sleep interval from self-clocking)")
	return t
}

// Fig13 reports the RTT distribution at a fixed two-second sleep
// interval, uplink and downlink.
func Fig13(o Opts) *Table {
	scale := o.scale()
	t := &Table{
		ID:      "fig13",
		Title:   "RTT distribution, duty-cycled link, 2 s sleep interval",
		Columns: []string{"Direction", "p10 ms", "Median ms", "p90 ms", "Max ms"},
	}
	warm, dur := scale.dur(30*sim.Second), scale.dur(4*sim.Minute)
	_, up, _ := dutyCycledFlow(900, true, 2*sim.Second, false, 4, warm, dur)
	_, dn, _ := dutyCycledFlow(901, false, 2*sim.Second, false, 4, warm, dur)
	t.AddRow("uplink", f1(up.Quantile(0.1)), f1(up.Median()), f1(up.Quantile(0.9)), f1(up.Max()))
	t.AddRow("downlink", f1(dn.Quantile(0.1)), f1(dn.Median()), f1(dn.Quantile(0.9)), f1(dn.Max()))
	t.Note("paper Fig. 13: uplink RTT ≈ the sleep interval (self-clocking); downlink clusters at multiples of it")
	return t
}

// Fig14 evaluates the Trickle-based adaptive sleep interval of Appendix
// C.2: goodput with 6-segment buffers, and the idle duty cycle after
// traffic stops.
func Fig14(o Opts) *Table {
	scale := o.scale()
	t := &Table{
		ID:      "fig14",
		Title:   "Adaptive (Trickle) sleep interval: smin=20ms smax=5s, 6-segment buffers",
		Columns: []string{"Direction", "Goodput kb/s", "Median RTT ms", "Idle duty cycle"},
	}
	warm, dur := scale.dur(20*sim.Second), scale.dur(2*sim.Minute)
	upG, upR, upIdle := dutyCycledFlow(910, true, 0, true, 6, warm, dur)
	dnG, dnR, dnIdle := dutyCycledFlow(911, false, 0, true, 6, warm, dur)
	t.AddRow("uplink", f1(upG), f1(upR.Median()), pct(upIdle))
	t.AddRow("downlink", f1(dnG), f1(dnR.Median()), pct(dnIdle))
	t.Note("paper §C.2: 68.6 kb/s up / 55.6 kb/s down with a ≈0.1%% idle duty cycle")
	return t
}
