package experiments

import (
	"fmt"

	"tcplp/internal/scenario"
	"tcplp/internal/sim"
	"tcplp/internal/tcplp/cc"
)

// ccVariantRetryDelays is the link-retry-delay axis of the variant
// head-to-head: hidden-terminal conditions (d = 0) through the §7.1
// recommended 40 ms to the Fig. 6 tail.
var ccVariantRetryDelays = []sim.Duration{0, 10 * sim.Millisecond,
	40 * sim.Millisecond, 100 * sim.Millisecond}

// CCVariants is the congestion-control head-to-head: one bulk flow over
// the lossy three-hop chain, swept along two loss axes — uniform
// per-frame corruption (wireless noise) and the hidden-terminal
// link-retry delay d of Fig. 6 (collision losses) — once per registered
// variant. It asks the paper's natural follow-up question: which
// loss-response policy suits which loss process, holding the scenario
// fixed and varying only the algorithm. The whole sweep is a list of
// declarative specs fanned out by the scenario runner.
func CCVariants(o Opts) *Table {
	t := &Table{
		ID:    "ccvariants",
		Title: "Congestion-control variants, three hops: frame-loss and link-retry-delay sweeps",
		Columns: []string{"Axis", "Variant", "Goodput kb/s",
			"Timeouts", "Fast rtx", "SRTT ms"},
	}
	warm, dur := o.scale().dur(15*sim.Second), o.scale().dur(90*sim.Second)
	mkSpec := func(name string, v cc.Variant, per float64, retry *sim.Duration, seed int64) *scenario.Spec {
		s := &scenario.Spec{
			Name:     name,
			Topology: scenario.TopologySpec{Kind: scenario.TopoChain, Nodes: 4},
			Net:      scenario.NetSpec{PER: per},
			Flows: []scenario.FlowSpec{{
				From: scenario.NodeID(3), To: scenario.NodeID(0), Variant: string(v),
			}},
			Warmup:   scenario.Duration(warm),
			Duration: scenario.Duration(dur),
			Seeds:    o.seeds(seed),
		}
		if retry != nil {
			rd := scenario.Duration(*retry)
			s.Net.RetryDelay = &rd
		}
		return s
	}

	var specs []*scenario.Spec
	var axes []string
	// Uniform-PER axis: same seed for every variant at a given loss
	// rate, so the channel realization is held fixed and rows differ
	// only by the algorithm.
	for round, per := range []float64{0, 0.01, 0.03, 0.06} {
		for _, v := range cc.Variants() {
			specs = append(specs, mkSpec(
				fmt.Sprintf("ccvariants-per%.0f-%s", per*100, v),
				v, per, nil, int64(400+round)))
			axes = append(axes, pct(per))
		}
	}
	// Link-retry-delay axis (Fig. 6 conditions): hidden-terminal
	// collision losses instead of corruption, again seed-matched.
	for round, d := range ccVariantRetryDelays {
		d := d
		for _, v := range cc.Variants() {
			specs = append(specs, mkSpec(
				fmt.Sprintf("ccvariants-d%s-%s", d, v),
				v, 0, &d, int64(440+round)))
			axes = append(axes, fmt.Sprintf("d=%.0fms", d.Milliseconds()))
		}
	}
	results := o.run(specs)
	for i, sr := range results {
		variant := sr.Runs[0].Flows[0].Variant
		t.AddRow(axes[i], variant,
			o.cell(flowSeries(sr, 0, goodputOf), f1),
			o.cell(flowSeries(sr, 0, func(f scenario.FlowResult) float64 { return float64(f.Timeouts) }), f0),
			o.cell(flowSeries(sr, 0, func(f scenario.FlowResult) float64 { return float64(f.FastRtx) }), f0),
			o.cell(flowSeries(sr, 0, func(f scenario.FlowResult) float64 { return f.SRTTms }), f1))
	}
	t.Note("with a 4-segment window the variants converge at low loss (§7.3 small-window robustness); they separate as corruption losses mount and the backoff policy starts to matter")
	t.Note("the d-axis reproduces Fig. 6 conditions: at d=0 losses are hidden-terminal collisions, which retry-delay masks by d=40 ms")
	return t
}
