package experiments

import (
	"tcplp/internal/mesh"
	"tcplp/internal/sim"
	"tcplp/internal/stack"
	"tcplp/internal/tcplp/cc"
)

// CCVariants is the congestion-control head-to-head: one bulk flow over
// the lossy three-hop chain, swept across injected per-frame loss rates,
// once per registered variant. It asks the paper's natural follow-up
// question — which loss-response policy suits hidden-terminal losses vs.
// wireless corruption — by holding the scenario fixed and varying only
// the algorithm.
func CCVariants(scale Scale) *Table {
	t := &Table{
		ID:    "ccvariants",
		Title: "Congestion-control variants, three hops, frame-loss sweep",
		Columns: []string{"Frame loss", "Variant", "Goodput kb/s",
			"Timeouts", "Fast rtx", "SRTT ms"},
	}
	warm, dur := scale.dur(15*sim.Second), scale.dur(90*sim.Second)
	for round, per := range []float64{0, 0.01, 0.03, 0.06} {
		for _, v := range cc.Variants() {
			opt := stack.DefaultOptions()
			opt.PER = per
			opt.TCP.Variant = v
			// Same seed for every variant at a given loss rate: the
			// channel realization is held fixed so rows differ only by
			// the algorithm.
			net := stack.New(int64(400+round), mesh.Chain(4, 10), opt)
			res := measureFlow(net, net.Nodes[3], net.Nodes[0], warm, dur)
			t.AddRow(pct(per), string(v), f1(res.GoodputKbps),
				du(res.Timeouts), du(res.FastRtx), f1(res.SRTT.Milliseconds()))
		}
	}
	t.Note("with a 4-segment window the variants converge at low loss (§7.3 small-window robustness); they separate as corruption losses mount and the backoff policy starts to matter")
	return t
}
