// Package experiments contains one runner per table and figure of the
// paper's evaluation. Each runner builds the scenario from the library's
// public pieces, runs it, and returns a Table whose rows correspond to
// the points the paper plots. cmd/tcplp-bench prints them; the root-level
// benchmarks wrap them; EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"
	"strings"

	"tcplp/internal/scenario"
	"tcplp/internal/stats"
)

// Table is one experiment's result set.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Note appends a free-text note printed under the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned plain text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f0(v float64) string  { return fmt.Sprintf("%.0f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
func di(v int) string      { return fmt.Sprintf("%d", v) }
func du(v uint64) string   { return fmt.Sprintf("%d", v) }

// cell renders one table cell from per-seed observations: a single
// observation stays the plain point estimate, several render as
// "mean ± σ" using the given point formatter — so multi-seed tables
// carry their error bars instead of silently showing point estimates.
// With Opts.CI set, the spread is instead the Student-t 95% confidence
// half-width of the mean, which stays honest at 3-5 seeds.
func (o Opts) cell(xs []float64, f func(float64) string) string {
	mean, sd := stats.MeanStdDev(xs)
	if len(xs) < 2 {
		return f(mean)
	}
	if o.CI {
		return f(mean) + " ± " + f(stats.CI95(xs))
	}
	return f(mean) + " ± " + f(sd)
}

// flowSeries collects one per-seed metric of flow fi across a spec's
// runs, in seed order.
func flowSeries(sr *scenario.SpecResult, fi int, f func(scenario.FlowResult) float64) []float64 {
	out := make([]float64, len(sr.Runs))
	for i, run := range sr.Runs {
		out[i] = f(run.Flows[fi])
	}
	return out
}

// runSeries collects one per-seed run-level metric across a spec's
// runs, in seed order.
func runSeries(sr *scenario.SpecResult, f func(scenario.Result) float64) []float64 {
	out := make([]float64, len(sr.Runs))
	for i, run := range sr.Runs {
		out[i] = f(run)
	}
	return out
}

// goodputOf is the most common flow metric selector.
func goodputOf(f scenario.FlowResult) float64 { return f.GoodputKbps }
