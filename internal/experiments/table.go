// Package experiments contains one runner per table and figure of the
// paper's evaluation. Each runner builds the scenario from the library's
// public pieces, runs it, and returns a Table whose rows correspond to
// the points the paper plots. cmd/tcplp-bench prints them; the root-level
// benchmarks wrap them; EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one experiment's result set.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Note appends a free-text note printed under the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned plain text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
func di(v int) string      { return fmt.Sprintf("%d", v) }
func du(v uint64) string   { return fmt.Sprintf("%d", v) }
