package experiments

import (
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"tcplp/internal/sim"
	"tcplp/internal/tcplp/cc"
)

// cell parses a numeric table cell ("67.3", "4.2%", "12", or the mean
// of a multi-seed "67.3 ± 1.2" cell).
func cell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	if row >= len(tab.Rows) || col >= len(tab.Rows[row]) {
		t.Fatalf("%s: no cell (%d,%d)", tab.ID, row, col)
	}
	s := tab.Rows[row][col]
	if mean, _, ok := strings.Cut(s, " ± "); ok {
		s = mean
	}
	s = strings.TrimSuffix(s, "%")
	s = strings.TrimSuffix(s, " ms")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("%s cell (%d,%d) = %q: %v", tab.ID, row, col, tab.Rows[row][col], err)
	}
	return v
}

var quick = Opts{Scale: 0.15}

func TestStaticTables(t *testing.T) {
	for _, f := range []func() *Table{Table1, Table2, Table34, Table5, Table6, ModelComparison} {
		tab := f()
		if len(tab.Rows) == 0 || len(tab.Columns) == 0 {
			t.Fatalf("%s: empty", tab.ID)
		}
		if out := tab.String(); !strings.Contains(out, tab.Title) {
			t.Fatalf("%s: render broken", tab.ID)
		}
		if md := tab.Markdown(); !strings.Contains(md, "|") {
			t.Fatalf("%s: markdown broken", tab.ID)
		}
	}
}

func TestTable6HeaderBudget(t *testing.T) {
	tab := Table6()
	first := cell(t, tab, 4, 1)
	other := cell(t, tab, 4, 2)
	// Paper Table 6: 50-107 B first frame, 28-35 B subsequent.
	if first < 50 || first > 107 {
		t.Fatalf("first-frame overhead = %v", first)
	}
	if other < 26 || other > 35 {
		t.Fatalf("other-frame overhead = %v", other)
	}
}

func TestFig4Shape(t *testing.T) {
	tab := Fig4(quick)
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	up2 := cell(t, tab, 0, 2) // 2 frames
	up5 := cell(t, tab, 3, 2) // 5 frames
	up8 := cell(t, tab, 6, 2) // 8 frames
	if !(up5 > up2) {
		t.Fatalf("MSS gain missing: 2f=%.1f 5f=%.1f", up2, up5)
	}
	// Diminishing returns: 8 frames gains little over 5.
	if up8 < up5*0.9 {
		t.Fatalf("8-frame goodput regressed: 5f=%.1f 8f=%.1f", up5, up8)
	}
	if gain := up8 - up5; gain > up5-up2 {
		t.Fatalf("no diminishing returns: Δ(5→8)=%.1f Δ(2→5)=%.1f", gain, up5-up2)
	}
}

func TestFig5Shape(t *testing.T) {
	tab := Fig5(quick)
	g1 := cell(t, tab, 0, 2)
	g4 := cell(t, tab, 3, 2)
	g6 := cell(t, tab, 5, 2)
	if !(g4 > g1*1.5) {
		t.Fatalf("window growth missing: w1=%.1f w4=%.1f", g1, g4)
	}
	// Past the BDP the curve flattens.
	if g6 < g4*0.85 {
		t.Fatalf("goodput collapsed past BDP: w4=%.1f w6=%.1f", g4, g6)
	}
}

func TestTable7Shape(t *testing.T) {
	tab := Table7(quick)
	// Last row is TCPlp; first is uIP.
	uip1 := cell(t, tab, 0, 3)
	tcplp1 := cell(t, tab, len(tab.Rows)-1, 3)
	if tcplp1 < 4*uip1 {
		t.Fatalf("TCPlp %.1f kb/s not ≥4x uIP %.1f kb/s (paper: 5-40x)", tcplp1, uip1)
	}
}

func TestFig6Shape(t *testing.T) {
	tabs := Fig6(quick)
	if len(tabs) != 5 {
		t.Fatalf("tables = %d", len(tabs))
	}
	t6b, t6c := tabs[1], tabs[2]
	lossD0 := cell(t, t6b, 0, 1)
	lossD40 := cell(t, t6b, 5, 1)
	if lossD0 <= lossD40 {
		t.Fatalf("retry delay did not cut loss: d0=%.1f%% d40=%.1f%%", lossD0, lossD40)
	}
	// RTT grows with d.
	rttD0 := cell(t, t6c, 0, 2)
	rttD100 := cell(t, t6c, len(t6c.Rows)-1, 2)
	if rttD100 < rttD0 {
		t.Fatalf("RTT did not grow with d: %.0f → %.0f ms", rttD0, rttD100)
	}
	// Eq. 2 prediction within a factor ≈2 of measurement at d=40.
	meas := cell(t, t6b, 5, 2)
	pred := cell(t, t6b, 5, 3)
	if pred < meas/2 || pred > meas*2 {
		t.Fatalf("Eq.2 prediction off: measured %.1f predicted %.1f", meas, pred)
	}
}

func TestCwndTraceShape(t *testing.T) {
	trace, tab := CwndTrace(quick)
	if len(trace) == 0 {
		t.Fatal("no cwnd events")
	}
	if len(tab.Rows) < 3 {
		t.Fatalf("summary rows = %d", len(tab.Rows))
	}
}

func TestHopSweepShape(t *testing.T) {
	tab := HopSweep(quick)
	g1 := cell(t, tab, 0, 1)
	g2 := cell(t, tab, 1, 1)
	g3 := cell(t, tab, 2, 1)
	if !(g1 > g2 && g2 > g3) {
		t.Fatalf("hop degradation missing: %v %v %v", g1, g2, g3)
	}
	ratio3 := g3 / g1
	if ratio3 < 0.2 || ratio3 > 0.5 {
		t.Fatalf("3-hop ratio %.2f, want ≈1/3", ratio3)
	}
}

func TestTable9Shape(t *testing.T) {
	tab := Table9(Opts{Scale: 0.08})
	// w=4 rows: fair (Jain close to 1).
	if j := cell(t, tab, 0, 3); j < 0.8 {
		t.Fatalf("one-hop w=4 unfair: Jain %.3f", j)
	}
	if j := cell(t, tab, 1, 3); j < 0.7 {
		t.Fatalf("three-hop w=4 unfair: Jain %.3f", j)
	}
	// RED+ECN should not be less fair than plain w=7.
	plain := cell(t, tab, 2, 3)
	red := cell(t, tab, 3, 3)
	if red < plain-0.25 {
		t.Fatalf("RED/ECN made fairness worse: %.3f → %.3f", plain, red)
	}
	// The mixed paced-BBR-vs-NewReno row reports a sane Jain index and
	// both flows alive.
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tab.Rows))
	}
	if j := cell(t, tab, 4, 3); j < 0.5 || j > 1.0001 {
		t.Fatalf("mixed-variant Jain %.3f outside [0.5, 1]", j)
	}
	if a, b := cell(t, tab, 4, 1), cell(t, tab, 4, 2); a <= 0 || b <= 0 {
		t.Fatalf("mixed row flow starved: A=%.1f B=%.1f", a, b)
	}
}

func TestFig8Shape(t *testing.T) {
	tab := Fig8(Opts{Scale: 0.1})
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// All protocols near-100% reliable in favorable conditions.
	for i := range tab.Rows {
		if rel := cell(t, tab, i, 2); rel < 95 {
			t.Fatalf("row %d reliability %.1f%%", i, rel)
		}
	}
	// Batching reduces radio duty cycle for every protocol.
	for p := 0; p < 3; p++ {
		nb := cell(t, tab, 2*p, 3)
		b := cell(t, tab, 2*p+1, 3)
		if b >= nb {
			t.Fatalf("%s: batching did not reduce radio DC (%.2f → %.2f)", tab.Rows[2*p][0], nb, b)
		}
	}
}

func TestFig12Shape(t *testing.T) {
	tab := Fig12(Opts{Scale: 0.2})
	gFast := cell(t, tab, 0, 1) // 20 ms
	gSlow := cell(t, tab, len(tab.Rows)-1, 1)
	if gFast < 5*gSlow {
		t.Fatalf("sleep interval did not throttle uplink: 20ms=%.1f slowest=%.1f", gFast, gSlow)
	}
	// Self-clocking: uplink RTT ≈ the sleep interval at 2 s.
	rtt2s := cell(t, tab, len(tab.Rows)-1, 2)
	if rtt2s < 1000 {
		t.Fatalf("2s-sleep uplink RTT = %.0f ms, want ≈2000", rtt2s)
	}
}

func TestFig14Shape(t *testing.T) {
	tab := Fig14(Opts{Scale: 0.3})
	up := cell(t, tab, 0, 1)
	idle := cell(t, tab, 0, 3)
	if up < 30 {
		t.Fatalf("adaptive uplink = %.1f kb/s, want near always-on rates", up)
	}
	if idle > 2 {
		t.Fatalf("idle duty cycle = %.2f%%, want ≈0.1%%", idle)
	}
}

func TestCCVariantsShape(t *testing.T) {
	tab := CCVariants(quick)
	// (4 loss rates + 4 retry delays) × variants.
	nv := len(cc.Variants())
	if len(tab.Rows) != 8*nv {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), 8*nv)
	}
	variants := map[string]bool{}
	axes := map[string]bool{}
	for i, row := range tab.Rows {
		variants[row[1]] = true
		axes[row[0]] = true
		if g := cell(t, tab, i, 2); g <= 0 {
			t.Fatalf("row %d (%s @ %s): goodput %.1f", i, row[1], row[0], g)
		}
	}
	if len(variants) != nv {
		t.Fatalf("variants covered: %v", variants)
	}
	// Both axes present: 4 PER points + 4 link-retry-delay points.
	if len(axes) != 8 {
		t.Fatalf("axis points covered: %v", axes)
	}
	// Loss hurts: every variant's goodput at 6%% frame loss is below its
	// clean-channel goodput.
	for v := 0; v < nv; v++ {
		clean := cell(t, tab, v, 2)
		lossy := cell(t, tab, 3*nv+v, 2)
		if lossy >= clean {
			t.Fatalf("%s: goodput did not drop under loss (%.1f → %.1f)",
				tab.Rows[v][1], clean, lossy)
		}
	}
	// The d-axis rows follow the PER rows: first d row is labelled d=0
	// (hidden-terminal conditions).
	if tab.Rows[4*nv][0] != "d=0ms" {
		t.Fatalf("first retry-delay row labelled %q", tab.Rows[4*nv][0])
	}
}

func TestPacingShape(t *testing.T) {
	tab := Pacing(quick)
	// 2 scenarios × {newreno, bbr}.
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		if g := cell(t, tab, i, 2); g <= 0 {
			t.Fatalf("row %d (%s / %s): goodput %.1f", i, row[0], row[1], g)
		}
	}
	if tab.Rows[0][1] != "newreno" || tab.Rows[1][1] != "bbr" {
		t.Fatalf("variant columns: %v / %v", tab.Rows[0][1], tab.Rows[1][1])
	}
	// Both scenarios appear.
	if tab.Rows[0][0] == tab.Rows[2][0] {
		t.Fatalf("scenarios not distinct: %v", tab.Rows[0][0])
	}
}

// TestGoldenEquivalence pins the scenario-runner port of the throughput
// experiments against the bespoke implementations they replaced: the
// golden files under testdata were rendered by the pre-port measureFlow
// paths at this exact scale and seeding, and the ported spec-driven
// tables must reproduce them byte for byte.
func TestGoldenEquivalence(t *testing.T) {
	check := func(name string, tabs ...*Table) {
		t.Helper()
		want, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, tab := range tabs {
			b.WriteString(tab.String())
		}
		if got := b.String(); got != string(want) {
			t.Errorf("%s: ported tables diverge from the bespoke implementation\n--- got ---\n%s--- want ---\n%s",
				name, got, want)
		}
	}
	check("equiv_fig4.txt", Fig4(quick))
	check("equiv_fig5.txt", Fig5(quick))
	check("equiv_fig6.txt", Fig6(quick)...)
	check("equiv_hopsweep.txt", HopSweep(quick))
	check("equiv_table7.txt", Table7(quick))
}

// TestGoldenEquivalenceApps pins the protocol-driver port of the §9
// application study and the Appendix C duty-cycled study: the golden
// files were rendered by the bespoke anemometer/CoAP harness and the
// hand-rolled duty-cycled loop before their deletion, and the
// spec-driven ports must reproduce them byte for byte.
func TestGoldenEquivalenceApps(t *testing.T) {
	check := func(name string, tabs ...*Table) {
		t.Helper()
		want, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, tab := range tabs {
			b.WriteString(tab.String())
		}
		if got := b.String(); got != string(want) {
			t.Errorf("%s: ported tables diverge from the bespoke implementation\n--- got ---\n%s--- want ---\n%s",
				name, got, want)
		}
	}
	check("equiv_fig8.txt", Fig8(Opts{Scale: 0.1}))
	check("equiv_fig9.txt", Fig9(Opts{Scale: 0.05})...)
	check("equiv_fig10.txt", Fig10(Opts{Scale: 0.1}))
	check("equiv_table8.txt", Table8(Opts{Scale: 0.02}))
	check("equiv_fig12.txt", Fig12(Opts{Scale: 0.2}))
	check("equiv_fig13.txt", Fig13(Opts{Scale: 0.2}))
	check("equiv_fig14.txt", Fig14(Opts{Scale: 0.3}))
}

// TestFig6WorkersBitIdentical is the parallelization contract at the
// experiment level: the same fig6 sweep through a serial and a wide
// worker pool must render byte-identical tables.
func TestFig6WorkersBitIdentical(t *testing.T) {
	o := Opts{Scale: 0.05}
	o.Workers = 1
	serial := Fig6(o)
	o.Workers = 4
	parallel := Fig6(o)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("serial and parallel fig6 tables differ:\nserial:   %+v\nparallel: %+v",
			serial, parallel)
	}
}

// TestMultiSeedErrorBars pins the ± σ rendering: with Seeds > 1 every
// measured cell carries an error bar and the mean still parses.
func TestMultiSeedErrorBars(t *testing.T) {
	tab := Fig5(Opts{Scale: 0.05, Seeds: 3, Workers: 4})
	pm := regexp.MustCompile(`^\d+(\.\d+)? ± \d+(\.\d+)?$`)
	for i, row := range tab.Rows {
		if !pm.MatchString(row[2]) {
			t.Fatalf("row %d goodput cell %q lacks the mean ± σ form", i, row[2])
		}
		if g := cell(t, tab, i, 2); g <= 0 {
			t.Fatalf("row %d mean goodput %.1f", i, g)
		}
	}
	// Single-seed runs keep plain point estimates.
	tab = Fig5(Opts{Scale: 0.05})
	if strings.Contains(tab.Rows[0][2], "±") {
		t.Fatalf("single-seed cell %q carries an error bar", tab.Rows[0][2])
	}
}

// TestCICells pins the -ci rendering: the same runs render a wider
// spread than ± σ (the Student-t interval at 3 seeds is 2.48·s/√3 ≈
// 1.75σ) around the identical mean.
func TestCICells(t *testing.T) {
	o := Opts{Scale: 0.05, Seeds: 3, Workers: 4}
	sigma := Fig5(o)
	o.CI = true
	ci := Fig5(o)
	widened := false
	for i := range sigma.Rows {
		ms, ss, okS := strings.Cut(sigma.Rows[i][2], " ± ")
		mc, sc, okC := strings.Cut(ci.Rows[i][2], " ± ")
		if !okS || !okC {
			t.Fatalf("row %d cells lack error bars: %q / %q", i, sigma.Rows[i][2], ci.Rows[i][2])
		}
		if ms != mc {
			t.Fatalf("row %d: -ci changed the mean (%s vs %s)", i, ms, mc)
		}
		sv, _ := strconv.ParseFloat(ss, 64)
		cv, _ := strconv.ParseFloat(sc, 64)
		if cv > sv {
			widened = true
		}
		// t(2)/√3 ≈ 2.48: CI may round equal at tiny spreads but must
		// never be smaller than σ by more than rounding.
		if cv < sv-0.11 {
			t.Fatalf("row %d: CI %v narrower than σ %v", i, cv, sv)
		}
	}
	if !widened {
		t.Fatal("no row showed the Student-t widening over σ")
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "table2", "table34", "table5", "table6",
		"fig4", "fig5", "table7", "fig6", "fig7a", "hopsweep", "model",
		"table9", "fig8", "fig9", "fig10", "table8", "fig12", "fig13", "fig14",
		"ccvariants", "pacing"}
	for _, id := range want {
		if _, ok := Find(id); !ok {
			t.Fatalf("experiment %q missing from registry", id)
		}
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("Find accepted an unknown id")
	}
}

func TestScaleFloor(t *testing.T) {
	if d := Scale(0.0001).dur(time600); d < 5*sim.Second {
		t.Fatalf("scale floor broken: %v", d)
	}
}

const time600 = 600 * sim.Second
