package experiments

import (
	"tcplp/internal/scenario"
	"tcplp/internal/scenario/flows"
	"tcplp/internal/sim"
)

// The gateway capacity study extends the paper's evaluation past the
// border router: duty-cycled devices stream telemetry to a gateway
// tier that proxies them onto a fixed 8 kb/s WAN uplink (100 ms RTT,
// 1% loss). Sweeping the fleet size across that capacity shows where
// end-to-end delivery and per-source credit fairness collapse — the
// split-transport question the paper stops short of.

// gatewayCapacitySpec builds the devices × variants sweep; the checked
// in examples/scenarios/gateway_capacity.json mirrors it.
func gatewayCapacitySpec(devices []int, variants []string, warm, dur sim.Duration, seeds []int64) *scenario.Spec {
	return &scenario.Spec{
		Name:     "gateway-capacity",
		Topology: scenario.TopologySpec{Kind: scenario.TopoStar},
		AllNodes: &scenario.NodeSpec{
			Sleepy:        true,
			SleepInterval: scenario.Duration(8 * sim.Second),
		},
		Gateway: &scenario.GatewaySpec{
			MaxConns: 64,
			WAN: scenario.WANSpec{
				BandwidthKbps: 8,
				RTT:           scenario.Duration(100 * sim.Millisecond),
				Loss:          0.01,
				QueueCap:      32,
			},
		},
		Flows: []scenario.FlowSpec{{
			Label:     "dev",
			To:        scenario.Gateway(),
			PerDevice: true,
			Pattern:   scenario.PatternAnemometer,
			Interval:  scenario.Duration(500 * sim.Millisecond),
		}},
		Sweep: &scenario.Sweep{
			Devices:  devices,
			Variants: variants,
			SeedStep: 7,
		},
		Warmup:   scenario.Duration(warm),
		Duration: scenario.Duration(dur),
		Seeds:    seeds,
	}
}

// gwE2ERel pools one run's end-to-end reliability the way anemRel pools
// the mesh hop: the shared delivery-ratio formula over reading counts
// summed across devices, with readings still inside the gateway-to-
// cloud pipeline (delivered to the gateway, neither credited nor lost)
// counted as backlog.
func gwE2ERel(run scenario.Result) float64 {
	var gen, e2e, backlog uint64
	for _, fl := range run.Flows {
		gen += fl.Generated
		e2e += fl.E2EDelivered
		backlog += fl.Backlog
		if fl.Delivered > fl.E2EDelivered+fl.WANLost {
			backlog += fl.Delivered - fl.E2EDelivered - fl.WANLost
		}
	}
	return flows.DeliveryRatio(gen, e2e, backlog)
}

// GatewayCapacity sweeps device count × congestion-control variant
// against the fixed WAN uplink and reports pooled end-to-end delivery
// plus Jain fairness over per-source cloud credits.
func GatewayCapacity(o Opts) *Table {
	scale := o.scale()
	devices := []int{2, 4, 8, 16}
	variants := []string{"newreno", "cubic"}
	t := &Table{
		ID:      "gateway_capacity",
		Title:   "Gateway tier: e2e delivery and credit fairness vs device count (8 kb/s WAN)",
		Columns: []string{"Devices", "NewReno e2e", "NewReno fairness", "Cubic e2e", "Cubic fairness"},
	}
	warm, dur := scale.dur(sim.Minute), scale.dur(10*sim.Minute)
	res := o.run([]*scenario.Spec{
		gatewayCapacitySpec(devices, variants, warm, dur, o.seeds(800)),
	})
	creditJain := func(r scenario.Result) float64 { return r.Gateway.CreditJain }
	for i, dev := range devices {
		cells := []string{di(dev)}
		for vi := range variants {
			sr := res[i*len(variants)+vi]
			cells = append(cells,
				o.cell(runSeries(sr, gwE2ERel), pct),
				o.cell(runSeries(sr, creditJain), f3))
		}
		t.AddRow(cells...)
	}
	t.Note("the uplink fits ~4 devices' telemetry; past it, e2e delivery collapses and queue-drop timing skews per-source credit shares")
	return t
}
