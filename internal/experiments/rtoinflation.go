package experiments

import (
	"fmt"

	"tcplp/internal/scenario"
	"tcplp/internal/sim"
)

// RTOInflation is the mechanism study behind the Fig. 9a CoCoA collapse:
// it sweeps injected loss like Fig. 9 but renders the retransmission
// timers themselves — the flow's end-of-run RTO estimate (CoCoA's
// overall estimator, observed through coap.SamplingPolicy; RFC 7252
// CoAP keeps no estimator and reports 0) against the median measured
// exchange RTT, plus their ratio. Under loss CoCoA's weak estimator
// feeds retransmission-inflated RTT samples back into the overall RTO,
// which balloons relative to the true path RTT, stretching recovery and
// collapsing delivery while plain CoAP's fixed timer keeps pace.
func RTOInflation(o Opts) *Table {
	scale := o.scale()
	t := &Table{
		ID:    "rto_inflation",
		Title: "CoCoA RTO inflation vs injected loss",
		Columns: []string{"Loss", "Protocol", "Reliability",
			"RTT p50 ms", "RTO ms", "RTO/RTT"},
	}
	warm, dur := scale.dur(2*sim.Minute), scale.dur(20*sim.Minute)
	losses := []float64{0, 0.06, 0.12, 0.21}
	protos := []string{"cocoa", "coap"}
	names := []string{"CoCoA", "CoAP"}
	var specs []*scenario.Spec
	for li, loss := range losses {
		specs = append(specs, anemSweep(
			fmt.Sprintf("rtoinfl-loss%.0f", loss*100),
			protos, 1, true, SensorNodes, loss, false, warm, dur,
			o.seeds(801+int64(li)*int64(len(protos)))))
	}
	res := o.run(specs)
	for li, loss := range losses {
		for pi, name := range names {
			sr := res[li*len(protos)+pi]
			t.AddRow(pct(loss), name,
				o.cell(runSeries(sr, anemRel), pct),
				o.cell(runSeries(sr, anemMedianRTT), f1),
				o.cell(runSeries(sr, anemRTO), f1),
				o.cell(runSeries(sr, anemRTOInflation), f2))
		}
	}
	t.Note("paper Fig. 9: CoCoA's overall RTO inflates well past the path RTT as loss grows; CoAP's fixed 2-3 s timer reports no estimator (RTO 0)")
	return t
}

// anemMedianRTT is the mean across a run's sensor flows of each flow's
// median exchange RTT (ms); flows with no samples are skipped.
func anemMedianRTT(run scenario.Result) float64 {
	s, n := 0.0, 0
	for _, fl := range run.Flows {
		if fl.MedianRTTms > 0 {
			s += fl.MedianRTTms
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// anemRTO is the mean end-of-run RTO estimate (ms) across sensor flows
// that keep one (CoCoA's overall estimator; plain CoAP reports 0).
func anemRTO(run scenario.Result) float64 {
	s, n := 0.0, 0
	for _, fl := range run.Flows {
		if fl.RTOms > 0 {
			s += fl.RTOms
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// anemRTOInflation is the run's RTO-to-median-RTT ratio — the Fig. 9
// inflation factor (0 when either side is unmeasured).
func anemRTOInflation(run scenario.Result) float64 {
	rtt := anemMedianRTT(run)
	if rtt <= 0 {
		return 0
	}
	return anemRTO(run) / rtt
}
