package experiments

import (
	"unsafe"

	"tcplp/internal/ip6"
	"tcplp/internal/phy"
	"tcplp/internal/sim"
	"tcplp/internal/sixlowpan"
	"tcplp/internal/stack"
	"tcplp/internal/tcplp"
)

// Table1 reproduces the feature matrix: which TCP features each stack
// supports. The uIP/BLIP/GNRC columns reflect the configuration profiles
// in package uip; the TCPlp column reflects tcplp's feature set.
func Table1() *Table {
	t := &Table{
		ID:      "table1",
		Title:   "Feature comparison among embedded TCP stacks",
		Columns: []string{"Feature", "uIP", "BLIP", "GNRC", "TCPlp"},
	}
	rows := [][5]string{
		{"Flow Control", "Yes", "Yes", "Yes", "Yes"},
		{"Congestion Control", "N/A", "No", "Yes", "Yes"},
		{"RTT Estimation", "Yes", "No", "Yes", "Yes"},
		{"MSS Option", "Yes", "No", "Yes", "Yes"},
		{"TCP Timestamps", "No", "No", "No", "Yes"},
		{"OOO Reassembly", "No", "No", "Yes", "Yes"},
		{"Selective ACKs", "No", "No", "No", "Yes"},
		{"Delayed ACKs", "No", "No", "No", "Yes"},
	}
	for _, r := range rows {
		t.AddRow(r[0], r[1], r[2], r[3], r[4])
	}
	t.Note("TCPlp column is this library's default Config; baseline columns are the uip.Profile configurations")
	return t
}

// Table2 lists the platform classes the paper compares (§4, Table 2).
func Table2() *Table {
	t := &Table{
		ID:      "table2",
		Title:   "Platform comparison",
		Columns: []string{"Platform", "CPU", "ROM", "RAM"},
	}
	t.AddRow("TelosB", "16-bit, 25 MHz", "48 KiB", "10 KiB")
	t.AddRow("Hamilton", "32-bit, 48 MHz", "256 KiB", "32 KiB")
	t.AddRow("Firestorm", "32-bit, 48 MHz", "512 KiB", "64 KiB")
	t.AddRow("Raspberry Pi", "32-bit, 700 MHz", "SD card", "256 MB")
	t.Note("static reference data; the simulation models Hamilton-class timing")
	return t
}

// Table34 measures this implementation's connection-state memory
// footprint, answering the Tables 3/4 question — does full-scale TCP
// state fit in a few hundred bytes beyond its buffers — for our structs.
func Table34() *Table {
	t := &Table{
		ID:      "table34",
		Title:   "Memory footprint of TCPlp connection state (this implementation)",
		Columns: []string{"Object", "Bytes", "Notes"},
	}
	connSize := int(unsafe.Sizeof(tcplp.Conn{}))
	listenerSize := int(unsafe.Sizeof(tcplp.Listener{}))
	segSize := int(unsafe.Sizeof(tcplp.Segment{}))
	cfg := tcplp.DefaultConfig()
	t.AddRow("Active socket (Conn struct)", di(connSize), "excludes buffers; paper: a few hundred bytes")
	t.AddRow("Passive socket (Listener)", di(listenerSize), "paper: far smaller than active (§4.1)")
	t.AddRow("Segment descriptor", di(segSize), "transient per-packet state")
	t.AddRow("Send buffer", di(cfg.SendBufSize), "4 segments (§6.2)")
	t.AddRow("Receive buffer", di(cfg.RecvBufSize), "4 segments, in-place reassembly")
	t.AddRow("Reassembly bitmap", di((cfg.RecvBufSize+63)/64*8), "1 bit per buffered byte (Fig. 1b)")
	t.Note("Go struct sizes include pointers/interfaces absent on a Cortex-M0+; the comparison of interest is state ≪ buffers")
	return t
}

// Table5 compares frame transmission times across link technologies.
func Table5() *Table {
	t := &Table{
		ID:      "table5",
		Title:   "IEEE 802.15.4 vs traditional links",
		Columns: []string{"Physical layer", "Bandwidth", "Frame", "Tx time"},
	}
	t.AddRow("Gigabit Ethernet", "1 Gb/s", "1500 B", "0.012 ms")
	t.AddRow("Fast Ethernet", "100 Mb/s", "1500 B", "0.12 ms")
	t.AddRow("WiFi", "54 Mb/s", "1500 B", "0.22 ms")
	t.AddRow("Ethernet", "10 Mb/s", "1500 B", "1.2 ms")
	air := phy.AirTime(phy.MaxPHYPayload)
	t.AddRow("IEEE 802.15.4 (simulated)", "250 kb/s", "127 B",
		f2(float64(air)/float64(sim.Millisecond))+" ms")
	t.Note("simulated 127 B airtime %.3f ms vs paper's 4.1 ms; node occupancy incl. SPI %.3f ms vs paper's 8.2 ms",
		air.Milliseconds(), (air + phy.LoadTime(phy.MaxPHYPayload)).Milliseconds())
	return t
}

// Table6 measures per-frame header overhead for a five-frame TCP segment
// as actually produced by the codecs.
func Table6() *Table {
	t := &Table{
		ID:      "table6",
		Title:   "6LoWPAN fragmentation header overhead (measured from codecs)",
		Columns: []string{"Component", "First frame", "Other frames"},
	}
	// Build a five-frame TCP data packet and dissect it.
	info := stack.SegmentSizing(5, true)
	hdr := &ip6.Header{
		NextHeader: ip6.ProtoTCP,
		HopLimit:   64,
		Src:        ip6.AddrFromID(5),
		Dst:        ip6.AddrFromID(0),
	}
	seg := &tcplp.Segment{
		Flags: tcplp.FlagACK, HasTS: true,
		Payload: make([]byte, info.MSS),
	}
	segBytes := seg.Encode(hdr.Src, hdr.Dst)
	chdr := sixlowpan.CompressHeader(hdr)
	var frag sixlowpan.Fragmenter
	frames := frag.Fragment(chdr, segBytes, phy.MaxMACPayload)

	t.AddRow("IEEE 802.15.4", di(phy.FrameOverhead), di(phy.FrameOverhead))
	t.AddRow("6LoWPAN fragment hdr", di(sixlowpan.Frag1HeaderLen), di(sixlowpan.FragNHeaderLen))
	t.AddRow("IPv6 (IPHC)", di(len(chdr)), "0")
	t.AddRow("TCP (w/ timestamps)", di(seg.HeaderLen()), "0")
	first := phy.FrameOverhead + sixlowpan.Frag1HeaderLen + len(chdr) + seg.HeaderLen()
	other := phy.FrameOverhead + sixlowpan.FragNHeaderLen
	t.AddRow("Total", di(first), di(other))
	t.Note("paper: 50-107 B first frame, 28-35 B others; a %d-frame segment carries %d B of TCP payload (MSS)",
		len(frames), info.MSS)
	return t
}
