package experiments

import (
	"fmt"
	"runtime"
	"time"

	"tcplp/internal/scenario"
	"tcplp/internal/sim"
)

// The city sweep scales the evaluation past the paper's 15-node office:
// random-geometric fields of hundreds to a thousand nodes, each carrying
// ~one instrumented telemetry flow per ten devices into the border-router
// gateway. Alongside the usual goodput/fairness columns it reports the
// simulator's own performance — wall-clock, events per second, and heap
// allocations per event — the trajectory the spatially-indexed PHY and
// pooled event arena exist to bend.

// citySpec builds one city cell; examples/scenarios/city_1k.json carries
// the same shape as a sweep over node count × variant.
func citySpec(n int, variant string, warm, dur sim.Duration, seeds []int64) *scenario.Spec {
	stride := n / 100
	if stride < 1 {
		stride = 1
	}
	return &scenario.Spec{
		Name: fmt.Sprintf("city/n=%d/cc=%s", n, variant),
		Topology: scenario.TopologySpec{
			Kind:    scenario.TopoRandomGeometric,
			Nodes:   n,
			Density: 8,
		},
		Gateway: &scenario.GatewaySpec{
			WAN: scenario.WANSpec{
				BandwidthKbps: 256,
				RTT:           scenario.Duration(50 * sim.Millisecond),
				QueueCap:      256,
			},
		},
		Flows: []scenario.FlowSpec{{
			Label:     "dev",
			To:        scenario.Gateway(),
			PerDevice: true,
			Stride:    stride,
			Variant:   variant,
			Pattern:   scenario.PatternAnemometer,
			Interval:  scenario.Duration(5 * sim.Second),
		}},
		Warmup:   scenario.Duration(warm),
		Duration: scenario.Duration(dur),
		Seeds:    seeds,
	}
}

// metroSpec is the examples/scenarios/city_10k.json shape at an
// arbitrary node count: one telemetry flow per 20 devices (500 flows at
// 10k nodes) reporting at a metro-realistic 30 s interval, and density
// 16 so the random-geometric field stays connected — and the gateway
// funnel stays serviceable — all the way to 10k nodes.
func metroSpec(n int, warm, dur sim.Duration, seeds []int64) *scenario.Spec {
	return &scenario.Spec{
		Name: fmt.Sprintf("metro/n=%d", n),
		Topology: scenario.TopologySpec{
			Kind:    scenario.TopoRandomGeometric,
			Nodes:   n,
			Density: 16,
		},
		Gateway: &scenario.GatewaySpec{
			WAN: scenario.WANSpec{
				BandwidthKbps: 256,
				RTT:           scenario.Duration(50 * sim.Millisecond),
				QueueCap:      256,
			},
		},
		Flows: []scenario.FlowSpec{{
			Label:     "dev",
			To:        scenario.Gateway(),
			PerDevice: true,
			Stride:    20,
			Pattern:   scenario.PatternAnemometer,
			Interval:  scenario.Duration(30 * sim.Second),
		}},
		Warmup:   scenario.Duration(warm),
		Duration: scenario.Duration(dur),
		Seeds:    seeds,
	}
}

// CityRun executes one metro-scale cell serially and reports the
// engine-side numbers the BenchmarkCity size axis tracks: simulator
// events processed, wall-clock, and heap allocations per event.
func CityRun(n int, o Opts) (events uint64, wall time.Duration, allocsPerEv float64) {
	scale := o.scale()
	spec := metroSpec(n, scale.dur(30*sim.Second), scale.dur(60*sim.Second), o.seeds(910))
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	sr, err := (&scenario.Runner{Workers: 1}).Run(spec)
	if err != nil {
		panic(fmt.Sprintf("experiments: invalid metro spec: %v", err))
	}
	wall = time.Since(start)
	runtime.ReadMemStats(&m1)
	for _, run := range sr.Runs {
		events += run.Events
	}
	if events > 0 {
		allocsPerEv = float64(m1.Mallocs-m0.Mallocs) / float64(events)
	}
	return events, wall, allocsPerEv
}

// CitySweep sweeps node count × congestion-control variant over the
// random-geometric generator and reports application metrics next to
// engine throughput. Cells run serially (Workers=1) whatever Opts says:
// wall-clock and the process-wide allocation counter are only meaningful
// with one simulation on the heap at a time.
func CitySweep(o Opts) *Table {
	scale := o.scale()
	nodes := []int{200, 500, 1000}
	variants := []string{"newreno", "cubic"}
	t := &Table{
		ID:      "citysweep",
		Title:   "City-scale mesh: delivery and simulator throughput vs node count",
		Columns: []string{"Nodes", "Variant", "Flows", "Agg kb/s", "Jain", "Wall s", "kev/s", "allocs/ev"},
	}
	warm, dur := scale.dur(5*sim.Second), scale.dur(30*sim.Second)
	for _, n := range nodes {
		for _, v := range variants {
			spec := citySpec(n, v, warm, dur, o.seeds(900))
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			start := time.Now()
			sr, err := (&scenario.Runner{Workers: 1}).Run(spec)
			if err != nil {
				panic(fmt.Sprintf("experiments: invalid city spec: %v", err))
			}
			wall := time.Since(start)
			runtime.ReadMemStats(&m1)
			var events uint64
			for _, run := range sr.Runs {
				events += run.Events
			}
			evPerSec, allocsPerEv := 0.0, 0.0
			if wall > 0 {
				evPerSec = float64(events) / wall.Seconds()
			}
			if events > 0 {
				allocsPerEv = float64(m1.Mallocs-m0.Mallocs) / float64(events)
			}
			t.AddRow(di(n), v, di(len(sr.Runs[0].Flows)),
				o.cell(runSeries(sr, func(r scenario.Result) float64 { return r.AggregateKbps }), f1),
				o.cell(runSeries(sr, func(r scenario.Result) float64 { return r.Jain }), f3),
				f1(wall.Seconds()), f0(evPerSec/1000), f1(allocsPerEv))
		}
	}
	t.Note("engine columns measured serially (one simulation on the heap at a time); allocs/ev is Go heap allocations per simulator event — application columns stay deterministic, engine columns are host-dependent")
	return t
}
