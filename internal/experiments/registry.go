package experiments

import (
	"fmt"

	"tcplp/internal/model"
	"tcplp/internal/scenario"
	"tcplp/internal/sim"
)

// ModelComparison contrasts Eq. 1 (Mathis) with Eq. 2 (the paper's
// small-window model) across loss rates at LLN-typical RTTs, showing why
// the classical model wildly overpredicts LLN TCP (§8).
func ModelComparison() *Table {
	t := &Table{
		ID:      "model",
		Title:   "Eq. 1 vs Eq. 2 predicted goodput (MSS=440 B, w=4 segments)",
		Columns: []string{"Scenario", "Loss", "Eq.1 kb/s", "Eq.2 kb/s"},
	}
	mss := 440
	cases := []struct {
		name string
		rtt  sim.Duration
	}{
		{"one hop (RTT 120 ms)", 120 * sim.Millisecond},
		{"three hops (RTT 750 ms)", 750 * sim.Millisecond},
	}
	for _, c := range cases {
		for _, p := range []float64{0.001, 0.01, 0.03, 0.06, 0.1} {
			eq1 := model.MathisGoodput(mss, c.rtt, p) / 1000
			eq2 := model.TCPlpGoodput(mss, c.rtt, 4, p) / 1000
			t.AddRow(c.name, pct(p), f1(eq1), f1(eq2))
		}
	}
	t.Note("Eq.1 assumes cwnd is loss-limited; with a 4-segment window the 1/w term dominates, making goodput insensitive to small p (§8)")
	return t
}

// Opts configures an experiment run: the duration scale, the number of
// independent seeds per measurement point, and the scenario worker
// pool. The zero value means full-scale, single-seed, all CPUs.
type Opts struct {
	// Scale shrinks measurement windows proportionally (0 means 1.0 —
	// the full published durations).
	Scale Scale
	// Seeds is the number of independent channel realizations per
	// measurement point (0 means 1); above 1, scenario-backed tables
	// render mean ± σ cells.
	Seeds int
	// Workers bounds the scenario runner's worker pool (0 = all CPUs).
	// Aggregates are bit-identical whatever the pool size.
	Workers int
	// CI renders multi-seed cells as mean ± Student-t 95% confidence
	// half-width instead of mean ± σ (tcplp-bench -ci).
	CI bool
}

// scale returns the effective duration scale.
func (o Opts) scale() Scale {
	if o.Scale == 0 {
		return 1
	}
	return o.Scale
}

// seeds derives the seed list for a measurement point: the point's base
// seed first (so single-seed runs reproduce the pinned tables exactly),
// then widely spaced derived seeds.
func (o Opts) seeds(base int64) []int64 {
	n := o.Seeds
	if n < 1 {
		n = 1
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(i)*99991
	}
	return out
}

// run fans specs out across the scenario runner's worker pool. The
// specs are built by the experiments themselves, so a validation error
// is a programming bug, not an input error.
func (o Opts) run(specs []*scenario.Spec) []*scenario.SpecResult {
	res, err := (&scenario.Runner{Workers: o.Workers}).RunAll(specs)
	if err != nil {
		panic(fmt.Sprintf("experiments: invalid spec: %v", err))
	}
	return res
}

// Runner produces one or more tables for an experiment id.
type Runner func(Opts) []*Table

// Experiment couples an id with its runner.
type Experiment struct {
	ID   string
	Desc string
	Run  Runner
	// SweepsVariants marks runners that compare congestion-control
	// variants internally and therefore ignore the process-wide default.
	SweepsVariants bool
	// MultiSeed marks runners that execute through the scenario runner
	// and therefore honor Opts.Seeds/Workers (mean ± σ tables).
	MultiSeed bool
}

func one(f func(Opts) *Table) Runner {
	return func(o Opts) []*Table { return []*Table{f(o)} }
}

func static(f func() *Table) Runner {
	return func(Opts) []*Table { return []*Table{f()} }
}

// Registry lists every reproducible table and figure.
var Registry = []Experiment{
	{ID: "table1", Desc: "Feature comparison (Table 1)", Run: static(Table1)},
	{ID: "table2", Desc: "Platform comparison (Table 2)", Run: static(Table2)},
	{ID: "table34", Desc: "Memory footprint (Tables 3-4)", Run: static(Table34)},
	{ID: "table5", Desc: "Link comparison (Table 5)", Run: static(Table5)},
	{ID: "table6", Desc: "Header overhead (Table 6)", Run: static(Table6)},
	{ID: "fig4", Desc: "Goodput vs MSS (Fig. 4)", Run: one(Fig4), MultiSeed: true},
	{ID: "fig5", Desc: "Goodput/RTT vs window (Fig. 5)", Run: one(Fig5), MultiSeed: true},
	{ID: "table7", Desc: "Baseline stack comparison (Table 7)", Run: one(Table7), MultiSeed: true},
	{ID: "fig6", Desc: "Link-retry delay sweep incl. Fig. 7b (Fig. 6)", Run: Fig6, MultiSeed: true},
	{ID: "fig7a", Desc: "cwnd behaviour summary (Fig. 7a)", Run: func(o Opts) []*Table {
		_, t := CwndTrace(o)
		return []*Table{t}
	}},
	{ID: "hopsweep", Desc: "Goodput vs hops (§7.2)", Run: one(HopSweep), MultiSeed: true},
	{ID: "model", Desc: "Eq.1 vs Eq.2 (§8)", Run: static(ModelComparison)},
	{ID: "table9", Desc: "Two-flow fairness (Table 9 / Appendix A)", Run: one(Table9), MultiSeed: true},
	{ID: "fig8", Desc: "Batching vs power (Fig. 8)", Run: one(Fig8), MultiSeed: true},
	{ID: "fig9", Desc: "Injected loss sweep (Fig. 9)", Run: Fig9, MultiSeed: true},
	{ID: "rto_inflation", Desc: "CoCoA RTO inflation vs injected loss (Fig. 9 mechanism)", Run: one(RTOInflation), MultiSeed: true},
	{ID: "fig10", Desc: "Diurnal day run (Fig. 10)", Run: one(Fig10), MultiSeed: true},
	{ID: "table8", Desc: "Full-day summary (Table 8)", Run: one(Table8), MultiSeed: true},
	{ID: "fig12", Desc: "Fixed sleep interval sweep (Fig. 12 / Appendix C)", Run: one(Fig12), MultiSeed: true},
	{ID: "fig13", Desc: "RTT distribution at 2 s sleep (Fig. 13)", Run: one(Fig13), MultiSeed: true},
	{ID: "fig14", Desc: "Adaptive sleep interval (Fig. 14 / §C.2)", Run: one(Fig14), MultiSeed: true},
	{ID: "ccvariants", Desc: "Congestion-control head-to-head, PER + link-retry-delay axes",
		Run: one(CCVariants), SweepsVariants: true, MultiSeed: true},
	{ID: "pacing", Desc: "Paced BBR vs ACK-clocked NewReno (hidden-terminal + duty-cycled)",
		Run: one(Pacing), SweepsVariants: true, MultiSeed: true},
	{ID: "gateway_capacity", Desc: "Gateway tier: WAN capacity sweep, e2e delivery + credit fairness",
		Run: one(GatewayCapacity), SweepsVariants: true, MultiSeed: true},
	{ID: "citysweep", Desc: "City-scale mesh: node-count sweep, delivery + simulator throughput",
		Run: one(CitySweep), SweepsVariants: true, MultiSeed: true},
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range Registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
