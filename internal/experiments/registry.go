package experiments

import (
	"tcplp/internal/model"
	"tcplp/internal/sim"
)

// ModelComparison contrasts Eq. 1 (Mathis) with Eq. 2 (the paper's
// small-window model) across loss rates at LLN-typical RTTs, showing why
// the classical model wildly overpredicts LLN TCP (§8).
func ModelComparison() *Table {
	t := &Table{
		ID:      "model",
		Title:   "Eq. 1 vs Eq. 2 predicted goodput (MSS=440 B, w=4 segments)",
		Columns: []string{"Scenario", "Loss", "Eq.1 kb/s", "Eq.2 kb/s"},
	}
	mss := 440
	cases := []struct {
		name string
		rtt  sim.Duration
	}{
		{"one hop (RTT 120 ms)", 120 * sim.Millisecond},
		{"three hops (RTT 750 ms)", 750 * sim.Millisecond},
	}
	for _, c := range cases {
		for _, p := range []float64{0.001, 0.01, 0.03, 0.06, 0.1} {
			eq1 := model.MathisGoodput(mss, c.rtt, p) / 1000
			eq2 := model.TCPlpGoodput(mss, c.rtt, 4, p) / 1000
			t.AddRow(c.name, pct(p), f1(eq1), f1(eq2))
		}
	}
	t.Note("Eq.1 assumes cwnd is loss-limited; with a 4-segment window the 1/w term dominates, making goodput insensitive to small p (§8)")
	return t
}

// Runner produces one or more tables for an experiment id.
type Runner func(Scale) []*Table

// Experiment couples an id with its runner.
type Experiment struct {
	ID   string
	Desc string
	Run  Runner
}

func one(f func(Scale) *Table) Runner {
	return func(s Scale) []*Table { return []*Table{f(s)} }
}

func static(f func() *Table) Runner {
	return func(Scale) []*Table { return []*Table{f()} }
}

// Registry lists every reproducible table and figure.
var Registry = []Experiment{
	{"table1", "Feature comparison (Table 1)", static(Table1)},
	{"table2", "Platform comparison (Table 2)", static(Table2)},
	{"table34", "Memory footprint (Tables 3-4)", static(Table34)},
	{"table5", "Link comparison (Table 5)", static(Table5)},
	{"table6", "Header overhead (Table 6)", static(Table6)},
	{"fig4", "Goodput vs MSS (Fig. 4)", one(Fig4)},
	{"fig5", "Goodput/RTT vs window (Fig. 5)", one(Fig5)},
	{"table7", "Baseline stack comparison (Table 7)", one(Table7)},
	{"fig6", "Link-retry delay sweep incl. Fig. 7b (Fig. 6)", Fig6},
	{"fig7a", "cwnd behaviour summary (Fig. 7a)", func(s Scale) []*Table {
		_, t := CwndTrace(s)
		return []*Table{t}
	}},
	{"hopsweep", "Goodput vs hops (§7.2)", one(HopSweep)},
	{"model", "Eq.1 vs Eq.2 (§8)", static(ModelComparison)},
	{"table9", "Two-flow fairness (Table 9 / Appendix A)", one(Table9)},
	{"fig8", "Batching vs power (Fig. 8)", one(Fig8)},
	{"fig9", "Injected loss sweep (Fig. 9)", Fig9},
	{"fig10", "Diurnal day run (Fig. 10)", one(Fig10)},
	{"table8", "Full-day summary (Table 8)", one(Table8)},
	{"fig12", "Fixed sleep interval sweep (Fig. 12 / Appendix C)", one(Fig12)},
	{"fig13", "RTT distribution at 2 s sleep (Fig. 13)", one(Fig13)},
	{"fig14", "Adaptive sleep interval (Fig. 14 / §C.2)", one(Fig14)},
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range Registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
