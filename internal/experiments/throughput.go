package experiments

import (
	"fmt"
	"math"

	"tcplp/internal/model"
	"tcplp/internal/scenario"
	"tcplp/internal/sim"
	"tcplp/internal/stack"
	"tcplp/internal/uip"
)

// Scale shrinks experiment durations for quick runs (benchmarks use
// Scale < 1); 1.0 reproduces the full published sweeps.
type Scale float64

func (s Scale) dur(d sim.Duration) sim.Duration {
	out := sim.Duration(float64(d) * float64(s))
	if out < 5*sim.Second {
		out = 5 * sim.Second
	}
	return out
}

// Every simulating experiment below is a declarative scenario spec (or
// sweep of specs) fanned out by scenario.Runner plus a renderer over
// the per-seed results: one engine-instantiation path, one aggregation
// path, one output path. Multi-seed runs (Opts.Seeds > 1) render
// mean ± σ cells; the worker pool only changes wall-clock time, never
// the tables.

// msDur converts a milliseconds measurement back to a duration without
// losing the underlying microsecond count to float rounding.
func msDur(ms float64) sim.Duration { return sim.Duration(math.Round(ms * 1000)) }

// segLoss computes the paper's segment-loss metric for a single-flow
// run: in-network datagram losses (link failures, queue drops,
// reassembly timeouts — losses not masked by link retries) over the
// data segments the sender put on the wire. Counting TCP
// retransmissions instead would inflate it with spurious RTOs.
func segLoss(run scenario.Result) float64 {
	fl := run.Flows[0]
	dataSegs := float64(fl.SentBytes) / float64(fl.MSS)
	if dataSegs <= 0 {
		return 0
	}
	p := float64(run.LossEvents) / dataSegs
	if p > 1 {
		p = 1
	}
	return p
}

// eq2Pred is the Eq. 2 predicted goodput in kb/s for a single-flow run,
// from the run's own RTT, window, and measured segment loss.
func eq2Pred(run scenario.Result) float64 {
	fl := run.Flows[0]
	rtt := msDur(fl.SRTTms)
	if rtt <= 0 {
		rtt = msDur(fl.MedianRTTms)
	}
	return model.TCPlpGoodput(fl.MSS, rtt, fl.WindowSegs, segLoss(run)) / 1000
}

// Fig4 sweeps the MSS from 2 to 8 frames over the Fig. 2 setup (mote ↔
// border router ↔ wired host, one wireless hop) and reports uplink and
// downlink goodput: one seg_frames-axis sweep spec per direction.
func Fig4(o Opts) *Table {
	t := &Table{
		ID:      "fig4",
		Title:   "Goodput vs maximum segment size (frames), one hop via border router",
		Columns: []string{"MSS (frames)", "MSS (bytes)", "Uplink kb/s", "Downlink kb/s"},
	}
	warm, dur := o.scale().dur(10*sim.Second), o.scale().dur(60*sim.Second)
	frames := []int{2, 3, 4, 5, 6, 7, 8}
	mk := func(dir string, from, to scenario.NodeRef, seed int64) *scenario.Spec {
		return &scenario.Spec{
			Name:     "fig4-" + dir,
			Topology: scenario.TopologySpec{Kind: scenario.TopoChain, Nodes: 2},
			Flows:    []scenario.FlowSpec{{From: from, To: to}},
			Sweep:    &scenario.Sweep{SegFrames: frames},
			Warmup:   scenario.Duration(warm),
			Duration: scenario.Duration(dur),
			Seeds:    o.seeds(seed),
		}
	}
	res := o.run([]*scenario.Spec{
		mk("up", scenario.NodeID(1), scenario.Host(), 40),
		mk("down", scenario.Host(), scenario.NodeID(1), 41),
	})
	up, down := res[:len(frames)], res[len(frames):]
	for i, fr := range frames {
		info := stack.SegmentSizing(fr, true)
		t.AddRow(di(fr), di(info.MSS),
			o.cell(flowSeries(up[i], 0, goodputOf), f1),
			o.cell(flowSeries(down[i], 0, goodputOf), f1))
	}
	t.Note("paper Fig. 4: poor goodput at small MSS from header overhead, diminishing gains past 5 frames")
	return t
}

// Fig5 sweeps the send/receive buffer (window) size in segments and
// reports downlink goodput and RTT (the paper's Fig. 5 measures the
// downlink through the border router): one window_segs-axis sweep.
func Fig5(o Opts) *Table {
	t := &Table{
		ID:      "fig5",
		Title:   "Goodput and RTT vs window (buffer) size, downlink",
		Columns: []string{"Window (segs)", "Window (bytes)", "Goodput kb/s", "SRTT ms"},
	}
	warm, dur := o.scale().dur(10*sim.Second), o.scale().dur(60*sim.Second)
	windows := []int{1, 2, 3, 4, 5, 6}
	res := o.run([]*scenario.Spec{{
		Name:     "fig5",
		Topology: scenario.TopologySpec{Kind: scenario.TopoChain, Nodes: 2},
		Flows:    []scenario.FlowSpec{{From: scenario.Host(), To: scenario.NodeID(1)}},
		Sweep:    &scenario.Sweep{WindowSegs: windows, SeedStep: 1},
		Warmup:   scenario.Duration(warm),
		Duration: scenario.Duration(dur),
		Seeds:    o.seeds(51),
	}})
	for i, segs := range windows {
		sr := res[i]
		mss := sr.Runs[0].Flows[0].MSS
		t.AddRow(di(segs), di(segs*mss),
			o.cell(flowSeries(sr, 0, goodputOf), f1),
			o.cell(flowSeries(sr, 0, func(f scenario.FlowResult) float64 { return f.SRTTms }), f1))
	}
	t.Note("paper Fig. 5: goodput levels off once the window exceeds the ≈1.6 KiB bandwidth-delay product")
	return t
}

// Table7 compares TCPlp against the simplified embedded stacks of prior
// studies, one hop and three hops: one spec per (profile, hop count),
// using the per-flow stack-profile knob.
func Table7(o Opts) *Table {
	t := &Table{
		ID:      "table7",
		Title:   "Goodput of simplified stacks vs TCPlp",
		Columns: []string{"Stack", "MSS", "Window", "1-hop kb/s", "3-hop kb/s"},
	}
	warm, dur := o.scale().dur(10*sim.Second), o.scale().dur(60*sim.Second)
	mk := func(name, profile string, hops int, seed int64) *scenario.Spec {
		return &scenario.Spec{
			Name:     name,
			Topology: scenario.TopologySpec{Kind: scenario.TopoChain, Nodes: hops + 1},
			Flows: []scenario.FlowSpec{{
				From: scenario.NodeID(hops), To: scenario.NodeID(0), Profile: profile,
			}},
			Warmup:   scenario.Duration(warm),
			Duration: scenario.Duration(dur),
			Seeds:    o.seeds(seed),
		}
	}
	var specs []*scenario.Spec
	for i, p := range uip.Profiles() {
		specs = append(specs,
			mk("table7-"+p.Key()+"-1hop", p.Key(), 1, int64(60+i)),
			mk("table7-"+p.Key()+"-3hop", p.Key(), 3, int64(70+i)))
	}
	specs = append(specs,
		mk("table7-tcplp-1hop", "", 1, 81),
		mk("table7-tcplp-3hop", "", 3, 82))
	res := o.run(specs)
	for i, p := range uip.Profiles() {
		t.AddRow(p.String(), fmt.Sprintf("%d frame(s)", p.SegFrames()), "1 seg",
			o.cell(flowSeries(res[2*i], 0, goodputOf), f1),
			o.cell(flowSeries(res[2*i+1], 0, goodputOf), f1))
	}
	n := len(res)
	t.AddRow("TCPlp", "5 frames", "4 segs",
		o.cell(flowSeries(res[n-2], 0, goodputOf), f1),
		o.cell(flowSeries(res[n-1], 0, goodputOf), f1))
	t.Note("paper Table 7: uIP-class 1.5-15 kb/s one hop vs TCPlp ≈75 kb/s — a 5-40x gap")
	return t
}

// DefaultRetryDelays is the Fig. 6 x-axis.
func DefaultRetryDelays() []sim.Duration {
	return []sim.Duration{0, 5 * sim.Millisecond, 10 * sim.Millisecond,
		20 * sim.Millisecond, 30 * sim.Millisecond, 40 * sim.Millisecond,
		60 * sim.Millisecond, 80 * sim.Millisecond, 100 * sim.Millisecond}
}

// Fig6 produces the four panels of Fig. 6 plus the Fig. 7b recovery
// counts: the effect of the random link-retry delay d on loss, goodput
// (with the Eq. 2 prediction), RTT, and total frames, for one and three
// hops. Both hop counts are retry_delay-axis sweeps fanned out in one
// RunAll, so -workers parallelizes the whole figure.
func Fig6(o Opts) []*Table {
	ds := DefaultRetryDelays()
	warm, dur := o.scale().dur(15*sim.Second), o.scale().dur(90*sim.Second)
	axis := make([]scenario.Duration, len(ds))
	for i, d := range ds {
		axis[i] = scenario.Duration(d)
	}
	mk := func(hops int, seed int64) *scenario.Spec {
		return &scenario.Spec{
			Name:     fmt.Sprintf("fig6-%dhop", hops),
			Topology: scenario.TopologySpec{Kind: scenario.TopoChain, Nodes: hops + 1},
			Flows:    []scenario.FlowSpec{{From: scenario.NodeID(hops), To: scenario.NodeID(0)}},
			Sweep:    &scenario.Sweep{RetryDelay: axis, SeedStep: 1},
			Warmup:   scenario.Duration(warm),
			Duration: scenario.Duration(dur),
			Seeds:    o.seeds(seed),
		}
	}
	res := o.run([]*scenario.Spec{mk(1, 110), mk(3, 130)})
	one, three := res[:len(ds)], res[len(ds):]

	mkTab := func(id, title string, cols []string) *Table {
		return &Table{ID: id, Title: title, Columns: cols}
	}
	lossPanel := func(id, title string, cells []*scenario.SpecResult) *Table {
		tab := mkTab(id, title, []string{"d (ms)", "Seg loss", "Goodput kb/s", "Eq.2 pred kb/s"})
		for i, sr := range cells {
			tab.AddRow(f1(ds[i].Milliseconds()),
				o.cell(runSeries(sr, segLoss), pct),
				o.cell(flowSeries(sr, 0, goodputOf), f1),
				o.cell(runSeries(sr, eq2Pred), f1))
		}
		return tab
	}
	t6a := lossPanel("fig6a", "One hop: segment loss, goodput, predicted goodput vs max link-retry delay", one)
	t6b := lossPanel("fig6b", "Three hops: segment loss, goodput, predicted goodput vs max link-retry delay", three)
	t6c := mkTab("fig6c", "Three hops: round-trip time vs max link-retry delay",
		[]string{"d (ms)", "Median RTT ms", "SRTT ms"})
	t6d := mkTab("fig6d", "Three hops: total frames transmitted vs max link-retry delay",
		[]string{"d (ms)", "Frames"})
	t7b := mkTab("fig7b", "Three hops: TCP loss recovery vs max link-retry delay",
		[]string{"d (ms)", "Timeouts", "Fast retransmissions"})
	for i, sr := range three {
		d := f1(ds[i].Milliseconds())
		t6c.AddRow(d,
			o.cell(flowSeries(sr, 0, func(f scenario.FlowResult) float64 { return f.MedianRTTms }), f1),
			o.cell(flowSeries(sr, 0, func(f scenario.FlowResult) float64 { return f.SRTTms }), f1))
		t6d.AddRow(d,
			o.cell(runSeries(sr, func(r scenario.Result) float64 { return float64(r.FramesSent) }), f0))
		t7b.AddRow(d,
			o.cell(flowSeries(sr, 0, func(f scenario.FlowResult) float64 { return float64(f.Timeouts) }), f0),
			o.cell(flowSeries(sr, 0, func(f scenario.FlowResult) float64 { return float64(f.FastRtx) }), f0))
	}
	t6b.Note("paper: ≈6%% loss at d=0 from hidden terminals, <1%% by d=30 ms, yet goodput nearly flat — the §7.3 small-window robustness")
	t6d.Note("paper Fig. 6d: larger d sends fewer total frames (fewer futile retries)")
	return []*Table{t6a, t6b, t6c, t6d, t7b}
}

// CwndTracePoint is one cwnd/ssthresh observation.
type CwndTracePoint struct {
	T        sim.Time
	Cwnd     int
	Ssthresh int
}

// CwndTrace reproduces Fig. 7a: the congestion window of a three-hop
// flow with d = 0 (hidden-terminal losses) observed over an interval —
// a single traced-flow spec whose trajectory comes back in the flow
// result.
func CwndTrace(o Opts) ([]CwndTracePoint, *Table) {
	start := o.scale().dur(30 * sim.Second)
	window := o.scale().dur(100 * sim.Second)
	noRetry := scenario.Duration(0)
	run := o.run([]*scenario.Spec{{
		Name:     "fig7a",
		Topology: scenario.TopologySpec{Kind: scenario.TopoChain, Nodes: 4},
		Net:      scenario.NetSpec{RetryDelay: &noRetry},
		Flows: []scenario.FlowSpec{{
			From: scenario.NodeID(3), To: scenario.NodeID(0), Trace: true,
		}},
		Warmup:   scenario.Duration(start),
		Duration: scenario.Duration(window),
		Seeds:    []int64{7},
	}})[0].Runs[0]
	fl := run.Flows[0]
	trace := make([]CwndTracePoint, len(fl.CwndTrace))
	for i, p := range fl.CwndTrace {
		trace[i] = CwndTracePoint{T: sim.Time(p.T), Cwnd: p.Cwnd, Ssthresh: p.Ssthresh}
	}

	maxCwnd := fl.WindowSegs * fl.MSS
	atMax := 0
	for _, p := range trace {
		if p.Cwnd >= maxCwnd {
			atMax++
		}
	}
	t := &Table{
		ID:      "fig7a",
		Title:   "cwnd behaviour, three hops, d=0 (summary; full trace via cmd/tcplp-trace)",
		Columns: []string{"Metric", "Value"},
	}
	t.AddRow("congestion events traced", di(len(trace)))
	if len(trace) > 0 {
		t.AddRow("samples at max window", pct(float64(atMax)/float64(len(trace))))
	}
	t.AddRow("timeouts", du(fl.Timeouts))
	t.AddRow("fast retransmissions", du(fl.FastRtx))
	t.Note("paper Fig. 7a: cwnd recovers to the (4-segment) maximum almost immediately after every loss — no sawtooth")
	return trace, t
}

// HopSweep reproduces the §7.2 hop-count measurement at d = 40 ms and
// compares it with the B/min(h,3) radio-scheduling bound: one hops-axis
// sweep with an "end"-referenced sender. The paper's 4-hop outlier
// (which needed a 6-segment window to fill the pipe) is a per-cell
// override in the same grid, not a separate spec.
func HopSweep(o Opts) *Table {
	t := &Table{
		ID:      "hopsweep",
		Title:   "Goodput vs hop count (d = 40 ms)",
		Columns: []string{"Hops", "Goodput kb/s", "×1-hop", "Bound factor"},
	}
	warm, dur := o.scale().dur(15*sim.Second), o.scale().dur(90*sim.Second)
	res := o.run([]*scenario.Spec{{
		Name:     "hopsweep",
		Topology: scenario.TopologySpec{Kind: scenario.TopoChain},
		Flows:    []scenario.FlowSpec{{From: scenario.End(), To: scenario.NodeID(0)}},
		Sweep: &scenario.Sweep{
			Hops: []int{1, 2, 3, 4}, SeedStep: 1,
			Overrides: []scenario.Override{{
				When: scenario.OverrideWhen{"hops": "4"},
				Set:  scenario.OverrideSet{WindowSegs: 6},
			}},
		},
		Warmup:   scenario.Duration(warm),
		Duration: scenario.Duration(dur),
		Seeds:    o.seeds(201),
	}})
	var oneHop []float64
	for hops := 1; hops <= 4; hops++ {
		g := flowSeries(res[hops-1], 0, goodputOf)
		if hops == 1 {
			oneHop = g
		}
		// Pair seed index k of this hop count with seed index k of the
		// 1-hop cell. The cells run different channel realizations
		// (SeedStep offsets them), so a multi-seed ±σ on this column is
		// the spread of ratios of independent runs, not a
		// common-random-number paired estimate.
		ratios := make([]float64, len(g))
		for i, v := range g {
			if ref := oneHop[i%len(oneHop)]; ref > 0 {
				ratios[i] = v / ref
			}
		}
		t.AddRow(di(hops), o.cell(g, f1), o.cell(ratios, f2),
			f2(model.MultihopFactor(hops)))
	}
	t.Note("paper §7.2: 64.1 / 28.3 / 19.5 / 17.5 kb/s for 1-4 hops, tracking B/min(h,3)")
	return t
}

// Table9 measures fairness and efficiency for two simultaneous flows
// (Appendix A): one hop and three hops with the standard 4-segment
// window, three hops with a 7-segment window with and without RED/ECN
// at the relays, and — the ROADMAP's inter-variant fairness question —
// the same w=7 bottleneck with a paced BBR flow against NewReno. Each
// row is a declarative twin-leaf scenario run by the scenario
// subsystem, which computes the per-flow goodputs and the Jain index.
func Table9(o Opts) *Table {
	t := &Table{
		ID:      "table9",
		Title:   "Two simultaneous flows: fairness and efficiency",
		Columns: []string{"Scenario", "Flow A kb/s", "Flow B kb/s", "Jain index", "Aggregate kb/s"},
	}
	warm, dur := o.scale().dur(20*sim.Second), o.scale().dur(5*sim.Minute)
	mk := func(name string, pathHops, windowSegs int, red bool, seed int64, variantA, variantB string) *scenario.Spec {
		return &scenario.Spec{
			Name:     name,
			Topology: scenario.TopologySpec{Kind: scenario.TopoTwinLeaf, PathHops: pathHops},
			Net: scenario.NetSpec{
				WindowSegs: windowSegs,
				RED:        red, ECN: red, HopByHop: red,
			},
			Flows: []scenario.FlowSpec{
				{Label: "A", From: scenario.NodeID(pathHops), To: scenario.NodeID(0),
					Port: 80, Variant: variantA},
				{Label: "B", From: scenario.NodeID(pathHops + 1), To: scenario.NodeID(0),
					Port: 81, Variant: variantB},
			},
			Warmup:   scenario.Duration(warm),
			Duration: scenario.Duration(dur),
			Seeds:    o.seeds(seed),
		}
	}
	results := o.run([]*scenario.Spec{
		mk("1 hop, w=4", 1, 4, false, 300, "", ""),
		mk("3 hops, w=4", 3, 4, false, 301, "", ""),
		mk("3 hops, w=7", 3, 7, false, 302, "", ""),
		mk("3 hops, w=7, RED+ECN", 3, 7, true, 303, "", ""),
		mk("3 hops, w=7, paced BBR vs NewReno", 3, 7, false, 304, "bbr", "newreno"),
	})
	for _, sr := range results {
		t.AddRow(sr.Spec.Name,
			o.cell(flowSeries(sr, 0, goodputOf), f1),
			o.cell(flowSeries(sr, 1, goodputOf), f1),
			o.cell(runSeries(sr, func(r scenario.Result) float64 { return r.Jain }), f3),
			o.cell(runSeries(sr, func(r scenario.Result) float64 { return r.AggregateKbps }), f1))
	}
	t.Note("paper Table 9: fair at w=4; w=7 needs RED/ECN at relays to restore fairness and keep RTT low")
	t.Note("the mixed row asks whether pacing alone fixes the w=7 unfairness without AQM at the relays")
	return t
}
