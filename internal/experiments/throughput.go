package experiments

import (
	"fmt"

	"tcplp/internal/app"
	"tcplp/internal/mesh"
	"tcplp/internal/model"
	"tcplp/internal/scenario"
	"tcplp/internal/sim"
	"tcplp/internal/stack"
	"tcplp/internal/stats"
	"tcplp/internal/tcplp"
	"tcplp/internal/uip"
)

// Scale shrinks experiment durations for quick runs (benchmarks use
// Scale < 1); 1.0 reproduces the full published sweeps.
type Scale float64

func (s Scale) dur(d sim.Duration) sim.Duration {
	out := sim.Duration(float64(d) * float64(s))
	if out < 5*sim.Second {
		out = 5 * sim.Second
	}
	return out
}

// flowResult summarizes one measured bulk flow.
type flowResult struct {
	GoodputKbps float64
	SegLoss     float64 // fraction of data segments retransmitted
	SRTT        sim.Duration
	MedianRTT   sim.Duration
	Timeouts    uint64
	FastRtx     uint64
	FramesSent  uint64
}

// measureFlow runs a bulk transfer from one endpoint to another and
// measures over the post-warmup window.
func measureFlow(net *stack.Network, from, to *stack.Node, warmup, dur sim.Duration) flowResult {
	sink := app.ListenSink(to, 80)
	src := app.StartBulk(from, to.Addr, 80)
	var rtts stats.Sample
	src.Conn.TraceRTT = func(s sim.Duration) { rtts.Add(float64(s)) }

	net.Eng.RunFor(warmup)
	sink.Mark()
	statsBefore := src.Conn.Stats
	framesBefore := net.TotalFramesSent()
	lossBefore := net.TotalLossEvents()
	net.Eng.RunFor(dur)

	st := src.Conn.Stats
	dataSegs := float64(st.BytesSent-statsBefore.BytesSent) / float64(net.Opt.TCP.MSS)
	res := flowResult{
		GoodputKbps: sink.GoodputKbps(),
		SRTT:        src.Conn.SRTT(),
		MedianRTT:   sim.Duration(rtts.Median()),
		Timeouts:    st.Timeouts - statsBefore.Timeouts,
		FastRtx:     st.FastRetransmits - statsBefore.FastRetransmits,
		FramesSent:  net.TotalFramesSent() - framesBefore,
	}
	if dataSegs > 0 {
		// Segment loss counted from in-network datagram losses (link
		// failures, queue drops, reassembly timeouts) — the paper's
		// definition: losses not masked by link retries. Counting TCP
		// retransmissions instead would inflate it with spurious RTOs.
		res.SegLoss = float64(net.TotalLossEvents()-lossBefore) / dataSegs
		if res.SegLoss > 1 {
			res.SegLoss = 1
		}
	}
	src.Stop()
	return res
}

// Fig4 sweeps the MSS from 2 to 8 frames over the Fig. 2 setup (mote ↔
// border router ↔ wired host, one wireless hop) and reports uplink and
// downlink goodput.
func Fig4(scale Scale) *Table {
	t := &Table{
		ID:      "fig4",
		Title:   "Goodput vs maximum segment size (frames), one hop via border router",
		Columns: []string{"MSS (frames)", "MSS (bytes)", "Uplink kb/s", "Downlink kb/s"},
	}
	warm, dur := scale.dur(10*sim.Second), scale.dur(60*sim.Second)
	for frames := 2; frames <= 8; frames++ {
		opt := stack.DefaultOptions()
		opt.SegFrames = frames
		run := func(up bool, seed int64) float64 {
			net := stack.New(seed, mesh.Chain(2, 10), opt)
			host := net.AttachHost()
			if up {
				return measureFlow(net, net.Nodes[1], host, warm, dur).GoodputKbps
			}
			return measureFlow(net, host, net.Nodes[1], warm, dur).GoodputKbps
		}
		info := stack.SegmentSizing(frames, true)
		t.AddRow(di(frames), di(info.MSS), f1(run(true, 40)), f1(run(false, 41)))
	}
	t.Note("paper Fig. 4: poor goodput at small MSS from header overhead, diminishing gains past 5 frames")
	return t
}

// Fig5 sweeps the send/receive buffer (window) size in segments and
// reports downlink goodput and RTT (the paper's Fig. 5 measures the
// downlink through the border router).
func Fig5(scale Scale) *Table {
	t := &Table{
		ID:      "fig5",
		Title:   "Goodput and RTT vs window (buffer) size, downlink",
		Columns: []string{"Window (segs)", "Window (bytes)", "Goodput kb/s", "SRTT ms"},
	}
	warm, dur := scale.dur(10*sim.Second), scale.dur(60*sim.Second)
	for segs := 1; segs <= 6; segs++ {
		opt := stack.DefaultOptions()
		opt.WindowSegs = segs
		net := stack.New(int64(50+segs), mesh.Chain(2, 10), opt)
		host := net.AttachHost()
		res := measureFlow(net, host, net.Nodes[1], warm, dur)
		t.AddRow(di(segs), di(segs*net.Opt.TCP.MSS), f1(res.GoodputKbps),
			f1(res.SRTT.Milliseconds()))
	}
	t.Note("paper Fig. 5: goodput levels off once the window exceeds the ≈1.6 KiB bandwidth-delay product")
	return t
}

// Table7 compares TCPlp against the simplified embedded stacks of prior
// studies, one hop and three hops.
func Table7(scale Scale) *Table {
	t := &Table{
		ID:      "table7",
		Title:   "Goodput of simplified stacks vs TCPlp",
		Columns: []string{"Stack", "MSS", "Window", "1-hop kb/s", "3-hop kb/s"},
	}
	warm, dur := scale.dur(10*sim.Second), scale.dur(60*sim.Second)
	run := func(cfg tcplp.Config, seed int64, hops int) float64 {
		opt := stack.DefaultOptions()
		opt.ExplicitTCP = true
		opt.TCP = cfg
		net := stack.New(seed, mesh.Chain(hops+1, 10), opt)
		// The sender runs the profile under test; the sink runs full
		// TCPlp (in prior studies the receiver was a gateway-class host),
		// whose delayed ACKs penalize stop-and-wait stacks just as real
		// deployments observed.
		full := stack.DefaultOptions()
		net.Nodes[0].SetTCPConfig(stack.DerivedTCPConfig(full, full.TCP))
		return measureFlow(net, net.Nodes[hops], net.Nodes[0], warm, dur).GoodputKbps
	}
	for i, p := range uip.Profiles() {
		cfg := p.Config()
		t.AddRow(p.String(), fmt.Sprintf("%d frame(s)", p.SegFrames()), "1 seg",
			f1(run(cfg, int64(60+i), 1)), f1(run(cfg, int64(70+i), 3)))
	}
	opt := stack.DefaultOptions()
	net := stack.New(80, mesh.Chain(2, 10), opt)
	tcplpCfg := net.Opt.TCP
	t.AddRow("TCPlp", "5 frames", "4 segs",
		f1(run(tcplpCfg, 81, 1)), f1(run(tcplpCfg, 82, 3)))
	t.Note("paper Table 7: uIP-class 1.5-15 kb/s one hop vs TCPlp ≈75 kb/s — a 5-40x gap")
	return t
}

// fig6Point is one link-retry-delay measurement.
type fig6Point struct {
	d    sim.Duration
	hops int
	res  flowResult
	pred float64
}

// fig6Sweep runs the §7.1 sweep for a hop count.
func fig6Sweep(scale Scale, hops int, ds []sim.Duration) []fig6Point {
	warm, dur := scale.dur(15*sim.Second), scale.dur(90*sim.Second)
	var out []fig6Point
	for i, d := range ds {
		opt := stack.DefaultOptions()
		opt.MAC.RetryDelayMax = d
		net := stack.New(int64(100+10*hops+i), mesh.Chain(hops+1, 10), opt)
		res := measureFlow(net, net.Nodes[hops], net.Nodes[0], warm, dur)
		rtt := res.SRTT
		if rtt <= 0 {
			rtt = res.MedianRTT
		}
		pred := model.TCPlpGoodput(net.Opt.TCP.MSS, rtt, 4, res.SegLoss) / 1000
		out = append(out, fig6Point{d: d, hops: hops, res: res, pred: pred})
	}
	return out
}

// DefaultRetryDelays is the Fig. 6 x-axis.
func DefaultRetryDelays() []sim.Duration {
	return []sim.Duration{0, 5 * sim.Millisecond, 10 * sim.Millisecond,
		20 * sim.Millisecond, 30 * sim.Millisecond, 40 * sim.Millisecond,
		60 * sim.Millisecond, 80 * sim.Millisecond, 100 * sim.Millisecond}
}

// Fig6 produces the four panels of Fig. 6 plus the Fig. 7b recovery
// counts: the effect of the random link-retry delay d on loss, goodput
// (with the Eq. 2 prediction), RTT, and total frames, for one and three
// hops.
func Fig6(scale Scale) []*Table {
	ds := DefaultRetryDelays()
	one := fig6Sweep(scale, 1, ds)
	three := fig6Sweep(scale, 3, ds)

	mk := func(id, title string, cols []string) *Table {
		return &Table{ID: id, Title: title, Columns: cols}
	}
	t6a := mk("fig6a", "One hop: segment loss, goodput, predicted goodput vs max link-retry delay",
		[]string{"d (ms)", "Seg loss", "Goodput kb/s", "Eq.2 pred kb/s"})
	for _, p := range one {
		t6a.AddRow(f1(p.d.Milliseconds()), pct(p.res.SegLoss), f1(p.res.GoodputKbps), f1(p.pred))
	}
	t6b := mk("fig6b", "Three hops: segment loss, goodput, predicted goodput vs max link-retry delay",
		[]string{"d (ms)", "Seg loss", "Goodput kb/s", "Eq.2 pred kb/s"})
	for _, p := range three {
		t6b.AddRow(f1(p.d.Milliseconds()), pct(p.res.SegLoss), f1(p.res.GoodputKbps), f1(p.pred))
	}
	t6c := mk("fig6c", "Three hops: round-trip time vs max link-retry delay",
		[]string{"d (ms)", "Median RTT ms", "SRTT ms"})
	for _, p := range three {
		t6c.AddRow(f1(p.d.Milliseconds()), f1(p.res.MedianRTT.Milliseconds()), f1(p.res.SRTT.Milliseconds()))
	}
	t6d := mk("fig6d", "Three hops: total frames transmitted vs max link-retry delay",
		[]string{"d (ms)", "Frames"})
	for _, p := range three {
		t6d.AddRow(f1(p.d.Milliseconds()), du(p.res.FramesSent))
	}
	t7b := mk("fig7b", "Three hops: TCP loss recovery vs max link-retry delay",
		[]string{"d (ms)", "Timeouts", "Fast retransmissions"})
	for _, p := range three {
		t7b.AddRow(f1(p.d.Milliseconds()), du(p.res.Timeouts), du(p.res.FastRtx))
	}
	t6b.Note("paper: ≈6%% loss at d=0 from hidden terminals, <1%% by d=30 ms, yet goodput nearly flat — the §7.3 small-window robustness")
	t6d.Note("paper Fig. 6d: larger d sends fewer total frames (fewer futile retries)")
	return []*Table{t6a, t6b, t6c, t6d, t7b}
}

// CwndTracePoint is one cwnd/ssthresh observation.
type CwndTracePoint struct {
	T        sim.Time
	Cwnd     int
	Ssthresh int
}

// CwndTrace reproduces Fig. 7a: the congestion window of a three-hop
// flow with d = 0 (hidden-terminal losses) observed over an interval.
func CwndTrace(scale Scale) ([]CwndTracePoint, *Table) {
	opt := stack.DefaultOptions()
	opt.MAC.RetryDelayMax = 0
	net := stack.New(7, mesh.Chain(4, 10), opt)
	sink := app.ListenSink(net.Nodes[0], 80)
	src := app.StartBulk(net.Nodes[3], net.Nodes[0].Addr, 80)
	var trace []CwndTracePoint
	start := scale.dur(30 * sim.Second)
	window := scale.dur(100 * sim.Second)
	src.Conn.TraceCwnd = func(now sim.Time, cwnd, ssthresh int) {
		if now >= sim.Time(start) {
			trace = append(trace, CwndTracePoint{now, cwnd, ssthresh})
		}
	}
	net.Eng.RunUntil(sim.Time(start + window))
	_ = sink

	maxCwnd := 4 * net.Opt.TCP.MSS
	atMax := 0
	for _, p := range trace {
		if p.Cwnd >= maxCwnd {
			atMax++
		}
	}
	t := &Table{
		ID:      "fig7a",
		Title:   "cwnd behaviour, three hops, d=0 (summary; full trace via cmd/tcplp-trace)",
		Columns: []string{"Metric", "Value"},
	}
	t.AddRow("congestion events traced", di(len(trace)))
	if len(trace) > 0 {
		t.AddRow("samples at max window", pct(float64(atMax)/float64(len(trace))))
	}
	t.AddRow("timeouts", du(src.Conn.Stats.Timeouts))
	t.AddRow("fast retransmissions", du(src.Conn.Stats.FastRetransmits))
	t.Note("paper Fig. 7a: cwnd recovers to the (4-segment) maximum almost immediately after every loss — no sawtooth")
	return trace, t
}

// HopSweep reproduces the §7.2 hop-count measurement at d = 40 ms and
// compares it with the B/min(h,3) radio-scheduling bound.
func HopSweep(scale Scale) *Table {
	t := &Table{
		ID:      "hopsweep",
		Title:   "Goodput vs hop count (d = 40 ms)",
		Columns: []string{"Hops", "Goodput kb/s", "×1-hop", "Bound factor"},
	}
	warm, dur := scale.dur(15*sim.Second), scale.dur(90*sim.Second)
	var oneHop float64
	for hops := 1; hops <= 4; hops++ {
		opt := stack.DefaultOptions()
		if hops >= 4 {
			// §7.2: four hops needed a larger window to fill the pipe.
			opt.WindowSegs = 6
		}
		net := stack.New(int64(200+hops), mesh.Chain(hops+1, 10), opt)
		res := measureFlow(net, net.Nodes[hops], net.Nodes[0], warm, dur)
		if hops == 1 {
			oneHop = res.GoodputKbps
		}
		ratio := 0.0
		if oneHop > 0 {
			ratio = res.GoodputKbps / oneHop
		}
		t.AddRow(di(hops), f1(res.GoodputKbps), f2(ratio), f2(model.MultihopFactor(hops)))
	}
	t.Note("paper §7.2: 64.1 / 28.3 / 19.5 / 17.5 kb/s for 1-4 hops, tracking B/min(h,3)")
	return t
}

// Table9 measures fairness and efficiency for two simultaneous flows
// (Appendix A): one hop and three hops with the standard 4-segment
// window, three hops with a 7-segment window with and without RED/ECN
// at the relays, and — the ROADMAP's inter-variant fairness question —
// the same w=7 bottleneck with a paced BBR flow against NewReno. Each
// row is a declarative twin-leaf scenario run by the scenario
// subsystem, which computes the per-flow goodputs and the Jain index.
func Table9(scale Scale) *Table {
	t := &Table{
		ID:      "table9",
		Title:   "Two simultaneous flows: fairness and efficiency",
		Columns: []string{"Scenario", "Flow A kb/s", "Flow B kb/s", "Jain index", "Aggregate kb/s"},
	}
	warm, dur := scale.dur(20*sim.Second), scale.dur(5*sim.Minute)
	mk := func(name string, pathHops, windowSegs int, red bool, seed int64, variantA, variantB string) *scenario.Spec {
		return &scenario.Spec{
			Name:     name,
			Topology: scenario.TopologySpec{Kind: scenario.TopoTwinLeaf, PathHops: pathHops},
			Net: scenario.NetSpec{
				WindowSegs: windowSegs,
				RED:        red, ECN: red, HopByHop: red,
			},
			Flows: []scenario.FlowSpec{
				{Label: "A", From: scenario.NodeID(pathHops), To: scenario.NodeID(0),
					Port: 80, Variant: variantA},
				{Label: "B", From: scenario.NodeID(pathHops + 1), To: scenario.NodeID(0),
					Port: 81, Variant: variantB},
			},
			Warmup:   scenario.Duration(warm),
			Duration: scenario.Duration(dur),
			Seeds:    []int64{seed},
		}
	}
	specs := []*scenario.Spec{
		mk("1 hop, w=4", 1, 4, false, 300, "", ""),
		mk("3 hops, w=4", 3, 4, false, 301, "", ""),
		mk("3 hops, w=7", 3, 7, false, 302, "", ""),
		mk("3 hops, w=7, RED+ECN", 3, 7, true, 303, "", ""),
		mk("3 hops, w=7, paced BBR vs NewReno", 3, 7, false, 304, "bbr", "newreno"),
	}
	results, err := (&scenario.Runner{}).RunAll(specs)
	if err != nil {
		panic(fmt.Sprintf("experiments: table9 specs invalid: %v", err))
	}
	for _, sr := range results {
		run := sr.Runs[0]
		t.AddRow(sr.Spec.Name, f1(run.Flows[0].GoodputKbps), f1(run.Flows[1].GoodputKbps),
			f3(run.Jain), f1(run.AggregateKbps))
	}
	t.Note("paper Table 9: fair at w=4; w=7 needs RED/ECN at relays to restore fairness and keep RTT low")
	t.Note("the mixed row asks whether pacing alone fixes the w=7 unfairness without AQM at the relays")
	return t
}
