package experiments

import (
	"tcplp/internal/app"
	"tcplp/internal/coap"
	"tcplp/internal/ip6"
	"tcplp/internal/mesh"
	"tcplp/internal/netem"
	"tcplp/internal/sim"
	"tcplp/internal/stack"
)

// Protocol selects the anemometer transport.
type Protocol int

// Protocols compared in §9.
const (
	ProtoTCPlp Protocol = iota
	ProtoCoAP
	ProtoCoCoA
	ProtoCoAPNon // nonconfirmable (unreliable) CoAP
)

func (p Protocol) String() string {
	switch p {
	case ProtoTCPlp:
		return "TCPlp"
	case ProtoCoAP:
		return "CoAP"
	case ProtoCoCoA:
		return "CoCoA"
	case ProtoCoAPNon:
		return "CoAP-NON"
	}
	return "?"
}

// SensorNodes are the anemometer stand-ins in the office topology
// (paper: nodes 12-15, 1-based with node 1 the border router).
var SensorNodes = []int{11, 12, 13, 14}

// anemRun configures one §9 application run.
type anemRun struct {
	proto        Protocol
	batch        bool
	injectedLoss float64
	interference bool
	warm, dur    sim.Duration
	seed         int64
	// hourly enables per-hour duty-cycle sampling (Fig. 10).
	hourly bool
	// nodes overrides SensorNodes (Fig. 10 splits them between
	// protocols).
	nodes []int
}

// anemResult is the measured outcome.
type anemResult struct {
	Reliability float64
	RadioDC     float64 // mean over sensor nodes
	CPUDC       float64
	RtxPer10Min float64 // transport retransmissions per 10 min per node
	RTOsPer10   float64 // for TCP: timeout-driven subset
	HourlyDC    []float64
}

// runAnemometer builds the office network, attaches the cloud collector,
// runs the sensors, and measures.
func runAnemometer(cfg anemRun) anemResult {
	opt := stack.DefaultOptions()
	net := stack.New(cfg.seed, mesh.Office(), opt)
	host := net.AttachHost()
	if cfg.injectedLoss > 0 {
		net.Border().DropFilter = netem.UniformLoss(cfg.injectedLoss, cfg.seed+1)
	}
	if cfg.interference {
		for _, in := range netem.AddOfficeInterference(net, 1.0) {
			in.Start()
		}
	}

	nodes := cfg.nodes
	if nodes == nil {
		nodes = SensorNodes
	}
	credit := map[ip6.Addr]*app.SensorStats{}
	app.NewCollector(host, 80, credit)

	info := stack.SegmentSizing(5, true)
	var sensors []*app.Sensor
	var tcpTransports []*app.TCPTransport
	var coapTransports []*app.CoAPTransport
	for _, id := range nodes {
		node := net.Nodes[id]
		sc := net.MakeSleepyLeaf(id)
		sc.SleepInterval = 4 * sim.Minute
		sc.FastInterval = 100 * sim.Millisecond
		sc.Start()

		var tr app.Transport
		queueCap := app.TCPQueueCap
		switch cfg.proto {
		case ProtoTCPlp:
			tt := app.NewTCPTransport(node, host.Addr, 80)
			tcpTransports = append(tcpTransports, tt)
			tr = tt
		default:
			queueCap = app.CoAPQueueCap
			confirmable := cfg.proto != ProtoCoAPNon
			ct := app.NewCoAPTransport(node, host.Addr, confirmable, info.SegmentPayload/app.ReadingSize*app.ReadingSize)
			if cfg.proto == ProtoCoCoA {
				ct.Client.Policy = coap.NewCoCoA()
			}
			coapTransports = append(coapTransports, ct)
			tr = ct
		}
		s := app.NewSensor(net.Eng, tr, queueCap)
		if cfg.batch {
			s.Batch = app.DefaultBatch
		}
		switch v := tr.(type) {
		case *app.TCPTransport:
			v.Attach(s)
		case *app.CoAPTransport:
			v.Attach(s)
		}
		credit[node.Addr] = &s.Stats
		sensors = append(sensors, s)
		s.Start()
	}

	net.Eng.RunFor(cfg.warm)
	// Begin the measurement window.
	var genBase, delivBase uint64
	for _, s := range sensors {
		genBase += s.Stats.Generated
		delivBase += s.Stats.Delivered
	}
	var rtxBase uint64
	var rtoBase uint64
	for _, tt := range tcpTransports {
		rtxBase += tt.Conn.Stats.Retransmits
		rtoBase += tt.Conn.Stats.Timeouts
	}
	for _, ct := range coapTransports {
		rtxBase += ct.Client.Stats.Retransmissions
	}
	for _, id := range nodes {
		net.Nodes[id].Radio.ResetEnergy()
		net.Nodes[id].CPU.Reset()
	}

	var hourly []float64
	if cfg.hourly {
		hours := int(cfg.dur / sim.Hour)
		for h := 1; h <= hours; h++ {
			h := h
			net.Eng.Schedule(sim.Duration(h)*sim.Hour, func() {
				dc := 0.0
				for _, id := range nodes {
					dc += net.Nodes[id].Radio.DutyCycle()
					net.Nodes[id].Radio.ResetEnergy()
				}
				hourly = append(hourly, dc/float64(len(nodes)))
			})
		}
	}

	net.Eng.RunFor(cfg.dur)

	var gen, deliv uint64
	for _, s := range sensors {
		gen += s.Stats.Generated
		deliv += s.Stats.Delivered
	}
	gen -= genBase
	deliv -= delivBase
	// Readings still queued or in flight when the window closes are not
	// losses; exclude the end-of-window backlog from the denominator
	// (batching holds up to a full batch back at any instant).
	var backlog uint64
	for _, s := range sensors {
		backlog += uint64(s.QueueDepth())
	}
	for _, tt := range tcpTransports {
		backlog += uint64(tt.Conn.BufferedBytes() / app.ReadingSize)
	}
	for _, ct := range coapTransports {
		backlog += uint64(ct.Client.Pending() * ct.MessageSize / app.ReadingSize)
	}
	if backlog > gen-deliv {
		backlog = gen - deliv
	}
	gen -= backlog
	var rtx, rto uint64
	for _, tt := range tcpTransports {
		rtx += tt.Conn.Stats.Retransmits
		rto += tt.Conn.Stats.Timeouts
	}
	for _, ct := range coapTransports {
		rtx += ct.Client.Stats.Retransmissions
	}
	rtx -= rtxBase
	rto -= rtoBase

	res := anemResult{HourlyDC: hourly}
	if gen > 0 {
		res.Reliability = float64(deliv) / float64(gen)
		if res.Reliability > 1 {
			res.Reliability = 1
		}
	}
	if !cfg.hourly {
		for _, id := range nodes {
			res.RadioDC += net.Nodes[id].Radio.DutyCycle()
			res.CPUDC += net.Nodes[id].CPU.DutyCycle()
		}
		res.RadioDC /= float64(len(nodes))
		res.CPUDC /= float64(len(nodes))
	}
	per10 := cfg.dur.Seconds() / 600
	if per10 > 0 {
		res.RtxPer10Min = float64(rtx) / per10 / float64(len(nodes))
		res.RTOsPer10 = float64(rto) / per10 / float64(len(nodes))
	}
	return res
}

// Fig8 compares batching vs per-reading transmission for CoAP, CoCoA,
// and TCPlp in favorable (night) conditions: radio and CPU duty cycles.
func Fig8(o Opts) *Table {
	scale := o.scale()
	t := &Table{
		ID:      "fig8",
		Title:   "Effect of batching on power (favorable conditions)",
		Columns: []string{"Protocol", "Batching", "Reliability", "Radio DC", "CPU DC"},
	}
	warm, dur := scale.dur(2*sim.Minute), scale.dur(30*sim.Minute)
	seed := int64(400)
	for _, proto := range []Protocol{ProtoCoAP, ProtoCoCoA, ProtoTCPlp} {
		for _, batch := range []bool{false, true} {
			seed++
			r := runAnemometer(anemRun{
				proto: proto, batch: batch,
				warm: warm, dur: dur, seed: seed,
			})
			label := "no"
			if batch {
				label = "yes"
			}
			t.AddRow(proto.String(), label, pct(r.Reliability), pct(r.RadioDC), pct(r.CPUDC))
		}
	}
	t.Note("paper Fig. 8: all three protocols ≈100%% reliable and comparable; batching cuts both duty cycles sharply")
	return t
}

// Fig9 sweeps injected packet loss at the border router and reports
// reliability, retransmissions, and duty cycles for the three reliable
// protocols.
func Fig9(o Opts) []*Table {
	scale := o.scale()
	rel := &Table{ID: "fig9a", Title: "Reliability vs injected loss",
		Columns: []string{"Loss", "TCPlp", "CoCoA", "CoAP"}}
	rtx := &Table{ID: "fig9b", Title: "Transport retransmissions per 10 min vs injected loss",
		Columns: []string{"Loss", "TCPlp", "TCPlp RTOs", "CoCoA", "CoAP"}}
	radio := &Table{ID: "fig9c", Title: "Radio duty cycle vs injected loss",
		Columns: []string{"Loss", "TCPlp", "CoCoA", "CoAP"}}
	cpu := &Table{ID: "fig9d", Title: "CPU duty cycle vs injected loss",
		Columns: []string{"Loss", "TCPlp", "CoCoA", "CoAP"}}
	warm, dur := scale.dur(2*sim.Minute), scale.dur(20*sim.Minute)
	losses := []float64{0, 0.03, 0.06, 0.09, 0.12, 0.15, 0.18, 0.21}
	seed := int64(500)
	for _, loss := range losses {
		results := map[Protocol]anemResult{}
		for _, proto := range []Protocol{ProtoTCPlp, ProtoCoCoA, ProtoCoAP} {
			seed++
			results[proto] = runAnemometer(anemRun{
				proto: proto, batch: true, injectedLoss: loss,
				warm: warm, dur: dur, seed: seed,
			})
		}
		l := pct(loss)
		rel.AddRow(l, pct(results[ProtoTCPlp].Reliability),
			pct(results[ProtoCoCoA].Reliability), pct(results[ProtoCoAP].Reliability))
		rtx.AddRow(l, f1(results[ProtoTCPlp].RtxPer10Min), f1(results[ProtoTCPlp].RTOsPer10),
			f1(results[ProtoCoCoA].RtxPer10Min), f1(results[ProtoCoAP].RtxPer10Min))
		radio.AddRow(l, pct(results[ProtoTCPlp].RadioDC),
			pct(results[ProtoCoCoA].RadioDC), pct(results[ProtoCoAP].RadioDC))
		cpu.AddRow(l, pct(results[ProtoTCPlp].CPUDC),
			pct(results[ProtoCoCoA].CPUDC), pct(results[ProtoCoAP].CPUDC))
	}
	rel.Note("paper Fig. 9a: TCP and CoAP near 100%% through 15%% loss; CoCoA collapses from RTT inflation")
	return []*Table{rel, rtx, radio, cpu}
}

// Fig10 runs TCPlp and CoAP simultaneously for a full day under diurnal
// interference and reports hourly radio duty cycles.
func Fig10(o Opts) *Table {
	scale := o.scale()
	t := &Table{
		ID:      "fig10",
		Title:   "Hourly radio duty cycle over a day with diurnal interference",
		Columns: []string{"Hour", "TCPlp DC", "CoAP DC"},
	}
	dur := scale.dur(24 * sim.Hour)
	hours := int(dur / sim.Hour)
	if hours < 1 {
		hours = 1
		dur = sim.Hour
	}
	// Run both protocols in the same network instance, split across the
	// sensor nodes exactly as the paper does (§9.5), so they see the
	// same interference.
	tcpRes := runAnemometer(anemRun{
		proto: ProtoTCPlp, batch: true, interference: true,
		warm: 0, dur: dur, seed: 600, hourly: true, nodes: []int{11, 13},
	})
	coapRes := runAnemometer(anemRun{
		proto: ProtoCoAP, batch: true, interference: true,
		warm: 0, dur: dur, seed: 600, hourly: true, nodes: []int{12, 14},
	})
	n := len(tcpRes.HourlyDC)
	if len(coapRes.HourlyDC) < n {
		n = len(coapRes.HourlyDC)
	}
	for h := 0; h < n; h++ {
		t.AddRow(di(h), pct(tcpRes.HourlyDC[h]), pct(coapRes.HourlyDC[h]))
	}
	t.Note("paper Fig. 10: CoAP cheaper at night; TCPlp comparable or better during working-hours interference")
	return t
}

// Table8 summarizes full-day performance including the unreliable
// (nonconfirmable) baseline of §9.6.
func Table8(o Opts) *Table {
	scale := o.scale()
	t := &Table{
		ID:      "table8",
		Title:   "Full-day performance with interference",
		Columns: []string{"Protocol", "Reliability", "Radio DC", "CPU DC"},
	}
	warm, dur := scale.dur(10*sim.Minute), scale.dur(24*sim.Hour)
	rows := []struct {
		name  string
		proto Protocol
		batch bool
	}{
		{"TCPlp", ProtoTCPlp, true},
		{"CoAP", ProtoCoAP, true},
		{"Unreliable, no batch", ProtoCoAPNon, false},
		{"Unreliable, batch", ProtoCoAPNon, true},
	}
	for i, r := range rows {
		res := runAnemometer(anemRun{
			proto: r.proto, batch: r.batch, interference: true,
			warm: warm, dur: dur, seed: int64(700 + i),
		})
		t.AddRow(r.name, pct(res.Reliability), pct(res.RadioDC), pct(res.CPUDC))
	}
	t.Note("paper Table 8: reliability costs ≈3x duty cycle vs the unreliable baseline; TCPlp 99.3%%, CoAP 99.5%%")
	return t
}
