package experiments

import (
	"fmt"

	"tcplp/internal/scenario"
	"tcplp/internal/scenario/flows"
	"tcplp/internal/sim"
)

// The §9 application study — anemometer telemetry over TCPlp, CoAP,
// CoCoA, and unreliable transports — runs entirely through the
// scenario subsystem's protocol drivers: each table row is a
// declarative office-topology spec with sleepy sensor nodes and one
// anemometer flow per sensor, fanned out by the parallel runner. The
// renderers below reproduce the bespoke harness's pooled arithmetic
// bit-for-bit (pinned by testdata/equiv_fig8..table8).

// SensorNodes are the anemometer stand-ins in the office topology
// (paper: nodes 12-15, 1-based with node 1 the border router).
var SensorNodes = []int{11, 12, 13, 14}

// anemProto names one transport configuration of the §9 comparison.
type anemProto struct {
	protocol    string // scenario FlowSpec protocol
	rto         string // coap RTO policy
	confirmable bool
}

var (
	protoTCPlp   = anemProto{protocol: "tcp"}
	protoCoAP    = anemProto{protocol: "coap", confirmable: true}
	protoCoCoA   = anemProto{protocol: "coap", rto: "cocoa", confirmable: true}
	protoCoAPNon = anemProto{protocol: "coap"}
)

// anemSpec builds one §9 office run: the given sensor nodes become
// duty-cycled leaves (4 min sleep, 100 ms fast poll) each driving an
// anemometer flow to the cloud host over the chosen transport.
func anemSpec(name string, p anemProto, batch bool, nodes []int,
	injectedLoss float64, interference bool, warm, dur sim.Duration, seeds []int64) *scenario.Spec {

	fast := scenario.Duration(100 * sim.Millisecond)
	s := &scenario.Spec{
		Name:     name,
		Topology: scenario.TopologySpec{Kind: scenario.TopoOffice},
		Net: scenario.NetSpec{
			InjectedLoss: injectedLoss,
		},
		Warmup:   scenario.Duration(warm),
		Duration: scenario.Duration(dur),
		Seeds:    seeds,
	}
	if interference {
		s.Net.Interference = 1.0
	}
	for _, id := range nodes {
		f := fast
		s.Nodes = append(s.Nodes, scenario.NodeSpec{
			ID: id, Sleepy: true,
			SleepInterval: scenario.Duration(4 * sim.Minute),
			FastInterval:  &f,
		})
		fs := scenario.FlowSpec{
			From:     scenario.NodeID(id),
			To:       scenario.Host(),
			Protocol: p.protocol,
			Pattern:  scenario.PatternAnemometer,
		}
		if p.protocol == "coap" {
			c := p.confirmable
			fs.Confirmable = &c
			fs.RTO = p.rto
		}
		if batch {
			fs.Batch = 64
		}
		s.Flows = append(s.Flows, fs)
	}
	return s
}

// anemSweep is anemSpec with the transport left to a protocols sweep
// axis: one spec covers every transport of a §9 comparison, cell i's
// seeds offset by i·seedStep so the grid reproduces the hand-built
// specs' per-condition seeding exactly.
func anemSweep(name string, protocols []string, seedStep int64, batch bool, nodes []int,
	injectedLoss float64, interference bool, warm, dur sim.Duration, seeds []int64) *scenario.Spec {
	s := anemSpec(name, anemProto{}, batch, nodes, injectedLoss, interference, warm, dur, seeds)
	s.Sweep = &scenario.Sweep{Protocols: protocols, SeedStep: seedStep}
	return s
}

// anemRel pools one run's reliability exactly as §9.2 defines it: the
// shared delivery-ratio formula over reading counts summed across the
// sensors (the ratio of sums, not the mean of per-flow ratios).
func anemRel(run scenario.Result) float64 {
	var gen, deliv, backlog uint64
	for _, fl := range run.Flows {
		gen += fl.Generated
		deliv += fl.Delivered
		backlog += fl.Backlog
	}
	return flows.DeliveryRatio(gen, deliv, backlog)
}

// anemRadioDC / anemCPUDC are the mean duty cycles across sensor nodes.
func anemRadioDC(run scenario.Result) float64 {
	dc := 0.0
	for _, fl := range run.Flows {
		dc += fl.RadioDC
	}
	return dc / float64(len(run.Flows))
}

func anemCPUDC(run scenario.Result) float64 {
	dc := 0.0
	for _, fl := range run.Flows {
		dc += fl.CPUDC
	}
	return dc / float64(len(run.Flows))
}

// anemPer10 normalizes a summed per-flow counter to events per 10
// minutes per node.
func anemPer10(run scenario.Result, dur sim.Duration, count func(scenario.FlowResult) uint64) float64 {
	per10 := dur.Seconds() / 600
	if per10 <= 0 {
		return 0
	}
	var total uint64
	for _, fl := range run.Flows {
		total += count(fl)
	}
	return float64(total) / per10 / float64(len(run.Flows))
}

// Fig8 compares batching vs per-reading transmission for CoAP, CoCoA,
// and TCPlp in favorable (night) conditions: radio and CPU duty cycles.
func Fig8(o Opts) *Table {
	scale := o.scale()
	t := &Table{
		ID:      "fig8",
		Title:   "Effect of batching on power (favorable conditions)",
		Columns: []string{"Protocol", "Batching", "Reliability", "Radio DC", "CPU DC"},
	}
	warm, dur := scale.dur(2*sim.Minute), scale.dur(30*sim.Minute)
	// The hand-built loop (CoAP, CoCoA, TCPlp) × (no batch, batch)
	// assigned seeds 401..406 in column-interleaved order; one
	// protocols-axis sweep per batch setting with SeedStep 2 lands every
	// cell on exactly the seed it had.
	protos := []string{"coap", "cocoa", "tcp"}
	names := []string{"CoAP", "CoCoA", "TCPlp"}
	res := o.run([]*scenario.Spec{
		anemSweep("fig8-nobatch", protos, 2, false, SensorNodes, 0, false, warm, dur, o.seeds(401)),
		anemSweep("fig8-batch", protos, 2, true, SensorNodes, 0, false, warm, dur, o.seeds(402)),
	})
	for pi, name := range names {
		for bi, label := range []string{"no", "yes"} {
			sr := res[bi*len(protos)+pi]
			t.AddRow(name, label,
				o.cell(runSeries(sr, anemRel), pct),
				o.cell(runSeries(sr, anemRadioDC), pct),
				o.cell(runSeries(sr, anemCPUDC), pct))
		}
	}
	t.Note("paper Fig. 8: all three protocols ≈100%% reliable and comparable; batching cuts both duty cycles sharply")
	return t
}

// Fig9 sweeps injected packet loss at the border router and reports
// reliability, retransmissions, and duty cycles for the three reliable
// protocols.
func Fig9(o Opts) []*Table {
	scale := o.scale()
	rel := &Table{ID: "fig9a", Title: "Reliability vs injected loss",
		Columns: []string{"Loss", "TCPlp", "CoCoA", "CoAP"}}
	rtx := &Table{ID: "fig9b", Title: "Transport retransmissions per 10 min vs injected loss",
		Columns: []string{"Loss", "TCPlp", "TCPlp RTOs", "CoCoA", "CoAP"}}
	radio := &Table{ID: "fig9c", Title: "Radio duty cycle vs injected loss",
		Columns: []string{"Loss", "TCPlp", "CoCoA", "CoAP"}}
	cpu := &Table{ID: "fig9d", Title: "CPU duty cycle vs injected loss",
		Columns: []string{"Loss", "TCPlp", "CoCoA", "CoAP"}}
	warm, dur := scale.dur(2*sim.Minute), scale.dur(20*sim.Minute)
	losses := []float64{0, 0.03, 0.06, 0.09, 0.12, 0.15, 0.18, 0.21}
	// The hand-built loop assigned seeds 501.. in (loss, protocol) order;
	// one protocols-axis sweep per loss level with SeedStep 1 reproduces
	// that assignment.
	protos := []string{"tcp", "cocoa", "coap"}
	names := []string{"TCPlp", "CoCoA", "CoAP"}
	var specs []*scenario.Spec
	for li, loss := range losses {
		specs = append(specs, anemSweep(
			fmt.Sprintf("fig9-loss%.0f", loss*100),
			protos, 1, true, SensorNodes, loss, false, warm, dur,
			o.seeds(501+int64(li)*int64(len(protos)))))
	}
	res := o.run(specs)
	rtxOf := func(fl scenario.FlowResult) uint64 { return fl.Retransmits }
	rtoOf := func(fl scenario.FlowResult) uint64 { return fl.Timeouts }
	for li, loss := range losses {
		byProto := map[string]*scenario.SpecResult{}
		for pi, name := range names {
			byProto[name] = res[li*len(protos)+pi]
		}
		l := pct(loss)
		relOf := func(sr *scenario.SpecResult) string { return o.cell(runSeries(sr, anemRel), pct) }
		rel.AddRow(l, relOf(byProto["TCPlp"]), relOf(byProto["CoCoA"]), relOf(byProto["CoAP"]))
		per10 := func(sr *scenario.SpecResult, count func(scenario.FlowResult) uint64) string {
			return o.cell(runSeries(sr, func(r scenario.Result) float64 {
				return anemPer10(r, dur, count)
			}), f1)
		}
		rtx.AddRow(l, per10(byProto["TCPlp"], rtxOf), per10(byProto["TCPlp"], rtoOf),
			per10(byProto["CoCoA"], rtxOf), per10(byProto["CoAP"], rtxOf))
		radioOf := func(sr *scenario.SpecResult) string { return o.cell(runSeries(sr, anemRadioDC), pct) }
		radio.AddRow(l, radioOf(byProto["TCPlp"]), radioOf(byProto["CoCoA"]), radioOf(byProto["CoAP"]))
		cpuOf := func(sr *scenario.SpecResult) string { return o.cell(runSeries(sr, anemCPUDC), pct) }
		cpu.AddRow(l, cpuOf(byProto["TCPlp"]), cpuOf(byProto["CoCoA"]), cpuOf(byProto["CoAP"]))
	}
	rel.Note("paper Fig. 9a: TCP and CoAP near 100%% through 15%% loss; CoCoA collapses from RTT inflation")
	return []*Table{rel, rtx, radio, cpu}
}

// Fig10 runs TCPlp and CoAP for a full day under diurnal interference
// and reports hourly radio duty cycles, split across the sensor nodes
// exactly as the paper does (§9.5) so both see the same conditions.
func Fig10(o Opts) *Table {
	scale := o.scale()
	t := &Table{
		ID:      "fig10",
		Title:   "Hourly radio duty cycle over a day with diurnal interference",
		Columns: []string{"Hour", "TCPlp DC", "CoAP DC"},
	}
	dur := scale.dur(24 * sim.Hour)
	hours := int(dur / sim.Hour)
	if hours < 1 {
		hours = 1
		dur = sim.Hour
	}
	mk := func(name string, p anemProto, nodes []int) *scenario.Spec {
		s := anemSpec(name, p, true, nodes, 0, true, 0, dur, o.seeds(600))
		s.DCSample = scenario.Duration(sim.Hour)
		return s
	}
	res := o.run([]*scenario.Spec{
		mk("fig10-tcplp", protoTCPlp, []int{11, 13}),
		mk("fig10-coap", protoCoAP, []int{12, 14}),
	})
	dcSeries := func(sr *scenario.SpecResult, h int) []float64 {
		out := make([]float64, 0, len(sr.Runs))
		for _, run := range sr.Runs {
			if h < len(run.DCSamples) {
				out = append(out, run.DCSamples[h])
			}
		}
		return out
	}
	n := len(res[0].Runs[0].DCSamples)
	if m := len(res[1].Runs[0].DCSamples); m < n {
		n = m
	}
	for h := 0; h < n; h++ {
		t.AddRow(di(h), o.cell(dcSeries(res[0], h), pct), o.cell(dcSeries(res[1], h), pct))
	}
	t.Note("paper Fig. 10: CoAP cheaper at night; TCPlp comparable or better during working-hours interference")
	return t
}

// Table8 summarizes full-day performance including the unreliable
// (nonconfirmable) baseline of §9.6.
func Table8(o Opts) *Table {
	scale := o.scale()
	t := &Table{
		ID:      "table8",
		Title:   "Full-day performance with interference",
		Columns: []string{"Protocol", "Reliability", "Radio DC", "CPU DC"},
	}
	warm, dur := scale.dur(10*sim.Minute), scale.dur(24*sim.Hour)
	rows := []struct {
		name  string
		proto anemProto
		batch bool
	}{
		{"TCPlp", protoTCPlp, true},
		{"CoAP", protoCoAP, true},
		{"Unreliable, no batch", protoCoAPNon, false},
		{"Unreliable, batch", protoCoAPNon, true},
	}
	var specs []*scenario.Spec
	for i, r := range rows {
		specs = append(specs, anemSpec(
			fmt.Sprintf("table8-%d", i),
			r.proto, r.batch, SensorNodes, 0, true, warm, dur, o.seeds(int64(700+i))))
	}
	res := o.run(specs)
	for i, r := range rows {
		t.AddRow(r.name,
			o.cell(runSeries(res[i], anemRel), pct),
			o.cell(runSeries(res[i], anemRadioDC), pct),
			o.cell(runSeries(res[i], anemCPUDC), pct))
	}
	t.Note("paper Table 8: reliability costs ≈3x duty cycle vs the unreliable baseline; TCPlp 99.3%%, CoAP 99.5%%")
	return t
}
