package tcplp

import (
	"tcplp/internal/obs"
	"tcplp/internal/sim"
)

// input is the segment arrival entry point (tcp_input). ce reports
// whether the IP header carried the ECN Congestion Experienced mark.
func (c *Conn) input(seg *Segment, ce bool) {
	c.Stats.SegsRecv++
	c.emitJ(obs.TCPRecv, seg.JID, int64(seg.SeqNum), int64(seg.AckNum), len(seg.Payload))
	switch c.state {
	case StateClosed:
		return
	case StateSynSent:
		c.inputSynSent(seg)
		return
	case StateTimeWait:
		if seg.Flags.Has(FlagRST) {
			c.teardown(nil)
			return
		}
		// Re-ACK and restart 2MSL only for segments occupying sequence
		// space (a retransmitted FIN or data); answering pure ACKs here
		// would let two TIME_WAIT peers ping-pong forever.
		if seg.Len() > 0 {
			c.sendAck()
			c.timeWait.Reset(2 * c.cfg.MSL)
		}
		return
	}

	// Header prediction (§4.1): the common cases — a pure in-window ACK
	// for outstanding data, or the next expected in-order data segment —
	// are recognized up front, as in the FreeBSD fast path. The full path
	// below handles them identically; the counters record how often the
	// prediction would have hit.
	if c.state == StateEstablished && seg.Flags&(FlagSYN|FlagFIN|FlagRST|FlagURG) == 0 &&
		seg.Flags.Has(FlagACK) && seg.SeqNum == c.rcvNxt {
		if len(seg.Payload) == 0 && seg.AckNum.GT(c.sndUna) && seg.AckNum.LEQ(c.sndMax) {
			c.Stats.PredictedAcks++
		} else if len(seg.Payload) > 0 && seg.AckNum == c.sndUna &&
			len(seg.Payload) <= c.rcvQ.Window() {
			c.Stats.PredictedData++
		}
	}

	// Timestamp echo bookkeeping (RFC 7323 §4.3): update TS.Recent only
	// from the segment spanning Last.ACK.sent. Under delayed ACKs this
	// echoes the FIRST unacknowledged segment's timestamp, so the peer's
	// RTT sample correctly includes the delayed-ACK wait.
	if seg.HasTS && seg.SeqNum.LEQ(c.lastAckSeq) &&
		c.lastAckSeq.LT(seg.SeqNum.Add(seg.Len()+1)) {
		c.tsRecent = seg.TSVal
		c.tsEcho = true
	}

	// Step 1 (RFC 793): sequence acceptability.
	if !c.segAcceptable(seg) {
		if !seg.Flags.Has(FlagRST) {
			c.Stats.ChallengeAcks++
			c.sendAck()
		}
		return
	}

	// Step 2: RST, hardened per RFC 5961 (challenge ACKs, §4.1).
	if seg.Flags.Has(FlagRST) {
		if seg.SeqNum == c.rcvNxt {
			err := ErrConnReset
			if c.state == StateSynReceived {
				err = ErrConnRefused
			}
			c.teardown(err)
		} else {
			c.Stats.ChallengeAcks++
			c.sendAck()
		}
		return
	}

	// Step 3: SYN in window is always a challenge-ACK case (RFC 5961).
	if seg.Flags.Has(FlagSYN) {
		c.Stats.ChallengeAcks++
		c.sendAck()
		return
	}

	// Step 4: an ACK is required from here on.
	if !seg.Flags.Has(FlagACK) {
		return
	}
	if !c.processAck(seg) {
		return
	}
	if c.state == StateClosed {
		return
	}

	// Step 5: payload.
	c.processPayload(seg, ce)

	// Step 6: FIN.
	if seg.Flags.Has(FlagFIN) {
		c.processFin(seg)
	}

	c.output()
}

// segAcceptable implements the RFC 793 four-case window check.
func (c *Conn) segAcceptable(seg *Segment) bool {
	segLen := seg.Len()
	win := c.rcvQ.Window()
	first := seg.SeqNum
	last := seg.SeqNum.Add(segLen - 1)
	switch {
	case segLen == 0 && win == 0:
		return first == c.rcvNxt
	case segLen == 0:
		return first.GEQ(c.rcvNxt) && first.LT(c.rcvNxt.Add(win)) || first == c.rcvNxt
	case win == 0:
		return false
	default:
		inWin := func(s Seq) bool { return s.GEQ(c.rcvNxt) && s.LT(c.rcvNxt.Add(win)) }
		return inWin(first) || inWin(last) || (first.LT(c.rcvNxt) && last.GEQ(c.rcvNxt))
	}
}

// inputSynSent handles segments during an active open.
func (c *Conn) inputSynSent(seg *Segment) {
	ackOK := false
	if seg.Flags.Has(FlagACK) {
		if seg.AckNum.LEQ(c.iss) || seg.AckNum.GT(c.sndMax) {
			if !seg.Flags.Has(FlagRST) {
				c.sendRST(seg.AckNum)
			}
			return
		}
		ackOK = true
	}
	if seg.Flags.Has(FlagRST) {
		if ackOK {
			c.teardown(ErrConnRefused)
		}
		return
	}
	if !seg.Flags.Has(FlagSYN) {
		return
	}
	c.irs = seg.SeqNum
	c.rcvNxt = seg.SeqNum.Add(1)
	c.lastAckSeq = c.rcvNxt
	c.applySynOptions(seg)
	// ECN negotiation: SYN/ACK with ECE set and CWR clear accepts ECN.
	if c.cfg.UseECN && seg.Flags.Has(FlagECE) && !seg.Flags.Has(FlagCWR) {
		c.ecnOn = true
	}
	if ackOK {
		c.sndUna = seg.AckNum
		c.rexmtShift = 0
		c.rexmt.Stop()
		c.sampleRTTFromSeg(seg)
		c.sndWnd = int(seg.Window)
		c.maxSndWnd = c.sndWnd
		c.sndWL1, c.sndWL2 = seg.SeqNum, seg.AckNum
		c.setState(StateEstablished)
		c.sendAck()
		if c.OnEstablished != nil {
			c.OnEstablished()
		}
		c.output()
		return
	}
	// Simultaneous open.
	c.setState(StateSynReceived)
	c.sndNxt = c.iss
	c.sendSYN(true)
	c.armRexmt()
}

// sampleRTTFromSeg feeds the RTT estimator from a timestamp echo or the
// timed-segment fallback. Echo validity is the RFC 7323 §3.2 rule —
// TSEcr is meaningful exactly when the segment carries an ACK — not
// "TSEcr != 0": a zero echo is legitimate when the timestamp clock
// reads 0 at wrap, and treating it as absent would silently drop the
// sample.
func (c *Conn) sampleRTTFromSeg(seg *Segment) {
	now := c.stack.eng.Now()
	if c.peerTS && seg.HasTS && seg.Flags.Has(FlagACK) {
		elapsed := sim.Duration(c.stack.tsNow()-seg.TSEcr) * sim.Millisecond
		if elapsed >= 0 && elapsed < sim.Duration(5*sim.Minute) {
			c.rtt.Sample(elapsed)
			if c.TraceRTT != nil {
				c.TraceRTT(elapsed)
			}
		}
		return
	}
	if c.rttPending && seg.AckNum.GT(c.rttSeq) {
		sample := now.Sub(c.rttTime)
		c.rtt.Sample(sample)
		c.rttPending = false
		if c.TraceRTT != nil {
			c.TraceRTT(sample)
		}
	}
}

// processAck runs ACK processing; it returns false if the segment must
// not be processed further (e.g. an unacceptable ACK in SYN_RCVD).
func (c *Conn) processAck(seg *Segment) bool {
	ack := seg.AckNum

	if c.state == StateSynReceived {
		if ack.LEQ(c.sndUna) || ack.GT(c.sndMax) {
			c.sendRST(ack)
			return false
		}
		c.setState(StateEstablished)
		c.rexmtShift = 0
		// The SYN/ACK is acknowledged: its retransmission timer must die
		// with it, or it would back off silently and eventually abort an
		// idle (receive-only) connection.
		c.rexmt.Stop()
		// Consume the SYN's phantom sequence slot now, so data written
		// from the accept callback is addressed from the stream base.
		if c.sndUna == c.iss {
			c.sndUna = c.iss.Add(1)
		}
		c.sndWnd = int(seg.Window)
		c.maxSndWnd = c.sndWnd
		c.sndWL1, c.sndWL2 = seg.SeqNum, seg.AckNum
		if c.OnEstablished != nil {
			c.OnEstablished()
		}
		c.stack.notifyAccept(c)
	}

	// Record SACK information whatever kind of ACK this is.
	if c.peerSACK {
		for _, blk := range seg.SACKBlocks {
			c.sb.Add(blk, c.sndUna)
		}
	}

	// ECN echo: congestion signal from the receiver.
	if c.ecnOn && seg.Flags.Has(FlagECE) {
		c.ecnCongestionResponse()
	}

	// Apply the window update before ACK processing: handleNewAck may
	// invoke the app's OnWritable callback, which can write and trigger
	// output() — that must see this segment's window, not a stale one.
	// The pre-update window is captured for duplicate-ACK detection.
	wndBefore := c.sndWnd
	c.updateSendWindow(seg)

	switch {
	case ack.GT(c.sndMax):
		// ACK for data never sent: challenge.
		c.Stats.ChallengeAcks++
		c.sendAck()
		return false

	case ack.LEQ(c.sndUna):
		// Duplicate or old ACK. A zero-window ACK never qualifies: it is
		// the receiver answering a persist probe (flow control), not
		// out-of-order data signalling loss — counting it would drive
		// fast retransmit and an RTO backoff cycle straight into the
		// closed window, racing the prober toward a spurious abort.
		dup := ack == c.sndUna && len(seg.Payload) == 0 &&
			int(seg.Window) == wndBefore && wndBefore > 0 &&
			c.sndMax.Diff(c.sndUna) > 0 &&
			!seg.Flags.Has(FlagFIN)
		if dup {
			c.Stats.DupAcksIn++
			c.dupAcks++
			c.onDupAck()
		}

	default:
		// New data acknowledged.
		c.handleNewAck(seg, ack)
	}
	return true
}

// onDupAck implements the fast retransmit / fast recovery entry (the
// variant sets the post-decrease window) and window inflation.
func (c *Conn) onDupAck() {
	mss := c.effMSS()
	switch {
	case c.dupAcks == 3 && !c.inRecovery:
		// RFC 6582: avoid spurious re-entry after a timeout — only enter
		// recovery if the ACK covers more than `recover`.
		if c.sndUna.LT(c.recover) && c.recover.GT(c.iss) {
			return
		}
		flight := minInt(c.sndMax.Diff(c.sndUna), c.sendWindow())
		c.cong.OnDupAck(c.now(), mss, flight)
		c.inRecovery = true
		c.recover = c.sndMax
		c.sackRtxNext = c.sndUna
		c.rtxPipe = 0
		c.Stats.FastRetransmits++
		c.emit(obs.TCPFastRtx, int64(c.dupAcks), 0, 0)
		n := minInt(mss, c.queuedEnd.Diff(c.sndUna))
		if n > 0 {
			c.sendData(c.sndUna, n, false, true)
		} else if c.finQueued {
			c.sendData(c.sndUna, 0, true, true)
		}
		c.traceCwnd()
		c.output()
	case c.inRecovery && c.dupAcks > 3:
		c.cong.OnDupAckInflate(mss)
		c.traceCwnd()
		c.output()
	}
}

// handleNewAck processes an ACK that advances snd.una.
func (c *Conn) handleNewAck(seg *Segment, ack Seq) {
	mss := c.effMSS()
	acked := ack.Diff(c.sndUna)
	c.sampleRTTFromSeg(seg)
	c.rexmtShift = 0

	if c.inRecovery {
		if ack.GEQ(c.recover) {
			// Full acknowledgment: recovery ends (RFC 6582).
			c.cong.OnExitRecovery(c.now(), mss, acked, c.sndMax.Diff(ack), c.rtt.SRTT())
			c.inRecovery = false
			c.dupAcks = 0
			c.rtxPipe = 0
		} else {
			// Partial acknowledgment: retransmit the next hole, deflate
			// by the amount acked, allow one more segment.
			dataLeft := c.queuedEnd.Diff(ack)
			n := minInt(mss, dataLeft)
			if n > 0 && !c.peerSACK {
				c.sendDataAt(ack, n)
			}
			c.cong.OnPartialAck(c.now(), mss, acked, c.rtt.SRTT())
			c.sackRtxNext = ack
		}
		c.traceCwnd()
	} else {
		c.dupAcks = 0
		// Congestion avoidance / slow start growth is the variant's call.
		c.cong.OnAck(c.now(), mss, acked, c.rtt.SRTT())
		c.traceCwnd()
	}

	// Consume acknowledged bytes, excluding phantom sequence slots: the
	// SYN (when this ACK is the one completing a passive open) and the
	// FIN (when the ACK covers it) occupy sequence numbers but no buffer
	// bytes.
	phantoms := 0
	if c.sndUna == c.iss {
		phantoms++ // our SYN
	}
	if c.finQueued && ack.GT(c.queuedEnd) {
		phantoms++ // our FIN
	}
	dataAcked := minInt(acked-phantoms, c.sndBuf.Len())
	if dataAcked > 0 {
		c.sndBuf.Discard(dataAcked)
	}
	c.sndUna = ack
	c.checkInvariant("handleNewAck")
	c.sb.AdvanceUna(ack)
	c.rtxPipe = maxInt(0, c.rtxPipe-acked)
	if c.sndNxt.LT(c.sndUna) {
		c.sndNxt = c.sndUna
	}
	c.rearmRexmt()
	c.persistShift = 0

	if c.sndMax.Diff(c.sndUna) == 0 {
		c.setExpecting(false)
	}

	// Our FIN acknowledged?
	if c.finAcked() {
		switch c.state {
		case StateFinWait1:
			c.setState(StateFinWait2)
		case StateClosing:
			c.enterTimeWait()
		case StateLastAck:
			c.teardown(nil)
			return
		}
	}
	if dataAcked > 0 && c.OnWritable != nil && c.sndBuf.Free() > 0 {
		c.OnWritable()
	}
}

// sendDataAt retransmits one segment at seq (New Reno partial-ACK path,
// used when SACK is unavailable).
func (c *Conn) sendDataAt(seq Seq, n int) {
	c.sendData(seq, n, false, true)
}

// updateSendWindow applies the RFC 793 window-update rules.
func (c *Conn) updateSendWindow(seg *Segment) {
	if seg.SeqNum.GT(c.sndWL1) ||
		(seg.SeqNum == c.sndWL1 && seg.AckNum.GEQ(c.sndWL2)) {
		c.sndWnd = int(seg.Window)
		c.maxSndWnd = maxInt(c.maxSndWnd, c.sndWnd)
		c.sndWL1, c.sndWL2 = seg.SeqNum, seg.AckNum
		if c.sndWnd > 0 {
			if c.persist.Armed() && c.sndNxt.GT(c.sndUna) {
				// Window reopened mid-probe: whatever the probes pushed
				// out was dropped by the closed window, so pull snd.nxt
				// back and let normal output retransmit it immediately —
				// with the persist timer gone, nothing else would.
				c.sndNxt = c.sndUna
			}
			c.persist.Stop()
			c.persistShift = 0
		}
	}
}

// ecnCongestionResponse reduces the window once per window of data in
// response to an ECN echo (RFC 3168 §6.1.2).
func (c *Conn) ecnCongestionResponse() {
	if c.sndUna.LT(c.ecnRecover) && c.ecnRecover.GT(c.iss) {
		return
	}
	mss := c.effMSS()
	flight := minInt(c.sndMax.Diff(c.sndUna), c.sendWindow())
	c.cong.OnECN(c.now(), mss, flight)
	c.ecnRecover = c.sndMax
	c.cwrToSend = true
	c.Stats.ECNCongestionResponses++
	c.traceCwnd()
}

// processPayload feeds arriving data into the reassembly queue and runs
// the delayed-ACK policy.
func (c *Conn) processPayload(seg *Segment, ce bool) {
	switch c.state {
	case StateEstablished, StateFinWait1, StateFinWait2:
	default:
		return
	}
	if len(seg.Payload) == 0 {
		return
	}
	if ce && c.ecnOn {
		c.eceToSend = true
	}
	if c.ecnOn && seg.Flags.Has(FlagCWR) {
		c.eceToSend = false
	}
	off := seg.SeqNum.Diff(c.rcvNxt)
	hadOOO := c.rcvQ.OutOfOrder() > 0
	adv := c.rcvQ.Write(off, seg.Payload)
	c.rcvNxt = c.rcvNxt.Add(adv)
	c.Stats.BytesRecv += uint64(adv)

	switch {
	case off > 0:
		// Out of order: immediate duplicate ACK with SACK blocks.
		c.Stats.OutOfOrderSegs++
		c.sendAck()
	case adv == 0:
		// Entirely duplicate data: re-ACK immediately (our ACK was lost).
		c.Stats.DupSegs++
		c.sendAck()
	default:
		if hadOOO {
			// We just filled (part of) a gap: ACK immediately so the
			// sender's recovery sees the advance.
			c.sendAck()
		} else {
			c.segsToAck++
			if !c.cfg.UseDelayedAcks || c.segsToAck >= 2 {
				c.sendAck()
			} else if !c.delAckTimer.Armed() {
				c.delAckTimer.Reset(c.cfg.DelAckTimeout)
			}
		}
		if c.OnReadable != nil {
			c.OnReadable()
		}
	}
}

// processFin handles an in-order FIN.
func (c *Conn) processFin(seg *Segment) {
	finSeq := seg.SeqNum.Add(len(seg.Payload))
	if finSeq != c.rcvNxt {
		// Out-of-order FIN: the peer retransmits it after its data.
		return
	}
	if c.finReceived {
		c.sendAck()
		return
	}
	c.finReceived = true
	c.finSeq = finSeq
	c.rcvNxt = c.rcvNxt.Add(1)
	switch c.state {
	case StateEstablished:
		c.setState(StateCloseWait)
	case StateFinWait1:
		if c.finAcked() {
			c.enterTimeWait()
		} else {
			c.setState(StateClosing)
		}
	case StateFinWait2:
		c.enterTimeWait()
	}
	c.sendAck()
	if c.OnReadable != nil {
		c.OnReadable()
	}
}
