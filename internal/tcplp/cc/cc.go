// Package cc implements pluggable congestion control for the tcplp
// transport. Each Algorithm owns a connection's congestion window and
// slow-start threshold and mutates them in response to the protocol
// events the connection reports: ACKs of new data, duplicate ACKs,
// retransmission timeouts, and ECN congestion echoes.
//
// The split mirrors the Linux/ns-3 module boundary: the connection keeps
// the loss-recovery machinery (what to retransmit, when recovery ends)
// while the algorithm decides window sizes — how fast to grow and how
// far to back off. Five variants are provided: NewReno (RFC 5681/6582,
// behaviour-identical to the original inline implementation), CUBIC
// (RFC 8312), Westwood+ (bandwidth-estimate-driven backoff for lossy
// wireless links), BBR (model-based: a windowed-max bandwidth estimate
// and windowed-min RTT drive both the window and a pacing rate), and
// Vegas (delay-based: queue occupancy estimated from RTT inflation
// drives the window, the natural fit for duty-cycled paths where RTT,
// not loss, is the first congestion signal).
//
// An Algorithm may additionally implement Pacer; the connection then
// spreads segment releases across the RTT at the returned rate instead
// of bursting ACK-clocked windows — which suits duty-cycled radios far
// better than back-to-back trains (Ayers et al.).
package cc

import (
	"fmt"
	"strings"

	"tcplp/internal/sim"
)

// Variant names a congestion-control algorithm.
type Variant string

// Registered variants.
const (
	NewReno  Variant = "newreno"
	Cubic    Variant = "cubic"
	Westwood Variant = "westwood"
	Bbr      Variant = "bbr"
	Vegas    Variant = "vegas"
)

// Variants lists the registered algorithms in presentation order (kept
// in sync with the constructor registry by TestVariantsRoundTrip).
func Variants() []Variant { return []Variant{NewReno, Cubic, Westwood, Bbr, Vegas} }

// Parse resolves a user-supplied variant name, accepting the common
// aliases ("reno", "westwood+", ...). An empty string selects NewReno.
func Parse(s string) (Variant, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "reno", "newreno", "new-reno":
		return NewReno, nil
	case "cubic":
		return Cubic, nil
	case "westwood", "westwood+", "westwoodplus", "westwood-plus":
		return Westwood, nil
	case "bbr":
		return Bbr, nil
	case "vegas":
		return Vegas, nil
	}
	return "", fmt.Errorf("cc: unknown variant %q (have newreno, cubic, westwood, bbr, vegas)", s)
}

// DefaultMaxWindow caps congestion-avoidance growth when Params leaves
// MaxWindow unset.
const DefaultMaxWindow = 1 << 22

// Params seeds an Algorithm at construction.
type Params struct {
	// InitialWindow is the initial congestion window in bytes
	// (RFC 6928-style: InitialCwndSegs × MSS).
	InitialWindow int
	// MaxWindow caps congestion-avoidance growth in bytes; 0 selects
	// DefaultMaxWindow.
	MaxWindow int
}

// Algorithm owns cwnd and ssthresh for one connection. The MSS is passed
// per event because it is only final after the SYN exchange clamps it to
// the peer's. Methods are invoked from the simulation goroutine only.
type Algorithm interface {
	// Name identifies the variant.
	Name() Variant
	// Init seeds the window state when the connection starts.
	Init(now sim.Time)
	// Cwnd is the congestion window in bytes.
	Cwnd() int
	// Ssthresh is the slow-start threshold in bytes.
	Ssthresh() int

	// OnAck handles an ACK of acked bytes that advances snd.una outside
	// fast recovery — the slow-start / congestion-avoidance growth path.
	// srtt is the current smoothed RTT estimate (0 until the first
	// sample).
	OnAck(now sim.Time, mss, acked int, srtt sim.Duration)
	// OnDupAck handles the third duplicate ACK: multiplicative decrease
	// plus the RFC 5681 fast-recovery entry (cwnd = ssthresh + 3 MSS).
	OnDupAck(now sim.Time, mss, flight int)
	// OnDupAckInflate handles the fourth and later duplicate ACKs during
	// recovery: inflate the window by one segment (packet conservation).
	OnDupAckInflate(mss int)
	// OnPartialAck handles a partial new ACK during recovery: deflate by
	// the amount acked, allow one more segment (RFC 6582). srtt is the
	// current smoothed RTT (bandwidth-estimating variants keep sampling
	// through recovery).
	OnPartialAck(now sim.Time, mss, acked int, srtt sim.Duration)
	// OnExitRecovery handles the full ACK that ends recovery. flight is
	// the number of bytes still outstanding after the ACK.
	OnExitRecovery(now sim.Time, mss, acked, flight int, srtt sim.Duration)
	// OnRTO handles a retransmission timeout: collapse to one segment
	// and restart in slow start.
	OnRTO(now sim.Time, mss, flight int)
	// OnECN handles an ECN congestion echo: reduce the window without
	// any loss having occurred (RFC 3168 §6.1.2).
	OnECN(now sim.Time, mss, flight int)
}

// Pacer is the optional pacing extension of Algorithm. A variant that
// returns a positive rate has its data segments released by the
// connection's send timer — spread across the RTT at the given rate —
// instead of burst-clocked by ACK arrival. ACK-clocked variants simply
// do not implement the interface.
type Pacer interface {
	// PacingRate returns the current send rate in bytes per second; 0
	// disables pacing. The connection supplies the effective MSS and its
	// smoothed RTT (0 before the first sample) so the rate can be
	// derived before the first bandwidth measurement exists.
	PacingRate(mss int, srtt sim.Duration) float64
}

// registry maps each variant to its constructor; Valid and New both
// read it, so they cannot diverge when a variant is added.
var registry = map[Variant]func(Params) Algorithm{
	NewReno:  func(p Params) Algorithm { return newNewReno(p) },
	Cubic:    func(p Params) Algorithm { return newCubic(p) },
	Westwood: func(p Params) Algorithm { return newWestwood(p) },
	Bbr:      func(p Params) Algorithm { return newBBR(p) },
	Vegas:    func(p Params) Algorithm { return newVegas(p) },
}

// Valid reports whether v names a registered algorithm (or is empty,
// selecting NewReno).
func Valid(v Variant) bool {
	if v == "" {
		return true
	}
	_, ok := registry[v]
	return ok
}

// New constructs the named algorithm; an empty variant selects NewReno.
func New(v Variant, p Params) (Algorithm, error) {
	if p.MaxWindow <= 0 {
		p.MaxWindow = DefaultMaxWindow
	}
	if v == "" {
		v = NewReno
	}
	mk, ok := registry[v]
	if !ok {
		return nil, fmt.Errorf("cc: unknown variant %q", v)
	}
	return mk(p), nil
}

// ssthresher is the per-variant decrease policy: the post-loss
// slow-start threshold. flight is the bytes outstanding at the loss,
// clamped to the send window.
type ssthresher interface {
	ssthreshOnLoss(now sim.Time, mss, flight int) int
}

// window is the cwnd/ssthresh state plus the loss-response shape every
// variant shares — fast-recovery entry, per-dupack inflation,
// partial-ACK deflation, exit deflation, RTO collapse, ECN reduction —
// parameterized only by the variant's ssthreshOnLoss policy. Variants
// embed it and set policy to themselves.
type window struct {
	cwnd     int
	ssthresh int
	p        Params
	policy   ssthresher
}

func (w *window) Cwnd() int     { return w.cwnd }
func (w *window) Ssthresh() int { return w.ssthresh }

func (w *window) Init(sim.Time) {
	w.cwnd = w.p.InitialWindow
	w.ssthresh = 1 << 30
}

// OnDupAck applies the variant's decrease and the RFC 5681 §3.2 entry:
// the window becomes ssthresh plus the three segments the duplicate
// ACKs signalled have left the network.
func (w *window) OnDupAck(now sim.Time, mss, flight int) {
	w.ssthresh = w.policy.ssthreshOnLoss(now, mss, flight)
	w.cwnd = w.ssthresh + 3*mss
}

func (w *window) OnRTO(now sim.Time, mss, flight int) {
	w.ssthresh = w.policy.ssthreshOnLoss(now, mss, flight)
	w.cwnd = mss
}

func (w *window) OnECN(now sim.Time, mss, flight int) {
	w.ssthresh = w.policy.ssthreshOnLoss(now, mss, flight)
	w.cwnd = w.ssthresh
}

func (w *window) OnDupAckInflate(mss int) {
	w.cwnd += mss
}

func (w *window) OnPartialAck(_ sim.Time, mss, acked int, _ sim.Duration) {
	w.cwnd = max(w.cwnd-acked+mss, mss)
}

func (w *window) OnExitRecovery(_ sim.Time, mss, _, flight int, _ sim.Duration) {
	w.cwnd = max(min(w.ssthresh, flight+mss), mss)
}

// growReno is the RFC 5681 growth shared by NewReno and Westwood+:
// slow start below ssthresh, then one segment per window of ACKs.
func (w *window) growReno(mss, acked int) {
	if w.cwnd < w.ssthresh {
		w.cwnd += min(acked, mss)
	} else {
		w.cwnd += max(mss*mss/w.cwnd, 1)
	}
	if w.cwnd > w.p.MaxWindow {
		w.cwnd = w.p.MaxWindow
	}
}
