package cc

import (
	"testing"

	"tcplp/internal/sim"
)

const (
	mss = 408
	iw  = 10 * mss
)

func mk(t *testing.T, v Variant) Algorithm {
	t.Helper()
	a, err := New(v, Params{InitialWindow: iw, MaxWindow: 1 << 22})
	if err != nil {
		t.Fatal(err)
	}
	a.Init(0)
	return a
}

func TestParse(t *testing.T) {
	cases := map[string]Variant{
		"": NewReno, "reno": NewReno, "NewReno": NewReno, "new-reno": NewReno,
		"cubic": Cubic, "CUBIC": Cubic,
		"westwood": Westwood, "westwood+": Westwood, "WestwoodPlus": Westwood,
		"bbr": Bbr, "BBR": Bbr,
		"vegas": Vegas, "Vegas": Vegas,
	}
	for in, want := range cases {
		got, err := Parse(in)
		if err != nil || got != want {
			t.Fatalf("Parse(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := Parse("tahoe"); err == nil {
		t.Fatal("Parse accepted an unknown variant")
	}
	if _, err := New("tahoe", Params{InitialWindow: iw}); err == nil {
		t.Fatal("New accepted an unknown variant")
	}
}

func TestVariantsRoundTrip(t *testing.T) {
	vs := Variants()
	if len(vs) != len(registry) {
		t.Fatalf("Variants() lists %d algorithms, registry has %d", len(vs), len(registry))
	}
	for _, v := range vs {
		if !Valid(v) {
			t.Fatalf("Variants() lists %v but Valid rejects it", v)
		}
		a := mk(t, v)
		if a.Name() != v {
			t.Fatalf("New(%v).Name() = %v", v, a.Name())
		}
		if p, err := Parse(string(v)); err != nil || p != v {
			t.Fatalf("Parse(%v) = %v, %v", v, p, err)
		}
	}
}

// Slow start: every variant doubles per window of full-segment ACKs
// below ssthresh, starting from the configured initial window.
func TestSlowStartGrowth(t *testing.T) {
	for _, v := range Variants() {
		a := mk(t, v)
		if a.Cwnd() != iw {
			t.Fatalf("%v: initial cwnd = %d, want %d", v, a.Cwnd(), iw)
		}
		if a.Ssthresh() < 1<<29 {
			t.Fatalf("%v: initial ssthresh = %d, want effectively infinite", v, a.Ssthresh())
		}
		before := a.Cwnd()
		acks := before / mss
		now := sim.Time(0)
		for i := 0; i < acks; i++ {
			now = now.Add(10 * sim.Millisecond)
			a.OnAck(now, mss, mss, 100*sim.Millisecond)
		}
		if a.Cwnd() != 2*before {
			t.Fatalf("%v: one window of ACKs grew cwnd %d → %d, want doubling", v, before, a.Cwnd())
		}
	}
}

// Triple-dupack: NewReno halves the flight; every variant floors
// ssthresh at 2 MSS and applies the 3-segment recovery entry.
func TestTripleDupAckDecrease(t *testing.T) {
	for _, v := range Variants() {
		a := mk(t, v)
		flight := 8 * mss
		a.OnDupAck(sim.Time(sim.Second), mss, flight)
		if v == NewReno {
			if want := flight / 2; a.Ssthresh() != want {
				t.Fatalf("newreno: ssthresh = %d, want flight/2 = %d", a.Ssthresh(), want)
			}
		}
		if a.Cwnd() != a.Ssthresh()+3*mss {
			t.Fatalf("%v: recovery entry cwnd = %d, want ssthresh+3·MSS = %d",
				v, a.Cwnd(), a.Ssthresh()+3*mss)
		}
		// Tiny window and flight: the 2-MSS floor holds for every variant.
		b, err := New(v, Params{InitialWindow: mss})
		if err != nil {
			t.Fatal(err)
		}
		b.Init(0)
		b.OnDupAck(sim.Time(sim.Second), mss, mss)
		if b.Ssthresh() != 2*mss {
			t.Fatalf("%v: ssthresh floor = %d, want 2·MSS = %d", v, b.Ssthresh(), 2*mss)
		}
	}
}

// RTO: every variant collapses to exactly one segment.
func TestRTOCollapsesToOneMSS(t *testing.T) {
	for _, v := range Variants() {
		a := mk(t, v)
		a.OnRTO(sim.Time(sim.Second), mss, 8*mss)
		if a.Cwnd() != mss {
			t.Fatalf("%v: cwnd after RTO = %d, want 1 MSS = %d", v, a.Cwnd(), mss)
		}
		if a.Ssthresh() < 2*mss {
			t.Fatalf("%v: ssthresh after RTO = %d, below the 2·MSS floor", v, a.Ssthresh())
		}
	}
}

// ECN: every variant reduces cwnd to the post-decrease ssthresh without
// the fast-recovery inflation (no segment was lost).
func TestECNResponse(t *testing.T) {
	for _, v := range Variants() {
		a := mk(t, v)
		a.OnECN(sim.Time(sim.Second), mss, 8*mss)
		if a.Cwnd() != a.Ssthresh() {
			t.Fatalf("%v: ECN cwnd = %d, want ssthresh = %d", v, a.Cwnd(), a.Ssthresh())
		}
		if v == NewReno && a.Ssthresh() != 4*mss {
			t.Fatalf("newreno: ECN ssthresh = %d, want flight/2 = %d", a.Ssthresh(), 4*mss)
		}
	}
}

// Shared recovery machinery: inflation, partial-ACK deflation, and the
// exit deflation to min(ssthresh, flight+MSS).
func TestRecoveryMachinery(t *testing.T) {
	for _, v := range Variants() {
		a := mk(t, v)
		a.OnDupAck(sim.Time(sim.Second), mss, 8*mss)
		entry := a.Cwnd()
		a.OnDupAckInflate(mss)
		if a.Cwnd() != entry+mss {
			t.Fatalf("%v: inflation %d → %d, want +MSS", v, entry, a.Cwnd())
		}
		a.OnPartialAck(sim.Time(2*sim.Second), mss, 2*mss, 100*sim.Millisecond)
		if a.Cwnd() != entry+mss-2*mss+mss {
			t.Fatalf("%v: partial-ACK deflation = %d", v, a.Cwnd())
		}
		a.OnExitRecovery(sim.Time(3*sim.Second), mss, 4*mss, 2*mss, 100*sim.Millisecond)
		if want := min(a.Ssthresh(), 3*mss); a.Cwnd() != want {
			t.Fatalf("%v: exit cwnd = %d, want min(ssthresh, flight+MSS) = %d", v, a.Cwnd(), want)
		}
	}
}

// cubicGrowthCurve drives CUBIC through congestion avoidance after a
// decrease from a large window, ACK-clocked at a fixed RTT, and returns
// the cwnd (segments) after each RTT.
func cubicGrowthCurve(t *testing.T, rtts int) []float64 {
	t.Helper()
	a, err := New(Cubic, Params{InitialWindow: 40 * mss})
	if err != nil {
		t.Fatal(err)
	}
	a.Init(0)
	const rtt = 200 * sim.Millisecond
	now := sim.Time(sim.Second)
	// A loss at a 40-segment window sets the plateau W_max = 40.
	a.OnDupAck(now, mss, 40*mss)
	a.OnExitRecovery(now.Add(rtt), mss, 40*mss, a.Ssthresh(), rtt)
	var curve []float64
	for i := 0; i < rtts; i++ {
		acks := max(a.Cwnd()/mss, 1)
		for j := 0; j < acks; j++ {
			now = now.Add(rtt / sim.Duration(acks))
			a.OnAck(now, mss, mss, rtt)
		}
		curve = append(curve, float64(a.Cwnd())/mss)
	}
	return curve
}

// CUBIC window growth is concave while climbing back to the pre-loss
// plateau (per-RTT increments shrink) and convex once probing beyond it
// (increments grow) — the defining RFC 8312 shape, absent from Reno.
func TestCubicConcaveConvexGrowth(t *testing.T) {
	curve := cubicGrowthCurve(t, 60)
	const wMax = 40.0
	var pre, post []float64 // per-RTT increments below/above the plateau
	for i := 1; i < len(curve); i++ {
		inc := curve[i] - curve[i-1]
		if curve[i] < wMax-1 {
			pre = append(pre, inc)
		} else if curve[i-1] > wMax+1 {
			post = append(post, inc)
		}
	}
	if len(pre) < 3 || len(post) < 3 {
		t.Fatalf("curve did not span the plateau: %v", curve)
	}
	// Concave: early climb is strictly faster than the approach to wMax.
	early := pre[0] + pre[1]
	late := pre[len(pre)-2] + pre[len(pre)-1]
	if early <= late {
		t.Fatalf("no concave phase: early increments %.2f vs late %.2f (curve %v)", early, late, curve)
	}
	// Convex: growth beyond the plateau accelerates.
	firstPost := post[0] + post[1]
	lastPost := post[len(post)-2] + post[len(post)-1]
	if lastPost <= firstPost {
		t.Fatalf("no convex phase: %.2f vs %.2f (curve %v)", firstPost, lastPost, curve)
	}
}

// Fast convergence: when losses come back-to-back at shrinking windows,
// CUBIC lowers the plateau below the observed window, releasing
// bandwidth faster than plain multiplicative decrease.
func TestCubicFastConvergence(t *testing.T) {
	alg, err := New(Cubic, Params{InitialWindow: 40 * mss})
	if err != nil {
		t.Fatal(err)
	}
	alg.Init(0)
	a := alg.(*cubic)
	a.OnDupAck(sim.Time(sim.Second), mss, 40*mss)
	if a.wMax != 40 {
		t.Fatalf("first loss: wMax = %v, want 40", a.wMax)
	}
	// The recovery-entry window (ssthresh + 3 MSS) is below the plateau,
	// so the next loss triggers fast convergence.
	segs := float64(a.Cwnd()) / mss
	a.OnDupAck(sim.Time(2*sim.Second), mss, 30*mss)
	want := segs * (2 - cubicBeta) / 2
	if a.wMax != want {
		t.Fatalf("shrinking loss: wMax = %v, want %v", a.wMax, want)
	}
	// LLN floor: even a 1-segment window cannot drive the plateau under 2.
	a.OnRTO(sim.Time(3*sim.Second), mss, mss)
	a.OnDupAck(sim.Time(4*sim.Second), mss, mss)
	if a.wMax != 2 {
		t.Fatalf("wMax floor = %v, want 2", a.wMax)
	}
}

// Westwood+ sets ssthresh from the measured bandwidth-delay product, not
// from the flight: after a steady ACK stream at a known rate, a loss
// leaves ssthresh ≈ BWE·RTTmin, diverging from NewReno's flight/2.
func TestWestwoodBandwidthSsthresh(t *testing.T) {
	a := mk(t, Westwood)
	const rtt = 200 * sim.Millisecond
	// 10 segments per 200 ms RTT ≈ 20400 B/s for 20 simulated seconds.
	now := sim.Time(0)
	for i := 0; i < 1000; i++ {
		now = now.Add(rtt / 10)
		a.OnAck(now, mss, mss, rtt)
	}
	pipe := 10 * mss // BWE·RTTmin = (10·MSS/RTT)·RTT
	flight := 4 * mss
	a.OnDupAck(now, mss, flight)
	got := a.Ssthresh()
	if got < pipe*8/10 || got > pipe*12/10 {
		t.Fatalf("westwood ssthresh = %d, want ≈ BWE·RTTmin = %d", got, pipe)
	}
	if got == flight/2 {
		t.Fatal("westwood ssthresh equals flight/2 — not bandwidth-driven")
	}
	// NewReno on the same history halves the flight instead.
	r := mk(t, NewReno)
	r.OnDupAck(now, mss, flight)
	if r.Ssthresh() == got {
		t.Fatal("westwood and newreno agree on ssthresh; expected divergence")
	}
}

// Idle gaps (duty-cycle sleeps, blackouts) must not dilute the
// bandwidth estimate: dividing a burst's bytes by the dead air would
// crater bwe and push every subsequent loss response to the floor.
func TestWestwoodIdleGapDoesNotDiluteEstimate(t *testing.T) {
	a := mk(t, Westwood).(*westwood)
	const rtt = 200 * sim.Millisecond
	now := sim.Time(0)
	for i := 0; i < 500; i++ {
		now = now.Add(rtt / 10)
		a.OnAck(now, mss, mss, rtt)
	}
	steady := a.bwe
	// 20 duty cycles: 10 s asleep, then a 10-segment burst over one RTT.
	for cycle := 0; cycle < 20; cycle++ {
		now = now.Add(10 * sim.Second)
		for i := 0; i < 10; i++ {
			now = now.Add(rtt / 10)
			a.OnAck(now, mss, mss, rtt)
		}
	}
	if a.bwe < steady/2 {
		t.Fatalf("idle gaps diluted bwe %.0f → %.0f B/s", steady, a.bwe)
	}
}

// A congestion signal must never raise the threshold above the running
// window: after an RTO collapse, the lagging bandwidth estimate still
// reflects pre-loss throughput and must be clamped.
func TestWestwoodSignalNeverRaisesWindow(t *testing.T) {
	a := mk(t, Westwood)
	const rtt = 200 * sim.Millisecond
	now := sim.Time(0)
	for i := 0; i < 500; i++ {
		now = now.Add(rtt / 10)
		a.OnAck(now, mss, mss, rtt)
	}
	a.OnRTO(now, mss, 10*mss)
	if a.Cwnd() != mss {
		t.Fatalf("cwnd after RTO = %d", a.Cwnd())
	}
	// Dup-ACK signal while the window is still collapsed: the stale
	// estimate (≈10 MSS pipe) must not reinflate it.
	before := a.Cwnd()
	a.OnDupAck(now.Add(rtt), mss, mss)
	if a.Ssthresh() > max(before, 2*mss) {
		t.Fatalf("post-RTO loss raised ssthresh to %d (cwnd was %d)", a.Ssthresh(), before)
	}
	// Same for ECN: the response may not exceed the pre-signal window.
	b := mk(t, Westwood)
	now = 0
	for i := 0; i < 500; i++ {
		now = now.Add(rtt / 10)
		b.OnAck(now, mss, mss, rtt)
	}
	b.OnRTO(now, mss, 10*mss)
	b.OnECN(now.Add(rtt), mss, mss)
	if b.Cwnd() > 2*mss {
		t.Fatalf("ECN after RTO set cwnd = %d, want ≤ 2·MSS", b.Cwnd())
	}
}

// Before the first bandwidth sample exists, a loss must fall back to
// the Reno flight/2 decrease instead of collapsing to the 2-MSS floor.
func TestWestwoodEarlyLossFallsBackToReno(t *testing.T) {
	a := mk(t, Westwood)
	a.OnDupAck(sim.Time(sim.Second), mss, 10*mss)
	if a.Ssthresh() != 5*mss {
		t.Fatalf("pre-sample loss: ssthresh = %d, want flight/2 = %d", a.Ssthresh(), 5*mss)
	}
}

// The bandwidth estimate must survive recovery: ACKs arriving during
// recovery still feed it.
func TestWestwoodAccountsRecoveryAcks(t *testing.T) {
	a := mk(t, Westwood).(*westwood)
	const rtt = 200 * sim.Millisecond
	now := sim.Time(0)
	for i := 0; i < 100; i++ {
		now = now.Add(rtt / 10)
		a.OnAck(now, mss, mss, rtt)
	}
	before := a.bwe
	a.OnDupAck(now, mss, 4*mss)
	for i := 0; i < 50; i++ {
		now = now.Add(rtt / 2)
		a.OnPartialAck(now, mss, mss, rtt)
	}
	if a.bwe == before {
		t.Fatal("bandwidth estimate frozen during recovery")
	}
}
