package cc

import (
	"testing"

	"tcplp/internal/sim"
)

// ackWindow feeds one window's worth of full-segment ACKs at the given
// smoothed RTT, advancing time across one RTT.
func ackWindow(a Algorithm, now sim.Time, srtt sim.Duration) sim.Time {
	acks := max(a.Cwnd()/mss, 1)
	for i := 0; i < acks; i++ {
		now = now.Add(srtt / sim.Duration(acks))
		a.OnAck(now, mss, mss, srtt)
	}
	return now
}

// enterCA drives a vegas instance out of slow start via a loss so the
// congestion-avoidance path is under test.
func enterCA(t *testing.T) (Algorithm, sim.Time) {
	t.Helper()
	a := mk(t, Vegas)
	now := sim.Time(sim.Second)
	a.OnDupAck(now, mss, 8*mss)
	a.OnExitRecovery(now.Add(100*sim.Millisecond), mss, 8*mss, a.Ssthresh(), 100*sim.Millisecond)
	if a.Cwnd() >= a.Ssthresh()+mss {
		t.Fatalf("not in congestion avoidance: cwnd=%d ssthresh=%d", a.Cwnd(), a.Ssthresh())
	}
	return a, now.Add(100 * sim.Millisecond)
}

// At the base RTT there is no queue, so Vegas probes upward by one
// segment per window — and the growth is delay-gated, not unbounded.
func TestVegasGrowsAtBaseRTT(t *testing.T) {
	a, now := enterCA(t)
	const rtt = 100 * sim.Millisecond
	before := a.Cwnd()
	now = ackWindow(a, now, rtt)
	if a.Cwnd() != before+mss {
		t.Fatalf("one window at base RTT grew cwnd %d → %d, want +1 MSS", before, a.Cwnd())
	}
	// Several more windows: still exactly one segment per window.
	for i := 0; i < 3; i++ {
		prev := a.Cwnd()
		now = ackWindow(a, now, rtt)
		if a.Cwnd() != prev+mss {
			t.Fatalf("window %d: cwnd %d → %d, want +1 MSS", i, prev, a.Cwnd())
		}
	}
}

// When the RTT inflates well past the baseline (a queue is building),
// Vegas backs the window off without any loss having occurred — the
// defining delay-based behaviour, absent from every loss-based variant.
func TestVegasBacksOffOnRTTInflation(t *testing.T) {
	a, now := enterCA(t)
	const base = 100 * sim.Millisecond
	now = ackWindow(a, now, base) // establish the baseline
	before := a.Cwnd()
	// Tripled RTT: diff = cwnd·(rtt−base)/rtt = 2/3·cwnd segments, past
	// beta, so each window of ACKs now deflates the window by one segment.
	now = ackWindow(a, now, 3*base)
	now = ackWindow(a, now, 3*base)
	if a.Cwnd() >= before {
		t.Fatalf("RTT inflation did not shrink cwnd: %d → %d", before, a.Cwnd())
	}
	// And it never collapses below the 2-MSS floor.
	for i := 0; i < 50; i++ {
		now = ackWindow(a, now, 4*base)
	}
	if a.Cwnd() < 2*mss {
		t.Fatalf("cwnd %d fell below the 2-MSS floor", a.Cwnd())
	}
}

// Between alpha and beta segments of queue, Vegas holds the window.
func TestVegasHoldsInsideBand(t *testing.T) {
	a, now := enterCA(t)
	const base = 100 * sim.Millisecond
	now = ackWindow(a, now, base)
	// Pick an RTT so diff lands between alpha and beta:
	// diff = cwnd·(rtt−base)/rtt/mss = 3 → rtt = base·cwnd/(cwnd−3·mss).
	segs := a.Cwnd() / mss
	rtt := base * sim.Duration(segs) / sim.Duration(segs-3)
	before := a.Cwnd()
	now = ackWindow(a, now, rtt)
	now = ackWindow(a, now, rtt)
	_ = now
	if a.Cwnd() != before {
		t.Fatalf("cwnd %d → %d inside the [alpha, beta] band, want hold", before, a.Cwnd())
	}
}

// Slow start exits early when the delay signal crosses gamma, well
// before a loss forces it.
func TestVegasSlowStartExitsOnDelay(t *testing.T) {
	a := mk(t, Vegas)
	now := sim.Time(0)
	const base = 100 * sim.Millisecond
	now = ackWindow(a, now, base)
	if a.Cwnd() != 2*iw {
		t.Fatalf("clean slow start did not double: %d", a.Cwnd())
	}
	// Inflate the RTT: the next ACK must convert ssthresh to the current
	// window and stop the exponential growth.
	a.OnAck(now.Add(base), mss, mss, 3*base)
	if a.Ssthresh() != a.Cwnd() {
		t.Fatalf("delay did not end slow start: cwnd=%d ssthresh=%d", a.Cwnd(), a.Ssthresh())
	}
	grown := a.Cwnd()
	a.OnAck(now.Add(2*base), mss, mss, 3*base)
	if a.Cwnd() > grown+mss {
		t.Fatalf("still growing exponentially after exit: %d → %d", grown, a.Cwnd())
	}
}

// Losses use the gentler 3/4 decrease, not Reno's half.
func TestVegasLossBackoff(t *testing.T) {
	a := mk(t, Vegas)
	flight := 8 * mss
	a.OnDupAck(sim.Time(sim.Second), mss, flight)
	if want := 3 * flight / 4; a.Ssthresh() != want {
		t.Fatalf("ssthresh = %d, want 3/4 flight = %d", a.Ssthresh(), want)
	}
}
