package cc

import "tcplp/internal/sim"

// westwood is TCP Westwood+: Reno-style growth, but on a congestion
// signal ssthresh is set from an end-to-end bandwidth estimate times the
// minimum RTT — the pipe size actually sustained — rather than blindly
// halving. Over lossy wireless links where drops are corruption, not
// queue overflow, this avoids the repeated halvings that starve Reno.
type westwood struct {
	window
	bwe      float64      // filtered bandwidth estimate, bytes/second
	bkBytes  int          // bytes acked since the last bandwidth sample
	lastSamp sim.Time     // end of the last sampling interval
	rttMin   sim.Duration // smallest smoothed RTT observed
}

func newWestwood(p Params) *westwood {
	w := &westwood{}
	w.p = p
	w.policy = w
	return w
}

func (w *westwood) Name() Variant { return Westwood }

func (w *westwood) Init(now sim.Time) {
	w.window.Init(now)
	w.bwe = 0
	w.bkBytes = 0
	w.lastSamp = now
	w.rttMin = 0
}

// account folds acked bytes into the bandwidth estimate. Westwood+
// samples once per RTT (not per ACK) to stay robust to ACK compression,
// then low-pass filters the samples: bwe ← 7/8·bwe + 1/8·sample.
func (w *westwood) account(now sim.Time, acked int, srtt sim.Duration) {
	if srtt > 0 && (w.rttMin == 0 || srtt < w.rttMin) {
		w.rttMin = srtt
	}
	w.bkBytes += acked
	if srtt <= 0 {
		return
	}
	interval := now.Sub(w.lastSamp)
	if interval > 8*srtt {
		// Idle gap (duty-cycle sleep, blackout, app pause): dividing the
		// accumulated bytes by the dead air would inject a near-zero
		// sample, so restart the sampling window at this ACK instead.
		w.bkBytes = acked
		w.lastSamp = now
		return
	}
	if interval < srtt {
		return
	}
	sample := float64(w.bkBytes) / interval.Seconds()
	if w.bwe == 0 {
		w.bwe = sample
	} else {
		w.bwe = (7*w.bwe + sample) / 8
	}
	w.bkBytes = 0
	w.lastSamp = now
}

// ssthreshOnLoss is the bandwidth-delay product BWE·RTTmin in bytes,
// floored at two segments. Before the first bandwidth sample exists
// (losses inside the first RTTs), fall back to the Reno flight/2 rather
// than collapsing every early loss to the floor.
func (w *westwood) ssthreshOnLoss(_ sim.Time, mss, flight int) int {
	if w.bwe == 0 {
		return max(flight/2, 2*mss)
	}
	est := int(w.bwe * w.rttMin.Seconds())
	// A congestion signal must never raise the threshold above the
	// running window (classic TCPW applies cwnd = min(cwnd, ssthresh)):
	// after an RTO collapse the low-pass-filtered estimate still
	// reflects pre-loss bandwidth and would otherwise re-flood the path.
	if est > w.cwnd {
		est = w.cwnd
	}
	return max(est, 2*mss)
}

func (w *westwood) OnAck(now sim.Time, mss, acked int, srtt sim.Duration) {
	w.account(now, acked, srtt)
	w.growReno(mss, acked)
}

// Recovery ACKs still carry bandwidth information; count them so the
// estimate entering the next loss episode reflects reality.
func (w *westwood) OnPartialAck(now sim.Time, mss, acked int, srtt sim.Duration) {
	w.account(now, acked, srtt)
	w.window.OnPartialAck(now, mss, acked, srtt)
}

func (w *westwood) OnExitRecovery(now sim.Time, mss, acked, flight int, srtt sim.Duration) {
	w.account(now, acked, srtt)
	w.window.OnExitRecovery(now, mss, acked, flight, srtt)
}
