package cc

import "tcplp/internal/sim"

// BBR parameters. The gains and windows follow the BBR v1 draft
// (startup gain 2/ln 2, eight-phase probe-bw cycle, 10-second min-RTT
// window, 200 ms probe-rtt floor), with the filters sized for LLN
// operating points: a handful of segments in flight and RTTs from tens
// of milliseconds to seconds.
const (
	bbrHighGain       = 2.885 // 2/ln(2): fills the pipe in log2(BDP) RTTs
	bbrDrainGain      = 1.0 / bbrHighGain
	bbrCwndGain       = 2.0 // steady-state cwnd = 2·BDP (absorbs delayed ACKs)
	bbrBwWindowRounds = 10  // windowed-max bandwidth filter length, in rounds
	bbrFullBwThresh   = 1.25
	bbrFullBwRounds   = 3
	bbrMinRTTWindow   = 10 * sim.Second
	bbrProbeRTTTime   = 200 * sim.Millisecond
)

// bbrGainCycle is the probe-bw pacing-gain sequence: probe above the
// estimate for one RTT, drain the surplus, then cruise for six.
var bbrGainCycle = [...]float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

// bbrMode is the BBR state machine phase.
type bbrMode int

const (
	bbrStartup bbrMode = iota
	bbrDrain
	bbrProbeBW
	bbrProbeRTT
)

func (m bbrMode) String() string {
	switch m {
	case bbrStartup:
		return "startup"
	case bbrDrain:
		return "drain"
	case bbrProbeBW:
		return "probe-bw"
	case bbrProbeRTT:
		return "probe-rtt"
	}
	return "?"
}

// bbr is model-based congestion control in the style of BBR: instead of
// reacting to loss, it maintains an explicit model of the path — the
// bottleneck bandwidth (windowed max of per-round delivery-rate
// samples, reusing the Westwood+ once-per-RTT sampling discipline) and
// the propagation delay (windowed min RTT) — and derives both the
// congestion window (cwnd_gain · BDP) and a pacing rate
// (pacing_gain · BtlBw) from it. A gain state machine cycles through
// startup, drain, probe-bw, and probe-rtt.
//
// Simplifications versus the BBR draft, acceptable at LLN scale: drain
// is time-boxed to one min-RTT (the Algorithm hooks do not carry the
// in-flight count), RTT samples are the connection's smoothed RTT
// rather than per-segment ACK timings, and loss still collapses the
// window through the shared recovery machinery — with ssthresh pinned
// to the model's BDP, so recovery returns to the pipe size, not to a
// blind half-flight.
type bbr struct {
	window
	mode       bbrMode
	pacingGain float64
	cwndGain   float64

	// Delivery-rate sampling: bytes acked since the last sample, taken
	// once per RTT to stay robust to ACK compression.
	bkBytes  int
	lastSamp sim.Time

	// Windowed-max bandwidth filter over the last bbrBwWindowRounds
	// sample rounds (bytes/second).
	bwRing [bbrBwWindowRounds]float64
	round  int

	// Windowed-min RTT: the probe-rtt phase re-floors it every
	// bbrMinRTTWindow so a route change cannot pin a stale minimum.
	minRTT      sim.Duration
	minRTTStamp sim.Time

	// Startup full-pipe detection: bandwidth stopped growing.
	fullBw      float64
	fullBwCount int
	fullPipe    bool

	drainUntil  sim.Time
	cycleStamp  sim.Time
	cycleIdx    int
	probeRTTEnd sim.Time
	probeMin    sim.Duration
	priorCwnd   int
}

func newBBR(p Params) *bbr {
	b := &bbr{}
	b.p = p
	b.policy = b
	return b
}

func (b *bbr) Name() Variant { return Bbr }

func (b *bbr) Init(now sim.Time) {
	b.window.Init(now)
	b.mode = bbrStartup
	b.pacingGain = bbrHighGain
	b.cwndGain = bbrHighGain
	b.bkBytes = 0
	b.lastSamp = now
	b.bwRing = [bbrBwWindowRounds]float64{}
	b.round = 0
	b.minRTT = 0
	b.minRTTStamp = now
	b.fullBw = 0
	b.fullBwCount = 0
	b.fullPipe = false
	b.cycleIdx = 0
	b.cycleStamp = now
	b.probeMin = 0
	b.priorCwnd = 0
}

// btlBw is the bottleneck-bandwidth estimate: the windowed max of the
// delivery-rate samples (0 until the first sample completes).
func (b *bbr) btlBw() float64 {
	bw := 0.0
	for _, s := range b.bwRing {
		if s > bw {
			bw = s
		}
	}
	return bw
}

// bdp is the model's bandwidth-delay product in bytes (0 until both
// filters have a value).
func (b *bbr) bdp() int {
	if b.minRTT <= 0 {
		return 0
	}
	return int(b.btlBw() * b.minRTT.Seconds())
}

// account folds acked bytes into the model: it refreshes the min-RTT
// filter and, once per RTT, completes a delivery-rate sample round.
func (b *bbr) account(now sim.Time, acked int, srtt sim.Duration) {
	if srtt > 0 && (b.minRTT == 0 || srtt <= b.minRTT) {
		// <= and not <: a steady flow at the floor keeps refreshing the
		// stamp, so probe-rtt only fires when queues inflate the RTT.
		b.minRTT = srtt
		b.minRTTStamp = now
	}
	b.bkBytes += acked
	if srtt <= 0 {
		return
	}
	interval := now.Sub(b.lastSamp)
	if interval > 8*srtt {
		// Idle gap (duty-cycle sleep, blackout): restart the sampling
		// window rather than injecting a near-zero rate sample.
		b.bkBytes = acked
		b.lastSamp = now
		return
	}
	if interval < srtt {
		return
	}
	sample := float64(b.bkBytes) / interval.Seconds()
	b.round++
	b.bwRing[b.round%bbrBwWindowRounds] = sample
	b.bkBytes = 0
	b.lastSamp = now
	b.onRound(now)
}

// onRound runs once per completed bandwidth-sample round: startup's
// full-pipe detection lives here, since "bandwidth stopped growing" is
// a per-round judgement.
func (b *bbr) onRound(now sim.Time) {
	if b.mode != bbrStartup {
		return
	}
	bw := b.btlBw()
	if b.fullBw == 0 || bw >= b.fullBw*bbrFullBwThresh {
		b.fullBw = bw
		b.fullBwCount = 0
		return
	}
	b.fullBwCount++
	if b.fullBwCount >= bbrFullBwRounds {
		b.fullPipe = true
		b.enterDrain(now)
	}
}

func (b *bbr) enterDrain(now sim.Time) {
	b.mode = bbrDrain
	b.pacingGain = bbrDrainGain
	d := b.minRTT
	if d <= 0 {
		d = 100 * sim.Millisecond
	}
	b.drainUntil = now.Add(d)
}

func (b *bbr) enterProbeBW(now sim.Time) {
	b.mode = bbrProbeBW
	b.cwndGain = bbrCwndGain
	// Start in a cruise phase (gain 1), not the 1.25 probe, so the
	// transition out of drain does not immediately re-inflate the queue.
	b.cycleIdx = 2
	b.cycleStamp = now
	b.pacingGain = bbrGainCycle[b.cycleIdx]
}

func (b *bbr) enterProbeRTT(now sim.Time, mss int) {
	b.mode = bbrProbeRTT
	b.pacingGain = 1
	b.cwndGain = 1
	b.priorCwnd = b.cwnd
	if b.cwnd > 4*mss {
		b.cwnd = 4 * mss
	}
	b.probeRTTEnd = now.Add(bbrProbeRTTTime)
	b.probeMin = 0
}

func (b *bbr) exitProbeRTT(now sim.Time) {
	if b.probeMin > 0 {
		// The windowed min expires here: the lowest RTT seen during the
		// probe becomes the new floor, letting the model track a path
		// whose propagation delay genuinely rose.
		b.minRTT = b.probeMin
	}
	b.minRTTStamp = now
	if b.cwnd < b.priorCwnd {
		b.cwnd = b.priorCwnd
	}
	if b.fullPipe {
		b.enterProbeBW(now)
	} else {
		b.mode = bbrStartup
		b.pacingGain = bbrHighGain
		b.cwndGain = bbrHighGain
	}
}

// advance runs the gain state machine on each ACK.
func (b *bbr) advance(now sim.Time, mss int, srtt sim.Duration) {
	switch b.mode {
	case bbrDrain:
		if now >= b.drainUntil {
			b.enterProbeBW(now)
		}
	case bbrProbeBW:
		if b.minRTT > 0 && now.Sub(b.cycleStamp) >= b.minRTT {
			b.cycleIdx = (b.cycleIdx + 1) % len(bbrGainCycle)
			b.cycleStamp = now
			b.pacingGain = bbrGainCycle[b.cycleIdx]
		}
	case bbrProbeRTT:
		if srtt > 0 && (b.probeMin == 0 || srtt < b.probeMin) {
			b.probeMin = srtt
		}
		if now >= b.probeRTTEnd {
			b.exitProbeRTT(now)
		}
		return
	}
	if b.minRTT > 0 && now.Sub(b.minRTTStamp) > bbrMinRTTWindow {
		b.enterProbeRTT(now, mss)
	}
}

// cwndTarget is cwnd_gain · BDP, floored at four segments (the draft's
// minimum pipe to keep delayed ACKs and probe-rtt from starving the
// flow); 0 until the model has both a bandwidth and an RTT.
func (b *bbr) cwndTarget(mss int) int {
	bdp := b.bdp()
	if bdp <= 0 {
		return 0
	}
	target := int(b.cwndGain * float64(bdp))
	if floor := 4 * mss; target < floor {
		target = floor
	}
	return target
}

func (b *bbr) OnAck(now sim.Time, mss, acked int, srtt sim.Duration) {
	b.account(now, acked, srtt)
	b.advance(now, mss, srtt)
	if b.mode == bbrProbeRTT {
		// Hold the window at the probe floor; growth resumes on exit.
		return
	}
	target := b.cwndTarget(mss)
	if target == 0 || b.cwnd < target {
		b.cwnd += min(acked, mss)
		if target > 0 && b.cwnd > target {
			b.cwnd = target
		}
	}
	if b.cwnd > b.p.MaxWindow {
		b.cwnd = b.p.MaxWindow
	}
}

// Recovery ACKs still carry delivery-rate information; keep the model
// fed so the post-recovery window reflects reality.
func (b *bbr) OnPartialAck(now sim.Time, mss, acked int, srtt sim.Duration) {
	b.account(now, acked, srtt)
	b.window.OnPartialAck(now, mss, acked, srtt)
}

func (b *bbr) OnExitRecovery(now sim.Time, mss, acked, flight int, srtt sim.Duration) {
	b.account(now, acked, srtt)
	b.window.OnExitRecovery(now, mss, acked, flight, srtt)
}

// ssthreshOnLoss pins the post-loss threshold to the model's BDP — the
// pipe the path actually sustains — rather than halving the flight.
// Before the model exists (losses in the first RTTs), fall back to the
// Reno decrease. Like Westwood+, a congestion signal never raises the
// threshold above the running window: after an RTO collapse the
// windowed-max filter still remembers pre-loss bandwidth and would
// otherwise re-flood the path.
func (b *bbr) ssthreshOnLoss(_ sim.Time, mss, flight int) int {
	bdp := b.bdp()
	if bdp <= 0 {
		return max(flight/2, 2*mss)
	}
	if bdp > b.cwnd {
		bdp = b.cwnd
	}
	return max(bdp, 2*mss)
}

// PacingRate implements Pacer: pacing_gain · BtlBw once the model has a
// bandwidth estimate; before that, the configured window over the
// smoothed RTT (the draft's initial rate), so pacing is active from the
// very first data segment. The rate never drops below two segments per
// second, bounding the per-segment release delay even if the estimate
// craters.
func (b *bbr) PacingRate(mss int, srtt sim.Duration) float64 {
	bw := b.btlBw()
	if bw == 0 {
		if srtt <= 0 {
			return 0
		}
		bw = float64(b.cwnd) / srtt.Seconds()
	}
	rate := b.pacingGain * bw
	if floor := float64(2 * mss); rate < floor {
		rate = floor
	}
	return rate
}
