package cc

import "tcplp/internal/sim"

// newReno is RFC 5681/6582 congestion control, byte-for-byte identical
// to the implementation formerly inlined in the connection code: AIMD
// with ssthresh = flight/2 on any congestion signal.
type newReno struct {
	window
}

func newNewReno(p Params) *newReno {
	r := &newReno{}
	r.p = p
	r.policy = r
	return r
}

func (r *newReno) Name() Variant { return NewReno }

func (r *newReno) OnAck(_ sim.Time, mss, acked int, _ sim.Duration) {
	r.growReno(mss, acked)
}

func (r *newReno) ssthreshOnLoss(_ sim.Time, mss, flight int) int {
	return max(flight/2, 2*mss)
}
