package cc

import "tcplp/internal/sim"

// Vegas adjustment thresholds, in segments of estimated queue occupancy
// (Brakmo & Peterson's alpha/beta/gamma, at the Linux defaults).
const (
	vegasAlpha = 2 // grow while fewer than this many segments are queued
	vegasBeta  = 4 // shrink once more than this many are queued
	vegasGamma = 1 // leave slow start once this many are queued
)

// vegas is TCP Vegas: delay-based congestion avoidance. It remembers the
// smallest RTT seen (the uncongested baseline) and, once per window,
// compares the expected rate cwnd/baseRTT against the actual rate
// cwnd/rtt. The difference, expressed as queue occupancy in segments
// diff = cwnd·(rtt−base)/rtt, drives the window: below alpha grow by one
// segment per RTT, above beta shrink by one, otherwise hold — so on the
// duty-cycled LLN paths where RTT inflation (not loss) is the first
// congestion signal, Vegas backs off before the queue overflows. Slow
// start is Reno-like but exits early once diff exceeds gamma. Losses
// fall back to the shared recovery shape with a gentler 3/4 decrease:
// delay, not loss, is its primary signal, so a corruption loss on a
// wireless hop should not halve the pipe.
type vegas struct {
	window
	baseRTT sim.Duration // smallest smoothed RTT observed
	lastRTT sim.Duration // most recent smoothed RTT
	acked   int          // bytes acked since the last per-window adjustment
}

func newVegas(p Params) *vegas {
	v := &vegas{}
	v.p = p
	v.policy = v
	return v
}

func (v *vegas) Name() Variant { return Vegas }

func (v *vegas) Init(now sim.Time) {
	v.window.Init(now)
	v.baseRTT = 0
	v.lastRTT = 0
	v.acked = 0
}

// ssthreshOnLoss backs off to 3/4 of the flight — gentler than Reno's
// half, because for a delay-based variant a loss on a lossy wireless
// link is usually corruption, not queue overflow.
func (v *vegas) ssthreshOnLoss(_ sim.Time, mss, flight int) int {
	return max(3*flight/4, 2*mss)
}

// Loss and recovery events restart the per-window accounting: an
// adjustment must observe one full clean window, not a stale partial
// window whose RTT sample spans the recovery episode.

func (v *vegas) OnDupAck(now sim.Time, mss, flight int) {
	v.window.OnDupAck(now, mss, flight)
	v.acked = 0
}

func (v *vegas) OnRTO(now sim.Time, mss, flight int) {
	v.window.OnRTO(now, mss, flight)
	v.acked = 0
}

func (v *vegas) OnECN(now sim.Time, mss, flight int) {
	v.window.OnECN(now, mss, flight)
	v.acked = 0
}

func (v *vegas) OnExitRecovery(now sim.Time, mss, acked, flight int, srtt sim.Duration) {
	v.window.OnExitRecovery(now, mss, acked, flight, srtt)
	v.acked = 0
}

// diffSegs is the estimated queue occupancy in segments:
// (expected − actual rate) · baseRTT = cwnd·(rtt − base)/rtt.
func (v *vegas) diffSegs(mss int) float64 {
	if v.baseRTT == 0 || v.lastRTT <= 0 {
		return 0
	}
	return float64(v.cwnd) * float64(v.lastRTT-v.baseRTT) / float64(v.lastRTT) / float64(mss)
}

func (v *vegas) OnAck(now sim.Time, mss, acked int, srtt sim.Duration) {
	if srtt > 0 {
		if v.baseRTT == 0 || srtt < v.baseRTT {
			v.baseRTT = srtt
		}
		v.lastRTT = srtt
	}
	if v.cwnd < v.ssthresh {
		// Slow start: Reno growth, but step out as soon as the delay
		// signal says a queue is forming.
		if v.diffSegs(mss) > vegasGamma {
			v.ssthresh = v.cwnd
			return
		}
		v.growReno(mss, acked)
		return
	}
	// Congestion avoidance: one adjustment per window of ACKs.
	v.acked += acked
	if v.acked < v.cwnd {
		return
	}
	v.acked = 0
	switch diff := v.diffSegs(mss); {
	case diff < vegasAlpha:
		v.cwnd += mss
	case diff > vegasBeta:
		v.cwnd -= mss
	}
	if v.cwnd > v.p.MaxWindow {
		v.cwnd = v.p.MaxWindow
	}
	if v.cwnd < 2*mss {
		v.cwnd = 2 * mss
	}
}
