package cc

import (
	"testing"

	"tcplp/internal/sim"
)

// ackClock drives the algorithm with a steady ACK stream: segsPerRTT
// full-segment ACKs spread evenly over each RTT, for the given number
// of RTTs. It returns the time after the last ACK.
func ackClock(a Algorithm, start sim.Time, rtt sim.Duration, segsPerRTT, rtts int) sim.Time {
	now := start
	for i := 0; i < rtts*segsPerRTT; i++ {
		now = now.Add(rtt / sim.Duration(segsPerRTT))
		a.OnAck(now, mss, mss, rtt)
	}
	return now
}

// Startup must detect a full pipe — bandwidth stops growing round over
// round — and transition through drain into probe-bw, with the gains
// matching each phase.
func TestBBRStartupDrainProbeBW(t *testing.T) {
	b := mk(t, Bbr).(*bbr)
	if b.mode != bbrStartup || b.pacingGain != bbrHighGain {
		t.Fatalf("initial mode %v gain %v", b.mode, b.pacingGain)
	}
	const rtt = 200 * sim.Millisecond
	// A constant delivery rate: after bbrFullBwRounds non-growing sample
	// rounds the pipe is declared full.
	now := ackClock(b, 0, rtt, 10, bbrFullBwRounds+2)
	if !b.fullPipe {
		t.Fatalf("constant bandwidth did not fill the pipe: mode %v rounds %d fullBwCount %d",
			b.mode, b.round, b.fullBwCount)
	}
	if b.mode != bbrDrain && b.mode != bbrProbeBW {
		t.Fatalf("post-startup mode %v", b.mode)
	}
	if b.mode == bbrDrain && b.pacingGain >= 1 {
		t.Fatalf("drain pacing gain %v, want < 1", b.pacingGain)
	}
	// One more RTT of ACKs ends the (time-boxed) drain.
	now = ackClock(b, now, rtt, 10, 2)
	if b.mode != bbrProbeBW {
		t.Fatalf("mode %v after drain, want probe-bw", b.mode)
	}
	if b.cwndGain != bbrCwndGain {
		t.Fatalf("probe-bw cwnd gain %v", b.cwndGain)
	}
	_ = now
}

// In probe-bw the pacing gain must cycle: over a handful of RTTs both
// the 1.25 probe phase and the 0.75 drain phase appear.
func TestBBRGainCycling(t *testing.T) {
	b := mk(t, Bbr).(*bbr)
	const rtt = 200 * sim.Millisecond
	now := ackClock(b, 0, rtt, 10, bbrFullBwRounds+4)
	if b.mode != bbrProbeBW {
		t.Fatalf("mode %v, want probe-bw", b.mode)
	}
	seen := map[float64]bool{}
	for i := 0; i < 2*len(bbrGainCycle); i++ {
		now = ackClock(b, now, rtt, 10, 1)
		seen[b.pacingGain] = true
	}
	if !seen[1.25] || !seen[0.75] || !seen[1.0] {
		t.Fatalf("gain cycle incomplete: %v", seen)
	}
}

// When the smoothed RTT stays above the recorded minimum for longer
// than the min-RTT window, BBR must enter probe-rtt, sink the window to
// the 4-segment floor, and restore it on exit with a refreshed min-RTT
// (tracking a path whose propagation delay genuinely rose).
func TestBBRProbeRTT(t *testing.T) {
	b := mk(t, Bbr).(*bbr)
	const base = 100 * sim.Millisecond
	now := ackClock(b, 0, base, 10, 8) // model built at 100 ms floor
	if b.minRTT != base {
		t.Fatalf("minRTT = %v", b.minRTT)
	}
	// RTT inflates to 300 ms; the 100 ms floor goes stale.
	const inflated = 300 * sim.Millisecond
	deadline := now.Add(sim.Duration(2 * bbrMinRTTWindow))
	enteredProbe := false
	var prior int
	for now < deadline && !enteredProbe {
		now = ackClock(b, now, inflated, 10, 1)
		if b.mode == bbrProbeRTT {
			enteredProbe = true
			prior = b.priorCwnd
		}
	}
	if !enteredProbe {
		t.Fatalf("stale min-RTT never triggered probe-rtt (mode %v, stamp %v, now %v)",
			b.mode, b.minRTTStamp, now)
	}
	if b.Cwnd() > 4*mss {
		t.Fatalf("probe-rtt cwnd = %d, want ≤ 4·MSS", b.Cwnd())
	}
	// Ride out the probe window.
	for i := 0; i < 50 && b.mode == bbrProbeRTT; i++ {
		now = ackClock(b, now, inflated, 4, 1)
	}
	if b.mode == bbrProbeRTT {
		t.Fatal("probe-rtt never ended")
	}
	if b.Cwnd() < prior {
		t.Fatalf("cwnd %d not restored to prior %d after probe-rtt", b.Cwnd(), prior)
	}
	if b.minRTT < inflated {
		t.Fatalf("min-RTT window did not expire: still %v after sustained %v", b.minRTT, inflated)
	}
}

// The loss response must come from the model: with a steady measured
// rate, ssthresh after a triple-dupack is the bandwidth-delay product
// (clamped to cwnd), not the Reno flight/2.
func TestBBRSsthreshFromModel(t *testing.T) {
	b := mk(t, Bbr).(*bbr)
	const rtt = 200 * sim.Millisecond
	now := ackClock(b, 0, rtt, 10, 20) // 10 segments per RTT → BDP = 10·MSS
	bdp := b.bdp()
	if bdp < 8*mss || bdp > 12*mss {
		t.Fatalf("model BDP = %d, want ≈ 10·MSS = %d", bdp, 10*mss)
	}
	flight := 4 * mss
	b.OnDupAck(now, mss, flight)
	if b.Ssthresh() == flight/2 {
		t.Fatal("ssthresh equals flight/2 — not model-driven")
	}
	if b.Ssthresh() < 2*mss || b.Ssthresh() > bdp {
		t.Fatalf("ssthresh = %d, want within [2·MSS, BDP=%d]", b.Ssthresh(), bdp)
	}
}

// Before the model has a bandwidth estimate, losses fall back to the
// Reno flight/2 decrease rather than collapsing to the floor.
func TestBBREarlyLossFallsBackToReno(t *testing.T) {
	b := mk(t, Bbr)
	b.OnDupAck(sim.Time(sim.Second), mss, 10*mss)
	if b.Ssthresh() != 5*mss {
		t.Fatalf("pre-sample loss: ssthresh = %d, want flight/2 = %d", b.Ssthresh(), 5*mss)
	}
}

// PacingRate: zero before any RTT estimate exists (unpaced), then
// cwnd/srtt scaled by the startup gain, then pacing_gain·BtlBw once the
// model has a bandwidth — and never below the two-segment floor.
func TestBBRPacingRate(t *testing.T) {
	b := mk(t, Bbr).(*bbr)
	if r := b.PacingRate(mss, 0); r != 0 {
		t.Fatalf("rate with no RTT = %v, want 0", r)
	}
	const rtt = 100 * sim.Millisecond
	r := b.PacingRate(mss, rtt)
	want := bbrHighGain * float64(iw) / rtt.Seconds()
	if r < want*0.99 || r > want*1.01 {
		t.Fatalf("pre-model rate = %v, want ≈ gain·cwnd/srtt = %v", r, want)
	}
	now := ackClock(b, 0, rtt, 10, 5)
	bw := b.btlBw()
	if bw == 0 {
		t.Fatal("no bandwidth sample after 5 RTTs")
	}
	r = b.PacingRate(mss, rtt)
	want = b.pacingGain * bw
	if r < want*0.99 || r > want*1.01 {
		t.Fatalf("model rate = %v, want gain·btlBw = %v", r, want)
	}
	// Floor: crater the ring by rebuilding with a tiny estimate.
	b.Init(now)
	b.bwRing[0] = 1 // 1 B/s
	if r := b.PacingRate(mss, rtt); r < float64(2*mss) {
		t.Fatalf("rate %v below the 2-segment floor", r)
	}
}

// The bandwidth filter is a windowed max: a rate drop only propagates
// into the estimate after the old peak ages out of the window.
func TestBBRWindowedMaxBandwidth(t *testing.T) {
	b := mk(t, Bbr).(*bbr)
	const rtt = 200 * sim.Millisecond
	now := ackClock(b, 0, rtt, 10, 5) // ≈10 segs/RTT
	high := b.btlBw()
	if high == 0 {
		t.Fatal("no samples")
	}
	// Halve the delivery rate for a couple of rounds: the max must hold.
	now = ackClock(b, now, rtt, 5, 2)
	if b.btlBw() < high*0.99 {
		t.Fatalf("windowed max decayed immediately: %v → %v", high, b.btlBw())
	}
	// After a full window of slow rounds, the old peak expires.
	now = ackClock(b, now, rtt, 5, bbrBwWindowRounds+2)
	if b.btlBw() > high*0.75 {
		t.Fatalf("old peak never aged out: %v vs %v", b.btlBw(), high)
	}
	_ = now
}

// Idle gaps must not dilute the delivery-rate samples (same guarantee
// Westwood+ provides): a duty-cycled burst pattern keeps the estimate
// near the active-period rate.
func TestBBRIdleGapDoesNotDiluteEstimate(t *testing.T) {
	b := mk(t, Bbr).(*bbr)
	const rtt = 200 * sim.Millisecond
	now := ackClock(b, 0, rtt, 10, 10)
	steady := b.btlBw()
	for cycle := 0; cycle < 20; cycle++ {
		now = now.Add(10 * sim.Second)
		now = ackClock(b, now, rtt, 10, 1)
	}
	if b.btlBw() < steady/2 {
		t.Fatalf("idle gaps diluted btlBw %.0f → %.0f B/s", steady, b.btlBw())
	}
}
