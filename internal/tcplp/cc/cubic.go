package cc

import (
	"math"

	"tcplp/internal/sim"
)

// CUBIC constants (RFC 8312 §5): β is the multiplicative-decrease
// factor, C scales the cubic growth in segments per second cubed.
const (
	cubicBeta = 0.7
	cubicC    = 0.4
)

// cubic is RFC 8312 congestion control: after a loss the window follows
// a cubic of the time since the decrease — concave up to the pre-loss
// plateau W_max, then convex while probing beyond it — making growth a
// function of time rather than of the ACK rate, which matters over LLN
// paths whose RTTs stretch to seconds.
type cubic struct {
	window
	wMax     float64  // window (segments) at the last decrease
	k        float64  // time (s) for the cubic to return to wMax
	epoch    sim.Time // start of the current growth epoch
	hasEpoch bool
	wEst     float64 // Reno-equivalent window (segments), TCP-friendly region
	frac     float64 // sub-byte growth carried between ACKs
}

func newCubic(p Params) *cubic {
	c := &cubic{}
	c.p = p
	c.policy = c
	return c
}

func (c *cubic) Name() Variant { return Cubic }

func (c *cubic) Init(now sim.Time) {
	c.window.Init(now)
	c.wMax = 0
	c.hasEpoch = false
	c.frac = 0
}

func (c *cubic) OnAck(now sim.Time, mss, acked int, srtt sim.Duration) {
	if c.cwnd < c.ssthresh {
		c.cwnd += min(acked, mss)
		if c.cwnd > c.p.MaxWindow {
			c.cwnd = c.p.MaxWindow
		}
		return
	}
	segs := float64(c.cwnd) / float64(mss)
	if !c.hasEpoch {
		c.hasEpoch = true
		c.epoch = now
		if segs < c.wMax {
			c.k = math.Cbrt((c.wMax - segs) / cubicC)
		} else {
			c.k = 0
			c.wMax = segs
		}
		c.wEst = segs
	}
	// Elapsed time into the epoch; RFC 8312 projects one RTT ahead so the
	// window reaches the cubic's value by the time the ACKs return.
	t := now.Sub(c.epoch).Seconds() + srtt.Seconds()
	target := cubicC*math.Pow(t-c.k, 3) + c.wMax
	// TCP-friendly region (§4.2): never grow slower than a Reno flow
	// seeing the same ACK stream would.
	c.wEst += 3 * (1 - cubicBeta) / (1 + cubicBeta) * float64(acked) / (segs * float64(mss))
	if c.wEst > target {
		target = c.wEst
	}
	var inc float64
	if target > segs {
		// Spread the climb to the target over one window of ACKs, never
		// faster than slow start.
		inc = (target - segs) / segs * float64(acked)
		if inc > float64(acked) {
			inc = float64(acked)
		}
	} else {
		// At or beyond the target: creep at 1 segment per 100 windows so
		// the probe never fully stalls.
		inc = float64(acked) / (100 * segs)
	}
	// Accumulate fractional bytes across ACKs: per-ACK increments are
	// routinely below one byte at LLN window sizes, and truncating them
	// would stall growth entirely.
	c.frac += inc
	whole := int(c.frac)
	c.frac -= float64(whole)
	c.cwnd += whole
	if c.cwnd > c.p.MaxWindow {
		c.cwnd = c.p.MaxWindow
	}
}

// ssthreshOnLoss applies the CUBIC multiplicative decrease with fast
// convergence. RFC 8312 §4.5 derives both the plateau and the new
// threshold from cwnd (not flight), so a receiver-limited flow still
// remembers the window it was actually running.
func (c *cubic) ssthreshOnLoss(_ sim.Time, mss, _ int) int {
	segs := float64(c.cwnd) / float64(mss)
	if segs < c.wMax {
		// Fast convergence (§4.6): the flow ceiling shrank, so release
		// bandwidth by remembering a lower plateau.
		c.wMax = segs * (2 - cubicBeta) / 2
	} else {
		c.wMax = segs
	}
	// LLN-scale fix: operating windows here are a handful of segments;
	// without a floor, back-to-back losses drive W_max toward zero and
	// the concave phase vanishes, leaving pure convex blow-up from a
	// 1-segment plateau. Two segments is the smallest usable window
	// (matching the 2·MSS ssthresh floor below).
	if c.wMax < 2 {
		c.wMax = 2
	}
	c.hasEpoch = false
	c.frac = 0
	return max(int(segs*cubicBeta)*mss, 2*mss)
}
