package tcplp

import (
	"math/rand"
	"testing"

	"tcplp/internal/ip6"
	"tcplp/internal/sim"
	"tcplp/internal/tcplp/cc"
)

// Every congestion-control variant must complete a lossy transfer
// through the full connection machinery (fast retransmit, RTO, SACK).
func TestTransferAllVariants(t *testing.T) {
	for i, v := range cc.Variants() {
		t.Run(string(v), func(t *testing.T) {
			cfg := testCfg()
			cfg.Variant = v
			cfg.SendBufSize = 8 * 408
			cfg.RecvBufSize = 8 * 408
			l := newTestLink(int64(60+i), 20*sim.Millisecond, cfg)
			rng := rand.New(rand.NewSource(int64(61 + i)))
			l.Drop = func(pkt *ip6.Packet) bool { return rng.Float64() < 0.08 }
			_, client := l.transfer(t, 30_000, 10*sim.Minute)
			if client.Variant() != v {
				t.Fatalf("connection runs %v, want %v", client.Variant(), v)
			}
			if client.Stats.Retransmits == 0 {
				t.Fatal("no retransmits despite 8% loss")
			}
		})
	}
}

// An unknown variant is a configuration programming error and must be
// rejected at stack setup, not discovered mid-simulation.
func TestUnknownVariantPanics(t *testing.T) {
	cfg := testCfg()
	cfg.Variant = "tahoe"
	defer func() {
		if recover() == nil {
			t.Fatal("NewStack with unknown variant did not panic")
		}
	}()
	newTestLink(70, 10*sim.Millisecond, cfg)
}

// A listener's dynamic per-connection config sits on the packet path,
// so a bad variant there must refuse the connection (RST), not panic.
func TestListenerBadVariantRefusesConnection(t *testing.T) {
	l := newTestLink(71, 10*sim.Millisecond, testCfg())
	lst := l.b.Listen(80, func(c *Conn) { t.Fatal("accepted a connection with a bad variant") })
	lst.ConfigFor = func() Config {
		cfg := testCfg()
		cfg.Variant = "tahoe"
		return cfg
	}
	var closedErr error
	client := l.a.Connect(ip6.AddrFromID(1), 80)
	client.OnClosed = func(err error) { closedErr = err }
	l.eng.RunUntil(sim.Time(5 * sim.Second))
	if closedErr != ErrConnRefused {
		t.Fatalf("close error = %v, want %v (state %v)", closedErr, ErrConnRefused, client.State())
	}
}
