package tcplp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tcplp/internal/sim"
)

func TestScoreboardAddMerge(t *testing.T) {
	var sb scoreboard
	sb.Add(SACKBlock{100, 200}, 0)
	sb.Add(SACKBlock{300, 400}, 0)
	sb.Add(SACKBlock{150, 350}, 0) // bridges the two
	if len(sb.ranges) != 1 || sb.ranges[0] != (SACKBlock{100, 400}) {
		t.Fatalf("merge: %v", sb.ranges)
	}
	if sb.SackedBytes() != 300 {
		t.Fatalf("sacked = %d", sb.SackedBytes())
	}
}

func TestScoreboardStaleBlocks(t *testing.T) {
	var sb scoreboard
	sb.Add(SACKBlock{100, 200}, 250) // entirely below una
	if !sb.Empty() {
		t.Fatalf("stale block recorded: %v", sb.ranges)
	}
	sb.Add(SACKBlock{200, 300}, 250) // straddles una
	if len(sb.ranges) != 1 || sb.ranges[0] != (SACKBlock{250, 300}) {
		t.Fatalf("straddling block: %v", sb.ranges)
	}
}

func TestScoreboardNextHole(t *testing.T) {
	var sb scoreboard
	sb.Add(SACKBlock{100, 200}, 0)
	sb.Add(SACKBlock{300, 400}, 0)
	h, ok := sb.NextHole(0, 500)
	if !ok || h != (SACKBlock{0, 100}) {
		t.Fatalf("first hole: %v %v", h, ok)
	}
	h, ok = sb.NextHole(100, 500)
	if !ok || h != (SACKBlock{200, 300}) {
		t.Fatalf("middle hole: %v %v", h, ok)
	}
	h, ok = sb.NextHole(300, 500)
	if !ok || h != (SACKBlock{400, 500}) {
		t.Fatalf("tail hole: %v %v", h, ok)
	}
	if _, ok := sb.NextHole(100, 200); ok {
		t.Fatal("hole reported inside a SACKed range")
	}
}

func TestScoreboardAdvanceUna(t *testing.T) {
	var sb scoreboard
	sb.Add(SACKBlock{100, 200}, 0)
	sb.Add(SACKBlock{300, 400}, 0)
	sb.AdvanceUna(150)
	if len(sb.ranges) != 2 || sb.ranges[0] != (SACKBlock{150, 200}) {
		t.Fatalf("advance: %v", sb.ranges)
	}
	sb.AdvanceUna(450)
	if !sb.Empty() {
		t.Fatalf("advance past all: %v", sb.ranges)
	}
}

func TestScoreboardCovers(t *testing.T) {
	var sb scoreboard
	sb.Add(SACKBlock{100, 200}, 0)
	if !sb.Covers(120, 180) || !sb.Covers(100, 200) {
		t.Fatal("covers inside range")
	}
	if sb.Covers(90, 110) || sb.Covers(150, 250) {
		t.Fatal("covers over boundary")
	}
}

// Property: the scoreboard stays sorted, non-overlapping, above una, and
// agrees with a reference set of SACKed bytes.
func TestQuickScoreboardInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var sb scoreboard
		ref := map[uint32]bool{}
		una := Seq(0)
		for op := 0; op < 150; op++ {
			if rng.Intn(4) != 0 {
				start := Seq(rng.Intn(900))
				ln := rng.Intn(80) + 1
				blk := SACKBlock{start, start.Add(ln)}
				sb.Add(blk, una)
				for s := start; s.LT(blk.End); s = s.Add(1) {
					if s.GEQ(una) {
						ref[uint32(s)] = true
					}
				}
			} else {
				una = una.Add(rng.Intn(60))
				sb.AdvanceUna(una)
				for k := range ref {
					if Seq(k).LT(una) {
						delete(ref, k)
					}
				}
			}
			// Invariants.
			total := 0
			var prev *SACKBlock
			for i := range sb.ranges {
				r := sb.ranges[i]
				if r.End.LEQ(r.Start) || r.Start.LT(una) {
					return false
				}
				if prev != nil && r.Start.LT(prev.End) {
					return false
				}
				total += r.End.Diff(r.Start)
				prev = &sb.ranges[i]
			}
			if total != len(ref) || total != sb.SackedBytes() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRTTEstimatorConvergence(t *testing.T) {
	e := newRTTEstimator(0, 0)
	if e.RTO() != InitialRTO {
		t.Fatalf("initial RTO = %v", e.RTO())
	}
	for i := 0; i < 50; i++ {
		e.Sample(100 * sim.Millisecond)
	}
	if e.SRTT() < 95*sim.Millisecond || e.SRTT() > 105*sim.Millisecond {
		t.Fatalf("srtt = %v after constant samples", e.SRTT())
	}
	// RTO floors at RTOMin.
	if e.RTO() != DefaultRTOMin {
		t.Fatalf("rto = %v, want floor %v", e.RTO(), DefaultRTOMin)
	}
}

func TestRTTEstimatorVariance(t *testing.T) {
	e := newRTTEstimator(0, 0)
	for i := 0; i < 50; i++ {
		if i%2 == 0 {
			e.Sample(100 * sim.Millisecond)
		} else {
			e.Sample(900 * sim.Millisecond)
		}
	}
	// High variance must push RTO well above the mean.
	if e.RTO() < 900*sim.Millisecond {
		t.Fatalf("rto = %v with oscillating RTT", e.RTO())
	}
}

func TestRTTBackoff(t *testing.T) {
	e := newRTTEstimator(0, 0)
	e.Sample(500 * sim.Millisecond)
	base := e.RTO()
	if e.Backoff(1) != 2*base || e.Backoff(2) != 4*base {
		t.Fatalf("backoff: %v %v base %v", e.Backoff(1), e.Backoff(2), base)
	}
	if e.Backoff(30) != DefaultRTOMax {
		t.Fatalf("backoff clamp: %v", e.Backoff(30))
	}
}
