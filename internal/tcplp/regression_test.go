package tcplp

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tcplp/internal/ip6"
	"tcplp/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// recordCwndScenario runs the recorded congestion-control scenario: a
// bulk transfer over a deterministic lossy fixed-delay link with a
// mid-stream blackout, exercising slow start, fast retransmit/recovery
// (partial and full ACKs), and RTO collapse. It returns one line per
// TraceCwnd event ("t_us,cwnd,ssthresh").
func recordCwndScenario(t *testing.T) []string {
	cfg := testCfg()
	cfg.SendBufSize = 8 * 408
	cfg.RecvBufSize = 8 * 408
	l := newTestLink(42, 20*sim.Millisecond, cfg)
	drops := newDetDrop(43, 0.05)
	blackout := false
	l.Drop = func(pkt *ip6.Packet) bool {
		if blackout {
			return true
		}
		return drops(pkt)
	}
	l.eng.Schedule(4*sim.Second, func() { blackout = true })
	l.eng.Schedule(7*sim.Second, func() { blackout = false })

	var lines []string
	var received int
	l.b.Listen(80, func(c *Conn) {
		c.OnReadable = func() {
			buf := make([]byte, 2048)
			for {
				n := c.Read(buf)
				if n == 0 {
					break
				}
				received += n
			}
		}
	})
	client := l.a.Connect(ip6.AddrFromID(1), 80)
	client.TraceCwnd = func(now sim.Time, cwnd, ssthresh int) {
		lines = append(lines, fmt.Sprintf("%d,%d,%d", int64(now), cwnd, ssthresh))
	}
	const total = 120_000
	sent := 0
	pump := func() {
		for sent < total {
			w, err := client.Write(make([]byte, minInt(1024, total-sent)))
			if err != nil {
				t.Fatalf("write: %v", err)
			}
			if w == 0 {
				return
			}
			sent += w
		}
	}
	client.OnEstablished = pump
	client.OnWritable = pump
	l.eng.RunUntil(sim.Time(10 * sim.Minute))
	if received != total {
		t.Fatalf("scenario transfer incomplete: %d/%d", received, total)
	}
	return lines
}

// newDetDrop returns a deterministic per-packet drop function based on a
// cheap xorshift PRNG (kept independent of math/rand so Go version
// changes cannot shift the recorded scenario).
func newDetDrop(seed uint64, p float64) func(pkt *ip6.Packet) bool {
	x := seed
	return func(*ip6.Packet) bool {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return float64(x>>11)/float64(1<<53) < p
	}
}

// TestNewRenoCwndTraceGolden pins the NewReno cwnd/ssthresh trace on the
// recorded scenario to the values produced by the pre-refactor inline
// implementation. Any change to the congestion-control plumbing that
// alters NewReno behaviour fails here. Run with -update to re-record.
func TestNewRenoCwndTraceGolden(t *testing.T) {
	lines := recordCwndScenario(t)
	if len(lines) < 20 {
		t.Fatalf("scenario produced only %d cwnd events", len(lines))
	}
	golden := filepath.Join("testdata", "newreno_cwnd_golden.csv")
	got := strings.Join(lines, "\n") + "\n"
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		gl := strings.Split(got, "\n")
		wl := strings.Split(string(want), "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("cwnd trace diverges from pre-refactor NewReno at event %d: got %q want %q (of %d/%d events)",
					i, gl[i], wl[i], len(gl)-1, len(wl)-1)
			}
		}
		t.Fatalf("cwnd trace length changed: got %d events, want %d", len(gl)-1, len(wl)-1)
	}
}

// Regression: a passively opened, receive-only connection must survive
// arbitrarily long idle periods. The SYN/ACK's retransmission timer once
// leaked past establishment and silently backed off until the server
// aborted the connection after ~8 idle minutes and RST the peer.
func TestIdleServerConnectionSurvives(t *testing.T) {
	l := newTestLink(30, 10*sim.Millisecond, testCfg())
	var server *Conn
	var serverErr, clientErr error
	l.b.Listen(80, func(c *Conn) {
		server = c
		c.OnClosed = func(err error) { serverErr = err }
	})
	client := l.a.Connect(ip6.AddrFromID(1), 80)
	client.OnClosed = func(err error) { clientErr = err }
	l.eng.RunUntil(sim.Time(2 * sim.Second))
	if server == nil || server.State() != StateEstablished {
		t.Fatalf("handshake failed: %v", stateOf(server))
	}
	// 30 idle minutes: nothing may fire, nothing may close.
	l.eng.RunUntil(sim.Time(30 * sim.Minute))
	if server.State() != StateEstablished || client.State() != StateEstablished {
		t.Fatalf("idle connection died: server=%v(%v) client=%v(%v)",
			server.State(), serverErr, client.State(), clientErr)
	}
	if server.Stats.Timeouts != 0 {
		t.Fatalf("idle server fired %d RTOs", server.Stats.Timeouts)
	}
	// And it still works afterwards.
	received := 0
	server.OnReadable = func() {
		buf := make([]byte, 256)
		for {
			n := server.Read(buf)
			if n == 0 {
				break
			}
			received += n
		}
	}
	client.Write(make([]byte, 100))
	l.eng.RunFor(5 * sim.Second)
	if received != 100 {
		t.Fatalf("post-idle transfer delivered %d", received)
	}
}

// Regression (Karn violation on handshake retransmit): after a SYN RTO,
// the retransmission must restart the handshake RTT sample. The old code
// kept timing the ORIGINAL SYN, so in non-timestamp configs the eventual
// SYN/ACK seeded srtt with the whole backoff interval (~1 s) instead of
// the final round trip, inflating every early RTO and causing exactly the
// spurious retransmissions LLN energy budgets cannot afford.
func TestHandshakeRTTAfterSynRetransmit(t *testing.T) {
	cfg := testCfg()
	cfg.UseTimestamps = false
	l := newTestLink(32, 50*sim.Millisecond, cfg)
	l.b.Listen(80, func(c *Conn) {})
	dropped := false
	l.Drop = func(pkt *ip6.Packet) bool {
		if !dropped {
			dropped = true // lose exactly the first SYN
			return true
		}
		return false
	}
	client := l.a.Connect(ip6.AddrFromID(1), 80)
	var samples []sim.Duration
	client.TraceRTT = func(s sim.Duration) { samples = append(samples, s) }
	l.eng.RunUntil(sim.Time(10 * sim.Second))
	if client.State() != StateEstablished {
		t.Fatalf("handshake failed: %v", client.State())
	}
	if client.Stats.Timeouts == 0 {
		t.Fatal("SYN was not retransmitted — scenario broken")
	}
	if len(samples) == 0 {
		t.Fatal("no RTT sample from the handshake")
	}
	// Physical RTT is 100 ms; the initial RTO is 1 s. A first sample that
	// includes the backoff interval lands at ≈1.1 s.
	if samples[0] > 500*sim.Millisecond {
		t.Fatalf("first RTT sample = %v includes the SYN backoff interval (link RTT is 100 ms)",
			samples[0])
	}
	if client.SRTT() > 500*sim.Millisecond {
		t.Fatalf("srtt = %v seeded from the backoff interval", client.SRTT())
	}
}

// Regression: timestamp-echo validity is the RFC 7323 rule (TSEcr is
// meaningful iff the ACK bit is set), not "TSEcr != 0". A zero echo is
// legitimate when the timestamp clock reads 0 at wrap and must still
// produce an RTT sample; conversely a segment without ACK must not.
func TestTimestampEchoZeroIsValid(t *testing.T) {
	l := newTestLink(33, 10*sim.Millisecond, testCfg())
	l.b.Listen(80, func(c *Conn) {})
	client := l.a.Connect(ip6.AddrFromID(1), 80)
	l.eng.RunUntil(sim.Time(sim.Second))
	if client.State() != StateEstablished || !client.peerTS {
		t.Fatalf("setup: state=%v peerTS=%v", client.State(), client.peerTS)
	}
	samples := 0
	client.TraceRTT = func(sim.Duration) { samples++ }
	// A peer whose timestamp clock read 0 when it echoed ours.
	echoZero := &Segment{
		Flags:  FlagACK,
		AckNum: client.sndNxt,
		HasTS:  true,
		TSVal:  7,
		TSEcr:  0,
	}
	client.sampleRTTFromSeg(echoZero)
	if samples != 1 {
		t.Fatalf("legitimate zero echo dropped: %d samples", samples)
	}
	// Without the ACK bit the echo field is undefined and must not feed
	// the estimator, whatever its value.
	noAck := &Segment{HasTS: true, TSVal: 9, TSEcr: 1234}
	client.sampleRTTFromSeg(noAck)
	if samples != 1 {
		t.Fatalf("TSEcr without ACK produced a sample: %d", samples)
	}
}

// Regression (Karn violation in the persist path): the first zero-window
// probe starts an RTT sample; re-probes must invalidate it, or the ACK
// that finally arrives when the window reopens gets timed against the
// FIRST probe's clock and feeds the estimator the whole persist episode
// — seconds to minutes of "RTT" that clamp the RTO to its maximum.
func TestPersistEpisodeDoesNotPolluteRTT(t *testing.T) {
	cfg := testCfg()
	cfg.UseTimestamps = false
	l := newTestLink(35, 10*sim.Millisecond, cfg)
	var server *Conn
	l.b.Listen(80, func(c *Conn) { server = c })
	client := l.a.Connect(ip6.AddrFromID(1), 80)
	var samples []sim.Duration
	client.TraceRTT = func(s sim.Duration) { samples = append(samples, s) }
	total := 4*408 + 1 // one byte can never fit the peer's buffer
	sent := 0
	pump := func() {
		for sent < total {
			n, err := client.Write(make([]byte, minInt(512, total-sent)))
			if err != nil {
				t.Fatalf("write: %v", err)
			}
			if n == 0 {
				return
			}
			sent += n
		}
	}
	client.OnEstablished = pump
	client.OnWritable = pump
	// A 20-second zero-window episode with probes cycling throughout.
	l.eng.RunUntil(sim.Time(20 * sim.Second))
	if client.Stats.ZeroWindowProbes < 2 {
		t.Fatalf("scenario: %d probes", client.Stats.ZeroWindowProbes)
	}
	buf := make([]byte, 4096)
	server.OnReadable = func() {
		for server.Read(buf) > 0 {
		}
	}
	for server.Read(buf) > 0 {
	}
	l.eng.RunUntil(sim.Time(40 * sim.Second))
	if server.Stats.BytesRecv != uint64(total) {
		t.Fatalf("delivered %d/%d after reopen", server.Stats.BytesRecv, total)
	}
	for _, s := range samples {
		if s > sim.Second {
			t.Fatalf("RTT sample %v spans the persist episode (link RTT is 20 ms)", s)
		}
	}
	if client.SRTT() > sim.Second {
		t.Fatalf("srtt = %v polluted by the persist episode", client.SRTT())
	}
}

// Regression: retransmitted FIN-only segments must count into
// Stats.Retransmits — the close-phase retransmissions are exactly what
// the paper's energy accounting (Fig. 9b) tallies.
func TestFinOnlyRetransmitCounted(t *testing.T) {
	l := newTestLink(34, 10*sim.Millisecond, testCfg())
	var server *Conn
	l.b.Listen(80, func(c *Conn) { server = c })
	client := l.a.Connect(ip6.AddrFromID(1), 80)
	l.eng.RunUntil(sim.Time(sim.Second))
	if client.State() != StateEstablished {
		t.Fatalf("setup: %v", client.State())
	}
	// Black the link out and close: the FIN (carrying no data) is lost
	// and must be retransmitted by the RTO path.
	blackout := true
	l.Drop = func(pkt *ip6.Packet) bool { return blackout }
	client.Close()
	l.eng.RunFor(10 * sim.Second)
	if client.Stats.Timeouts == 0 {
		t.Fatal("lost FIN never timed out — scenario broken")
	}
	if client.Stats.Retransmits == 0 {
		t.Fatalf("FIN-only retransmissions uncounted: %+v", client.Stats)
	}
	blackout = false
	l.eng.RunFor(30 * sim.Second)
	if !client.finAcked() {
		t.Fatalf("FIN never acknowledged after blackout: %v", client.State())
	}
	_ = server
}

// Regression: delayed ACKs must not halve the peer's RTT samples. With
// RFC 7323 Last.ACK.sent echo semantics the timestamp a delayed ACK
// echoes belongs to the FIRST of the two segments it covers, so the
// sender's RTT sample includes the coalescing wait.
func TestTimestampEchoCoversDelayedAck(t *testing.T) {
	l := newTestLink(31, 50*sim.Millisecond, testCfg())
	_, client := l.transfer(t, 30_000, 5*sim.Minute)
	// One-way delay 50 ms → physical RTT 100 ms. In steady state with a
	// 4-segment window the pipe adds queueing; SRTT must be comfortably
	// above the bare 100 ms (the buggy echo reported less than 100 ms
	// because it echoed the newest segment's timestamp).
	if client.SRTT() < 100*sim.Millisecond {
		t.Fatalf("srtt = %v, must include pipeline + delack wait", client.SRTT())
	}
}
