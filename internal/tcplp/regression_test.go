package tcplp

import (
	"testing"

	"tcplp/internal/ip6"
	"tcplp/internal/sim"
)

// Regression: a passively opened, receive-only connection must survive
// arbitrarily long idle periods. The SYN/ACK's retransmission timer once
// leaked past establishment and silently backed off until the server
// aborted the connection after ~8 idle minutes and RST the peer.
func TestIdleServerConnectionSurvives(t *testing.T) {
	l := newTestLink(30, 10*sim.Millisecond, testCfg())
	var server *Conn
	var serverErr, clientErr error
	l.b.Listen(80, func(c *Conn) {
		server = c
		c.OnClosed = func(err error) { serverErr = err }
	})
	client := l.a.Connect(ip6.AddrFromID(1), 80)
	client.OnClosed = func(err error) { clientErr = err }
	l.eng.RunUntil(sim.Time(2 * sim.Second))
	if server == nil || server.State() != StateEstablished {
		t.Fatalf("handshake failed: %v", stateOf(server))
	}
	// 30 idle minutes: nothing may fire, nothing may close.
	l.eng.RunUntil(sim.Time(30 * sim.Minute))
	if server.State() != StateEstablished || client.State() != StateEstablished {
		t.Fatalf("idle connection died: server=%v(%v) client=%v(%v)",
			server.State(), serverErr, client.State(), clientErr)
	}
	if server.Stats.Timeouts != 0 {
		t.Fatalf("idle server fired %d RTOs", server.Stats.Timeouts)
	}
	// And it still works afterwards.
	received := 0
	server.OnReadable = func() {
		buf := make([]byte, 256)
		for {
			n := server.Read(buf)
			if n == 0 {
				break
			}
			received += n
		}
	}
	client.Write(make([]byte, 100))
	l.eng.RunFor(5 * sim.Second)
	if received != 100 {
		t.Fatalf("post-idle transfer delivered %d", received)
	}
}

// Regression: delayed ACKs must not halve the peer's RTT samples. With
// RFC 7323 Last.ACK.sent echo semantics the timestamp a delayed ACK
// echoes belongs to the FIRST of the two segments it covers, so the
// sender's RTT sample includes the coalescing wait.
func TestTimestampEchoCoversDelayedAck(t *testing.T) {
	l := newTestLink(31, 50*sim.Millisecond, testCfg())
	_, client := l.transfer(t, 30_000, 5*sim.Minute)
	// One-way delay 50 ms → physical RTT 100 ms. In steady state with a
	// 4-segment window the pipe adds queueing; SRTT must be comfortably
	// above the bare 100 ms (the buggy echo reported less than 100 ms
	// because it echoed the newest segment's timestamp).
	if client.SRTT() < 100*sim.Millisecond {
		t.Fatalf("srtt = %v, must include pipeline + delack wait", client.SRTT())
	}
}
