package tcplp

import (
	"bytes"
	"testing"
	"testing/quick"

	"tcplp/internal/ip6"
)

var testSrc, testDst = ip6.AddrFromID(1), ip6.AddrFromID(2)

func TestSegmentRoundTrip(t *testing.T) {
	s := &Segment{
		SrcPort: 49152, DstPort: 80,
		SeqNum: 0xdeadbeef, AckNum: 0x01020304,
		Flags:  FlagACK | FlagPSH,
		Window: 1848,
		HasTS:  true, TSVal: 111, TSEcr: 222,
		SACKBlocks: []SACKBlock{{Start: 100, End: 200}, {Start: 300, End: 400}},
		Payload:    []byte("data bytes"),
	}
	b := s.Encode(testSrc, testDst)
	if len(b) != s.WireLen() {
		t.Fatalf("encoded %d, WireLen %d", len(b), s.WireLen())
	}
	g, err := DecodeSegment(testSrc, testDst, b)
	if err != nil {
		t.Fatal(err)
	}
	if g.SrcPort != s.SrcPort || g.DstPort != s.DstPort || g.SeqNum != s.SeqNum ||
		g.AckNum != s.AckNum || g.Flags != s.Flags || g.Window != s.Window {
		t.Fatalf("fixed fields: %+v", g)
	}
	if !g.HasTS || g.TSVal != 111 || g.TSEcr != 222 {
		t.Fatalf("timestamps: %+v", g)
	}
	if len(g.SACKBlocks) != 2 || g.SACKBlocks[0] != s.SACKBlocks[0] || g.SACKBlocks[1] != s.SACKBlocks[1] {
		t.Fatalf("sack: %+v", g.SACKBlocks)
	}
	if !bytes.Equal(g.Payload, s.Payload) {
		t.Fatalf("payload: %q", g.Payload)
	}
}

func TestSYNOptions(t *testing.T) {
	s := &Segment{Flags: FlagSYN, MSS: 408, SACKPermitted: true, HasTS: true}
	g, err := DecodeSegment(testSrc, testDst, s.Encode(testSrc, testDst))
	if err != nil {
		t.Fatal(err)
	}
	if g.MSS != 408 || !g.SACKPermitted || !g.HasTS {
		t.Fatalf("SYN options: %+v", g)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	s := &Segment{SrcPort: 1, DstPort: 2, Payload: []byte("hello")}
	b := s.Encode(testSrc, testDst)
	b[len(b)-1] ^= 0x40
	if _, err := DecodeSegment(testSrc, testDst, b); err != ErrBadChecksum {
		t.Fatalf("corrupted payload: %v", err)
	}
	// Wrong pseudo header (different destination) also fails.
	b = s.Encode(testSrc, testDst)
	if _, err := DecodeSegment(testSrc, ip6.AddrFromID(9), b); err != ErrBadChecksum {
		t.Fatalf("wrong pseudo header: %v", err)
	}
}

func TestSegmentLen(t *testing.T) {
	if (&Segment{Flags: FlagSYN}).Len() != 1 {
		t.Fatal("SYN occupies one sequence number")
	}
	if (&Segment{Flags: FlagFIN, Payload: []byte("ab")}).Len() != 3 {
		t.Fatal("FIN + payload length")
	}
	if (&Segment{Flags: FlagACK}).Len() != 0 {
		t.Fatal("pure ACK occupies no sequence space")
	}
}

func TestHeaderLenAlignment(t *testing.T) {
	s := &Segment{HasTS: true} // 10 option bytes → pad to 12
	if s.HeaderLen() != 32 {
		t.Fatalf("ts header len = %d, want 32", s.HeaderLen())
	}
	s = &Segment{MSS: 500, SACKPermitted: true, HasTS: true} // 16 bytes
	if s.HeaderLen() != 36 {
		t.Fatalf("syn header len = %d, want 36", s.HeaderLen())
	}
}

func TestFlagsString(t *testing.T) {
	if got := (FlagSYN | FlagACK).String(); got != "SA" {
		t.Fatalf("flags = %q", got)
	}
	if got := Flags(0).String(); got != "." {
		t.Fatalf("empty flags = %q", got)
	}
}

// Property: arbitrary segments round-trip through encode/decode.
func TestQuickSegmentRoundTrip(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, flags uint8, win uint16,
		tsv, tse uint32, useTS bool, payload []byte, nblocks uint8) bool {
		s := &Segment{
			SrcPort: sp, DstPort: dp,
			SeqNum: Seq(seq), AckNum: Seq(ack),
			Flags: Flags(flags), Window: win,
			Payload: payload,
		}
		if useTS {
			s.HasTS, s.TSVal, s.TSEcr = true, tsv, tse
		}
		for i := 0; i < int(nblocks%4); i++ {
			s.SACKBlocks = append(s.SACKBlocks, SACKBlock{Seq(seq + uint32(i*100)), Seq(seq + uint32(i*100+50))})
		}
		g, err := DecodeSegment(testSrc, testDst, s.Encode(testSrc, testDst))
		if err != nil {
			return false
		}
		if g.SeqNum != s.SeqNum || g.AckNum != s.AckNum || g.Flags != s.Flags ||
			g.Window != s.Window || !bytes.Equal(g.Payload, payload) {
			return false
		}
		if g.HasTS != s.HasTS || g.TSVal != s.TSVal || g.TSEcr != s.TSEcr {
			return false
		}
		if len(g.SACKBlocks) != len(s.SACKBlocks) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSeqArithmetic(t *testing.T) {
	near := Seq(0xfffffff0)
	far := near.Add(0x20) // wraps
	if !near.LT(far) || !far.GT(near) {
		t.Fatal("wraparound comparison failed")
	}
	if far.Diff(near) != 0x20 {
		t.Fatalf("diff = %d", far.Diff(near))
	}
	if near.Diff(far) != -0x20 {
		t.Fatalf("negative diff = %d", near.Diff(far))
	}
	if !near.LEQ(near) || !near.GEQ(near) {
		t.Fatal("reflexive comparisons")
	}
	if maxSeq(near, far) != far || minSeq(near, far) != near {
		t.Fatal("min/max across wrap")
	}
}

// Property: sequence comparisons behave like integers for spans < 2^31.
func TestQuickSeqOrdering(t *testing.T) {
	f := func(base uint32, delta uint16) bool {
		a := Seq(base)
		b := a.Add(int(delta))
		if delta == 0 {
			return a.LEQ(b) && a.GEQ(b) && !a.LT(b) && !a.GT(b)
		}
		return a.LT(b) && b.GT(a) && b.Diff(a) == int(delta)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
