package tcplp

import (
	"errors"
	"fmt"

	"tcplp/internal/ip6"
	"tcplp/internal/obs"
	"tcplp/internal/sim"
	"tcplp/internal/tcplp/cc"
)

// State is a TCP connection state (RFC 793 §3.2).
type State int

// Connection states.
const (
	StateClosed State = iota
	StateListen
	StateSynSent
	StateSynReceived
	StateEstablished
	StateFinWait1
	StateFinWait2
	StateCloseWait
	StateClosing
	StateLastAck
	StateTimeWait
)

var stateNames = [...]string{
	"CLOSED", "LISTEN", "SYN_SENT", "SYN_RCVD", "ESTABLISHED",
	"FIN_WAIT_1", "FIN_WAIT_2", "CLOSE_WAIT", "CLOSING", "LAST_ACK", "TIME_WAIT",
}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state%d", int(s))
}

// Connection errors.
var (
	ErrConnReset     = errors.New("tcplp: connection reset by peer")
	ErrConnTimeout   = errors.New("tcplp: retransmission limit exceeded")
	ErrConnRefused   = errors.New("tcplp: connection refused")
	ErrConnClosed    = errors.New("tcplp: connection closed")
	ErrWriteAfterFin = errors.New("tcplp: write after Close")
)

// Config holds the per-connection tuning knobs — each Table 1 feature can
// be switched off for the ablation benches.
type Config struct {
	// MSS is the maximum TCP payload per segment we advertise. The §6.1
	// experiments set it so a segment spans a chosen number of frames.
	MSS int
	// SendBufSize / RecvBufSize are the §6.2 window knobs; the receive
	// buffer size bounds the advertised window.
	SendBufSize int
	RecvBufSize int

	UseSACK        bool
	UseTimestamps  bool
	UseDelayedAcks bool
	UseECN         bool
	NoDelay        bool // disable Nagle
	// ZeroCopySend selects the §4.3.1 linked-list send buffer.
	ZeroCopySend bool
	// ChainRecvQueue selects the mbuf-chain reassembly ablation instead
	// of the in-place queue.
	ChainRecvQueue bool

	RTOMin, RTOMax sim.Duration
	// MaxRetransmits is how many consecutive RTOs abort the connection
	// (paper §9.4: TCP performs up to 12 retransmissions).
	MaxRetransmits int
	DelAckTimeout  sim.Duration
	// MSL sets TIME_WAIT duration (2·MSL).
	MSL sim.Duration
	// InitialCwndSegs is the initial window in segments (RFC 6928: 10).
	InitialCwndSegs int
	// Variant selects the congestion-control algorithm
	// (internal/tcplp/cc); empty selects NewReno.
	Variant cc.Variant
	// NoPacing forces ACK-clocked sending even when the variant
	// implements cc.Pacer — the per-flow pacing on/off knob of the
	// scenario subsystem.
	NoPacing bool
}

// DefaultConfig mirrors the paper's standard configuration: MSS of five
// frames' worth of payload (≈408-460 B, set by the stack), 4-segment
// buffers, and every Table 1 feature on.
func DefaultConfig() Config {
	return Config{
		MSS:             408,
		SendBufSize:     4 * 462,
		RecvBufSize:     4 * 462,
		UseSACK:         true,
		UseTimestamps:   true,
		UseDelayedAcks:  true,
		NoDelay:         false,
		RTOMin:          DefaultRTOMin,
		RTOMax:          DefaultRTOMax,
		MaxRetransmits:  12,
		DelAckTimeout:   100 * sim.Millisecond,
		MSL:             5 * sim.Second,
		InitialCwndSegs: 10,
		Variant:         cc.NewReno,
	}
}

// ConnStats counts per-connection protocol events; the Fig. 7 and Fig. 9
// experiments read these.
type ConnStats struct {
	SegsSent, SegsRecv     uint64
	BytesSent, BytesRecv   uint64 // payload bytes, including retransmits
	Retransmits            uint64 // data segments retransmitted (any cause)
	Timeouts               uint64 // RTO firings
	FastRetransmits        uint64
	SACKRetransmits        uint64
	DupAcksIn              uint64
	DelayedAcks            uint64
	AcksSent               uint64
	ZeroWindowProbes       uint64
	ChallengeAcks          uint64
	PredictedAcks          uint64 // header-prediction fast path (pure ACK)
	PredictedData          uint64 // header-prediction fast path (in-order data)
	ECNCongestionResponses uint64
	OutOfOrderSegs         uint64
	DupSegs                uint64
}

// Conn is a TCP connection endpoint ("active socket" in the paper's
// active/passive split, §4.1). All methods must be called from the
// simulation goroutine.
type Conn struct {
	stack *Stack
	cfg   Config
	state State

	localAddr, remoteAddr ip6.Addr
	localPort, remotePort uint16

	// Send state.
	sndBuf    SendBuffer
	iss       Seq
	sndUna    Seq
	sndNxt    Seq
	sndMax    Seq // highest sequence sent + 1
	queuedEnd Seq // stream position after the last byte queued by the app
	sndWnd    int
	maxSndWnd int
	sndWL1    Seq
	sndWL2    Seq
	finQueued bool

	// Congestion control: cong owns cwnd/ssthresh (internal/tcplp/cc);
	// the fields below are the recovery machinery shared by all variants.
	cong        cc.Algorithm
	dupAcks     int
	inRecovery  bool
	recover     Seq
	sb          scoreboard
	sackRtxNext Seq // scan cursor for SACK hole retransmissions
	rtxPipe     int // retransmitted bytes counted into the pipe estimate

	// Timers.
	rexmt        *sim.Timer
	rexmtShift   int
	persist      *sim.Timer
	persistShift int
	probing      bool // inside onPersist's forced send
	delAckTimer  *sim.Timer
	timeWait     *sim.Timer

	// Pacing (only active when the cc variant implements cc.Pacer):
	// paceNext is the earliest time the next data segment may be
	// released; paceTimer re-runs output at that time when the window
	// would otherwise burst.
	paceTimer *sim.Timer
	paceNext  sim.Time

	// RTT measurement.
	rtt        *rttEstimator
	rttPending bool
	rttSeq     Seq
	rttTime    sim.Time
	tsRecent   uint32
	tsEcho     bool // tsRecent valid

	// Peer capabilities (negotiated on SYN).
	peerMSS  int
	peerSACK bool
	peerTS   bool
	ecnOn    bool

	// Receive state.
	rcvQ        ReceiveQueue
	irs         Seq
	rcvNxt      Seq
	finReceived bool
	finSeq      Seq
	segsToAck   int // full segments received since last ACK (delack)
	lastWndAdv  int // window advertised in the last ACK sent
	lastAckSeq  Seq // rcv.nxt when the last ACK was sent (RFC 7323 Last.ACK.sent)

	// ECN state.
	eceToSend  bool // receiver side: echo congestion until CWR arrives
	cwrToSend  bool // sender side: signal cwnd reduction on next data
	ecnRecover Seq  // one cwnd reduction per window of data

	closeErr error

	// OnReadable fires when new in-sequence data (or the peer's FIN)
	// becomes available.
	OnReadable func()
	// OnWritable fires when send-buffer space frees up.
	OnWritable func()
	// OnEstablished fires when the handshake completes.
	OnEstablished func()
	// OnClosed fires once, when the connection fully terminates.
	OnClosed func(err error)

	// TraceCwnd, if set, is invoked whenever cwnd or ssthresh changes
	// (the Fig. 7a instrument).
	TraceCwnd func(now sim.Time, cwnd, ssthresh int)
	// TraceRTT, if set, receives every RTT sample fed to the estimator
	// (the Fig. 13 instrument).
	TraceRTT func(sample sim.Duration)

	Stats ConnStats
}

func newConn(s *Stack, cfg Config) *Conn {
	alg, err := cc.New(cfg.Variant, cc.Params{
		InitialWindow: cfg.InitialCwndSegs * cfg.MSS,
	})
	if err != nil {
		panic(fmt.Sprintf("tcplp: %v", err))
	}
	c := &Conn{
		stack: s,
		cfg:   cfg,
		cong:  alg,
		state: StateClosed,
		rtt:   newRTTEstimator(cfg.RTOMin, cfg.RTOMax),
	}
	if cfg.ZeroCopySend {
		c.sndBuf = NewZeroCopySendBuffer(cfg.SendBufSize)
	} else {
		c.sndBuf = NewCopySendBuffer(cfg.SendBufSize)
	}
	if cfg.ChainRecvQueue {
		c.rcvQ = NewChainRecvBuffer(cfg.RecvBufSize)
	} else {
		c.rcvQ = NewRecvBuffer(cfg.RecvBufSize)
	}
	c.rexmt = sim.NewTimer(s.eng, c.onRTO)
	c.persist = sim.NewTimer(s.eng, c.onPersist)
	c.delAckTimer = sim.NewTimer(s.eng, c.onDelAck)
	c.timeWait = sim.NewTimer(s.eng, c.onTimeWaitExpiry)
	c.paceTimer = sim.NewTimer(s.eng, c.output)
	c.peerMSS = 536
	return c
}

// State returns the connection state.
func (c *Conn) State() State { return c.state }

// LocalPort returns the local port.
func (c *Conn) LocalPort() uint16 { return c.localPort }

// RemoteAddr returns the peer address and port.
func (c *Conn) RemoteAddr() (ip6.Addr, uint16) { return c.remoteAddr, c.remotePort }

// SRTT exposes the smoothed RTT estimate (cross-layer hint, §10).
func (c *Conn) SRTT() sim.Duration { return c.rtt.SRTT() }

// RTO exposes the current retransmission timeout.
func (c *Conn) RTO() sim.Duration { return c.rtt.RTO() }

// Cwnd returns the congestion window in bytes.
func (c *Conn) Cwnd() int { return c.cong.Cwnd() }

// Ssthresh returns the slow-start threshold in bytes.
func (c *Conn) Ssthresh() int { return c.cong.Ssthresh() }

// Variant returns the congestion-control algorithm in use.
func (c *Conn) Variant() cc.Variant { return c.cong.Name() }

// BytesInFlight returns snd.max − snd.una.
func (c *Conn) BytesInFlight() int { return c.sndMax.Diff(c.sndUna) }

// ExpectingAck reports whether unacknowledged data is outstanding — the
// signal the duty-cycle controller polls fast on (§9.2).
func (c *Conn) ExpectingAck() bool {
	return c.state != StateClosed && c.sndMax.Diff(c.sndUna) > 0
}

// Write queues data for transmission, returning how many bytes fit in
// the send buffer. It never blocks; watch OnWritable for free space.
func (c *Conn) Write(p []byte) (int, error) {
	switch c.state {
	case StateEstablished, StateCloseWait, StateSynSent, StateSynReceived:
	default:
		return 0, ErrConnClosed
	}
	if c.finQueued {
		return 0, ErrWriteAfterFin
	}
	n := c.sndBuf.Write(p)
	c.queuedEnd = c.queuedEnd.Add(n)
	if c.state == StateEstablished || c.state == StateCloseWait {
		c.output()
	}
	return n, nil
}

// WriteBufferSpace returns the free bytes in the send buffer.
func (c *Conn) WriteBufferSpace() int { return c.sndBuf.Free() }

// BufferedBytes returns bytes written but not yet acknowledged end-to-end
// (still occupying the send buffer).
func (c *Conn) BufferedBytes() int { return c.sndBuf.Len() }

// Read copies available in-sequence bytes into p. n == 0 with nil error
// means no data yet; io semantics of EOF are exposed via EOF().
func (c *Conn) Read(p []byte) int {
	n := c.rcvQ.Read(p)
	if n > 0 {
		c.considerWindowUpdate()
	}
	return n
}

// ReadableBytes returns the bytes available to Read.
func (c *Conn) ReadableBytes() int { return c.rcvQ.Readable() }

// EOF reports whether the peer's FIN has been received and all data
// consumed.
func (c *Conn) EOF() bool { return c.finReceived && c.rcvQ.Readable() == 0 }

// Close queues a FIN after any buffered data (graceful close).
func (c *Conn) Close() {
	if c.finQueued {
		return
	}
	switch c.state {
	case StateEstablished, StateCloseWait, StateSynReceived:
		c.finQueued = true
		c.output()
	case StateSynSent, StateClosed:
		c.teardown(nil)
	}
}

// Abort sends a RST and tears the connection down immediately.
func (c *Conn) Abort() {
	if c.state == StateClosed {
		return
	}
	c.sendRST(c.sndNxt)
	c.teardown(ErrConnClosed)
}

// finSeqNum is the sequence number the FIN occupies.
func (c *Conn) finSeqNum() Seq { return c.queuedEnd }

// finSent reports whether the FIN has been transmitted at least once.
func (c *Conn) finSent() bool { return c.finQueued && c.sndMax.GT(c.queuedEnd) }

// finAcked reports whether the peer acknowledged our FIN.
func (c *Conn) finAcked() bool { return c.finQueued && c.sndUna.GT(c.queuedEnd) }

func (c *Conn) setState(s State) {
	if c.state == s {
		return
	}
	c.emit(obs.TCPState, int64(c.state), int64(s), 0)
	c.state = s
}

// emit records an obs event when the owning stack is traced.
func (c *Conn) emit(k obs.Kind, a, b int64, n int) {
	c.emitJ(k, 0, a, b, n)
}

// emitJ is emit with a journey packet id attached.
func (c *Conn) emitJ(k obs.Kind, j, a, b int64, n int) {
	if tr := c.stack.Trace; tr != nil {
		tr.Emit(obs.Event{T: c.stack.eng.Now(), Kind: k, Node: c.stack.TraceNode, A: a, B: b, Len: n, J: j})
	}
}

// teardown finalizes the connection and releases stack state.
func (c *Conn) teardown(err error) {
	if c.state == StateClosed && c.closeErr != nil {
		return
	}
	c.setState(StateClosed)
	c.closeErr = err
	c.rexmt.Stop()
	c.persist.Stop()
	c.delAckTimer.Stop()
	c.timeWait.Stop()
	c.paceTimer.Stop()
	c.stack.removeConn(c)
	c.setExpecting(false)
	if c.OnClosed != nil {
		cb := c.OnClosed
		c.OnClosed = nil
		cb(err)
	}
}

// setExpecting propagates the duty-cycling hint to the stack.
func (c *Conn) setExpecting(on bool) {
	c.stack.noteExpecting(c, on)
}

// checkInvariant panics when stream accounting diverges (debug aid).
func (c *Conn) checkInvariant(where string) {
	if c.state == StateEstablished && !c.finQueued {
		want := c.queuedEnd.Diff(c.sndUna)
		if want != c.sndBuf.Len() {
			panic(fmt.Sprintf("invariant broken at %s: queuedEnd-una=%d bufLen=%d una=%d nxt=%d max=%d", where, want, c.sndBuf.Len(), c.sndUna, c.sndNxt, c.sndMax))
		}
	}
}

func (c *Conn) traceCwnd() {
	if c.TraceCwnd != nil {
		c.TraceCwnd(c.stack.eng.Now(), c.cong.Cwnd(), c.cong.Ssthresh())
	}
	c.emit(obs.TCPCwnd, int64(c.cong.Cwnd()), int64(c.cong.Ssthresh()), 0)
}

// now is the current simulation time (congestion-control hook argument).
func (c *Conn) now() sim.Time { return c.stack.eng.Now() }

// considerWindowUpdate sends a window-update ACK when the app's reads
// reopen at least two segments (or half the buffer) of window that the
// peer believes closed — the receiver side of silly-window avoidance.
func (c *Conn) considerWindowUpdate() {
	if c.state != StateEstablished && c.state != StateFinWait1 && c.state != StateFinWait2 {
		return
	}
	win := c.rcvQ.Window()
	gain := win - c.lastWndAdv
	if gain >= 2*c.cfg.MSS || gain*2 >= c.rcvQ.Capacity() {
		c.sendAck()
	}
}
