package tcplp

import (
	"bytes"
	"math/rand"
	"testing"

	"tcplp/internal/ip6"
	"tcplp/internal/sim"
)

// testLink wires two stacks together with a fixed one-way delay and
// optional per-packet drop/jitter hooks — a pure transport-layer test
// bench with no radio underneath.
type testLink struct {
	eng   *sim.Engine
	a, b  *Stack
	delay sim.Duration
	// Drop returns true to discard a packet (called per packet).
	Drop func(pkt *ip6.Packet) bool
	// Jitter returns extra per-packet delay (reordering source).
	Jitter func() sim.Duration
	// CE marks packets with ECN Congestion Experienced.
	CE func(pkt *ip6.Packet) bool

	delivered uint64
	dropped   uint64
}

func newTestLink(seed int64, delay sim.Duration, cfg Config) *testLink {
	eng := sim.NewEngine(seed)
	l := &testLink{eng: eng, delay: delay}
	l.a = NewStack(eng, ip6.AddrFromID(0), cfg)
	l.b = NewStack(eng, ip6.AddrFromID(1), cfg)
	l.a.Output = func(pkt *ip6.Packet) { l.forward(pkt, l.b) }
	l.b.Output = func(pkt *ip6.Packet) { l.forward(pkt, l.a) }
	return l
}

func (l *testLink) forward(pkt *ip6.Packet, to *Stack) {
	if l.Drop != nil && l.Drop(pkt) {
		l.dropped++
		return
	}
	if l.CE != nil && l.CE(pkt) {
		pkt.SetECN(ip6.CE)
	}
	d := l.delay
	if l.Jitter != nil {
		d += l.Jitter()
	}
	l.delivered++
	l.eng.Schedule(d, func() { to.Input(pkt) })
}

// transfer moves n bytes from a client on l.a to a server on l.b,
// returning the received bytes and the client connection.
func (l *testLink) transfer(t *testing.T, n int, deadline sim.Duration) ([]byte, *Conn) {
	t.Helper()
	var received bytes.Buffer
	var serverConn *Conn
	done := false
	l.b.Listen(80, func(c *Conn) {
		serverConn = c
		c.OnReadable = func() {
			buf := make([]byte, 2048)
			for {
				r := c.Read(buf)
				if r == 0 {
					break
				}
				received.Write(buf[:r])
			}
			if c.EOF() {
				c.Close()
				done = true
			}
		}
	})

	payload := make([]byte, n)
	rand.New(rand.NewSource(7)).Read(payload)
	client := l.a.Connect(ip6.AddrFromID(1), 80)
	var clientErr error
	client.OnClosed = func(err error) { clientErr = err }
	sent := 0
	pump := func() {
		for sent < n {
			w, err := client.Write(payload[sent:])
			if err != nil {
				t.Fatalf("write: %v", err)
			}
			if w == 0 {
				return
			}
			sent += w
		}
		if sent == n && !client.finQueued {
			client.Close()
		}
	}
	client.OnEstablished = pump
	client.OnWritable = pump

	l.eng.RunUntil(sim.Time(deadline))
	if !done {
		t.Fatalf("transfer incomplete: sent=%d received=%d state=%v/%v clientErr=%v stats=%+v",
			sent, received.Len(), client.State(), stateOf(serverConn), clientErr, client.Stats)
	}
	if !bytes.Equal(received.Bytes(), payload) {
		t.Fatalf("received %d bytes, corrupted=%v", received.Len(), !bytes.Equal(received.Bytes(), payload))
	}
	return received.Bytes(), client
}

func stateOf(c *Conn) State {
	if c == nil {
		return StateClosed
	}
	return c.State()
}

func testCfg() Config {
	cfg := DefaultConfig()
	cfg.MSS = 408
	cfg.SendBufSize = 4 * 408
	cfg.RecvBufSize = 4 * 408
	return cfg
}

func TestHandshakeAndClose(t *testing.T) {
	l := newTestLink(1, 10*sim.Millisecond, testCfg())
	established := 0
	var server *Conn
	l.b.Listen(80, func(c *Conn) { server = c; established++ })
	client := l.a.Connect(ip6.AddrFromID(1), 80)
	client.OnEstablished = func() { established++ }
	l.eng.RunUntil(sim.Time(sim.Second))
	if established != 2 {
		t.Fatalf("established = %d", established)
	}
	if client.State() != StateEstablished || server.State() != StateEstablished {
		t.Fatalf("states: %v %v", client.State(), server.State())
	}
	// Graceful close from client side.
	client.Close()
	l.eng.Schedule(200*sim.Millisecond, func() { server.Close() })
	l.eng.RunUntil(sim.Time(30 * sim.Second))
	if client.State() != StateClosed || server.State() != StateClosed {
		t.Fatalf("after close: %v %v", client.State(), server.State())
	}
}

func TestBulkTransferClean(t *testing.T) {
	l := newTestLink(2, 20*sim.Millisecond, testCfg())
	_, client := l.transfer(t, 50_000, 5*sim.Minute)
	if client.Stats.Retransmits > 0 {
		t.Fatalf("retransmits on a clean link: %d", client.Stats.Retransmits)
	}
}

func TestBulkTransferWithLoss(t *testing.T) {
	l := newTestLink(3, 20*sim.Millisecond, testCfg())
	rng := rand.New(rand.NewSource(4))
	l.Drop = func(pkt *ip6.Packet) bool { return rng.Float64() < 0.05 }
	_, client := l.transfer(t, 30_000, 10*sim.Minute)
	if client.Stats.Retransmits == 0 {
		t.Fatal("no retransmits despite 5% loss")
	}
}

func TestBulkTransferHeavyLossAndReordering(t *testing.T) {
	l := newTestLink(4, 15*sim.Millisecond, testCfg())
	rng := rand.New(rand.NewSource(5))
	l.Drop = func(pkt *ip6.Packet) bool { return rng.Float64() < 0.15 }
	l.Jitter = func() sim.Duration {
		return sim.Duration(rng.Int63n(int64(40 * sim.Millisecond)))
	}
	l.transfer(t, 20_000, 20*sim.Minute)
}

func TestTransferWithoutSACK(t *testing.T) {
	cfg := testCfg()
	cfg.UseSACK = false
	l := newTestLink(5, 20*sim.Millisecond, cfg)
	rng := rand.New(rand.NewSource(6))
	l.Drop = func(pkt *ip6.Packet) bool { return rng.Float64() < 0.08 }
	l.transfer(t, 20_000, 10*sim.Minute)
}

func TestTransferWithoutTimestamps(t *testing.T) {
	cfg := testCfg()
	cfg.UseTimestamps = false
	l := newTestLink(6, 20*sim.Millisecond, cfg)
	rng := rand.New(rand.NewSource(7))
	l.Drop = func(pkt *ip6.Packet) bool { return rng.Float64() < 0.08 }
	l.transfer(t, 20_000, 10*sim.Minute)
}

func TestTransferWithoutDelayedAcks(t *testing.T) {
	cfg := testCfg()
	cfg.UseDelayedAcks = false
	l := newTestLink(7, 20*sim.Millisecond, cfg)
	_, client := l.transfer(t, 20_000, 5*sim.Minute)
	// Without delack, roughly one ACK per data segment.
	if client.Stats.SegsSent == 0 {
		t.Fatal("no segments")
	}
}

func TestTransferZeroCopyAndChainQueue(t *testing.T) {
	cfg := testCfg()
	cfg.ZeroCopySend = true
	cfg.ChainRecvQueue = true
	l := newTestLink(8, 20*sim.Millisecond, cfg)
	rng := rand.New(rand.NewSource(9))
	l.Drop = func(pkt *ip6.Packet) bool { return rng.Float64() < 0.05 }
	l.transfer(t, 30_000, 10*sim.Minute)
}

func TestFastRetransmitOnIsolatedLoss(t *testing.T) {
	// A 4-segment window does not always keep 3 segments in flight
	// behind a loss (the paper's Appendix B observation), so use 8
	// segments here to guarantee three duplicate ACKs.
	cfg := testCfg()
	cfg.SendBufSize = 8 * 408
	cfg.RecvBufSize = 8 * 408
	l := newTestLink(9, 20*sim.Millisecond, cfg)
	dropOnce := true
	l.Drop = func(pkt *ip6.Packet) bool {
		// Drop exactly one data segment mid-stream.
		if dropOnce && len(pkt.Payload) > 200 && l.delivered > 12 {
			dropOnce = false
			return true
		}
		return false
	}
	_, client := l.transfer(t, 40_000, 5*sim.Minute)
	if client.Stats.FastRetransmits == 0 {
		t.Fatalf("isolated loss recovered without fast retransmit: %+v", client.Stats)
	}
	if client.Stats.Timeouts > 0 {
		t.Fatalf("isolated loss caused an RTO (fastrtx=%d)", client.Stats.FastRetransmits)
	}
}

func TestRTORecovery(t *testing.T) {
	l := newTestLink(10, 20*sim.Millisecond, testCfg())
	blackout := false
	l.Drop = func(pkt *ip6.Packet) bool { return blackout }
	var client *Conn
	_ = client
	// Start a transfer, black out the link for 3 seconds mid-way.
	l.eng.Schedule(500*sim.Millisecond, func() { blackout = true })
	l.eng.Schedule(3500*sim.Millisecond, func() { blackout = false })
	_, c := l.transfer(t, 20_000, 5*sim.Minute)
	if c.Stats.Timeouts == 0 {
		t.Fatal("blackout did not trigger an RTO")
	}
}

func TestConnectionAbortsAfterMaxRetransmits(t *testing.T) {
	cfg := testCfg()
	cfg.MaxRetransmits = 4
	l := newTestLink(11, 10*sim.Millisecond, cfg)
	var closedErr error
	l.b.Listen(80, func(c *Conn) {})
	client := l.a.Connect(ip6.AddrFromID(1), 80)
	client.OnClosed = func(err error) { closedErr = err }
	client.OnEstablished = func() {
		client.Write(make([]byte, 500))
		// Total blackout from now on.
		l.Drop = func(pkt *ip6.Packet) bool { return true }
	}
	l.eng.RunUntil(sim.Time(10 * sim.Minute))
	if closedErr != ErrConnTimeout {
		t.Fatalf("close error = %v, want %v (state %v)", closedErr, ErrConnTimeout, client.State())
	}
}

func TestConnectionRefused(t *testing.T) {
	l := newTestLink(12, 10*sim.Millisecond, testCfg())
	var closedErr error
	client := l.a.Connect(ip6.AddrFromID(1), 81) // nothing listening
	client.OnClosed = func(err error) { closedErr = err }
	l.eng.RunUntil(sim.Time(sim.Second))
	if closedErr != ErrConnRefused {
		t.Fatalf("close error = %v, want refused", closedErr)
	}
	if l.b.Stats.RSTsSent == 0 {
		t.Fatal("no RST sent for unmatched SYN")
	}
}

func TestZeroWindowProbing(t *testing.T) {
	l := newTestLink(13, 10*sim.Millisecond, testCfg())
	var server *Conn
	l.b.Listen(80, func(c *Conn) { server = c })
	client := l.a.Connect(ip6.AddrFromID(1), 80)
	// Keep (more than a buffer's worth of) data flowing; the server app
	// reads nothing, so the advertised window must close and probes run.
	toSend := 4*408 + 2000
	sent := 0
	pump := func() {
		for sent < toSend {
			w, _ := client.Write(make([]byte, minInt(512, toSend-sent)))
			if w == 0 {
				return
			}
			sent += w
		}
	}
	client.OnEstablished = pump
	client.OnWritable = pump
	l.eng.RunUntil(sim.Time(30 * sim.Second))
	if server.ReadableBytes() != 4*408 {
		t.Fatalf("server buffered %d, want full buffer", server.ReadableBytes())
	}
	if client.Stats.ZeroWindowProbes == 0 {
		t.Fatalf("no zero-window probes: sent=%d srvReadable=%d sndWnd=%d una=%d nxt=%d max=%d qEnd=%d rexmtArmed=%v persistArmed=%v srvRcvNxt=%d srvWin=%d stats=%+v",
			sent, server.ReadableBytes(), client.sndWnd, client.sndUna, client.sndNxt, client.sndMax, client.queuedEnd,
			client.rexmt.Armed(), client.persist.Armed(), server.rcvNxt, server.rcvQ.Window(), client.Stats)
	}
	// Now the app drains; the window reopens and the rest flows.
	drained := 0
	buf := make([]byte, 1024)
	server.OnReadable = func() {
		for {
			n := server.Read(buf)
			if n == 0 {
				break
			}
			drained += n
		}
	}
	for {
		n := server.Read(buf)
		if n == 0 {
			break
		}
		drained += n
	}
	l.eng.RunUntil(sim.Time(3 * sim.Minute))
	if drained != 4*408+2000 {
		t.Fatalf("drained %d, want %d", drained, 4*408+2000)
	}
}

func TestDelayedAckCoalescing(t *testing.T) {
	l := newTestLink(14, 10*sim.Millisecond, testCfg())
	_, client := l.transfer(t, 40_000, 5*sim.Minute)
	// With delayed ACKs, the receiver should send roughly one ACK per
	// two segments: ACK count well below segment count.
	segs := client.Stats.SegsSent
	// Count server ACKs as segments the client received.
	acks := client.Stats.SegsRecv
	if acks*3 > segs*2+20 {
		t.Fatalf("acks=%d for segs=%d — delayed ACKs not coalescing", acks, segs)
	}
}

func TestECNMarkingReducesWindowWithoutLoss(t *testing.T) {
	cfg := testCfg()
	cfg.UseECN = true
	l := newTestLink(15, 10*sim.Millisecond, cfg)
	mark := 0
	l.CE = func(pkt *ip6.Packet) bool {
		if pkt.ECN() == ip6.ECT0 && len(pkt.Payload) > 200 {
			mark++
			return mark%7 == 0 // mark every 7th data packet
		}
		return false
	}
	_, client := l.transfer(t, 30_000, 5*sim.Minute)
	if client.Stats.ECNCongestionResponses == 0 {
		t.Fatal("CE marks did not trigger ECN congestion responses")
	}
	if client.Stats.Retransmits > 0 {
		t.Fatalf("ECN path retransmitted %d segments on a lossless link", client.Stats.Retransmits)
	}
}

func TestBidirectionalTransfer(t *testing.T) {
	l := newTestLink(16, 15*sim.Millisecond, testCfg())
	const n = 15_000
	up := make([]byte, n)
	down := make([]byte, n)
	rand.New(rand.NewSource(17)).Read(up)
	rand.New(rand.NewSource(18)).Read(down)
	var gotUp, gotDown bytes.Buffer

	l.b.Listen(80, func(c *Conn) {
		sentDown := 0
		pump := func() {
			for sentDown < n {
				w, _ := c.Write(down[sentDown:])
				if w == 0 {
					return
				}
				sentDown += w
			}
		}
		c.OnReadable = func() {
			buf := make([]byte, 4096)
			for {
				r := c.Read(buf)
				if r == 0 {
					break
				}
				gotUp.Write(buf[:r])
			}
		}
		c.OnWritable = pump
		pump()
	})
	client := l.a.Connect(ip6.AddrFromID(1), 80)
	sentUp := 0
	pumpUp := func() {
		for sentUp < n {
			w, _ := client.Write(up[sentUp:])
			if w == 0 {
				return
			}
			sentUp += w
		}
	}
	client.OnEstablished = pumpUp
	client.OnWritable = pumpUp
	client.OnReadable = func() {
		buf := make([]byte, 4096)
		for {
			r := client.Read(buf)
			if r == 0 {
				break
			}
			gotDown.Write(buf[:r])
		}
	}
	l.eng.RunUntil(sim.Time(5 * sim.Minute))
	if !bytes.Equal(gotUp.Bytes(), up) {
		t.Fatalf("uplink corrupted: %d/%d", gotUp.Len(), n)
	}
	if !bytes.Equal(gotDown.Bytes(), down) {
		t.Fatalf("downlink corrupted: %d/%d", gotDown.Len(), n)
	}
}

func TestSimultaneousClose(t *testing.T) {
	l := newTestLink(17, 10*sim.Millisecond, testCfg())
	var server *Conn
	l.b.Listen(80, func(c *Conn) { server = c })
	client := l.a.Connect(ip6.AddrFromID(1), 80)
	l.eng.RunUntil(sim.Time(sim.Second))
	client.Close()
	server.Close()
	l.eng.RunUntil(sim.Time(60 * sim.Second))
	if client.State() != StateClosed || server.State() != StateClosed {
		t.Fatalf("simultaneous close: %v %v", client.State(), server.State())
	}
}

func TestAbortSendsRST(t *testing.T) {
	l := newTestLink(18, 10*sim.Millisecond, testCfg())
	var server *Conn
	var serverErr error
	l.b.Listen(80, func(c *Conn) {
		server = c
		c.OnClosed = func(err error) { serverErr = err }
	})
	client := l.a.Connect(ip6.AddrFromID(1), 80)
	l.eng.RunUntil(sim.Time(sim.Second))
	client.Abort()
	l.eng.RunUntil(sim.Time(2 * sim.Second))
	if server.State() != StateClosed || serverErr != ErrConnReset {
		t.Fatalf("peer after RST: %v err=%v", server.State(), serverErr)
	}
}

func TestChallengeAckOnBlindRST(t *testing.T) {
	l := newTestLink(19, 10*sim.Millisecond, testCfg())
	var server *Conn
	l.b.Listen(80, func(c *Conn) { server = c })
	client := l.a.Connect(ip6.AddrFromID(1), 80)
	l.eng.RunUntil(sim.Time(sim.Second))
	// Inject a blind RST with an in-window but not-exact sequence number.
	rst := &Segment{
		SrcPort: client.localPort,
		DstPort: 80,
		SeqNum:  server.rcvNxt.Add(100),
		Flags:   FlagRST,
	}
	pkt := &ip6.Packet{
		Header: ip6.Header{
			NextHeader: ip6.ProtoTCP, HopLimit: 64,
			Src: ip6.AddrFromID(0), Dst: ip6.AddrFromID(1),
		},
		Payload: rst.Encode(ip6.AddrFromID(0), ip6.AddrFromID(1)),
	}
	l.b.Input(pkt)
	l.eng.RunUntil(sim.Time(2 * sim.Second))
	if server.State() == StateClosed {
		t.Fatal("blind RST killed the connection (RFC 5961 violated)")
	}
	if server.Stats.ChallengeAcks == 0 {
		t.Fatal("no challenge ACK recorded")
	}
}

func TestNagleCoalescesSmallWrites(t *testing.T) {
	l := newTestLink(20, 50*sim.Millisecond, testCfg())
	var server *Conn
	var got bytes.Buffer
	l.b.Listen(80, func(c *Conn) {
		server = c
		c.OnReadable = func() {
			buf := make([]byte, 1024)
			for {
				n := c.Read(buf)
				if n == 0 {
					break
				}
				got.Write(buf[:n])
			}
		}
	})
	client := l.a.Connect(ip6.AddrFromID(1), 80)
	client.OnEstablished = func() {
		// Dribble out 1-byte writes; Nagle must coalesce them.
		var tick func(i int)
		tick = func(i int) {
			if i >= 100 {
				return
			}
			client.Write([]byte{byte(i)})
			l.eng.Schedule(time1ms, func() { tick(i + 1) })
		}
		tick(0)
	}
	l.eng.RunUntil(sim.Time(30 * sim.Second))
	if got.Len() != 100 {
		t.Fatalf("received %d bytes", got.Len())
	}
	// Far fewer data segments than writes.
	if server.Stats.SegsRecv > 60 {
		t.Fatalf("Nagle sent %d segments for 100 one-byte writes", server.Stats.SegsRecv)
	}
}

const time1ms = sim.Millisecond

func TestExpectingAckSignal(t *testing.T) {
	l := newTestLink(21, 10*sim.Millisecond, testCfg())
	transitions := []bool{}
	l.a.OnExpectingChange = func(on bool) { transitions = append(transitions, on) }
	l.transfer(t, 5000, sim.Minute)
	if len(transitions) < 2 || transitions[0] != true || transitions[len(transitions)-1] != false {
		t.Fatalf("expecting-ack transitions: %v", transitions)
	}
}

func TestHeaderPredictionCounters(t *testing.T) {
	l := newTestLink(22, 10*sim.Millisecond, testCfg())
	_, client := l.transfer(t, 40_000, 5*sim.Minute)
	if client.Stats.PredictedAcks == 0 {
		t.Fatal("no predicted ACKs on a clean bulk transfer")
	}
}
