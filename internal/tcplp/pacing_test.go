package tcplp

import (
	"math/rand"
	"testing"

	"tcplp/internal/ip6"
	"tcplp/internal/sim"
	"tcplp/internal/tcplp/cc"
)

// recordSendTimes wraps a stack's output hook and records the send time
// of every data-bearing segment.
func recordSendTimes(l *testLink, s *Stack) *[]sim.Time {
	times := &[]sim.Time{}
	inner := s.Output
	s.Output = func(pkt *ip6.Packet) {
		if seg, err := DecodeSegment(pkt.Src, pkt.Dst, pkt.Payload); err == nil && len(seg.Payload) > 0 {
			*times = append(*times, l.eng.Now())
		}
		inner(pkt)
	}
	return times
}

// maxBurst returns the longest run of consecutive sends closer together
// than gap ("back-to-back" at simulation resolution).
func maxBurst(times []sim.Time, gap sim.Duration) int {
	run, worst := 1, 1
	for i := 1; i < len(times); i++ {
		if times[i].Sub(times[i-1]) < gap {
			run++
		} else {
			run = 1
		}
		if run > worst {
			worst = run
		}
	}
	return worst
}

// The acceptance bar for the pacing subsystem: a paced BBR transfer
// never emits a burst larger than 2 data segments back-to-back — the
// send timer spreads releases across the RTT instead of letting the
// window go out as one ACK-clocked train.
func TestBBRPacingSpreadsSends(t *testing.T) {
	cfg := testCfg()
	cfg.Variant = cc.Bbr
	cfg.SendBufSize = 8 * 408
	cfg.RecvBufSize = 8 * 408
	l := newTestLink(90, 30*sim.Millisecond, cfg)
	times := recordSendTimes(l, l.a)
	l.transfer(t, 30_000, 5*sim.Minute)
	if len(*times) < 30_000/408 {
		t.Fatalf("only %d data segments recorded", len(*times))
	}
	// The slowest plausible pacing interval on this link is bounded well
	// above 500 µs (≥ 2.5 ms at the peak windowed bandwidth), so any two
	// sends within 500 µs are burst-clocked, not paced.
	if b := maxBurst(*times, 500*sim.Microsecond); b > 2 {
		t.Fatalf("paced BBR sent a burst of %d back-to-back segments", b)
	}
}

// The same scenario under an ACK-clocked variant DOES burst — proving
// the assertion above has teeth and that pacing is what spreads the
// sends, not the link.
func TestAckClockedNewRenoBursts(t *testing.T) {
	cfg := testCfg()
	cfg.SendBufSize = 8 * 408
	cfg.RecvBufSize = 8 * 408
	l := newTestLink(90, 30*sim.Millisecond, cfg)
	times := recordSendTimes(l, l.a)
	l.transfer(t, 30_000, 5*sim.Minute)
	if b := maxBurst(*times, 500*sim.Microsecond); b <= 2 {
		t.Fatalf("unpaced NewReno max burst = %d; the pacing assertion would be vacuous", b)
	}
}

// Pacing must hold under loss and recovery: the paced transfer still
// completes and the pacer never deadlocks the connection.
func TestBBRPacedTransferWithLoss(t *testing.T) {
	cfg := testCfg()
	cfg.Variant = cc.Bbr
	cfg.SendBufSize = 8 * 408
	cfg.RecvBufSize = 8 * 408
	l := newTestLink(91, 20*sim.Millisecond, cfg)
	rng := rand.New(rand.NewSource(92))
	l.Drop = func(pkt *ip6.Packet) bool { return rng.Float64() < 0.1 }
	_, client := l.transfer(t, 25_000, 10*sim.Minute)
	if client.Stats.Retransmits == 0 {
		t.Fatal("no retransmits despite 10% loss")
	}
}

// ACK-clocked variants must never touch the pacing machinery: the rate
// is 0 and the release clock stays unarmed, keeping their send timing
// bit-identical to the pre-pacing engine (the NewReno golden trace pins
// the full trajectory; this pins the mechanism).
func TestPacingInertForAckClockedVariants(t *testing.T) {
	for _, v := range []cc.Variant{cc.NewReno, cc.Cubic, cc.Westwood} {
		cfg := testCfg()
		cfg.Variant = v
		l := newTestLink(93, 10*sim.Millisecond, cfg)
		_, client := l.transfer(t, 10_000, 2*sim.Minute)
		if client.pacingRate() != 0 {
			t.Fatalf("%v reports a pacing rate", v)
		}
		if client.paceNext != 0 || client.paceTimer.Armed() {
			t.Fatalf("%v advanced the pacing clock", v)
		}
	}
}

// Zero-gap idle credit: after a pause longer than the pacing interval,
// the release clock restarts from now — it must not have banked credit
// that would let a burst through.
func TestPacingAccumulatesNoIdleCredit(t *testing.T) {
	cfg := testCfg()
	cfg.Variant = cc.Bbr
	l := newTestLink(94, 25*sim.Millisecond, cfg)
	var server *Conn
	l.b.Listen(80, func(c *Conn) {
		server = c
		c.OnReadable = func() {
			buf := make([]byte, 2048)
			for c.Read(buf) > 0 {
			}
		}
	})
	client := l.a.Connect(ip6.AddrFromID(1), 80)
	times := recordSendTimes(l, l.a)
	client.OnEstablished = func() { client.Write(make([]byte, 3*408)) }
	l.eng.RunUntil(sim.Time(5 * sim.Second))
	// Idle for 10 s, then write a full window at once.
	l.eng.Schedule(10*sim.Second, func() { client.Write(make([]byte, 4*408)) })
	l.eng.RunUntil(sim.Time(60 * sim.Second))
	if server == nil || server.Stats.BytesRecv != 7*408 {
		t.Fatalf("transfer incomplete: %+v", server.Stats)
	}
	if b := maxBurst(*times, 500*sim.Microsecond); b > 2 {
		t.Fatalf("post-idle write burst of %d segments — idle time banked pacing credit", b)
	}
}
