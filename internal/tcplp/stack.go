package tcplp

import (
	"fmt"

	"tcplp/internal/ip6"
	"tcplp/internal/obs"
	"tcplp/internal/sim"
	"tcplp/internal/tcplp/cc"
)

// StackStats counts stack-level events.
type StackStats struct {
	SegsIn        uint64
	BadChecksum   uint64
	NoSocket      uint64
	RSTsSent      uint64
	ConnsAccepted uint64
	ConnsOpened   uint64
}

type connKey struct {
	remote       ip6.Addr
	rport, lport uint16
}

// Listener is a passive socket (§4.1): it holds only a port and a
// callback — far smaller than an active socket, which is why the paper
// distinguishes the two at the protocol level.
type Listener struct {
	stack *Stack
	port  uint16
	// OnAccept is invoked when a connection completes its handshake.
	OnAccept func(c *Conn)
	// ConfigFor, if set, customizes the Config for an incoming
	// connection; nil uses the stack default.
	ConfigFor func() Config
}

// Close stops accepting new connections on the port.
func (l *Listener) Close() { delete(l.stack.listeners, l.port) }

// Stack is one node's TCP protocol instance.
type Stack struct {
	eng  *sim.Engine
	addr ip6.Addr
	cfg  Config

	// Output transmits an IPv6 packet toward its destination; the node
	// wiring (internal/stack) supplies it.
	Output func(pkt *ip6.Packet)

	// PoolEncode recycles segment wire buffers through a stack-local
	// free list instead of allocating one per segment. Only safe when
	// Output consumes the packet's payload before returning — the node
	// transmit path does (fragmentation, local decode, and the wire all
	// copy); test shims that schedule delayed delivery of the same
	// packet must leave this off (the default).
	PoolEncode bool
	encFree    [][]byte

	// OnExpectingChange fires when the stack starts/stops having any
	// connection with unacknowledged data — the duty-cycling hint wire
	// (§9.2).
	OnExpectingChange func(expecting bool)

	conns     map[connKey]*Conn
	listeners map[uint16]*Listener
	expecting map[*Conn]bool
	nextPort  uint16

	Stats StackStats

	// Trace/TraceNode, when Trace is non-nil, emit per-segment obs
	// events tagged with the owning node's id.
	Trace     *obs.Trace
	TraceNode int
}

// NewStack creates a TCP instance bound to addr. An unknown
// cfg.Variant is a configuration programming error and panics here, at
// setup time, rather than when the first connection is made.
func NewStack(eng *sim.Engine, addr ip6.Addr, cfg Config) *Stack {
	if !cc.Valid(cfg.Variant) {
		panic(fmt.Sprintf("tcplp: unknown congestion-control variant %q", cfg.Variant))
	}
	// The demux maps initialise lazily at their write sites so a node
	// that never opens a socket — most of a 10k-node city — carries no
	// map headers (nil maps read fine).
	return &Stack{
		eng:      eng,
		addr:     addr,
		cfg:      cfg,
		nextPort: 49152,
	}
}

// Engine returns the stack's simulation engine.
func (s *Stack) Engine() *sim.Engine { return s.eng }

// Addr returns the stack's IPv6 address.
func (s *Stack) Addr() ip6.Addr { return s.addr }

// Config returns the stack's default connection configuration.
func (s *Stack) Config() Config { return s.cfg }

// tsNow is the RFC 7323 timestamp clock (1 ms granularity).
func (s *Stack) tsNow() uint32 {
	return uint32(int64(s.eng.Now())/int64(sim.Millisecond)) + 1
}

// Listen opens a passive socket on port.
func (s *Stack) Listen(port uint16, onAccept func(*Conn)) *Listener {
	l := &Listener{stack: s, port: port, OnAccept: onAccept}
	if s.listeners == nil {
		s.listeners = map[uint16]*Listener{}
	}
	s.listeners[port] = l
	return l
}

// Connect opens an active connection to raddr:rport with the stack's
// default configuration.
func (s *Stack) Connect(raddr ip6.Addr, rport uint16) *Conn {
	return s.ConnectConfig(raddr, rport, s.cfg)
}

// ConnectConfig opens an active connection with an explicit Config.
func (s *Stack) ConnectConfig(raddr ip6.Addr, rport uint16, cfg Config) *Conn {
	c := newConn(s, cfg)
	c.localAddr = s.addr
	c.remoteAddr = raddr
	c.localPort = s.allocPort()
	c.remotePort = rport
	s.addConn(connKey{raddr, rport, c.localPort}, c)
	s.Stats.ConnsOpened++
	c.connect()
	return c
}

func (s *Stack) allocPort() uint16 {
	for {
		s.nextPort++
		if s.nextPort < 49152 {
			s.nextPort = 49152
		}
		free := true
		for k := range s.conns {
			if k.lport == s.nextPort {
				free = false
				break
			}
		}
		if free {
			return s.nextPort
		}
	}
}

// Input feeds a received IPv6 packet into the TCP layer.
func (s *Stack) Input(pkt *ip6.Packet) {
	if pkt.NextHeader != ip6.ProtoTCP || pkt.Dst != s.addr {
		return
	}
	s.Stats.SegsIn++
	seg, err := DecodeSegment(pkt.Src, pkt.Dst, pkt.Payload)
	if err != nil {
		s.Stats.BadChecksum++
		return
	}
	seg.JID = pkt.JID
	ce := pkt.ECN() == ip6.CE
	key := connKey{pkt.Src, seg.SrcPort, seg.DstPort}
	if c, ok := s.conns[key]; ok {
		c.input(seg, ce)
		return
	}
	// No connection: a SYN to a listening port spawns one.
	if l, ok := s.listeners[seg.DstPort]; ok &&
		seg.Flags.Has(FlagSYN) && !seg.Flags.Has(FlagACK) && !seg.Flags.Has(FlagRST) {
		cfg := s.cfg
		if l.ConfigFor != nil {
			cfg = l.ConfigFor()
			// A dynamic per-connection config is only validated here, on
			// the packet path: refuse the connection rather than panic
			// mid-simulation.
			if !cc.Valid(cfg.Variant) {
				s.Stats.NoSocket++
				s.sendRSTFor(pkt.Src, seg)
				return
			}
		}
		c := newConn(s, cfg)
		c.localAddr = s.addr
		c.remoteAddr = pkt.Src
		c.localPort = seg.DstPort
		c.remotePort = seg.SrcPort
		s.addConn(key, c)
		c.acceptSyn(seg)
		return
	}
	s.Stats.NoSocket++
	if !seg.Flags.Has(FlagRST) {
		s.sendRSTFor(pkt.Src, seg)
	}
}

// sendRSTFor answers a segment for which no socket exists (RFC 793).
func (s *Stack) sendRSTFor(src ip6.Addr, seg *Segment) {
	s.Stats.RSTsSent++
	rst := &Segment{
		SrcPort: seg.DstPort,
		DstPort: seg.SrcPort,
		Flags:   FlagRST,
	}
	if seg.Flags.Has(FlagACK) {
		rst.SeqNum = seg.AckNum
	} else {
		rst.Flags |= FlagACK
		rst.AckNum = seg.SeqNum.Add(seg.Len())
	}
	s.sendSegment(s.addr, src, rst, ip6.NotECT)
}

// sendSegment wraps a TCP segment in an IPv6 packet and transmits it.
func (s *Stack) sendSegment(src, dst ip6.Addr, seg *Segment, ecn ip6.ECN) {
	var payload []byte
	if s.PoolEncode {
		var buf []byte
		if n := len(s.encFree); n > 0 {
			buf, s.encFree = s.encFree[n-1], s.encFree[:n-1]
		}
		payload = seg.AppendEncode(buf, src, dst)
	} else {
		payload = seg.Encode(src, dst)
	}
	pkt := &ip6.Packet{
		Header: ip6.Header{
			NextHeader: ip6.ProtoTCP,
			HopLimit:   ip6.DefaultHopLimit,
			Src:        src,
			Dst:        dst,
		},
		Payload: payload,
	}
	pkt.SetECN(ecn)
	pkt.PayloadLen = uint16(len(pkt.Payload))
	pkt.JID = seg.JID
	if s.Output != nil {
		s.Output(pkt)
	}
	if s.PoolEncode {
		s.encFree = append(s.encFree, payload[:0])
	}
}

func (s *Stack) addConn(key connKey, c *Conn) {
	if s.conns == nil {
		s.conns = map[connKey]*Conn{}
	}
	s.conns[key] = c
}

// removeConn drops a closed connection's demux entry.
func (s *Stack) removeConn(c *Conn) {
	delete(s.conns, connKey{c.remoteAddr, c.remotePort, c.localPort})
}

// notifyAccept fires the listener callback for a freshly established
// passive connection.
func (s *Stack) notifyAccept(c *Conn) {
	if l, ok := s.listeners[c.localPort]; ok && l.OnAccept != nil {
		s.Stats.ConnsAccepted++
		l.OnAccept(c)
	}
}

// noteExpecting tracks which connections have unACKed data and fires
// OnExpectingChange on 0↔1 transitions of that set.
func (s *Stack) noteExpecting(c *Conn, on bool) {
	before := len(s.expecting) > 0
	if on {
		if s.expecting == nil {
			s.expecting = map[*Conn]bool{}
		}
		s.expecting[c] = true
	} else {
		delete(s.expecting, c)
	}
	after := len(s.expecting) > 0
	if before != after && s.OnExpectingChange != nil {
		s.OnExpectingChange(after)
	}
}

// Conns returns the number of active connections (diagnostics).
func (s *Stack) Conns() int { return len(s.conns) }
