package tcplp

import "math/bits"

// ReceiveQueue buffers inbound data and performs out-of-order reassembly.
// Offsets passed to Write are relative to rcv.nxt (0 = next expected
// byte). Two implementations back the §4.3.2 discussion: RecvBuffer is
// the paper's in-place reassembly queue (Fig. 1b); ChainRecvBuffer is an
// mbuf-chain-style queue kept as an ablation baseline.
type ReceiveQueue interface {
	// Capacity is the fixed buffer size.
	Capacity() int
	// Readable is the number of in-sequence bytes awaiting the app.
	Readable() int
	// Window is the receive window to advertise: Capacity − Readable.
	// Out-of-order bytes do not shrink it — they are stored in place,
	// inside the space the window already promises (Fig. 1).
	Window() int
	// OutOfOrder is the number of buffered out-of-sequence bytes.
	OutOfOrder() int
	// Write stores data at sequence offset off (relative to rcv.nxt,
	// off ≥ 0), clipped to the window. It returns how far rcv.nxt may
	// advance: non-zero only when off == 0 or the write fills the gap.
	Write(off int, data []byte) (advanced int)
	// Read copies up to len(p) in-sequence bytes to the app.
	Read(p []byte) int
	// SACKRanges lists up to max out-of-order ranges as offsets
	// [start, end) relative to rcv.nxt, most recently useful first.
	SACKRanges(max int) [][2]int
}

// RecvBuffer is the in-place reassembly queue: a flat circular buffer
// whose space past the in-sequence data holds out-of-order segments at
// their final positions, with a bitmap recording which bytes are present
// (Fig. 1b). Buffer space is reserved once, at construction, for
// deterministic memory use on a constrained node.
type RecvBuffer struct {
	buf      []byte
	bits     []uint64
	start    int // circular index of the first readable byte
	readable int
	ooo      int
}

// NewRecvBuffer returns an in-place reassembly queue of the given
// capacity.
func NewRecvBuffer(capacity int) *RecvBuffer {
	return &RecvBuffer{
		buf:  make([]byte, capacity),
		bits: make([]uint64, (capacity+63)/64),
	}
}

func (b *RecvBuffer) bit(i int) bool  { return b.bits[i/64]&(1<<(i%64)) != 0 }
func (b *RecvBuffer) idx(off int) int { return (b.start + off) % len(b.buf) }

// setRange sets bits [lo, hi) (linear positions, no wrap) a word at a
// time and returns how many were previously clear.
func (b *RecvBuffer) setRange(lo, hi int) int {
	fresh := 0
	for lo < hi {
		w, r := lo/64, lo%64
		n := 64 - r
		if n > hi-lo {
			n = hi - lo
		}
		mask := (^uint64(0) >> (64 - n)) << r
		old := b.bits[w]
		fresh += n - bits.OnesCount64(old&mask)
		b.bits[w] = old | mask
		lo += n
	}
	return fresh
}

// clearRange clears bits [lo, hi) (linear positions, no wrap).
func (b *RecvBuffer) clearRange(lo, hi int) {
	for lo < hi {
		w, r := lo/64, lo%64
		n := 64 - r
		if n > hi-lo {
			n = hi - lo
		}
		b.bits[w] &^= (^uint64(0) >> (64 - n)) << r
		lo += n
	}
}

// scanFrom returns the first offset in [i, win) whose presence bit
// matches want, or win if none, walking the bitmap a word at a time.
// Offsets are relative to the in-sequence frontier.
func (b *RecvBuffer) scanFrom(i, win int, want bool) int {
	for i < win {
		p := b.idx(b.readable + i)
		r := p % 64
		word := b.bits[p/64] >> r
		if !want {
			word = ^word
		}
		// Stay inside this word, this side of the circular wrap, and
		// inside the window: past any of those the bits belong to other
		// positions (the tail word's spare bits, or the readable region).
		span := 64 - r
		if m := len(b.buf) - p; span > m {
			span = m
		}
		if rem := win - i; span > rem {
			span = rem
		}
		if tz := bits.TrailingZeros64(word); tz < span {
			return i + tz
		}
		i += span
	}
	return win
}

// Capacity implements ReceiveQueue.
func (b *RecvBuffer) Capacity() int { return len(b.buf) }

// Readable implements ReceiveQueue.
func (b *RecvBuffer) Readable() int { return b.readable }

// Window implements ReceiveQueue.
func (b *RecvBuffer) Window() int { return len(b.buf) - b.readable }

// OutOfOrder implements ReceiveQueue.
func (b *RecvBuffer) OutOfOrder() int { return b.ooo }

// Write implements ReceiveQueue. Data at offset off lands at circular
// position start+readable+off; bytes beyond the advertised window are
// dropped (the peer violated the window).
func (b *RecvBuffer) Write(off int, data []byte) int {
	if off < 0 {
		// Partially duplicate segment: skip the bytes already received.
		if -off >= len(data) {
			return 0
		}
		data = data[-off:]
		off = 0
	}
	win := b.Window()
	if off >= win {
		return 0
	}
	if off+len(data) > win {
		data = data[:win-off]
	}
	// Land the bytes at their final circular positions (at most one wrap)
	// and mark them present, counting only the genuinely new ones.
	p0 := b.idx(b.readable + off)
	n1 := len(data)
	if n1 > len(b.buf)-p0 {
		n1 = len(b.buf) - p0
	}
	copy(b.buf[p0:], data[:n1])
	copy(b.buf, data[n1:])
	b.ooo += b.setRange(p0, p0+n1) + b.setRange(0, len(data)-n1)
	// Advance the in-sequence frontier over any contiguous present bytes,
	// a word-sized run at a time.
	advanced := 0
	for b.readable < len(b.buf) {
		p := b.idx(b.readable)
		run := bits.TrailingZeros64(^(b.bits[p/64] >> (p % 64)))
		if m := len(b.buf) - p; run > m {
			run = m
		}
		if rem := len(b.buf) - b.readable; run > rem {
			run = rem
		}
		if run == 0 {
			break
		}
		b.readable += run
		advanced += run
	}
	b.ooo -= advanced
	return advanced
}

// Read implements ReceiveQueue.
func (b *RecvBuffer) Read(p []byte) int {
	n := len(p)
	if n > b.readable {
		n = b.readable
	}
	n1 := n
	if n1 > len(b.buf)-b.start {
		n1 = len(b.buf) - b.start
	}
	copy(p[:n1], b.buf[b.start:b.start+n1])
	copy(p[n1:n], b.buf[:n-n1])
	b.clearRange(b.start, b.start+n1)
	b.clearRange(0, n-n1)
	b.start = b.idx(n)
	b.readable -= n
	return n
}

// SACKRanges implements ReceiveQueue by scanning the presence bitmap
// beyond the in-sequence frontier.
func (b *RecvBuffer) SACKRanges(max int) [][2]int {
	var out [][2]int
	win := b.Window()
	i := 1 // offset 0 cannot be present (it would have advanced)
	for i < win && len(out) < max {
		start := b.scanFrom(i, win, true)
		if start >= win {
			break
		}
		i = b.scanFrom(start, win, false)
		out = append(out, [2]int{start, i})
	}
	return out
}

// ChainRecvBuffer is the mbuf-chain-style reassembly queue: out-of-order
// segments are kept as separate allocations in a sorted list and spliced
// when the gap fills. It exists to quantify what the in-place design
// saves (ablation bench); FreeBSD's dynamic-buffer risks it carries
// (nondeterministic memory, §4.3.2) do not bite in a Go simulation.
type ChainRecvBuffer struct {
	capacity int
	inseq    []byte
	segs     []chainSeg // sorted by off, non-overlapping
}

type chainSeg struct {
	off  int
	data []byte
}

// NewChainRecvBuffer returns a chain-based reassembly queue.
func NewChainRecvBuffer(capacity int) *ChainRecvBuffer {
	return &ChainRecvBuffer{capacity: capacity}
}

// Capacity implements ReceiveQueue.
func (b *ChainRecvBuffer) Capacity() int { return b.capacity }

// Readable implements ReceiveQueue.
func (b *ChainRecvBuffer) Readable() int { return len(b.inseq) }

// Window implements ReceiveQueue.
func (b *ChainRecvBuffer) Window() int { return b.capacity - len(b.inseq) }

// OutOfOrder implements ReceiveQueue.
func (b *ChainRecvBuffer) OutOfOrder() int {
	n := 0
	for _, s := range b.segs {
		n += len(s.data)
	}
	return n
}

// Write implements ReceiveQueue.
func (b *ChainRecvBuffer) Write(off int, data []byte) int {
	if off < 0 {
		if -off >= len(data) {
			return 0
		}
		data = data[-off:]
		off = 0
	}
	win := b.Window()
	if off >= win || len(data) == 0 {
		return 0
	}
	if off+len(data) > win {
		data = data[:win-off]
	}
	b.insert(off, append([]byte(nil), data...))
	// After the merge at most one segment can sit at offset 0 (adjacent
	// segments were coalesced).
	advanced := 0
	if len(b.segs) > 0 && b.segs[0].off == 0 {
		s := b.segs[0]
		b.segs = b.segs[1:]
		b.inseq = append(b.inseq, s.data...)
		advanced = len(s.data)
		b.shift(advanced)
	}
	return advanced
}

// shift rebases segment offsets after rcv.nxt advanced by n.
func (b *ChainRecvBuffer) shift(n int) {
	for i := range b.segs {
		b.segs[i].off -= n
	}
}

// insert merges [off, off+len(data)) into the sorted, non-overlapping
// segment list, coalescing with any overlapping or adjacent segments.
func (b *ChainRecvBuffer) insert(off int, data []byte) {
	end := off + len(data)
	var out []chainSeg
	i := 0
	// Segments strictly before the new range (not even adjacent).
	for ; i < len(b.segs) && b.segs[i].off+len(b.segs[i].data) < off; i++ {
		out = append(out, b.segs[i])
	}
	// Absorb every segment overlapping or touching [off, end).
	for ; i < len(b.segs) && b.segs[i].off <= end; i++ {
		s := b.segs[i]
		sEnd := s.off + len(s.data)
		if s.off < off {
			data = append(append([]byte(nil), s.data[:off-s.off]...), data...)
			off = s.off
		}
		if sEnd > end {
			data = append(data, s.data[len(s.data)-(sEnd-end):]...)
			end = sEnd
		}
	}
	out = append(out, chainSeg{off, data})
	out = append(out, b.segs[i:]...)
	b.segs = out
}

// Read implements ReceiveQueue.
func (b *ChainRecvBuffer) Read(p []byte) int {
	n := copy(p, b.inseq)
	b.inseq = b.inseq[n:]
	return n
}

// SACKRanges implements ReceiveQueue.
func (b *ChainRecvBuffer) SACKRanges(max int) [][2]int {
	var out [][2]int
	for _, s := range b.segs {
		if len(out) == max {
			break
		}
		out = append(out, [2]int{s.off, s.off + len(s.data)})
	}
	return out
}
