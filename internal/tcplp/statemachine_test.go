package tcplp

import (
	"bytes"
	"testing"

	"tcplp/internal/ip6"
	"tcplp/internal/sim"
)

// TestHalfCloseDataFlow: after the client sends FIN, the server may keep
// sending data (half-close); the client must keep ACKing and receiving.
func TestHalfCloseDataFlow(t *testing.T) {
	l := newTestLink(40, 10*sim.Millisecond, testCfg())
	var server *Conn
	l.b.Listen(80, func(c *Conn) { server = c })
	client := l.a.Connect(ip6.AddrFromID(1), 80)
	var got bytes.Buffer
	client.OnReadable = func() {
		buf := make([]byte, 1024)
		for {
			n := client.Read(buf)
			if n == 0 {
				break
			}
			got.Write(buf[:n])
		}
	}
	l.eng.RunUntil(sim.Time(sim.Second))
	client.Close() // client→server FIN; client enters FIN_WAIT
	l.eng.RunUntil(sim.Time(2 * sim.Second))
	if client.State() != StateFinWait2 {
		t.Fatalf("client state = %v, want FIN_WAIT_2", client.State())
	}
	if server.State() != StateCloseWait {
		t.Fatalf("server state = %v, want CLOSE_WAIT", server.State())
	}
	// Server streams data into the half-closed connection.
	payload := make([]byte, 3000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	sent := 0
	pump := func() {
		for sent < len(payload) {
			n, err := server.Write(payload[sent:])
			if err != nil {
				t.Fatalf("half-close write: %v", err)
			}
			if n == 0 {
				return
			}
			sent += n
		}
		server.Close()
	}
	server.OnWritable = pump
	pump()
	l.eng.RunUntil(sim.Time(60 * sim.Second))
	if !bytes.Equal(got.Bytes(), payload) {
		t.Fatalf("half-close delivery: %d/%d bytes", got.Len(), len(payload))
	}
	if client.State() != StateClosed || server.State() != StateClosed {
		t.Fatalf("final states: %v / %v", client.State(), server.State())
	}
}

// TestMSSNegotiation: the sender must clamp its segments to the peer's
// advertised MSS.
func TestMSSNegotiation(t *testing.T) {
	cfgSmall := testCfg()
	cfgSmall.MSS = 100
	eng := sim.NewEngine(41)
	a := NewStack(eng, ip6.AddrFromID(0), testCfg()) // MSS 408
	b := NewStack(eng, ip6.AddrFromID(1), cfgSmall)  // MSS 100
	maxSeen := 0
	fwd := func(to *Stack) func(*ip6.Packet) {
		return func(pkt *ip6.Packet) {
			if seg, err := DecodeSegment(pkt.Src, pkt.Dst, pkt.Payload); err == nil {
				if len(seg.Payload) > maxSeen {
					maxSeen = len(seg.Payload)
				}
			}
			eng.Schedule(10*sim.Millisecond, func() { to.Input(pkt) })
		}
	}
	a.Output = fwd(b)
	b.Output = fwd(a)
	b.Listen(80, func(c *Conn) {
		c.OnReadable = func() {
			buf := make([]byte, 4096)
			for c.Read(buf) > 0 {
			}
		}
	})
	client := a.Connect(ip6.AddrFromID(1), 80)
	client.OnEstablished = func() { client.Write(make([]byte, 1500)) }
	eng.RunUntil(sim.Time(10 * sim.Second))
	if maxSeen > 100 {
		t.Fatalf("segment of %d bytes exceeds peer MSS 100", maxSeen)
	}
	if client.effMSS() != 100 {
		t.Fatalf("effective MSS = %d", client.effMSS())
	}
}

// TestWindowUpdateAfterRead: a receiver whose app drains a previously
// full buffer must proactively announce the reopened window.
func TestWindowUpdateAfterRead(t *testing.T) {
	l := newTestLink(42, 10*sim.Millisecond, testCfg())
	var server *Conn
	l.b.Listen(80, func(c *Conn) { server = c })
	client := l.a.Connect(ip6.AddrFromID(1), 80)
	toSend := 4 * 408 * 3
	sent := 0
	pump := func() {
		for sent < toSend {
			n, _ := client.Write(make([]byte, 512))
			if n == 0 {
				return
			}
			sent += n
		}
	}
	client.OnEstablished = pump
	client.OnWritable = pump
	// Server app reads nothing until t=5s: the window closes.
	l.eng.RunUntil(sim.Time(5 * sim.Second))
	if client.sndWnd != 0 {
		t.Fatalf("window = %d, want 0 with an idle reader", client.sndWnd)
	}
	// Drain: the window-update ACK must restart the flow without waiting
	// for a probe.
	buf := make([]byte, 1<<16)
	server.Read(buf)
	received := server.Stats.BytesRecv
	l.eng.RunUntil(sim.Time(8 * sim.Second))
	if server.Stats.BytesRecv <= received {
		t.Fatal("flow did not resume after window reopened")
	}
}

// TestListenerConfigFor: per-connection configuration override on accept.
func TestListenerConfigFor(t *testing.T) {
	l := newTestLink(43, 10*sim.Millisecond, testCfg())
	var server *Conn
	lst := l.b.Listen(80, func(c *Conn) { server = c })
	custom := testCfg()
	custom.RecvBufSize = 9 * 408
	lst.ConfigFor = func() Config { return custom }
	l.a.Connect(ip6.AddrFromID(1), 80)
	l.eng.RunUntil(sim.Time(sim.Second))
	if server == nil || server.rcvQ.Capacity() != 9*408 {
		t.Fatalf("listener config override not applied")
	}
}

// TestListenerClose: a closed listener refuses new connections with RST.
func TestListenerClose(t *testing.T) {
	l := newTestLink(44, 10*sim.Millisecond, testCfg())
	lst := l.b.Listen(80, func(c *Conn) {})
	lst.Close()
	var closedErr error
	client := l.a.Connect(ip6.AddrFromID(1), 80)
	client.OnClosed = func(err error) { closedErr = err }
	l.eng.RunUntil(sim.Time(2 * sim.Second))
	if closedErr != ErrConnRefused {
		t.Fatalf("connect to closed listener: %v", closedErr)
	}
}

// TestWriteAfterCloseRejected: the API contract around Close.
func TestWriteAfterCloseRejected(t *testing.T) {
	l := newTestLink(45, 10*sim.Millisecond, testCfg())
	l.b.Listen(80, func(c *Conn) {})
	client := l.a.Connect(ip6.AddrFromID(1), 80)
	l.eng.RunUntil(sim.Time(sim.Second))
	client.Close()
	// Depending on whether the FIN already left (FIN_WAIT_1) or is still
	// queued, the error differs; both reject the write.
	if _, err := client.Write([]byte("late")); err != ErrWriteAfterFin && err != ErrConnClosed {
		t.Fatalf("write after close: %v", err)
	}
}

// persistScenario drives a sender into the zero-window persist path with
// a FIN queued behind undeliverable data: the app fills the peer's
// receive buffer exactly, writes one more byte (which can never fit),
// and closes. The receiver app reads nothing until the test drains it.
func persistScenario(t *testing.T, seed int64) (*testLink, *Conn, *Conn) {
	t.Helper()
	l := newTestLink(seed, 10*sim.Millisecond, testCfg())
	var server *Conn
	l.b.Listen(80, func(c *Conn) { server = c })
	client := l.a.Connect(ip6.AddrFromID(1), 80)
	total := 4*408 + 1
	sent := 0
	pump := func() {
		for sent < total {
			n, err := client.Write(make([]byte, minInt(512, total-sent)))
			if err != nil {
				t.Fatalf("write: %v", err)
			}
			if n == 0 {
				return
			}
			sent += n
		}
		if !client.finQueued {
			client.Close()
		}
	}
	client.OnEstablished = pump
	client.OnWritable = pump
	l.eng.RunUntil(sim.Time(2 * sim.Second))
	if server == nil || client.sndWnd != 0 {
		t.Fatalf("scenario setup: server=%v sndWnd=%d", stateOf(server), client.sndWnd)
	}
	return l, client, server
}

// TestPersistFinProbe: with the peer's window closed and the stream
// ending in <probe byte, FIN>, the persist timer must drive progress —
// first the one-byte data probe, then the FIN-only probe once snd.nxt
// reaches the end of the stream — and those probe retransmissions must
// be visible in the stats.
func TestPersistFinProbe(t *testing.T) {
	l, client, _ := persistScenario(t, 47)
	finSends := 0
	inner := l.a.Output
	l.a.Output = func(pkt *ip6.Packet) {
		if seg, err := DecodeSegment(pkt.Src, pkt.Dst, pkt.Payload); err == nil &&
			seg.Flags.Has(FlagFIN) {
			finSends++
		}
		inner(pkt)
	}
	l.eng.RunUntil(sim.Time(30 * sim.Second))
	if client.Stats.ZeroWindowProbes < 2 {
		t.Fatalf("zero-window probes = %d, want data probe + FIN probe(s): %+v",
			client.Stats.ZeroWindowProbes, client.Stats)
	}
	if finSends == 0 {
		t.Fatal("FIN never probed through the closed window")
	}
	if client.State() != StateFinWait1 {
		t.Fatalf("prober state = %v, want FIN_WAIT_1 while unacknowledged", client.State())
	}
	if client.Stats.Retransmits == 0 {
		t.Fatal("persist-probe retransmissions uncounted")
	}
}

// TestPersistRexmtExclusivity: while probing a zero window with nothing
// deliverable in flight, the persist timer replaces the retransmission
// timer (BSD rexmt/persist exclusivity) — retransmitting into a closed
// window could only back off to a spurious abort.
func TestPersistRexmtExclusivity(t *testing.T) {
	l, client, _ := persistScenario(t, 48)
	// Sample between the first probe (≈0.5 s after the window closed) and
	// the dup-ACK threshold that re-enters ordinary recovery.
	var persistArmed, rexmtArmed, probed bool
	l.eng.Schedule(1200*sim.Millisecond, func() {
		persistArmed = client.persist.Armed()
		rexmtArmed = client.rexmt.Armed()
		probed = client.Stats.ZeroWindowProbes > 0
	})
	l.eng.RunUntil(sim.Time(4 * sim.Second))
	if !probed {
		t.Fatalf("no probe before the sample point: %+v", client.Stats)
	}
	if !persistArmed || rexmtArmed {
		t.Fatalf("persist/rexmt exclusivity violated mid-probe: persist=%v rexmt=%v",
			persistArmed, rexmtArmed)
	}
}

// TestPersistWindowReopenResumesOutput: when the receiver finally
// drains, the window-update ACK must stop the persist cycle and let
// normal output deliver the trailing byte and the FIN, completing the
// close handshake.
func TestPersistWindowReopenResumesOutput(t *testing.T) {
	l, client, server := persistScenario(t, 49)
	l.eng.RunUntil(sim.Time(10 * sim.Second))
	drained := 0
	buf := make([]byte, 2048)
	server.OnReadable = func() {
		for {
			n := server.Read(buf)
			if n == 0 {
				break
			}
			drained += n
		}
	}
	for {
		n := server.Read(buf)
		if n == 0 {
			break
		}
		drained += n
	}
	l.eng.RunUntil(sim.Time(60 * sim.Second))
	if want := 4*408 + 1; drained != want {
		t.Fatalf("drained %d bytes, want %d", drained, want)
	}
	if !server.EOF() {
		t.Fatal("server never saw the FIN after the window reopened")
	}
	if client.State() != StateFinWait2 {
		t.Fatalf("client state = %v, want FIN_WAIT_2 (FIN acked)", client.State())
	}
	if client.persist.Armed() {
		t.Fatal("persist timer still armed after the window reopened")
	}
	// And the close completes end to end.
	server.Close()
	l.eng.RunUntil(sim.Time(2 * sim.Minute))
	if client.State() != StateClosed || server.State() != StateClosed {
		t.Fatalf("final states: %v / %v", client.State(), server.State())
	}
}

// TestSegmentCoalescingUnderReordering: heavy jitter with SACK — every
// byte still arrives exactly once, in order.
func TestStreamIntegrityUnderExtremeJitter(t *testing.T) {
	cfg := testCfg()
	cfg.RecvBufSize = 8 * 408
	cfg.SendBufSize = 8 * 408
	l := newTestLink(46, 5*sim.Millisecond, cfg)
	jit := int64(0)
	l.Jitter = func() sim.Duration {
		jit = (jit*1103515245 + 12345) % 200
		return sim.Duration(jit) * sim.Millisecond
	}
	l.transfer(t, 40_000, 10*sim.Minute)
}
