package tcplp

import (
	"encoding/binary"
	"errors"

	"tcplp/internal/ip6"
)

// Flags is the TCP flag byte (plus the two ECN flags).
type Flags uint16

// TCP header flags.
const (
	FlagFIN Flags = 1 << 0
	FlagSYN Flags = 1 << 1
	FlagRST Flags = 1 << 2
	FlagPSH Flags = 1 << 3
	FlagACK Flags = 1 << 4
	FlagURG Flags = 1 << 5
	FlagECE Flags = 1 << 6
	FlagCWR Flags = 1 << 7
)

// Has reports whether all flags in m are set.
func (f Flags) Has(m Flags) bool { return f&m == m }

func (f Flags) String() string {
	names := []struct {
		bit  Flags
		name byte
	}{
		{FlagFIN, 'F'}, {FlagSYN, 'S'}, {FlagRST, 'R'}, {FlagPSH, 'P'},
		{FlagACK, 'A'}, {FlagURG, 'U'}, {FlagECE, 'E'}, {FlagCWR, 'C'},
	}
	out := make([]byte, 0, 8)
	for _, n := range names {
		if f.Has(n.bit) {
			out = append(out, n.name)
		}
	}
	if len(out) == 0 {
		return "."
	}
	return string(out)
}

// Option kinds.
const (
	optEnd           = 0
	optNOP           = 1
	optMSS           = 2
	optWindowScale   = 3
	optSACKPermitted = 4
	optSACK          = 5
	optTimestamps    = 8
)

// BaseHeaderLen is the TCP header length without options.
const BaseHeaderLen = 20

// MaxSACKBlocks is the most SACK blocks a segment can carry alongside
// timestamps.
const MaxSACKBlocks = 3

// SACKBlock is one selective-acknowledgment range [Start, End).
type SACKBlock struct {
	Start, End Seq
}

// Segment is a parsed TCP segment. Option presence is explicit so the
// encoder emits exactly the options requested (Table 1's feature knobs).
type Segment struct {
	SrcPort, DstPort uint16
	SeqNum           Seq
	AckNum           Seq
	Flags            Flags
	Window           uint16

	// Options.
	MSS           uint16 // SYN only; 0 means absent
	SACKPermitted bool   // SYN only
	HasTS         bool
	TSVal, TSEcr  uint32
	SACKBlocks    []SACKBlock

	Payload []byte

	// JID is the journey packet id (0 = untagged), simulator metadata
	// threaded into ip6.Packet.JID on send and copied back from it on
	// receive. Never encoded into wire bytes.
	JID int64
}

// Len returns the sequence-space length of the segment (payload plus SYN
// and FIN).
func (s *Segment) Len() int {
	n := len(s.Payload)
	if s.Flags.Has(FlagSYN) {
		n++
	}
	if s.Flags.Has(FlagFIN) {
		n++
	}
	return n
}

func (s *Segment) optionLen() int {
	n := 0
	if s.MSS != 0 {
		n += 4
	}
	if s.SACKPermitted {
		n += 2
	}
	if s.HasTS {
		n += 10
	}
	if len(s.SACKBlocks) > 0 {
		n += 2 + 8*len(s.SACKBlocks)
	}
	return (n + 3) &^ 3 // pad to 32-bit boundary
}

// HeaderLen returns the encoded header length including options.
func (s *Segment) HeaderLen() int { return BaseHeaderLen + s.optionLen() }

// WireLen returns the total encoded segment length.
func (s *Segment) WireLen() int { return s.HeaderLen() + len(s.Payload) }

// Encode serializes the segment and computes the checksum over the
// IPv6-style pseudo header for src/dst.
func (s *Segment) Encode(src, dst ip6.Addr) []byte {
	return s.AppendEncode(nil, src, dst)
}

// AppendEncode encodes the segment into buf's backing array when it is
// large enough (allocating otherwise) and returns the encoded slice —
// the pooling-friendly form of Encode for callers that recycle wire
// buffers.
func (s *Segment) AppendEncode(buf []byte, src, dst ip6.Addr) []byte {
	hl := s.HeaderLen()
	n := hl + len(s.Payload)
	var b []byte
	if cap(buf) >= n {
		b = buf[:n]
	} else {
		b = make([]byte, n)
	}
	binary.BigEndian.PutUint16(b[0:], s.SrcPort)
	binary.BigEndian.PutUint16(b[2:], s.DstPort)
	binary.BigEndian.PutUint32(b[4:], uint32(s.SeqNum))
	binary.BigEndian.PutUint32(b[8:], uint32(s.AckNum))
	b[12] = byte(hl/4) << 4
	b[13] = byte(s.Flags & 0xff)
	binary.BigEndian.PutUint16(b[14:], s.Window)
	// The checksum at b[16:18] is summed over the segment with the field
	// itself zero, and the urgent pointer is always zero: the urgent
	// mechanism is deliberately omitted (§4.1, RFC 6093). A recycled
	// buffer holds stale bytes in both, so zero them explicitly.
	b[16], b[17] = 0, 0
	b[18], b[19] = 0, 0
	i := BaseHeaderLen
	if s.MSS != 0 {
		b[i], b[i+1] = optMSS, 4
		binary.BigEndian.PutUint16(b[i+2:], s.MSS)
		i += 4
	}
	if s.SACKPermitted {
		b[i], b[i+1] = optSACKPermitted, 2
		i += 2
	}
	if s.HasTS {
		b[i], b[i+1] = optTimestamps, 10
		binary.BigEndian.PutUint32(b[i+2:], s.TSVal)
		binary.BigEndian.PutUint32(b[i+6:], s.TSEcr)
		i += 10
	}
	if len(s.SACKBlocks) > 0 {
		b[i], b[i+1] = optSACK, byte(2+8*len(s.SACKBlocks))
		i += 2
		for _, blk := range s.SACKBlocks {
			binary.BigEndian.PutUint32(b[i:], uint32(blk.Start))
			binary.BigEndian.PutUint32(b[i+4:], uint32(blk.End))
			i += 8
		}
	}
	for i < hl {
		b[i] = optNOP
		i++
	}
	copy(b[hl:], s.Payload)
	binary.BigEndian.PutUint16(b[16:], Checksum(src, dst, b))
	return b
}

// Decode errors.
var (
	ErrSegmentTooShort = errors.New("tcplp: segment too short")
	ErrBadOption       = errors.New("tcplp: malformed TCP option")
	ErrBadChecksum     = errors.New("tcplp: bad checksum")
)

// DecodeSegment parses a TCP segment and verifies its checksum against
// the pseudo header.
func DecodeSegment(src, dst ip6.Addr, b []byte) (*Segment, error) {
	if len(b) < BaseHeaderLen {
		return nil, ErrSegmentTooShort
	}
	if Checksum(src, dst, b) != 0 {
		return nil, ErrBadChecksum
	}
	hl := int(b[12]>>4) * 4
	if hl < BaseHeaderLen || hl > len(b) {
		return nil, ErrSegmentTooShort
	}
	s := &Segment{
		SrcPort: binary.BigEndian.Uint16(b[0:]),
		DstPort: binary.BigEndian.Uint16(b[2:]),
		SeqNum:  Seq(binary.BigEndian.Uint32(b[4:])),
		AckNum:  Seq(binary.BigEndian.Uint32(b[8:])),
		Flags:   Flags(b[13]),
		Window:  binary.BigEndian.Uint16(b[14:]),
	}
	opts := b[BaseHeaderLen:hl]
	for len(opts) > 0 {
		switch opts[0] {
		case optEnd:
			opts = nil
			continue
		case optNOP:
			opts = opts[1:]
			continue
		}
		if len(opts) < 2 || int(opts[1]) < 2 || int(opts[1]) > len(opts) {
			return nil, ErrBadOption
		}
		l := int(opts[1])
		switch opts[0] {
		case optMSS:
			if l != 4 {
				return nil, ErrBadOption
			}
			s.MSS = binary.BigEndian.Uint16(opts[2:])
		case optSACKPermitted:
			if l != 2 {
				return nil, ErrBadOption
			}
			s.SACKPermitted = true
		case optTimestamps:
			if l != 10 {
				return nil, ErrBadOption
			}
			s.HasTS = true
			s.TSVal = binary.BigEndian.Uint32(opts[2:])
			s.TSEcr = binary.BigEndian.Uint32(opts[6:])
		case optSACK:
			if (l-2)%8 != 0 {
				return nil, ErrBadOption
			}
			for j := 2; j < l; j += 8 {
				s.SACKBlocks = append(s.SACKBlocks, SACKBlock{
					Start: Seq(binary.BigEndian.Uint32(opts[j:])),
					End:   Seq(binary.BigEndian.Uint32(opts[j+4:])),
				})
			}
		}
		opts = opts[l:]
	}
	if hl < len(b) {
		s.Payload = append([]byte(nil), b[hl:]...)
	}
	return s, nil
}

// Checksum computes the RFC 2460 TCP checksum of segment bytes b between
// src and dst. Encoding writes the sum so that verification yields zero.
func Checksum(src, dst ip6.Addr, b []byte) uint16 {
	var sum uint32
	add16 := func(p []byte) {
		for i := 0; i+1 < len(p); i += 2 {
			sum += uint32(p[i])<<8 | uint32(p[i+1])
		}
		if len(p)%2 == 1 {
			sum += uint32(p[len(p)-1]) << 8
		}
	}
	add16(src[:])
	add16(dst[:])
	sum += uint32(len(b))
	sum += ip6.ProtoTCP
	add16(b)
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
