// Package tcplp is the paper's primary contribution rebuilt in Go: a
// full-scale TCP in the FreeBSD lineage, sized for low-power wireless
// networks. It implements the RFC 793 state machine, New Reno congestion
// control (RFC 5681/6582), selective acknowledgments (RFC 2018),
// timestamps and RTTM (RFC 7323), the RFC 6298 retransmission timer,
// delayed ACKs, zero-window probes, ECN (RFC 3168), header prediction,
// and challenge ACKs — the Table 1 feature set — together with the
// paper's two buffer designs: a zero-copy send buffer (§4.3.1) and the
// in-place reassembly queue receive buffer (§4.3.2, Fig. 1b).
//
// The implementation is event-driven against a sim.Engine, exactly as
// TCPlp was restructured around tickless embedded timers instead of
// FreeBSD callouts (§4.1).
package tcplp

// Seq is a TCP sequence number; all comparisons are modulo 2^32.
type Seq uint32

// LT reports s < t in sequence space.
func (s Seq) LT(t Seq) bool { return int32(s-t) < 0 }

// LEQ reports s ≤ t in sequence space.
func (s Seq) LEQ(t Seq) bool { return int32(s-t) <= 0 }

// GT reports s > t in sequence space.
func (s Seq) GT(t Seq) bool { return int32(s-t) > 0 }

// GEQ reports s ≥ t in sequence space.
func (s Seq) GEQ(t Seq) bool { return int32(s-t) >= 0 }

// Add advances s by n.
func (s Seq) Add(n int) Seq { return s + Seq(uint32(n)) }

// Diff returns s − t as a signed count of bytes.
func (s Seq) Diff(t Seq) int { return int(int32(s - t)) }

func maxSeq(a, b Seq) Seq {
	if a.GT(b) {
		return a
	}
	return b
}

func minSeq(a, b Seq) Seq {
	if a.LT(b) {
		return a
	}
	return b
}
