package tcplp

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCopySendBufferBasics(t *testing.T) {
	b := NewCopySendBuffer(10)
	if n := b.Write([]byte("hello")); n != 5 {
		t.Fatalf("write = %d", n)
	}
	if n := b.Write([]byte("world!!")); n != 5 {
		t.Fatalf("overflow write = %d, want 5 (clipped)", n)
	}
	if b.Len() != 10 || b.Free() != 0 {
		t.Fatalf("len=%d free=%d", b.Len(), b.Free())
	}
	p := make([]byte, 10)
	if n := b.ReadAt(p, 0); n != 10 || string(p) != "helloworld" {
		t.Fatalf("readAt = %d %q", n, p)
	}
	b.Discard(5)
	if n := b.ReadAt(p, 0); n != 5 || string(p[:5]) != "world" {
		t.Fatalf("after discard: %d %q", n, p[:5])
	}
	// Wraparound.
	if n := b.Write([]byte("again")); n != 5 {
		t.Fatalf("wrap write = %d", n)
	}
	if n := b.ReadAt(p, 5); n != 5 || string(p[:5]) != "again" {
		t.Fatalf("wrap readAt = %d %q", n, p[:5])
	}
}

func TestSendBufferReadAtOffsets(t *testing.T) {
	for _, mk := range []func() SendBuffer{
		func() SendBuffer { return NewCopySendBuffer(64) },
		func() SendBuffer { return NewZeroCopySendBuffer(64) },
	} {
		b := mk()
		b.Write([]byte("0123456789"))
		p := make([]byte, 4)
		if n := b.ReadAt(p, 3); n != 4 || string(p) != "3456" {
			t.Fatalf("%T ReadAt(3) = %d %q", b, n, p)
		}
		if n := b.ReadAt(p, 9); n != 1 || p[0] != '9' {
			t.Fatalf("%T ReadAt(9) = %d %q", b, n, p[:1])
		}
		if n := b.ReadAt(p, 10); n != 0 {
			t.Fatalf("%T ReadAt(10) = %d", b, n)
		}
		if n := b.ReadAt(p, -1); n != 0 {
			t.Fatalf("%T ReadAt(-1) = %d", b, n)
		}
	}
}

func TestZeroCopyAliasing(t *testing.T) {
	b := NewZeroCopySendBuffer(1024)
	big := bytes.Repeat([]byte("x"), 256)
	b.Write(big)
	if b.Aliased != 256 {
		t.Fatalf("aliased = %d, want 256", b.Aliased)
	}
	small := []byte("abc")
	b.Write(small)
	if b.Aliased != 256 {
		t.Fatalf("small writes must be copied; aliased = %d", b.Aliased)
	}
	// Partial node discard must keep offsets straight: 156 'x' bytes
	// remain, then "abc".
	b.Discard(100)
	p := make([]byte, 4)
	if n := b.ReadAt(p, 155); n != 4 || string(p) != "xabc" {
		t.Fatalf("after partial discard: %d %q", n, p)
	}
	if n := b.ReadAt(p, 156); n != 3 || string(p[:3]) != "abc" {
		t.Fatalf("tail read: %d %q", n, p[:3])
	}
}

// Property: both send buffers behave identically to a reference byte
// slice under random write/readat/discard sequences.
func TestQuickSendBufferEquivalence(t *testing.T) {
	run := func(mk func() SendBuffer, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := mk()
		var ref []byte
		for op := 0; op < 200; op++ {
			switch rng.Intn(3) {
			case 0: // write
				n := rng.Intn(40)
				data := make([]byte, n)
				rng.Read(data)
				took := b.Write(data)
				want := minInt(n, b.Capacity()-len(ref))
				if took != want {
					return false
				}
				ref = append(ref, data[:took]...)
			case 1: // readAt
				if len(ref) == 0 {
					continue
				}
				off := rng.Intn(len(ref))
				p := make([]byte, rng.Intn(32)+1)
				n := b.ReadAt(p, off)
				want := minInt(len(p), len(ref)-off)
				if n != want || !bytes.Equal(p[:n], ref[off:off+n]) {
					return false
				}
			case 2: // discard
				n := rng.Intn(len(ref) + 5)
				b.Discard(n)
				if n > len(ref) {
					n = len(ref)
				}
				ref = ref[n:]
			}
			if b.Len() != len(ref) {
				return false
			}
		}
		return true
	}
	f := func(seed int64) bool {
		return run(func() SendBuffer { return NewCopySendBuffer(128) }, seed) &&
			run(func() SendBuffer { return NewZeroCopySendBuffer(128) }, seed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRecvBufferInOrder(t *testing.T) {
	b := NewRecvBuffer(16)
	if adv := b.Write(0, []byte("abcd")); adv != 4 {
		t.Fatalf("advance = %d", adv)
	}
	if b.Readable() != 4 || b.Window() != 12 {
		t.Fatalf("readable=%d window=%d", b.Readable(), b.Window())
	}
	p := make([]byte, 4)
	if n := b.Read(p); n != 4 || string(p) != "abcd" {
		t.Fatalf("read %d %q", n, p)
	}
	if b.Window() != 16 {
		t.Fatalf("window after read = %d", b.Window())
	}
}

func TestRecvBufferOutOfOrderHole(t *testing.T) {
	b := NewRecvBuffer(32)
	// Bytes 4..8 arrive first: no advance, OOO recorded, window unchanged.
	if adv := b.Write(4, []byte("wxyz")); adv != 0 {
		t.Fatalf("OOO advance = %d", adv)
	}
	if b.OutOfOrder() != 4 {
		t.Fatalf("ooo = %d", b.OutOfOrder())
	}
	if b.Window() != 32 {
		t.Fatalf("window shrank for OOO data: %d", b.Window())
	}
	rs := b.SACKRanges(3)
	if len(rs) != 1 || rs[0] != [2]int{4, 8} {
		t.Fatalf("sack ranges = %v", rs)
	}
	// Filling the gap advances across both.
	if adv := b.Write(0, []byte("abcd")); adv != 8 {
		t.Fatalf("gap-fill advance = %d", adv)
	}
	p := make([]byte, 8)
	b.Read(p)
	if string(p) != "abcdwxyz" {
		t.Fatalf("reassembled %q", p)
	}
}

func TestRecvBufferDuplicateAndOverlap(t *testing.T) {
	b := NewRecvBuffer(32)
	b.Write(0, []byte("hello"))
	// Re-delivery of old data (negative offset after rcvNxt advanced by
	// caller): caller passes off=-5 for a full duplicate.
	if adv := b.Write(-5, []byte("hello")); adv != 0 {
		t.Fatalf("duplicate advanced %d", adv)
	}
	// Overlapping: bytes 3..10 where 3..5 are already in-sequence... the
	// conn layer passes off relative to rcvNxt, so overlap appears as a
	// negative offset with new tail bytes.
	if adv := b.Write(-2, []byte("lo-world")); adv != 6 {
		t.Fatalf("overlap advance = %d", adv)
	}
	p := make([]byte, 11)
	n := b.Read(p)
	if string(p[:n]) != "hello-world" {
		t.Fatalf("got %q", p[:n])
	}
}

func TestRecvBufferWindowClipping(t *testing.T) {
	b := NewRecvBuffer(8)
	if adv := b.Write(0, []byte("0123456789")); adv != 8 {
		t.Fatalf("clip advance = %d", adv)
	}
	if b.Window() != 0 {
		t.Fatalf("window = %d", b.Window())
	}
	// Nothing fits now.
	if adv := b.Write(0, []byte("zz")); adv != 0 {
		t.Fatal("write into zero window succeeded")
	}
}

func TestRecvBufferMultipleSACKRanges(t *testing.T) {
	b := NewRecvBuffer(64)
	b.Write(5, []byte("aa"))
	b.Write(10, []byte("bb"))
	b.Write(20, []byte("cc"))
	rs := b.SACKRanges(4)
	want := [][2]int{{5, 7}, {10, 12}, {20, 22}}
	if len(rs) != 3 {
		t.Fatalf("ranges = %v", rs)
	}
	for i := range want {
		if rs[i] != want[i] {
			t.Fatalf("ranges = %v, want %v", rs, want)
		}
	}
	if rs2 := b.SACKRanges(2); len(rs2) != 2 {
		t.Fatalf("max clipping failed: %v", rs2)
	}
}

// Property: the in-place reassembly queue and the chain queue agree with
// a reference model under random segment arrivals and reads. This is the
// paper's Fig. 1b structure under adversarial reordering.
func TestQuickReceiveQueueEquivalence(t *testing.T) {
	type model struct {
		stream []byte // the true stream content
		next   int    // rcvNxt position in stream
		unread []byte
	}
	run := func(q ReceiveQueue, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		stream := make([]byte, 4096)
		rng.Read(stream)
		m := model{stream: stream}
		for op := 0; op < 300; op++ {
			if rng.Intn(3) != 0 { // segment arrival
				// Pick a segment at a random offset around rcvNxt.
				off := rng.Intn(64) - 8
				ln := rng.Intn(48) + 1
				if m.next+off < 0 {
					off = -m.next
				}
				if m.next+off+ln > len(stream) {
					continue
				}
				data := stream[m.next+off : m.next+off+ln]
				adv := q.Write(off, data)
				// Model: mark arrivals, compute expected advance.
				if adv > 0 {
					m.unread = append(m.unread, stream[m.next:m.next+adv]...)
					m.next += adv
				}
				if q.Readable() != len(m.unread) {
					return false
				}
			} else { // read
				p := make([]byte, rng.Intn(64)+1)
				n := q.Read(p)
				want := minInt(len(p), len(m.unread))
				if n != want || !bytes.Equal(p[:n], m.unread[:n]) {
					return false
				}
				m.unread = m.unread[n:]
			}
			if q.Window() != q.Capacity()-q.Readable() {
				return false
			}
		}
		return true
	}
	f := func(seed int64) bool {
		return run(NewRecvBuffer(256), seed) && run(NewChainRecvBuffer(256), seed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: whatever order segments of a stream arrive in, reading out
// the queue reproduces the stream prefix exactly.
func TestQuickReassemblyByteExact(t *testing.T) {
	f := func(seed int64, chain bool) bool {
		rng := rand.New(rand.NewSource(seed))
		stream := make([]byte, 1000)
		rng.Read(stream)
		var q ReceiveQueue
		if chain {
			q = NewChainRecvBuffer(2048)
		} else {
			q = NewRecvBuffer(2048)
		}
		// Split into segments, deliver in random order with duplicates.
		type seg struct{ off, n int }
		var segs []seg
		for off := 0; off < len(stream); {
			n := rng.Intn(90) + 10
			if off+n > len(stream) {
				n = len(stream) - off
			}
			segs = append(segs, seg{off, n})
			off += n
		}
		order := rng.Perm(len(segs))
		order = append(order, order[:len(order)/2]...) // duplicates
		next := 0
		for _, i := range order {
			s := segs[i]
			adv := q.Write(s.off-next, stream[s.off:s.off+s.n])
			next += adv
		}
		if next != len(stream) {
			return false
		}
		out := make([]byte, len(stream))
		if q.Read(out) != len(stream) {
			return false
		}
		return bytes.Equal(out, stream)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
