package tcplp

// SendBuffer holds unacknowledged and unsent outbound bytes. Offsets are
// relative to the oldest unacknowledged byte (snd.una).
//
// Two implementations mirror §4.3.1: CopySendBuffer is a flat circular
// buffer (one copy in, deterministic footprint), and ZeroCopySendBuffer
// is a linked list of nodes that alias large caller slices, the way the
// TinyOS port aliased immutable Lua strings.
type SendBuffer interface {
	// Capacity is the maximum number of buffered bytes.
	Capacity() int
	// Len is the number of buffered bytes.
	Len() int
	// Free is Capacity − Len.
	Free() int
	// Write appends up to len(p) bytes, returning how many were taken.
	Write(p []byte) int
	// ReadAt copies buffered bytes starting at offset off into p,
	// returning the count (0 if off ≥ Len).
	ReadAt(p []byte, off int) int
	// Discard drops n acknowledged bytes from the front.
	Discard(n int)
}

// CopySendBuffer is the flat circular send buffer.
type CopySendBuffer struct {
	buf   []byte
	start int
	n     int
}

// NewCopySendBuffer returns a circular send buffer of the given capacity.
func NewCopySendBuffer(capacity int) *CopySendBuffer {
	return &CopySendBuffer{buf: make([]byte, capacity)}
}

// Capacity implements SendBuffer.
func (b *CopySendBuffer) Capacity() int { return len(b.buf) }

// Len implements SendBuffer.
func (b *CopySendBuffer) Len() int { return b.n }

// Free implements SendBuffer.
func (b *CopySendBuffer) Free() int { return len(b.buf) - b.n }

// Write implements SendBuffer.
func (b *CopySendBuffer) Write(p []byte) int {
	w := len(p)
	if w > b.Free() {
		w = b.Free()
	}
	// At most one wrap: copy the run to the end of the buffer, then the rest.
	pos := (b.start + b.n) % len(b.buf)
	n1 := copy(b.buf[pos:], p[:w])
	copy(b.buf, p[n1:w])
	b.n += w
	return w
}

// ReadAt implements SendBuffer.
func (b *CopySendBuffer) ReadAt(p []byte, off int) int {
	if off < 0 || off >= b.n {
		return 0
	}
	r := len(p)
	if r > b.n-off {
		r = b.n - off
	}
	pos := (b.start + off) % len(b.buf)
	n1 := copy(p[:r], b.buf[pos:])
	copy(p[n1:r], b.buf[:r-n1])
	return r
}

// Discard implements SendBuffer.
func (b *CopySendBuffer) Discard(n int) {
	if n > b.n {
		n = b.n
	}
	b.start = (b.start + n) % len(b.buf)
	b.n -= n
}

// ZeroCopySendBuffer is the linked-list-of-references send buffer. Writes
// of at least AliasThreshold bytes alias the caller's slice (the caller
// must not mutate it until acknowledged — the Lua-string immutability
// contract of §4.3.1); smaller writes are copied into private nodes.
type ZeroCopySendBuffer struct {
	capacity int
	n        int
	head     *sbNode
	tail     *sbNode
	headOff  int // discarded bytes within head node

	// AliasThreshold is the minimum write size that is aliased rather
	// than copied.
	AliasThreshold int

	// Aliased counts bytes accepted without copying (for the ablation
	// bench).
	Aliased int64
}

type sbNode struct {
	data []byte
	next *sbNode
}

// NewZeroCopySendBuffer returns a zero-copy send buffer of the given
// logical capacity.
func NewZeroCopySendBuffer(capacity int) *ZeroCopySendBuffer {
	return &ZeroCopySendBuffer{capacity: capacity, AliasThreshold: 64}
}

// Capacity implements SendBuffer.
func (b *ZeroCopySendBuffer) Capacity() int { return b.capacity }

// Len implements SendBuffer.
func (b *ZeroCopySendBuffer) Len() int { return b.n }

// Free implements SendBuffer.
func (b *ZeroCopySendBuffer) Free() int { return b.capacity - b.n }

// Write implements SendBuffer.
func (b *ZeroCopySendBuffer) Write(p []byte) int {
	w := len(p)
	if w > b.Free() {
		w = b.Free()
	}
	if w == 0 {
		return 0
	}
	var node *sbNode
	if w >= b.AliasThreshold && w == len(p) {
		node = &sbNode{data: p}
		b.Aliased += int64(w)
	} else {
		node = &sbNode{data: append([]byte(nil), p[:w]...)}
	}
	if b.tail == nil {
		b.head, b.tail = node, node
	} else {
		b.tail.next = node
		b.tail = node
	}
	b.n += w
	return w
}

// ReadAt implements SendBuffer.
func (b *ZeroCopySendBuffer) ReadAt(p []byte, off int) int {
	if off < 0 || off >= b.n {
		return 0
	}
	want := len(p)
	if want > b.n-off {
		want = b.n - off
	}
	got := 0
	pos := -b.headOff
	for node := b.head; node != nil && got < want; node = node.next {
		end := pos + len(node.data)
		if end <= off {
			pos = end
			continue
		}
		from := 0
		if off > pos {
			from = off - pos
		}
		got += copy(p[got:want], node.data[from:])
		pos = end
	}
	return got
}

// Discard implements SendBuffer.
func (b *ZeroCopySendBuffer) Discard(n int) {
	if n > b.n {
		n = b.n
	}
	b.n -= n
	n += b.headOff
	b.headOff = 0
	for n > 0 && b.head != nil {
		if n < len(b.head.data) {
			b.headOff = n
			return
		}
		n -= len(b.head.data)
		b.head = b.head.next
	}
	if b.head == nil {
		b.tail = nil
	}
}
