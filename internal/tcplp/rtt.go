package tcplp

import "tcplp/internal/sim"

// RTT defaults (RFC 6298 with embedded-friendly clamps; FreeBSD uses a
// 30 ms floor, we keep 200 ms like many LLN stacks given multi-second
// mesh RTTs).
const (
	DefaultRTOMin = 200 * sim.Millisecond
	DefaultRTOMax = 60 * sim.Second
	InitialRTO    = 1 * sim.Second
)

// rttEstimator implements the RFC 6298 smoothed RTT/variance estimator.
// With TCP timestamps every ACK yields an unambiguous sample — even for
// retransmitted segments — which is exactly the property that saves TCPlp
// from the CoCoA retransmission-ambiguity pathology (§9.4).
type rttEstimator struct {
	srtt   sim.Duration
	rttvar sim.Duration
	rto    sim.Duration
	valid  bool

	rtoMin, rtoMax sim.Duration
}

func newRTTEstimator(rtoMin, rtoMax sim.Duration) *rttEstimator {
	if rtoMin == 0 {
		rtoMin = DefaultRTOMin
	}
	if rtoMax == 0 {
		rtoMax = DefaultRTOMax
	}
	return &rttEstimator{rto: InitialRTO, rtoMin: rtoMin, rtoMax: rtoMax}
}

// Sample folds one measured round-trip time into the estimator.
func (e *rttEstimator) Sample(rtt sim.Duration) {
	if rtt <= 0 {
		rtt = sim.Microsecond
	}
	if !e.valid {
		e.srtt = rtt
		e.rttvar = rtt / 2
		e.valid = true
	} else {
		// RFC 6298: RTTVAR ← 3/4·RTTVAR + 1/4·|SRTT−R|, SRTT ← 7/8·SRTT + 1/8·R.
		diff := e.srtt - rtt
		if diff < 0 {
			diff = -diff
		}
		e.rttvar = (3*e.rttvar + diff) / 4
		e.srtt = (7*e.srtt + rtt) / 8
	}
	rto := e.srtt + maxDur(4*e.rttvar, sim.Millisecond)
	e.rto = clampDur(rto, e.rtoMin, e.rtoMax)
}

// RTO returns the current retransmission timeout (before backoff).
func (e *rttEstimator) RTO() sim.Duration { return e.rto }

// SRTT returns the smoothed RTT (0 until the first sample).
func (e *rttEstimator) SRTT() sim.Duration { return e.srtt }

// Backoff returns the RTO doubled shift times, clamped to the maximum
// (Karn's algorithm's exponential backoff).
func (e *rttEstimator) Backoff(shift int) sim.Duration {
	rto := e.rto
	for i := 0; i < shift; i++ {
		rto *= 2
		if rto >= e.rtoMax {
			return e.rtoMax
		}
	}
	return clampDur(rto, e.rtoMin, e.rtoMax)
}

func maxDur(a, b sim.Duration) sim.Duration {
	if a > b {
		return a
	}
	return b
}

func clampDur(d, lo, hi sim.Duration) sim.Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}
