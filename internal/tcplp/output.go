package tcplp

import (
	"fmt"

	"tcplp/internal/ip6"
	"tcplp/internal/obs"
	"tcplp/internal/sim"
	"tcplp/internal/tcplp/cc"
)

// effMSS is the MSS we may send: the peer's advertised MSS clamped by our
// own configuration.
func (c *Conn) effMSS() int {
	m := c.cfg.MSS
	if c.peerMSS > 0 && c.peerMSS < m {
		m = c.peerMSS
	}
	return m
}

// pacingRate returns the variant's current pacing rate in bytes per
// second, or 0 when the algorithm is ACK-clocked (does not implement
// cc.Pacer), pacing is disabled by configuration, or there is no rate
// yet.
func (c *Conn) pacingRate() float64 {
	if c.cfg.NoPacing {
		return 0
	}
	p, ok := c.cong.(cc.Pacer)
	if !ok {
		return 0
	}
	return p.PacingRate(c.effMSS(), c.rtt.SRTT())
}

// paceCharge advances the pacing release clock after a segment of n
// payload bytes left: the next release waits n/rate behind this one.
// Crediting from max(paceNext, now) — never from the past — means idle
// periods accumulate no send credit, so a window opening after a pause
// cannot burst (the property the inter-send-gap tests pin down).
func (c *Conn) paceCharge(n int) {
	if n <= 0 {
		return
	}
	rate := c.pacingRate()
	if rate <= 0 {
		return
	}
	base := c.stack.eng.Now()
	if c.paceNext > base {
		base = c.paceNext
	}
	c.paceNext = base.Add(sim.Duration(float64(n) / rate * float64(sim.Second)))
}

// sendWindow is the current usable window: min(cwnd, peer window).
func (c *Conn) sendWindow() int {
	w := c.sndWnd
	if cwnd := c.cong.Cwnd(); cwnd < w {
		w = cwnd
	}
	return w
}

// connect begins an active open (stack.Connect fills addressing first).
func (c *Conn) connect() {
	c.iss = Seq(c.stack.eng.Rand().Uint32())
	c.sndUna, c.sndNxt, c.sndMax = c.iss, c.iss, c.iss
	c.recover, c.ecnRecover = c.iss, c.iss
	c.queuedEnd = c.iss.Add(1) // stream starts after SYN
	c.cong.Init(c.now())
	c.setState(StateSynSent)
	c.sendSYN(false)
	c.armRexmt()
}

// acceptSyn initializes a passive connection from a received SYN.
func (c *Conn) acceptSyn(seg *Segment) {
	c.irs = seg.SeqNum
	c.rcvNxt = seg.SeqNum.Add(1)
	c.lastAckSeq = c.rcvNxt
	c.iss = Seq(c.stack.eng.Rand().Uint32())
	c.sndUna, c.sndNxt, c.sndMax = c.iss, c.iss, c.iss
	c.recover, c.ecnRecover = c.iss, c.iss
	c.queuedEnd = c.iss.Add(1)
	c.cong.Init(c.now())
	c.applySynOptions(seg)
	if c.cfg.UseECN && seg.Flags.Has(FlagECE|FlagCWR) {
		c.ecnOn = true
	}
	c.setState(StateSynReceived)
	c.sendSYN(true)
	c.armRexmt()
}

// applySynOptions records the peer's negotiated capabilities.
func (c *Conn) applySynOptions(seg *Segment) {
	if seg.MSS != 0 {
		c.peerMSS = int(seg.MSS)
	}
	c.peerSACK = c.cfg.UseSACK && seg.SACKPermitted
	c.peerTS = c.cfg.UseTimestamps && seg.HasTS
	if c.peerTS {
		c.tsRecent = seg.TSVal
		c.tsEcho = true
	}
}

// sendSYN emits a SYN (active) or SYN/ACK (passive) with our options.
func (c *Conn) sendSYN(withAck bool) {
	seg := &Segment{
		SrcPort: c.localPort,
		DstPort: c.remotePort,
		SeqNum:  c.iss,
		Flags:   FlagSYN,
		Window:  uint16(clampInt(c.rcvQ.Window(), 0, 0xffff)),
		MSS:     uint16(c.cfg.MSS),
	}
	if c.cfg.UseSACK {
		seg.SACKPermitted = true
	}
	if c.cfg.UseTimestamps {
		seg.HasTS = true
		seg.TSVal = c.stack.tsNow()
		if withAck && c.tsEcho {
			seg.TSEcr = c.tsRecent
		}
	}
	if withAck {
		seg.Flags |= FlagACK
		seg.AckNum = c.rcvNxt
		if c.ecnOn {
			seg.Flags |= FlagECE
		}
	} else if c.cfg.UseECN {
		seg.Flags |= FlagECE | FlagCWR
	}
	c.lastWndAdv = int(seg.Window)
	if c.sndNxt == c.iss {
		c.sndNxt = c.iss.Add(1)
	}
	c.sndMax = maxSeq(c.sndMax, c.sndNxt)
	c.startRTTSample(c.iss)
	// The handshake expects a response too: a duty-cycled leaf must poll
	// fast for the SYN/ACK held in its parent's indirect queue (§9.2).
	c.setExpecting(true)
	c.transmit(seg, false)
}

// output is the tcp_output engine: it sends as much as the usable window,
// the send buffer, Nagle, and recovery state allow.
func (c *Conn) output() {
	switch c.state {
	case StateEstablished, StateCloseWait, StateFinWait1, StateClosing, StateLastAck:
	default:
		return
	}
	mss := c.effMSS()
	spin := 0
	for {
		spin++
		if spin > 100000 {
			panic(fmt.Sprintf("output spin: state=%v una=%d nxt=%d max=%d queuedEnd=%d bufLen=%d wnd=%d cwnd=%d recovery=%v finQ=%v sacked=%d rtxPipe=%d sackNext=%d recover=%d",
				c.state, c.sndUna, c.sndNxt, c.sndMax, c.queuedEnd, c.sndBuf.Len(), c.sndWnd, c.cong.Cwnd(), c.inRecovery, c.finQueued, c.sb.SackedBytes(), c.rtxPipe, c.sackRtxNext, c.recover))
		}
		// Pacing gate: when the variant paces, nothing below may release
		// before paceNext — the timer re-enters output at that instant.
		// ACK-clocked variants return rate 0 and never block here, so
		// their send timing is bit-identical to the unpaced engine.
		if rate := c.pacingRate(); rate > 0 && c.now() < c.paceNext {
			c.paceTimer.ResetAt(c.paceNext)
			return
		}
		if c.inRecovery && c.peerSACK {
			if c.sackRetransmit() {
				continue
			}
		}
		win := c.sendWindow()
		offset := c.sndNxt.Diff(c.sndUna)
		if offset < 0 {
			offset = 0
		}
		dataEnd := c.queuedEnd
		avail := dataEnd.Diff(c.sndNxt)
		if avail < 0 {
			avail = 0
		}
		// Usable window beyond what is already in flight.
		usable := win - offset
		segLen := minInt(avail, minInt(usable, mss))

		// The FIN is due whenever snd.nxt sits exactly at the end of the
		// data stream — true both for the first transmission and after an
		// RTO pulled snd.nxt back (retransmission).
		sendFin := c.finQueued && !c.finAcked() && c.sndNxt == dataEnd &&
			(usable > 0 || offset == 0)

		// Sender-side silly window avoidance (RFC 1122 §4.2.3.4) with
		// Nagle folded in: send a full segment; or everything we have if
		// idle (or Nagle is off); or at least half the peer's largest
		// window; or a FIN.
		sendNow := sendFin
		switch {
		case segLen >= mss:
			sendNow = true
		case segLen > 0 && c.sndNxt.LT(c.sndMax):
			// Retransmission (snd.nxt was pulled back): never blocked by
			// silly-window rules, or an RTO could loop without sending.
			sendNow = true
		case segLen > 0 && segLen == avail && (c.cfg.NoDelay || c.sndNxt == c.sndUna):
			sendNow = true
		case segLen > 0 && c.maxSndWnd > 0 && segLen >= c.maxSndWnd/2:
			sendNow = true
		}
		if !sendNow {
			// If data is stuck behind a closed or silly window with
			// nothing deliverable in flight, the persist timer is the
			// only thing that can make progress. With a closed window it
			// replaces the retransmission timer outright (BSD-style
			// rexmt/persist exclusivity): retransmitting into a zero
			// window is pointless and would loop the RTO to abort.
			pending := avail > 0 || (c.finQueued && !c.finAcked())
			if pending && c.sndNxt == c.sndUna && !c.persist.Armed() {
				if c.sndWnd == 0 {
					c.rexmt.Stop()
					c.schedulePersist()
				} else if !c.rexmt.Armed() {
					c.schedulePersist()
				}
			}
			return
		}
		c.sendData(c.sndNxt, segLen, sendFin, false)
		// sendData advanced snd.nxt (by segLen and/or the FIN), so each
		// iteration makes progress until the window or buffer is spent.
	}
}

// sackRetransmit fills the next SACK hole during loss recovery; it
// returns true if a retransmission was sent. sackRtxNext is the scan
// cursor guaranteeing forward progress within one recovery episode, and
// rtxPipe accounts the retransmitted-but-unacknowledged bytes in the
// pipe estimate (packet conservation).
func (c *Conn) sackRetransmit() bool {
	if c.sb.Empty() {
		return false
	}
	pipe := c.sndMax.Diff(c.sndUna) - c.sb.SackedBytes() + c.rtxPipe
	if pipe >= c.cong.Cwnd() {
		return false
	}
	from := maxSeq(c.sndUna, c.sackRtxNext)
	hole, ok := c.sb.NextHole(from, minSeq(c.recover, c.sndMax))
	if !ok {
		return false
	}
	n := minInt(hole.End.Diff(hole.Start), c.effMSS())
	if n <= 0 {
		return false
	}
	c.Stats.SACKRetransmits++
	c.sackRtxNext = hole.Start.Add(n)
	c.rtxPipe += n
	c.sendData(hole.Start, n, false, true)
	return true
}

// sendData transmits one segment of segLen payload bytes starting at seq,
// optionally carrying FIN. rtx marks retransmissions (they do not move
// snd.nxt forward past snd.max bookkeeping).
func (c *Conn) sendData(seq Seq, segLen int, fin bool, rtx bool) {
	seg := &Segment{
		SrcPort: c.localPort,
		DstPort: c.remotePort,
		SeqNum:  seq,
		AckNum:  c.rcvNxt,
		Flags:   FlagACK,
		Window:  uint16(clampInt(c.rcvQ.Window(), 0, 0xffff)),
	}
	if segLen > 0 {
		seg.Payload = make([]byte, segLen)
		got := c.sndBuf.ReadAt(seg.Payload, seq.Diff(c.sndUna))
		if got < segLen {
			seg.Payload = seg.Payload[:got]
			segLen = got
			if segLen == 0 && !fin {
				return
			}
		}
		if seq.Add(segLen) == c.queuedEnd {
			seg.Flags |= FlagPSH
		}
	}
	if fin {
		seg.Flags |= FlagFIN
	}
	c.attachCommonOptions(seg)
	if c.ecnOn && c.cwrToSend && segLen > 0 {
		seg.Flags |= FlagCWR
		c.cwrToSend = false
	}

	end := seq.Add(segLen + boolInt(fin))
	if !rtx || seq == c.sndNxt {
		c.sndNxt = maxSeq(c.sndNxt, end)
	}
	newData := end.GT(c.sndMax)
	c.sndMax = maxSeq(c.sndMax, end)
	if newData {
		c.startRTTSample(seq)
	} else if segLen > 0 || fin {
		// Counting `fin` too covers FIN-only retransmissions (RTO and
		// persist-probe paths), which the close-phase energy accounting
		// would otherwise miss.
		c.Stats.Retransmits++
	}
	c.paceCharge(segLen)
	if fin && !rtx {
		switch c.state {
		case StateEstablished:
			c.setState(StateFinWait1)
		case StateCloseWait:
			c.setState(StateLastAck)
		}
	}
	if c.probing {
		// Zero-window probes retransmit under the persist timer, never
		// the retransmission timer (the two are mutually exclusive, as
		// in BSD tcp_output).
		c.rexmt.Stop()
	} else {
		c.armRexmt()
	}
	c.setExpecting(true)
	c.transmit(seg, segLen > 0)
	c.Stats.BytesSent += uint64(segLen)
	// Data segments carry an implicit ACK of everything received.
	c.ackSent()
}

// sendAck emits a pure ACK reflecting rcv.nxt, the window, SACK state,
// and ECN echo.
func (c *Conn) sendAck() {
	if c.state == StateClosed || c.state == StateListen {
		return
	}
	seg := &Segment{
		SrcPort: c.localPort,
		DstPort: c.remotePort,
		SeqNum:  c.sndNxt,
		AckNum:  c.rcvNxt,
		Flags:   FlagACK,
		Window:  uint16(clampInt(c.rcvQ.Window(), 0, 0xffff)),
	}
	c.attachCommonOptions(seg)
	c.Stats.AcksSent++
	c.transmit(seg, false)
	c.ackSent()
}

// ackSent resets delayed-ACK state after any segment carrying an ACK.
func (c *Conn) ackSent() {
	c.segsToAck = 0
	c.delAckTimer.Stop()
	c.lastAckSeq = c.rcvNxt
	c.lastWndAdv = c.rcvQ.Window()
	if c.lastWndAdv > 0xffff {
		c.lastWndAdv = 0xffff
	}
}

// attachCommonOptions adds timestamps, SACK blocks, and ECN echo to an
// outgoing segment.
func (c *Conn) attachCommonOptions(seg *Segment) {
	if c.peerTS {
		seg.HasTS = true
		seg.TSVal = c.stack.tsNow()
		if c.tsEcho {
			seg.TSEcr = c.tsRecent
		}
	}
	if c.peerSACK {
		for _, r := range c.rcvQ.SACKRanges(MaxSACKBlocks) {
			seg.SACKBlocks = append(seg.SACKBlocks, SACKBlock{
				Start: c.rcvNxt.Add(r[0]),
				End:   c.rcvNxt.Add(r[1]),
			})
		}
	}
	if c.ecnOn && c.eceToSend {
		seg.Flags |= FlagECE
	}
}

// sendRST emits a reset carrying the given sequence number.
func (c *Conn) sendRST(seq Seq) {
	seg := &Segment{
		SrcPort: c.localPort,
		DstPort: c.remotePort,
		SeqNum:  seq,
		AckNum:  c.rcvNxt,
		Flags:   FlagRST | FlagACK,
	}
	c.transmit(seg, false)
}

// transmit hands a segment to the stack's IP output. Data segments are
// marked ECT(0) when ECN is negotiated. When traced, each data
// transmission — original or retransmit — gets a fresh journey packet
// id so the analyzer can follow exactly this copy across the mesh.
func (c *Conn) transmit(seg *Segment, isData bool) {
	c.Stats.SegsSent++
	if tr := c.stack.Trace; tr != nil && len(seg.Payload) > 0 {
		seg.JID = tr.NextID()
		// A = 0-based stream offset of the first payload byte (the SYN
		// occupies iss, so data starts at iss+1).
		tr.Emit(obs.Event{
			T: c.stack.eng.Now(), Kind: obs.JourneySeg, Node: c.stack.TraceNode,
			J: seg.JID, A: int64(seg.SeqNum.Diff(c.iss) - 1), Len: len(seg.Payload),
		})
	}
	c.emitJ(obs.TCPSend, seg.JID, int64(seg.SeqNum), int64(seg.AckNum), len(seg.Payload))
	var ecn ip6.ECN
	if c.ecnOn && isData {
		ecn = ip6.ECT0
	}
	c.stack.sendSegment(c.localAddr, c.remoteAddr, seg, ecn)
}

// startRTTSample begins timing seq's round trip if no sample is pending
// (Karn's rule; with timestamps every ACK provides a sample instead).
func (c *Conn) startRTTSample(seq Seq) {
	if c.peerTS || c.rttPending {
		return
	}
	c.rttPending = true
	c.rttSeq = seq
	c.rttTime = c.stack.eng.Now()
}

// ----- timers -----

func (c *Conn) armRexmt() {
	if c.sndMax.Diff(c.sndUna) <= 0 && !c.finQueued {
		return
	}
	if !c.rexmt.Armed() {
		c.rexmt.Reset(c.rtt.Backoff(c.rexmtShift))
	}
}

// rearmRexmt restarts the timer after forward progress.
func (c *Conn) rearmRexmt() {
	c.rexmt.Stop()
	if c.sndMax.Diff(c.sndUna) > 0 || (c.finQueued && !c.finAcked()) {
		c.rexmt.Reset(c.rtt.Backoff(c.rexmtShift))
	}
}

// onRTO handles retransmission timeout: multiplicative decrease to one
// segment, slow-start restart, exponential backoff, and eventual abort.
func (c *Conn) onRTO() {
	if c.sndMax.Diff(c.sndUna) <= 0 && !(c.finQueued && !c.finAcked()) &&
		c.state != StateSynSent && c.state != StateSynReceived {
		// Stale timer: nothing outstanding to retransmit.
		c.rexmtShift = 0
		return
	}
	c.Stats.Timeouts++
	c.rexmtShift++
	c.emit(obs.TCPRTO, int64(c.rexmtShift), int64(c.rtt.RTO()), 0)
	if c.rexmtShift > c.cfg.MaxRetransmits {
		c.teardown(ErrConnTimeout)
		return
	}
	switch c.state {
	case StateSynSent, StateSynReceived:
		// Karn: the pending sample still times the ORIGINAL SYN, so the
		// eventual ACK would seed srtt with the whole backoff interval.
		// Restart it so only the final round trip is measured.
		// (Restarting rather than skipping trades the unbounded
		// RTO-inflated overestimate for a bounded underestimate when the
		// SYN/ACK was merely delayed past the initial RTO — preferable,
		// since the handshake is the only sample source until data flows.)
		c.rttPending = false
		c.sendSYN(c.state == StateSynReceived)
		c.rexmt.Reset(c.rtt.Backoff(c.rexmtShift))
		return
	}
	mss := c.effMSS()
	flight := minInt(c.sndMax.Diff(c.sndUna), c.sendWindow())
	c.cong.OnRTO(c.now(), mss, flight)
	c.traceCwnd()
	c.inRecovery = false
	// RFC 6582: remember the highest sequence sent so later duplicate
	// ACKs for this same window do not re-enter fast recovery.
	c.recover = c.sndMax
	c.dupAcks = 0
	c.sb.Reset()
	c.rttPending = false // Karn: do not sample retransmitted segments
	c.rtxPipe = 0
	c.sndNxt = c.sndUna
	c.rexmt.Reset(c.rtt.Backoff(c.rexmtShift))
	c.output()
}

// schedulePersist arms the zero-window probe timer.
func (c *Conn) schedulePersist() {
	d := clampDur(c.rtt.Backoff(c.persistShift), 5*sim.Second/10, 60*sim.Second)
	c.persist.Reset(d)
}

// onPersist forces progress through a closed (or silly) window: it sends
// one byte of data — or the FIN — regardless of window checks. Each
// probe restarts from snd.una (the closed window almost certainly
// dropped the previous one) and the cycle always rearms: the probe byte
// and the FIN's phantom slot must not be mistaken for "real data in
// flight", or the prober dies with nothing else armed and the
// connection deadlocks against a zero window.
func (c *Conn) onPersist() {
	if c.state == StateClosed {
		return
	}
	pendingFin := c.finQueued && !c.finAcked()
	unsent := c.queuedEnd.Diff(c.sndUna)
	if unsent <= 0 && !pendingFin {
		return
	}
	flight := c.sndNxt.Diff(c.sndUna)
	if pendingFin && c.sndNxt.GT(c.queuedEnd) {
		flight-- // the transmitted FIN occupies sequence space, not data
	}
	if flight > 1 {
		// Real data beyond a probe is in flight; its ACK or RTO drives us.
		return
	}
	c.Stats.ZeroWindowProbes++
	c.probing = true
	// Karn: a re-probe makes any pending RTT sample ambiguous — without
	// this the first probe's sample survives the whole persist episode
	// and the reopening ACK would feed the estimator minutes of "RTT".
	// The first probe is still timed (sendData restarts the sample for
	// data that was never sent before).
	c.rttPending = false
	c.sndNxt = c.sndUna // re-probe from the window edge
	if unsent > 0 {
		// One byte of data; the FIN rides along when it is next in line.
		c.sendData(c.sndNxt, 1, pendingFin && unsent == 1, false)
	} else {
		c.sendData(c.sndNxt, 0, true, false)
	}
	c.probing = false
	c.persistShift++
	c.schedulePersist()
}

// onDelAck flushes a pending delayed acknowledgment.
func (c *Conn) onDelAck() {
	c.Stats.DelayedAcks++
	c.sendAck()
}

func (c *Conn) enterTimeWait() {
	c.setState(StateTimeWait)
	c.rexmt.Stop()
	c.persist.Stop()
	c.timeWait.Reset(2 * c.cfg.MSL)
}

func (c *Conn) onTimeWaitExpiry() {
	c.teardown(nil)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
