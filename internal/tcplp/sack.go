package tcplp

// scoreboard tracks which ranges beyond snd.una the peer has selectively
// acknowledged (RFC 2018 sender side). It is a small sorted list of
// non-overlapping ranges — with a four-segment window it can never hold
// more than a couple of entries, which is why SACK is affordable on a
// mote.
type scoreboard struct {
	ranges []SACKBlock // sorted by Start, non-overlapping
}

// Add merges a reported SACK block. Blocks at or below una are stale and
// ignored.
func (sb *scoreboard) Add(blk SACKBlock, una Seq) {
	if blk.End.LEQ(blk.Start) || blk.End.LEQ(una) {
		return
	}
	if blk.Start.LT(una) {
		blk.Start = una
	}
	var out []SACKBlock
	inserted := false
	for _, r := range sb.ranges {
		switch {
		case r.End.LT(blk.Start):
			out = append(out, r)
		case blk.End.LT(r.Start):
			if !inserted {
				out = append(out, blk)
				inserted = true
			}
			out = append(out, r)
		default: // overlap or adjacency: absorb
			blk.Start = minSeq(blk.Start, r.Start)
			blk.End = maxSeq(blk.End, r.End)
		}
	}
	if !inserted {
		out = append(out, blk)
	}
	sb.ranges = out
}

// AdvanceUna drops ranges covered by a cumulative ACK to una.
func (sb *scoreboard) AdvanceUna(una Seq) {
	out := sb.ranges[:0]
	for _, r := range sb.ranges {
		if r.End.GT(una) {
			if r.Start.LT(una) {
				r.Start = una
			}
			out = append(out, r)
		}
	}
	sb.ranges = out
}

// Reset clears the scoreboard (after an RTO, conservatively forgetting
// SACK information as FreeBSD does).
func (sb *scoreboard) Reset() { sb.ranges = sb.ranges[:0] }

// Covers reports whether [start, end) is entirely SACKed.
func (sb *scoreboard) Covers(start, end Seq) bool {
	for _, r := range sb.ranges {
		if r.Start.LEQ(start) && end.LEQ(r.End) {
			return true
		}
	}
	return false
}

// SackedBytes returns the total bytes covered by the scoreboard.
func (sb *scoreboard) SackedBytes() int {
	n := 0
	for _, r := range sb.ranges {
		n += r.End.Diff(r.Start)
	}
	return n
}

// NextHole returns the first unSACKed range within [una, max), scanning
// for retransmission candidates during SACK-based recovery. ok is false
// when everything below max is SACKed.
func (sb *scoreboard) NextHole(una, max Seq) (SACKBlock, bool) {
	at := una
	for _, r := range sb.ranges {
		if r.End.LEQ(at) {
			continue
		}
		if at.LT(r.Start) {
			end := minSeq(r.Start, max)
			if at.LT(end) {
				return SACKBlock{Start: at, End: end}, true
			}
			return SACKBlock{}, false
		}
		at = r.End
	}
	if at.LT(max) {
		return SACKBlock{Start: at, End: max}, true
	}
	return SACKBlock{}, false
}

// Empty reports whether no ranges are recorded.
func (sb *scoreboard) Empty() bool { return len(sb.ranges) == 0 }
