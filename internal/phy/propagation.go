package phy

import "math"

// Point is a node position in meters.
type Point struct{ X, Y float64 }

// Dist returns the Euclidean distance between two points.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Propagation decides which radios hear which. Connected means a frame
// can be decoded; Senses means enough energy arrives to (a) show the
// channel busy to a CCA and (b) corrupt a concurrent reception. Senses
// must be a superset of Connected.
//
// Distinguishing the two ranges is what makes hidden terminals (§7.1)
// arise structurally: a transmitter's CCA cannot sense a node outside its
// Senses range, yet both of their frames can collide at a receiver in
// between.
type Propagation interface {
	Connected(a, b *Radio) bool
	Senses(a, b *Radio) bool
}

// UnitDisk is the classic unit-disk model: frames decode within TxRange
// and are sensed (carrier sense / interference) within SenseRange.
type UnitDisk struct {
	TxRange    float64
	SenseRange float64
}

// NewUnitDisk returns a model with the given decode range and an equal or
// larger sense range. If senseRange < txRange it is clamped to txRange.
func NewUnitDisk(txRange, senseRange float64) *UnitDisk {
	if senseRange < txRange {
		senseRange = txRange
	}
	return &UnitDisk{TxRange: txRange, SenseRange: senseRange}
}

// Connected reports whether b can decode a's frames.
func (u *UnitDisk) Connected(a, b *Radio) bool {
	return a != b && a.pos.Dist(b.pos) <= u.TxRange
}

// Senses reports whether a's transmissions raise energy at b.
func (u *UnitDisk) Senses(a, b *Radio) bool {
	return a != b && a.pos.Dist(b.pos) <= u.SenseRange
}

// Graph is an explicit adjacency model for tests and contrived topologies.
// Links are directional; use AddLink twice (or AddBiLink) for symmetry.
type Graph struct {
	connected map[[2]int]bool
	senses    map[[2]int]bool
}

// NewGraph returns an empty explicit-connectivity model.
func NewGraph() *Graph {
	return &Graph{connected: map[[2]int]bool{}, senses: map[[2]int]bool{}}
}

// AddLink makes b able to decode (and sense) a.
func (g *Graph) AddLink(a, b int) {
	g.connected[[2]int{a, b}] = true
	g.senses[[2]int{a, b}] = true
}

// AddBiLink makes a and b able to decode each other.
func (g *Graph) AddBiLink(a, b int) {
	g.AddLink(a, b)
	g.AddLink(b, a)
}

// AddSense makes b sense (but not decode) a's transmissions.
func (g *Graph) AddSense(a, b int) {
	g.senses[[2]int{a, b}] = true
}

// Connected implements Propagation.
func (g *Graph) Connected(a, b *Radio) bool {
	return g.connected[[2]int{a.id, b.id}]
}

// Senses implements Propagation.
func (g *Graph) Senses(a, b *Radio) bool {
	return g.senses[[2]int{a.id, b.id}] || g.connected[[2]int{a.id, b.id}]
}
