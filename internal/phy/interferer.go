package phy

import (
	"tcplp/internal/sim"
)

// Interferer is an external noise source (WiFi, microwave ovens, "regular
// human activity in an office", §9.5). It occupies the channel in bursts:
// burst lengths are exponentially distributed around BurstMean, and gaps
// between bursts are exponential around the reciprocal of the current
// activity rate. Activity(t) lets callers shape a diurnal profile for the
// Fig. 10 experiment.
type Interferer struct {
	eng   *sim.Engine
	radio *Radio

	// BurstMean is the mean burst duration.
	BurstMean sim.Duration
	// MeanGap is the mean idle gap between bursts at activity 1.0.
	MeanGap sim.Duration
	// Activity returns the relative activity level at time t; 0 disables
	// interference, 1 is nominal. Nil means constant 1.
	Activity func(t sim.Time) float64

	running bool
}

// NewInterferer creates a noise source at pos. Its transmissions are
// sensed within the channel's propagation model but never decoded.
func NewInterferer(c *Channel, id int, pos Point) *Interferer {
	r := c.AddRadio(id, pos)
	r.NoiseOnly = true
	return &Interferer{
		eng:       c.eng,
		radio:     r,
		BurstMean: 2 * sim.Millisecond,
		MeanGap:   50 * sim.Millisecond,
	}
}

// Radio returns the underlying noise radio (for positioning in tests).
func (in *Interferer) Radio() *Radio { return in.radio }

// Start begins the burst process.
func (in *Interferer) Start() {
	if in.running {
		return
	}
	in.running = true
	in.scheduleNext()
}

// Stop halts the burst process after the current burst.
func (in *Interferer) Stop() { in.running = false }

func (in *Interferer) activity() float64 {
	if in.Activity == nil {
		return 1
	}
	return in.Activity(in.eng.Now())
}

func (in *Interferer) scheduleNext() {
	if !in.running {
		return
	}
	act := in.activity()
	if act <= 0 {
		// Quiet period: poll again soon for the activity profile to rise.
		in.eng.Schedule(sim.Second, in.scheduleNext)
		return
	}
	gap := sim.Duration(in.eng.Rand().ExpFloat64() * float64(in.MeanGap) / act)
	in.eng.Schedule(gap, in.burst)
}

func (in *Interferer) burst() {
	if !in.running {
		return
	}
	if in.radio.Transmitting() {
		in.eng.Schedule(in.BurstMean, in.scheduleNext)
		return
	}
	d := sim.Duration(in.eng.Rand().ExpFloat64() * float64(in.BurstMean))
	if d < UnitBackoff {
		d = UnitBackoff
	}
	// Emit noise as back-to-back maximal "frames" covering the burst.
	n := int(d / AirTime(MaxPHYPayload))
	if n < 1 {
		n = 1
	}
	var emit func(k int)
	emit = func(k int) {
		if k == 0 || !in.running {
			in.scheduleNext()
			return
		}
		in.radio.OnTxDone = func() { emit(k - 1) }
		in.radio.Transmit(make([]byte, MaxPHYPayload))
	}
	emit(n)
}
