package phy

import (
	"testing"

	"tcplp/internal/sim"
)

// lineTopo builds n radios on a line with unit spacing, decode range 1,
// sense range sense. All radios are left asleep.
func lineTopo(t *testing.T, n int, sense float64) (*sim.Engine, *Channel) {
	t.Helper()
	eng := sim.NewEngine(1)
	ch := NewChannel(eng, NewUnitDisk(1.0, sense))
	for i := 0; i < n; i++ {
		ch.AddRadio(i, Point{X: float64(i)})
	}
	return eng, ch
}

func TestSimpleDelivery(t *testing.T) {
	eng, ch := lineTopo(t, 2, 1.0)
	a, b := ch.Radios()[0], ch.Radios()[1]
	b.SetListen(true)
	var got []byte
	b.OnReceive = func(data []byte) { got = data }
	a.SetListen(true)
	frame := (&Frame{Type: FrameData, Dst: b.Addr(), Src: a.Addr(), Payload: []byte("x")}).Encode()
	a.Transmit(frame)
	eng.Run()
	if got == nil {
		t.Fatal("frame not delivered")
	}
	f, err := DecodeFrame(got)
	if err != nil || string(f.Payload) != "x" {
		t.Fatalf("bad delivery: %v %v", f, err)
	}
	if b.FramesReceived() != 1 || a.FramesSent() != 1 {
		t.Fatalf("counters: sent=%d recv=%d", a.FramesSent(), b.FramesReceived())
	}
}

func TestSleepingRadioMissesFrame(t *testing.T) {
	eng, ch := lineTopo(t, 2, 1.0)
	a, b := ch.Radios()[0], ch.Radios()[1]
	received := false
	b.OnReceive = func([]byte) { received = true }
	// b stays asleep
	a.SetListen(true)
	a.Transmit((&Frame{Type: FrameData, Dst: b.Addr(), Src: a.Addr()}).Encode())
	eng.Run()
	if received {
		t.Fatal("sleeping radio received a frame")
	}
}

func TestOutOfRangeMissesFrame(t *testing.T) {
	eng, ch := lineTopo(t, 3, 1.0)
	a, c := ch.Radios()[0], ch.Radios()[2] // distance 2 > range 1
	received := false
	c.SetListen(true)
	c.OnReceive = func([]byte) { received = true }
	a.Transmit((&Frame{Type: FrameData, Dst: c.Addr(), Src: a.Addr()}).Encode())
	eng.Run()
	if received {
		t.Fatal("out-of-range radio received a frame")
	}
}

// Hidden terminal: radios 0 and 2 cannot sense each other (sense range 1)
// but both reach radio 1. Simultaneous transmissions must collide at 1.
func TestHiddenTerminalCollision(t *testing.T) {
	eng, ch := lineTopo(t, 3, 1.0)
	a, b, c := ch.Radios()[0], ch.Radios()[1], ch.Radios()[2]
	received := 0
	b.SetListen(true)
	b.OnReceive = func([]byte) { received++ }
	a.SetListen(true)
	c.SetListen(true)
	frame := func(src *Radio) []byte {
		return (&Frame{Type: FrameData, Dst: b.Addr(), Src: src.Addr(), Payload: make([]byte, 50)}).Encode()
	}
	// a and c start simultaneously; neither senses the other, and their
	// equal SPI-load phases mean their airtimes coincide exactly at b.
	a.Transmit(frame(a))
	c.Transmit(frame(c))
	eng.Run()
	if received != 0 {
		t.Fatalf("collided frames delivered: %d", received)
	}
	if b.ReceptionsDropped() == 0 {
		t.Fatal("collision not recorded as dropped reception")
	}
}

// With a larger sense range, radio 2 defers... but here we test that
// carrier sensing via ChannelClear sees a neighbor's transmission.
func TestCCA(t *testing.T) {
	eng, ch := lineTopo(t, 3, 2.0)
	a, c := ch.Radios()[0], ch.Radios()[2]
	a.SetListen(true)
	c.SetListen(true)
	if !c.ChannelClear() {
		t.Fatal("channel should be clear before any transmission")
	}
	a.Transmit((&Frame{Type: FrameData, Dst: AddrFromID(1), Src: a.Addr(), Payload: make([]byte, 80)}).Encode())
	// During SPI load the channel is still clear.
	eng.RunUntil(eng.Now().Add(LoadTime(103) / 2))
	if !c.ChannelClear() {
		t.Fatal("channel busy during SPI load phase")
	}
	// During airtime it is busy at sense range 2.
	eng.RunUntil(eng.Now().Add(LoadTime(103)/2 + AirTime(103)/2))
	if c.ChannelClear() {
		t.Fatal("channel clear while neighbor transmitting")
	}
	eng.Run()
	if !c.ChannelClear() {
		t.Fatal("channel busy after transmission ended")
	}
}

func TestHalfDuplex(t *testing.T) {
	eng, ch := lineTopo(t, 2, 1.0)
	a, b := ch.Radios()[0], ch.Radios()[1]
	received := false
	a.SetListen(true)
	b.SetListen(true)
	a.OnReceive = func([]byte) { received = true }
	big := (&Frame{Type: FrameData, Dst: b.Addr(), Src: a.Addr(), Payload: make([]byte, 100)}).Encode()
	a.Transmit(big)
	// b transmits back while a is still mid-transmission: a must miss it.
	eng.Schedule(sim.Millisecond, func() {
		b.Transmit((&Frame{Type: FrameData, Dst: a.Addr(), Src: b.Addr()}).Encode())
	})
	eng.RunUntil(eng.Now().Add(3 * sim.Millisecond))
	if received {
		t.Fatal("transmitting radio received a frame")
	}
	eng.Run()
}

func TestPERLoss(t *testing.T) {
	eng, ch := lineTopo(t, 2, 1.0)
	ch.PER = func(src, dst *Radio) float64 { return 1.0 } // always corrupt
	a, b := ch.Radios()[0], ch.Radios()[1]
	received := false
	b.SetListen(true)
	b.OnReceive = func([]byte) { received = true }
	a.Transmit((&Frame{Type: FrameData, Dst: b.Addr(), Src: a.Addr()}).Encode())
	eng.Run()
	if received {
		t.Fatal("PER=1 frame delivered")
	}
	if b.ReceptionsDropped() != 1 {
		t.Fatalf("dropped = %d, want 1", b.ReceptionsDropped())
	}
}

func TestDutyCycleAccounting(t *testing.T) {
	eng, ch := lineTopo(t, 1, 1.0)
	a := ch.Radios()[0]
	// Sleep 1s, listen 1s, sleep again.
	eng.Schedule(sim.Second, func() { a.SetListen(true) })
	eng.Schedule(2*sim.Second, func() { a.SetListen(false) })
	eng.RunUntil(sim.Time(4 * sim.Second))
	dc := a.DutyCycle()
	if dc < 0.24 || dc > 0.26 {
		t.Fatalf("duty cycle = %.3f, want 0.25", dc)
	}
	if a.TimeIn(StateListen) != sim.Second {
		t.Fatalf("listen time = %v, want 1s", a.TimeIn(StateListen))
	}
	a.ResetEnergy()
	if a.TimeIn(StateListen) != 0 {
		t.Fatal("ResetEnergy did not clear accumulators")
	}
}

func TestNoiseOnlyCorruptsButNeverDelivers(t *testing.T) {
	eng := sim.NewEngine(1)
	ch := NewChannel(eng, NewUnitDisk(1.0, 1.0))
	a := ch.AddRadio(0, Point{X: 0})
	b := ch.AddRadio(1, Point{X: 1})
	noise := ch.AddRadio(2, Point{X: 1.5})
	noise.NoiseOnly = true
	received := 0
	b.SetListen(true)
	b.OnReceive = func([]byte) { received++ }
	a.SetListen(true)
	noise.SetListen(true)

	// Noise alone is never decoded by b.
	noise.Transmit(make([]byte, 60))
	eng.Run()
	if received != 0 {
		t.Fatal("noise frame was decoded")
	}

	// Noise overlapping a real frame corrupts it at b.
	// The noise burst is scheduled so that, after its own SPI load, its
	// airtime overlaps a's frame airtime at b.
	a.Transmit((&Frame{Type: FrameData, Dst: b.Addr(), Src: a.Addr(), Payload: make([]byte, 80)}).Encode())
	eng.Schedule(LoadTime(103), func() { noise.Transmit(make([]byte, 60)) })
	eng.Run()
	if received != 0 {
		t.Fatal("frame overlapped by noise was delivered")
	}
}

func TestGraphPropagation(t *testing.T) {
	eng := sim.NewEngine(1)
	g := NewGraph()
	ch := NewChannel(eng, g)
	a := ch.AddRadio(0, Point{})
	b := ch.AddRadio(1, Point{})
	c := ch.AddRadio(2, Point{})
	g.AddBiLink(0, 1)
	g.AddSense(2, 1) // c is sensed at b but not decodable
	for _, r := range ch.Radios() {
		r.SetListen(true)
	}
	got := 0
	b.OnReceive = func([]byte) { got++ }
	a.Transmit((&Frame{Type: FrameData, Dst: b.Addr(), Src: a.Addr()}).Encode())
	eng.Run()
	if got != 1 {
		t.Fatalf("graph link delivery failed: %d", got)
	}
	c.Transmit((&Frame{Type: FrameData, Dst: b.Addr(), Src: c.Addr()}).Encode())
	eng.Run()
	if got != 1 {
		t.Fatal("sense-only link delivered a frame")
	}
}

func TestInterfererRaisesLoss(t *testing.T) {
	eng := sim.NewEngine(3)
	ch := NewChannel(eng, NewUnitDisk(1.0, 1.5))
	a := ch.AddRadio(0, Point{X: 0})
	b := ch.AddRadio(1, Point{X: 1})
	in := NewInterferer(ch, 99, Point{X: 1.2})
	in.BurstMean = 4 * sim.Millisecond
	in.MeanGap = 8 * sim.Millisecond
	a.SetListen(true)
	b.SetListen(true)
	received := 0
	b.OnReceive = func([]byte) { received++ }
	in.Start()
	sent := 0
	var sendLoop func()
	sendLoop = func() {
		if sent >= 200 {
			in.Stop()
			return
		}
		sent++
		a.Transmit((&Frame{Type: FrameData, Dst: b.Addr(), Src: a.Addr(), Payload: make([]byte, 80)}).Encode())
		eng.Schedule(20*sim.Millisecond, sendLoop)
	}
	sendLoop()
	eng.RunUntil(sim.Time(10 * sim.Second))
	if received == 0 {
		t.Fatal("interference destroyed every frame (too aggressive)")
	}
	if received >= sent {
		t.Fatalf("interference destroyed nothing: %d/%d", received, sent)
	}
}
