// Package phy simulates the IEEE 802.15.4 physical and lower-MAC layer:
// frame encoding, half-duplex radios with sleep/listen/transmit states,
// and a shared channel with receiver-side collision resolution.
//
// Timing follows the paper's measurements on the AT86RF233 (§6.4): a byte
// takes 32 µs on air at 250 kb/s, and moving a byte over SPI to the radio
// costs about the same again, so a full 127-byte frame occupies the node
// for ≈8.2 ms while occupying the channel for only ≈4.3 ms.
package phy

import (
	"encoding/binary"
	"fmt"
)

// Addr is an EUI-64 extended address, the 8-byte long-address format of
// IEEE 802.15.4. The paper's Table 6 23-byte MAC header corresponds to
// long addressing, which is what 6LoWPAN mesh networks typically use.
type Addr [8]byte

// BroadcastAddr is the all-ones broadcast address.
var BroadcastAddr = Addr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// AddrFromID builds a deterministic address from a small node identifier,
// convenient for tests and topology construction.
func AddrFromID(id int) Addr {
	var a Addr
	binary.BigEndian.PutUint64(a[:], uint64(id)+1)
	return a
}

// ID recovers the node identifier from an address built by AddrFromID.
func (a Addr) ID() int {
	return int(binary.BigEndian.Uint64(a[:])) - 1
}

// IsBroadcast reports whether a is the broadcast address.
func (a Addr) IsBroadcast() bool { return a == BroadcastAddr }

func (a Addr) String() string {
	if a.IsBroadcast() {
		return "ff:*"
	}
	return fmt.Sprintf("%02x%02x:%02x%02x:%02x%02x:%02x%02x",
		a[0], a[1], a[2], a[3], a[4], a[5], a[6], a[7])
}
