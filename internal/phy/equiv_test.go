package phy_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"tcplp/internal/mesh"
	"tcplp/internal/phy"
	"tcplp/internal/sim"
)

// phyTrace runs scripted contending traffic over topo and returns a full
// delivery/collision trace: every decoded frame (receiver, size, time) plus
// each radio's sent/received/dropped counters. The per-link PER draw
// consumes the shared engine RNG, so the trace also proves the delivery
// *iteration order* matches — any reordering desynchronizes the stream.
func phyTrace(t *testing.T, topo mesh.Topology, seed int64, brute bool, workers int) string {
	t.Helper()
	eng := sim.NewEngine(seed)
	ch := phy.NewChannel(eng, phy.NewUnitDisk(topo.TxRange, topo.SenseRange))
	if brute {
		ch.DisableIndex()
	} else if !ch.Indexed() {
		t.Fatal("unit-disk channel did not build a spatial index")
	}
	ch.SetWorkers(workers)
	ch.PER = func(src, dst *phy.Radio) float64 { return 0.05 }
	var trace strings.Builder
	radios := make([]*phy.Radio, topo.N())
	for i, p := range topo.Positions {
		r := ch.AddRadio(i, p)
		r.SetListen(true)
		i := i
		r.OnReceive = func(data []byte) {
			fmt.Fprintf(&trace, "rx %d len %d at %d\n", i, len(data), eng.Now())
		}
		radios[i] = r
	}
	script := rand.New(rand.NewSource(seed + 99))
	for k := 0; k < 500; k++ {
		r := radios[script.Intn(len(radios))]
		at := sim.Time(script.Int63n(int64(2 * sim.Second)))
		size := 20 + script.Intn(80)
		eng.At(at, func() {
			if !r.Transmitting() {
				r.Transmit(make([]byte, size))
			}
		})
	}
	eng.Run()
	for i, r := range radios {
		fmt.Fprintf(&trace, "radio %d sent %d recv %d dropped %d\n",
			i, r.FramesSent(), r.FramesReceived(), r.ReceptionsDropped())
	}
	return trace.String()
}

// TestGridIndexMatchesBruteForce is the PHY-index equivalence regression:
// office, twinleaf, and a seeded random-geometric field must produce
// bit-identical delivery and collision traces under the spatial index and
// the retained all-pairs reference path.
func TestGridIndexMatchesBruteForce(t *testing.T) {
	topos := map[string]mesh.Topology{
		"office":   mesh.Office(),
		"twinleaf": mesh.TwinLeaf(4, 20),
		"random":   mesh.RandomGeometric(150, 8, 5),
	}
	for name, topo := range topos {
		for seed := int64(1); seed <= 3; seed++ {
			grid := phyTrace(t, topo, seed, false, 0)
			brute := phyTrace(t, topo, seed, true, 0)
			if grid != brute {
				gl, bl := strings.Split(grid, "\n"), strings.Split(brute, "\n")
				for i := 0; i < len(gl) && i < len(bl); i++ {
					if gl[i] != bl[i] {
						t.Fatalf("%s seed %d: traces diverge at line %d:\n  grid:  %s\n  brute: %s",
							name, seed, i, gl[i], bl[i])
					}
				}
				t.Fatalf("%s seed %d: trace lengths differ (%d vs %d lines)", name, seed, len(gl), len(bl))
			}
		}
	}
}

// TestParallelFanoutMatchesSerial is the worker-pool equivalence
// regression: with MinParallelFanout forced to 1 so every fan-out takes
// the parallel path even on small neighbor sets, the delivery and
// collision traces — including the RNG-consuming per-link loss draws —
// must be bit-identical to the serial engine-thread path.
func TestParallelFanoutMatchesSerial(t *testing.T) {
	old := phy.MinParallelFanout
	phy.MinParallelFanout = 1
	defer func() { phy.MinParallelFanout = old }()
	topos := map[string]mesh.Topology{
		"office":   mesh.Office(),
		"twinleaf": mesh.TwinLeaf(4, 20),
		"random":   mesh.RandomGeometric(150, 8, 5),
	}
	for name, topo := range topos {
		for seed := int64(1); seed <= 3; seed++ {
			serial := phyTrace(t, topo, seed, false, 0)
			for _, workers := range []int{1, 4} {
				par := phyTrace(t, topo, seed, false, workers)
				if par != serial {
					sl, pl := strings.Split(serial, "\n"), strings.Split(par, "\n")
					for i := 0; i < len(sl) && i < len(pl); i++ {
						if sl[i] != pl[i] {
							t.Fatalf("%s seed %d workers %d: traces diverge at line %d:\n  serial:   %s\n  parallel: %s",
								name, seed, workers, i, sl[i], pl[i])
						}
					}
					t.Fatalf("%s seed %d workers %d: trace lengths differ (%d vs %d lines)",
						name, seed, workers, len(sl), len(pl))
				}
			}
		}
	}
}

// Moving a radio must invalidate cached neighbor sets: after SetPos the
// index and the brute-force path agree on the new geometry.
func TestGridIndexSetPosInvalidates(t *testing.T) {
	run := func(brute bool) string {
		eng := sim.NewEngine(1)
		ch := phy.NewChannel(eng, phy.NewUnitDisk(10, 13))
		if brute {
			ch.DisableIndex()
		}
		var trace strings.Builder
		a := ch.AddRadio(0, phy.Point{X: 0})
		b := ch.AddRadio(1, phy.Point{X: 100}) // out of range
		b.SetListen(true)
		a.SetListen(true)
		b.OnReceive = func(data []byte) { fmt.Fprintf(&trace, "b got %d at %d\n", len(data), eng.Now()) }
		eng.Schedule(10*sim.Millisecond, func() { a.Transmit(make([]byte, 30)) })
		// Walk b into range, then transmit again.
		eng.Schedule(100*sim.Millisecond, func() { b.SetPos(phy.Point{X: 8}) })
		eng.Schedule(200*sim.Millisecond, func() { a.Transmit(make([]byte, 40)) })
		eng.Run()
		fmt.Fprintf(&trace, "recv %d dropped %d\n", b.FramesReceived(), b.ReceptionsDropped())
		return trace.String()
	}
	grid, brute := run(false), run(true)
	if grid != brute {
		t.Fatalf("SetPos behavior diverged:\ngrid:\n%s\nbrute:\n%s", grid, brute)
	}
	if !strings.Contains(grid, "b got 40") {
		t.Fatalf("moved radio did not receive: %s", grid)
	}
}
