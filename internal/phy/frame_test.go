package phy

import (
	"bytes"
	"testing"
	"testing/quick"

	"tcplp/internal/sim"
)

func TestFrameRoundTrip(t *testing.T) {
	f := &Frame{
		Type:       FrameData,
		Seq:        42,
		PAN:        0xface,
		Dst:        AddrFromID(7),
		Src:        AddrFromID(3),
		AckRequest: true,
		Payload:    []byte("hello 6lowpan"),
	}
	b := f.Encode()
	if len(b) != f.WireLen() {
		t.Fatalf("encoded %d bytes, WireLen says %d", len(b), f.WireLen())
	}
	g, err := DecodeFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if g.Type != f.Type || g.Seq != f.Seq || g.PAN != f.PAN || g.Dst != f.Dst ||
		g.Src != f.Src || g.AckRequest != f.AckRequest || !bytes.Equal(g.Payload, f.Payload) {
		t.Fatalf("round trip mismatch: %+v vs %+v", g, f)
	}
}

func TestAckRoundTrip(t *testing.T) {
	a := AckFor(99, true)
	b := a.Encode()
	if len(b) != AckFrameLen {
		t.Fatalf("ack length %d, want %d", len(b), AckFrameLen)
	}
	g, err := DecodeFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if g.Type != FrameAck || g.Seq != 99 || !g.FramePending {
		t.Fatalf("ack round trip: %+v", g)
	}
}

func TestCommandRoundTrip(t *testing.T) {
	f := &Frame{
		Type:       FrameCommand,
		Seq:        1,
		Dst:        AddrFromID(0),
		Src:        AddrFromID(5),
		Command:    DataRequest,
		AckRequest: true,
	}
	g, err := DecodeFrame(f.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if g.Type != FrameCommand || g.Command != DataRequest {
		t.Fatalf("command round trip: %+v", g)
	}
}

func TestFrameOverheadMatchesPaper(t *testing.T) {
	// Table 6: 23 B of IEEE 802.15.4 overhead per frame.
	if FrameOverhead != 23 {
		t.Fatalf("FrameOverhead = %d, want 23", FrameOverhead)
	}
	if MaxMACPayload != 104 {
		t.Fatalf("MaxMACPayload = %d, want 104", MaxMACPayload)
	}
}

func TestAirTimeMatchesPaper(t *testing.T) {
	// Table 5: a 127 B frame takes ≈4.1 ms on air.
	at := AirTime(MaxPHYPayload)
	if at < 4*sim.Millisecond || at > 4500*sim.Microsecond {
		t.Fatalf("127B airtime = %v, want ≈4.1-4.3ms", at)
	}
	// §6.4: node-occupancy for a full frame is ≈8.2 ms including SPI.
	total := at + LoadTime(MaxPHYPayload)
	if total < 8*sim.Millisecond || total > 8600*sim.Microsecond {
		t.Fatalf("127B total = %v, want ≈8.2-8.3ms", total)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeFrame([]byte{1, 2}); err != ErrFrameTooShort {
		t.Fatalf("short frame: %v", err)
	}
	if _, err := DecodeFrame(make([]byte, 200)); err != ErrFrameTooLong {
		t.Fatalf("long frame: %v", err)
	}
	// Data frame with short addressing modes is rejected.
	b := (&Frame{Type: FrameData, Dst: AddrFromID(1), Src: AddrFromID(2)}).Encode()
	b[1] &^= 0xc0 // clear src extended-addressing bits
	if _, err := DecodeFrame(b); err != ErrBadAddressing {
		t.Fatalf("bad addressing: %v", err)
	}
}

func TestOversizedFramePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("encoding an oversized frame should panic")
		}
	}()
	(&Frame{Type: FrameData, Payload: make([]byte, MaxMACPayload+1)}).Encode()
}

// Property: any payload up to the MAC maximum survives an encode/decode
// round trip with all flag combinations.
func TestQuickFrameRoundTrip(t *testing.T) {
	f := func(payload []byte, seq uint8, pan uint16, ar, fp bool, dst, src uint8) bool {
		if len(payload) > MaxMACPayload {
			payload = payload[:MaxMACPayload]
		}
		in := &Frame{
			Type: FrameData, Seq: seq, PAN: pan,
			Dst: AddrFromID(int(dst)), Src: AddrFromID(int(src)),
			AckRequest: ar, FramePending: fp, Payload: payload,
		}
		out, err := DecodeFrame(in.Encode())
		if err != nil {
			return false
		}
		return out.Seq == seq && out.PAN == pan && out.AckRequest == ar &&
			out.FramePending == fp && bytes.Equal(out.Payload, payload) &&
			out.Dst == in.Dst && out.Src == in.Src
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAddrFromID(t *testing.T) {
	for _, id := range []int{0, 1, 7, 1000} {
		if got := AddrFromID(id).ID(); got != id {
			t.Fatalf("AddrFromID(%d).ID() = %d", id, got)
		}
	}
	if !BroadcastAddr.IsBroadcast() {
		t.Fatal("broadcast address not recognized")
	}
	if AddrFromID(3).IsBroadcast() {
		t.Fatal("unicast address claimed broadcast")
	}
}
