package phy

import (
	"encoding/binary"
	"errors"
	"fmt"

	"tcplp/internal/sim"
)

// FrameType is the 802.15.4 frame type field.
type FrameType uint8

// Frame types (FCF bits 0-2).
const (
	FrameBeacon  FrameType = 0
	FrameData    FrameType = 1
	FrameAck     FrameType = 2
	FrameCommand FrameType = 3
)

func (t FrameType) String() string {
	switch t {
	case FrameBeacon:
		return "beacon"
	case FrameData:
		return "data"
	case FrameAck:
		return "ack"
	case FrameCommand:
		return "command"
	}
	return fmt.Sprintf("type%d", uint8(t))
}

// CommandID identifies a MAC command frame.
type CommandID uint8

// DataRequest is the MAC command a sleepy end device sends to poll its
// parent for queued downstream frames (Thread "data request", §3.2).
const DataRequest CommandID = 0x04

// PHY and framing constants.
const (
	// MaxPHYPayload is aMaxPHYPacketSize: the largest frame the PHY can
	// carry, including the MAC header and FCS (Table 5: 127 B).
	MaxPHYPayload = 127

	// DataHeaderLen is the MAC header length of a long-addressed data
	// frame: FCF(2) + seq(1) + dst PAN(2) + dst(8) + src(8) = 21 bytes.
	DataHeaderLen = 21

	// FCSLen is the length of the trailing frame check sequence.
	FCSLen = 2

	// FrameOverhead is header+FCS: the paper's Table 6 lists 23 B of
	// IEEE 802.15.4 overhead per frame.
	FrameOverhead = DataHeaderLen + FCSLen

	// MaxMACPayload is the usable payload of a maximal data frame.
	MaxMACPayload = MaxPHYPayload - FrameOverhead

	// AckFrameLen is the length of an immediate acknowledgment frame:
	// FCF(2) + seq(1) + FCS(2).
	AckFrameLen = 5
)

// Timing constants (250 kb/s O-QPSK PHY, AT86RF233 figures from §6.4).
const (
	// ByteAirTime is the on-air time of one byte at 250 kb/s.
	ByteAirTime = 32 * sim.Microsecond

	// SHRDuration is the synchronization header (preamble + SFD + PHR,
	// 6 byte-times) that precedes every frame on air.
	SHRDuration = 6 * ByteAirTime

	// SPIBytTime models the microcontroller↔radio SPI transfer cost per
	// byte. The paper measures a full frame at 8.2 ms node-occupancy vs
	// 4.1 ms airtime; the difference is SPI and driver overhead, which
	// halves the effective link bandwidth to ≈125 kb/s (§6.2 footnote).
	SPIByteTime = 32 * sim.Microsecond

	// TurnaroundTime (aTurnaroundTime) is the RX↔TX switch time, which
	// is also the gap before an immediate ACK is sent.
	TurnaroundTime = 192 * sim.Microsecond

	// CCATime is the duration of one clear-channel assessment (8 symbol
	// periods).
	CCATime = 128 * sim.Microsecond

	// UnitBackoff is aUnitBackoffPeriod, the CSMA backoff quantum.
	UnitBackoff = 320 * sim.Microsecond

	// AckWait is how long a transmitter waits for an immediate ACK
	// (aTurnaround + ACK air time + margin ≈ macAckWaitDuration).
	AckWait = 864 * sim.Microsecond
)

// AirTime returns the channel-occupancy time of a frame of n total bytes
// (header+payload+FCS).
func AirTime(n int) sim.Duration {
	return SHRDuration + sim.Duration(n)*ByteAirTime
}

// LoadTime returns the SPI/driver time to move a frame of n bytes between
// the microcontroller and the radio. The node is busy, the channel is not.
func LoadTime(n int) sim.Duration {
	return sim.Duration(n) * SPIByteTime
}

// Frame is a parsed IEEE 802.15.4 MAC frame. Data and command frames use
// long (EUI-64) addressing with PAN ID compression; ACK frames carry only
// a sequence number.
type Frame struct {
	Type         FrameType
	Seq          uint8
	PAN          uint16
	Dst, Src     Addr
	AckRequest   bool
	FramePending bool
	Command      CommandID // valid when Type == FrameCommand
	Payload      []byte

	// J is the journey packet id of the datagram the frame carries
	// (0 = untagged). Simulator metadata: decode zeroes it and the MAC
	// refills it from the radio's RxJID side channel.
	J int64
}

// FCF bit layout (IEEE 802.15.4-2006 §7.2.1.1).
const (
	fcfTypeMask    = 0x0007
	fcfPending     = 0x0010
	fcfAckRequest  = 0x0020
	fcfPANCompress = 0x0040
	fcfDstExtended = 0x0c00 // dst addressing mode = 3 (extended)
	fcfSrcExtended = 0xc000 // src addressing mode = 3 (extended)
)

// WireLen returns the encoded length of the frame including FCS.
func (f *Frame) WireLen() int {
	if f.Type == FrameAck {
		return AckFrameLen
	}
	n := DataHeaderLen + len(f.Payload) + FCSLen
	if f.Type == FrameCommand {
		n++ // command identifier byte
	}
	return n
}

// Encode serializes the frame to wire format. It panics if the frame
// exceeds MaxPHYPayload, which indicates a bug in the caller's
// fragmentation logic rather than a runtime condition.
func (f *Frame) Encode() []byte {
	n := f.WireLen()
	if n > MaxPHYPayload {
		panic(fmt.Sprintf("phy: frame of %d bytes exceeds %d-byte PHY limit", n, MaxPHYPayload))
	}
	b := make([]byte, 0, n)
	fcf := uint16(f.Type) & fcfTypeMask
	if f.FramePending {
		fcf |= fcfPending
	}
	if f.AckRequest {
		fcf |= fcfAckRequest
	}
	if f.Type != FrameAck {
		fcf |= fcfPANCompress | fcfDstExtended | fcfSrcExtended
	}
	b = binary.LittleEndian.AppendUint16(b, fcf)
	b = append(b, f.Seq)
	if f.Type != FrameAck {
		b = binary.LittleEndian.AppendUint16(b, f.PAN)
		b = append(b, f.Dst[:]...)
		b = append(b, f.Src[:]...)
		if f.Type == FrameCommand {
			b = append(b, byte(f.Command))
		}
		b = append(b, f.Payload...)
	}
	// The FCS is carried as zeros; corruption is modelled at the channel,
	// not by checksum mismatch.
	b = append(b, 0, 0)
	return b
}

// Decode errors.
var (
	ErrFrameTooShort = errors.New("phy: frame too short")
	ErrFrameTooLong  = errors.New("phy: frame exceeds PHY limit")
	ErrBadAddressing = errors.New("phy: unsupported addressing mode")
)

// DecodeFrameInto parses a wire-format frame into f, overwriting every
// field, without allocating: f.Payload aliases b and is valid only as
// long as b is. The MAC's receive path reuses one Frame per radio this
// way; consumers that keep payload bytes past the delivery callback must
// copy them (the 6LoWPAN reassembler and fragment forwarder both do).
func DecodeFrameInto(f *Frame, b []byte) error {
	if len(b) > MaxPHYPayload {
		return ErrFrameTooLong
	}
	if len(b) < AckFrameLen {
		return ErrFrameTooShort
	}
	fcf := binary.LittleEndian.Uint16(b[:2])
	*f = Frame{
		Type:         FrameType(fcf & fcfTypeMask),
		Seq:          b[2],
		AckRequest:   fcf&fcfAckRequest != 0,
		FramePending: fcf&fcfPending != 0,
	}
	if f.Type == FrameAck {
		return nil
	}
	if fcf&fcfDstExtended != fcfDstExtended || fcf&fcfSrcExtended != fcfSrcExtended {
		return ErrBadAddressing
	}
	if len(b) < DataHeaderLen+FCSLen {
		return ErrFrameTooShort
	}
	f.PAN = binary.LittleEndian.Uint16(b[3:5])
	copy(f.Dst[:], b[5:13])
	copy(f.Src[:], b[13:21])
	rest := b[21 : len(b)-FCSLen]
	if f.Type == FrameCommand {
		if len(rest) < 1 {
			return ErrFrameTooShort
		}
		f.Command = CommandID(rest[0])
		rest = rest[1:]
	}
	if len(rest) > 0 {
		f.Payload = rest
	}
	return nil
}

// DecodeFrame parses a wire-format frame into a fresh Frame whose
// payload is an independent copy of the input.
func DecodeFrame(b []byte) (*Frame, error) {
	f := &Frame{}
	if err := DecodeFrameInto(f, b); err != nil {
		return nil, err
	}
	if len(f.Payload) > 0 {
		f.Payload = append([]byte(nil), f.Payload...)
	}
	return f, nil
}

// AckFor builds the immediate acknowledgment for a received frame,
// carrying the frame-pending bit used by indirect (duty-cycled) delivery.
func AckFor(seq uint8, pending bool) *Frame {
	return &Frame{Type: FrameAck, Seq: seq, FramePending: pending}
}
