package phy

import "sync"

// Deterministic intra-run parallelism for large channel fan-outs.
//
// When a transmission starts or ends, the channel touches every cached
// neighbor of the sender. All of that per-receiver work is receiver-local
// and RNG-free — sensed-energy counters, busy/locked state evaluation,
// the per-link PER computation, and the receive-buffer copy — so it can
// be split across a bounded set of fork-join workers without changing
// results. Everything that consumes the engine RNG (the loss draw in
// finishRx) or observes global order (trace emission, OnReceive delivery
// into the upper layers) runs afterwards on the engine thread, in fixed
// receiver-id order: the cached neighbor list is sorted by registration
// index, so the RNG stream is consumed in exactly the order the serial
// path consumes it and a run's Result is bit-identical either way.
//
// The workers are forked per fan-out event and joined before the channel
// returns to the engine, so a parallel channel owns no long-lived
// goroutines — nothing to close, nothing to leak across the thousands of
// independent simulations a sweep runs.

// MinParallelFanout is the neighbor-set size below which a parallel
// channel still takes the serial path. Forking and joining workers costs
// tens of microseconds per event; under the unit-disk model the
// per-receiver work is a few nanoseconds, so BenchmarkFanout measures
// the serial loop winning up to fan-outs of several thousand. The
// default therefore only engages the pool where the split could
// plausibly pay — enormous broadcast fan-outs, or propagation models
// whose per-receiver cost (SINR, fading) is orders of magnitude above
// the unit disk's. It is a package variable so tests can force the
// parallel path on small topologies; simulations only read it.
var MinParallelFanout = 4096

// SetWorkers bounds the fan-out worker count: 0 (the default) keeps
// every fan-out on the engine thread, n > 0 splits fan-outs of at least
// MinParallelFanout receivers across up to n workers (the engine thread
// included). Only the spatially indexed path parallelizes; the
// brute-force reference path (DisableIndex) is always serial. Requires
// Channel.PER, if set, to be pure and safe for concurrent calls.
func (c *Channel) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	c.workers = n
}

// Workers returns the configured fan-out worker bound.
func (c *Channel) Workers() int { return c.workers }

// rxPrep is one receiver's precomputed reception outcome, filled in by
// the parallel phase of endTx and consumed serially.
type rxPrep struct {
	receiving bool
	corrupted bool
	per       float64
	n         int // bytes staged in the receiver's rxBuf
}

// fanout runs fn over [0, n) split into one contiguous chunk per worker
// (the calling goroutine takes the first chunk) and joins before
// returning. Each index is visited exactly once.
func fanout(workers, n int, fn func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	fn(0, chunk)
	wg.Wait()
}

// beginTxParallel is beginTx's indexed fan-out split across workers.
// Every mutation below is receiver-local (sensed counters, lock-on and
// corruption state) and no branch draws from the RNG, so chunked
// execution is equivalent to the serial loop.
func (c *Channel) beginTxParallel(sender *Radio, t *transmission, nbrs []nbrEntry) {
	fanout(c.workers, len(nbrs), func(lo, hi int) {
		for _, nb := range nbrs[lo:hi] {
			r := nb.r
			r.sensedCount++
			switch r.state {
			case StateRx:
				r.interfered()
			case StateListen:
				if !sender.NoiseOnly && nb.connected && r.sensedCount == 1 {
					r.beginRx(t)
				}
			}
		}
	})
}

// endTxParallel is endTx's indexed fan-out: a parallel phase computes
// every receiver's pure outcome (energy decrement, lock check, PER,
// buffer staging), then the engine thread applies the RNG draws and
// delivers, in neighbor-list (registration-id) order — the same order,
// and therefore the same RNG stream, as the serial path.
func (c *Channel) endTxParallel(t *transmission, nbrs []nbrEntry) {
	if cap(c.prep) < len(nbrs) {
		c.prep = make([]rxPrep, len(nbrs))
	}
	prep := c.prep[:len(nbrs)]
	fanout(c.workers, len(nbrs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			r := nbrs[i].r
			r.sensedCount--
			p := rxPrep{}
			if r.rx == t {
				p.receiving = true
				p.corrupted = r.rxCorrupted
				if c.PER != nil {
					p.per = c.PER(t.sender, r)
				}
				if !p.corrupted && r.OnReceive != nil {
					p.n = copy(r.rxBuf[:], t.data)
				}
			}
			prep[i] = p
		}
	})
	// All energy is dropped and all buffers staged; the join above is the
	// "decrement everywhere before delivering" barrier of the serial path
	// (reception callbacks may run CCAs).
	for i := range prep {
		if prep[i].receiving {
			nbrs[i].r.finishRx(prep[i].per, prep[i].corrupted, prep[i].n, len(t.data), t.jid)
		}
	}
}
