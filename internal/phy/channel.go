package phy

import (
	"tcplp/internal/sim"
)

// transmission is a frame in flight on the channel.
type transmission struct {
	sender *Radio
	data   []byte
	start  sim.Time
	end    sim.Time
}

// Channel is the shared medium. It registers radios, tracks on-air
// transmissions, and resolves receptions with a receiver-side collision
// model:
//
//   - A listening radio locks onto the first decodable frame whose start
//     it hears; a second overlapping frame from any sensed node corrupts
//     the reception (no capture effect).
//   - A radio that is transmitting, sleeping, or mid-frame when a frame
//     starts does not receive it.
//   - Independent per-link loss (PER) models fading and checksum failures
//     beyond collisions.
type Channel struct {
	eng    *sim.Engine
	prop   Propagation
	radios []*Radio
	active []*transmission

	// PER returns the probability that a frame from src to dst is
	// corrupted despite no collision. Nil means a perfect channel.
	PER func(src, dst *Radio) float64
}

// NewChannel returns an empty channel using the given propagation model.
func NewChannel(eng *sim.Engine, prop Propagation) *Channel {
	return &Channel{eng: eng, prop: prop}
}

// Engine returns the channel's simulation engine.
func (c *Channel) Engine() *sim.Engine { return c.eng }

// AddRadio creates and registers a radio at pos. Radios start asleep.
func (c *Channel) AddRadio(id int, pos Point) *Radio {
	r := &Radio{
		eng:  c.eng,
		ch:   c,
		id:   id,
		addr: AddrFromID(id),
		pos:  pos,
	}
	c.radios = append(c.radios, r)
	return r
}

// Radios returns all registered radios in registration order.
func (c *Channel) Radios() []*Radio { return c.radios }

// busyAt reports whether any on-air transmission is sensed at r.
func (c *Channel) busyAt(r *Radio) bool {
	for _, t := range c.active {
		if t.sender == r {
			continue
		}
		if c.prop.Senses(t.sender, r) {
			return true
		}
	}
	return false
}

// beginTx is called by a radio when its frame's first bit hits the air.
func (c *Channel) beginTx(sender *Radio, data []byte, air sim.Duration) {
	t := &transmission{sender: sender, data: data, start: c.eng.Now(), end: c.eng.Now().Add(air)}
	c.active = append(c.active, t)

	for _, r := range c.radios {
		if r == sender {
			continue
		}
		if !c.prop.Senses(sender, r) {
			continue
		}
		switch r.state {
		case StateRx:
			// Overlap corrupts whatever r was receiving; the new frame is
			// also lost to r (it never locked onto it).
			r.interfered()
		case StateListen:
			if !sender.NoiseOnly && c.prop.Connected(sender, r) && !c.otherEnergyAt(r, t) {
				r.beginRx(t)
			}
			// If there is already other energy at r, the new frame is
			// undecodable noise to r; nothing to corrupt since r was idle.
		}
	}

	c.eng.Schedule(air, func() { c.endTx(t) })
}

// otherEnergyAt reports whether a transmission other than t is currently
// sensed at r (so r cannot lock onto t).
func (c *Channel) otherEnergyAt(r *Radio, t *transmission) bool {
	for _, o := range c.active {
		if o == t || o.sender == r {
			continue
		}
		if c.prop.Senses(o.sender, r) {
			return true
		}
	}
	return false
}

// endTx resolves all receptions of t and removes it from the air.
func (c *Channel) endTx(t *transmission) {
	for i, o := range c.active {
		if o == t {
			c.active = append(c.active[:i], c.active[i+1:]...)
			break
		}
	}
	for _, r := range c.radios {
		if r.rx == t {
			per := 0.0
			if c.PER != nil {
				per = c.PER(t.sender, r)
			}
			r.endRx(t, per)
		}
	}
}
