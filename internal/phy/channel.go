package phy

import (
	"sort"

	"tcplp/internal/obs"
	"tcplp/internal/sim"
)

// transmission is a frame in flight on the channel. Objects are pooled per
// channel; endFn is built once so scheduling a frame's end allocates
// nothing.
type transmission struct {
	sender *Radio
	data   []byte
	start  sim.Time
	end    sim.Time
	jid    int64      // journey packet id snapshot (metadata; 0 = untagged)
	nbrs   []nbrEntry // sender's sensed-neighbor snapshot at frame start (index mode)
	endFn  func()
	next   *transmission // pool free list
}

// nbrEntry is one cached neighbor of a radio under the grid index:
// within SenseRange, with connected marking decode (TxRange) reach.
type nbrEntry struct {
	r         *Radio
	connected bool
}

// gridIndex is a uniform-grid spatial index over radio positions with the
// cell edge equal to the propagation model's SenseRange, so a radio's
// sensed neighbors always lie in its own or the eight surrounding cells.
// Per-radio neighbor lists are cached and invalidated (via a version
// counter) whenever a radio is added or moved. Lists are ordered by
// registration index, which keeps delivery iteration — and therefore the
// engine's RNG stream — bit-identical to the brute-force scan.
type gridIndex struct {
	ud      *UnitDisk
	cell    float64
	cells   map[[2]int32][]*Radio
	version uint64
}

func newGridIndex(ud *UnitDisk) *gridIndex {
	if ud.SenseRange <= 0 {
		return nil
	}
	return &gridIndex{ud: ud, cell: ud.SenseRange, cells: map[[2]int32][]*Radio{}, version: 1}
}

func (g *gridIndex) keyFor(p Point) [2]int32 {
	return [2]int32{int32(fastFloor(p.X / g.cell)), int32(fastFloor(p.Y / g.cell))}
}

func fastFloor(v float64) int {
	i := int(v)
	if v < 0 && float64(i) != v {
		i--
	}
	return i
}

func (g *gridIndex) add(r *Radio) {
	k := g.keyFor(r.pos)
	r.cellKey = k
	g.cells[k] = append(g.cells[k], r)
	g.version++
}

func (g *gridIndex) move(r *Radio) {
	k := g.keyFor(r.pos)
	if k != r.cellKey {
		old := g.cells[r.cellKey]
		for i, o := range old {
			if o == r {
				g.cells[r.cellKey] = append(old[:i], old[i+1:]...)
				break
			}
		}
		r.cellKey = k
		g.cells[k] = append(g.cells[k], r)
	}
	g.version++
}

// neighbors returns r's cached sensed-neighbor list, rebuilding it if the
// topology changed since the cache was filled. A rebuild allocates a fresh
// slice: in-flight transmissions hold snapshots of the old one.
func (g *gridIndex) neighbors(r *Radio) []nbrEntry {
	if r.nbrsVersion == g.version {
		return r.nbrs
	}
	var nbrs []nbrEntry
	for dx := int32(-1); dx <= 1; dx++ {
		for dy := int32(-1); dy <= 1; dy++ {
			for _, o := range g.cells[[2]int32{r.cellKey[0] + dx, r.cellKey[1] + dy}] {
				if o == r {
					continue
				}
				d := r.pos.Dist(o.pos)
				if d <= g.ud.SenseRange {
					nbrs = append(nbrs, nbrEntry{r: o, connected: d <= g.ud.TxRange})
				}
			}
		}
	}
	sort.Slice(nbrs, func(i, j int) bool { return nbrs[i].r.idx < nbrs[j].r.idx })
	r.nbrs = nbrs
	r.nbrsVersion = g.version
	return nbrs
}

// Channel is the shared medium. It registers radios, tracks on-air
// transmissions, and resolves receptions with a receiver-side collision
// model:
//
//   - A listening radio locks onto the first decodable frame whose start
//     it hears; a second overlapping frame from any sensed node corrupts
//     the reception (no capture effect).
//   - A radio that is transmitting, sleeping, or mid-frame when a frame
//     starts does not receive it.
//   - Independent per-link loss (PER) models fading and checksum failures
//     beyond collisions.
//
// Under a *UnitDisk propagation model the channel keeps a uniform-grid
// spatial index and per-radio sensed-energy counters so every operation is
// O(neighbors) instead of O(radios); DisableIndex restores the brute-force
// all-pairs scans as a reference path. Both paths produce bit-identical
// runs on static topologies. The two differ only under mid-flight node
// movement: the index evaluates sensing at frame start (snapshot), the
// scan at frame end.
type Channel struct {
	eng    *sim.Engine
	prop   Propagation
	radios []*Radio
	active []*transmission
	grid   *gridIndex
	txFree *transmission

	// fan-out parallelism (see parallel.go): workers is the bound set by
	// SetWorkers, prep the reusable per-receiver scratch for endTx.
	workers int
	prep    []rxPrep

	// PER returns the probability that a frame from src to dst is
	// corrupted despite no collision. Nil means a perfect channel.
	PER func(src, dst *Radio) float64

	// Trace, when non-nil, receives phy-layer events and raw frame
	// captures (obs). Hooks only read state, so enabling it cannot
	// perturb a run.
	Trace *obs.Trace
}

// NewChannel returns an empty channel using the given propagation model.
func NewChannel(eng *sim.Engine, prop Propagation) *Channel {
	c := &Channel{eng: eng, prop: prop}
	if ud, ok := prop.(*UnitDisk); ok {
		c.grid = newGridIndex(ud)
	}
	return c
}

// DisableIndex switches the channel to the brute-force all-pairs reference
// path. It must be called before any traffic is generated.
func (c *Channel) DisableIndex() { c.grid = nil }

// Indexed reports whether the spatial index is active.
func (c *Channel) Indexed() bool { return c.grid != nil }

// Engine returns the channel's simulation engine.
func (c *Channel) Engine() *sim.Engine { return c.eng }

// AddRadio creates and registers a radio at pos. Radios start asleep.
func (c *Channel) AddRadio(id int, pos Point) *Radio {
	r := &Radio{
		eng:  c.eng,
		ch:   c,
		id:   id,
		addr: AddrFromID(id),
		pos:  pos,
		idx:  len(c.radios),
	}
	r.txBeginFn = func() { c.beginTx(r, r.txData, r.txAir) }
	r.txDoneFn = func() {
		r.setState(StateListen)
		if r.OnTxDone != nil {
			r.OnTxDone()
		}
	}
	c.radios = append(c.radios, r)
	if c.grid != nil {
		c.grid.add(r)
	}
	return r
}

// Radios returns all registered radios in registration order.
func (c *Channel) Radios() []*Radio { return c.radios }

// moved tells the channel r's position changed: the spatial index re-files
// the radio and all cached neighbor sets are invalidated.
func (c *Channel) moved(r *Radio) {
	if c.grid != nil {
		c.grid.move(r)
	}
}

func (c *Channel) allocTx() *transmission {
	if t := c.txFree; t != nil {
		c.txFree = t.next
		t.next = nil
		return t
	}
	t := &transmission{}
	t.endFn = func() { c.endTx(t) }
	return t
}

func (c *Channel) releaseTx(t *transmission) {
	t.sender = nil
	t.data = nil
	t.nbrs = nil
	t.jid = 0
	t.next = c.txFree
	c.txFree = t
}

// busyAt reports whether any on-air transmission is sensed at r.
func (c *Channel) busyAt(r *Radio) bool {
	if c.grid != nil {
		return r.sensedCount > 0
	}
	for _, t := range c.active {
		if t.sender == r {
			continue
		}
		if c.prop.Senses(t.sender, r) {
			return true
		}
	}
	return false
}

// beginTx is called by a radio when its frame's first bit hits the air.
func (c *Channel) beginTx(sender *Radio, data []byte, air sim.Duration) {
	if tr := c.Trace; tr != nil {
		tr.Emit(obs.Event{T: c.eng.Now(), Kind: obs.PhyTx, Node: sender.id, A: int64(air), Len: len(data), J: sender.TxJID})
		if tr.WantsFrames() && !sender.NoiseOnly {
			tr.Frame(c.eng.Now(), sender.id, data)
		}
	}
	t := c.allocTx()
	t.sender, t.data = sender, data
	t.jid = sender.TxJID
	t.start, t.end = c.eng.Now(), c.eng.Now().Add(air)
	c.active = append(c.active, t)

	if c.grid != nil {
		nbrs := c.grid.neighbors(sender)
		t.nbrs = nbrs
		if c.workers > 0 && len(nbrs) >= MinParallelFanout {
			c.beginTxParallel(sender, t, nbrs)
		} else {
			for _, nb := range nbrs {
				r := nb.r
				r.sensedCount++
				switch r.state {
				case StateRx:
					r.interfered()
				case StateListen:
					// sensedCount == 1 means t is the only energy at r (a
					// radio's own frames never count toward its own sensing),
					// matching the brute-force otherEnergyAt check.
					if !sender.NoiseOnly && nb.connected && r.sensedCount == 1 {
						r.beginRx(t)
					}
				}
			}
		}
	} else {
		for _, r := range c.radios {
			if r == sender {
				continue
			}
			if !c.prop.Senses(sender, r) {
				continue
			}
			switch r.state {
			case StateRx:
				// Overlap corrupts whatever r was receiving; the new frame is
				// also lost to r (it never locked onto it).
				r.interfered()
			case StateListen:
				if !sender.NoiseOnly && c.prop.Connected(sender, r) && !c.otherEnergyAt(r, t) {
					r.beginRx(t)
				}
				// If there is already other energy at r, the new frame is
				// undecodable noise to r; nothing to corrupt since r was idle.
			}
		}
	}

	c.eng.Schedule(air, t.endFn)
}

// otherEnergyAt reports whether a transmission other than t is currently
// sensed at r (so r cannot lock onto t). Brute-force path only.
func (c *Channel) otherEnergyAt(r *Radio, t *transmission) bool {
	for _, o := range c.active {
		if o == t || o.sender == r {
			continue
		}
		if c.prop.Senses(o.sender, r) {
			return true
		}
	}
	return false
}

// endTx resolves all receptions of t and removes it from the air.
func (c *Channel) endTx(t *transmission) {
	for i, o := range c.active {
		if o == t {
			c.active = append(c.active[:i], c.active[i+1:]...)
			break
		}
	}
	if t.nbrs != nil {
		if c.workers > 0 && len(t.nbrs) >= MinParallelFanout {
			c.endTxParallel(t, t.nbrs)
		} else {
			// Drop t's energy everywhere before delivering: reception
			// callbacks may run CCAs.
			for _, nb := range t.nbrs {
				nb.r.sensedCount--
			}
			for _, nb := range t.nbrs {
				r := nb.r
				if r.rx == t {
					per := 0.0
					if c.PER != nil {
						per = c.PER(t.sender, r)
					}
					r.endRx(t, per)
				}
			}
		}
	} else {
		for _, r := range c.radios {
			if r.rx == t {
				per := 0.0
				if c.PER != nil {
					per = c.PER(t.sender, r)
				}
				r.endRx(t, per)
			}
		}
	}
	c.releaseTx(t)
}
