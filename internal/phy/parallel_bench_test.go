package phy_test

import (
	"fmt"
	"testing"

	"tcplp/internal/phy"
	"tcplp/internal/sim"
)

// BenchmarkFanout measures one transmission fan-out (begin + end) over a
// star of n in-range listeners, serial vs parallel. It is the data
// behind the MinParallelFanout default: the parallel path must only
// engage where it actually beats the serial loop.
func BenchmarkFanout(b *testing.B) {
	for _, n := range []int{64, 256, 1024, 4096} {
		for _, workers := range []int{0, 4} {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, workers), func(b *testing.B) {
				old := phy.MinParallelFanout
				phy.MinParallelFanout = 1
				defer func() { phy.MinParallelFanout = old }()
				eng := sim.NewEngine(1)
				ch := phy.NewChannel(eng, phy.NewUnitDisk(10, 13))
				ch.SetWorkers(workers)
				ch.PER = func(src, dst *phy.Radio) float64 { return 0.01 }
				tx := ch.AddRadio(0, phy.Point{})
				tx.SetListen(true)
				for i := 1; i <= n; i++ {
					// Pack listeners inside tx range in a tight disk.
					r := ch.AddRadio(i, phy.Point{X: float64(i%97) * 0.05, Y: float64(i/97) * 0.05})
					r.SetListen(true)
					r.OnReceive = func([]byte) {}
				}
				frame := make([]byte, 100)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tx.Transmit(frame)
					eng.Run()
				}
			})
		}
	}
}
