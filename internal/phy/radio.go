package phy

import (
	"fmt"

	"tcplp/internal/obs"
	"tcplp/internal/sim"
)

// State is the radio power/activity state.
type State uint8

// Radio states. Only Sleep is a low-power state; the paper's duty-cycle
// measurements (§9.2) count all non-sleep time.
const (
	StateSleep State = iota
	StateListen
	StateRx
	StateTx
)

func (s State) String() string {
	switch s {
	case StateSleep:
		return "sleep"
	case StateListen:
		return "listen"
	case StateRx:
		return "rx"
	case StateTx:
		return "tx"
	}
	return fmt.Sprintf("state%d", uint8(s))
}

// Radio is one node's transceiver. It is half-duplex: while transmitting
// it cannot receive, which is the constraint behind the B/2 and B/3
// multihop bandwidth bounds of §7.2.
//
// The radio is deliberately dumb: CSMA, ACKs, and retries live in the MAC
// (package mac), mirroring the paper's move of those functions into
// software to avoid the AT86RF233's deaf-listening behaviour (§4).
type Radio struct {
	eng  *sim.Engine
	ch   *Channel
	id   int
	idx  int // registration index on the channel
	addr Addr
	pos  Point

	// spatial-index state (see gridIndex in channel.go)
	cellKey     [2]int32
	nbrs        []nbrEntry
	nbrsVersion uint64
	sensedCount int // on-air transmissions from sensed neighbors

	state       State
	stateSince  sim.Time
	durations   [4]sim.Duration
	energySince sim.Time

	// preallocated transmit closures + their per-transmission arguments;
	// a radio has at most one frame in flight, so these are reused.
	txBeginFn func()
	txDoneFn  func()
	txData    []byte
	txAir     sim.Duration

	// NoiseOnly marks an interference source: its transmissions corrupt
	// receptions and trip CCAs but are never decoded by anyone.
	NoiseOnly bool

	// TxJID is the journey packet id of the frame about to be
	// transmitted (0 = untagged). The MAC sets it immediately before
	// Transmit/TransmitLoaded; the channel snapshots it into the
	// in-flight transmission. Simulator metadata only — never on the
	// wire.
	TxJID int64
	// RxJID is the journey packet id of the frame being handed to
	// OnReceive, valid only for the duration of that callback (like
	// rxBuf).
	RxJID int64

	// current reception in progress (nil if none)
	rx          *transmission
	rxCorrupted bool

	// OnReceive is invoked with the raw frame bytes of each successfully
	// decoded frame. The slice is the radio's receive buffer: it is valid
	// only for the duration of the callback and is overwritten by the next
	// reception, like a real transceiver's frame buffer. Callers that need
	// the bytes longer must copy them.
	OnReceive func(data []byte)
	// rxBuf backs the slices handed to OnReceive.
	rxBuf [MaxPHYPayload]byte
	// OnTxDone is invoked when a transmission completes (frame fully on
	// air and trailing SPI work done).
	OnTxDone func()

	txEnd sim.Time

	// counters
	framesSent, framesRecv, rxDropped uint64
}

// ID returns the radio's small integer identifier.
func (r *Radio) ID() int { return r.id }

// Addr returns the radio's EUI-64 address.
func (r *Radio) Addr() Addr { return r.addr }

// Pos returns the radio's position.
func (r *Radio) Pos() Point { return r.pos }

// SetPos moves the radio, re-filing it in the channel's spatial index and
// invalidating all cached neighbor sets. Frames already in flight keep the
// sensing snapshot taken when they hit the air.
func (r *Radio) SetPos(pos Point) {
	r.pos = pos
	r.ch.moved(r)
}

// State returns the current radio state.
func (r *Radio) State() State { return r.state }

// FramesSent returns the number of frames this radio has put on air.
func (r *Radio) FramesSent() uint64 { return r.framesSent }

// FramesReceived returns the number of frames successfully decoded.
func (r *Radio) FramesReceived() uint64 { return r.framesRecv }

// ReceptionsDropped counts receptions lost to collisions, noise, or state
// changes mid-frame.
func (r *Radio) ReceptionsDropped() uint64 { return r.rxDropped }

func (r *Radio) setState(s State) {
	if s == r.state {
		return
	}
	now := r.eng.Now()
	r.durations[r.state] += now.Sub(r.stateSince)
	r.state = s
	r.stateSince = now
}

// TimeIn returns the cumulative time spent in state s.
func (r *Radio) TimeIn(s State) sim.Duration {
	d := r.durations[s]
	if r.state == s {
		d += r.eng.Now().Sub(r.stateSince)
	}
	return d
}

// DutyCycle returns the fraction of time since the last ResetEnergy (or
// since start) that the radio was not asleep — the paper's "radio duty
// cycle" metric (§9.2).
func (r *Radio) DutyCycle() float64 {
	total := r.eng.Now().Sub(r.energySince)
	if total <= 0 {
		return 0
	}
	awake := r.TimeIn(StateListen) + r.TimeIn(StateRx) + r.TimeIn(StateTx)
	return float64(awake) / float64(total)
}

// ResetEnergy zeroes the per-state accumulators (used to measure duty
// cycle over a window).
func (r *Radio) ResetEnergy() {
	r.durations = [4]sim.Duration{}
	r.stateSince = r.eng.Now()
	r.energySince = r.eng.Now()
}

// Sleeping reports whether the radio is in its low-power state.
func (r *Radio) Sleeping() bool { return r.state == StateSleep }

// Transmitting reports whether a transmission is in progress.
func (r *Radio) Transmitting() bool { return r.state == StateTx }

// SetListen turns the receiver on (true) or puts the radio to sleep
// (false). Turning the receiver off mid-reception drops the frame; the
// call is ignored while transmitting (the MAC never does this).
func (r *Radio) SetListen(on bool) {
	if r.state == StateTx {
		return
	}
	if on {
		if r.state == StateSleep {
			r.setState(StateListen)
		}
		return
	}
	if r.rx != nil {
		r.abortRx()
	}
	r.setState(StateSleep)
}

func (r *Radio) abortRx() {
	r.rx = nil
	r.rxCorrupted = false
	r.rxDropped++
}

// ChannelClear performs a clear-channel assessment from this radio's
// vantage point: the channel is busy if any frame is on air from a node
// within sense range, or if this radio is mid-reception.
func (r *Radio) ChannelClear() bool {
	if r.state == StateRx {
		return false
	}
	return !r.ch.busyAt(r)
}

// Transmit puts a frame on air after first paying the SPI load time for
// the whole frame (node busy, channel idle). It is the one-shot path used
// by noise sources and simple tests; the MAC instead pre-loads the frame
// buffer once (LoadTime) and calls TransmitLoaded after each CCA so that
// the CCA-to-air gap is only the radio turnaround, as on real hardware.
func (r *Radio) Transmit(data []byte) {
	r.transmitAfter(data, LoadTime(len(data)))
}

// TransmitLoaded puts an already-loaded frame on air after the RX→TX
// turnaround time. The radio is busy (cannot receive) from this call
// until the frame leaves the air.
func (r *Radio) TransmitLoaded(data []byte) {
	r.transmitAfter(data, TurnaroundTime)
}

func (r *Radio) transmitAfter(data []byte, lead sim.Duration) {
	if r.state == StateTx {
		panic("phy: Transmit while already transmitting")
	}
	if len(data) > MaxPHYPayload {
		panic("phy: oversized frame")
	}
	if r.rx != nil {
		r.abortRx()
	}
	r.setState(StateTx)
	air := AirTime(len(data))
	r.txEnd = r.eng.Now().Add(lead + air)
	r.framesSent++
	r.txData, r.txAir = data, air
	r.eng.Schedule(lead, r.txBeginFn)
	r.eng.Schedule(lead+air, r.txDoneFn)
}

// channel-side reception hooks

func (r *Radio) beginRx(t *transmission) {
	r.rx = t
	r.rxCorrupted = false
	r.setState(StateRx)
}

func (r *Radio) interfered() {
	if r.rx != nil {
		r.rxCorrupted = true
	}
}

func (r *Radio) endRx(t *transmission, per float64) {
	if r.rx != t {
		return
	}
	corrupted := r.rxCorrupted
	n := 0
	if !corrupted && r.OnReceive != nil {
		n = copy(r.rxBuf[:], t.data)
	}
	r.finishRx(per, corrupted, n, len(t.data), t.jid)
}

// finishRx is the reception epilogue: state transitions, the loss draw,
// tracing, and delivery. The receive buffer already holds the frame (n
// bytes) when the reception is clean. It runs only on the engine thread
// — it consumes the engine RNG — while the pure prefix (the PER
// computation and the buffer copy) may have run on a fan-out worker
// (see Channel.SetWorkers).
func (r *Radio) finishRx(per float64, corrupted bool, n, frameLen int, jid int64) {
	r.rx = nil
	r.rxCorrupted = false
	r.setState(StateListen)
	if corrupted {
		r.rxDropped++
		if tr := r.ch.Trace; tr != nil {
			tr.Emit(obs.Event{T: r.eng.Now(), Kind: obs.PhyCollision, Node: r.id, Len: frameLen, J: jid, Cause: obs.CauseCollision})
		}
		return
	}
	if per > 0 && r.eng.Rand().Float64() < per {
		r.rxDropped++
		if tr := r.ch.Trace; tr != nil {
			tr.Emit(obs.Event{T: r.eng.Now(), Kind: obs.PhyRxDrop, Node: r.id, A: 1, Len: frameLen, J: jid, Cause: obs.CausePER})
		}
		return
	}
	r.framesRecv++
	if r.OnReceive != nil {
		r.RxJID = jid
		r.OnReceive(r.rxBuf[:n])
		r.RxJID = 0
	}
}
