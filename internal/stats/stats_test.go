package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasics(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Median() != 0 || s.StdDev() != 0 {
		t.Fatal("empty sample not zero")
	}
	for _, v := range []float64{4, 1, 3, 2, 5} {
		s.Add(v)
	}
	if s.N() != 5 || s.Mean() != 3 || s.Median() != 3 {
		t.Fatalf("n=%d mean=%v median=%v", s.N(), s.Mean(), s.Median())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("min=%v max=%v", s.Min(), s.Max())
	}
	if math.Abs(s.StdDev()-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("stddev = %v", s.StdDev())
	}
}

func TestQuantiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if q := s.Quantile(0.9); q < 89 || q > 91 {
		t.Fatalf("p90 = %v", q)
	}
	// Adding after sorting must keep results correct.
	s.Add(1000)
	if s.Max() != 1000 {
		t.Fatalf("max after late add = %v", s.Max())
	}
}

func TestJainIndex(t *testing.T) {
	if j := JainIndex(nil); j != 0 {
		t.Fatalf("empty = %v", j)
	}
	if j := JainIndex([]float64{0, 0}); j != 0 {
		t.Fatalf("all-zero = %v", j)
	}
	if j := JainIndex([]float64{5, 5, 5}); math.Abs(j-1) > 1e-12 {
		t.Fatalf("equal shares = %v", j)
	}
	// One flow takes everything: index falls to 1/n.
	if j := JainIndex([]float64{10, 0, 0, 0}); math.Abs(j-0.25) > 1e-12 {
		t.Fatalf("starved = %v", j)
	}
	// 2:1 split of two flows: (3)²/(2·5) = 0.9.
	if j := JainIndex([]float64{2, 1}); math.Abs(j-0.9) > 1e-12 {
		t.Fatalf("2:1 = %v", j)
	}
}

func TestMeanStdDev(t *testing.T) {
	if m, sd := MeanStdDev(nil); m != 0 || sd != 0 {
		t.Fatalf("empty = %v, %v", m, sd)
	}
	if m, sd := MeanStdDev([]float64{7}); m != 7 || sd != 0 {
		t.Fatalf("single = %v, %v", m, sd)
	}
	m, sd := MeanStdDev([]float64{4, 1, 3, 2, 5})
	if m != 3 || math.Abs(sd-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("mean=%v std=%v", m, sd)
	}
	// Must agree with the Sample methods on the same data.
	var s Sample
	for _, v := range []float64{4, 1, 3, 2, 5} {
		s.Add(v)
	}
	if s.Mean() != m || s.StdDev() != sd {
		t.Fatalf("Sample disagrees: %v/%v vs %v/%v", s.Mean(), s.StdDev(), m, sd)
	}
}

func TestCI95(t *testing.T) {
	if ci := CI95(nil); ci != 0 {
		t.Fatalf("empty = %v", ci)
	}
	// A single observation has no spread information.
	if ci := CI95([]float64{42}); ci != 0 {
		t.Fatalf("single = %v", ci)
	}
	// Sample variance s² = 2.5, n = 5, df = 4: half-width
	// t₀.₉₇₅(4)·√2.5/√5.
	xs := []float64{4, 1, 3, 2, 5}
	want := 2.776 * math.Sqrt(2.5) / math.Sqrt(5)
	if ci := CI95(xs); math.Abs(ci-want) > 1e-12 {
		t.Fatalf("ci = %v, want %v", ci, want)
	}
	var s Sample
	for _, v := range xs {
		s.Add(v)
	}
	if s.CI95() != CI95(xs) {
		t.Fatal("Sample.CI95 disagrees with package CI95")
	}
	// Identical observations: zero-width interval.
	if ci := CI95([]float64{3, 3, 3, 3}); ci != 0 {
		t.Fatalf("constant sample ci = %v", ci)
	}
}

func TestTQuantile975(t *testing.T) {
	// The Student-t quantile must dominate the normal quantile and
	// shrink toward it: at 2 seeds (df 1) the honest interval is 6.5x
	// the normal one, exactly the regime the multi-seed tables run in.
	if got := TQuantile975(1); got != 12.706 {
		t.Fatalf("df=1: %v", got)
	}
	if got := TQuantile975(4); got != 2.776 {
		t.Fatalf("df=4: %v", got)
	}
	prev := math.Inf(1)
	for df := 1; df <= 200; df++ {
		q := TQuantile975(df)
		if q > prev+1e-9 {
			t.Fatalf("df=%d: quantile %v not monotone (prev %v)", df, q, prev)
		}
		if q < 1.9599 {
			t.Fatalf("df=%d: quantile %v below the normal limit", df, q)
		}
		prev = q
	}
	// Continuity across the table/expansion boundary and convergence to
	// the normal quantile.
	if d := TQuantile975(30) - TQuantile975(31); d < 0 || d > 0.01 {
		t.Fatalf("table→expansion step = %v", d)
	}
	if q := TQuantile975(10000); math.Abs(q-1.95996) > 1e-3 {
		t.Fatalf("df=10000: %v, want ≈1.96", q)
	}
	if q := TQuantile975(0); q != 0 {
		t.Fatalf("df=0: %v", q)
	}
	// Spot-check the expansion against the published df=60 value 2.000.
	if q := TQuantile975(60); math.Abs(q-2.000) > 2e-3 {
		t.Fatalf("df=60: %v, want ≈2.000", q)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Sample
		for i := 0; i < int(n%50)+2; i++ {
			s.Add(rng.NormFloat64() * 100)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := s.Quantile(q)
			if v < prev || v < s.Min() || v > s.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
