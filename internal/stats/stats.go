// Package stats provides the small statistical helpers the experiment
// harness needs: means, quantiles, and sample collections.
package stats

import (
	"math"
	"sort"
)

// Sample is a collection of float64 observations.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add appends an observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) by nearest-rank.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	idx := int(q * float64(len(s.xs)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s.xs) {
		idx = len(s.xs) - 1
	}
	return s.xs[idx]
}

// Median returns the 0.5 quantile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// Min returns the smallest observation.
func (s *Sample) Min() float64 { return s.Quantile(0) }

// Max returns the largest observation.
func (s *Sample) Max() float64 { return s.Quantile(1) }

// JainIndex returns Jain's fairness index (Σx)² / (n·Σx²) for the given
// allocations: 1.0 when all shares are equal, approaching 1/n as one
// flow starves the rest. An empty or all-zero input returns 0.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// StdDev returns the population standard deviation.
func (s *Sample) StdDev() float64 {
	_, sd := MeanStdDev(s.xs)
	return sd
}

// CI95 returns the half-width of the Student-t 95% confidence interval
// of the mean; 0 for fewer than two observations.
func (s *Sample) CI95() float64 { return CI95(s.xs) }

// MeanStdDev returns the arithmetic mean and population standard
// deviation of xs in one pass (0, 0 for an empty input).
func MeanStdDev(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	sum := 0.0
	for _, x := range xs {
		d := x - mean
		sum += d * d
	}
	return mean, math.Sqrt(sum / float64(len(xs)))
}

// CI95 returns the half-width of the 95% confidence interval of the
// mean of xs, t₀.₉₇₅(n−1)·s/√n with s the sample (n−1) standard
// deviation. The Student-t quantile matters exactly where the harness
// lives — 3-5 seeds per point — where the normal approximation's 1.96
// understates the interval by 40% and more. Fewer than two
// observations carry no spread information, so the result is 0.
func CI95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	_, sd := MeanStdDev(xs)
	// MeanStdDev returns the population σ (divide by n); rescale to the
	// sample standard deviation the t-interval is defined over.
	sample := sd * math.Sqrt(float64(n)/float64(n-1))
	return TQuantile975(n-1) * sample / math.Sqrt(float64(n))
}

// t975 holds t₀.₉₇₅ for 1-30 degrees of freedom.
var t975 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TQuantile975 returns the 97.5th-percentile Student-t quantile for df
// degrees of freedom: tabulated through df 30, then the asymptotic
// expansion around the normal quantile (accurate to ~1e-4 there).
func TQuantile975(df int) float64 {
	if df < 1 {
		return 0
	}
	if df <= len(t975) {
		return t975[df-1]
	}
	const z = 1.959963984540054 // Φ⁻¹(0.975)
	v := float64(df)
	z3 := z * z * z
	z5 := z3 * z * z
	return z + (z3+z)/(4*v) + (5*z5+16*z3+3*z)/(96*v*v)
}
