// Package stats provides the small statistical helpers the experiment
// harness needs: means, quantiles, and sample collections.
package stats

import (
	"math"
	"sort"
)

// Sample is a collection of float64 observations.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add appends an observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) by nearest-rank.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	idx := int(q * float64(len(s.xs)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s.xs) {
		idx = len(s.xs) - 1
	}
	return s.xs[idx]
}

// Median returns the 0.5 quantile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// Min returns the smallest observation.
func (s *Sample) Min() float64 { return s.Quantile(0) }

// Max returns the largest observation.
func (s *Sample) Max() float64 { return s.Quantile(1) }

// JainIndex returns Jain's fairness index (Σx)² / (n·Σx²) for the given
// allocations: 1.0 when all shares are equal, approaching 1/n as one
// flow starves the rest. An empty or all-zero input returns 0.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// StdDev returns the population standard deviation.
func (s *Sample) StdDev() float64 {
	_, sd := MeanStdDev(s.xs)
	return sd
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean, 1.96·σ/√n; 0 for fewer than two observations.
func (s *Sample) CI95() float64 { return CI95(s.xs) }

// MeanStdDev returns the arithmetic mean and population standard
// deviation of xs in one pass (0, 0 for an empty input).
func MeanStdDev(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	sum := 0.0
	for _, x := range xs {
		d := x - mean
		sum += d * d
	}
	return mean, math.Sqrt(sum / float64(len(xs)))
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean of xs, 1.96·σ/√n. Fewer than two observations
// carry no spread information, so the result is 0.
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	_, sd := MeanStdDev(xs)
	return 1.96 * sd / math.Sqrt(float64(len(xs)))
}
