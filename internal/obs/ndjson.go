package obs

import (
	"io"
	"sort"
	"strconv"
	"sync"
)

// NDJSONWriter serializes trace events (and metric samples) as one JSON
// object per line. One writer may be shared by every run of a parallel
// sweep: Sink hands out a per-run tagging view and the writer itself is
// mutex-guarded, so lines from concurrent runs interleave whole, each
// carrying its run name and seed.
//
// Event lines look like:
//
//	{"type":"event","run":"fig6","seed":1,"t_us":1204,"kind":"mac_retry","node":3,"a":1,"b":0,"len":62}
//
// Metric-sample lines (the -metrics-interval sampler):
//
//	{"type":"metrics","run":"fig6","seed":1,"t_us":1000000,"layers":{"mac":{"retries":4}}}
type NDJSONWriter struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
	err error
}

// NewNDJSONWriter wraps w.
func NewNDJSONWriter(w io.Writer) *NDJSONWriter {
	return &NDJSONWriter{w: w, buf: make([]byte, 0, 256)}
}

// Err returns the first write error, if any.
func (n *NDJSONWriter) Err() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.err
}

// Sink returns an event sink that tags every record with run and seed.
func (n *NDJSONWriter) Sink(run string, seed int64) Sink {
	return &ndjsonSink{w: n, run: run, seed: seed}
}

type ndjsonSink struct {
	w    *NDJSONWriter
	run  string
	seed int64
}

// Record implements Sink.
func (s *ndjsonSink) Record(e Event) { s.w.writeEvent(s.run, s.seed, e) }

func (n *NDJSONWriter) writeEvent(run string, seed int64, e Event) {
	n.mu.Lock()
	defer n.mu.Unlock()
	b := n.buf[:0]
	b = append(b, `{"type":"event","run":`...)
	b = strconv.AppendQuote(b, run)
	b = append(b, `,"seed":`...)
	b = strconv.AppendInt(b, seed, 10)
	b = append(b, `,"t_us":`...)
	b = strconv.AppendInt(b, int64(e.T), 10)
	b = append(b, `,"kind":`...)
	b = strconv.AppendQuote(b, e.Kind.String())
	b = append(b, `,"node":`...)
	b = strconv.AppendInt(b, int64(e.Node), 10)
	if e.A != 0 {
		b = append(b, `,"a":`...)
		b = strconv.AppendInt(b, e.A, 10)
	}
	if e.B != 0 {
		b = append(b, `,"b":`...)
		b = strconv.AppendInt(b, e.B, 10)
	}
	if e.Len != 0 {
		b = append(b, `,"len":`...)
		b = strconv.AppendInt(b, int64(e.Len), 10)
	}
	if e.J != 0 {
		b = append(b, `,"j":`...)
		b = strconv.AppendInt(b, e.J, 10)
	}
	if e.Cause != CauseNone {
		b = append(b, `,"cause":`...)
		b = strconv.AppendQuote(b, e.Cause.String())
	}
	b = append(b, "}\n"...)
	n.buf = b
	n.write(b)
}

// Metrics writes one metric-sample line for run/seed at simulation time
// t. Layer and metric keys are emitted sorted, so output is
// deterministic for a fixed run.
func (n *NDJSONWriter) Metrics(run string, seed int64, t int64, layers map[string]map[string]float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	b := n.buf[:0]
	b = append(b, `{"type":"metrics","run":`...)
	b = strconv.AppendQuote(b, run)
	b = append(b, `,"seed":`...)
	b = strconv.AppendInt(b, seed, 10)
	b = append(b, `,"t_us":`...)
	b = strconv.AppendInt(b, t, 10)
	b = append(b, `,"layers":{`...)
	lnames := make([]string, 0, len(layers))
	for l := range layers {
		lnames = append(lnames, l)
	}
	sort.Strings(lnames)
	for i, l := range lnames {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendQuote(b, l)
		b = append(b, ":{"...)
		m := layers[l]
		mnames := make([]string, 0, len(m))
		for k := range m {
			mnames = append(mnames, k)
		}
		sort.Strings(mnames)
		for j, k := range mnames {
			if j > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendQuote(b, k)
			b = append(b, ':')
			b = strconv.AppendFloat(b, m[k], 'g', -1, 64)
		}
		b = append(b, '}')
	}
	b = append(b, "}}\n"...)
	n.buf = b
	n.write(b)
}

func (n *NDJSONWriter) write(b []byte) {
	if n.err != nil {
		return
	}
	if _, err := n.w.Write(b); err != nil {
		n.err = err
	}
}
