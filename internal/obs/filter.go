package obs

// FilterSink forwards events to an inner sink only when they pass a
// layer mask and (optionally) a node allow-set. It backs the
// `-events-layers` / `-events-flow` flags: a 10k-node city run emits
// millions of events, and filtering at the sink keeps the NDJSON file
// tractable without touching the emit path.
type FilterSink struct {
	inner  Sink
	layers map[string]bool // nil = all layers pass
	nodes  map[int]bool    // nil = all nodes pass
}

// NewFilterSink wraps inner. layers is the set of Kind.Layer() names to
// keep (nil or empty keeps all).
func NewFilterSink(inner Sink, layers []string) *FilterSink {
	f := &FilterSink{inner: inner}
	if len(layers) > 0 {
		f.layers = make(map[string]bool, len(layers))
		for _, l := range layers {
			f.layers[l] = true
		}
	}
	return f
}

// AllowNode restricts the sink to events from the given node. The first
// call switches from "all nodes" to "listed nodes only"; further calls
// extend the set. Must be called before the run starts (the engine is
// single-threaded, but the sink does no locking).
func (f *FilterSink) AllowNode(node int) {
	if f.nodes == nil {
		f.nodes = make(map[int]bool)
	}
	f.nodes[node] = true
}

// Record implements Sink.
func (f *FilterSink) Record(e Event) {
	if f.layers != nil && !f.layers[e.Kind.Layer()] {
		return
	}
	if f.nodes != nil && !f.nodes[e.Node] {
		return
	}
	f.inner.Record(e)
}
