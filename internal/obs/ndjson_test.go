package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNDJSONEvents(t *testing.T) {
	var buf bytes.Buffer
	w := NewNDJSONWriter(&buf)
	sink := w.Sink("cell-a", 7)
	sink.Record(Event{T: 1204, Kind: MacRetry, Node: 3, A: 1, Len: 62})
	sink.Record(Event{T: 2000, Kind: TCPRecv, Node: 5}) // zero a/b/len omitted
	w.Metrics("cell-a", 7, 1000000, map[string]map[string]float64{
		"mac": {"retries": 4, "data_sent": 120},
		"phy": {"frames_sent": 300},
	})
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}

	var lines []map[string]any
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	ev := lines[0]
	if ev["type"] != "event" || ev["run"] != "cell-a" || ev["seed"] != 7.0 ||
		ev["t_us"] != 1204.0 || ev["kind"] != "mac_retry" || ev["node"] != 3.0 ||
		ev["a"] != 1.0 || ev["len"] != 62.0 {
		t.Errorf("event line = %v", ev)
	}
	if _, ok := lines[1]["a"]; ok {
		t.Errorf("zero a field not omitted: %v", lines[1])
	}
	ms := lines[2]
	if ms["type"] != "metrics" {
		t.Fatalf("metrics line = %v", ms)
	}
	layers := ms["layers"].(map[string]any)
	if layers["mac"].(map[string]any)["retries"] != 4.0 ||
		layers["phy"].(map[string]any)["frames_sent"] != 300.0 {
		t.Errorf("metrics layers = %v", layers)
	}
}

// TestNDJSONMetricsDeterministic pins sorted key order: identical input
// maps must serialize byte-identically regardless of map iteration.
func TestNDJSONMetricsDeterministic(t *testing.T) {
	render := func() string {
		var buf bytes.Buffer
		w := NewNDJSONWriter(&buf)
		w.Metrics("r", 1, 5, map[string]map[string]float64{
			"tcp": {"segs_in": 9, "conns_opened": 1},
			"mac": {"retries": 2},
			"ip":  {"queue_drops": 0},
		})
		return buf.String()
	}
	first := render()
	for i := 0; i < 10; i++ {
		if got := render(); got != first {
			t.Fatalf("nondeterministic metrics line:\n%s\nvs\n%s", got, first)
		}
	}
	if !strings.Contains(first, `"ip":{`) || strings.Index(first, `"ip"`) > strings.Index(first, `"mac"`) {
		t.Errorf("layers not sorted: %s", first)
	}
}
