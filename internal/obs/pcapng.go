package obs

import (
	"encoding/binary"
	"io"
	"sync"

	"tcplp/internal/sim"
)

// LinkTypeIEEE802154NoFCS is LINKTYPE_IEEE802_15_4_NOFCS (230): our
// frames carry no trailing FCS, which this link type tells Wireshark.
const LinkTypeIEEE802154NoFCS = 230

// PcapWriter captures 802.15.4 frames as a pcapng stream that Wireshark
// and tshark open directly. It writes one section header and one
// interface (timestamp resolution 10⁻⁶ s, matching the simulator's
// microsecond clock, so packet times are simulation times verbatim) and
// then an Enhanced Packet Block per frame. Like NDJSONWriter it is
// mutex-guarded so parallel runs may share one capture file.
type PcapWriter struct {
	mu  sync.Mutex
	w   io.Writer
	err error
	buf []byte
}

// NewPcapWriter writes the section and interface headers to w and
// returns the writer.
func NewPcapWriter(w io.Writer) (*PcapWriter, error) {
	p := &PcapWriter{w: w, buf: make([]byte, 0, 256)}
	p.writeSHB()
	p.writeIDB()
	return p, p.err
}

// Err returns the first write error, if any.
func (p *PcapWriter) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// Frame implements FrameSink.
func (p *PcapWriter) Frame(t sim.Time, node int, data []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.writeEPB(uint64(t), data)
}

func le32(b []byte, v uint32) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	return append(b, tmp[:]...)
}

func le16(b []byte, v uint16) []byte {
	var tmp [2]byte
	binary.LittleEndian.PutUint16(tmp[:], v)
	return append(b, tmp[:]...)
}

// writeSHB emits the Section Header Block: byte-order magic 0x1A2B3C4D,
// version 1.0, unknown section length (-1).
func (p *PcapWriter) writeSHB() {
	b := p.buf[:0]
	b = le32(b, 0x0A0D0D0A) // block type
	b = le32(b, 28)         // total length
	b = le32(b, 0x1A2B3C4D) // byte-order magic
	b = le16(b, 1)          // major
	b = le16(b, 0)          // minor
	b = le32(b, 0xFFFFFFFF) // section length -1
	b = le32(b, 0xFFFFFFFF)
	b = le32(b, 28) // trailing total length
	p.buf = b
	p.write(b)
}

// writeIDB emits the Interface Description Block with the 802.15.4
// link type and an if_tsresol option of 6 (microseconds).
func (p *PcapWriter) writeIDB() {
	b := p.buf[:0]
	b = le32(b, 1)  // block type: IDB
	b = le32(b, 32) // total length
	b = le16(b, LinkTypeIEEE802154NoFCS)
	b = le16(b, 0) // reserved
	b = le32(b, 0) // snaplen: unlimited
	// option if_tsresol (code 9, length 1, value 6), padded to 32 bits
	b = le16(b, 9)
	b = le16(b, 1)
	b = append(b, 6, 0, 0, 0)
	// opt_endofopt
	b = le16(b, 0)
	b = le16(b, 0)
	b = le32(b, 32) // trailing total length
	p.buf = b
	p.write(b)
}

// writeEPB emits one Enhanced Packet Block for interface 0 at
// microsecond timestamp ts.
func (p *PcapWriter) writeEPB(ts uint64, data []byte) {
	pad := (4 - len(data)%4) % 4
	total := uint32(32 + len(data) + pad)
	b := p.buf[:0]
	b = le32(b, 6) // block type: EPB
	b = le32(b, total)
	b = le32(b, 0) // interface id
	b = le32(b, uint32(ts>>32))
	b = le32(b, uint32(ts))
	b = le32(b, uint32(len(data))) // captured length
	b = le32(b, uint32(len(data))) // original length
	b = append(b, data...)
	for i := 0; i < pad; i++ {
		b = append(b, 0)
	}
	b = le32(b, total)
	p.buf = b
	p.write(b)
}

func (p *PcapWriter) write(b []byte) {
	if p.err != nil {
		return
	}
	if _, err := p.w.Write(b); err != nil {
		p.err = err
	}
}
