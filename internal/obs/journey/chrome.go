package journey

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"tcplp/internal/sim"
)

// chromeEvent is one Chrome trace-event record (the "JSON Array
// Format" chrome://tracing and Perfetto load directly). Timestamps are
// microseconds — the simulator's native unit, so sim.Time casts
// straight through.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  *int64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeWriter streams journey span trees as Chrome trace events. Each
// run becomes one synthetic process (named "<run> seed=<seed>"), each
// source node one thread, each reading one complete event with nested
// per-stage child spans; losses become instant events carrying their
// cause. Safe for parallel runs: AddRun serializes whole runs under a
// mutex.
type ChromeWriter struct {
	mu      sync.Mutex
	w       io.Writer
	n       int
	nextPid int
	err     error
}

// NewChromeWriter wraps w (typically a file) in a trace-event stream.
// Call Close to terminate the JSON array.
func NewChromeWriter(w io.Writer) *ChromeWriter { return &ChromeWriter{w: w, nextPid: 1} }

func (cw *ChromeWriter) emit(e chromeEvent) {
	if cw.err != nil {
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		cw.err = err
		return
	}
	sep := ",\n"
	if cw.n == 0 {
		sep = "[\n"
	}
	cw.n++
	if _, err := fmt.Fprintf(cw.w, "%s%s", sep, b); err != nil {
		cw.err = err
	}
}

func dur(d sim.Duration) *int64 {
	v := int64(d)
	return &v
}

func (cw *ChromeWriter) span(pid, tid int, name string, start sim.Time, d sim.Duration, args map[string]any) {
	if d < 0 {
		d = 0
	}
	cw.emit(chromeEvent{Name: name, Cat: "journey", Ph: "X", Ts: int64(start),
		Dur: dur(d), Pid: pid, Tid: tid, Args: args})
}

// AddRun appends one analyzed run's span trees.
func (cw *ChromeWriter) AddRun(run string, seed int64, rep *Report) {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	pid := cw.nextPid
	cw.nextPid++
	cw.emit(chromeEvent{Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": fmt.Sprintf("%s seed=%d", run, seed)}})
	for _, r := range rep.Readings {
		cw.addReading(pid, r)
	}
}

func (cw *ChromeWriter) addReading(pid int, r *Reading) {
	name := fmt.Sprintf("reading %d", r.Seq)
	switch r.State {
	case StateDelivered:
		b := &r.Buckets
		cw.span(pid, r.Node, name, r.Gen, r.End.Sub(r.Gen), map[string]any{
			"state": "delivered", "packet_id": r.PID,
		})
		t := r.Gen
		for _, st := range []struct {
			name string
			d    sim.Duration
		}{
			{"app-queue", b.AppQueue}, {"send-wait", b.SendWait},
			{"rtx-stall", b.RtxStall}, {"mesh", b.Mesh},
			{"gateway", b.Gateway}, {"wan", b.WAN},
		} {
			if st.d <= 0 {
				continue
			}
			cw.span(pid, r.Node, st.name, t, st.d, nil)
			if st.name == "mesh" {
				// Nest the mesh decomposition as sequential child spans.
				// The sub-buckets are accumulated durations, not recorded
				// intervals, so their positions are synthetic — only the
				// widths are meaningful.
				mt := t
				for _, sub := range []struct {
					name string
					d    sim.Duration
				}{
					{"backoff", b.Backoff}, {"retry", b.Retry},
					{"air", b.Air}, {"forward", b.Forward},
				} {
					if sub.d <= 0 {
						continue
					}
					d := sub.d
					if rem := st.d - mt.Sub(t); d > rem {
						d = rem // clamp inside the mesh span
					}
					if d <= 0 {
						continue
					}
					cw.span(pid, r.Node, sub.name, mt, d, nil)
					mt = mt.Add(d)
				}
			}
			t = t.Add(st.d)
		}
	case StateLost:
		cw.span(pid, r.Node, name, r.Gen, r.End.Sub(r.Gen), map[string]any{
			"state": "lost", "cause": r.Cause.String(),
		})
		cw.emit(chromeEvent{Name: "loss: " + r.Cause.String(), Cat: "journey", Ph: "i",
			Ts: int64(r.End), Pid: pid, Tid: r.Node, S: "t",
			Args: map[string]any{"seq": r.Seq}})
	default:
		cw.emit(chromeEvent{Name: "in-flight: " + r.Stage, Cat: "journey", Ph: "i",
			Ts: int64(r.Gen), Pid: pid, Tid: r.Node, S: "t",
			Args: map[string]any{"seq": r.Seq}})
	}
}

// Close terminates the JSON array.
func (cw *ChromeWriter) Close() error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if cw.err != nil {
		return cw.err
	}
	if cw.n == 0 {
		_, cw.err = io.WriteString(cw.w, "[]\n")
		return cw.err
	}
	_, cw.err = io.WriteString(cw.w, "\n]\n")
	return cw.err
}
