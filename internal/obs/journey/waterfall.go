package journey

import (
	"fmt"
	"sort"
	"strings"
)

const barWidth = 36

// Waterfall renders the flow's mean per-stage latency attribution as a
// text bar chart — the quick-look version of the Chrome trace export.
func (f *FlowReport) Waterfall() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "node %d: %d generated, %d delivered, %d lost, %d in flight\n",
		f.Node, f.Generated, f.Delivered, f.Lost, f.InFlight)
	if len(f.LostByCause) > 0 {
		fmt.Fprintf(&sb, "  lost by cause: %s\n", countMap(f.LostByCause))
	}
	if len(f.InFlightByStage) > 0 {
		fmt.Fprintf(&sb, "  in flight at: %s\n", countMap(f.InFlightByStage))
	}
	if f.Delivered == 0 {
		return sb.String()
	}
	m := &f.Mean
	fmt.Fprintf(&sb, "  mean end-to-end latency %.1f ms, spent in:\n", m.Total)
	rows := []struct {
		name string
		ms   float64
		sub  bool
	}{
		{"app-queue", m.AppQueue, false},
		{"send-wait", m.SendWait, false},
		{"rtx-stall", m.RtxStall, false},
		{"mesh", m.Mesh, false},
		{"backoff", m.Backoff, true},
		{"retry", m.Retry, true},
		{"air", m.Air, true},
		{"forward", m.Forward, true},
		{"gateway", m.Gateway, false},
		{"wan", m.WAN, false},
	}
	for _, row := range rows {
		if row.ms == 0 && row.sub {
			continue
		}
		indent, name := "  ", row.name
		if row.sub {
			indent, name = "    ", "· "+name
		}
		fmt.Fprintf(&sb, "%s%-11s %s %8.1f ms %5.1f%%\n",
			indent, name, bar(row.ms, m.Total), row.ms, pct(row.ms, m.Total))
	}
	return sb.String()
}

func bar(v, total float64) string {
	n := 0
	if total > 0 {
		n = int(v/total*barWidth + 0.5)
	}
	if n > barWidth {
		n = barWidth
	}
	return "▕" + strings.Repeat("█", n) + strings.Repeat(" ", barWidth-n) + "▏"
}

func pct(v, total float64) float64 {
	if total <= 0 {
		return 0
	}
	return v / total * 100
}

func countMap(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, m[k])
	}
	return strings.Join(parts, " ")
}
