// Package journey reconstructs per-reading causal packet journeys from
// a run's cross-layer trace events.
//
// Every application reading a traced run generates is followed from
// generation through transport acceptance, TCP segments or CoAP/UDP
// datagrams (journey packet ids thread the per-packet MAC/PHY events
// in), mesh egress, gateway admission, and the WAN crossing, and is
// reconstructed into a span tree whose top-level stages telescope: by
// construction they sum exactly to the measured generation→delivery
// latency. The package also checks trace conformance — every generated
// reading must terminate delivered or lost with a typed cause — and
// exports span trees as Chrome trace events (chrome://tracing or
// Perfetto can open the file directly).
package journey

import (
	"tcplp/internal/obs"
	"tcplp/internal/phy"
	"tcplp/internal/sim"
)

// ReadingSize mirrors app.ReadingSize: the analyzer maps a reading's
// transport acceptance index to its TCP stream byte range with it. (The
// app package imports obs, so the constant is duplicated here rather
// than imported; a test pins the two together.)
const ReadingSize = 82

// Recorder is an obs.Sink that buffers every event in memory for
// post-run analysis. One Recorder serves one run: the engine is
// single-threaded, so Record needs no locking.
type Recorder struct {
	Events []obs.Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record implements obs.Sink.
func (r *Recorder) Record(e obs.Event) { r.Events = append(r.Events, e) }

// State is a reading's terminal classification.
type State int

const (
	// StateInFlight marks a reading the run ended on: generated but
	// neither delivered nor lost — the backlog, not a failure.
	StateInFlight State = iota
	// StateDelivered marks a reading credited at its collector.
	StateDelivered
	// StateLost marks a reading that terminally died, with a typed cause.
	StateLost
)

// String returns the state's label.
func (s State) String() string {
	switch s {
	case StateDelivered:
		return "delivered"
	case StateLost:
		return "lost"
	default:
		return "in-flight"
	}
}

// Buckets is one delivered reading's critical-path latency attribution.
// The six top-level stages telescope — consecutive timestamp
// differences along the reading's journey — so they sum exactly to the
// end-to-end generation→delivery latency. The mesh sub-buckets
// decompose Mesh from the delivering packet's MAC/PHY events; Forward
// is the residual (queueing and per-hop forwarding), clamped at zero
// because a CoAP packet id spans retransmission attempts.
type Buckets struct {
	AppQueue sim.Duration // generation → transport acceptance
	SendWait sim.Duration // acceptance → first transmission covering the reading
	RtxStall sim.Duration // first transmission → delivering transmission
	Mesh     sim.Duration // delivering transmission → mesh egress
	Gateway  sim.Duration // mesh egress → WAN enqueue (gateway flows)
	WAN      sim.Duration // WAN enqueue → cloud credit (gateway flows)

	Backoff sim.Duration // CSMA backoff+CCA of the delivering packet
	Retry   sim.Duration // link-retry delays of the delivering packet
	Air     sim.Duration // on-air time of the delivering packet, all hops
	Forward sim.Duration // residual: queueing and forwarding
}

// Total sums the telescoping top-level stages — exactly the reading's
// end-to-end latency.
func (b *Buckets) Total() sim.Duration {
	return b.AppQueue + b.SendWait + b.RtxStall + b.Mesh + b.Gateway + b.WAN
}

// Reading is one generated reading's reconstructed journey.
type Reading struct {
	Node  int    // source node
	Seq   uint32 // reading sequence number (per sensor)
	State State
	Cause obs.Cause // loss cause (State == StateLost)
	Stage string    // furthest stage reached (State == StateInFlight)
	PID   int64     // delivering journey packet id (0 = never transmitted)

	Gen      sim.Time // generation
	Enq      sim.Time // transport acceptance
	FirstTx  sim.Time // first transmission covering the reading
	SendTx   sim.Time // delivering transmission
	MeshDone sim.Time // mesh egress (gateway flows)
	WanEnq   sim.Time // WAN enqueue (gateway flows)
	End      sim.Time // delivery or loss

	Buckets Buckets // valid when State == StateDelivered

	hasEnq, hasMesh, hasWan, hasDeliver, hasLoss bool
	enqIdx                                       int64
	lossT                                        sim.Time
}

// BucketsMs is a flow's mean per-stage attribution in milliseconds
// (FlowResult-embeddable).
type BucketsMs struct {
	AppQueue float64 `json:"app_queue_ms"`
	SendWait float64 `json:"send_wait_ms"`
	RtxStall float64 `json:"rtx_stall_ms"`
	Mesh     float64 `json:"mesh_ms"`
	Backoff  float64 `json:"backoff_ms"`
	Retry    float64 `json:"retry_ms"`
	Air      float64 `json:"air_ms"`
	Forward  float64 `json:"forward_ms"`
	Gateway  float64 `json:"gateway_ms"`
	WAN      float64 `json:"wan_ms"`
	Total    float64 `json:"total_ms"`
}

// FlowReport aggregates one flow's (one source node's) readings.
type FlowReport struct {
	Node            int            `json:"node"`
	Generated       int            `json:"generated"`
	Delivered       int            `json:"delivered"`
	Lost            int            `json:"lost"`
	InFlight        int            `json:"in_flight"`
	LostByCause     map[string]int `json:"lost_by_cause,omitempty"`
	InFlightByStage map[string]int `json:"in_flight_by_stage,omitempty"`
	// Mean is the per-stage mean over delivered readings, ms.
	Mean BucketsMs `json:"mean"`
}

// Report is one run's full journey reconstruction.
type Report struct {
	// Readings lists every generated reading in generation order.
	Readings []*Reading
	// Flows aggregates per source node.
	Flows map[int]*FlowReport
}

type rkey struct {
	node int
	seq  uint32
}

// segTx is one JourneySeg: a TCP payload transmission at the source,
// identified by its relative stream byte range.
type segTx struct {
	t       sim.Time
	jid     int64
	off, ln int64
}

// dataTx is one JourneyData: a datagram carrying whole readings.
type dataTx struct {
	t        sim.Time
	jid      int64
	first    uint32
	count    int64
	reliable bool
}

// pidCost accumulates one journey packet's MAC/PHY costs and terminal
// fate across its mesh traversal.
type pidCost struct {
	backoff, retry, air sim.Duration
	rtx                 []sim.Time // CoAP retransmission times
	drop                obs.Cause  // terminal mesh drop (unreliable pids)
	dropT               sim.Time
}

type analysis struct {
	readings map[rkey]*Reading
	order    []rkey
	segs     map[int][]segTx  // by source node
	datas    map[int][]dataTx // by source node
	pids     map[int64]*pidCost
}

func (a *analysis) pid(j int64) *pidCost {
	pc := a.pids[j]
	if pc == nil {
		pc = &pidCost{}
		a.pids[j] = pc
	}
	return pc
}

func (a *analysis) reading(e obs.Event) *Reading {
	return a.readings[rkey{e.Node, uint32(e.A)}]
}

// Analyze reconstructs every reading's journey from a run's recorded
// events (emission order — the recorder preserves it).
func Analyze(events []obs.Event) *Report {
	a := &analysis{
		readings: map[rkey]*Reading{},
		segs:     map[int][]segTx{},
		datas:    map[int][]dataTx{},
		pids:     map[int64]*pidCost{},
	}
	for _, e := range events {
		a.ingest(e)
	}
	rep := &Report{Flows: map[int]*FlowReport{}}
	for _, k := range a.order {
		r := a.readings[k]
		a.resolve(r)
		rep.Readings = append(rep.Readings, r)
		rep.addToFlow(r)
	}
	rep.finishFlows()
	return rep
}

func (a *analysis) ingest(e obs.Event) {
	switch e.Kind {
	case obs.JourneyGen:
		k := rkey{e.Node, uint32(e.A)}
		if _, dup := a.readings[k]; dup {
			return
		}
		a.readings[k] = &Reading{Node: e.Node, Seq: uint32(e.A), Gen: e.T}
		a.order = append(a.order, k)
	case obs.JourneyEnq:
		if r := a.reading(e); r != nil {
			r.Enq, r.enqIdx, r.hasEnq = e.T, e.B, true
		}
	case obs.JourneySeg:
		a.segs[e.Node] = append(a.segs[e.Node], segTx{t: e.T, jid: e.J, off: e.A, ln: int64(e.Len)})
	case obs.JourneyData:
		a.datas[e.Node] = append(a.datas[e.Node],
			dataTx{t: e.T, jid: e.J, first: uint32(e.A), count: e.B, reliable: e.Len != 0})
	case obs.JourneyMesh:
		if r := a.reading(e); r != nil {
			r.MeshDone, r.hasMesh = e.T, true
		}
	case obs.JourneyWanEnq:
		if r := a.reading(e); r != nil {
			r.WanEnq, r.hasWan = e.T, true
		}
	case obs.JourneyDeliver:
		if r := a.reading(e); r != nil && !r.hasDeliver {
			r.End, r.hasDeliver = e.T, true
		}
	case obs.JourneyLoss:
		if r := a.reading(e); r != nil && !r.hasLoss {
			r.lossT, r.Cause, r.hasLoss = e.T, e.Cause, true
		}
	case obs.MacBackoff:
		if e.J != 0 {
			// B is the drawn slot count; the MAC waits slots·unit + CCA.
			a.pid(e.J).backoff += sim.Duration(e.B)*phy.UnitBackoff + phy.CCATime
		}
	case obs.MacRetry:
		if e.J != 0 {
			a.pid(e.J).retry += sim.Duration(e.B)
		}
	case obs.PhyTx:
		if e.J != 0 {
			a.pid(e.J).air += sim.Duration(e.A)
		}
	case obs.CoAPRtx:
		if e.J != 0 {
			pc := a.pid(e.J)
			pc.rtx = append(pc.rtx, e.T)
		}
	case obs.QueueDrop, obs.MacDrop, obs.FragTimeout, obs.IPDrop:
		// Terminal mesh drops end an unreliable packet's journey. (PHY
		// losses are not terminal — link retries recover them.)
		if e.J != 0 {
			pc := a.pid(e.J)
			if pc.drop == obs.CauseNone {
				pc.drop, pc.dropT = e.Cause, e.T
			}
		}
	}
}

// coveringData finds the datagram that carried r (readings leave the
// queue in whole datagrams, so there is at most one).
func (a *analysis) coveringData(r *Reading) *dataTx {
	ds := a.datas[r.Node]
	for i := len(ds) - 1; i >= 0; i-- {
		d := &ds[i]
		if d.first <= r.Seq && int64(r.Seq-d.first) < d.count {
			return d
		}
	}
	return nil
}

func (a *analysis) resolve(r *Reading) {
	switch {
	case r.hasDeliver:
		r.State = StateDelivered
		a.attribute(r)
	case r.hasLoss:
		r.State = StateLost
		r.End = r.lossT
	default:
		// A reading in an unreliable datagram dies silently with its
		// packet: adopt the packet's terminal mesh drop cause. Reliable
		// carriers (TCP, CoAP CON) retransmit past packet drops, so for
		// them only an explicit JourneyLoss is terminal.
		if d := a.coveringData(r); d != nil && !d.reliable {
			if pc := a.pids[d.jid]; pc != nil && pc.drop != obs.CauseNone {
				r.State = StateLost
				r.Cause, r.End, r.PID = pc.drop, pc.dropT, d.jid
				return
			}
		}
		r.State = StateInFlight
		r.Stage = r.stage()
	}
}

// stage names the furthest boundary an in-flight reading crossed.
func (r *Reading) stage() string {
	switch {
	case !r.hasEnq:
		return "app-queue"
	case r.hasWan:
		return "wan"
	case r.hasMesh:
		return "gateway"
	default:
		return "mesh"
	}
}

// attribute computes a delivered reading's telescoping buckets.
func (a *analysis) attribute(r *Reading) {
	if !r.hasEnq {
		r.Enq = r.Gen // defensive: a delivered reading was accepted
	}
	meshRef := r.End
	if r.hasMesh {
		meshRef = r.MeshDone
	}
	firstTx, sendTx, pid := a.locateTx(r, meshRef)
	if pid == 0 {
		// Never saw a transmission (shouldn't happen for a delivered
		// reading); collapse the transmit stages to zero.
		firstTx, sendTx = r.Enq, r.Enq
	}
	r.FirstTx, r.SendTx, r.PID = firstTx, sendTx, pid

	b := &r.Buckets
	b.AppQueue = r.Enq.Sub(r.Gen)
	b.SendWait = firstTx.Sub(r.Enq)
	b.RtxStall = sendTx.Sub(firstTx)
	meshEnd := r.End
	if r.hasMesh {
		meshEnd = r.MeshDone
		if r.hasWan {
			b.Gateway = r.WanEnq.Sub(r.MeshDone)
			b.WAN = r.End.Sub(r.WanEnq)
		} else {
			b.WAN = r.End.Sub(r.MeshDone)
		}
	}
	b.Mesh = meshEnd.Sub(sendTx)
	if pc := a.pids[pid]; pc != nil {
		b.Backoff, b.Retry, b.Air = pc.backoff, pc.retry, pc.air
	}
	b.Forward = b.Mesh - b.Backoff - b.Retry - b.Air
	if b.Forward < 0 {
		b.Forward = 0
	}
}

// locateTx finds the reading's first and delivering transmissions. TCP
// readings map their acceptance index to a stream byte range and scan
// the source's JourneySeg records for segments covering the reading's
// last byte; the delivering segment is the last covering one at or
// before the mesh-egress reference. Datagram readings use their
// covering JourneyData (CoAP retransmissions refine the delivering
// time via the exchange's CoAPRtx records).
func (a *analysis) locateTx(r *Reading, meshRef sim.Time) (firstTx, sendTx sim.Time, pid int64) {
	lastByte := r.enqIdx*ReadingSize + ReadingSize - 1
	var found bool
	for i := range a.segs[r.Node] {
		s := &a.segs[r.Node][i]
		if s.off <= lastByte && lastByte < s.off+s.ln {
			if !found {
				firstTx, found = s.t, true
			}
			if s.t <= meshRef || pid == 0 {
				sendTx, pid = s.t, s.jid
			}
		}
	}
	if found {
		return firstTx, sendTx, pid
	}
	if d := a.coveringData(r); d != nil {
		firstTx, sendTx, pid = d.t, d.t, d.jid
		if pc := a.pids[d.jid]; pc != nil {
			for _, t := range pc.rtx {
				if t <= meshRef {
					sendTx = t
				}
			}
		}
		return firstTx, sendTx, pid
	}
	return 0, 0, 0
}

func (rep *Report) addToFlow(r *Reading) {
	f := rep.Flows[r.Node]
	if f == nil {
		f = &FlowReport{Node: r.Node}
		rep.Flows[r.Node] = f
	}
	f.Generated++
	switch r.State {
	case StateDelivered:
		f.Delivered++
		b := &r.Buckets
		f.Mean.AppQueue += b.AppQueue.Milliseconds()
		f.Mean.SendWait += b.SendWait.Milliseconds()
		f.Mean.RtxStall += b.RtxStall.Milliseconds()
		f.Mean.Mesh += b.Mesh.Milliseconds()
		f.Mean.Backoff += b.Backoff.Milliseconds()
		f.Mean.Retry += b.Retry.Milliseconds()
		f.Mean.Air += b.Air.Milliseconds()
		f.Mean.Forward += b.Forward.Milliseconds()
		f.Mean.Gateway += b.Gateway.Milliseconds()
		f.Mean.WAN += b.WAN.Milliseconds()
		f.Mean.Total += b.Total().Milliseconds()
	case StateLost:
		f.Lost++
		if f.LostByCause == nil {
			f.LostByCause = map[string]int{}
		}
		f.LostByCause[r.Cause.String()]++
	default:
		f.InFlight++
		if f.InFlightByStage == nil {
			f.InFlightByStage = map[string]int{}
		}
		f.InFlightByStage[r.Stage]++
	}
}

func (rep *Report) finishFlows() {
	for _, f := range rep.Flows {
		if f.Delivered == 0 {
			continue
		}
		n := float64(f.Delivered)
		f.Mean.AppQueue /= n
		f.Mean.SendWait /= n
		f.Mean.RtxStall /= n
		f.Mean.Mesh /= n
		f.Mean.Backoff /= n
		f.Mean.Retry /= n
		f.Mean.Air /= n
		f.Mean.Forward /= n
		f.Mean.Gateway /= n
		f.Mean.WAN /= n
		f.Mean.Total /= n
	}
}
