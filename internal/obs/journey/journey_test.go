package journey

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"tcplp/internal/app"
	"tcplp/internal/obs"
	"tcplp/internal/phy"
	"tcplp/internal/sim"
)

func TestReadingSizeMatchesApp(t *testing.T) {
	if ReadingSize != app.ReadingSize {
		t.Fatalf("journey.ReadingSize = %d, app.ReadingSize = %d", ReadingSize, app.ReadingSize)
	}
}

// ev abbreviates event construction for hand-built traces.
func ev(t sim.Time, k obs.Kind, node int, j, a, b int64, ln int, cause obs.Cause) obs.Event {
	return obs.Event{T: t, Kind: k, Node: node, J: j, A: a, B: b, Len: ln, Cause: cause}
}

func TestAnalyzeDeliveredGatewayTCP(t *testing.T) {
	// One reading (node 3, seq 1) through a gateway flow, with one
	// retransmission: jid 7 is the first transmission, jid 9 delivers.
	events := []obs.Event{
		ev(0, obs.JourneyGen, 3, 0, 1, 0, 0, 0),
		ev(1000, obs.JourneyEnq, 3, 0, 1, 0, 0, 0),
		ev(2000, obs.JourneySeg, 3, 7, 0, 0, 82, 0),
		ev(2100, obs.MacBackoff, 3, 7, 3, 2, 0, 0), // BE=3, 2 slots drawn
		ev(2200, obs.PhyTx, 3, 7, 4000, 0, 100, 0),
		ev(5000, obs.JourneySeg, 3, 9, 0, 0, 82, 0), // retransmission
		ev(5100, obs.MacBackoff, 3, 9, 3, 1, 0, 0),
		ev(5200, obs.MacRetry, 3, 9, 1, 700, 0, 0),
		ev(5300, obs.PhyTx, 3, 9, 3000, 0, 100, 0),
		ev(10000, obs.JourneyMesh, 3, 0, 1, 0, 0, 0),
		ev(12000, obs.JourneyWanEnq, 3, 0, 1, 0, 0, 0),
		ev(20000, obs.JourneyDeliver, 3, 0, 1, 0, 0, 0),
	}
	rep := Analyze(events)
	if len(rep.Readings) != 1 {
		t.Fatalf("got %d readings, want 1", len(rep.Readings))
	}
	r := rep.Readings[0]
	if r.State != StateDelivered {
		t.Fatalf("state = %v, want delivered", r.State)
	}
	if r.PID != 9 {
		t.Fatalf("delivering pid = %d, want 9", r.PID)
	}
	b := &r.Buckets
	want := map[string]sim.Duration{
		"app-queue": 1000, "send-wait": 1000, "rtx-stall": 3000,
		"mesh": 5000, "gateway": 2000, "wan": 8000,
	}
	got := map[string]sim.Duration{
		"app-queue": b.AppQueue, "send-wait": b.SendWait, "rtx-stall": b.RtxStall,
		"mesh": b.Mesh, "gateway": b.Gateway, "wan": b.WAN,
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("%s = %d us, want %d us", k, got[k], w)
		}
	}
	if b.Total() != r.End.Sub(r.Gen) {
		t.Errorf("buckets sum to %d, e2e is %d", b.Total(), r.End.Sub(r.Gen))
	}
	// Sub-buckets come from the delivering pid only (jid 9).
	if wantBackoff := 1*phy.UnitBackoff + phy.CCATime; b.Backoff != wantBackoff {
		t.Errorf("backoff = %d, want %d", b.Backoff, wantBackoff)
	}
	if b.Retry != 700 {
		t.Errorf("retry = %d, want 700", b.Retry)
	}
	if b.Air != 3000 {
		t.Errorf("air = %d, want 3000", b.Air)
	}
	if b.Forward != b.Mesh-b.Backoff-b.Retry-b.Air {
		t.Errorf("forward = %d, want residual %d", b.Forward, b.Mesh-b.Backoff-b.Retry-b.Air)
	}
	if c := Check(rep); c.Err() != nil {
		t.Fatalf("conformance: %v", c.Err())
	}
}

func TestAnalyzeDirectFlowNoGateway(t *testing.T) {
	// Direct flow: no mesh/wan events; deliver terminates the mesh stage.
	events := []obs.Event{
		ev(0, obs.JourneyGen, 2, 0, 5, 0, 0, 0),
		ev(100, obs.JourneyEnq, 2, 0, 5, 0, 0, 0),
		ev(300, obs.JourneySeg, 2, 11, 0, 0, 82, 0),
		ev(900, obs.JourneyDeliver, 2, 0, 5, 0, 0, 0),
	}
	rep := Analyze(events)
	r := rep.Readings[0]
	b := &r.Buckets
	if b.Mesh != 600 || b.Gateway != 0 || b.WAN != 0 {
		t.Fatalf("mesh/gw/wan = %d/%d/%d, want 600/0/0", b.Mesh, b.Gateway, b.WAN)
	}
	if b.Total() != 900 {
		t.Fatalf("total = %d, want 900", b.Total())
	}
}

func TestUnreliableDatagramAdoptsDropCause(t *testing.T) {
	// Two readings ride one unreliable datagram (jid 5) that the MAC
	// terminally drops: both must resolve lost with the drop's cause.
	events := []obs.Event{
		ev(0, obs.JourneyGen, 4, 0, 1, 0, 0, 0),
		ev(0, obs.JourneyGen, 4, 0, 2, 0, 0, 0),
		ev(100, obs.JourneyEnq, 4, 0, 1, 0, 0, 0),
		ev(100, obs.JourneyEnq, 4, 0, 2, 1, 0, 0),
		ev(200, obs.JourneyData, 4, 5, 1, 2, 0, 0), // Len=0: unreliable
		ev(800, obs.MacDrop, 4, 5, 0, 0, 0, obs.CauseRetriesExhausted),
	}
	rep := Analyze(events)
	for _, r := range rep.Readings {
		if r.State != StateLost {
			t.Fatalf("seq %d state = %v, want lost", r.Seq, r.State)
		}
		if r.Cause != obs.CauseRetriesExhausted {
			t.Fatalf("seq %d cause = %v, want retries_exhausted", r.Seq, r.Cause)
		}
		if r.End != 800 {
			t.Fatalf("seq %d end = %d, want 800", r.Seq, r.End)
		}
	}
	c := Check(rep)
	if c.Err() != nil {
		t.Fatalf("conformance: %v", c.Err())
	}
	if c.LostByCause["retries_exhausted"] != 2 {
		t.Fatalf("lost by cause = %v", c.LostByCause)
	}
}

func TestReliableDatagramIgnoresRecoverableDrop(t *testing.T) {
	// A CoAP CON datagram's packet drop is not terminal — the exchange
	// retransmits. Without a JourneyLoss the reading stays in flight.
	events := []obs.Event{
		ev(0, obs.JourneyGen, 4, 0, 1, 0, 0, 0),
		ev(100, obs.JourneyEnq, 4, 0, 1, 0, 0, 0),
		ev(200, obs.JourneyData, 4, 5, 1, 1, 1, 0), // Len=1: reliable
		ev(800, obs.MacDrop, 4, 5, 0, 0, 0, obs.CauseRetriesExhausted),
	}
	rep := Analyze(events)
	r := rep.Readings[0]
	if r.State != StateInFlight || r.Stage != "mesh" {
		t.Fatalf("state/stage = %v/%q, want in-flight/mesh", r.State, r.Stage)
	}
}

func TestInFlightStaging(t *testing.T) {
	events := []obs.Event{
		ev(0, obs.JourneyGen, 1, 0, 1, 0, 0, 0), // never accepted
		ev(0, obs.JourneyGen, 1, 0, 2, 0, 0, 0),
		ev(10, obs.JourneyEnq, 1, 0, 2, 0, 0, 0), // accepted, in mesh
		ev(0, obs.JourneyGen, 1, 0, 3, 0, 0, 0),
		ev(10, obs.JourneyEnq, 1, 0, 3, 1, 0, 0),
		ev(20, obs.JourneyMesh, 1, 0, 3, 0, 0, 0), // at gateway
	}
	rep := Analyze(events)
	want := map[uint32]string{1: "app-queue", 2: "mesh", 3: "gateway"}
	for _, r := range rep.Readings {
		if r.Stage != want[r.Seq] {
			t.Errorf("seq %d stage = %q, want %q", r.Seq, r.Stage, want[r.Seq])
		}
	}
	c := Check(rep)
	if c.InFlight != 3 {
		t.Fatalf("in flight = %d, want 3", c.InFlight)
	}
}

func TestConformanceFlagsCauselessLoss(t *testing.T) {
	events := []obs.Event{
		ev(0, obs.JourneyGen, 1, 0, 1, 0, 0, 0),
		ev(50, obs.JourneyLoss, 1, 0, 1, 0, 0, obs.CauseNone),
	}
	c := Check(Analyze(events))
	if c.Err() == nil {
		t.Fatal("expected a violation for a causeless loss")
	}
}

func TestChromeWriterEmitsValidJSON(t *testing.T) {
	events := []obs.Event{
		ev(0, obs.JourneyGen, 3, 0, 1, 0, 0, 0),
		ev(1000, obs.JourneyEnq, 3, 0, 1, 0, 0, 0),
		ev(2000, obs.JourneySeg, 3, 7, 0, 0, 82, 0),
		ev(9000, obs.JourneyDeliver, 3, 0, 1, 0, 0, 0),
		ev(0, obs.JourneyGen, 3, 0, 2, 0, 0, 0),
		ev(500, obs.JourneyLoss, 3, 0, 2, 0, 0, obs.CauseAppQueueFull),
	}
	var buf bytes.Buffer
	cw := NewChromeWriter(&buf)
	cw.AddRun("unit", 1, Analyze(events))
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid trace-event JSON: %v\n%s", err, buf.String())
	}
	if len(out) < 4 {
		t.Fatalf("got %d trace events, want >= 4", len(out))
	}
	if out[0]["ph"] != "M" {
		t.Fatalf("first event should be process metadata, got %v", out[0])
	}
}

func TestWaterfallRenders(t *testing.T) {
	events := []obs.Event{
		ev(0, obs.JourneyGen, 3, 0, 1, 0, 0, 0),
		ev(1000, obs.JourneyEnq, 3, 0, 1, 0, 0, 0),
		ev(2000, obs.JourneySeg, 3, 7, 0, 0, 82, 0),
		ev(9000, obs.JourneyDeliver, 3, 0, 1, 0, 0, 0),
	}
	rep := Analyze(events)
	s := rep.Flows[3].Waterfall()
	for _, want := range []string{"app-queue", "mesh", "1 delivered"} {
		if !strings.Contains(s, want) {
			t.Errorf("waterfall missing %q:\n%s", want, s)
		}
	}
}

func BenchmarkAnalyze(b *testing.B) {
	var events []obs.Event
	for seq := int64(1); seq <= 200; seq++ {
		t0 := sim.Time(seq * 10000)
		jid := seq
		events = append(events,
			ev(t0, obs.JourneyGen, 3, 0, seq, 0, 0, 0),
			ev(t0+100, obs.JourneyEnq, 3, 0, seq, seq-1, 0, 0),
			ev(t0+200, obs.JourneySeg, 3, jid, (seq-1)*ReadingSize, 0, 82, 0),
			ev(t0+300, obs.MacBackoff, 3, jid, 3, 2, 0, 0),
			ev(t0+400, obs.PhyTx, 3, jid, 4000, 0, 100, 0),
			ev(t0+5000, obs.JourneyDeliver, 3, 0, seq, 0, 0, 0),
		)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := Analyze(events)
		if len(rep.Readings) != 200 {
			b.Fatal("bad reconstruction")
		}
	}
}
