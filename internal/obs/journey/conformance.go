package journey

import (
	"fmt"

	"tcplp/internal/obs"
)

// Violation is one reading that breaks the conformance contract.
type Violation struct {
	Node int
	Seq  uint32
	Msg  string
}

func (v Violation) String() string {
	return fmt.Sprintf("node %d seq %d: %s", v.Node, v.Seq, v.Msg)
}

// ConformanceResult is the trace conformance checker's verdict over one
// run: every generated reading must terminate in exactly one of
// delivered, lost-with-typed-cause, or in-flight (the end-of-run
// backlog), and a delivered reading's attribution must telescope
// exactly to its end-to-end latency.
type ConformanceResult struct {
	Generated, Delivered, Lost, InFlight int
	LostByCause                          map[string]int
	InFlightByStage                      map[string]int
	Violations                           []Violation
}

// Err returns nil when the trace conforms, else an error naming the
// first violations.
func (c *ConformanceResult) Err() error {
	if len(c.Violations) == 0 {
		return nil
	}
	n := len(c.Violations)
	show := c.Violations
	if len(show) > 5 {
		show = show[:5]
	}
	return fmt.Errorf("journey: %d conformance violations (first %d: %v)", n, len(show), show)
}

// Check runs the conformance checker over an analyzed report.
func Check(rep *Report) *ConformanceResult {
	c := &ConformanceResult{
		LostByCause:     map[string]int{},
		InFlightByStage: map[string]int{},
	}
	bad := func(r *Reading, format string, args ...any) {
		c.Violations = append(c.Violations, Violation{Node: r.Node, Seq: r.Seq,
			Msg: fmt.Sprintf(format, args...)})
	}
	for _, r := range rep.Readings {
		c.Generated++
		switch r.State {
		case StateDelivered:
			c.Delivered++
			if r.hasLoss {
				bad(r, "both delivered and lost (%s)", r.Cause)
			}
			b := &r.Buckets
			for _, s := range []struct {
				name string
				d    int64
			}{
				{"app_queue", int64(b.AppQueue)}, {"send_wait", int64(b.SendWait)},
				{"rtx_stall", int64(b.RtxStall)}, {"mesh", int64(b.Mesh)},
				{"gateway", int64(b.Gateway)}, {"wan", int64(b.WAN)},
			} {
				if s.d < 0 {
					bad(r, "negative %s bucket (%d us)", s.name, s.d)
				}
			}
			if got, want := int64(b.Total()), int64(r.End.Sub(r.Gen)); got != want {
				bad(r, "attribution sums to %d us, e2e latency is %d us", got, want)
			}
		case StateLost:
			c.Lost++
			if r.Cause == obs.CauseNone {
				bad(r, "lost without a cause")
			}
			c.LostByCause[r.Cause.String()]++
		default:
			c.InFlight++
			c.InFlightByStage[r.Stage]++
		}
	}
	if c.Delivered+c.Lost+c.InFlight != c.Generated {
		c.Violations = append(c.Violations, Violation{
			Msg: fmt.Sprintf("state counts %d+%d+%d do not cover %d generated readings",
				c.Delivered, c.Lost, c.InFlight, c.Generated)})
	}
	return c
}
