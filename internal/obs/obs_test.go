package obs

import (
	"testing"

	"tcplp/internal/sim"
)

// countSink counts events per kind.
type countSink struct {
	n    int
	last Event
}

func (c *countSink) Record(e Event) { c.n++; c.last = e }

func TestTraceFanout(t *testing.T) {
	tr := NewTrace()
	a, b := &countSink{}, &countSink{}
	tr.AddSink(a)
	tr.AddSink(b)
	if tr.WantsFrames() {
		t.Fatal("WantsFrames true with no frame sink")
	}
	e := Event{T: 42, Kind: MacRetry, Node: 3, A: 2, Len: 61}
	tr.Emit(e)
	if a.n != 1 || b.n != 1 {
		t.Fatalf("fanout: got %d/%d records, want 1/1", a.n, b.n)
	}
	if a.last != e {
		t.Fatalf("event mangled in delivery: %+v", a.last)
	}
}

func TestKindNamesComplete(t *testing.T) {
	for k := KindUnknown; k < kindCount; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if kindCount.String() != "invalid" {
		t.Errorf("sentinel kind stringified as %q", kindCount.String())
	}
}

// TestCauseNamesComplete: every drop cause in the taxonomy stringifies
// — the conformance checker reports losses by these names, so a gap
// here is a silent hole in the loss accounting.
func TestCauseNamesComplete(t *testing.T) {
	if CauseNone.String() != "" {
		t.Errorf("CauseNone stringified as %q, want empty (NDJSON omits it)", CauseNone.String())
	}
	for c := CauseNone + 1; c < causeCount; c++ {
		if c.String() == "" {
			t.Errorf("cause %d has no name", c)
		}
	}
	if causeCount.String() != "invalid" {
		t.Errorf("sentinel cause stringified as %q", causeCount.String())
	}
}

// TestDisabledHookAllocs pins the core design contract: the hook
// pattern every layer uses (`if tr != nil { tr.Emit(...) }`) must not
// allocate when tracing is off, and emitting to an attached value-sink
// must not allocate either (Event is a flat value type).
func TestDisabledHookAllocs(t *testing.T) {
	var tr *Trace
	payload := []byte{1, 2, 3}
	if n := testing.AllocsPerRun(1000, func() {
		if tr != nil {
			tr.Emit(Event{T: 1, Kind: PhyTx, Node: 0, A: 992, Len: len(payload)})
		}
	}); n != 0 {
		t.Errorf("disabled hook allocates %.1f per op, want 0", n)
	}
	// The journey hooks add J/Cause fields and NextID calls on the same
	// path; they must stay free too.
	var jid int64
	if n := testing.AllocsPerRun(1000, func() {
		if tr != nil {
			jid = tr.NextID()
			tr.Emit(Event{T: 1, Kind: JourneySeg, Node: 0, J: jid, A: 82, Len: len(payload)})
			tr.Emit(Event{T: 2, Kind: MacDrop, Node: 0, J: jid, Cause: CauseRetriesExhausted})
		}
	}); n != 0 {
		t.Errorf("disabled journey hook allocates %.1f per op, want 0", n)
	}
	en := NewTrace()
	en.AddSink(&countSink{})
	if n := testing.AllocsPerRun(1000, func() {
		if en != nil {
			en.Emit(Event{T: 1, Kind: PhyTx, Node: 0, A: 992, Len: len(payload)})
		}
	}); n != 0 {
		t.Errorf("enabled emit allocates %.1f per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		if en != nil {
			jid = en.NextID()
			en.Emit(Event{T: 1, Kind: JourneySeg, Node: 0, J: jid, A: 82, Len: len(payload)})
		}
	}); n != 0 {
		t.Errorf("enabled journey emit allocates %.1f per op, want 0", n)
	}
	_ = jid
}

func BenchmarkEmitDisabled(b *testing.B) {
	var tr *Trace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tr != nil {
			tr.Emit(Event{T: sim.Time(i), Kind: TCPSend, Node: 1, A: int64(i), Len: 944})
		}
	}
}

func BenchmarkEmitEnabled(b *testing.B) {
	tr := NewTrace()
	tr.AddSink(&countSink{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(Event{T: sim.Time(i), Kind: TCPSend, Node: 1, A: int64(i), Len: 944})
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Add("mac", "retries", 3)
	r.AddUint("mac", "retries", 2)
	r.Add("phy", "frames_sent", 10)
	if got := r.Get("mac", "retries"); got != 5 {
		t.Errorf("Get(mac, retries) = %v, want 5", got)
	}
	if got := r.Get("nope", "nothing"); got != 0 {
		t.Errorf("Get on absent layer = %v, want 0", got)
	}
	ls := r.Layers()
	if len(ls) != 2 || ls["phy"]["frames_sent"] != 10 {
		t.Errorf("Layers() = %v", ls)
	}
}
