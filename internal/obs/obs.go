// Package obs is the cross-layer observability subsystem: typed trace
// events, frame capture, per-layer metric aggregation, exporters
// (NDJSON, pcapng), and a per-flow flight recorder.
//
// The design constraint is zero overhead when disabled: every layer
// holds a *Trace pointer that is nil by default, and every hook site is
// guarded (`if tr != nil`). Events are small flat structs passed by
// value, so the disabled path costs one predictable branch and no
// allocations, and — because hooks only read state and never draw from
// the engine RNG or schedule events — enabling a sink cannot perturb a
// run's determinism.
package obs

import (
	"tcplp/internal/sim"
)

// Kind identifies what a trace event records. The values are stable
// export identifiers (they appear in NDJSON output); append only.
type Kind uint8

// Event kinds, grouped by layer.
const (
	KindUnknown Kind = iota

	// Physical layer.
	PhyTx        // frame put on air; Len = frame bytes, A = air time (µs)
	PhyRxDrop    // reception lost to PER or a state change; A = 1 if PER draw
	PhyCollision // reception corrupted by an overlapping transmission

	// MAC layer.
	MacBackoff  // CSMA backoff begins; A = backoff exponent, B = slots drawn
	MacRetry    // link-layer retransmission; A = attempt number
	MacCSMAFail // CSMA gave up (channel never clear); A = busy count
	MacDrop     // frame dropped after exhausting retries; A = status code

	// 6LoWPAN adaptation layer.
	FragEmit        // datagram fragmented for transmission; A = fragment count, Len = datagram bytes
	FragReassembled // datagram reassembled from fragments; A = tag, Len = datagram bytes
	FragTimeout     // reassembly abandoned; A = tag

	// Network layer (stack).
	QueueDrop // outbound queue tail drop; A = queue length

	// TCP.
	TCPSend    // segment transmitted; A = relative seq, Len = payload bytes
	TCPRecv    // segment received; Len = payload bytes
	TCPRTO     // retransmission timeout fired; A = backoff shift, B = RTO (µs)
	TCPFastRtx // fast retransmit triggered (3 dupacks)
	TCPCwnd    // cwnd/ssthresh changed; A = cwnd, B = ssthresh
	TCPState   // state transition; A = old state, B = new state

	// CoAP.
	CoAPRtx // confirmable retransmission; A = retry number, B = new RTO (µs)
	CoAPRTO // RTO policy updated after a response; A = RTT sample since first tx (µs), B = overall RTO estimate (µs; 0 when the policy keeps none)

	// Gateway connection table.
	GwAdmit // device admitted to the table; A = table size after
	GwEvict // entry evicted; A = table size after

	// WAN backhaul.
	WanEnqueue // message accepted onto the link; Len = bytes, A = queue depth
	WanDrop    // message dropped; A = 1 for queue tail drop, 2 for in-flight loss

	kindCount // sentinel
)

var kindNames = [...]string{
	KindUnknown:     "unknown",
	PhyTx:           "phy_tx",
	PhyRxDrop:       "phy_rx_drop",
	PhyCollision:    "phy_collision",
	MacBackoff:      "mac_backoff",
	MacRetry:        "mac_retry",
	MacCSMAFail:     "mac_csma_fail",
	MacDrop:         "mac_drop",
	FragEmit:        "frag_emit",
	FragReassembled: "frag_reassembled",
	FragTimeout:     "frag_timeout",
	QueueDrop:       "queue_drop",
	TCPSend:         "tcp_send",
	TCPRecv:         "tcp_recv",
	TCPRTO:          "tcp_rto",
	TCPFastRtx:      "tcp_fast_rtx",
	TCPCwnd:         "tcp_cwnd",
	TCPState:        "tcp_state",
	CoAPRtx:         "coap_rtx",
	CoAPRTO:         "coap_rto",
	GwAdmit:         "gw_admit",
	GwEvict:         "gw_evict",
	WanEnqueue:      "wan_enqueue",
	WanDrop:         "wan_drop",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "invalid"
}

// Event is one structured trace record. It is a flat value type so the
// emit path allocates nothing; A and B carry kind-specific integers
// (documented on each Kind) and Len a byte count where one applies.
type Event struct {
	T    sim.Time // simulation time (µs)
	Kind Kind
	Node int // originating node id (-1 when not node-scoped)
	A, B int64
	Len  int
}

// Sink receives trace events. Record is called synchronously on the
// simulation goroutine; implementations must not touch engine state.
type Sink interface {
	Record(e Event)
}

// FrameSink receives raw 802.15.4 frames as they hit the air. The data
// slice is only valid for the duration of the call.
type FrameSink interface {
	Frame(t sim.Time, node int, data []byte)
}

// Trace fans events out to its sinks. A nil *Trace is the disabled
// state; layers must guard every hook with a nil check rather than
// calling methods on a nil receiver, so the disabled path is a single
// branch.
type Trace struct {
	sinks  []Sink
	frames []FrameSink
}

// NewTrace returns an empty (but enabled) trace.
func NewTrace() *Trace { return &Trace{} }

// AddSink attaches an event sink.
func (t *Trace) AddSink(s Sink) { t.sinks = append(t.sinks, s) }

// AddFrameSink attaches a frame capture sink.
func (t *Trace) AddFrameSink(s FrameSink) { t.frames = append(t.frames, s) }

// WantsFrames reports whether any frame sink is attached, so the PHY
// can skip the capture call entirely otherwise.
func (t *Trace) WantsFrames() bool { return len(t.frames) > 0 }

// Emit delivers e to every event sink.
func (t *Trace) Emit(e Event) {
	for _, s := range t.sinks {
		s.Record(e)
	}
}

// Frame delivers a raw frame to every frame sink.
func (t *Trace) Frame(now sim.Time, node int, data []byte) {
	for _, s := range t.frames {
		s.Frame(now, node, data)
	}
}
