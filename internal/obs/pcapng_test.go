package obs

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"testing"
)

// pcapBlock is one parsed pcapng block.
type pcapBlock struct {
	typ  uint32
	body []byte // between the two length fields
}

// parsePcapng is a minimal little-endian pcapng reader: enough to check
// our own output is structurally valid (block framing, trailing length
// matches leading length) without a capture library.
func parsePcapng(t *testing.T, data []byte) []pcapBlock {
	t.Helper()
	le := binary.LittleEndian
	var out []pcapBlock
	for off := 0; off < len(data); {
		if len(data)-off < 12 {
			t.Fatalf("truncated block header at offset %d", off)
		}
		typ := le.Uint32(data[off:])
		total := le.Uint32(data[off+4:])
		if total%4 != 0 || int(total) > len(data)-off {
			t.Fatalf("bad block length %d at offset %d", total, off)
		}
		if trailer := le.Uint32(data[off+int(total)-4:]); trailer != total {
			t.Fatalf("block at %d: trailing length %d != leading %d", off, trailer, total)
		}
		out = append(out, pcapBlock{typ: typ, body: data[off+8 : off+int(total)-4]})
		off += int(total)
	}
	return out
}

func TestPcapngStructure(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewPcapWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	frame1 := []byte{0x41, 0x88, 0x01, 0xcd, 0xab, 0xff, 0xff, 0x01, 0x00} // 9 bytes: needs padding
	frame2 := bytes.Repeat([]byte{0x61}, 12)                               // already aligned
	w.Frame(1500, 2, frame1)
	w.Frame(0x1_0000_2000, 3, frame2) // exercises the high timestamp word
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}

	le := binary.LittleEndian
	blocks := parsePcapng(t, buf.Bytes())
	if len(blocks) != 4 {
		t.Fatalf("got %d blocks, want SHB+IDB+2 EPB", len(blocks))
	}

	shb := blocks[0]
	if shb.typ != 0x0A0D0D0A {
		t.Fatalf("first block type %#x, want SHB", shb.typ)
	}
	if magic := le.Uint32(shb.body); magic != 0x1A2B3C4D {
		t.Errorf("byte-order magic %#x", magic)
	}
	if major, minor := le.Uint16(shb.body[4:]), le.Uint16(shb.body[6:]); major != 1 || minor != 0 {
		t.Errorf("version %d.%d, want 1.0", major, minor)
	}

	idb := blocks[1]
	if idb.typ != 1 {
		t.Fatalf("second block type %#x, want IDB", idb.typ)
	}
	if lt := le.Uint16(idb.body); lt != LinkTypeIEEE802154NoFCS {
		t.Errorf("link type %d, want %d", lt, LinkTypeIEEE802154NoFCS)
	}
	// Options start after linktype(2)+reserved(2)+snaplen(4).
	if code, l, v := le.Uint16(idb.body[8:]), le.Uint16(idb.body[10:]), idb.body[12]; code != 9 || l != 1 || v != 6 {
		t.Errorf("if_tsresol option = code %d len %d val %d, want 9/1/6", code, l, v)
	}

	for i, want := range []struct {
		ts   uint64
		data []byte
	}{{1500, frame1}, {0x1_0000_2000, frame2}} {
		epb := blocks[2+i]
		if epb.typ != 6 {
			t.Fatalf("block %d type %#x, want EPB", 2+i, epb.typ)
		}
		if ifc := le.Uint32(epb.body); ifc != 0 {
			t.Errorf("EPB %d interface %d", i, ifc)
		}
		ts := uint64(le.Uint32(epb.body[4:]))<<32 | uint64(le.Uint32(epb.body[8:]))
		if ts != want.ts {
			t.Errorf("EPB %d timestamp %d, want %d", i, ts, want.ts)
		}
		capl, origl := le.Uint32(epb.body[12:]), le.Uint32(epb.body[16:])
		if capl != uint32(len(want.data)) || origl != capl {
			t.Errorf("EPB %d lengths %d/%d, want %d", i, capl, origl, len(want.data))
		}
		if !bytes.Equal(epb.body[20:20+capl], want.data) {
			t.Errorf("EPB %d payload mismatch", i)
		}
	}
}

// TestPcapngHeaderGolden pins the exact 60 header bytes (SHB+IDB): any
// change breaks every downstream consumer's parser, so it must be
// deliberate.
func TestPcapngHeaderGolden(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewPcapWriter(&buf); err != nil {
		t.Fatal(err)
	}
	golden, err := hex.DecodeString(
		"0a0d0d0a1c0000004d3c2b1a01000000ffffffffffffffff1c000000" + // SHB
			"0100000020000000e60000000000000009000100060000000000000020000000") // IDB
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), golden) {
		t.Fatalf("header bytes changed:\n got %x\nwant %x", buf.Bytes(), golden)
	}
}
