package obs

import (
	"bytes"
	"strings"
	"testing"

	"tcplp/internal/sim"
)

func TestFlightRingWrap(t *testing.T) {
	fr := NewFlightRecorder(4)
	fr.Bind(7, "anem-7")
	for i := 1; i <= 6; i++ {
		fr.Record(Event{T: sim.Time(i), Kind: TCPSend, Node: 7, A: int64(i)})
	}
	fr.Record(Event{T: 99, Kind: TCPSend, Node: 3}) // unbound node: ignored
	evs := fr.Events(7)
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want cap 4", len(evs))
	}
	for i, e := range evs {
		if want := int64(i + 3); e.A != want {
			t.Errorf("event %d: A=%d, want %d (oldest-first after wrap)", i, e.A, want)
		}
	}
	if got := fr.Events(3); got != nil {
		t.Errorf("unbound node has events: %v", got)
	}
	if got := fr.Nodes(); len(got) != 1 || got[0] != 7 {
		t.Errorf("Nodes() = %v", got)
	}
	if got := fr.Label(7); got != "anem-7" {
		t.Errorf("Label = %q", got)
	}
}

func TestFlightProgressTracking(t *testing.T) {
	fr := NewFlightRecorder(8)
	fr.Bind(2, "flow")
	// Sends and retransmissions are attempts, not progress.
	fr.Record(Event{T: 100, Kind: TCPSend, Node: 2})
	fr.Record(Event{T: 200, Kind: TCPRTO, Node: 2})
	fr.Record(Event{T: 300, Kind: MacRetry, Node: 2})
	if got := fr.LastProgress(2); got != 0 {
		t.Fatalf("attempts advanced LastProgress to %d", got)
	}
	fr.Record(Event{T: 400, Kind: TCPRecv, Node: 2})
	if got := fr.LastProgress(2); got != 400 {
		t.Fatalf("LastProgress = %d, want 400", got)
	}
	fr.Record(Event{T: 500, Kind: TCPSend, Node: 2})
	if got := fr.LastProgress(2); got != 400 {
		t.Fatalf("send moved LastProgress to %d", got)
	}
	for _, k := range []Kind{CoAPRTO, FragReassembled} {
		if !isProgress(Event{Kind: k}) {
			t.Errorf("%s should count as progress", k)
		}
	}
}

func TestFlightDump(t *testing.T) {
	fr := NewFlightRecorder(8)
	fr.Bind(4, "anem-4")
	fr.Record(Event{T: 1000, Kind: CoAPRtx, Node: 4, A: 1, B: 3000000})
	var buf bytes.Buffer
	fr.Dump(NewDumpWriter(&buf), 4, "cell-b", 11, "stalled: no progress for 4000000 us")
	out := buf.String()
	for _, want := range []string{
		`flow "anem-4" (node 4)`, `run "cell-b" seed 11`, "stalled", "(1 events)",
		"coap_rtx", "a=1 b=3000000",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	fr.Dump(&buf, 9, "cell-b", 11, "x") // unbound: silent no-op
	if buf.Len() != 0 {
		t.Errorf("dump for unbound node wrote %q", buf.String())
	}
}
