package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"tcplp/internal/sim"
)

// FlightRecorder keeps a bounded ring of the most recent trace events
// for each flow it is bound to, like an aircraft flight recorder: cheap
// enough to leave on, consulted only when something goes wrong. The
// scenario runner binds each flow's source node, feeds the recorder as
// an ordinary Sink, and dumps a flow's ring when the flow stalls or the
// run ends below its delivery threshold — turning "the cell went to
// zero" into a concrete event timeline.
type FlightRecorder struct {
	cap   int
	flows map[int]*flightRing // by bound node id
}

type flightRing struct {
	label        string
	events       []Event // ring storage
	next         int     // write cursor once full
	lastProgress sim.Time
}

// isProgress reports whether e advances its flow — a received segment,
// a completed exchange, a reassembled datagram — as opposed to merely
// trying (sends, backoffs, retransmissions). The stall checker keys off
// this: a flow retransmitting into a black hole emits plenty of events
// but makes no progress.
func isProgress(e Event) bool {
	switch e.Kind {
	case TCPRecv, CoAPRTO, FragReassembled:
		return true
	}
	return false
}

// NewFlightRecorder returns a recorder keeping up to ringCap events per
// bound flow (<=0 selects 256).
func NewFlightRecorder(ringCap int) *FlightRecorder {
	if ringCap <= 0 {
		ringCap = 256
	}
	return &FlightRecorder{cap: ringCap, flows: map[int]*flightRing{}}
}

// Bind associates node's events with a flow label. Events from unbound
// nodes are ignored.
func (f *FlightRecorder) Bind(node int, label string) {
	f.flows[node] = &flightRing{label: label, events: make([]Event, 0, f.cap)}
}

// Record implements Sink.
func (f *FlightRecorder) Record(e Event) {
	r := f.flows[e.Node]
	if r == nil {
		return
	}
	if isProgress(e) {
		r.lastProgress = e.T
	}
	if len(r.events) < cap(r.events) {
		r.events = append(r.events, e)
		return
	}
	r.events[r.next] = e
	r.next++
	if r.next == cap(r.events) {
		r.next = 0
	}
}

// Events returns the ring contents for node's flow, oldest first.
func (f *FlightRecorder) Events(node int) []Event {
	r := f.flows[node]
	if r == nil {
		return nil
	}
	if len(r.events) < cap(r.events) {
		return append([]Event(nil), r.events...)
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// Nodes returns the bound node ids in ascending order (for
// deterministic iteration).
func (f *FlightRecorder) Nodes() []int {
	nodes := make([]int, 0, len(f.flows))
	for n := range f.flows {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	return nodes
}

// LastProgress returns the time of node's most recent progress event
// (zero when none has been recorded).
func (f *FlightRecorder) LastProgress(node int) sim.Time {
	if r := f.flows[node]; r != nil {
		return r.lastProgress
	}
	return 0
}

// Label returns the flow label bound to node ("" when unbound).
func (f *FlightRecorder) Label(node int) string {
	if r := f.flows[node]; r != nil {
		return r.label
	}
	return ""
}

// Dump writes node's event timeline to w with a reason header. The
// writer is typically shared across parallel runs; guard it with
// DumpWriter if so.
func (f *FlightRecorder) Dump(w io.Writer, node int, run string, seed int64, reason string) {
	r := f.flows[node]
	if r == nil {
		return
	}
	evs := f.Events(node)
	fmt.Fprintf(w, "=== flight recorder: flow %q (node %d) run %q seed %d — %s (%d events) ===\n",
		r.label, node, run, seed, reason, len(evs))
	for _, e := range evs {
		fmt.Fprintf(w, "%12d %-16s node=%d a=%d b=%d len=%d\n",
			int64(e.T), e.Kind.String(), e.Node, e.A, e.B, e.Len)
	}
}

// DumpWriter serializes dump output from concurrent runs so timelines
// interleave whole.
type DumpWriter struct {
	mu sync.Mutex
	w  io.Writer
}

// NewDumpWriter wraps w.
func NewDumpWriter(w io.Writer) *DumpWriter { return &DumpWriter{w: w} }

// Write implements io.Writer.
func (d *DumpWriter) Write(p []byte) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.w.Write(p)
}
