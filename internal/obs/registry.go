package obs

// Registry accumulates named per-layer counters and gauges. The
// scenario collector fills one from every node's existing stats blocks
// at the end of a run, replacing the scattered one-off aggregation that
// used to live in each renderer; encoding/json sorts map keys, so the
// marshaled form is deterministic.
type Registry struct {
	layers map[string]map[string]float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{layers: map[string]map[string]float64{}}
}

// Add accumulates v into layer/metric (counters sum across nodes).
func (r *Registry) Add(layer, metric string, v float64) {
	m := r.layers[layer]
	if m == nil {
		m = map[string]float64{}
		r.layers[layer] = m
	}
	m[metric] += v
}

// AddUint is Add for the uint64 counters most stats blocks use.
func (r *Registry) AddUint(layer, metric string, v uint64) {
	r.Add(layer, metric, float64(v))
}

// Get returns layer/metric, or 0 when absent.
func (r *Registry) Get(layer, metric string) float64 {
	return r.layers[layer][metric]
}

// Layers returns the accumulated map (owned by the registry; callers
// treat it as read-only).
func (r *Registry) Layers() map[string]map[string]float64 { return r.layers }
