// Package energy provides the duty-cycle instrumentation of §9.2: radio
// duty cycle comes from the radio's state tracking (phy); CPU duty cycle
// comes from a documented per-operation cost model, since a discrete-event
// simulation has no real microcontroller to measure.
//
// The cost model is a substitution (see DESIGN.md): absolute CPU numbers
// are model outputs, calibrated so a batched anemometer workload lands in
// the paper's ≈1% range; only relative comparisons (TCP vs CoAP, batching
// vs not) are claimed.
package energy

import "tcplp/internal/sim"

// Costs is the CPU time charged per operation.
type Costs struct {
	// FrameTx / FrameRx cover driver work per 802.15.4 frame, dominated
	// by the SPI transfer the paper measures (§6.4).
	FrameTx, FrameRx sim.Duration
	// Segment covers transport-layer processing per TCP segment or CoAP
	// message.
	Segment sim.Duration
	// PerKByte covers payload copies, per 1024 bytes moved at the app
	// boundary.
	PerKByte sim.Duration
}

// DefaultCosts reflect a 48 MHz Cortex-M0+ running a software MAC: the
// 4 ms SPI transfer of a full frame is CPU-attended, transport processing
// is sub-millisecond (§6.4 finds TCP processing does not limit
// throughput).
func DefaultCosts() Costs {
	return Costs{
		FrameTx:  4 * sim.Millisecond,
		FrameRx:  2 * sim.Millisecond,
		Segment:  600 * sim.Microsecond,
		PerKByte: 250 * sim.Microsecond,
	}
}

// CPUMeter accumulates CPU busy time against the simulation clock.
type CPUMeter struct {
	eng   *sim.Engine
	busy  sim.Duration
	since sim.Time

	costs Costs
}

// NewCPUMeter returns a meter using the given cost model.
func NewCPUMeter(eng *sim.Engine, costs Costs) *CPUMeter {
	return &CPUMeter{eng: eng, costs: costs}
}

// Charge adds d of CPU busy time.
func (m *CPUMeter) Charge(d sim.Duration) {
	if d > 0 {
		m.busy += d
	}
}

// ChargeFrameTx charges the per-frame transmit cost.
func (m *CPUMeter) ChargeFrameTx() { m.Charge(m.costs.FrameTx) }

// ChargeFrameRx charges the per-frame receive cost.
func (m *CPUMeter) ChargeFrameRx() { m.Charge(m.costs.FrameRx) }

// ChargeSegment charges the per-segment transport cost.
func (m *CPUMeter) ChargeSegment() { m.Charge(m.costs.Segment) }

// ChargeBytes charges the copy cost for n payload bytes.
func (m *CPUMeter) ChargeBytes(n int) {
	m.Charge(m.costs.PerKByte * sim.Duration(n) / 1024)
}

// Busy returns the accumulated CPU time since the last Reset.
func (m *CPUMeter) Busy() sim.Duration { return m.busy }

// DutyCycle returns busy time divided by wall time since the last Reset.
func (m *CPUMeter) DutyCycle() float64 {
	elapsed := m.eng.Now().Sub(m.since)
	if elapsed <= 0 {
		return 0
	}
	dc := float64(m.busy) / float64(elapsed)
	if dc > 1 {
		dc = 1
	}
	return dc
}

// Reset zeroes the accumulator and restarts the measurement window.
func (m *CPUMeter) Reset() {
	m.busy = 0
	m.since = m.eng.Now()
}
