package energy

import (
	"testing"

	"tcplp/internal/sim"
)

func TestCPUMeterDutyCycle(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewCPUMeter(eng, DefaultCosts())
	// 100 ms of busy work over a 10 s window → 1%.
	m.Charge(100 * sim.Millisecond)
	eng.RunUntil(sim.Time(10 * sim.Second))
	if dc := m.DutyCycle(); dc < 0.0099 || dc > 0.0101 {
		t.Fatalf("duty cycle = %.4f, want 0.01", dc)
	}
}

func TestCPUMeterReset(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewCPUMeter(eng, DefaultCosts())
	m.Charge(sim.Second)
	eng.RunUntil(sim.Time(2 * sim.Second))
	m.Reset()
	eng.RunUntil(sim.Time(4 * sim.Second))
	if m.Busy() != 0 {
		t.Fatalf("busy after reset = %v", m.Busy())
	}
	m.Charge(200 * sim.Millisecond)
	if dc := m.DutyCycle(); dc < 0.09 || dc > 0.11 {
		t.Fatalf("post-reset duty cycle = %.3f, want 0.1", dc)
	}
}

func TestChargeHelpers(t *testing.T) {
	eng := sim.NewEngine(1)
	c := DefaultCosts()
	m := NewCPUMeter(eng, c)
	m.ChargeFrameTx()
	m.ChargeFrameRx()
	m.ChargeSegment()
	want := c.FrameTx + c.FrameRx + c.Segment
	if m.Busy() != want {
		t.Fatalf("busy = %v, want %v", m.Busy(), want)
	}
	m.Reset()
	m.ChargeBytes(2048)
	if m.Busy() != 2*c.PerKByte {
		t.Fatalf("byte charge = %v, want %v", m.Busy(), 2*c.PerKByte)
	}
	m.Charge(-5) // negative charges ignored
	if m.Busy() != 2*c.PerKByte {
		t.Fatal("negative charge accepted")
	}
}

func TestDutyCycleClamps(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewCPUMeter(eng, DefaultCosts())
	if m.DutyCycle() != 0 {
		t.Fatal("zero-elapsed duty cycle not 0")
	}
	m.Charge(10 * sim.Second)
	eng.RunUntil(sim.Time(sim.Second))
	if m.DutyCycle() != 1 {
		t.Fatalf("over-busy duty cycle = %v, want clamp to 1", m.DutyCycle())
	}
}
