package model

import (
	"math"
	"testing"
	"testing/quick"

	"tcplp/internal/sim"
)

func TestMathisBasics(t *testing.T) {
	// MSS 440 B, RTT 100 ms, p = 1%: B = 440·8/0.1 · sqrt(150) ≈ 431 kb/s.
	b := MathisGoodput(440, 100*sim.Millisecond, 0.01)
	if b < 420_000 || b > 445_000 {
		t.Fatalf("Mathis = %.0f", b)
	}
	if !math.IsInf(MathisGoodput(440, 100*sim.Millisecond, 0), 1) {
		t.Fatal("zero loss should be unbounded in Eq. 1")
	}
}

func TestTCPlpModelBasics(t *testing.T) {
	// With p = 0: B = w·MSS/RTT.
	b := TCPlpGoodput(440, 100*sim.Millisecond, 4, 0)
	want := 4.0 * 440 * 8 / 0.1
	if math.Abs(b-want) > 1 {
		t.Fatalf("lossless Eq.2 = %.0f, want %.0f", b, want)
	}
	// The paper's headline comparison: at small p, Eq.2 barely moves
	// while Eq.1 explodes.
	b1 := TCPlpGoodput(440, 100*sim.Millisecond, 4, 0.01)
	if b1 < 0.9*b {
		t.Fatalf("Eq.2 too sensitive to 1%% loss: %.0f vs %.0f", b1, b)
	}
}

func TestBurstModelAgreesWithClosedForm(t *testing.T) {
	for _, p := range []float64{0.005, 0.01, 0.05, 0.1} {
		closed := TCPlpGoodput(440, 500*sim.Millisecond, 4, p)
		burst := BurstModel(440, 500*sim.Millisecond, 4, p)
		if math.Abs(closed-burst)/closed > 1e-9 {
			t.Fatalf("p=%.3f: closed %.2f vs burst %.2f", p, closed, burst)
		}
	}
}

// Property: Eq. 2 is monotone — decreasing in p and RTT, increasing in w
// and MSS.
func TestQuickEq2Monotone(t *testing.T) {
	f := func(pRaw, rttRaw uint16, w uint8) bool {
		p := float64(pRaw%200) / 1000 // 0..0.2
		rtt := sim.Duration(rttRaw%2000+50) * sim.Millisecond
		win := int(w%7) + 1
		b := TCPlpGoodput(440, rtt, win, p)
		if TCPlpGoodput(440, rtt, win, p+0.01) > b {
			return false
		}
		if TCPlpGoodput(440, rtt+50*sim.Millisecond, win, p) > b {
			return false
		}
		if TCPlpGoodput(440, rtt, win+1, p) < b {
			return false
		}
		if TCPlpGoodput(500, rtt, win, p) < b {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleHopCeiling(t *testing.T) {
	// §6.4: five frames carrying ≈462 B bound at ≈82 kb/s.
	b := SingleHopCeiling(5, 462)
	if b < 70_000 || b > 95_000 {
		t.Fatalf("ceiling = %.0f b/s, want ≈82 kb/s", b)
	}
	// Fewer data bytes per segment → lower ceiling.
	if SingleHopCeiling(5, 300) >= b {
		t.Fatal("ceiling not increasing in payload")
	}
}

func TestMultihopFactor(t *testing.T) {
	want := map[int]float64{1: 1, 2: 0.5, 3: 1.0 / 3, 4: 1.0 / 3, 7: 1.0 / 3}
	for h, f := range want {
		if got := MultihopFactor(h); math.Abs(got-f) > 1e-12 {
			t.Fatalf("factor(%d) = %v", h, got)
		}
	}
}
