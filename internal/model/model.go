// Package model implements the analytical results of the paper: the
// classical Mathis model (Eq. 1), the paper's small-window LLN model
// (Eq. 2, derived in Appendix B), the single-hop goodput ceiling (§6.4),
// and the multihop radio-scheduling bound (§7.2).
package model

import (
	"math"

	"tcplp/internal/phy"
	"tcplp/internal/sim"
)

// MathisGoodput is Eq. 1: B = MSS/RTT · sqrt(3/(2p)), in bits per
// second. It assumes cwnd is loss-limited — the assumption §8 shows does
// not hold in LLNs.
func MathisGoodput(mssBytes int, rtt sim.Duration, p float64) float64 {
	if p <= 0 || rtt <= 0 {
		return math.Inf(1)
	}
	return float64(mssBytes) * 8 / rtt.Seconds() * math.Sqrt(3/(2*p))
}

// TCPlpGoodput is Eq. 2: B = MSS/RTT · 1/(1/w + 2p), in bits per second,
// where w is the window size in segments (sized to the BDP) and p the
// segment loss rate. The 1/w additive term is what makes LLN TCP robust
// to small loss rates (§8).
func TCPlpGoodput(mssBytes int, rtt sim.Duration, w int, p float64) float64 {
	if rtt <= 0 || w <= 0 {
		return 0
	}
	return float64(mssBytes) * 8 / rtt.Seconds() / (1/float64(w) + 2*p)
}

// BurstModel exposes the Appendix B intermediate quantities for tests:
// goodput from the burst formulation B = w·b·MSS / (b·RTT + t_rec) with
// b = 1/(w·p) and t_rec = 2·RTT. It must agree with TCPlpGoodput.
func BurstModel(mssBytes int, rtt sim.Duration, w int, p float64) float64 {
	if p <= 0 {
		// No loss: the window streams continuously.
		return float64(w*mssBytes) * 8 / rtt.Seconds()
	}
	b := 1 / (float64(w) * p)
	burstBytes := float64(w) * b * float64(mssBytes)
	burstTime := b*rtt.Seconds() + 2*rtt.Seconds()
	return burstBytes * 8 / burstTime
}

// SingleHopCeiling reproduces the §6.4 upper-bound calculation for a
// segment of segFrames frames carrying dataBytes of application data:
// each frame costs its airtime plus SPI overhead, and with delayed ACKs
// half the segments add one TCP ACK frame. Returns bits per second.
func SingleHopCeiling(segFrames, dataBytes int) float64 {
	perFrame := phy.AirTime(phy.MaxPHYPayload) + phy.LoadTime(phy.MaxPHYPayload)
	segTime := sim.Duration(segFrames) * perFrame
	// Delayed ACKs: one ACK frame per two segments, ≈ one airtime.
	ackShare := phy.AirTime(phy.MaxPHYPayload) / 2
	return float64(dataBytes) * 8 / (segTime + ackShare).Seconds()
}

// MultihopFactor is the §7.2 radio-scheduling bound: bandwidth over h
// hops is B/h for h ≤ 3 and B/3 beyond, because any three adjacent hops
// share the channel but hops four apart can run concurrently.
func MultihopFactor(hops int) float64 {
	switch {
	case hops <= 1:
		return 1
	case hops >= 3:
		return 1.0 / 3
	default:
		return 1 / float64(hops)
	}
}
