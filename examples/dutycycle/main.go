// Dutycycle: Appendix C's TCP-friendly duty-cycling protocol. A leaf
// node's radio sleeps between data-request polls; with a fixed 2 s sleep
// interval TCP throughput collapses (RTT ≈ the sleep interval), while
// the Trickle-based adaptive interval recovers always-on throughput yet
// idles at a tiny duty cycle.
package main

import (
	"fmt"

	"tcplp/internal/app"
	"tcplp/internal/mesh"
	"tcplp/internal/sim"
	"tcplp/internal/stack"
)

func run(adaptive bool, sleep sim.Duration) {
	opt := stack.DefaultOptions()
	opt.WindowSegs = 6 // Appendix C uses 6-segment buffers
	net := stack.New(5, mesh.Chain(2, 10), opt)
	host := net.AttachHost()

	sc := net.MakeSleepyLeaf(1)
	sc.FastInterval = 0 // pure duty-cycling, no §9.2 fast-poll hint
	net.Nodes[1].TCP.OnExpectingChange = nil
	if adaptive {
		sc.Adaptive = true
		sc.Min = 20 * sim.Millisecond
		sc.Max = 5 * sim.Second
		sc.SleepInterval = 5 * sim.Second
	} else {
		sc.SleepInterval = sleep
	}
	sc.Start()

	sink := app.ListenSink(host, 80)
	src := app.StartBulk(net.Nodes[1], host.Addr, 80)
	net.Eng.RunFor(15 * sim.Second)
	sink.Mark()
	net.Eng.RunFor(60 * sim.Second)
	goodput := sink.GoodputKbps()
	src.Stop()

	// Idle phase: measure the duty cycle with no traffic.
	net.Eng.RunFor(30 * sim.Second)
	net.Nodes[1].Radio.ResetEnergy()
	net.Eng.RunFor(2 * sim.Minute)
	idle := net.Nodes[1].Radio.DutyCycle() * 100

	mode := fmt.Sprintf("fixed %v sleep", sleep)
	if adaptive {
		mode = "adaptive 20ms..5s  "
	}
	fmt.Printf("%-20s uplink %6.1f kb/s   idle duty cycle %5.2f%%\n", mode, goodput, idle)
}

func main() {
	fmt.Println("TCP over a duty-cycled leaf link (Appendix C):")
	run(false, 20*sim.Millisecond)
	run(false, 500*sim.Millisecond)
	run(false, 2*sim.Second)
	run(true, 0)
	fmt.Println("\npaper §C.2: the Trickle-based adaptive interval achieves ≈68.6 kb/s uplink")
	fmt.Println("while idling at ≈0.1% duty cycle — both ends of the trade-off at once.")
}
